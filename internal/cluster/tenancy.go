package cluster

import (
	"fmt"
	"math"
	"strconv"

	"smtexplore/internal/service"
	"smtexplore/internal/tenant"
)

// Coordinator-side multi-tenancy. The coordinator is the fleet's
// admission edge, so it enforces the same per-tenant job/cell quotas a
// single daemon does — but against cluster-wide in-flight totals, which
// a per-worker check cannot see (a tenant spraying one job per worker
// would be under quota everywhere yet over it in aggregate). Cycle
// budgets stay on the workers: cycles are measured where cells run.

// admitTenantLocked gates one submission against the tenant's quotas.
// c.mu must be held. On refusal the per-tenant shed counter is bumped
// and a *service.QuotaError is returned so the HTTP edge and smtctl
// see the identical cause taxonomy as against a single daemon.
func (c *Coordinator) admitTenantLocked(tn string, cells int) error {
	q := c.cfg.Tenants.Config(tn)
	if q.MaxQueuedJobs > 0 && c.tenantJobs[tn] >= q.MaxQueuedJobs {
		c.tenantSheds[tn]++
		return &service.QuotaError{
			Tenant: tn,
			Cause:  service.QuotaQueuedJobs,
			Detail: fmt.Sprintf("%d jobs in flight across the fleet, quota %d", c.tenantJobs[tn], q.MaxQueuedJobs),
		}
	}
	if q.MaxActiveCells > 0 && c.tenantCells[tn]+cells > q.MaxActiveCells {
		c.tenantSheds[tn]++
		return &service.QuotaError{
			Tenant: tn,
			Cause:  service.QuotaActiveCells,
			Detail: fmt.Sprintf("%d cells in flight across the fleet + %d requested exceeds quota %d", c.tenantCells[tn], cells, q.MaxActiveCells),
		}
	}
	return nil
}

// chargeTenantLocked records an admitted job against its tenant.
func (c *Coordinator) chargeTenantLocked(tn string, cells int) {
	c.tenantJobs[tn]++
	c.tenantCells[tn] += cells
}

// releaseTenantLocked undoes chargeTenantLocked when a job concludes.
// Floored defensively: a miscount must never wedge a tenant out.
func (c *Coordinator) releaseTenantLocked(tn string, cells int) {
	if c.tenantJobs[tn] > 0 {
		c.tenantJobs[tn]--
	}
	if c.tenantCells[tn] > cells {
		c.tenantCells[tn] -= cells
	} else {
		c.tenantCells[tn] = 0
	}
	if c.tenantJobs[tn] == 0 && c.tenantCells[tn] == 0 {
		delete(c.tenantJobs, tn)
		delete(c.tenantCells, tn)
	}
}

// retryAfter derives the coordinator's Retry-After hint from the
// fleet's queue-wait telemetry: twice the worst live worker's EWMA,
// clamped to [1s, 30s] — the same shape the single daemon serves, so
// clients back off proportionally to actual congestion either way.
func (c *Coordinator) retryAfter() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	worst := 0.0
	for _, m := range c.members {
		if m.alive && m.statsOK && m.stats.QueueWaitEWMASeconds > worst {
			worst = m.stats.QueueWaitEWMASeconds
		}
	}
	secs := int(math.Ceil(2 * worst))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return strconv.Itoa(secs)
}

// normTenant mirrors the daemon's defaulting: no tenant means the
// default tenant, never an empty accounting bucket.
func normTenant(name string) string {
	if name == "" {
		return tenant.Default
	}
	return name
}
