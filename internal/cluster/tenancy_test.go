package cluster

// Cluster-edge tenancy tests: the coordinator forwards tenants to
// workers, enforces fleet-wide quotas with the daemon's cause taxonomy,
// and never treats a worker's 4xx refusal as a death — policy refusals
// (quota, validation) shed the group terminally, bare-429 backpressure
// is retried and routed around.

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"smtexplore/internal/service"
	"smtexplore/internal/tenant"
)

func TestTenantForwardedToWorker(t *testing.T) {
	c := New(fastCfg())
	defer c.Close()
	a := newFakeWorker("a")
	c.AddWorker(a)

	sp := specOwnedBy(t, 0, "a", []string{"a"})
	j, err := c.Submit([]service.CellSpec{sp}, service.SubmitOptions{Tenant: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	waitJobDone(t, j)
	j2, err := c.Submit([]service.CellSpec{sp}, service.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitJobDone(t, j2)

	a.mu.Lock()
	got := append([]string(nil), a.tenants...)
	a.mu.Unlock()
	if len(got) != 2 || got[0] != "alice" || got[1] != tenant.Default {
		t.Fatalf("forwarded tenants = %v, want [alice %s]", got, tenant.Default)
	}
	if j.Tenant != "alice" || j2.Tenant != tenant.Default {
		t.Fatalf("tracker tenants = %q, %q", j.Tenant, j2.Tenant)
	}
}

// holdWorker keeps remote jobs "running" until released, so quota tests
// can pin coordinator jobs in flight deterministically.
type holdWorker struct {
	*fakeWorker
	hmu  sync.Mutex
	hold bool
}

func (h *holdWorker) Status(ctx context.Context, id string) (service.JobStatus, error) {
	h.hmu.Lock()
	holding := h.hold
	h.hmu.Unlock()
	if holding {
		return service.JobStatus{ID: id, State: service.JobRunning}, nil
	}
	return h.fakeWorker.Status(ctx, id)
}

func (h *holdWorker) release() {
	h.hmu.Lock()
	h.hold = false
	h.hmu.Unlock()
}

func TestCoordinatorQuotas(t *testing.T) {
	cfg := fastCfg()
	cfg.Tenants = tenant.NewRegistry(map[string]tenant.Config{
		"capped": {MaxQueuedJobs: 1, MaxActiveCells: 2},
	})
	c := New(cfg)
	defer c.Close()
	hw := &holdWorker{fakeWorker: newFakeWorker("a"), hold: true}
	c.AddWorker(hw)
	sp := specOwnedBy(t, 0, "a", []string{"a"})

	j, err := c.Submit([]service.CellSpec{sp}, service.SubmitOptions{Tenant: "capped"})
	if err != nil {
		t.Fatal(err)
	}
	// One job in flight: the jobs quota refuses a second.
	_, err = c.Submit([]service.CellSpec{sp}, service.SubmitOptions{Tenant: "capped"})
	var qe *service.QuotaError
	if !errors.As(err, &qe) || qe.Cause != service.QuotaQueuedJobs {
		t.Fatalf("second submit: err=%v, want QuotaError(%s)", err, service.QuotaQueuedJobs)
	}
	// Other tenants are unaffected.
	if _, err := c.Submit([]service.CellSpec{sp}, service.SubmitOptions{Tenant: "free"}); err != nil {
		t.Fatalf("unrelated tenant refused: %v", err)
	}
	// Release: the quota frees when the job concludes.
	hw.release()
	waitJobDone(t, j)
	j3, err := c.Submit([]service.CellSpec{sp, sp, sp}, service.SubmitOptions{Tenant: "capped"})
	if !errors.As(err, &qe) || qe.Cause != service.QuotaActiveCells {
		t.Fatalf("3-cell batch: err=%v (job=%v), want QuotaError(%s)", err, j3, service.QuotaActiveCells)
	}
	j4, err := c.Submit([]service.CellSpec{sp, sp}, service.SubmitOptions{Tenant: "capped"})
	if err != nil {
		t.Fatalf("2-cell batch after release refused: %v", err)
	}
	waitJobDone(t, j4)
}

// refuseWorker models a healthy worker whose admission says no (a
// tenant quota or AIMD shed on the worker side).
type refuseWorker struct {
	*fakeWorker
}

func (r *refuseWorker) Submit(context.Context, service.SubmitRequest, string) (string, error) {
	return "", &RefusedError{Status: http.StatusTooManyRequests, Cause: service.QuotaQueuedJobs, Msg: "429: over quota"}
}

func TestWorkerRefusalShedsGroupNotWorker(t *testing.T) {
	c := New(fastCfg())
	defer c.Close()
	rw := &refuseWorker{fakeWorker: newFakeWorker("a")}
	c.AddWorker(rw)
	sp := specOwnedBy(t, 0, "a", []string{"a"})

	j, err := c.Submit([]service.CellSpec{sp}, service.SubmitOptions{Tenant: "anyone"})
	if err != nil {
		t.Fatal(err)
	}
	waitJobDone(t, j)
	state, msg := j.State()
	if state != service.JobFailed || !strings.Contains(msg, service.QuotaQueuedJobs) {
		t.Fatalf("job = %s %q, want failed with the quota cause in the message", state, msg)
	}
	if !c.isAlive("a") {
		t.Fatal("healthy worker marked dead after refusing a submission")
	}
	if top := c.Topology(); top.WorkersLost != 0 {
		t.Fatalf("workers lost = %d, want 0", top.WorkersLost)
	}
}

// backpressureWorker sheds its first n submits with a bare 429 (AIMD
// gate / full queue — no quota cause), then accepts: a healthy worker
// that is momentarily too busy.
type backpressureWorker struct {
	*fakeWorker
	mu   sync.Mutex
	shed int
}

func (b *backpressureWorker) Submit(ctx context.Context, req service.SubmitRequest, key string) (string, error) {
	b.mu.Lock()
	shed := b.shed > 0
	if shed {
		b.shed--
	}
	b.mu.Unlock()
	if shed {
		return "", &RefusedError{Status: http.StatusTooManyRequests, Msg: "429: shed", RetryAfter: time.Millisecond}
	}
	return b.fakeWorker.Submit(ctx, req, key)
}

func TestBackpressureRetriedNotFailed(t *testing.T) {
	// A bare 429 is "not now", not "never": the coordinator accepted the
	// job at the edge, so a congested worker must cost latency only. Four
	// sheds span the in-place retry budget, forcing a route-around pass
	// before the worker accepts.
	c := New(fastCfg())
	defer c.Close()
	bw := &backpressureWorker{fakeWorker: newFakeWorker("a"), shed: 4}
	c.AddWorker(bw)
	sp := specOwnedBy(t, 0, "a", []string{"a"})

	j, err := c.Submit([]service.CellSpec{sp}, service.SubmitOptions{Tenant: "anyone"})
	if err != nil {
		t.Fatal(err)
	}
	waitJobDone(t, j)
	if state, msg := j.State(); state != service.JobDone {
		t.Fatalf("job = %s %q, want done despite transient backpressure", state, msg)
	}
	if !c.isAlive("a") {
		t.Fatal("busy worker marked dead after shedding load")
	}
	top := c.Topology()
	if top.WorkersLost != 0 || top.JobsRecovered != 0 {
		t.Fatalf("workers lost = %d, jobs recovered = %d, want 0/0: backpressure is routing, not failure recovery",
			top.WorkersLost, top.JobsRecovered)
	}
}

func TestBackpressureBudgetBounded(t *testing.T) {
	// A worker that never stops shedding must not pin the group forever:
	// the migration budget still bounds the retries, and the job fails
	// with the budget message — without the worker ever being marked dead.
	c := New(fastCfg())
	defer c.Close()
	bw := &backpressureWorker{fakeWorker: newFakeWorker("a"), shed: 1 << 30}
	c.AddWorker(bw)
	sp := specOwnedBy(t, 0, "a", []string{"a"})

	j, err := c.Submit([]service.CellSpec{sp}, service.SubmitOptions{Tenant: "anyone"})
	if err != nil {
		t.Fatal(err)
	}
	waitJobDone(t, j)
	state, msg := j.State()
	if state != service.JobFailed || !strings.Contains(msg, "migration budget exhausted") {
		t.Fatalf("job = %s %q, want failed on the migration budget", state, msg)
	}
	if !c.isAlive("a") {
		t.Fatal("shedding worker marked dead")
	}
}

func TestClusterHTTPTenantQuota(t *testing.T) {
	cfg := fastCfg()
	cfg.Tenants = tenant.NewRegistry(map[string]tenant.Config{
		"web": {MaxQueuedJobs: 1},
	})
	c := New(cfg)
	defer c.Close()
	hw := &holdWorker{fakeWorker: newFakeWorker("a"), hold: true}
	c.AddWorker(hw)
	defer hw.release()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	submit := func() *http.Response {
		body := strings.NewReader(`{"cells":[{"type":"stream","streams":[{"kind":"fadd"}]}]}`)
		req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/jobs", body)
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Tenant", "web")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	resp := submit()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("first submit: %d %s", resp.StatusCode, b)
	}
	resp.Body.Close()
	resp = submit()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Quota-Cause"); got != service.QuotaQueuedJobs {
		t.Fatalf("X-Quota-Cause = %q, want %q", got, service.QuotaQueuedJobs)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}

	// The fleet metrics carry the per-tenant shed.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	prom, _ := io.ReadAll(mresp.Body)
	want := `smtd_cluster_tenant_shed_total{tenant="web",edge="coordinator"} 1`
	if !strings.Contains(string(prom), want) {
		t.Fatalf("metrics missing %q", want)
	}
}
