package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"smtexplore/internal/service"
)

// The routing journal replicates the coordinator's routing state to a
// standby: ring membership, admitted jobs, group→worker assignments
// (with remote job IDs), and conclusions. The leader appends one
// CRC-framed line per delta to routing.log and periodically compacts
// into an atomically-written routing.ckpt snapshot; the standby tails
// the log and replays the deltas. On promotion the standby re-adopts
// live groups by their journaled remote IDs instead of re-forwarding
// them — the idempotency keys would make a re-forward safe, but
// adoption costs one status poll instead of a duplicate submission.
const (
	journalFile = "routing.log"
	ckptFile    = "routing.ckpt"
	linePrefix  = "rj1"

	// defaultCompactEvery bounds log growth: appends between checkpoint
	// compactions.
	defaultCompactEvery = 256
)

// Journal record kinds.
const (
	recWorker     = "worker"
	recWorkerDead = "worker-dead"
	recJob        = "job"
	recAssign     = "assign"
	recConclude   = "conclude"
)

// WorkerRec journals a worker joining (or re-addressing).
type WorkerRec struct {
	Name string `json:"name"`
	Addr string `json:"addr"`
}

// JobRec journals one admitted job: everything a promoted standby needs
// to rebuild the client-visible tracker and re-admit the tenant charge.
type JobRec struct {
	ID       string             `json:"id"`
	Specs    []service.CellSpec `json:"specs"`
	Tenant   string             `json:"tenant,omitempty"`
	Priority int                `json:"priority,omitempty"`
	Deadline time.Time          `json:"deadline,omitzero"`
	IdemKey  string             `json:"idem_key,omitempty"`
}

// AssignRec journals one group's current placement. A migration
// re-journals the group with its new worker and remote ID.
type AssignRec struct {
	Job      string `json:"job"`
	Group    int    `json:"group"`
	Worker   string `json:"worker"`
	RemoteID string `json:"remote_id"`
	Idxs     []int  `json:"idxs"`
}

// ConcludeRec journals a job reaching a terminal state.
type ConcludeRec struct {
	Job   string `json:"job"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

// rrec is one journal line: the term fences stale leaders (replay
// ignores records from before the state's newest term), the sequence
// number dedupes replays and orders the delta stream.
type rrec struct {
	Term uint64          `json:"term"`
	Seq  uint64          `json:"seq"`
	Kind string          `json:"kind"`
	Data json.RawMessage `json:"data"`
}

// JobSnap is one job's replicated routing state.
type JobSnap struct {
	Rec    JobRec      `json:"rec"`
	Groups []AssignRec `json:"groups"`
	Done   bool        `json:"done,omitempty"`
	State  string      `json:"state,omitempty"`
	Error  string      `json:"error,omitempty"`
}

// RoutingState is the replicated view a standby rebuilds by replaying
// checkpoint + journal: enough to adopt every live job and rebuild the
// tenant in-flight counters (derived from the live jobs themselves).
type RoutingState struct {
	Term    uint64
	Seq     uint64
	Workers map[string]string // name → addr (dead workers removed)
	Jobs    map[string]*JobSnap
	Order   []string
}

func newRoutingState() *RoutingState {
	return &RoutingState{Workers: make(map[string]string), Jobs: make(map[string]*JobSnap)}
}

// apply folds one record into the state. Stale-leader records (term
// below the newest seen) and replayed sequence numbers are skipped —
// the read-side half of term fencing.
func (st *RoutingState) apply(rec rrec) {
	if rec.Term < st.Term || rec.Seq <= st.Seq {
		return
	}
	st.Term, st.Seq = rec.Term, rec.Seq
	switch rec.Kind {
	case recWorker:
		var w WorkerRec
		if json.Unmarshal(rec.Data, &w) == nil && w.Name != "" {
			st.Workers[w.Name] = w.Addr
		}
	case recWorkerDead:
		var w WorkerRec
		if json.Unmarshal(rec.Data, &w) == nil {
			delete(st.Workers, w.Name)
		}
	case recJob:
		var j JobRec
		if json.Unmarshal(rec.Data, &j) == nil && j.ID != "" {
			if _, dup := st.Jobs[j.ID]; !dup {
				st.Jobs[j.ID] = &JobSnap{Rec: j}
				st.Order = append(st.Order, j.ID)
			}
		}
	case recAssign:
		var a AssignRec
		if json.Unmarshal(rec.Data, &a) != nil {
			return
		}
		js, ok := st.Jobs[a.Job]
		if !ok || a.Group < 0 {
			return
		}
		for len(js.Groups) <= a.Group {
			js.Groups = append(js.Groups, AssignRec{})
		}
		js.Groups[a.Group] = a
	case recConclude:
		var c ConcludeRec
		if json.Unmarshal(rec.Data, &c) != nil {
			return
		}
		if js, ok := st.Jobs[c.Job]; ok {
			js.Done, js.State, js.Error = true, c.State, c.Error
		}
	}
}

// Live returns the IDs of non-terminal jobs in admission order.
func (st *RoutingState) Live() []string {
	var out []string
	for _, id := range st.Order {
		if js := st.Jobs[id]; js != nil && !js.Done {
			out = append(out, id)
		}
	}
	return out
}

// encodeLine frames one record: "rj1 <crc32> <json>\n". The CRC makes
// torn tails (a leader killed mid-write) detectable even when the
// truncated bytes happen to parse.
func encodeLine(rec rrec) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	return fmt.Appendf(nil, "%s %08x %s\n", linePrefix, crc32.ChecksumIEEE(payload), payload), nil
}

// decodeLine parses one frame (without the trailing newline).
func decodeLine(line []byte) (rrec, error) {
	var rec rrec
	rest, ok := bytes.CutPrefix(line, []byte(linePrefix+" "))
	if !ok || len(rest) < 10 {
		return rec, errors.New("cluster: journal line: bad frame")
	}
	var sum uint32
	if _, err := fmt.Sscanf(string(rest[:8]), "%08x", &sum); err != nil || rest[8] != ' ' {
		return rec, errors.New("cluster: journal line: bad checksum field")
	}
	payload := rest[9:]
	if crc32.ChecksumIEEE(payload) != sum {
		return rec, errors.New("cluster: journal line: checksum mismatch")
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, fmt.Errorf("cluster: journal line: %w", err)
	}
	return rec, nil
}

// ckptDoc is the atomic checkpoint snapshot: the state as of Seq, with
// job order preserved. Records at or below Seq in the log are replayed
// no-ops (crash between checkpoint write and log truncation is safe).
type ckptDoc struct {
	Term uint64    `json:"term"`
	Seq  uint64    `json:"seq"`
	Jobs []JobSnap `json:"jobs"`

	WorkerList []WorkerRec `json:"workers"`
}

// LoadRoutingState rebuilds the replicated state from checkpoint +
// journal. A torn or corrupt journal tail is never an error: the
// promoting leader (repair=true) truncates the file at the last valid
// record and adopts what precedes it; a tailing standby (repair=false)
// leaves the file alone — the live leader may still be writing that
// line. consumed is the byte offset of the last valid record, where a
// tailer should resume.
func LoadRoutingState(dir string, repair bool) (st *RoutingState, consumed int64, err error) {
	st = newRoutingState()
	if data, rerr := os.ReadFile(filepath.Join(dir, ckptFile)); rerr == nil {
		var doc ckptDoc
		if json.Unmarshal(data, &doc) == nil {
			st.Term, st.Seq = doc.Term, doc.Seq
			for _, w := range doc.WorkerList {
				st.Workers[w.Name] = w.Addr
			}
			for i := range doc.Jobs {
				js := doc.Jobs[i]
				st.Jobs[js.Rec.ID] = &js
				st.Order = append(st.Order, js.Rec.ID)
			}
		}
	} else if !errors.Is(rerr, fs.ErrNotExist) {
		return nil, 0, rerr
	}

	path := filepath.Join(dir, journalFile)
	data, rerr := os.ReadFile(path)
	if rerr != nil {
		if errors.Is(rerr, fs.ErrNotExist) {
			return st, 0, nil
		}
		return nil, 0, rerr
	}
	consumed = applyLines(st, data, 0)
	if repair && consumed < int64(len(data)) {
		if terr := os.Truncate(path, consumed); terr != nil {
			return nil, 0, fmt.Errorf("cluster: truncating torn journal tail: %w", terr)
		}
	}
	return st, consumed, nil
}

// applyLines replays complete, checksum-valid records from data
// (starting at base bytes into the file) and returns the file offset
// after the last valid record. An invalid or incomplete line stops the
// replay — everything at and after it is the (possibly still being
// written) tail.
func applyLines(st *RoutingState, data []byte, base int64) int64 {
	off := int64(0)
	for {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			return base + off
		}
		rec, err := decodeLine(data[off : off+int64(nl)])
		if err != nil {
			return base + off
		}
		st.apply(rec)
		off += int64(nl) + 1
	}
}

// RJournal is the leader-side journal writer. Every append re-checks
// the leadership fence first: a stale leader (lease stolen while it was
// stalled) gets ErrLeaseLost instead of a write, its onLost hook fires
// once, and the journal refuses all further appends — split-brain is
// structurally impossible past this point.
type RJournal struct {
	dir    string
	fence  func() error // nil: unfenced (single-process use, tests)
	onLost func(error)  // invoked once, on its own goroutine, when fenced off
	every  int

	mu      sync.Mutex
	f       *os.File
	st      *RoutingState
	lost    bool
	appends int
	writes  uint64
}

// OpenRJournal opens the journal for appending under term, repairing
// any torn tail left by the previous leader first. fence is consulted
// before every append (use Lease.Check); onLost is called once when the
// fence trips.
func OpenRJournal(dir string, term uint64, fence func() error, onLost func(error)) (*RJournal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	st, _, err := LoadRoutingState(dir, true)
	if err != nil {
		return nil, err
	}
	st.Term = term
	f, err := os.OpenFile(filepath.Join(dir, journalFile), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &RJournal{dir: dir, fence: fence, onLost: onLost, every: defaultCompactEvery, f: f, st: st}, nil
}

// State exposes the rebuilt routing state for adoption. Callers use it
// before concurrent appends begin (promotion happens single-threaded).
func (j *RJournal) State() *RoutingState { return j.st }

// Seq is the last appended (or loaded) sequence number.
func (j *RJournal) Seq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.st.Seq
}

// Writes counts successful appends this process made.
func (j *RJournal) Writes() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.writes
}

func (j *RJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

func (j *RJournal) append(kind string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.lost {
		return ErrLeaseLost
	}
	if j.fence != nil {
		if err := j.fence(); err != nil {
			j.lost = true
			if j.onLost != nil {
				go j.onLost(err)
			}
			return err
		}
	}
	rec := rrec{Term: j.st.Term, Seq: j.st.Seq + 1, Kind: kind, Data: data}
	line, err := encodeLine(rec)
	if err != nil {
		return err
	}
	if _, err := j.f.Write(line); err != nil {
		return err
	}
	j.f.Sync()
	j.st.apply(rec)
	j.writes++
	j.appends++
	if j.appends >= j.every {
		j.appends = 0
		j.compactLocked()
	}
	return nil
}

// compactLocked snapshots the state (dropping concluded jobs — they
// only linger so a just-failed-over client's status poll still
// resolves) and truncates the log. A tailing standby notices the file
// shrink and reloads from the checkpoint.
func (j *RJournal) compactLocked() {
	doc := ckptDoc{Term: j.st.Term, Seq: j.st.Seq, WorkerList: []WorkerRec{}}
	for name, addr := range j.st.Workers {
		doc.WorkerList = append(doc.WorkerList, WorkerRec{Name: name, Addr: addr})
	}
	sort.Slice(doc.WorkerList, func(a, b int) bool { return doc.WorkerList[a].Name < doc.WorkerList[b].Name })
	var keep []string
	for _, id := range j.st.Order {
		js := j.st.Jobs[id]
		if js == nil {
			continue
		}
		if js.Done {
			delete(j.st.Jobs, id)
			continue
		}
		keep = append(keep, id)
		doc.Jobs = append(doc.Jobs, *js)
	}
	j.st.Order = keep
	data, err := json.Marshal(doc)
	if err != nil {
		return // impossible for these types; skip compaction, keep appending
	}
	if err := atomicWrite(j.dir, ckptFile, append(data, '\n')); err != nil {
		return // disk unhappy: the log keeps the full history, try next round
	}
	j.f.Truncate(0)
}

// Worker journals a (re-)registration; heartbeat noise is deduplicated
// against the current state.
func (j *RJournal) Worker(name, addr string) error {
	j.mu.Lock()
	known := j.st.Workers[name] == addr
	j.mu.Unlock()
	if known {
		return nil
	}
	return j.append(recWorker, WorkerRec{Name: name, Addr: addr})
}

// WorkerDead journals an eviction.
func (j *RJournal) WorkerDead(name string) error {
	j.mu.Lock()
	_, known := j.st.Workers[name]
	j.mu.Unlock()
	if !known {
		return nil
	}
	return j.append(recWorkerDead, WorkerRec{Name: name})
}

// JobStart journals an admitted job.
func (j *RJournal) JobStart(rec JobRec) error { return j.append(recJob, rec) }

// Assign journals a group placement (or re-placement after migration).
func (j *RJournal) Assign(rec AssignRec) error { return j.append(recAssign, rec) }

// Conclude journals a job's terminal state.
func (j *RJournal) Conclude(job, state, errMsg string) error {
	return j.append(recConclude, ConcludeRec{Job: job, State: state, Error: errMsg})
}

// JournalTail is the standby-side reader: poll replays newly appended
// records into the mirrored state. It never repairs the file — the
// leader owns it.
type JournalTail struct {
	dir string

	mu      sync.Mutex
	st      *RoutingState
	offset  int64
	loaded  bool
	pending int64 // unparseable/incomplete tail bytes as of the last poll
}

// NewJournalTail tails the journal in dir; state materializes on the
// first Poll.
func NewJournalTail(dir string) *JournalTail { return &JournalTail{dir: dir} }

// Poll ingests new journal bytes. Safe to call on every standby tick.
func (t *JournalTail) Poll() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.loaded {
		return t.reloadLocked()
	}
	f, err := os.Open(filepath.Join(t.dir, journalFile))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			if t.offset > 0 {
				return t.reloadLocked() // compaction raced the poll
			}
			return nil
		}
		return err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return err
	}
	if info.Size() < t.offset {
		return t.reloadLocked() // leader compacted: restart from the checkpoint
	}
	if info.Size() == t.offset {
		t.pending = 0
		return nil
	}
	data := make([]byte, info.Size()-t.offset)
	if _, err := f.ReadAt(data, t.offset); err != nil && err != io.EOF {
		return err
	}
	t.offset = applyLines(t.st, data, t.offset)
	t.pending = info.Size() - t.offset
	return nil
}

func (t *JournalTail) reloadLocked() error {
	st, consumed, err := LoadRoutingState(t.dir, false)
	if err != nil {
		return err
	}
	t.st, t.offset, t.loaded, t.pending = st, consumed, true, 0
	return nil
}

// State returns the mirrored routing state (nil before the first Poll).
func (t *JournalTail) State() *RoutingState {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.st
}

// Seq is the last applied sequence number.
func (t *JournalTail) Seq() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.st == nil {
		return 0
	}
	return t.st.Seq
}

// Lag reports journal bytes the standby has seen but not applied — a
// healthy tail holds this at 0; a torn leader-side write parks the
// unfinished line here until the line completes or a promotion repairs
// it.
func (t *JournalTail) Lag() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pending
}
