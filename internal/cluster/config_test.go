package cluster

import (
	"testing"
	"time"
)

// TestPollDelayJitter pins the jitter contract: every draw stays inside
// PollInterval·[1−j, 1+j], and the draws actually vary — a fleet of
// group pollers must not fire in phase.
func TestPollDelayJitter(t *testing.T) {
	cfg := Config{PollInterval: 100 * time.Millisecond, PollJitter: 0.2}
	cfg.fill()
	lo, hi := 80*time.Millisecond, 120*time.Millisecond
	seen := map[time.Duration]bool{}
	for i := 0; i < 500; i++ {
		d := cfg.pollDelay()
		if d < lo || d > hi {
			t.Fatalf("pollDelay() = %v, want within [%v, %v]", d, lo, hi)
		}
		seen[d] = true
	}
	if len(seen) < 10 {
		t.Errorf("500 draws produced only %d distinct delays — jitter is not spreading", len(seen))
	}
}

func TestPollDelayDefaultsAndDisable(t *testing.T) {
	var def Config
	def.fill()
	if def.PollJitter != 0.2 {
		t.Errorf("default PollJitter = %v, want 0.2", def.PollJitter)
	}

	off := Config{PollInterval: 50 * time.Millisecond, PollJitter: -1}
	off.fill()
	if off.PollJitter != 0 {
		t.Fatalf("negative PollJitter should disable, got %v", off.PollJitter)
	}
	for i := 0; i < 10; i++ {
		if d := off.pollDelay(); d != 50*time.Millisecond {
			t.Fatalf("disabled jitter returned %v, want the exact interval", d)
		}
	}

	over := Config{PollJitter: 7}
	over.fill()
	if over.PollJitter != 1 {
		t.Errorf("PollJitter should cap at 1, got %v", over.PollJitter)
	}
}
