package cluster

// Property tests for the consistent-hash ring. Everything here is
// deterministic — the ring hashes with sha256 and the randomized sweep
// seeds math/rand — so the bounds are tight checks, not flaky
// statistics.

import (
	"fmt"
	"math/rand"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Shaped like real cell labels, not opaque integers.
		keys[i] = fmt.Sprintf("kernel:mm/tlp-fine/N=%d", i)
	}
	return keys
}

func ownersOf(r *Ring, keys []string) map[string]string {
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		out[k] = r.Owner(k)
	}
	return out
}

// Load imbalance stays bounded across fleet sizes: with DefaultVnodes
// virtual nodes the heaviest worker owns at most the fair share
// ceil(K/N) plus a slack that shrinks in relative terms as the fleet
// grows. The slack constant (80% of fair share) is the contract the
// coordinator's capacity planning leans on; tightening vnodes tightens
// it.
func TestRingBalanceAcrossFleetSizes(t *testing.T) {
	const K = 4096
	keys := ringKeys(K)
	for n := 1; n <= 16; n++ {
		r := NewRing(0)
		for i := 0; i < n; i++ {
			r.Add(fmt.Sprintf("worker-%d", i))
		}
		counts := make(map[string]int)
		for _, k := range keys {
			owner := r.Owner(k)
			if owner == "" {
				t.Fatalf("n=%d: key %q has no owner", n, k)
			}
			counts[owner]++
		}
		if len(counts) != n {
			t.Fatalf("n=%d: only %d of %d nodes own keys", n, len(counts), n)
		}
		fair := (K + n - 1) / n // ceil(K/N)
		slack := fair * 4 / 5
		for node, c := range counts {
			if c > fair+slack {
				t.Errorf("n=%d: %s owns %d keys, above fair %d + slack %d", n, node, c, fair, slack)
			}
		}
	}
}

// A join moves keys only onto the new node: every key either keeps its
// owner or moves to the joiner, and the moved fraction is on the order
// of K/(N+1) — the minimal-remap property that keeps a join from
// flushing the fleet's warm caches.
func TestRingJoinMovesOnlyToNewNode(t *testing.T) {
	const K = 4096
	keys := ringKeys(K)
	for n := 1; n <= 16; n++ {
		r := NewRing(0)
		for i := 0; i < n; i++ {
			r.Add(fmt.Sprintf("worker-%d", i))
		}
		before := ownersOf(r, keys)
		r.Add("joiner")
		moved := 0
		for _, k := range keys {
			after := r.Owner(k)
			if after == before[k] {
				continue
			}
			if after != "joiner" {
				t.Fatalf("n=%d: key %q moved %s -> %s, not to the joiner", n, k, before[k], after)
			}
			moved++
		}
		if moved == 0 {
			t.Fatalf("n=%d: joiner owns no keys", n)
		}
		// Expected moved ≈ K/(n+1); allow 2x before calling it a remap bug.
		if limit := 2 * K / (n + 1); moved > limit {
			t.Errorf("n=%d: join moved %d keys, want <= %d (~K/N)", n, moved, limit)
		}
	}
}

// A leave moves only the departed node's keys: every key owned by a
// survivor keeps its owner exactly, so a worker death invalidates only
// the dead worker's share of the keyspace.
func TestRingLeaveMovesOnlyDepartedKeys(t *testing.T) {
	const K = 4096
	keys := ringKeys(K)
	for n := 2; n <= 16; n++ {
		r := NewRing(0)
		for i := 0; i < n; i++ {
			r.Add(fmt.Sprintf("worker-%d", i))
		}
		before := ownersOf(r, keys)
		victim := "worker-0"
		r.Remove(victim)
		for _, k := range keys {
			after := r.Owner(k)
			if before[k] == victim {
				if after == victim {
					t.Fatalf("n=%d: key %q still owned by removed node", n, k)
				}
				continue
			}
			if after != before[k] {
				t.Fatalf("n=%d: key %q moved %s -> %s though its owner survived", n, k, before[k], after)
			}
		}
	}
}

// Randomized join/leave sweep: after any sequence of membership
// changes, ownership depends only on the surviving node set — an
// incrementally-maintained ring answers identically to one built fresh
// from the same members. This is the property that lets a restarted
// coordinator rebuild routing from registrations alone.
func TestRingMembershipSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const K = 512
	keys := ringKeys(K)
	r := NewRing(64)
	live := make(map[string]bool)
	pool := make([]string, 24)
	for i := range pool {
		pool[i] = fmt.Sprintf("node-%02d", i)
	}
	for op := 0; op < 80; op++ {
		name := pool[rng.Intn(len(pool))]
		if live[name] && rng.Intn(2) == 0 {
			r.Remove(name)
			delete(live, name)
		} else {
			r.Add(name)
			live[name] = true
		}
		fresh := NewRing(64)
		// Insertion order shuffled: ownership must not depend on it.
		perm := rng.Perm(len(pool))
		for _, i := range perm {
			if live[pool[i]] {
				fresh.Add(pool[i])
			}
		}
		if got, want := r.Len(), len(live); got != want {
			t.Fatalf("op %d: Len = %d, want %d", op, got, want)
		}
		for _, k := range keys {
			if got, want := r.Owner(k), fresh.Owner(k); got != want {
				t.Fatalf("op %d: incremental ring owns %q via %q, fresh ring via %q", op, k, got, want)
			}
		}
	}
}

func TestRingEmptyAndIdempotentOps(t *testing.T) {
	r := NewRing(0)
	if got := r.Owner("anything"); got != "" {
		t.Fatalf("empty ring Owner = %q, want \"\"", got)
	}
	r.Remove("ghost") // no-op
	r.Add("a")
	r.Add("a") // idempotent
	if r.Len() != 1 {
		t.Fatalf("Len after double Add = %d, want 1", r.Len())
	}
	if got := r.Owner("anything"); got != "a" {
		t.Fatalf("single-node ring Owner = %q, want a", got)
	}
	r.Remove("a")
	if r.Len() != 0 || r.Owner("anything") != "" {
		t.Fatal("ring not empty after removing its only node")
	}
}
