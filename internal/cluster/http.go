package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"smtexplore/internal/service"
)

// WorkerInfo is one worker's row in the topology view.
type WorkerInfo struct {
	Name  string `json:"name"`
	Addr  string `json:"addr"`
	Alive bool   `json:"alive"`
	// Outstanding is the coordinator's last view of the worker's queued
	// plus active jobs (the steal heuristic's load proxy).
	Outstanding int `json:"outstanding"`
	// QueueWaitEWMASeconds is the worker's recent queue-wait telemetry.
	QueueWaitEWMASeconds float64 `json:"queue_wait_ewma_seconds"`
	// LastHeartbeatAgeSeconds is how long ago this worker last
	// registered or answered a probe (-1: never seen responding).
	LastHeartbeatAgeSeconds float64 `json:"last_heartbeat_age_seconds"`
}

// Topology is the GET /v1/cluster body: the fleet as the coordinator
// sees it.
type Topology struct {
	Workers []WorkerInfo `json:"workers"`
	Live    int          `json:"live"`
	Vnodes  int          `json:"vnodes"`

	CellsForwarded uint64 `json:"cells_forwarded"`
	Steals         uint64 `json:"steals"`
	JobsRecovered  uint64 `json:"jobs_recovered"`
	MigratedCells  uint64 `json:"migrated_cells"`
	WorkersLost    uint64 `json:"workers_lost"`
	Registrations  uint64 `json:"registrations"`

	// HA fields, set only when the coordinator runs as half of a pair.
	Role                   string   `json:"role,omitempty"` // "leader" | "standby"
	LeaderAddr             string   `json:"leader_addr,omitempty"`
	LeaseTerm              uint64   `json:"lease_term,omitempty"`
	JournalSeq             uint64   `json:"journal_seq,omitempty"`
	StandbyLagBytes        int64    `json:"standby_lag_bytes,omitempty"`
	JobsAdopted            uint64   `json:"jobs_adopted,omitempty"`
	Promotions             uint64   `json:"promotions,omitempty"`
	Demotions              uint64   `json:"demotions,omitempty"`
	FailoverLatencySeconds float64  `json:"failover_latency_seconds,omitempty"`
	Peers                  []string `json:"peers,omitempty"`
}

// Topology snapshots the fleet for /v1/cluster and smtctl cluster.
func (c *Coordinator) Topology() Topology {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := Topology{
		Vnodes:         c.ring.vnodes,
		CellsForwarded: c.cellsForwarded,
		Steals:         c.steals,
		JobsRecovered:  c.jobsRecovered,
		MigratedCells:  c.migratedCells,
		WorkersLost:    c.workersLost,
		Registrations:  c.registrations,
	}
	t.JobsAdopted = c.jobsAdopted
	for _, n := range sortedNamesLocked(c.members) {
		m := c.members[n]
		hbAge := -1.0
		if !m.lastSeen.IsZero() {
			hbAge = time.Since(m.lastSeen).Seconds()
		}
		t.Workers = append(t.Workers, WorkerInfo{
			Name:                    n,
			Addr:                    m.w.Addr(),
			Alive:                   m.alive,
			Outstanding:             outstanding(m),
			QueueWaitEWMASeconds:    m.stats.QueueWaitEWMASeconds,
			LastHeartbeatAgeSeconds: hbAge,
		})
		if m.alive {
			t.Live++
		}
	}
	return t
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// Handler serves the coordinator's HTTP API. The job surface is
// byte-for-byte the single daemon's (submit/list/status/cancel/events/
// result/cell result), which is what makes smtctl and every existing
// client cluster-transparent; /v1/cluster and /v1/cluster/register are
// the only coordinator-specific additions.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", c.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", c.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", c.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", c.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", c.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/result", c.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/cells/{cell}/result", c.handleCellResult)
	mux.HandleFunc("GET /v1/cluster", c.handleTopology)
	mux.HandleFunc("POST /v1/cluster/register", c.handleRegister)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	return mux
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req service.SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	opts := service.SubmitOptions{IdemKey: r.Header.Get("Idempotency-Key"), Priority: req.Priority}
	// Same precedence as the single daemon: the body field carries the
	// tenant between machines, the header wins when a client sets both.
	opts.Tenant = req.Tenant
	if h := r.Header.Get("X-Tenant"); h != "" {
		opts.Tenant = h
	}
	if req.Deadline != "" {
		d, err := time.ParseDuration(req.Deadline)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad deadline: "+err.Error())
			return
		}
		opts.Deadline = time.Now().Add(d)
	}
	j, err := c.Submit(req.Cells, opts)
	var quotaErr *service.QuotaError
	switch {
	case errors.As(err, &quotaErr):
		w.Header().Set("Retry-After", c.retryAfter())
		w.Header().Set("X-Quota-Cause", quotaErr.Cause)
		writeError(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, ErrNoWorkers):
		// The fleet may be mid-restart; workers re-register on their next
		// heartbeat, so retrying shortly is the right client move.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case errors.Is(err, ErrLeaseLost):
		// We were demoted mid-submit: the work was refused before it was
		// journaled, so the client retries against the new leader.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (c *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	var out []service.JobStatus
	for _, j := range c.Jobs() {
		out = append(out, j.Status())
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (c *Coordinator) job(w http.ResponseWriter, r *http.Request) (*service.Job, bool) {
	j, ok := c.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job "+r.PathValue("id"))
	}
	return j, ok
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := c.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (c *Coordinator) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !c.Cancel(id) {
		writeError(w, http.StatusNotFound, "unknown job "+id)
		return
	}
	j, _ := c.Job(id)
	writeJSON(w, http.StatusOK, j.Status())
}

func (c *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := c.job(w, r)
	if !ok {
		return
	}
	service.ServeJobEvents(w, r, j)
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := c.job(w, r)
	if !ok {
		return
	}
	state, errMsg := j.State()
	switch state {
	case service.JobDone, service.JobFailed, service.JobCancelled:
	default:
		writeError(w, http.StatusConflict, fmt.Sprintf("job %s is %s; results are available once it is terminal", j.ID, state))
		return
	}
	writeJSON(w, http.StatusOK, service.JobResult{ID: j.ID, State: state, Error: errMsg, Cells: j.Results()})
}

func (c *Coordinator) handleCellResult(w http.ResponseWriter, r *http.Request) {
	j, ok := c.job(w, r)
	if !ok {
		return
	}
	i, err := strconv.Atoi(r.PathValue("cell"))
	results := j.Results()
	if err != nil || i < 0 || i >= len(results) {
		writeError(w, http.StatusNotFound, "unknown cell "+r.PathValue("cell"))
		return
	}
	res := results[i]
	switch res.State {
	case service.CellDone, service.CellFailed, service.CellCancelled:
	default:
		writeError(w, http.StatusConflict, fmt.Sprintf("cell %d is %s", res.Index, res.State))
		return
	}
	if r.URL.Query().Get("format") == "text" {
		if res.State != service.CellDone {
			writeError(w, http.StatusConflict, fmt.Sprintf("cell %d %s: %s", res.Index, res.State, res.Error))
			return
		}
		if res.Text == "" {
			writeError(w, http.StatusBadRequest, "text format is only available for harness cells")
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, res.Text)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (c *Coordinator) handleTopology(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Topology())
}

// handleRegister admits a worker into the fleet: the -join heartbeat
// POSTs {"name", "addr"} here every few hundred milliseconds, which
// doubles as re-registration after a coordinator or worker restart.
func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name string `json:"name"`
		Addr string `json:"addr"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Addr == "" {
		writeError(w, http.StatusBadRequest, "missing addr")
		return
	}
	c.AddWorker(c.dial(req.Name, req.Addr))
	writeJSON(w, http.StatusOK, c.Topology())
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	t := c.Topology()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if t.Live == 0 {
		http.Error(w, "no live workers", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleMetrics serves Prometheus text metrics: the coordinator's own
// smtd_cluster_* family plus fleet-wide sums of the worker counters the
// smoke tests and dashboards already watch (cells simulated, store
// traffic, checkpoint/resume accounting) — each from the coordinator's
// last telemetry snapshot of that worker.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	t := struct {
		workers, live                       int
		jobsDone, jobsFailed, jobsCancelled uint64
		cellsForwarded, steals              uint64
		jobsRecovered, migratedCells        uint64
		jobsAdopted                         uint64
		workersLost, registrations          uint64
	}{
		workers:        len(c.members),
		jobsDone:       c.jobsDone,
		jobsFailed:     c.jobsFailed,
		jobsCancelled:  c.jobsCancelled,
		cellsForwarded: c.cellsForwarded,
		steals:         c.steals,
		jobsRecovered:  c.jobsRecovered,
		migratedCells:  c.migratedCells,
		jobsAdopted:    c.jobsAdopted,
		workersLost:    c.workersLost,
		registrations:  c.registrations,
	}
	var agg service.Metrics
	// Fleet-wide per-tenant rollup: each worker's last telemetry summed
	// by tenant, plus the coordinator's own admission-edge sheds and
	// in-flight gauges (which no worker can see).
	type tenantAgg struct {
		jobsAdmitted, cellsDone, cellsFailed uint64
		cyclesCharged, workerSheds           uint64
		coordSheds                           uint64
		inflightJobs, inflightCells          int
	}
	tenants := make(map[string]*tenantAgg)
	trow := func(name string) *tenantAgg {
		ta, ok := tenants[name]
		if !ok {
			ta = &tenantAgg{}
			tenants[name] = ta
		}
		return ta
	}
	names := sortedNamesLocked(c.members)
	for _, n := range names {
		m := c.members[n]
		if m.alive {
			t.live++
		}
		if !m.statsOK {
			continue
		}
		agg.CellsSimulated += m.stats.CellsSimulated
		agg.CellsDone += m.stats.CellsDone
		agg.CacheHits += m.stats.CacheHits
		agg.StoreHits += m.stats.StoreHits
		agg.StoreWrites += m.stats.StoreWrites
		agg.CheckpointsWritten += m.stats.CheckpointsWritten
		agg.CheckpointsRestored += m.stats.CheckpointsRestored
		agg.ResumeCyclesSaved += m.stats.ResumeCyclesSaved
		for tn, tm := range m.stats.Tenants {
			ta := trow(tn)
			ta.jobsAdmitted += tm.JobsAdmitted
			ta.cellsDone += tm.CellsDone
			ta.cellsFailed += tm.CellsFailed
			ta.cyclesCharged += tm.CyclesCharged
			ta.workerSheds += tm.ShedQueuedJobs + tm.ShedActiveCells + tm.ShedCycleBudget
		}
	}
	for tn, n := range c.tenantSheds {
		trow(tn).coordSheds = n
	}
	for tn, n := range c.tenantJobs {
		trow(tn).inflightJobs = n
	}
	for tn, n := range c.tenantCells {
		trow(tn).inflightCells = n
	}
	tenantNames := make([]string, 0, len(tenants))
	for tn := range tenants {
		tenantNames = append(tenantNames, tn)
	}
	sort.Strings(tenantNames)
	c.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	g := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	cnt := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %v\n", name, help, name, name, v)
	}
	g("smtd_cluster_workers", "Registered workers.", t.workers)
	g("smtd_cluster_workers_live", "Workers currently on the ring.", t.live)
	cnt("smtd_cluster_jobs_done_total", "Coordinator jobs finished successfully.", t.jobsDone)
	cnt("smtd_cluster_jobs_failed_total", "Coordinator jobs finished failed.", t.jobsFailed)
	cnt("smtd_cluster_jobs_cancelled_total", "Coordinator jobs cancelled.", t.jobsCancelled)
	cnt("smtd_cluster_cells_forwarded_total", "Cells forwarded to workers.", t.cellsForwarded)
	cnt("smtd_cluster_steals_total", "Groups rerouted off overloaded ring owners.", t.steals)
	cnt("smtd_cluster_jobs_recovered_total", "Groups migrated off dead workers.", t.jobsRecovered)
	cnt("smtd_cluster_migrated_cells_total", "Cells migrated off dead workers.", t.migratedCells)
	cnt("smtd_cluster_jobs_adopted_total", "Jobs re-adopted from the routing journal after promotion.", t.jobsAdopted)
	cnt("smtd_cluster_workers_lost_total", "Workers declared dead.", t.workersLost)
	cnt("smtd_cluster_registrations_total", "Worker (re-)registrations.", t.registrations)
	cnt("smtd_cluster_fleet_cells_simulated_total", "Fleet-wide simulator runs (last telemetry).", agg.CellsSimulated)
	cnt("smtd_cluster_fleet_cells_done_total", "Fleet-wide cells finished (last telemetry).", agg.CellsDone)
	cnt("smtd_cluster_fleet_store_hits_total", "Fleet-wide shared-store hits (last telemetry).", agg.StoreHits)
	cnt("smtd_cluster_fleet_store_writes_total", "Fleet-wide shared-store writes (last telemetry).", agg.StoreWrites)
	cnt("smtd_cluster_fleet_checkpoints_written_total", "Fleet-wide checkpoints written (last telemetry).", agg.CheckpointsWritten)
	cnt("smtd_cluster_fleet_checkpoints_restored_total", "Fleet-wide checkpoints restored (last telemetry).", agg.CheckpointsRestored)
	cnt("smtd_cluster_fleet_resume_cycles_saved_total", "Fleet-wide cycles resumed instead of re-simulated (last telemetry).", agg.ResumeCyclesSaved)

	if len(tenantNames) > 0 {
		row := func(name, labels string, v any) {
			fmt.Fprintf(w, "%s{%s} %v\n", name, labels, v)
		}
		fmt.Fprintln(w, "# HELP smtd_cluster_tenant_jobs_admitted_total Fleet-wide jobs admitted per tenant (last telemetry).\n# TYPE smtd_cluster_tenant_jobs_admitted_total counter")
		for _, tn := range tenantNames {
			row("smtd_cluster_tenant_jobs_admitted_total", fmt.Sprintf("tenant=%q", tn), tenants[tn].jobsAdmitted)
		}
		fmt.Fprintln(w, "# HELP smtd_cluster_tenant_cells_total Fleet-wide finished cells per tenant and state (last telemetry).\n# TYPE smtd_cluster_tenant_cells_total counter")
		for _, tn := range tenantNames {
			row("smtd_cluster_tenant_cells_total", fmt.Sprintf("tenant=%q,state=\"done\"", tn), tenants[tn].cellsDone)
			row("smtd_cluster_tenant_cells_total", fmt.Sprintf("tenant=%q,state=\"failed\"", tn), tenants[tn].cellsFailed)
		}
		fmt.Fprintln(w, "# HELP smtd_cluster_tenant_cycles_charged_total Fleet-wide simulated cycles charged per tenant (last telemetry).\n# TYPE smtd_cluster_tenant_cycles_charged_total counter")
		for _, tn := range tenantNames {
			row("smtd_cluster_tenant_cycles_charged_total", fmt.Sprintf("tenant=%q", tn), tenants[tn].cyclesCharged)
		}
		fmt.Fprintln(w, "# HELP smtd_cluster_tenant_shed_total Per-tenant quota sheds, split by enforcement edge.\n# TYPE smtd_cluster_tenant_shed_total counter")
		for _, tn := range tenantNames {
			row("smtd_cluster_tenant_shed_total", fmt.Sprintf("tenant=%q,edge=\"coordinator\"", tn), tenants[tn].coordSheds)
			row("smtd_cluster_tenant_shed_total", fmt.Sprintf("tenant=%q,edge=\"worker\"", tn), tenants[tn].workerSheds)
		}
		fmt.Fprintln(w, "# HELP smtd_cluster_tenant_inflight_jobs Coordinator jobs currently in flight per tenant.\n# TYPE smtd_cluster_tenant_inflight_jobs gauge")
		for _, tn := range tenantNames {
			row("smtd_cluster_tenant_inflight_jobs", fmt.Sprintf("tenant=%q", tn), tenants[tn].inflightJobs)
		}
		fmt.Fprintln(w, "# HELP smtd_cluster_tenant_inflight_cells Coordinator cells currently in flight per tenant.\n# TYPE smtd_cluster_tenant_inflight_cells gauge")
		for _, tn := range tenantNames {
			row("smtd_cluster_tenant_inflight_cells", fmt.Sprintf("tenant=%q", tn), tenants[tn].inflightCells)
		}
	}
}
