package cluster

// Coordinator logic tests against in-process fake workers: routing by
// ring ownership, stealing on telemetry divergence, migration off dead
// workers, cancellation fan-out and the cluster HTTP surface. The
// conformance and chaos tests against real worker services live in
// conformance_test.go.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"smtexplore/internal/service"
)

// fakeWorker is an in-process Worker that finishes every submitted cell
// instantly. Failure modes are scripted per instance.
type fakeWorker struct {
	name string

	mu        sync.Mutex
	stats     service.Metrics
	seq       int
	jobs      map[string]service.JobResult
	submitted int
	// tenants records each submission's forwarded tenant, in order.
	tenants   []string
	cancelled map[string]bool
	// dead makes every call after Submit fail, modelling a worker that
	// accepted work and then crashed.
	dead bool
	// refuseSubmit fails submissions outright.
	refuseSubmit bool
	// healthDelay makes Health slow (but still successful): the
	// slow-but-alive worker the probe-timeout regression test needs.
	healthDelay time.Duration
}

func newFakeWorker(name string) *fakeWorker {
	return &fakeWorker{name: name, jobs: make(map[string]service.JobResult), cancelled: make(map[string]bool)}
}

func (f *fakeWorker) Name() string { return f.name }
func (f *fakeWorker) Addr() string { return "fake:" + f.name }

func (f *fakeWorker) Submit(_ context.Context, req service.SubmitRequest, _ string) (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.refuseSubmit {
		return "", fmt.Errorf("%s: refusing submits", f.name)
	}
	f.submitted++
	f.tenants = append(f.tenants, req.Tenant)
	f.seq++
	id := fmt.Sprintf("%s-j%d", f.name, f.seq)
	res := service.JobResult{ID: id, State: service.JobDone}
	for i, sp := range req.Cells {
		res.Cells = append(res.Cells, service.CellResult{
			Index: i, Label: sp.Label(), State: service.CellDone, CPI: []float64{1},
		})
	}
	f.jobs[id] = res
	return id, nil
}

func (f *fakeWorker) Status(_ context.Context, id string) (service.JobStatus, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead {
		return service.JobStatus{}, fmt.Errorf("%s: connection refused", f.name)
	}
	res, ok := f.jobs[id]
	if !ok {
		return service.JobStatus{}, fmt.Errorf("unknown job %s", id)
	}
	return service.JobStatus{ID: id, State: res.State}, nil
}

func (f *fakeWorker) Result(_ context.Context, id string) (service.JobResult, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead {
		return service.JobResult{}, fmt.Errorf("%s: connection refused", f.name)
	}
	res, ok := f.jobs[id]
	if !ok {
		return service.JobResult{}, fmt.Errorf("unknown job %s", id)
	}
	return res, nil
}

func (f *fakeWorker) Cancel(_ context.Context, id string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cancelled[id] = true
	return nil
}

func (f *fakeWorker) Health(ctx context.Context) error {
	f.mu.Lock()
	delay := f.healthDelay
	f.mu.Unlock()
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead {
		return fmt.Errorf("%s: connection refused", f.name)
	}
	return nil
}

func (f *fakeWorker) Stats(context.Context) (service.Metrics, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead {
		return service.Metrics{}, fmt.Errorf("%s: connection refused", f.name)
	}
	return f.stats, nil
}

func (f *fakeWorker) setStats(m service.Metrics) {
	f.mu.Lock()
	f.stats = m
	f.mu.Unlock()
}

func (f *fakeWorker) die() {
	f.mu.Lock()
	f.dead = true
	f.mu.Unlock()
}

// fastCfg keeps coordinator control loops test-speed.
func fastCfg() Config {
	return Config{
		HealthInterval: 20 * time.Millisecond,
		PollInterval:   5 * time.Millisecond,
	}
}

// specOwnedBy finds a valid stream cell whose label the ring assigns to
// owner, so routing tests can aim work at a specific worker.
func specOwnedBy(t *testing.T, vnodes int, owner string, nodes []string) service.CellSpec {
	t.Helper()
	r := NewRing(vnodes)
	for _, n := range nodes {
		r.Add(n)
	}
	for w := uint64(10000); w < 12000; w++ {
		sp := service.CellSpec{Type: service.TypeStream, Streams: []service.StreamSpec{{Kind: "fadd"}}, Window: w}
		if r.Owner(sp.Label()) == owner {
			return sp
		}
	}
	t.Fatalf("no window in [10000,12000) hashes to %s", owner)
	return service.CellSpec{}
}

func waitJobDone(t *testing.T, j *service.Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		state, msg := j.State()
		t.Fatalf("job %s never terminal (state %s %q)", j.ID, state, msg)
	}
}

func TestSubmitRoutesByRingOwner(t *testing.T) {
	c := New(fastCfg())
	defer c.Close()
	a, b := newFakeWorker("a"), newFakeWorker("b")
	c.AddWorker(a)
	c.AddWorker(b)

	nodes := []string{"a", "b"}
	specA := specOwnedBy(t, 0, "a", nodes)
	specB := specOwnedBy(t, 0, "b", nodes)
	j, err := c.Submit([]service.CellSpec{specA, specB}, service.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitJobDone(t, j)
	if state, msg := j.State(); state != service.JobDone {
		t.Fatalf("job = %s %q, want done", state, msg)
	}
	if a.submitted != 1 || b.submitted != 1 {
		t.Fatalf("submissions a=%d b=%d, want 1 and 1 (one group per ring owner)", a.submitted, b.submitted)
	}
	for i, r := range j.Results() {
		if r.State != service.CellDone || len(r.CPI) != 1 {
			t.Fatalf("cell %d = %+v, want done with CPI", i, r)
		}
	}
	top := c.Topology()
	if top.CellsForwarded != 2 || top.Steals != 0 {
		t.Fatalf("forwarded %d steals %d, want 2 and 0", top.CellsForwarded, top.Steals)
	}
}

// An overloaded ring owner loses the group to the least-loaded worker
// when outstanding-job telemetry diverges past the steal margin.
func TestStealFromOverloadedOwner(t *testing.T) {
	c := New(fastCfg())
	defer c.Close()
	busy, idle := newFakeWorker("busy"), newFakeWorker("idle")
	// The queue-wait EWMA corroborates what the outstanding counts say.
	busy.setStats(service.Metrics{JobsActive: 2, QueueDepth: 7, QueueWaitEWMASeconds: 3.5})
	c.AddWorker(busy)
	c.AddWorker(idle)

	sp := specOwnedBy(t, 0, "busy", []string{"busy", "idle"})
	j, err := c.Submit([]service.CellSpec{sp}, service.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitJobDone(t, j)
	if state, _ := j.State(); state != service.JobDone {
		t.Fatalf("job = %s, want done", state)
	}
	if busy.submitted != 0 || idle.submitted != 1 {
		t.Fatalf("submissions busy=%d idle=%d, want the idle worker to steal the group", busy.submitted, idle.submitted)
	}
	if top := c.Topology(); top.Steals != 1 {
		t.Fatalf("Steals = %d, want 1", top.Steals)
	}
}

// Balanced telemetry must NOT steal: ring affinity wins so warm caches
// stay warm.
func TestNoStealWhenBalanced(t *testing.T) {
	c := New(fastCfg())
	defer c.Close()
	a, b := newFakeWorker("a"), newFakeWorker("b")
	a.setStats(service.Metrics{JobsActive: 1})
	b.setStats(service.Metrics{JobsActive: 1})
	c.AddWorker(a)
	c.AddWorker(b)

	sp := specOwnedBy(t, 0, "a", []string{"a", "b"})
	j, err := c.Submit([]service.CellSpec{sp}, service.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitJobDone(t, j)
	if a.submitted != 1 || b.submitted != 0 {
		t.Fatalf("submissions a=%d b=%d, want the ring owner to keep its group", a.submitted, b.submitted)
	}
	if top := c.Topology(); top.Steals != 0 {
		t.Fatalf("Steals = %d, want 0", top.Steals)
	}
}

// A worker that accepts a job and then stops answering loses the group:
// the coordinator migrates it to a survivor and the job still finishes.
func TestWorkerDeathMigratesGroup(t *testing.T) {
	cfg := fastCfg()
	cfg.PollFailures = 2
	c := New(cfg)
	defer c.Close()
	dying, survivor := newFakeWorker("dying"), newFakeWorker("survivor")
	c.AddWorker(dying)
	c.AddWorker(survivor)

	sp := specOwnedBy(t, 0, "dying", []string{"dying", "survivor"})
	j, err := c.Submit([]service.CellSpec{sp}, service.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The fake finishes instantly, so the submit has landed by the time
	// Submit returns; kill the worker under the coordinator's poller.
	dying.die()
	waitJobDone(t, j)
	if state, msg := j.State(); state != service.JobDone {
		t.Fatalf("job = %s %q, want done after migration", state, msg)
	}
	if survivor.submitted != 1 {
		t.Fatalf("survivor submissions = %d, want 1", survivor.submitted)
	}
	top := c.Topology()
	if top.JobsRecovered < 1 || top.MigratedCells < 1 {
		t.Fatalf("recovered %d migrated %d, want >= 1", top.JobsRecovered, top.MigratedCells)
	}
	if top.WorkersLost < 1 {
		t.Fatalf("WorkersLost = %d, want >= 1", top.WorkersLost)
	}
}

// With every worker gone mid-job and none returning, the group fails
// with an explicit cause instead of hanging.
func TestDeathWithNoSurvivorFailsExplicitly(t *testing.T) {
	cfg := fastCfg()
	cfg.PollFailures = 2
	c := New(cfg)
	defer c.Close()
	only := newFakeWorker("only")
	c.AddWorker(only)
	j, err := c.Submit([]service.CellSpec{{Type: service.TypeStream, Streams: []service.StreamSpec{{Kind: "fadd"}}}}, service.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	only.die()
	waitJobDone(t, j)
	state, _ := j.State()
	if state != service.JobFailed {
		t.Fatalf("job = %s, want failed", state)
	}
	res := j.Results()[0]
	if res.State != service.CellFailed || !strings.Contains(res.Error, "no live workers") {
		t.Fatalf("cell = %s %q, want failed with a no-live-workers cause", res.State, res.Error)
	}
}

func TestSubmitWithNoWorkers(t *testing.T) {
	c := New(fastCfg())
	defer c.Close()
	_, err := c.Submit([]service.CellSpec{{Type: service.TypeStream, Streams: []service.StreamSpec{{Kind: "fadd"}}}}, service.SubmitOptions{})
	if err != ErrNoWorkers {
		t.Fatalf("Submit on empty fleet = %v, want ErrNoWorkers", err)
	}
}

func TestSubmitValidatesLikeDaemon(t *testing.T) {
	c := New(fastCfg())
	defer c.Close()
	c.AddWorker(newFakeWorker("a"))
	cases := []struct {
		specs []service.CellSpec
		want  string
	}{
		{nil, "empty batch"},
		{[]service.CellSpec{{Type: "bogus"}}, "unknown cell type"},
		{[]service.CellSpec{{Type: service.TypeStream, Streams: []service.StreamSpec{{Kind: "fadd"}}, Observe: true}}, "no artifact directory"},
	}
	for _, tc := range cases {
		_, err := c.Submit(tc.specs, service.SubmitOptions{})
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("Submit = %v, want error containing %q", err, tc.want)
		}
	}
}

// Idempotent resubmission while the first job is live returns the same
// tracker instead of forwarding the batch twice.
func TestSubmitIdempotency(t *testing.T) {
	c := New(fastCfg())
	defer c.Close()
	w := newFakeWorker("a")
	c.AddWorker(w)
	sp := service.CellSpec{Type: service.TypeStream, Streams: []service.StreamSpec{{Kind: "fadd"}}}
	j1, err := c.Submit([]service.CellSpec{sp}, service.SubmitOptions{IdemKey: "k1"})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := c.Submit([]service.CellSpec{sp}, service.SubmitOptions{IdemKey: "k1"})
	if err != nil {
		t.Fatal(err)
	}
	if j2.ID != j1.ID {
		// The first job may already be terminal (fakes are instant), in
		// which case a fresh job is correct; only a live duplicate is a bug.
		if state, _ := j1.State(); state == service.JobQueued || state == service.JobRunning {
			t.Fatalf("live job duplicated: %s then %s under one idempotency key", j1.ID, j2.ID)
		}
	}
	waitJobDone(t, j1)
	waitJobDone(t, j2)
}

func TestCancelFansOut(t *testing.T) {
	c := New(fastCfg())
	defer c.Close()
	w := newFakeWorker("a")
	c.AddWorker(w)
	j, err := c.Submit([]service.CellSpec{{Type: service.TypeStream, Streams: []service.StreamSpec{{Kind: "fadd"}}}}, service.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Cancel(j.ID) {
		t.Fatal("Cancel on known job = false")
	}
	if c.Cancel("c9999") {
		t.Fatal("Cancel on unknown job = true")
	}
	waitJobDone(t, j)
}

// The registration endpoint and topology view: a joining worker lands
// on the ring, /healthz flips with fleet liveness, and /metrics carries
// the cluster counters.
func TestClusterHTTPSurface(t *testing.T) {
	c := New(fastCfg())
	defer c.Close()
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	// No workers: healthz 503, submit 503.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz on empty fleet = %d, want 503", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"cells":[{"type":"stream","streams":[{"kind":"fadd"}]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit on empty fleet = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("503 submit carries no Retry-After")
	}

	// Register a (fake-backed) worker via the API the -join loop uses.
	w := newFakeWorker("w1")
	c.AddWorker(w)
	resp, err = http.Post(ts.URL+"/v1/cluster/register", "application/json",
		strings.NewReader(`{"name":"w1","addr":"127.0.0.1:1"}`))
	if err != nil {
		t.Fatal(err)
	}
	var top Topology
	if err := json.NewDecoder(resp.Body).Decode(&top); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(top.Workers) != 1 || !top.Workers[0].Alive {
		t.Fatalf("register = %d %+v, want 200 with one live worker", resp.StatusCode, top)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz with live worker = %d, want 200", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{"smtd_cluster_workers 1", "smtd_cluster_steals_total", "smtd_cluster_jobs_recovered_total"} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}

	resp, err = http.Get(ts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&top); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if top.Live != 1 || top.Vnodes != DefaultVnodes {
		t.Fatalf("topology = %+v, want 1 live worker and default vnodes", top)
	}
}
