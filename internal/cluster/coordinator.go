package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"smtexplore/internal/service"
	"smtexplore/internal/tenant"
)

// ErrNoWorkers reports a submission that cannot be placed because the
// ring has no live members (HTTP 503: retrying is reasonable — a worker
// may join or recover).
var ErrNoWorkers = errors.New("cluster: no live workers")

// Config tunes the coordinator. The zero value is production-sane.
type Config struct {
	// Vnodes is the per-worker virtual-node count (<= 0 → DefaultVnodes).
	Vnodes int
	// HealthInterval paces the health/telemetry loop (<= 0 → 500ms).
	HealthInterval time.Duration
	// HealthFailures is how many consecutive failed probes declare a
	// worker dead (<= 0 → 3). Death removes it from the ring and
	// migrates its in-flight groups.
	HealthFailures int
	// StealMargin is the outstanding-jobs (queued+active) divergence
	// between a cell's ring owner and the least-loaded worker beyond
	// which the group is routed to the latter (<= 0 → 2).
	StealMargin int
	// StealWaitFactor steals on queue-wait telemetry: an owner whose
	// recent queue-wait EWMA exceeds the least-loaded worker's by this
	// factor (and is above StealMinWait in absolute terms) is considered
	// overloaded (<= 0 → 4).
	StealWaitFactor float64
	// StealMinWait is the absolute queue-wait floor below which EWMA
	// divergence is noise, not overload (<= 0 → 200ms).
	StealMinWait time.Duration
	// PollInterval paces remote-job progress polling (<= 0 → 75ms).
	PollInterval time.Duration
	// PollJitter spreads each poll wait uniformly over
	// PollInterval·[1−j, 1+j], so a coordinator fronting many groups
	// does not hit every worker in lockstep (0 → 0.2; negative →
	// jitter off; capped at 1).
	PollJitter float64
	// PollFailures is how many consecutive poll errors on a group's
	// worker trigger checkpoint-migration to a survivor (<= 0 → 3).
	PollFailures int
	// Tenants, when set, makes the coordinator enforce per-tenant
	// job/cell quotas against cluster-wide in-flight totals (typically
	// loaded from the same -tenants file the workers use). Nil admits
	// everything; workers still enforce their own local quotas and
	// cycle budgets on forwarded work.
	Tenants *tenant.Registry
}

func (c *Config) fill() {
	if c.HealthInterval <= 0 {
		c.HealthInterval = 500 * time.Millisecond
	}
	if c.HealthFailures <= 0 {
		c.HealthFailures = 3
	}
	if c.StealMargin <= 0 {
		c.StealMargin = 2
	}
	if c.StealWaitFactor <= 0 {
		c.StealWaitFactor = 4
	}
	if c.StealMinWait <= 0 {
		c.StealMinWait = 200 * time.Millisecond
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 75 * time.Millisecond
	}
	switch {
	case c.PollJitter == 0:
		c.PollJitter = 0.2
	case c.PollJitter < 0:
		c.PollJitter = 0
	case c.PollJitter > 1:
		c.PollJitter = 1
	}
	if c.PollFailures <= 0 {
		c.PollFailures = 3
	}
}

// pollDelay is one jittered poll wait: PollInterval scaled by a
// uniform draw from [1−j, 1+j]. Each wait draws independently, so
// group pollers that start together decorrelate within a few rounds.
func (c *Config) pollDelay() time.Duration {
	if c.PollJitter == 0 {
		return c.PollInterval
	}
	f := 1 + c.PollJitter*(2*rand.Float64()-1)
	return time.Duration(float64(c.PollInterval) * f)
}

// member is one registered worker plus the coordinator's view of it:
// liveness from the health loop and the last telemetry snapshot the
// steal heuristic and metric aggregates read.
type member struct {
	w       Worker
	alive   bool
	fails   int
	stats   service.Metrics
	statsOK bool
	// lastStats is when stats was refreshed (steals want fresh numbers).
	lastStats time.Time
}

// group is one coordinator job's sub-batch on one worker. idxs are the
// coordinator-job cell indices, in the order they were forwarded.
type group struct {
	idxs     []int
	worker   string // current assignee (may change across migrations)
	remoteID string // current remote job ID ("" until submitted)
	done     bool
}

// cjob is a coordinator job: the client-visible tracker plus the fan-out
// bookkeeping.
type cjob struct {
	tracker *service.Job
	mu      sync.Mutex
	groups  []*group
	pending int
	cancel  bool // client requested cancellation
}

// Coordinator fronts a fleet of worker smtds behind the single-daemon
// API. Create with New, register workers (statically or via the
// /v1/cluster/register endpoint), serve Handler, Close when done.
type Coordinator struct {
	cfg     Config
	ring    *Ring
	baseCtx context.Context
	abort   context.CancelFunc
	wg      sync.WaitGroup
	started time.Time

	mu      sync.Mutex
	members map[string]*member
	jobs    map[string]*cjob
	order   []string
	idem    map[string]string
	seq     int

	// Per-tenant in-flight accounting behind admitTenantLocked.
	tenantJobs  map[string]int
	tenantCells map[string]int
	tenantSheds map[string]uint64

	// Counters for /metrics.
	jobsDone, jobsFailed, jobsCancelled uint64
	cellsForwarded                      uint64
	steals                              uint64
	jobsRecovered                       uint64
	migratedCells                       uint64
	registrations, workersLost          uint64
}

// New starts a coordinator (and its health loop). The caller owns the
// lifecycle: Close when done.
func New(cfg Config) *Coordinator {
	cfg.fill()
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		cfg:     cfg,
		ring:    NewRing(cfg.Vnodes),
		baseCtx: ctx,
		abort:   cancel,
		started: time.Now(),
		members: make(map[string]*member),
		jobs:    make(map[string]*cjob),
		idem:    make(map[string]string),

		tenantJobs:  make(map[string]int),
		tenantCells: make(map[string]int),
		tenantSheds: make(map[string]uint64),
	}
	c.wg.Add(1)
	go c.healthLoop()
	return c
}

// Close stops the health loop and every group goroutine (their remote
// jobs keep running on the workers; the coordinator just stops
// watching).
func (c *Coordinator) Close() {
	c.abort()
	c.wg.Wait()
}

// AddWorker registers (or revives, or re-addresses) a worker and puts
// it on the ring. Safe to call repeatedly — the join heartbeat does.
func (c *Coordinator) AddWorker(w Worker) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.members[w.Name()]
	if !ok {
		c.members[w.Name()] = &member{w: w, alive: true}
		c.registrations++
	} else {
		// A re-registration is a live worker announcing itself: reset the
		// failure count and adopt the (possibly new) address.
		m.w = w
		m.fails = 0
		if !m.alive {
			m.alive = true
			c.registrations++
		}
	}
	c.ring.Add(w.Name())
}

// RemoveWorker drains a worker out of the ring deliberately (operator
// action); in-flight groups on it migrate exactly as if it had died.
func (c *Coordinator) RemoveWorker(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.markDeadLocked(name)
}

func (c *Coordinator) markDeadLocked(name string) {
	if m, ok := c.members[name]; ok && m.alive {
		m.alive = false
		c.workersLost++
	}
	c.ring.Remove(name)
}

// healthLoop probes every member each interval: liveness via /healthz,
// telemetry via /v1/stats. HealthFailures consecutive failures remove
// the worker from the ring — group goroutines watching their own polls
// migrate the in-flight work.
func (c *Coordinator) healthLoop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.HealthInterval)
	defer tick.Stop()
	for {
		select {
		case <-c.baseCtx.Done():
			return
		case <-tick.C:
		}
		c.probeAll()
	}
}

func (c *Coordinator) probeAll() {
	c.mu.Lock()
	names := make([]string, 0, len(c.members))
	for n, m := range c.members {
		if m.alive {
			names = append(names, n)
		}
	}
	c.mu.Unlock()
	for _, n := range names {
		c.probe(n)
	}
}

func (c *Coordinator) probe(name string) {
	c.mu.Lock()
	m, ok := c.members[name]
	if !ok || !m.alive {
		c.mu.Unlock()
		return
	}
	w := m.w
	c.mu.Unlock()

	ctx, cancel := context.WithTimeout(c.baseCtx, c.cfg.HealthInterval)
	err := w.Health(ctx)
	var stats service.Metrics
	var statsErr error
	if err == nil {
		stats, statsErr = w.Stats(ctx)
	}
	cancel()

	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok = c.members[name]
	if !ok || !m.alive || m.w != w {
		return // re-registered or removed while we probed
	}
	if err != nil {
		m.fails++
		if m.fails >= c.cfg.HealthFailures {
			c.markDeadLocked(name)
		}
		return
	}
	m.fails = 0
	if statsErr == nil {
		m.stats = stats
		m.statsOK = true
		m.lastStats = time.Now()
	}
}

// refreshStats synchronously updates telemetry older than maxAge for
// every live member, so routing decisions see the current queue state
// rather than the last health tick's. Best-effort: a worker that fails
// the refresh keeps its stale snapshot (and the health loop will deal
// with it).
func (c *Coordinator) refreshStats(maxAge time.Duration) {
	c.mu.Lock()
	type target struct {
		name string
		w    Worker
	}
	var stale []target
	for n, m := range c.members {
		if m.alive && time.Since(m.lastStats) > maxAge {
			stale = append(stale, target{n, m.w})
		}
	}
	c.mu.Unlock()
	var wg sync.WaitGroup
	for _, t := range stale {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(c.baseCtx, 500*time.Millisecond)
			defer cancel()
			stats, err := t.w.Stats(ctx)
			if err != nil {
				return
			}
			c.mu.Lock()
			if m, ok := c.members[t.name]; ok && m.w == t.w {
				m.stats = stats
				m.statsOK = true
				m.lastStats = time.Now()
			}
			c.mu.Unlock()
		}()
	}
	wg.Wait()
}

// outstanding is the load proxy behind stealing: jobs a new submission
// would queue behind.
func outstanding(m *member) int {
	return m.stats.JobsActive + m.stats.QueueDepth
}

// leastLoadedLocked picks the live member with the fewest outstanding
// jobs (ties break on name for determinism), skipping names in avoid.
func (c *Coordinator) leastLoadedLocked(avoid map[string]bool) string {
	best := ""
	bestLoad := 0
	for _, n := range sortedNamesLocked(c.members) {
		m := c.members[n]
		if !m.alive || avoid[n] {
			continue
		}
		load := outstanding(m)
		if best == "" || load < bestLoad {
			best, bestLoad = n, load
		}
	}
	return best
}

func sortedNamesLocked(members map[string]*member) []string {
	names := make([]string, 0, len(members))
	for n := range members {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// chooseWorker routes one group: the ring owner unless it is gone
// (fallback to the least-loaded live worker) or overloaded relative to
// the least-loaded worker — outstanding jobs diverging by StealMargin,
// or recent queue-wait EWMA diverging by StealWaitFactor above the
// StealMinWait floor — in which case the group is stolen by the idle
// worker.
func (c *Coordinator) chooseWorker(owner string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	om, ok := c.members[owner]
	if !ok || !om.alive {
		// Dead owner: not a steal, just routing around a hole in the ring
		// the health loop has not (or has) already closed.
		return c.leastLoadedLocked(nil)
	}
	idle := c.leastLoadedLocked(nil)
	if idle == "" || idle == owner {
		return owner
	}
	im := c.members[idle]
	switch {
	case outstanding(om)-outstanding(im) >= c.cfg.StealMargin:
	case om.stats.QueueWaitEWMASeconds > c.cfg.StealWaitFactor*im.stats.QueueWaitEWMASeconds &&
		om.stats.QueueWaitEWMASeconds > c.cfg.StealMinWait.Seconds():
	default:
		return owner
	}
	c.steals++
	return idle
}

// Submit validates a batch, splits it by ring owner (with stealing),
// forwards the groups to workers, and returns the mirrored job. The
// same admission shapes as the single daemon: empty batches and bad
// cells are rejected; no live workers maps to 503.
func (c *Coordinator) Submit(specs []service.CellSpec, opts service.SubmitOptions) (*service.Job, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("cluster: empty batch")
	}
	for i, sp := range specs {
		// The coordinator serves no artifacts, so observe cells are
		// rejected at this edge exactly as on an artifact-less daemon.
		if err := sp.Validate(false); err != nil {
			return nil, fmt.Errorf("cluster: cell %d: %w", i, err)
		}
	}
	tn := normTenant(opts.Tenant)
	if !tenant.ValidName(tn) {
		return nil, fmt.Errorf("cluster: invalid tenant name %q", tn)
	}
	if c.ring.Len() == 0 {
		return nil, ErrNoWorkers
	}
	// Fresh telemetry before routing: a steal decision made on a stale
	// queue snapshot is just load imbalance with extra steps.
	c.refreshStats(c.cfg.HealthInterval / 2)

	c.mu.Lock()
	if opts.IdemKey != "" {
		if id, ok := c.idem[opts.IdemKey]; ok {
			if cj := c.jobs[id]; cj != nil {
				if state, _ := cj.tracker.State(); state == service.JobQueued || state == service.JobRunning {
					c.mu.Unlock()
					return cj.tracker, nil
				}
			}
		}
	}
	// Quota-gate after the idempotency short-circuit (a replayed submit
	// is the same admitted job, not new demand) and before the job ID is
	// minted, so refused submissions leave no trace.
	if err := c.admitTenantLocked(tn, len(specs)); err != nil {
		c.mu.Unlock()
		return nil, err
	}
	c.seq++
	id := fmt.Sprintf("c%04d", c.seq)
	if opts.IdemKey != "" {
		c.idem[opts.IdemKey] = id
	}
	c.chargeTenantLocked(tn, len(specs))
	c.mu.Unlock()

	j := service.NewRemoteJob(id, specs)
	j.Priority = opts.Priority
	j.Deadline = opts.Deadline
	j.Tenant = tn
	cj := &cjob{tracker: j}

	// Group cells by ring owner of their content label, then let the
	// steal heuristic reroute whole groups.
	byOwner := make(map[string][]int)
	var owners []string
	for i, sp := range specs {
		o := c.ring.Owner(sp.Label())
		if _, ok := byOwner[o]; !ok {
			owners = append(owners, o)
		}
		byOwner[o] = append(byOwner[o], i)
	}
	sort.Strings(owners)
	for _, o := range owners {
		cj.groups = append(cj.groups, &group{idxs: byOwner[o], worker: c.chooseWorker(o)})
	}
	cj.pending = len(cj.groups)

	c.mu.Lock()
	c.jobs[id] = cj
	c.order = append(c.order, id)
	c.cellsForwarded += uint64(len(specs))
	c.mu.Unlock()

	j.Conclude(service.JobRunning, "")
	for _, g := range cj.groups {
		c.wg.Add(1)
		go func(g *group) {
			defer c.wg.Done()
			c.runGroup(cj, g)
			c.groupDone(cj)
		}(g)
	}
	return j, nil
}

// groupDone finalizes the job once its last group lands, folding cell
// outcomes into the job state exactly like the single daemon does.
func (c *Coordinator) groupDone(cj *cjob) {
	cj.mu.Lock()
	cj.pending--
	last := cj.pending == 0
	cj.mu.Unlock()
	if !last {
		return
	}
	state, msg := service.JobDone, ""
	var failed, cancelled int
	results := cj.tracker.Results()
	for _, r := range results {
		switch r.State {
		case service.CellFailed:
			failed++
			if msg == "" {
				msg = fmt.Sprintf("cell %d (%s): %s", r.Index, r.Label, r.Error)
			}
		case service.CellCancelled:
			cancelled++
		}
	}
	switch {
	case failed > 0:
		state = service.JobFailed
	case cancelled > 0:
		state, msg = service.JobCancelled, fmt.Sprintf("%d of %d cells cancelled", cancelled, len(results))
	}
	if cj.tracker.Conclude(state, msg) {
		c.mu.Lock()
		switch state {
		case service.JobDone:
			c.jobsDone++
		case service.JobFailed:
			c.jobsFailed++
		case service.JobCancelled:
			c.jobsCancelled++
		}
		// Conclude returns true exactly once, so the quota release is
		// exactly-once too.
		c.releaseTenantLocked(normTenant(cj.tracker.Tenant), len(cj.tracker.Specs))
		c.mu.Unlock()
	}
}

// groupReq builds the forwarded submission for a group: the subset of
// cells, the job's priority, and whatever remains of its deadline.
func (cj *cjob) groupReq(g *group) service.SubmitRequest {
	// The tenant rides in the request body (not a header) so migrations
	// and retries re-derive it from the tracker for free.
	req := service.SubmitRequest{Priority: cj.tracker.Priority, Tenant: cj.tracker.Tenant}
	for _, i := range g.idxs {
		req.Cells = append(req.Cells, cj.tracker.Specs[i])
	}
	if !cj.tracker.Deadline.IsZero() {
		// Forward the remaining budget; a migration re-derives it, so the
		// deadline holds across worker deaths too.
		d := time.Until(cj.tracker.Deadline)
		if d < time.Millisecond {
			d = time.Millisecond // let the worker shed it explicitly
		}
		req.Deadline = d.String()
	}
	return req
}

// groupIdemKey makes a forwarded submit safe to repeat against the same
// worker without double-enqueueing. Keying on the coordinator job ID
// (not just cell content) keeps two coordinator jobs with identical
// cells from aliasing one remote job — cancelling one must not cancel
// the other.
func groupIdemKey(jobID string, g *group, req service.SubmitRequest) string {
	b, _ := json.Marshal(req)
	sum := sha256.Sum256(fmt.Appendf(b, "|%s|%d", jobID, g.idxs[0]))
	return fmt.Sprintf("%x", sum)
}

// failGroup records a terminal failure for every unfinished cell of g.
func (cj *cjob) failGroup(g *group, msg string) {
	for _, i := range g.idxs {
		cj.tracker.RecordCell(i, service.CellResult{State: service.CellFailed, Error: msg})
	}
}

// runGroup drives one group to completion: submit to its worker, poll
// progress (mirroring per-cell state into the tracker), fetch results
// when terminal — and, when the worker dies mid-flight, migrate the
// group to a survivor, which resumes checkpointed cells from the shared
// store instead of cycle zero.
func (c *Coordinator) runGroup(cj *cjob, g *group) {
	const maxAttempts = 8 // death-and-migration cycles before giving up
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			// A previous worker died (or refused): re-place the group on a
			// surviving member, preferring the ring's new owner view.
			cj.mu.Lock()
			cancelled := cj.cancel
			cj.mu.Unlock()
			if cancelled {
				cj.failGroup(g, "worker lost after cancellation")
				return
			}
			c.mu.Lock()
			next := c.leastLoadedLocked(map[string]bool{g.worker: true})
			if next == "" {
				next = c.leastLoadedLocked(nil) // sole survivor: retry it
			}
			c.mu.Unlock()
			if next == "" {
				cj.failGroup(g, ErrNoWorkers.Error()+" (worker died mid-job, none left to migrate to)")
				return
			}
			c.mu.Lock()
			c.jobsRecovered++
			c.migratedCells += uint64(len(g.idxs))
			c.mu.Unlock()
			g.worker = next
			g.remoteID = ""
		}
		if c.runGroupOn(cj, g) {
			return
		}
	}
	cj.failGroup(g, "cluster: group migration budget exhausted")
}

// worker returns the (current) Worker handle for name, nil if unknown.
func (c *Coordinator) worker(name string) Worker {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m, ok := c.members[name]; ok {
		return m.w
	}
	return nil
}

// runGroupOn runs the group on its currently-assigned worker. It
// returns true when the group is finished (results recorded or failed
// terminally) and false when the worker must be replaced (migration).
func (c *Coordinator) runGroupOn(cj *cjob, g *group) bool {
	w := c.worker(g.worker)
	if w == nil {
		return false
	}
	req := cj.groupReq(g)
	attemptKey := groupIdemKey(cj.tracker.ID, g, req)

	// Submit with a couple of in-place retries (the idempotency key
	// makes a lost 202 harmless), then declare the worker suspect.
	var remoteID string
	var err error
	for try := 0; try < 3; try++ {
		sctx, cancel := context.WithTimeout(c.baseCtx, 10*time.Second)
		remoteID, err = w.Submit(sctx, req, attemptKey)
		cancel()
		if err == nil {
			break
		}
		// A well-formed 4xx refusal (tenant quota, AIMD shed, validation)
		// comes from a healthy worker: the group is shed terminally.
		// Retrying would replay the refused demand, and falling through to
		// the death path would mark live workers dead one by one as the
		// migration loop replays the same refusal across the fleet.
		var refused *RefusedError
		if errors.As(err, &refused) {
			cj.failGroup(g, fmt.Sprintf("worker %s refused batch: %s", g.worker, refused.Error()))
			return true
		}
		select {
		case <-c.baseCtx.Done():
			cj.failGroup(g, "coordinator shut down")
			return true
		case <-time.After(c.cfg.pollDelay()):
		}
	}
	if err != nil {
		c.mu.Lock()
		c.markDeadLocked(g.worker)
		c.mu.Unlock()
		return false
	}
	g.remoteID = remoteID
	for _, i := range g.idxs {
		cj.tracker.MarkCellRunning(i)
	}

	// Poll until the remote job is terminal. Each wait re-draws its
	// jitter, so concurrent group pollers spread their status requests
	// instead of hammering workers in phase.
	fails := 0
	for {
		select {
		case <-c.baseCtx.Done():
			cj.failGroup(g, "coordinator shut down")
			return true
		case <-time.After(c.cfg.pollDelay()):
		}
		// Forward a client cancellation exactly once per assignment.
		cj.mu.Lock()
		wantCancel := cj.cancel
		cj.mu.Unlock()
		if wantCancel {
			cctx, cancel := context.WithTimeout(c.baseCtx, 5*time.Second)
			w.Cancel(cctx, remoteID) // idempotent server-side
			cancel()
		}

		sctx, cancel := context.WithTimeout(c.baseCtx, 5*time.Second)
		st, err := w.Status(sctx, remoteID)
		cancel()
		if err != nil {
			fails++
			if fails >= c.cfg.PollFailures || !c.isAlive(g.worker) {
				c.mu.Lock()
				c.markDeadLocked(g.worker)
				c.mu.Unlock()
				return false
			}
			continue
		}
		fails = 0
		switch st.State {
		case service.JobDone, service.JobFailed, service.JobCancelled:
			rctx, cancel := context.WithTimeout(c.baseCtx, 10*time.Second)
			res, err := w.Result(rctx, remoteID)
			cancel()
			if err != nil {
				// Terminal but unfetchable: treat like a death — the worker
				// may have crashed between the status and the result.
				c.mu.Lock()
				c.markDeadLocked(g.worker)
				c.mu.Unlock()
				return false
			}
			for k, cell := range res.Cells {
				if k < len(g.idxs) {
					cj.tracker.RecordCell(g.idxs[k], cell)
				}
			}
			g.done = true
			return true
		}
	}
}

func (c *Coordinator) isAlive(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.members[name]
	return ok && m.alive
}

// Job looks up a coordinator job's tracker.
func (c *Coordinator) Job(id string) (*service.Job, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cj, ok := c.jobs[id]
	if !ok {
		return nil, false
	}
	return cj.tracker, true
}

// Jobs lists trackers in submission order.
func (c *Coordinator) Jobs() []*service.Job {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*service.Job, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.jobs[id].tracker)
	}
	return out
}

// Cancel aborts a coordinator job: the cancellation fans out to every
// group's remote job; the mirrored outcomes conclude the tracker.
func (c *Coordinator) Cancel(id string) bool {
	c.mu.Lock()
	cj, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return false
	}
	cj.mu.Lock()
	cj.cancel = true
	cj.mu.Unlock()
	// The group poll loops forward the cancel on their next tick.
	return true
}
