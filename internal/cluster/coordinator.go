package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"maps"
	"math/rand"
	"slices"
	"sort"
	"sync"
	"time"

	"smtexplore/internal/service"
	"smtexplore/internal/tenant"
)

// ErrNoWorkers reports a submission that cannot be placed because the
// ring has no live members (HTTP 503: retrying is reasonable — a worker
// may join or recover).
var ErrNoWorkers = errors.New("cluster: no live workers")

// Config tunes the coordinator. The zero value is production-sane.
type Config struct {
	// Vnodes is the per-worker virtual-node count (<= 0 → DefaultVnodes).
	Vnodes int
	// HealthInterval paces the health/telemetry loop (<= 0 → 500ms).
	HealthInterval time.Duration
	// HealthFailures is how many consecutive failed probes declare a
	// worker dead (<= 0 → 3). Death removes it from the ring and
	// migrates its in-flight groups.
	HealthFailures int
	// ProbeTimeout bounds one health/telemetry probe. It is decoupled
	// from HealthInterval on purpose: a worker that answers 200 slower
	// than the probe cadence is slow, not dead, and must not accumulate
	// strikes (<= 0 → max(2s, 2×HealthInterval)).
	ProbeTimeout time.Duration
	// StealMargin is the outstanding-jobs (queued+active) divergence
	// between a cell's ring owner and the least-loaded worker beyond
	// which the group is routed to the latter (<= 0 → 2).
	StealMargin int
	// StealWaitFactor steals on queue-wait telemetry: an owner whose
	// recent queue-wait EWMA exceeds the least-loaded worker's by this
	// factor (and is above StealMinWait in absolute terms) is considered
	// overloaded (<= 0 → 4).
	StealWaitFactor float64
	// StealMinWait is the absolute queue-wait floor below which EWMA
	// divergence is noise, not overload (<= 0 → 200ms).
	StealMinWait time.Duration
	// PollInterval paces remote-job progress polling (<= 0 → 75ms).
	PollInterval time.Duration
	// PollJitter spreads each poll wait uniformly over
	// PollInterval·[1−j, 1+j], so a coordinator fronting many groups
	// does not hit every worker in lockstep (0 → 0.2; negative →
	// jitter off; capped at 1).
	PollJitter float64
	// PollFailures is how many consecutive poll errors on a group's
	// worker trigger checkpoint-migration to a survivor (<= 0 → 3).
	PollFailures int
	// Tenants, when set, makes the coordinator enforce per-tenant
	// job/cell quotas against cluster-wide in-flight totals (typically
	// loaded from the same -tenants file the workers use). Nil admits
	// everything; workers still enforce their own local quotas and
	// cycle budgets on forwarded work.
	Tenants *tenant.Registry

	// Journal, when set, replicates routing deltas (membership, job
	// admissions, group assignments, conclusions) for a standby to tail.
	// Every append is lease-fenced; a fenced-off append refuses the
	// triggering submission rather than accepting unreplicated work. Nil
	// runs the coordinator unreplicated (single-coordinator mode).
	Journal *RJournal
	// OnForward, when set, is called exactly once: on this coordinator's
	// first successful interaction with a worker on behalf of a job
	// (submit accepted, or an adopted group's first status poll). The HA
	// layer uses it to timestamp the end of a failover window.
	OnForward func()
	// Dial constructs the Worker handle for a discovered name/addr pair
	// (register endpoint, journal adoption). Nil → NewRemote; tests
	// inject fakes.
	Dial func(name, addr string) Worker
}

func (c *Config) fill() {
	if c.HealthInterval <= 0 {
		c.HealthInterval = 500 * time.Millisecond
	}
	if c.HealthFailures <= 0 {
		c.HealthFailures = 3
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = max(2*time.Second, 2*c.HealthInterval)
	}
	if c.StealMargin <= 0 {
		c.StealMargin = 2
	}
	if c.StealWaitFactor <= 0 {
		c.StealWaitFactor = 4
	}
	if c.StealMinWait <= 0 {
		c.StealMinWait = 200 * time.Millisecond
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 75 * time.Millisecond
	}
	switch {
	case c.PollJitter == 0:
		c.PollJitter = 0.2
	case c.PollJitter < 0:
		c.PollJitter = 0
	case c.PollJitter > 1:
		c.PollJitter = 1
	}
	if c.PollFailures <= 0 {
		c.PollFailures = 3
	}
}

// pollDelay is one jittered poll wait: PollInterval scaled by a
// uniform draw from [1−j, 1+j]. Each wait draws independently, so
// group pollers that start together decorrelate within a few rounds.
func (c *Config) pollDelay() time.Duration {
	if c.PollJitter == 0 {
		return c.PollInterval
	}
	f := 1 + c.PollJitter*(2*rand.Float64()-1)
	return time.Duration(float64(c.PollInterval) * f)
}

// member is one registered worker plus the coordinator's view of it:
// liveness from the health loop and the last telemetry snapshot the
// steal heuristic and metric aggregates read.
type member struct {
	w       Worker
	alive   bool
	fails   int
	stats   service.Metrics
	statsOK bool
	// lastStats is when stats was refreshed (steals want fresh numbers).
	lastStats time.Time
	// lastSeen is the last registration heartbeat or successful probe —
	// what `smtctl cluster` reports as heartbeat age.
	lastSeen time.Time
}

// group is one coordinator job's sub-batch on one worker. idxs are the
// coordinator-job cell indices, in the order they were forwarded.
type group struct {
	gi       int // index within the cjob, stable across migrations (journal key)
	idxs     []int
	worker   string // current assignee (may change across migrations)
	remoteID string // current remote job ID ("" until submitted)
	adopted  bool   // placement journaled by a previous leader: resume polling, don't re-submit
	done     bool
}

// cjob is a coordinator job: the client-visible tracker plus the fan-out
// bookkeeping.
type cjob struct {
	tracker *service.Job
	mu      sync.Mutex
	groups  []*group
	pending int
	cancel  bool // client requested cancellation
}

// Coordinator fronts a fleet of worker smtds behind the single-daemon
// API. Create with New, register workers (statically or via the
// /v1/cluster/register endpoint), serve Handler, Close when done.
type Coordinator struct {
	cfg     Config
	ring    *Ring
	baseCtx context.Context
	abort   context.CancelFunc
	wg      sync.WaitGroup
	started time.Time

	mu      sync.Mutex
	members map[string]*member
	jobs    map[string]*cjob
	order   []string
	idem    map[string]string
	seq     int

	// Per-tenant in-flight accounting behind admitTenantLocked.
	tenantJobs  map[string]int
	tenantCells map[string]int
	tenantSheds map[string]uint64

	// forwardOnce gates cfg.OnForward (first successful worker
	// interaction on behalf of a job).
	forwardOnce sync.Once

	// Counters for /metrics.
	jobsDone, jobsFailed, jobsCancelled uint64
	cellsForwarded                      uint64
	steals                              uint64
	jobsRecovered                       uint64
	migratedCells                       uint64
	jobsAdopted                         uint64
	registrations, workersLost          uint64
}

// New starts a coordinator (and its health loop). The caller owns the
// lifecycle: Close when done.
func New(cfg Config) *Coordinator {
	cfg.fill()
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		cfg:     cfg,
		ring:    NewRing(cfg.Vnodes),
		baseCtx: ctx,
		abort:   cancel,
		started: time.Now(),
		members: make(map[string]*member),
		jobs:    make(map[string]*cjob),
		idem:    make(map[string]string),

		tenantJobs:  make(map[string]int),
		tenantCells: make(map[string]int),
		tenantSheds: make(map[string]uint64),
	}
	c.wg.Add(1)
	go c.healthLoop()
	return c
}

// Close stops the health loop and every group goroutine (their remote
// jobs keep running on the workers; the coordinator just stops
// watching).
func (c *Coordinator) Close() {
	c.abort()
	c.wg.Wait()
}

// AddWorker registers (or revives, or re-addresses) a worker and puts
// it on the ring. Safe to call repeatedly — the join heartbeat does.
func (c *Coordinator) AddWorker(w Worker) {
	c.mu.Lock()
	m, ok := c.members[w.Name()]
	if !ok {
		c.members[w.Name()] = &member{w: w, alive: true, lastSeen: time.Now()}
		c.registrations++
	} else {
		// A re-registration is a live worker announcing itself: reset the
		// failure count and adopt the (possibly new) address.
		m.w = w
		m.fails = 0
		m.lastSeen = time.Now()
		if !m.alive {
			m.alive = true
			c.registrations++
		}
	}
	c.ring.Add(w.Name())
	c.mu.Unlock()
	if c.cfg.Journal != nil {
		// Deduplicated inside the journal, so the 300ms heartbeat cadence
		// costs one record per membership change, not one per beat.
		c.cfg.Journal.Worker(w.Name(), w.Addr())
	}
}

// RemoveWorker drains a worker out of the ring deliberately (operator
// action); in-flight groups on it migrate exactly as if it had died.
func (c *Coordinator) RemoveWorker(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.markDeadLocked(name)
}

func (c *Coordinator) markDeadLocked(name string) {
	if m, ok := c.members[name]; ok && m.alive {
		m.alive = false
		c.workersLost++
	}
	c.ring.Remove(name)
	if c.cfg.Journal != nil {
		// A dead worker is a rare event; the fsync under c.mu is cheaper
		// than racing a standby that still routes to the corpse.
		c.cfg.Journal.WorkerDead(name)
	}
}

// healthLoop probes every member each interval: liveness via /healthz,
// telemetry via /v1/stats. HealthFailures consecutive failures remove
// the worker from the ring — group goroutines watching their own polls
// migrate the in-flight work.
func (c *Coordinator) healthLoop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.HealthInterval)
	defer tick.Stop()
	for {
		select {
		case <-c.baseCtx.Done():
			return
		case <-tick.C:
		}
		c.probeAll()
	}
}

func (c *Coordinator) probeAll() {
	c.mu.Lock()
	names := make([]string, 0, len(c.members))
	for n, m := range c.members {
		if m.alive {
			names = append(names, n)
		}
	}
	c.mu.Unlock()
	// Parallel probes: one slow worker must not delay (or skip) the
	// others' liveness checks for the whole tick.
	var wg sync.WaitGroup
	for _, n := range names {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.probe(n)
		}()
	}
	wg.Wait()
}

func (c *Coordinator) probe(name string) {
	c.mu.Lock()
	m, ok := c.members[name]
	if !ok || !m.alive {
		c.mu.Unlock()
		return
	}
	w := m.w
	c.mu.Unlock()

	// The probe deadline is ProbeTimeout, NOT HealthInterval: a worker
	// that answers 200 in longer than the probe cadence is slow, not
	// dead. Only transport errors and non-2xx responses are strikes.
	ctx, cancel := context.WithTimeout(c.baseCtx, c.cfg.ProbeTimeout)
	err := w.Health(ctx)
	var stats service.Metrics
	var statsErr error
	if err == nil {
		stats, statsErr = w.Stats(ctx)
	}
	cancel()

	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok = c.members[name]
	if !ok || !m.alive || m.w != w {
		return // re-registered or removed while we probed
	}
	if err != nil {
		m.fails++
		if m.fails >= c.cfg.HealthFailures {
			c.markDeadLocked(name)
		}
		return
	}
	m.fails = 0
	m.lastSeen = time.Now()
	if statsErr == nil {
		m.stats = stats
		m.statsOK = true
		m.lastStats = time.Now()
	}
}

// refreshStats synchronously updates telemetry older than maxAge for
// every live member, so routing decisions see the current queue state
// rather than the last health tick's. Best-effort: a worker that fails
// the refresh keeps its stale snapshot (and the health loop will deal
// with it).
func (c *Coordinator) refreshStats(maxAge time.Duration) {
	c.mu.Lock()
	type target struct {
		name string
		w    Worker
	}
	var stale []target
	for n, m := range c.members {
		if m.alive && time.Since(m.lastStats) > maxAge {
			stale = append(stale, target{n, m.w})
		}
	}
	c.mu.Unlock()
	var wg sync.WaitGroup
	for _, t := range stale {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(c.baseCtx, 500*time.Millisecond)
			defer cancel()
			stats, err := t.w.Stats(ctx)
			if err != nil {
				return
			}
			c.mu.Lock()
			if m, ok := c.members[t.name]; ok && m.w == t.w {
				m.stats = stats
				m.statsOK = true
				m.lastStats = time.Now()
			}
			c.mu.Unlock()
		}()
	}
	wg.Wait()
}

// outstanding is the load proxy behind stealing: jobs a new submission
// would queue behind.
func outstanding(m *member) int {
	return m.stats.JobsActive + m.stats.QueueDepth
}

// leastLoadedLocked picks the live member with the fewest outstanding
// jobs (ties break on name for determinism), skipping names in avoid.
func (c *Coordinator) leastLoadedLocked(avoid map[string]bool) string {
	best := ""
	bestLoad := 0
	for _, n := range sortedNamesLocked(c.members) {
		m := c.members[n]
		if !m.alive || avoid[n] {
			continue
		}
		load := outstanding(m)
		if best == "" || load < bestLoad {
			best, bestLoad = n, load
		}
	}
	return best
}

func sortedNamesLocked(members map[string]*member) []string {
	names := make([]string, 0, len(members))
	for n := range members {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// chooseWorker routes one group: the ring owner unless it is gone
// (fallback to the least-loaded live worker) or overloaded relative to
// the least-loaded worker — outstanding jobs diverging by StealMargin,
// or recent queue-wait EWMA diverging by StealWaitFactor above the
// StealMinWait floor — in which case the group is stolen by the idle
// worker.
func (c *Coordinator) chooseWorker(owner string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	om, ok := c.members[owner]
	if !ok || !om.alive {
		// Dead owner: not a steal, just routing around a hole in the ring
		// the health loop has not (or has) already closed.
		return c.leastLoadedLocked(nil)
	}
	idle := c.leastLoadedLocked(nil)
	if idle == "" || idle == owner {
		return owner
	}
	im := c.members[idle]
	switch {
	case outstanding(om)-outstanding(im) >= c.cfg.StealMargin:
	case om.stats.QueueWaitEWMASeconds > c.cfg.StealWaitFactor*im.stats.QueueWaitEWMASeconds &&
		om.stats.QueueWaitEWMASeconds > c.cfg.StealMinWait.Seconds():
	default:
		return owner
	}
	c.steals++
	return idle
}

// Submit validates a batch, splits it by ring owner (with stealing),
// forwards the groups to workers, and returns the mirrored job. The
// same admission shapes as the single daemon: empty batches and bad
// cells are rejected; no live workers maps to 503.
func (c *Coordinator) Submit(specs []service.CellSpec, opts service.SubmitOptions) (*service.Job, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("cluster: empty batch")
	}
	for i, sp := range specs {
		// The coordinator serves no artifacts, so observe cells are
		// rejected at this edge exactly as on an artifact-less daemon.
		if err := sp.Validate(false); err != nil {
			return nil, fmt.Errorf("cluster: cell %d: %w", i, err)
		}
	}
	tn := normTenant(opts.Tenant)
	if !tenant.ValidName(tn) {
		return nil, fmt.Errorf("cluster: invalid tenant name %q", tn)
	}
	if c.ring.Len() == 0 {
		return nil, ErrNoWorkers
	}
	// Fresh telemetry before routing: a steal decision made on a stale
	// queue snapshot is just load imbalance with extra steps.
	c.refreshStats(c.cfg.HealthInterval / 2)

	c.mu.Lock()
	if opts.IdemKey != "" {
		if id, ok := c.idem[opts.IdemKey]; ok {
			if cj := c.jobs[id]; cj != nil {
				if state, _ := cj.tracker.State(); state == service.JobQueued || state == service.JobRunning {
					c.mu.Unlock()
					return cj.tracker, nil
				}
			}
		}
	}
	// Quota-gate after the idempotency short-circuit (a replayed submit
	// is the same admitted job, not new demand) and before the job ID is
	// minted, so refused submissions leave no trace.
	if err := c.admitTenantLocked(tn, len(specs)); err != nil {
		c.mu.Unlock()
		return nil, err
	}
	c.seq++
	id := fmt.Sprintf("c%04d", c.seq)
	if opts.IdemKey != "" {
		c.idem[opts.IdemKey] = id
	}
	c.chargeTenantLocked(tn, len(specs))
	c.mu.Unlock()

	if c.cfg.Journal != nil {
		// The admission is durable before the client sees a job ID; a
		// fenced-off append (lease stolen mid-submit) refuses the job —
		// accepting work the standby cannot adopt would silently lose it.
		rec := JobRec{ID: id, Specs: specs, Tenant: tn, Priority: opts.Priority,
			Deadline: opts.Deadline, IdemKey: opts.IdemKey}
		if err := c.cfg.Journal.JobStart(rec); err != nil {
			c.mu.Lock()
			c.releaseTenantLocked(tn, len(specs))
			if opts.IdemKey != "" {
				delete(c.idem, opts.IdemKey)
			}
			c.mu.Unlock()
			return nil, err
		}
	}

	j := service.NewRemoteJob(id, specs)
	j.Priority = opts.Priority
	j.Deadline = opts.Deadline
	j.Tenant = tn
	cj := &cjob{tracker: j}

	// Group cells by ring owner of their content label, then let the
	// steal heuristic reroute whole groups.
	byOwner := make(map[string][]int)
	var owners []string
	for i, sp := range specs {
		o := c.ring.Owner(sp.Label())
		if _, ok := byOwner[o]; !ok {
			owners = append(owners, o)
		}
		byOwner[o] = append(byOwner[o], i)
	}
	sort.Strings(owners)
	for gi, o := range owners {
		cj.groups = append(cj.groups, &group{gi: gi, idxs: byOwner[o], worker: c.chooseWorker(o)})
	}
	cj.pending = len(cj.groups)

	c.mu.Lock()
	c.jobs[id] = cj
	c.order = append(c.order, id)
	c.cellsForwarded += uint64(len(specs))
	c.mu.Unlock()

	j.Conclude(service.JobRunning, "")
	for _, g := range cj.groups {
		c.wg.Add(1)
		go func(g *group) {
			defer c.wg.Done()
			c.runGroup(cj, g)
			c.groupDone(cj)
		}(g)
	}
	return j, nil
}

// groupDone finalizes the job once its last group lands, folding cell
// outcomes into the job state exactly like the single daemon does.
func (c *Coordinator) groupDone(cj *cjob) {
	cj.mu.Lock()
	cj.pending--
	last := cj.pending == 0
	cj.mu.Unlock()
	if !last {
		return
	}
	state, msg := service.JobDone, ""
	var failed, cancelled int
	results := cj.tracker.Results()
	for _, r := range results {
		switch r.State {
		case service.CellFailed:
			failed++
			if msg == "" {
				msg = fmt.Sprintf("cell %d (%s): %s", r.Index, r.Label, r.Error)
			}
		case service.CellCancelled:
			cancelled++
		}
	}
	switch {
	case failed > 0:
		state = service.JobFailed
	case cancelled > 0:
		state, msg = service.JobCancelled, fmt.Sprintf("%d of %d cells cancelled", cancelled, len(results))
	}
	if cj.tracker.Conclude(state, msg) {
		c.mu.Lock()
		switch state {
		case service.JobDone:
			c.jobsDone++
		case service.JobFailed:
			c.jobsFailed++
		case service.JobCancelled:
			c.jobsCancelled++
		}
		// Conclude returns true exactly once, so the quota release is
		// exactly-once too.
		c.releaseTenantLocked(normTenant(cj.tracker.Tenant), len(cj.tracker.Specs))
		c.mu.Unlock()
		if c.cfg.Journal != nil {
			// Best-effort: a fenced-off conclude means we just got demoted —
			// the new leader re-adopts the job and concludes it itself.
			c.cfg.Journal.Conclude(cj.tracker.ID, string(state), msg)
		}
	}
}

// groupReq builds the forwarded submission for a group: the subset of
// cells, the job's priority, and whatever remains of its deadline.
func (cj *cjob) groupReq(g *group) service.SubmitRequest {
	// The tenant rides in the request body (not a header) so migrations
	// and retries re-derive it from the tracker for free.
	req := service.SubmitRequest{Priority: cj.tracker.Priority, Tenant: cj.tracker.Tenant}
	for _, i := range g.idxs {
		req.Cells = append(req.Cells, cj.tracker.Specs[i])
	}
	if !cj.tracker.Deadline.IsZero() {
		// Forward the remaining budget; a migration re-derives it, so the
		// deadline holds across worker deaths too.
		d := time.Until(cj.tracker.Deadline)
		if d < time.Millisecond {
			d = time.Millisecond // let the worker shed it explicitly
		}
		req.Deadline = d.String()
	}
	return req
}

// groupIdemKey makes a forwarded submit safe to repeat against the same
// worker without double-enqueueing. Keying on the coordinator job ID
// (not just cell content) keeps two coordinator jobs with identical
// cells from aliasing one remote job — cancelling one must not cancel
// the other.
func groupIdemKey(jobID string, g *group, req service.SubmitRequest) string {
	b, _ := json.Marshal(req)
	sum := sha256.Sum256(fmt.Appendf(b, "|%s|%d", jobID, g.idxs[0]))
	return fmt.Sprintf("%x", sum)
}

// failGroup records a terminal failure for every unfinished cell of g.
func (cj *cjob) failGroup(g *group, msg string) {
	for _, i := range g.idxs {
		cj.tracker.RecordCell(i, service.CellResult{State: service.CellFailed, Error: msg})
	}
}

// runGroup drives one group to completion: submit to its worker, poll
// progress (mirroring per-cell state into the tracker), fetch results
// when terminal — and, when the worker dies mid-flight, migrate the
// group to a survivor, which resumes checkpointed cells from the shared
// store instead of cycle zero.
func (c *Coordinator) runGroup(cj *cjob, g *group) {
	const maxAttempts = 8 // death-and-migration cycles before giving up
	backpressured := false
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			// A previous worker died (or shed backpressure): re-place the
			// group on another member, preferring the ring's new owner view.
			cj.mu.Lock()
			cancelled := cj.cancel
			cj.mu.Unlock()
			if cancelled {
				cj.failGroup(g, "worker lost after cancellation")
				return
			}
			c.mu.Lock()
			next := c.leastLoadedLocked(map[string]bool{g.worker: true})
			if next == "" {
				next = c.leastLoadedLocked(nil) // sole survivor: retry it
			}
			c.mu.Unlock()
			if next == "" {
				cj.failGroup(g, ErrNoWorkers.Error()+" (worker died mid-job, none left to migrate to)")
				return
			}
			if !backpressured {
				// Only a dead worker counts as a recovery; a busy one that
				// shed the group is routing, not failure handling.
				c.mu.Lock()
				c.jobsRecovered++
				c.migratedCells += uint64(len(g.idxs))
				c.mu.Unlock()
			}
			g.worker = next
			g.remoteID = ""
			g.adopted = false // a migrated group re-submits (idempotently)
		}
		var done bool
		done, backpressured = c.runGroupOn(cj, g)
		if done {
			return
		}
	}
	cj.failGroup(g, "cluster: group migration budget exhausted")
}

// worker returns the (current) Worker handle for name, nil if unknown.
func (c *Coordinator) worker(name string) Worker {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m, ok := c.members[name]; ok {
		return m.w
	}
	return nil
}

// runGroupOn runs the group on its currently-assigned worker. done is
// true when the group is finished (results recorded or failed
// terminally); otherwise the worker must be replaced, and backpressured
// distinguishes a busy worker shedding load (leave it on the ring, just
// route around it) from a dead one (mark it lost and migrate).
func (c *Coordinator) runGroupOn(cj *cjob, g *group) (done, backpressured bool) {
	w := c.worker(g.worker)
	if w == nil {
		return false, false
	}
	req := cj.groupReq(g)

	var remoteID string
	if g.adopted && g.remoteID != "" {
		// Journal-adopted placement from the previous leader: the remote
		// job is already running on the worker, so re-adopt by resuming
		// the poll loop instead of re-forwarding the cells.
		remoteID = g.remoteID
	} else {
		attemptKey := groupIdemKey(cj.tracker.ID, g, req)
		// Submit with a couple of in-place retries (the idempotency key
		// makes a lost 202 harmless), then declare the worker suspect.
		var err error
		for try := 0; try < 3; try++ {
			sctx, cancel := context.WithTimeout(c.baseCtx, 10*time.Second)
			remoteID, err = w.Submit(sctx, req, attemptKey)
			cancel()
			if err == nil {
				break
			}
			wait := c.cfg.pollDelay()
			// A well-formed 4xx refusal comes from a healthy worker; never
			// mark it dead — the migration loop replaying the same refusal
			// across the fleet would otherwise kill every live worker in
			// turn. Policy refusals (tenant quota, validation) are terminal:
			// retrying would replay the refused demand and evade enforcement.
			// Bare-429 backpressure is transient — the coordinator already
			// told the client 202, so a full queue must cost latency, not
			// the job: honour the worker's Retry-After (bounded so a
			// congestion-inflated hint cannot stall the group), retry, and
			// after the in-place tries route around the busy worker.
			var refused *RefusedError
			if errors.As(err, &refused) {
				if !refused.Backpressure() {
					cj.failGroup(g, fmt.Sprintf("worker %s refused batch: %s", g.worker, refused.Error()))
					return true, false
				}
				if refused.RetryAfter > wait {
					wait = min(refused.RetryAfter, 2*time.Second)
				}
			}
			select {
			case <-c.baseCtx.Done():
				cj.failGroup(g, "coordinator shut down")
				return true, false
			case <-time.After(wait):
			}
		}
		if err != nil {
			var refused *RefusedError
			if errors.As(err, &refused) && refused.Backpressure() {
				return false, true
			}
			c.mu.Lock()
			c.markDeadLocked(g.worker)
			c.mu.Unlock()
			return false, false
		}
		g.remoteID = remoteID
		c.noteForward()
		if c.cfg.Journal != nil {
			c.cfg.Journal.Assign(AssignRec{Job: cj.tracker.ID, Group: g.gi,
				Worker: g.worker, RemoteID: remoteID, Idxs: g.idxs})
		}
	}
	for _, i := range g.idxs {
		cj.tracker.MarkCellRunning(i)
	}

	// Poll until the remote job is terminal. Each wait re-draws its
	// jitter, so concurrent group pollers spread their status requests
	// instead of hammering workers in phase.
	fails := 0
	for {
		select {
		case <-c.baseCtx.Done():
			cj.failGroup(g, "coordinator shut down")
			return true, false
		case <-time.After(c.cfg.pollDelay()):
		}
		// Forward a client cancellation exactly once per assignment.
		cj.mu.Lock()
		wantCancel := cj.cancel
		cj.mu.Unlock()
		if wantCancel {
			cctx, cancel := context.WithTimeout(c.baseCtx, 5*time.Second)
			w.Cancel(cctx, remoteID) // idempotent server-side
			cancel()
		}

		sctx, cancel := context.WithTimeout(c.baseCtx, 5*time.Second)
		st, err := w.Status(sctx, remoteID)
		cancel()
		if err != nil {
			fails++
			if fails >= c.cfg.PollFailures || !c.isAlive(g.worker) {
				c.mu.Lock()
				c.markDeadLocked(g.worker)
				c.mu.Unlock()
				return false, false
			}
			continue
		}
		fails = 0
		c.noteForward() // adopted groups: first successful poll ends the failover window
		switch st.State {
		case service.JobDone, service.JobFailed, service.JobCancelled:
			rctx, cancel := context.WithTimeout(c.baseCtx, 10*time.Second)
			res, err := w.Result(rctx, remoteID)
			cancel()
			if err != nil {
				// Terminal but unfetchable: treat like a death — the worker
				// may have crashed between the status and the result.
				c.mu.Lock()
				c.markDeadLocked(g.worker)
				c.mu.Unlock()
				return false, false
			}
			for k, cell := range res.Cells {
				if k < len(g.idxs) {
					cj.tracker.RecordCell(g.idxs[k], cell)
				}
			}
			g.done = true
			return true, false
		}
	}
}

func (c *Coordinator) isAlive(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.members[name]
	return ok && m.alive
}

// Job looks up a coordinator job's tracker.
func (c *Coordinator) Job(id string) (*service.Job, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cj, ok := c.jobs[id]
	if !ok {
		return nil, false
	}
	return cj.tracker, true
}

// Jobs lists trackers in submission order.
func (c *Coordinator) Jobs() []*service.Job {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*service.Job, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.jobs[id].tracker)
	}
	return out
}

// Cancel aborts a coordinator job: the cancellation fans out to every
// group's remote job; the mirrored outcomes conclude the tracker.
func (c *Coordinator) Cancel(id string) bool {
	c.mu.Lock()
	cj, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return false
	}
	cj.mu.Lock()
	cj.cancel = true
	cj.mu.Unlock()
	// The group poll loops forward the cancel on their next tick.
	return true
}

// dial resolves a discovered worker address to a Worker handle.
func (c *Coordinator) dial(name, addr string) Worker {
	if c.cfg.Dial != nil {
		return c.cfg.Dial(name, addr)
	}
	return NewRemote(name, addr)
}

// noteForward fires cfg.OnForward exactly once: the HA layer's "the new
// leader is actually moving work" signal.
func (c *Coordinator) noteForward() {
	if c.cfg.OnForward == nil {
		return
	}
	c.forwardOnce.Do(c.cfg.OnForward)
}

// Adopt rebuilds the coordinator's world from replicated routing state —
// the promoted standby's first act. Journaled workers go straight onto
// the ring (heartbeats will confirm them); live jobs get trackers,
// restored tenant charges and idempotency keys, and group runners that
// resume polling the journaled remote IDs instead of re-forwarding the
// cells; jobs that concluded before the failover stay resolvable (state
// only) for clients polling across the switch.
func (c *Coordinator) Adopt(st *RoutingState) {
	if st == nil {
		return
	}
	for _, name := range slices.Sorted(maps.Keys(st.Workers)) {
		if c.worker(name) == nil {
			c.AddWorker(c.dial(name, st.Workers[name]))
		}
	}
	for _, id := range st.Order {
		if js := st.Jobs[id]; js != nil {
			c.adoptJob(id, js)
		}
	}
}

func (c *Coordinator) adoptJob(id string, js *JobSnap) {
	c.mu.Lock()
	if _, dup := c.jobs[id]; dup {
		c.mu.Unlock()
		return
	}
	// Keep the ID sequence above every adopted ID so freshly-minted IDs
	// never collide with the previous leader's.
	var n int
	if _, err := fmt.Sscanf(id, "c%d", &n); err == nil && n > c.seq {
		c.seq = n
	}
	c.mu.Unlock()

	j := service.NewRemoteJob(id, js.Rec.Specs)
	j.Priority = js.Rec.Priority
	j.Deadline = js.Rec.Deadline
	j.Tenant = js.Rec.Tenant
	cj := &cjob{tracker: j}

	if js.Done {
		// Concluded before the failover: keep the terminal state visible
		// (the per-cell payloads were delivered by the old leader and are
		// not replicated — re-run the cells to regenerate them).
		j.Conclude(js.State, js.Error)
		c.mu.Lock()
		c.jobs[id] = cj
		c.order = append(c.order, id)
		c.jobsAdopted++
		c.mu.Unlock()
		return
	}

	// Rebuild groups from journaled assignments; cells whose assignment
	// never reached the journal (the leader died between admission and
	// forwarding) are re-placed from scratch — their deterministic
	// idempotency keys make a racing duplicate submit harmless.
	covered := make(map[int]bool)
	var groups []*group
	for gi, a := range js.Groups {
		if a.RemoteID == "" || len(a.Idxs) == 0 {
			continue
		}
		groups = append(groups, &group{gi: gi, idxs: a.Idxs, worker: a.Worker,
			remoteID: a.RemoteID, adopted: true})
		for _, i := range a.Idxs {
			covered[i] = true
		}
	}
	byOwner := make(map[string][]int)
	var owners []string
	for i, sp := range js.Rec.Specs {
		if covered[i] {
			continue
		}
		o := c.ring.Owner(sp.Label())
		if _, ok := byOwner[o]; !ok {
			owners = append(owners, o)
		}
		byOwner[o] = append(byOwner[o], i)
	}
	sort.Strings(owners)
	for k, o := range owners {
		groups = append(groups, &group{gi: len(js.Groups) + k, idxs: byOwner[o], worker: c.chooseWorker(o)})
	}
	if len(groups) == 0 {
		j.Conclude(service.JobFailed, "cluster: adopted job has no placeable cells")
	}
	cj.groups = groups
	cj.pending = len(groups)

	tn := normTenant(js.Rec.Tenant)
	c.mu.Lock()
	c.jobs[id] = cj
	c.order = append(c.order, id)
	c.jobsAdopted++
	if len(groups) > 0 {
		// The previous leader admitted this work; re-admitting could
		// refuse it, so the quota charge is restored unconditionally.
		c.chargeTenantLocked(tn, len(js.Rec.Specs))
	}
	if js.Rec.IdemKey != "" {
		c.idem[js.Rec.IdemKey] = id
	}
	c.mu.Unlock()
	if len(groups) == 0 {
		return
	}

	j.Conclude(service.JobRunning, "")
	for _, g := range cj.groups {
		c.wg.Add(1)
		go func(g *group) {
			defer c.wg.Done()
			c.runGroup(cj, g)
			c.groupDone(cj)
		}(g)
	}
}
