package cluster

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestLeaseColdStartRaceOneWinner(t *testing.T) {
	// Two cold coordinators race the very first claim. Exactly one may
	// win; the loser must see "held by someone else", not an error.
	dir := t.TempDir()
	const racers = 8
	type result struct {
		term uint64
		won  bool
		err  error
	}
	var (
		start   = make(chan struct{})
		results = make([]result, racers)
		wg      sync.WaitGroup
	)
	for i := range racers {
		l, err := NewLease(dir, fmt.Sprintf("coord-%d", i), fmt.Sprintf("127.0.0.1:%d", 9000+i), time.Second)
		if err != nil {
			t.Fatalf("NewLease: %v", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			term, won, err := l.TryAcquire()
			results[i] = result{term, won, err}
		}()
	}
	close(start)
	wg.Wait()

	winners := 0
	for i, r := range results {
		if r.err != nil {
			t.Errorf("racer %d: unexpected error: %v", i, r.err)
		}
		if r.won {
			winners++
			if r.term == 0 {
				t.Errorf("racer %d won with term 0", i)
			}
		}
	}
	if winners != 1 {
		t.Fatalf("cold-start race produced %d winners, want exactly 1", winners)
	}
	if st, ok, err := ReadLease(dir); err != nil || !ok || st.Expired(time.Now()) {
		t.Fatalf("after race: lease ok=%v expired-or-err (%v); want a live advertisement", ok, err)
	}
}

func TestLeaseStaleLeaderDemotesAfterTheft(t *testing.T) {
	// A leader pauses (GC stall, SIGSTOP) past its TTL; the standby
	// steals the lease. When the stale leader resumes, Renew and Check
	// must both report ErrLeaseLost — never overwrite the thief.
	dir := t.TempDir()
	leader, err := NewLease(dir, "coord-a", "127.0.0.1:9001", 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	term, won, err := leader.TryAcquire()
	if err != nil || !won {
		t.Fatalf("initial acquire: won=%v err=%v", won, err)
	}

	standby, err := NewLease(dir, "coord-b", "127.0.0.1:9002", 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, won, _ := standby.TryAcquire(); won {
		t.Fatal("standby stole an unexpired lease")
	}

	time.Sleep(70 * time.Millisecond) // the leader "pauses" past its TTL
	term2, won, err := standby.TryAcquire()
	if err != nil || !won {
		t.Fatalf("standby steal after expiry: won=%v err=%v", won, err)
	}
	if term2 <= term {
		t.Fatalf("stolen term %d not above old term %d", term2, term)
	}

	// The stale leader wakes up.
	if err := leader.Renew(term); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale Renew: got %v, want ErrLeaseLost", err)
	}
	if err := leader.Check(term); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale Check (journal fence): got %v, want ErrLeaseLost", err)
	}
	// And the thief's lease is intact.
	st, ok, err := ReadLease(dir)
	if err != nil || !ok {
		t.Fatalf("ReadLease: ok=%v err=%v", ok, err)
	}
	if st.Holder != "coord-b" || st.Term != term2 {
		t.Fatalf("lease after stale wakeup: holder=%q term=%d, want coord-b/%d", st.Holder, st.Term, term2)
	}
}

func TestLeaseOrphanedClaimSkipped(t *testing.T) {
	// A claimant that died between creating its O_EXCL claim file and
	// writing the advertisement must not wedge the cluster: once the
	// claim is older than the TTL with no matching lease, the next
	// acquirer steps over the orphaned term.
	dir := t.TempDir()
	orphan := filepath.Join(dir, fmt.Sprintf("term-%08d.claim", 1))
	if err := os.WriteFile(orphan, []byte("dead-coord 127.0.0.1:1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Minute)
	if err := os.Chtimes(orphan, old, old); err != nil {
		t.Fatal(err)
	}

	l, err := NewLease(dir, "coord-a", "127.0.0.1:9001", 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	term, won, err := l.TryAcquire()
	if err != nil || !won {
		t.Fatalf("acquire over orphaned claim: won=%v err=%v", won, err)
	}
	if term != 2 {
		t.Fatalf("won term %d, want 2 (stepped past orphaned term 1)", term)
	}
}

func TestLeaseFreshClaimBlocksAcquire(t *testing.T) {
	// A fresh claim file (claimant alive, advertisement imminent) must
	// make a competing acquirer back off rather than skip the term.
	dir := t.TempDir()
	claim := filepath.Join(dir, fmt.Sprintf("term-%08d.claim", 1))
	if err := os.WriteFile(claim, []byte("other 127.0.0.1:1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := NewLease(dir, "coord-a", "127.0.0.1:9001", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, won, err := l.TryAcquire(); won || err != nil {
		t.Fatalf("acquire against fresh claim: won=%v err=%v, want lost race / nil", won, err)
	}
}

func TestLeaseReleaseHandsOverImmediately(t *testing.T) {
	// Release backdates the advertisement so a standby promotes without
	// waiting out the TTL — the graceful-shutdown handover.
	dir := t.TempDir()
	leader, err := NewLease(dir, "coord-a", "127.0.0.1:9001", 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	term, won, err := leader.TryAcquire()
	if err != nil || !won {
		t.Fatalf("acquire: won=%v err=%v", won, err)
	}
	if err := leader.Release(term); err != nil {
		t.Fatalf("release: %v", err)
	}
	standby, err := NewLease(dir, "coord-b", "127.0.0.1:9002", 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	term2, won, err := standby.TryAcquire()
	if err != nil || !won {
		t.Fatalf("standby acquire after release: won=%v err=%v", won, err)
	}
	if term2 <= term {
		t.Fatalf("handover term %d not above released term %d", term2, term)
	}
}

func TestLeaseRenewKeepsHolding(t *testing.T) {
	dir := t.TempDir()
	l, err := NewLease(dir, "coord-a", "127.0.0.1:9001", 60*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	term, won, err := l.TryAcquire()
	if err != nil || !won {
		t.Fatalf("acquire: won=%v err=%v", won, err)
	}
	for range 4 {
		time.Sleep(l.RenewEvery())
		if err := l.Renew(term); err != nil {
			t.Fatalf("renew: %v", err)
		}
	}
	st, ok, err := ReadLease(dir)
	if err != nil || !ok || st.Expired(time.Now()) {
		t.Fatalf("lease should still be live after renewals: ok=%v err=%v", ok, err)
	}
	// Re-acquire by the same holder over its own (expired) lease keeps
	// working and bumps the term.
	time.Sleep(2 * l.TTL())
	term2, won, err := l.TryAcquire()
	if err != nil || !won || term2 <= term {
		t.Fatalf("self re-acquire: term=%d won=%v err=%v", term2, won, err)
	}
}
