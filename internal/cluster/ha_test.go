package cluster

// HA pair tests against in-process fakes: journal adoption after
// promotion, failover on lease expiry, stale-leader demotion through
// the journal fence, standby redirects, and the slow-worker probe
// regression.

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"smtexplore/internal/service"
)

// TestSlowWorkerSurvivesProbes is the regression for the health prober
// counting slow-but-successful probes as strikes: a worker answering
// 200 in 5× the probe cadence (but inside ProbeTimeout) must stay on
// the ring.
func TestSlowWorkerSurvivesProbes(t *testing.T) {
	cfg := fastCfg() // HealthInterval 20ms → ProbeTimeout defaults to 2s
	c := New(cfg)
	defer c.Close()
	w := newFakeWorker("slow")
	w.healthDelay = 100 * time.Millisecond // 5× the probe cadence, well under ProbeTimeout
	c.AddWorker(w)

	// Under the old behaviour (probe deadline == HealthInterval) three
	// ticks were enough to evict; give it plenty.
	time.Sleep(500 * time.Millisecond)
	if !c.isAlive("slow") {
		t.Fatal("slow-but-successful worker was evicted by the health prober")
	}

	// Sanity check the fix didn't break eviction of actually-dead
	// workers: transport errors must still strike.
	w.die()
	deadline := time.Now().Add(10 * time.Second)
	for c.isAlive("slow") {
		if time.Now().After(deadline) {
			t.Fatal("dead worker never evicted")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// seedJournal writes a canned routing history: worker w1, one live job
// assigned to it under remote ID w1-j1, and optionally a concluded job.
func seedJournal(t *testing.T, dir string, spec service.CellSpec, withAssign bool) {
	t.Helper()
	j, err := OpenRJournal(dir, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Worker("w1", "fake:w1"); err != nil {
		t.Fatal(err)
	}
	rec := JobRec{ID: "c0007", Specs: []service.CellSpec{spec}, Tenant: "light", IdemKey: "idem-7"}
	if err := j.JobStart(rec); err != nil {
		t.Fatal(err)
	}
	if withAssign {
		if err := j.Assign(AssignRec{Job: "c0007", Group: 0, Worker: "w1", RemoteID: "w1-j1", Idxs: []int{0}}); err != nil {
			t.Fatal(err)
		}
	}
}

func adoptSpec() service.CellSpec {
	return service.CellSpec{Type: service.TypeStream, Streams: []service.StreamSpec{{Kind: "fadd"}}, Window: 10000}
}

func TestAdoptResumesLiveGroupWithoutResubmit(t *testing.T) {
	dir := t.TempDir()
	spec := adoptSpec()
	seedJournal(t, dir, spec, true)

	// The remote job already lives on the worker; the promoted
	// coordinator must poll it, not forward a duplicate.
	w := newFakeWorker("w1")
	w.jobs["w1-j1"] = service.JobResult{ID: "w1-j1", State: service.JobDone,
		Cells: []service.CellResult{{Index: 0, Label: spec.Label(), State: service.CellDone, CPI: []float64{1}}}}

	cfg := fastCfg()
	cfg.Dial = func(name, addr string) Worker { return w }
	c := New(cfg)
	defer c.Close()
	st, _, err := LoadRoutingState(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	c.Adopt(st)

	j, ok := c.Job("c0007")
	if !ok {
		t.Fatal("adopted job not resolvable")
	}
	waitJobDone(t, j)
	if state, msg := j.State(); state != service.JobDone {
		t.Fatalf("adopted job state %s (%s), want done", state, msg)
	}
	if got := j.Results()[0]; got.State != service.CellDone || len(got.CPI) != 1 {
		t.Fatalf("adopted job cell result %+v", got)
	}
	w.mu.Lock()
	submitted := w.submitted
	w.mu.Unlock()
	if submitted != 0 {
		t.Fatalf("adoption re-forwarded the group (%d submits); want 0 (poll-only re-adoption)", submitted)
	}
	// The idempotency mapping is restored (live replays would alias) and
	// the ID sequence continues past the adopted ID instead of colliding.
	c.mu.Lock()
	idemID, seq := c.idem["idem-7"], c.seq
	c.mu.Unlock()
	if idemID != "c0007" {
		t.Fatalf("idem mapping after adoption: %q, want c0007", idemID)
	}
	if seq < 7 {
		t.Fatalf("seq %d did not advance past adopted ID c0007", seq)
	}
}

func TestAdoptForwardsUnassignedCells(t *testing.T) {
	// The old leader died between admission and forwarding: no Assign
	// record. The new leader must place and submit the cells itself.
	dir := t.TempDir()
	spec := adoptSpec()
	seedJournal(t, dir, spec, false)

	w := newFakeWorker("w1")
	cfg := fastCfg()
	cfg.Dial = func(name, addr string) Worker { return w }
	c := New(cfg)
	defer c.Close()
	st, _, err := LoadRoutingState(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	c.Adopt(st)

	j, ok := c.Job("c0007")
	if !ok {
		t.Fatal("adopted job not resolvable")
	}
	waitJobDone(t, j)
	if state, _ := j.State(); state != service.JobDone {
		t.Fatalf("state %s, want done", state)
	}
	w.mu.Lock()
	submitted := w.submitted
	w.mu.Unlock()
	if submitted != 1 {
		t.Fatalf("unassigned cells: %d submits, want 1 fresh forward", submitted)
	}
}

func TestAdoptKeepsConcludedJobResolvable(t *testing.T) {
	dir := t.TempDir()
	spec := adoptSpec()
	j1, err := OpenRJournal(dir, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	j1.JobStart(JobRec{ID: "c0003", Specs: []service.CellSpec{spec}, Tenant: "light"})
	j1.Conclude("c0003", service.JobDone, "")
	j1.Close()

	c := New(fastCfg())
	defer c.Close()
	st, _, err := LoadRoutingState(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	c.Adopt(st)
	j, ok := c.Job("c0003")
	if !ok {
		t.Fatal("concluded job vanished across failover")
	}
	if state, _ := j.State(); state != service.JobDone {
		t.Fatalf("state %s, want done", state)
	}
	// No tenant charge may linger for a terminal adoption.
	c.mu.Lock()
	charged := c.tenantJobs["light"]
	c.mu.Unlock()
	if charged != 0 {
		t.Fatalf("terminal adoption left %d in-flight tenant jobs", charged)
	}
}

func haCfg(t *testing.T, dir, name string, w *fakeWorker) HAConfig {
	t.Helper()
	ccfg := fastCfg()
	ccfg.Dial = func(string, string) Worker { return w }
	return HAConfig{
		Name: name, Addr: "127.0.0.1:0/" + name, Dir: dir,
		TTL: 200 * time.Millisecond, Coordinator: ccfg,
	}
}

func waitRole(t *testing.T, n *HANode, want string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if role, _ := n.Role(); role == want {
			return
		}
		if time.Now().After(deadline) {
			role, term := n.Role()
			t.Fatalf("node never became %s (still %s, term %d)", want, role, term)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestHANodepromotesAfterLeaderDeath(t *testing.T) {
	// "Kill" a leader by seeding its journal and lease and then never
	// renewing — exactly what SIGKILL leaves on disk. The standby must
	// steal after expiry, adopt the journaled job, and record a failover
	// latency once its first poll of the adopted group succeeds.
	dir := t.TempDir()
	spec := adoptSpec()
	seedJournal(t, dir, spec, true)
	dead, err := NewLease(dir, "ca", "127.0.0.1:1", 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, won, err := dead.TryAcquire(); !won || err != nil {
		t.Fatalf("seed leader acquire: won=%v err=%v", won, err)
	}

	w := newFakeWorker("w1")
	w.jobs["w1-j1"] = service.JobResult{ID: "w1-j1", State: service.JobDone,
		Cells: []service.CellResult{{Index: 0, Label: spec.Label(), State: service.CellDone, CPI: []float64{1}}}}

	n, err := NewHA(haCfg(t, dir, "cb", w))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	waitRole(t, n, RoleLeader)

	c := n.Coordinator()
	if c == nil {
		t.Fatal("leader has no coordinator")
	}
	j, ok := c.Job("c0007")
	if !ok {
		t.Fatal("journaled job not adopted on promotion")
	}
	waitJobDone(t, j)
	if state, _ := j.State(); state != service.JobDone {
		t.Fatalf("adopted job state %s", state)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if top := n.Topology(); top.FailoverLatencySeconds > 0 {
			if top.Role != RoleLeader || top.LeaseTerm < 2 || top.Promotions != 1 {
				t.Fatalf("topology after failover: %+v", top)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("failover latency never recorded")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestHANodeStaleLeaderDemotesOnFencedJournal(t *testing.T) {
	dir := t.TempDir()
	w := newFakeWorker("w1")
	n, err := NewHA(haCfg(t, dir, "ca", w))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	waitRole(t, n, RoleLeader)
	c := n.Coordinator()
	c.AddWorker(w)

	// The peer steals the lease out from under us (the on-disk state a
	// legitimate theft leaves behind after an undetected stall).
	thief, err := NewLease(dir, "cb", "127.0.0.1:2", 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	_, term := n.Role()
	if err := thief.writeState(term+1, time.Now()); err != nil {
		t.Fatal(err)
	}

	// The very next journaled action hits the fence: the submit is
	// refused (never accepted un-replicated) and the node demotes.
	_, err = c.Submit([]service.CellSpec{adoptSpec()}, service.SubmitOptions{})
	if !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("stale leader accepted a submit: err=%v, want ErrLeaseLost", err)
	}
	waitRole(t, n, RoleStandby)
	if n.Coordinator() != nil {
		t.Fatal("demoted node still exposes a coordinator")
	}
}

func TestHANodeStandbyRedirectsToLeader(t *testing.T) {
	dir := t.TempDir()
	// A live foreign lease pins this node to standby.
	other, err := NewLease(dir, "ca", "127.0.0.1:9001", 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, won, err := other.TryAcquire(); !won || err != nil {
		t.Fatalf("foreign acquire: won=%v err=%v", won, err)
	}

	n, err := NewHA(haCfg(t, dir, "cb", newFakeWorker("w1")))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	srv := httptest.NewServer(n.Handler())
	defer srv.Close()

	// Give the loop a tick to observe the foreign lease.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if top := n.Topology(); top.LeaderAddr == "127.0.0.1:9001" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("standby never observed the leader's lease")
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(`{"cells":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("standby submit: %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Cluster-Leader"); got != "127.0.0.1:9001" {
		t.Fatalf("X-Cluster-Leader %q", got)
	}

	// Heartbeats are accepted and reflected in the standby topology.
	hb, err := http.Post(srv.URL+"/v1/cluster/register", "application/json",
		strings.NewReader(`{"name":"w1","addr":"127.0.0.1:7001"}`))
	if err != nil {
		t.Fatal(err)
	}
	var top Topology
	if err := json.NewDecoder(hb.Body).Decode(&top); err != nil {
		t.Fatal(err)
	}
	hb.Body.Close()
	if top.Role != RoleStandby || len(top.Workers) != 1 || top.Workers[0].Name != "w1" || !top.Workers[0].Alive {
		t.Fatalf("standby topology after heartbeat: %+v", top)
	}

	// And the health probe names the role instead of 503ing.
	hz, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("standby healthz: %d, want 200", hz.StatusCode)
	}
}

func TestHANodeGracefulHandover(t *testing.T) {
	// Closing the leader releases the lease; the peer promotes without
	// waiting out the TTL (both nodes share one directory here, as in a
	// real pair).
	dir := t.TempDir()
	w := newFakeWorker("w1")
	a, err := NewHA(haCfg(t, dir, "ca", w))
	if err != nil {
		t.Fatal(err)
	}
	waitRole(t, a, RoleLeader)
	b, err := NewHA(haCfg(t, dir, "cb", w))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	waitRole(t, b, RoleStandby)

	a.Close()
	waitRole(t, b, RoleLeader)
	if _, term := b.Role(); term < 2 {
		t.Fatalf("handover term %d, want >= 2", term)
	}
}
