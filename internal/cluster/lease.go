package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"time"
)

// ErrLeaseLost reports that this node no longer holds the leadership
// lease: another coordinator claimed a higher term (or rewrote the
// lease) since we last renewed. The only correct response is to demote
// — keep serving and the cluster has two leaders journaling over each
// other.
var ErrLeaseLost = errors.New("cluster: leadership lease lost")

// LeaseState is the advertised lease file: who leads, under which term,
// and until when. It lives in the shared HA directory and is written
// with the store's tmp+fsync+rename discipline, so readers only ever
// see a complete advertisement.
type LeaseState struct {
	Term    uint64    `json:"term"`
	Holder  string    `json:"holder"`
	Addr    string    `json:"addr"`
	Renewed time.Time `json:"renewed"`
	TTLMS   int64     `json:"ttl_ms"`
}

// TTL is the advertised validity window.
func (st LeaseState) TTL() time.Duration { return time.Duration(st.TTLMS) * time.Millisecond }

// Expired reports whether the lease is past Renewed+TTL at now.
// Clock-skew caveat: the pair shares one filesystem (and, in every
// deployment we support, one machine), so wall-clock comparison is
// sound; the term fence is what protects correctness when it is not.
func (st LeaseState) Expired(now time.Time) bool {
	return now.After(st.Renewed.Add(st.TTL()))
}

const leaseFile = "lease.json"

// Lease is one coordinator's handle on the shared leadership lease.
// Acquisition races are settled by O_EXCL term-claim files: term N
// belongs to whichever process creates term-N.claim, so two cold
// coordinators (or a standby racing a zombie) can never both win the
// same term. Holding a lease means: we created the claim file for the
// current term and the advertisement file still names us.
type Lease struct {
	dir    string
	holder string
	addr   string
	ttl    time.Duration
}

// NewLease prepares a lease handle over the shared directory (created
// if missing). holder is this coordinator's identity; addr is the
// client-facing address advertised to standbys and redirected clients.
func NewLease(dir, holder, addr string, ttl time.Duration) (*Lease, error) {
	if holder == "" {
		return nil, errors.New("cluster: lease holder name must not be empty")
	}
	if ttl <= 0 {
		ttl = 2 * time.Second
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: lease dir: %w", err)
	}
	return &Lease{dir: dir, holder: holder, addr: addr, ttl: ttl}, nil
}

// TTL is the configured validity window for leases this handle writes.
func (l *Lease) TTL() time.Duration { return l.ttl }

// RenewEvery is the renewal cadence: a quarter of the TTL, so a leader
// gets three more chances before its lease lapses.
func (l *Lease) RenewEvery() time.Duration { return l.ttl / 4 }

// ReadLease reads the current advertisement. ok is false when no lease
// has ever been written (cold cluster) or the file is unreadable —
// either way the caller's move is the same: try to acquire.
func ReadLease(dir string) (st LeaseState, ok bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, leaseFile))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return LeaseState{}, false, nil
		}
		return LeaseState{}, false, err
	}
	if err := json.Unmarshal(data, &st); err != nil {
		// Unparseable advertisements cannot happen via the atomic write
		// path; treat garbage as absence rather than wedging the pair.
		return LeaseState{}, false, nil
	}
	return st, true, nil
}

// TryAcquire attempts to take leadership: it succeeds only when the
// current lease is absent, expired, or already ours, AND this process
// wins the O_EXCL claim on the next term. On success the advertisement
// names us and Term reports the won term. A false return with nil
// error means another node holds (or just won) the lease.
func (l *Lease) TryAcquire() (uint64, bool, error) {
	st, ok, err := ReadLease(l.dir)
	if err != nil {
		return 0, false, err
	}
	now := time.Now()
	if ok && !st.Expired(now) && st.Holder != l.holder {
		return 0, false, nil
	}
	next := st.Term + 1
	// Claim terms by O_EXCL creation. On EEXIST someone else claimed this
	// term: if they advertised (or the claim is fresh) we lost the race;
	// if the claimant died between claim and advertisement — a stale
	// claim file and no newer lease — skip past the orphaned term.
	for try := 0; try < 64; try++ {
		claim := filepath.Join(l.dir, fmt.Sprintf("term-%08d.claim", next))
		f, err := os.OpenFile(claim, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			fmt.Fprintf(f, "%s %s\n", l.holder, l.addr)
			f.Sync()
			f.Close()
			if err := l.writeState(next, now); err != nil {
				return 0, false, err
			}
			return next, true, nil
		}
		if !errors.Is(err, fs.ErrExist) {
			return 0, false, fmt.Errorf("cluster: term claim: %w", err)
		}
		info, serr := os.Stat(claim)
		if serr == nil && time.Since(info.ModTime()) < l.ttl {
			return 0, false, nil // live claimant; it will advertise shortly
		}
		if cur, ok, _ := ReadLease(l.dir); ok && cur.Term >= next && !cur.Expired(time.Now()) {
			return 0, false, nil // the claimant did advertise; we lost
		}
		next++ // orphaned claim (claimant died pre-advertisement): step over it
	}
	return 0, false, errors.New("cluster: term claim space exhausted")
}

// Renew re-advertises the lease under term. It re-reads the file first
// and returns ErrLeaseLost when a higher term (or different holder) has
// appeared — the stale-leader-wakes-up case: a leader whose clock
// stopped (GC pause, SIGSTOP, VM freeze) past its TTL finds the lease
// stolen and must demote instead of overwriting the thief.
func (l *Lease) Renew(term uint64) error {
	if err := l.Check(term); err != nil {
		return err
	}
	return l.writeState(term, time.Now())
}

// Check verifies, against the file, that we still hold the lease under
// term. This is the fence the routing journal applies on every write:
// cheap enough to run per-append, strong enough that a stale leader
// cannot extend its journal after theft.
func (l *Lease) Check(term uint64) error {
	st, ok, err := ReadLease(l.dir)
	if err != nil {
		return err
	}
	if !ok || st.Term != term || st.Holder != l.holder {
		return fmt.Errorf("%w: term %d holder %q superseded by term %d holder %q",
			ErrLeaseLost, term, l.holder, st.Term, st.Holder)
	}
	return nil
}

// Release expires the lease in place (Renewed backdated past the TTL,
// term and holder kept) so a standby can promote immediately instead of
// waiting out the TTL — the graceful-shutdown handover. Releasing a
// lease we no longer hold is a no-op.
func (l *Lease) Release(term uint64) error {
	if err := l.Check(term); err != nil {
		if errors.Is(err, ErrLeaseLost) {
			return nil
		}
		return err
	}
	return l.writeState(term, time.Now().Add(-2*l.ttl))
}

func (l *Lease) writeState(term uint64, renewed time.Time) error {
	st := LeaseState{Term: term, Holder: l.holder, Addr: l.addr, Renewed: renewed, TTLMS: l.ttl.Milliseconds()}
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	return atomicWrite(l.dir, leaseFile, append(data, '\n'))
}

// atomicWrite lands data at dir/name via the store's tmp+fsync+rename
// discipline: readers see the old content or the new, never a torn mix.
func atomicWrite(dir, name string, data []byte) error {
	f, err := os.CreateTemp(dir, "tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
