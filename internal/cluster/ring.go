// Package cluster shards the smtd simulation service across a fleet of
// worker daemons behind one coordinator that speaks the exact same
// HTTP/JSON job API. The pieces mirror the single-node service's
// narrow-module discipline:
//
//   - Ring: a consistent-hash ring with virtual nodes routes cell keys
//     to workers, and a node join/leave remaps only ~K/N keys.
//   - Worker: the remote-executor seam — everything the coordinator
//     needs from one smtd, implemented over HTTP by Remote (tests use
//     in-process fakes).
//   - Coordinator: splits each submitted batch by ring owner, forwards
//     the groups as remote jobs, mirrors their progress into a local
//     service.Job (so status/SSE/results look exactly like one
//     daemon's), steals work from overloaded owners when queue-wait
//     telemetry diverges, and migrates the in-flight cells of a dead
//     worker to a survivor — which resumes them from the shared
//     store's checkpoints rather than cycle zero.
//
// Nothing here executes cells: workers stay plain smtds, and all
// cluster-wide sharing (results and checkpoints) rides the
// content-addressed store tier the workers already mount.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// DefaultVnodes is the virtual-node count per worker: enough that the
// keyspace split stays within a few percent of even for small fleets,
// cheap enough that join/leave rebuilds are instant.
const DefaultVnodes = 128

// Ring is a consistent-hash ring with virtual nodes. Keys hash to
// points on a 64-bit circle; each node owns the keys between its
// predecessors' points and its own. Adding or removing a node moves
// only the keys adjacent to that node's points — ~K/N of them — so a
// worker joining or dying does not reshuffle the cluster's warm
// ownership wholesale. All methods are safe for concurrent use.
type Ring struct {
	vnodes int

	mu     sync.RWMutex
	points []ringPoint // sorted by hash
	nodes  map[string]bool
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds an empty ring with the given virtual-node count per
// node (<= 0 → DefaultVnodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]bool)}
}

// ringHash is the one hash both sides of the lookup share. sha256 is
// already the repo's content-key hash; the first 8 bytes are a fine
// 64-bit point and deterministic across processes, which is what lets
// a restarted coordinator rebuild identical ownership.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts node's virtual points; a no-op if already present.
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{ringHash(fmt.Sprintf("%s#%d", node, i)), node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes node's virtual points; a no-op if absent.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Owner returns the node owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return ""
	}
	h := ringHash(key)
	// First point clockwise from the key's hash, wrapping at the top.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Nodes lists the members in sorted order.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len reports the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}
