package cluster

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"smtexplore/internal/service"
)

func testJobRec(id string) JobRec {
	return JobRec{
		ID:      id,
		Specs:   []service.CellSpec{{Type: "kernel", Kernel: "mm", Mode: "serial", Size: 16}},
		Tenant:  "light",
		IdemKey: "idem-" + id,
	}
}

func TestRJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenRJournal(dir, 3, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Worker("w1", "127.0.0.1:7001"); err != nil {
		t.Fatal(err)
	}
	if err := j.Worker("w1", "127.0.0.1:7001"); err != nil { // dedup: no new record
		t.Fatal(err)
	}
	if err := j.Worker("w2", "127.0.0.1:7002"); err != nil {
		t.Fatal(err)
	}
	if err := j.JobStart(testJobRec("c0001")); err != nil {
		t.Fatal(err)
	}
	if err := j.Assign(AssignRec{Job: "c0001", Group: 0, Worker: "w1", RemoteID: "j42", Idxs: []int{0}}); err != nil {
		t.Fatal(err)
	}
	if err := j.JobStart(testJobRec("c0002")); err != nil {
		t.Fatal(err)
	}
	if err := j.Conclude("c0002", "done", ""); err != nil {
		t.Fatal(err)
	}
	if err := j.WorkerDead("w2"); err != nil {
		t.Fatal(err)
	}
	if got, want := j.Writes(), uint64(7); got != want {
		t.Fatalf("writes=%d want %d (worker dedup should skip one)", got, want)
	}
	j.Close()

	st, _, err := LoadRoutingState(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Term != 3 {
		t.Fatalf("term=%d want 3", st.Term)
	}
	if len(st.Workers) != 1 || st.Workers["w1"] != "127.0.0.1:7001" {
		t.Fatalf("workers=%v want only w1", st.Workers)
	}
	if live := st.Live(); len(live) != 1 || live[0] != "c0001" {
		t.Fatalf("live=%v want [c0001]", live)
	}
	js := st.Jobs["c0001"]
	if js == nil || len(js.Groups) != 1 || js.Groups[0].RemoteID != "j42" || js.Groups[0].Worker != "w1" {
		t.Fatalf("c0001 snapshot wrong: %+v", js)
	}
	if done := st.Jobs["c0002"]; done == nil || !done.Done || done.State != "done" {
		t.Fatalf("c0002 should be kept (concluded, pre-compaction): %+v", done)
	}
}

func TestRJournalTornTailTruncateAndAdopt(t *testing.T) {
	// A leader SIGKILLed mid-append leaves a torn final line. The
	// promoting standby (repair=true) must adopt everything before the
	// tear, truncate the garbage, and never crash.
	dir := t.TempDir()
	j, err := OpenRJournal(dir, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.JobStart(testJobRec("c0001")); err != nil {
		t.Fatal(err)
	}
	if err := j.Assign(AssignRec{Job: "c0001", Group: 0, Worker: "w1", RemoteID: "j7", Idxs: []int{0}}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	log := filepath.Join(dir, journalFile)
	whole, err := os.ReadFile(log)
	if err != nil {
		t.Fatal(err)
	}
	for name, tail := range map[string][]byte{
		"half-line":     []byte(`rj1 00000000 {"term":1,"seq":3,"kind":"conclu`),
		"bad-crc":       []byte("rj1 deadbeef {\"term\":1,\"seq\":3,\"kind\":\"conclude\",\"data\":{\"job\":\"c0001\",\"state\":\"done\"}}\n"),
		"binary-garble": {0x00, 0xff, 0x13, 0x37},
	} {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(log, append(append([]byte{}, whole...), tail...), 0o644); err != nil {
				t.Fatal(err)
			}
			st, consumed, err := LoadRoutingState(dir, true)
			if err != nil {
				t.Fatalf("repair load: %v", err)
			}
			if consumed != int64(len(whole)) {
				t.Fatalf("consumed=%d want %d", consumed, len(whole))
			}
			if live := st.Live(); len(live) != 1 || live[0] != "c0001" {
				t.Fatalf("live=%v want [c0001]", live)
			}
			// The torn conclude must NOT have been applied.
			if st.Jobs["c0001"].Done {
				t.Fatal("torn conclude record was applied")
			}
			info, err := os.Stat(log)
			if err != nil {
				t.Fatal(err)
			}
			if info.Size() != int64(len(whole)) {
				t.Fatalf("tail not truncated: size=%d want %d", info.Size(), len(whole))
			}
			// The repaired journal accepts new appends under a new term.
			j2, err := OpenRJournal(dir, 2, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := j2.Conclude("c0001", "done", ""); err != nil {
				t.Fatal(err)
			}
			j2.Close()
		})
	}
}

func TestJournalTailFollowsLeaderAndIgnoresTornTail(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenRJournal(dir, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	tail := NewJournalTail(dir)
	if err := tail.Poll(); err != nil {
		t.Fatal(err)
	}

	if err := j.JobStart(testJobRec("c0001")); err != nil {
		t.Fatal(err)
	}
	if err := tail.Poll(); err != nil {
		t.Fatal(err)
	}
	if got := tail.State().Live(); len(got) != 1 || got[0] != "c0001" {
		t.Fatalf("tail live=%v want [c0001]", got)
	}
	if tail.Seq() != j.Seq() {
		t.Fatalf("tail seq=%d leader seq=%d", tail.Seq(), j.Seq())
	}

	// A torn leader write parks bytes in Lag without advancing or
	// repairing — the standby must never truncate the live leader's log.
	log := filepath.Join(dir, journalFile)
	f, err := os.OpenFile(log, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`rj1 00000000 {"term":1,"se`)
	f.Close()
	before, _ := os.Stat(log)
	if err := tail.Poll(); err != nil {
		t.Fatal(err)
	}
	if tail.Lag() == 0 {
		t.Fatal("torn tail should show as lag")
	}
	after, _ := os.Stat(log)
	if after.Size() != before.Size() {
		t.Fatal("standby truncated the leader's log")
	}
}

func TestJournalTailReloadsAfterCompaction(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenRJournal(dir, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	j.every = 4 // compact quickly
	tail := NewJournalTail(dir)
	for i := range 10 {
		if err := j.JobStart(testJobRec(jobID(i))); err != nil {
			t.Fatal(err)
		}
		if err := j.Conclude(jobID(i), "done", ""); err != nil {
			t.Fatal(err)
		}
		if err := tail.Poll(); err != nil {
			t.Fatal(err)
		}
	}
	if tail.Seq() != j.Seq() {
		t.Fatalf("tail seq=%d leader seq=%d after compactions", tail.Seq(), j.Seq())
	}
	// Compaction dropped concluded jobs from the checkpoint; a fresh
	// load sees no live work and only the post-checkpoint residue.
	st, _, err := LoadRoutingState(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if live := st.Live(); len(live) != 0 {
		t.Fatalf("live=%v want none", live)
	}
}

func jobID(i int) string { return string([]byte{'c', '0', '0', byte('0' + i/10), byte('0' + i%10)}) }

func TestRJournalFenceStopsStaleLeader(t *testing.T) {
	// The per-append fence: once the lease is stolen, the next journal
	// write fails with ErrLeaseLost, onLost fires exactly once, and the
	// journal refuses everything afterwards.
	dir := t.TempDir()
	fenced := errors.New("fenced")
	calls := 0
	healthy := true
	lost := make(chan error, 4)
	j, err := OpenRJournal(dir, 1, func() error {
		calls++
		if healthy {
			return nil
		}
		return fenced
	}, func(err error) { lost <- err })
	if err != nil {
		t.Fatal(err)
	}
	if err := j.JobStart(testJobRec("c0001")); err != nil {
		t.Fatal(err)
	}
	healthy = false // the lease is stolen out from under us
	if err := j.Conclude("c0001", "done", ""); !errors.Is(err, fenced) {
		t.Fatalf("fenced append: got %v", err)
	}
	if err := <-lost; !errors.Is(err, fenced) {
		t.Fatalf("onLost got %v", err)
	}
	fenceCalls := calls
	if err := j.Conclude("c0001", "done", ""); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("post-loss append: got %v, want ErrLeaseLost", err)
	}
	if calls != fenceCalls {
		t.Fatal("journal kept consulting the fence after loss")
	}
	// Nothing after the fence trip reached disk.
	st, _, err := LoadRoutingState(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Jobs["c0001"].Done {
		t.Fatal("fenced conclude reached the journal")
	}
}

func TestRoutingStateSkipsStaleTermRecords(t *testing.T) {
	// Read-side fencing: a stale leader's late append (lower term,
	// racing seq) landing after the new leader's records is ignored.
	dir := t.TempDir()
	j, err := OpenRJournal(dir, 2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.JobStart(testJobRec("c0001")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Forge the stale leader's late write: term 1, seq above current.
	line, err := encodeLine(rrec{Term: 1, Seq: 99, Kind: recConclude,
		Data: []byte(`{"job":"c0001","state":"failed","error":"stale"}`)})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, journalFile), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(line)
	f.Close()

	st, _, err := LoadRoutingState(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if js := st.Jobs["c0001"]; js == nil || js.Done {
		t.Fatalf("stale-term conclude applied: %+v", js)
	}
}
