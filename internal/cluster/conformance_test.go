package cluster

// Cluster conformance and chaos tests against real worker services
// (full service.Service instances behind httptest servers, talked to
// over real HTTP by the Remote worker client):
//
//   - parity: a figure generated through the coordinator is
//     byte-identical to the single-node daemon and the direct harness
//     (which the cmd CLIs' own golden tests pin to their output);
//   - shared store: a key warmed by one worker is served by another
//     without re-simulation;
//   - chaos: a worker killed mid-kernel loses nothing — the cell
//     migrates and resumes from the shared store's checkpoint, saving
//     cycles and reproducing the uninterrupted result exactly.

import (
	"context"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"smtexplore/internal/experiments"
	"smtexplore/internal/kernels"
	"smtexplore/internal/runner"
	"smtexplore/internal/service"
	"smtexplore/internal/store"
	"smtexplore/internal/streams"
)

// realWorker is one full worker daemon: service + HTTP server.
type realWorker struct {
	name string
	svc  *service.Service
	ts   *httptest.Server
}

func (w *realWorker) remote() *Remote {
	return NewRemote(w.name, strings.TrimPrefix(w.ts.URL, "http://"))
}

func (w *realWorker) kill() {
	w.ts.CloseClientConnections()
	w.ts.Close()
	w.svc.Close()
}

func startWorker(t *testing.T, name string, cfg service.Config) *realWorker {
	t.Helper()
	svc := service.New(cfg)
	ts := httptest.NewServer(svc.Handler())
	w := &realWorker{name: name, svc: svc, ts: ts}
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return w
}

// startStoreWorker builds a worker mounted on the shared store dir the
// same way cmd/smtd does: breaker over the store as both the cache tier
// and the checkpoint sink.
func startStoreWorker(t *testing.T, name, dir string, checkpointEvery uint64) *realWorker {
	t.Helper()
	st, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	br := store.NewBreaker(st, 5, time.Second)
	cache := runner.NewCache().WithTier(br)
	return startWorker(t, name, service.Config{
		Workers: 2, MaxActive: 1,
		Cache: cache, Store: st, Breaker: br,
		CheckpointEvery: checkpointEvery, CheckpointSink: br,
	})
}

// The conformance golden test: one figure through the cluster equals
// the single-node daemon equals the direct harness, byte for byte. The
// CLI side is pinned by cmd/streams' own golden test against the same
// FormatFig1 bytes, closing the loop coordinator = daemon = CLI.
func TestClusterFig1Parity(t *testing.T) {
	if testing.Short() {
		t.Skip("full Figure 1 grid in -short mode")
	}
	// The direct harness result, exactly as the fig1 harness cell and
	// `streams -fig 1` produce it.
	rows, err := experiments.Fig1(context.Background(), experiments.Options{},
		experiments.StreamMachineConfig(), experiments.Fig1Kinds())
	if err != nil {
		t.Fatal(err)
	}
	direct := experiments.FormatFig1(rows) + "\n"

	// Single-node daemon.
	single := startWorker(t, "single", service.Config{Workers: 2, MaxActive: 1})
	sj, err := single.svc.Submit([]service.CellSpec{{Type: service.TypeHarness, Harness: "fig1"}})
	if err != nil {
		t.Fatal(err)
	}
	waitJobDone(t, sj)
	if state, msg := sj.State(); state != service.JobDone {
		t.Fatalf("single-node job = %s %q", state, msg)
	}
	if got := sj.Results()[0].Text; got != direct {
		t.Fatalf("single-node fig1 diverges from direct harness:\n got %q\nwant %q", got, direct)
	}

	// Two-worker cluster.
	a := startWorker(t, "a", service.Config{Workers: 2, MaxActive: 1})
	b := startWorker(t, "b", service.Config{Workers: 2, MaxActive: 1})
	c := New(fastCfg())
	defer c.Close()
	c.AddWorker(a.remote())
	c.AddWorker(b.remote())
	cj, err := c.Submit([]service.CellSpec{{Type: service.TypeHarness, Harness: "fig1"}}, service.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitJobDone(t, cj)
	if state, msg := cj.State(); state != service.JobDone {
		t.Fatalf("cluster job = %s %q", state, msg)
	}
	if got := cj.Results()[0].Text; got != direct {
		t.Fatalf("cluster fig1 diverges from direct harness:\n got %q\nwant %q", got, direct)
	}
}

// A multi-cell batch shards across workers by ring ownership, and every
// sharded cell's value equals the direct measurement.
func TestClusterShardsBatchWithValueParity(t *testing.T) {
	a := startWorker(t, "a", service.Config{Workers: 2, MaxActive: 2})
	b := startWorker(t, "b", service.Config{Workers: 2, MaxActive: 2})
	c := New(fastCfg())
	defer c.Close()
	c.AddWorker(a.remote())
	c.AddWorker(b.remote())

	var specs []service.CellSpec
	for w := uint64(20000); w < 20008; w++ {
		specs = append(specs, service.CellSpec{
			Type: service.TypeStream, Window: w,
			Streams: []service.StreamSpec{{Kind: "fadd", ILP: "max"}, {Kind: "iload", ILP: "med"}},
		})
	}
	j, err := c.Submit(specs, service.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitJobDone(t, j)
	if state, msg := j.State(); state != service.JobDone {
		t.Fatalf("job = %s %q", state, msg)
	}
	// Both workers took part (deterministic: these 8 windows split
	// across the two ring owners).
	if len(a.svc.Jobs()) == 0 || len(b.svc.Jobs()) == 0 {
		t.Fatalf("batch did not shard: worker a ran %d jobs, b ran %d", len(a.svc.Jobs()), len(b.svc.Jobs()))
	}
	for i, res := range j.Results() {
		if res.State != service.CellDone {
			t.Fatalf("cell %d = %s %q", i, res.State, res.Error)
		}
		want, err := experiments.Options{}.StreamCell(experiments.StreamMachineConfig(),
			[]streams.Spec{{Kind: streams.FAddS, ILP: streams.MaxILP}, {Kind: streams.ILoadS, ILP: streams.MedILP}},
			specs[i].Window)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.CPI, want) {
			t.Fatalf("cell %d CPI %v != direct %v", i, res.CPI, want)
		}
	}
}

// A key warmed by one worker is served by another through the shared
// read-through store tier: the second worker's simulator never runs.
func TestSharedStoreServesPeerWarmKeys(t *testing.T) {
	dir := t.TempDir()
	a := startStoreWorker(t, "a", dir, 0)
	b := startStoreWorker(t, "b", dir, 0)
	c := New(fastCfg())
	defer c.Close()

	spec := service.CellSpec{Type: service.TypeStream, Window: 30000,
		Streams: []service.StreamSpec{{Kind: "fadd"}}}

	// Warm the key through worker a alone.
	c.AddWorker(a.remote())
	j1, err := c.Submit([]service.CellSpec{spec}, service.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitJobDone(t, j1)
	if state, _ := j1.State(); state != service.JobDone {
		t.Fatalf("warming job = %s", state)
	}
	if n := a.svc.Snapshot().CellsSimulated; n != 1 {
		t.Fatalf("worker a simulated %d cells, want 1", n)
	}

	// Route the same key to worker b: served from the shared tier.
	c.RemoveWorker("a")
	c.AddWorker(b.remote())
	j2, err := c.Submit([]service.CellSpec{spec}, service.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitJobDone(t, j2)
	if state, _ := j2.State(); state != service.JobDone {
		t.Fatalf("warm-key job = %s", state)
	}
	if n := b.svc.Snapshot().CellsSimulated; n != 0 {
		t.Fatalf("worker b simulated %d cells for a peer-warmed key, want 0", n)
	}
	if !reflect.DeepEqual(j2.Results()[0].CPI, j1.Results()[0].CPI) {
		t.Fatalf("peer-served result %v != original %v", j2.Results()[0].CPI, j1.Results()[0].CPI)
	}
}

// The chaos drill: kill a worker mid-mm-64. The coordinator migrates
// the cell to the survivor, which resumes from the dead worker's
// checkpoint in the shared store — jobs_recovered and resume telemetry
// prove the path, and the result is identical to an uninterrupted run.
func TestChaosWorkerKillResumesFromSharedCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos drill in -short mode")
	}
	dir := t.TempDir()
	a := startStoreWorker(t, "a", dir, 2000)
	b := startStoreWorker(t, "b", dir, 2000)
	cfg := fastCfg()
	cfg.PollFailures = 3
	c := New(cfg)
	defer c.Close()
	c.AddWorker(a.remote())
	c.AddWorker(b.remote())

	spec := service.CellSpec{Type: service.TypeKernel, Kernel: "mm", Mode: "tlp-fine", Size: 64}
	j, err := c.Submit([]service.CellSpec{spec}, service.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Whoever writes the first checkpoint is running the cell: the
	// victim. CheckpointEvery=2000 cycles makes pause points (and so the
	// kill window) plentiful relative to the mm-64 runtime.
	var victim, survivor *realWorker
	deadline := time.Now().Add(30 * time.Second)
	for victim == nil {
		if time.Now().After(deadline) {
			t.Fatal("no worker wrote a checkpoint within 30s")
		}
		switch {
		case a.svc.Snapshot().CheckpointsWritten > 0:
			victim, survivor = a, b
		case b.svc.Snapshot().CheckpointsWritten > 0:
			victim, survivor = b, a
		default:
			time.Sleep(time.Millisecond)
		}
	}
	victim.kill()

	select {
	case <-j.Done():
	case <-time.After(2 * time.Minute):
		state, msg := j.State()
		t.Fatalf("job stuck in %s %q after worker kill", state, msg)
	}
	if state, msg := j.State(); state != service.JobDone {
		t.Fatalf("job = %s %q, want done after migration", state, msg)
	}

	top := c.Topology()
	if top.JobsRecovered < 1 || top.WorkersLost < 1 {
		t.Fatalf("recovered %d lost %d, want both >= 1", top.JobsRecovered, top.WorkersLost)
	}
	m := survivor.svc.Snapshot()
	if m.CheckpointsRestored < 1 || m.ResumeCyclesSaved == 0 {
		t.Fatalf("survivor restored %d checkpoints, saved %d cycles: resume did not use the shared checkpoint",
			m.CheckpointsRestored, m.ResumeCyclesSaved)
	}

	// Byte-identical to the uninterrupted control.
	control, err := experiments.NamedKernelCell(experiments.Options{}, "mm", 64, kernels.TLPFine)
	if err != nil {
		t.Fatal(err)
	}
	got := j.Results()[0]
	if got.Kernel == nil || !reflect.DeepEqual(*got.Kernel, control) {
		t.Fatalf("resume parity violated:\n got %+v\nwant %+v", got.Kernel, control)
	}
}
