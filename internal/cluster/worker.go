package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"smtexplore/internal/service"
)

// Worker is the coordinator's remote-executor seam: the narrow slice of
// one smtd's API the cluster needs. The production implementation is
// Remote (HTTP against a worker daemon); tests swap in in-process
// fakes, which is what keeps steal/migration logic unit-testable
// without sockets.
type Worker interface {
	// Name identifies the worker on the hash ring.
	Name() string
	// Addr is the worker's host:port (diagnostics and topology views).
	Addr() string
	// Submit enqueues a batch remotely and returns the remote job ID.
	// idemKey guards against double-enqueue when a 202 response is lost.
	Submit(ctx context.Context, req service.SubmitRequest, idemKey string) (string, error)
	// Status fetches a remote job's progress view.
	Status(ctx context.Context, id string) (service.JobStatus, error)
	// Result fetches a terminal remote job's full results.
	Result(ctx context.Context, id string) (service.JobResult, error)
	// Cancel aborts a remote job (idempotent server-side).
	Cancel(ctx context.Context, id string) error
	// Health probes liveness (nil on a serving worker).
	Health(ctx context.Context) error
	// Stats fetches the worker's structured metrics snapshot — the
	// queue-wait and checkpoint telemetry behind stealing and the
	// cluster-wide metric aggregates.
	Stats(ctx context.Context) (service.Metrics, error)
}

// Remote is the HTTP Worker: the existing single-daemon job API is the
// cluster's wire protocol, so a worker smtd needs no cluster-specific
// endpoints at all.
type Remote struct {
	name string
	addr string
	c    *http.Client
}

// NewRemote builds the HTTP client for the worker at addr (host:port).
// name defaults to addr; give explicit names when addresses are
// ephemeral (port-0 tests) but identity must survive restarts.
func NewRemote(name, addr string) *Remote {
	if name == "" {
		name = addr
	}
	return &Remote{
		name: name,
		addr: addr,
		// Requests are small JSON exchanges; anything slower than this is
		// the health loop's problem, not a reason to hold a submit hostage.
		c: &http.Client{Timeout: 10 * time.Second},
	}
}

func (r *Remote) Name() string { return r.name }
func (r *Remote) Addr() string { return r.addr }

// RefusedError is a worker's well-formed rejection of a forwarded
// submission (any 4xx — tenant quota, AIMD shed, validation): the
// worker is healthy and said no. The coordinator must not declare the
// worker dead — a refusal replayed across the fleet would otherwise
// mark every healthy worker dead in turn. What happens to the group
// depends on Backpressure(): policy refusals shed it terminally,
// transient backpressure is retried.
type RefusedError struct {
	Status     int
	Cause      string // X-Quota-Cause when the refusal is a tenant quota
	Msg        string
	RetryAfter time.Duration // worker's Retry-After hint, 0 if absent
}

func (e *RefusedError) Error() string {
	if e.Cause != "" {
		return fmt.Sprintf("%s (quota cause %s)", e.Msg, e.Cause)
	}
	return e.Msg
}

// Backpressure reports whether the refusal is transient load shedding
// (a bare 429 from the AIMD gate or a full queue) rather than policy.
// A quota-caused 429 is policy — the tenant is over its configured
// limit, and replaying the demand elsewhere would evade enforcement —
// as is any other 4xx (validation, unknown tenant). Backpressure just
// means "not now": the coordinator already accepted the job at the
// edge, so it owes the client a retry, not a terminal failure.
func (e *RefusedError) Backpressure() bool {
	return e.Status == http.StatusTooManyRequests && e.Cause == ""
}

// apiError extracts the service's {"error": ...} body shape.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("%s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
}

func (r *Remote) getJSON(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+r.addr+path, nil)
	if err != nil {
		return err
	}
	resp, err := r.c.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func (r *Remote) Submit(ctx context.Context, sreq service.SubmitRequest, idemKey string) (string, error) {
	body, err := json.Marshal(sreq)
	if err != nil {
		return "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+r.addr+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	if idemKey != "" {
		req.Header.Set("Idempotency-Key", idemKey)
	}
	resp, err := r.c.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		err := apiError(resp)
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			var ra time.Duration
			if n, aerr := strconv.Atoi(resp.Header.Get("Retry-After")); aerr == nil && n > 0 {
				ra = time.Duration(n) * time.Second
			}
			return "", &RefusedError{
				Status:     resp.StatusCode,
				Cause:      resp.Header.Get("X-Quota-Cause"),
				Msg:        err.Error(),
				RetryAfter: ra,
			}
		}
		return "", err
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return "", err
	}
	return st.ID, nil
}

func (r *Remote) Status(ctx context.Context, id string) (service.JobStatus, error) {
	var st service.JobStatus
	err := r.getJSON(ctx, "/v1/jobs/"+id, &st)
	return st, err
}

func (r *Remote) Result(ctx context.Context, id string) (service.JobResult, error) {
	var res service.JobResult
	err := r.getJSON(ctx, "/v1/jobs/"+id+"/result", &res)
	return res, err
}

func (r *Remote) Cancel(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, "http://"+r.addr+"/v1/jobs/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := r.c.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	return nil
}

func (r *Remote) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+r.addr+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := r.c.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
	// A draining worker answers 503: alive as a process, but it must not
	// receive new work and its in-flight jobs will park checkpoints —
	// treat it like a dead member for routing purposes.
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: %s", resp.Status)
	}
	return nil
}

func (r *Remote) Stats(ctx context.Context) (service.Metrics, error) {
	var m service.Metrics
	err := r.getJSON(ctx, "/v1/stats", &m)
	return m, err
}
