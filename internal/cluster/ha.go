package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// HA roles.
const (
	RoleLeader  = "leader"
	RoleStandby = "standby"
)

// HAConfig configures one half of an active/standby coordinator pair.
type HAConfig struct {
	// Name is this coordinator's identity (lease holder name). Required.
	Name string
	// Addr is the client-facing address advertised in the lease: what
	// the standby hands out in X-Cluster-Leader redirects.
	Addr string
	// Dir is the shared HA state directory — lease, term claims, and
	// routing journal. Both coordinators must point at the same one
	// (conventionally <store>/ha, riding the store's shared filesystem).
	Dir string
	// TTL is the leadership lease window (<= 0 → 2s). Failover detection
	// time is bounded by TTL plus one renew tick.
	TTL time.Duration
	// Peers lists the other coordinator endpoints (operator display).
	Peers []string
	// Coordinator is the embedded coordinator configuration; Journal,
	// OnForward and their lifecycle are owned by the HA node.
	Coordinator Config
	// Log receives one-line role transitions (nil → discard).
	Log io.Writer
}

// HANode runs one coordinator of an HA pair: a lease-driven loop that
// promotes to leader when the lease is free (cold start, expiry, theft
// after the leader dies) and demotes the moment a journal append or
// renewal discovers the lease is lost. While standby it tails the
// leader's routing journal so promotion is an adoption, not a cold
// start.
type HANode struct {
	cfg   HAConfig
	lease *Lease
	stop  chan struct{}
	wg    sync.WaitGroup
	log   io.Writer

	mu      sync.Mutex
	role    string
	term    uint64
	coord   *Coordinator
	handler http.Handler // leader: coord.Handler(), cached per promotion
	journal *RJournal
	tail    *JournalTail
	// leaderSt is the last lease advertisement observed while standby —
	// the redirect target.
	leaderSt   LeaseState
	haveLeader bool
	// hb tracks worker heartbeats reaching THIS node (workers beat to
	// every coordinator), so a standby shows the fleet too.
	hb map[string]hbEntry

	promotions, demotions uint64
	failover              time.Duration // lease expiry → first successful forward
	failoverSet           bool
	closed                bool
}

type hbEntry struct {
	addr string
	seen time.Time
}

// NewHA starts the node (as standby; the first tick may promote it).
func NewHA(cfg HAConfig) (*HANode, error) {
	lease, err := NewLease(cfg.Dir, cfg.Name, cfg.Addr, cfg.TTL)
	if err != nil {
		return nil, err
	}
	log := cfg.Log
	if log == nil {
		log = io.Discard
	}
	n := &HANode{
		cfg:   cfg,
		lease: lease,
		stop:  make(chan struct{}),
		log:   log,
		role:  RoleStandby,
		tail:  NewJournalTail(cfg.Dir),
		hb:    make(map[string]hbEntry),
	}
	n.wg.Add(1)
	go n.loop()
	return n, nil
}

// Close demotes (releasing the lease so the peer promotes without
// waiting out the TTL) and stops the loop.
func (n *HANode) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.mu.Unlock()
	close(n.stop)
	n.wg.Wait()
	n.mu.Lock()
	wasLeader := n.role == RoleLeader
	term := n.term
	n.mu.Unlock()
	if wasLeader {
		n.demote(nil)
		n.lease.Release(term)
	}
}

// Role returns the current role and term.
func (n *HANode) Role() (string, uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role, n.term
}

// Coordinator returns the live coordinator while leader, nil otherwise.
func (n *HANode) Coordinator() *Coordinator {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role == RoleLeader {
		return n.coord
	}
	return nil
}

func (n *HANode) loop() {
	defer n.wg.Done()
	tick := time.NewTicker(n.lease.RenewEvery())
	defer tick.Stop()
	for {
		n.tick()
		select {
		case <-n.stop:
			return
		case <-tick.C:
		}
	}
}

func (n *HANode) tick() {
	n.mu.Lock()
	role, term := n.role, n.term
	n.mu.Unlock()

	if role == RoleLeader {
		if err := n.lease.Renew(term); err != nil {
			n.demote(err)
		}
		return
	}

	// Standby: watch the lease, tail the journal, promote on expiry.
	st, ok, err := ReadLease(n.cfg.Dir)
	if err == nil && ok && !st.Expired(time.Now()) && st.Holder != n.cfg.Name {
		n.mu.Lock()
		n.leaderSt, n.haveLeader = st, true
		n.mu.Unlock()
		n.tail.Poll()
		return
	}
	// Lease absent, expired, or (stale) ours: try to take over.
	wonTerm, won, err := n.lease.TryAcquire()
	if err != nil || !won {
		n.tail.Poll()
		return
	}
	n.promote(wonTerm, st, ok)
}

// promote turns this node into the leader for term: repair and open the
// journal under the new term, build a coordinator fenced by the lease,
// and adopt every journaled worker and live job. prev is the lease
// advertisement that just expired (the failover-latency epoch).
func (n *HANode) promote(term uint64, prev LeaseState, hadPrev bool) {
	// Failover latency epoch: the moment the old leader's lease lapsed.
	var expiry time.Time
	if hadPrev && prev.Holder != n.cfg.Name {
		expiry = prev.Renewed.Add(prev.TTL())
	}

	journal, err := OpenRJournal(n.cfg.Dir, term, func() error { return n.lease.Check(term) },
		func(err error) { n.demote(err) })
	if err != nil {
		// Unreadable journal directory: stay standby and let the next tick
		// retry — the lease we hold will lapse if we never recover.
		fmt.Fprintf(n.log, "smtd: ha %s: promotion aborted: %v\n", n.cfg.Name, err)
		return
	}

	ccfg := n.cfg.Coordinator
	ccfg.Journal = journal
	ccfg.OnForward = func() {
		if expiry.IsZero() {
			return
		}
		n.mu.Lock()
		if !n.failoverSet {
			n.failoverSet = true
			n.failover = max(time.Since(expiry), 0)
		}
		d := n.failover
		n.mu.Unlock()
		fmt.Fprintf(n.log, "smtd: ha %s: failover complete in %s (lease expiry to first forward)\n", n.cfg.Name, d)
	}
	coord := New(ccfg)

	// Adopt the journaled world, then any workers whose heartbeats hit
	// this node while it was standby (covers a journal that never saw a
	// late joiner).
	coord.Adopt(journal.State())
	n.mu.Lock()
	beats := make(map[string]hbEntry, len(n.hb))
	for k, v := range n.hb {
		beats[k] = v
	}
	n.mu.Unlock()
	for name, e := range beats {
		if coord.worker(name) == nil && time.Since(e.seen) < 5*time.Second {
			coord.AddWorker(coord.dial(name, e.addr))
		}
	}

	n.mu.Lock()
	n.role, n.term = RoleLeader, term
	n.coord = coord
	n.handler = coord.Handler()
	n.journal = journal
	n.tail = nil
	n.promotions++
	n.haveLeader = false
	n.mu.Unlock()
	fmt.Fprintf(n.log, "smtd: ha %s: promoted to leader (term %d, %d jobs adopted)\n",
		n.cfg.Name, term, len(journal.State().Jobs))
}

// demote steps down to standby: the coordinator stops watching its
// groups (the remote jobs keep running on the workers for the new
// leader to adopt) and the journal is closed. Idempotent.
func (n *HANode) demote(cause error) {
	n.mu.Lock()
	if n.role != RoleLeader {
		n.mu.Unlock()
		return
	}
	coord, journal := n.coord, n.journal
	n.role = RoleStandby
	n.coord, n.handler, n.journal = nil, nil, nil
	n.tail = NewJournalTail(n.cfg.Dir)
	n.demotions++
	n.mu.Unlock()
	if coord != nil {
		coord.Close()
	}
	if journal != nil {
		journal.Close()
	}
	if cause != nil {
		fmt.Fprintf(n.log, "smtd: ha %s: demoted to standby: %v\n", n.cfg.Name, cause)
	} else {
		fmt.Fprintf(n.log, "smtd: ha %s: demoted to standby\n", n.cfg.Name)
	}
}

// Topology is the HA-aware fleet snapshot: the coordinator's view when
// leading, the heartbeat + journal view when standing by.
func (n *HANode) Topology() Topology {
	n.mu.Lock()
	role, term := n.role, n.term
	coord := n.coord
	tail := n.tail
	leaderSt, haveLeader := n.leaderSt, n.haveLeader
	promotions, demotions := n.promotions, n.demotions
	failover, failoverSet := n.failover, n.failoverSet
	beats := make(map[string]hbEntry, len(n.hb))
	for k, v := range n.hb {
		beats[k] = v
	}
	n.mu.Unlock()

	var t Topology
	if role == RoleLeader && coord != nil {
		t = coord.Topology()
		t.Role = RoleLeader
		t.LeaderAddr = n.cfg.Addr
		t.LeaseTerm = term
		if j := n.journalRef(); j != nil {
			t.JournalSeq = j.Seq()
		}
	} else {
		t.Role = RoleStandby
		if haveLeader {
			t.LeaderAddr = leaderSt.Addr
			t.LeaseTerm = leaderSt.Term
		}
		if tail != nil {
			tail.Poll()
			t.JournalSeq = tail.Seq()
			t.StandbyLagBytes = tail.Lag()
		}
		// The standby's fleet view: workers heartbeating to this node.
		for _, name := range sortedHB(beats) {
			e := beats[name]
			age := time.Since(e.seen)
			alive := age < 2*time.Second
			t.Workers = append(t.Workers, WorkerInfo{
				Name: name, Addr: e.addr, Alive: alive,
				LastHeartbeatAgeSeconds: age.Seconds(),
			})
			if alive {
				t.Live++
			}
		}
	}
	t.Promotions = promotions
	t.Demotions = demotions
	if failoverSet {
		t.FailoverLatencySeconds = failover.Seconds()
	}
	t.Peers = n.cfg.Peers
	return t
}

func (n *HANode) journalRef() *RJournal {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.journal
}

func sortedHB(m map[string]hbEntry) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Handler serves the HA-aware API. The leader serves the full
// coordinator surface; a standby answers the cluster/health/metrics
// introspection itself and 503s everything else with an
// X-Cluster-Leader redirect so multi-endpoint clients jump straight to
// the leader.
func (n *HANode) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cluster", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, n.Topology())
	})
	mux.HandleFunc("POST /v1/cluster/register", n.handleRegister)
	mux.HandleFunc("GET /healthz", n.handleHealthz)
	mux.HandleFunc("GET /metrics", n.handleMetrics)
	mux.HandleFunc("/", n.handleProxy)
	return mux
}

// handleRegister notes the heartbeat locally (standbys track the fleet
// through it), then hands it to the coordinator when leading.
func (n *HANode) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name string `json:"name"`
		Addr string `json:"addr"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Addr == "" {
		writeError(w, http.StatusBadRequest, "missing addr")
		return
	}
	name := req.Name
	if name == "" {
		name = req.Addr
	}
	n.mu.Lock()
	n.hb[name] = hbEntry{addr: req.Addr, seen: time.Now()}
	coord := n.coord
	n.mu.Unlock()
	if coord != nil {
		coord.AddWorker(coord.dial(name, req.Addr))
	}
	writeJSON(w, http.StatusOK, n.Topology())
}

func (n *HANode) handleHealthz(w http.ResponseWriter, r *http.Request) {
	t := n.Topology()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if t.Role == RoleLeader && t.Live == 0 {
		http.Error(w, "no live workers", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, t.Role)
}

func (n *HANode) handleMetrics(w http.ResponseWriter, r *http.Request) {
	t := n.Topology()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	roleVal := 0
	if t.Role == RoleLeader {
		roleVal = 1
	}
	fmt.Fprintf(w, "# HELP smtd_ha_leader Whether this coordinator currently leads the pair.\n# TYPE smtd_ha_leader gauge\nsmtd_ha_leader %d\n", roleVal)
	fmt.Fprintf(w, "# HELP smtd_ha_lease_term Current leadership term observed by this node.\n# TYPE smtd_ha_lease_term gauge\nsmtd_ha_lease_term %d\n", t.LeaseTerm)
	fmt.Fprintf(w, "# HELP smtd_ha_promotions_total Times this node promoted to leader.\n# TYPE smtd_ha_promotions_total counter\nsmtd_ha_promotions_total %d\n", t.Promotions)
	fmt.Fprintf(w, "# HELP smtd_ha_demotions_total Times this node demoted to standby.\n# TYPE smtd_ha_demotions_total counter\nsmtd_ha_demotions_total %d\n", t.Demotions)
	fmt.Fprintf(w, "# HELP smtd_ha_journal_seq Last routing-journal sequence applied or written.\n# TYPE smtd_ha_journal_seq gauge\nsmtd_ha_journal_seq %d\n", t.JournalSeq)
	fmt.Fprintf(w, "# HELP smtd_ha_standby_lag_bytes Journal bytes seen but not yet applied.\n# TYPE smtd_ha_standby_lag_bytes gauge\nsmtd_ha_standby_lag_bytes %d\n", t.StandbyLagBytes)
	fmt.Fprintf(w, "# HELP smtd_ha_failover_latency_seconds Lease expiry to first successful forward on the most recent promotion.\n# TYPE smtd_ha_failover_latency_seconds gauge\nsmtd_ha_failover_latency_seconds %g\n", t.FailoverLatencySeconds)
	n.mu.Lock()
	coord := n.coord
	n.mu.Unlock()
	if coord != nil {
		// Append the full coordinator families (same package: the HA node
		// shares the unexported handler). Content-Type is already set.
		coord.handleMetrics(w, r)
	}
}

// handleProxy covers the job API: served directly when leading,
// redirected when standing by.
func (n *HANode) handleProxy(w http.ResponseWriter, r *http.Request) {
	n.mu.Lock()
	h := n.handler
	leaderAddr := ""
	if n.haveLeader {
		leaderAddr = n.leaderSt.Addr
	}
	n.mu.Unlock()
	if h != nil {
		h.ServeHTTP(w, r)
		return
	}
	if leaderAddr != "" {
		w.Header().Set("X-Cluster-Leader", leaderAddr)
	}
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable,
		"not the leader; retry against "+orUnknown(leaderAddr))
}

func orUnknown(s string) string {
	if s == "" {
		return "the current leader (unknown yet)"
	}
	return s
}
