// Package sched is the thin OS-scheduler substrate of the reproduction:
// the paper's testbed ran Linux 2.6 with one run queue per logical
// processor and pinned threads with sched_setaffinity. This package
// reproduces that arrangement for multiprogrammed experiments (the
// Figure 2(c) motivation: "such mixes are more frequent in
// multiprogrammed workloads"): N software programs are pinned round-robin
// onto the two logical CPUs, and each CPU time-slices its own run queue
// with a fixed instruction quantum, paying a context-switch overhead of
// kernel µops at every switch.
//
// Scheduling is offline and deterministic: quanta are measured in
// instructions (a deterministic stand-in for the timer tick), and the
// result is one composite trace.Program per logical CPU. Composite
// programs consume their inputs and are therefore SINGLE-USE — build a
// fresh schedule for every run. Programs that synchronise with each other
// must be pinned to different CPUs (a descheduled waiter cannot be
// preempted mid-wait by the simulated hardware).
package sched

import (
	"fmt"

	"smtexplore/internal/isa"
	"smtexplore/internal/smt"
	"smtexplore/internal/trace"
)

// Config parameterises the scheduler.
type Config struct {
	// Quantum is the time-slice length in instructions.
	Quantum int
	// SwitchCost is the kernel overhead, in µops, charged at every
	// context switch (save/restore, run-queue bookkeeping).
	SwitchCost int
	// KernelBase is the address region the switch overhead's memory
	// traffic touches (the kernel stacks; they pollute the caches, which
	// is part of the real cost).
	KernelBase uint64
}

// DefaultConfig returns a plausible 2.6-era configuration: 10k-instruction
// quanta and a 120-µop switch path.
func DefaultConfig() Config {
	return Config{Quantum: 10_000, SwitchCost: 120, KernelBase: 0xE000_0000}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Quantum <= 0 {
		return fmt.Errorf("sched: quantum %d not positive", c.Quantum)
	}
	if c.SwitchCost < 0 {
		return fmt.Errorf("sched: switch cost %d negative", c.SwitchCost)
	}
	return nil
}

// Schedule pins programs round-robin onto the two logical CPUs
// (program i → CPU i%2, the paper's affinity discipline) and returns one
// composite program per CPU. An empty run queue yields a nil program.
func Schedule(cfg Config, programs ...trace.Program) ([smt.NumContexts]trace.Program, error) {
	var out [smt.NumContexts]trace.Program
	if err := cfg.Validate(); err != nil {
		return out, err
	}
	if len(programs) == 0 {
		return out, fmt.Errorf("sched: no programs")
	}
	var queues [smt.NumContexts][]trace.Program
	for i, p := range programs {
		if p == nil {
			// A nil hole keeps the affinity slots of the remaining
			// programs stable (useful when building asymmetric mixes).
			continue
		}
		cpu := i % smt.NumContexts
		queues[cpu] = append(queues[cpu], p)
	}
	for cpu := range queues {
		if len(queues[cpu]) > 0 {
			out[cpu] = runQueue(cfg, cpu, queues[cpu])
		}
	}
	return out, nil
}

// runQueue builds the composite program of one CPU: round-robin over its
// pinned programs in instruction quanta with switch overhead between
// slices. Single-use (consumes the input programs).
func runQueue(cfg Config, cpu int, programs []trace.Program) trace.Program {
	return trace.Generate(func(e *trace.Emitter) {
		streams := make([]*trace.Stream, len(programs))
		for i, p := range programs {
			streams[i] = trace.NewStream(p)
		}
		defer func() {
			for _, s := range streams {
				s.Close()
			}
		}()
		remaining := len(streams)
		for remaining > 0 && !e.Stopped() {
			for ti, s := range streams {
				if s.Done() {
					continue
				}
				for n := 0; n < cfg.Quantum; n++ {
					in, ok := s.Next()
					if !ok {
						remaining--
						break
					}
					e.Emit(in)
					if e.Stopped() {
						return
					}
				}
				// A switch only happens when another runnable task
				// exists on this queue.
				if remaining > 1 || (remaining == 1 && !s.Done()) {
					if countRunnable(streams) > 1 {
						emitSwitch(e, cfg, cpu, ti)
					}
				}
			}
		}
	})
}

func countRunnable(streams []*trace.Stream) int {
	n := 0
	for _, s := range streams {
		if !s.Done() {
			n++
		}
	}
	return n
}

// emitSwitch emits the kernel context-switch path: register save/restore
// traffic against the kernel stacks plus run-queue bookkeeping arithmetic.
func emitSwitch(e *trace.Emitter, cfg Config, cpu, task int) {
	base := cfg.KernelBase + uint64(cpu)<<16 + uint64(task)<<10
	for i := 0; i < cfg.SwitchCost && !e.Stopped(); i++ {
		switch i % 4 {
		case 0:
			e.Store(isa.F(24+(i&3)), base+uint64(i&31)*8)
		case 1:
			e.Load(isa.F(24+(i&3)), base+uint64((i+7)&31)*8)
		case 2:
			e.ALU(isa.IAdd, isa.R(20+(i&3)), isa.R(28), isa.R(29))
		default:
			e.ALU(isa.ILogic, isa.R(24+(i&1)), isa.R(24+(i&1)), isa.R(30))
		}
	}
}

// RunMultiprogrammed schedules the programs and executes them to
// completion on a fresh machine, returning it for counter inspection.
func RunMultiprogrammed(mcfg smt.Config, scfg Config, maxCycles uint64, programs ...trace.Program) (*smt.Machine, error) {
	composite, err := Schedule(scfg, programs...)
	if err != nil {
		return nil, err
	}
	m := smt.New(mcfg)
	for cpu, p := range composite {
		if p != nil {
			m.LoadProgram(cpu, p)
		}
	}
	res, err := m.Run(maxCycles)
	if err != nil {
		return m, err
	}
	if !res.Completed {
		return m, fmt.Errorf("sched: multiprogrammed run exceeded %d cycles", maxCycles)
	}
	return m, nil
}
