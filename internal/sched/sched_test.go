package sched

import (
	"testing"

	"smtexplore/internal/isa"
	"smtexplore/internal/perfmon"
	"smtexplore/internal/smt"
	"smtexplore/internal/trace"
)

func workload(op isa.Op, n int) trace.Program {
	return trace.Generate(func(e *trace.Emitter) {
		reg := isa.F
		if !op.IsFP() {
			reg = isa.R
		}
		for i := 0; i < n && !e.Stopped(); i++ {
			e.ALU(op, reg(i%6), reg(8), reg(9))
		}
	})
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Config{Quantum: 0}).Validate(); err == nil {
		t.Error("zero quantum accepted")
	}
	if err := (Config{Quantum: 10, SwitchCost: -1}).Validate(); err == nil {
		t.Error("negative switch cost accepted")
	}
}

func TestScheduleAffinity(t *testing.T) {
	// Four programs pin round-robin: 0,2 → cpu0 and 1,3 → cpu1.
	cfg := Config{Quantum: 50, SwitchCost: 0}
	composite, err := Schedule(cfg,
		workload(isa.FAdd, 100), workload(isa.IAdd, 100),
		workload(isa.FMul, 100), workload(isa.ISub, 100))
	if err != nil {
		t.Fatal(err)
	}
	cpu0 := trace.Mix(composite[0])
	if cpu0[isa.FAdd] != 100 || cpu0[isa.FMul] != 100 || cpu0[isa.IAdd] != 0 {
		t.Errorf("cpu0 mix wrong: %v", cpu0)
	}
	// Single-use: a second schedule is needed for the second CPU's mix.
	composite2, _ := Schedule(cfg,
		workload(isa.FAdd, 100), workload(isa.IAdd, 100),
		workload(isa.FMul, 100), workload(isa.ISub, 100))
	cpu1 := trace.Mix(composite2[1])
	if cpu1[isa.IAdd] != 100 || cpu1[isa.ISub] != 100 || cpu1[isa.FAdd] != 0 {
		t.Errorf("cpu1 mix wrong: %v", cpu1)
	}
}

func TestTimeSlicingInterleavesQuanta(t *testing.T) {
	cfg := Config{Quantum: 10, SwitchCost: 0}
	composite, err := Schedule(cfg, workload(isa.FAdd, 30), nil, workload(isa.FMul, 30))
	if err != nil {
		t.Fatal(err)
	}
	// cpu0 runs programs 0 and 2 in 10-instruction slices.
	ins := trace.Collect(composite[0])
	if len(ins) != 60 {
		t.Fatalf("emitted %d, want 60", len(ins))
	}
	for i := 0; i < 10; i++ {
		if ins[i].Op != isa.FAdd {
			t.Fatalf("slice 1 instr %d is %v", i, ins[i].Op)
		}
		if ins[10+i].Op != isa.FMul {
			t.Fatalf("slice 2 instr %d is %v", i, ins[10+i].Op)
		}
	}
}

func TestSwitchOverheadEmitted(t *testing.T) {
	cfg := Config{Quantum: 10, SwitchCost: 8, KernelBase: 0xE000_0000}
	composite, err := Schedule(cfg, workload(isa.FAdd, 20), nil, workload(isa.FMul, 20))
	if err != nil {
		t.Fatal(err)
	}
	mix := trace.Mix(composite[0])
	// 40 program instructions plus switch paths.
	total := uint64(0)
	for _, n := range mix {
		total += n
	}
	if total <= 40 {
		t.Fatalf("no switch overhead: total %d", total)
	}
	if mix[isa.Store] == 0 || mix[isa.Load] == 0 {
		t.Error("switch path lacks kernel save/restore traffic")
	}
}

func TestNoSwitchCostWhenAlone(t *testing.T) {
	cfg := Config{Quantum: 10, SwitchCost: 50}
	composite, err := Schedule(cfg, workload(isa.FAdd, 35))
	if err != nil {
		t.Fatal(err)
	}
	if n := trace.Count(composite[0]); n != 35 {
		t.Fatalf("lone program emitted %d, want 35 (no switches)", n)
	}
	if composite[1] != nil {
		t.Error("cpu1 should have no program")
	}
}

func TestScheduleErrors(t *testing.T) {
	if _, err := Schedule(DefaultConfig()); err == nil {
		t.Error("empty program list accepted")
	}
	if _, err := Schedule(Config{Quantum: 0}, workload(isa.FAdd, 1)); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestRunMultiprogrammed(t *testing.T) {
	mcfg := smt.DefaultConfig()
	scfg := Config{Quantum: 200, SwitchCost: 60, KernelBase: 0xE000_0000}
	m, err := RunMultiprogrammed(mcfg, scfg, 100_000_000,
		workload(isa.FAdd, 2000), workload(isa.IAdd, 2000),
		workload(isa.FMul, 2000), workload(isa.ILogic, 2000))
	if err != nil {
		t.Fatal(err)
	}
	c := m.Counters()
	// Every program instruction retires, plus kernel overhead.
	if got := c.Total(perfmon.InstrRetired); got < 8000 {
		t.Fatalf("retired %d, want ≥ 8000", got)
	}
	if c.Get(perfmon.InstrRetired, 0) == 0 || c.Get(perfmon.InstrRetired, 1) == 0 {
		t.Error("a logical CPU sat idle")
	}
}

func TestMultiprogrammingCostsAgainstDedicated(t *testing.T) {
	// The same four workloads run slower when time-sliced with switch
	// overhead than as two back-to-back dedicated pairs... at minimum,
	// the kernel µops must show up in the retired count.
	mcfg := smt.DefaultConfig()
	withCost, err := RunMultiprogrammed(mcfg, Config{Quantum: 100, SwitchCost: 200, KernelBase: 0xE000_0000},
		100_000_000,
		workload(isa.FAdd, 3000), workload(isa.IAdd, 3000),
		workload(isa.FMul, 3000), workload(isa.ILogic, 3000))
	if err != nil {
		t.Fatal(err)
	}
	free, err := RunMultiprogrammed(mcfg, Config{Quantum: 100, SwitchCost: 0},
		100_000_000,
		workload(isa.FAdd, 3000), workload(isa.IAdd, 3000),
		workload(isa.FMul, 3000), workload(isa.ILogic, 3000))
	if err != nil {
		t.Fatal(err)
	}
	if withCost.Cycle() <= free.Cycle() {
		t.Errorf("switch overhead free: %d vs %d cycles", withCost.Cycle(), free.Cycle())
	}
}
