// Package layout implements the array layouts used by the paper's
// microkernels: blocked (tiled) array layouts with binary-mask fast
// indexing — the technique of the authors' earlier work [2] that the MM
// kernel employs, responsible for its heavy logical-operation (ALU0)
// traffic — and plain row-major layouts for comparison.
//
// Layouts translate (i, j) element coordinates into simulated byte
// addresses and know the instruction cost of their index arithmetic, which
// the kernel generators emit as ILogic µops so that the dynamic mix
// matches the profiled binaries of Table 1.
package layout

import (
	"fmt"
	"math/bits"

	"smtexplore/internal/isa"
	"smtexplore/internal/trace"
)

// ElemSize is the element size used throughout the kernels (64-bit
// floating-point scalars).
const ElemSize = 8

// Blocked is a square matrix stored tile-by-tile: elements of one
// Tile×Tile tile are contiguous, and tiles follow each other in row-major
// tile order. With power-of-two dimensions every index expression reduces
// to shifts, ands and ors over binary masks.
type Blocked struct {
	base uint64
	n    int
	tile int

	loMask   uint64 // tile-local index mask
	tileBits uint   // log2(tile)
	nBits    uint   // log2(n)
}

// NewBlocked builds a blocked layout at base for an n×n matrix with t×t
// tiles. n and t must be powers of two with t dividing n.
func NewBlocked(base uint64, n, t int) (*Blocked, error) {
	if n <= 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("layout: n = %d is not a positive power of two", n)
	}
	if t <= 0 || t&(t-1) != 0 {
		return nil, fmt.Errorf("layout: tile = %d is not a positive power of two", t)
	}
	if t > n {
		return nil, fmt.Errorf("layout: tile %d exceeds matrix dimension %d", t, n)
	}
	return &Blocked{
		base:     base,
		n:        n,
		tile:     t,
		loMask:   uint64(t - 1),
		tileBits: uint(bits.TrailingZeros(uint(t))),
		nBits:    uint(bits.TrailingZeros(uint(n))),
	}, nil
}

// MustBlocked is NewBlocked panicking on error (constructor misuse).
func MustBlocked(base uint64, n, t int) *Blocked {
	b, err := NewBlocked(base, n, t)
	if err != nil {
		panic(err)
	}
	return b
}

// N and Tile report the layout geometry.
func (b *Blocked) N() int    { return b.n }
func (b *Blocked) Tile() int { return b.tile }

// Bytes is the total footprint of the matrix.
func (b *Blocked) Bytes() uint64 { return uint64(b.n) * uint64(b.n) * ElemSize }

// Base returns the matrix base address.
func (b *Blocked) Base() uint64 { return b.base }

// Addr maps element (i, j) to its byte address using the binary-mask
// decomposition: tile coordinates from the high index bits, intra-tile
// offset from the masked low bits.
func (b *Blocked) Addr(i, j int) uint64 {
	ti := uint64(i) >> b.tileBits
	tj := uint64(j) >> b.tileBits
	li := uint64(i) & b.loMask
	lj := uint64(j) & b.loMask
	tilesPerRow := uint64(b.n) >> b.tileBits
	tileIdx := ti*tilesPerRow + tj
	inTile := li<<b.tileBits | lj
	return b.base + (tileIdx<<(2*b.tileBits)|inTile)*ElemSize
}

// TileBase returns the address of tile (ti, tj)'s first element.
func (b *Blocked) TileBase(ti, tj int) uint64 {
	return b.Addr(ti<<b.tileBits, tj<<b.tileBits)
}

// TileBytes is the footprint of one tile.
func (b *Blocked) TileBytes() uint64 { return uint64(b.tile) * uint64(b.tile) * ElemSize }

// IndexUops is the number of ILogic µops one mask-based address
// computation costs in the generated instruction stream: mask the low
// bits, shift/or the tile coordinates, and merge — the fast-indexing
// recipe of [2]. Emitted per element access by the MM kernel, this yields
// the ≈25% logical-op share Table 1 reports.
const IndexUops = 2

// EmitIndex emits the logical µops of one mask-based index computation
// into dst (an integer register).
func (b *Blocked) EmitIndex(e *trace.Emitter, dst isa.Reg) {
	for k := 0; k < IndexUops; k++ {
		e.ALU(isa.ILogic, dst, dst, isa.R(30))
	}
}

// RowMajor is a plain row-major matrix layout, used by the non-blocked
// kernels (CG vectors, BT grids) and as the MM baseline comparator.
type RowMajor struct {
	base uint64
	rows int
	cols int
}

// NewRowMajor builds a rows×cols layout at base.
func NewRowMajor(base uint64, rows, cols int) (*RowMajor, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("layout: dimensions %dx%d not positive", rows, cols)
	}
	return &RowMajor{base: base, rows: rows, cols: cols}, nil
}

// MustRowMajor is NewRowMajor panicking on error.
func MustRowMajor(base uint64, rows, cols int) *RowMajor {
	r, err := NewRowMajor(base, rows, cols)
	if err != nil {
		panic(err)
	}
	return r
}

// Rows and Cols report the geometry.
func (r *RowMajor) Rows() int { return r.rows }
func (r *RowMajor) Cols() int { return r.cols }

// Bytes is the total footprint.
func (r *RowMajor) Bytes() uint64 { return uint64(r.rows) * uint64(r.cols) * ElemSize }

// Addr maps element (i, j) to its byte address.
func (r *RowMajor) Addr(i, j int) uint64 {
	if i < 0 || i >= r.rows || j < 0 || j >= r.cols {
		panic(fmt.Sprintf("layout: (%d,%d) outside %dx%d", i, j, r.rows, r.cols))
	}
	return r.base + (uint64(i)*uint64(r.cols)+uint64(j))*ElemSize
}

// Vec is a 1-D array layout.
type Vec struct {
	base uint64
	n    int
	elem int
}

// NewVec builds an n-element vector at base with elemSize-byte elements.
func NewVec(base uint64, n, elemSize int) (*Vec, error) {
	if n <= 0 || elemSize <= 0 {
		return nil, fmt.Errorf("layout: vector n=%d elem=%d not positive", n, elemSize)
	}
	return &Vec{base: base, n: n, elem: elemSize}, nil
}

// MustVec is NewVec panicking on error.
func MustVec(base uint64, n, elemSize int) *Vec {
	v, err := NewVec(base, n, elemSize)
	if err != nil {
		panic(err)
	}
	return v
}

// Len reports the element count.
func (v *Vec) Len() int { return v.n }

// Bytes is the total footprint.
func (v *Vec) Bytes() uint64 { return uint64(v.n) * uint64(v.elem) }

// Addr maps element i to its byte address.
func (v *Vec) Addr(i int) uint64 {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("layout: index %d outside vector of %d", i, v.n))
	}
	return v.base + uint64(i)*uint64(v.elem)
}

// Arena hands out disjoint address regions for the simulated data
// structures of a workload, 4 KiB-aligned with a guard gap.
type Arena struct {
	next uint64
}

// NewArena starts allocation at base.
func NewArena(base uint64) *Arena { return &Arena{next: base} }

// Alloc reserves size bytes and returns the region base.
func (a *Arena) Alloc(size uint64) uint64 {
	const align = 4096
	base := a.next
	a.next += (size + 2*align - 1) &^ (align - 1)
	return base
}
