package layout

import (
	"testing"
	"testing/quick"

	"smtexplore/internal/isa"
	"smtexplore/internal/trace"
)

func TestBlockedValidation(t *testing.T) {
	if _, err := NewBlocked(0, 64, 16); err != nil {
		t.Fatalf("valid layout rejected: %v", err)
	}
	for _, c := range []struct{ n, tile int }{{63, 16}, {64, 12}, {0, 16}, {16, 64}} {
		if _, err := NewBlocked(0, c.n, c.tile); err == nil {
			t.Errorf("NewBlocked(%d,%d) accepted", c.n, c.tile)
		}
	}
}

func TestBlockedAddrBijective(t *testing.T) {
	b := MustBlocked(0x1000, 16, 4)
	seen := map[uint64][2]int{}
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			a := b.Addr(i, j)
			if prev, dup := seen[a]; dup {
				t.Fatalf("(%d,%d) and (%d,%d) share address %#x", i, j, prev[0], prev[1], a)
			}
			seen[a] = [2]int{i, j}
			if a < 0x1000 || a >= 0x1000+b.Bytes() {
				t.Fatalf("(%d,%d) address %#x outside matrix", i, j, a)
			}
			if a%ElemSize != 0 {
				t.Fatalf("(%d,%d) address %#x misaligned", i, j, a)
			}
		}
	}
}

func TestBlockedTileContiguity(t *testing.T) {
	// All elements of one tile occupy one contiguous TileBytes region.
	b := MustBlocked(0, 64, 8)
	base := b.TileBase(2, 3)
	for li := 0; li < 8; li++ {
		for lj := 0; lj < 8; lj++ {
			a := b.Addr(2*8+li, 3*8+lj)
			if a < base || a >= base+b.TileBytes() {
				t.Fatalf("tile element (%d,%d) at %#x outside tile region [%#x,%#x)", li, lj, a, base, base+b.TileBytes())
			}
		}
	}
	// Consecutive j within a tile row are adjacent (blocked row-major).
	if b.Addr(16, 25)-b.Addr(16, 24) != ElemSize {
		t.Error("intra-tile row not contiguous")
	}
}

func TestBlockedAddrProperty(t *testing.T) {
	b := MustBlocked(0x4000, 64, 16)
	f := func(i, j uint8) bool {
		ii, jj := int(i)%64, int(j)%64
		a := b.Addr(ii, jj)
		// Recompute with plain arithmetic (no masks) as the oracle.
		ti, tj, li, lj := ii/16, jj/16, ii%16, jj%16
		want := uint64(0x4000) + uint64(((ti*4+tj)*256+li*16+lj)*ElemSize)
		return a == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEmitIndexCost(t *testing.T) {
	b := MustBlocked(0, 64, 16)
	p := trace.Generate(func(e *trace.Emitter) { b.EmitIndex(e, isa.R(5)) })
	mix := trace.Mix(p)
	if mix[isa.ILogic] != IndexUops {
		t.Fatalf("EmitIndex produced %d ilogic µops, want %d", mix[isa.ILogic], IndexUops)
	}
}

func TestRowMajor(t *testing.T) {
	r := MustRowMajor(0x100, 4, 8)
	if got := r.Addr(0, 0); got != 0x100 {
		t.Errorf("Addr(0,0) = %#x", got)
	}
	if r.Addr(1, 0)-r.Addr(0, 7) != ElemSize {
		t.Error("rows not contiguous")
	}
	if r.Bytes() != 4*8*ElemSize {
		t.Errorf("Bytes = %d", r.Bytes())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Addr did not panic")
		}
	}()
	r.Addr(4, 0)
}

func TestVec(t *testing.T) {
	v := MustVec(0x200, 10, 4)
	if v.Addr(3) != 0x200+12 {
		t.Errorf("Addr(3) = %#x", v.Addr(3))
	}
	if v.Bytes() != 40 {
		t.Errorf("Bytes = %d", v.Bytes())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative index did not panic")
		}
	}()
	v.Addr(-1)
}

func TestArenaDisjointAligned(t *testing.T) {
	a := NewArena(0x10000)
	r1 := a.Alloc(100)
	r2 := a.Alloc(8192)
	r3 := a.Alloc(1)
	if r1%4096 != 0 || r2%4096 != 0 || r3%4096 != 0 {
		t.Error("arena regions not 4K aligned")
	}
	if r2 < r1+100 {
		t.Error("regions overlap")
	}
	if r3 < r2+8192 {
		t.Error("regions overlap")
	}
	if r2-r1 < 100+4096 {
		t.Error("missing guard gap")
	}
}
