package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdering(t *testing.T) {
	// Later cells finish first (earlier indices sleep longer); results
	// must still come back in submission order.
	specs := make([]int, 64)
	for i := range specs {
		specs[i] = i
	}
	out, err := Map(context.Background(), 8, specs, func(_ context.Context, i int) (string, error) {
		time.Sleep(time.Duration(len(specs)-i) * 100 * time.Microsecond)
		return fmt.Sprintf("cell-%d", i), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if want := fmt.Sprintf("cell-%d", i); v != want {
			t.Fatalf("out[%d] = %q, want %q", i, v, want)
		}
	}
}

func TestMapEmptyAndWorkerBounds(t *testing.T) {
	out, err := Map(context.Background(), 4, nil, func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty map: out=%v err=%v", out, err)
	}
	// More workers than cells, and the ≤0 → GOMAXPROCS default.
	for _, w := range []int{100, 0, -3} {
		out, err := Map(context.Background(), w, []int{1, 2, 3}, func(_ context.Context, i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != 1 || out[1] != 4 || out[2] != 9 {
			t.Fatalf("workers=%d: out=%v", w, out)
		}
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Error("Workers must default to at least one")
	}
	if Workers(7) != 7 {
		t.Error("Workers must pass positive values through")
	}
}

func TestMapFirstErrorInSubmissionOrder(t *testing.T) {
	errA := errors.New("cell 3 failed")
	errB := errors.New("cell 9 failed")
	_, err := Map(context.Background(), 4, []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, func(_ context.Context, i int) (int, error) {
		switch i {
		case 3:
			time.Sleep(20 * time.Millisecond) // the earlier error finishes last
			return 0, errA
		case 9:
			return 0, errB
		}
		return i, nil
	})
	if !errors.Is(err, errA) {
		t.Fatalf("got %v, want the submission-order first error %v", err, errA)
	}
}

func TestMapPanicRecovery(t *testing.T) {
	ran := atomic.Int32{}
	_, err := Map(context.Background(), 2, []int{0, 1, 2, 3}, func(_ context.Context, i int) (int, error) {
		ran.Add(1)
		if i == 1 {
			panic("bad configuration")
		}
		return i, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *PanicError", err)
	}
	if !strings.Contains(pe.Error(), "bad configuration") || len(pe.Stack) == 0 {
		t.Errorf("panic error lacks value or stack: %v", pe)
	}
	if got := ran.Load(); got != 4 {
		t.Errorf("%d cells ran, want all 4 (one panic must not kill the figure)", got)
	}
}

func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once sync.Once
	var ran atomic.Int32
	specs := make([]int, 100)
	go func() {
		<-started
		cancel()
	}()
	_, err := Map(ctx, 2, specs, func(ctx context.Context, _ int) (int, error) {
		once.Do(func() { close(started) })
		ran.Add(1)
		<-ctx.Done()
		return 0, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if got := ran.Load(); got > 4 {
		t.Errorf("%d cells started after cancellation, want ≤ workers+in-flight", got)
	}
}

func TestMapCellErrorBeatsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	real := errors.New("simulation diverged")
	_, err := Map(ctx, 2, []int{0, 1, 2, 3}, func(ctx context.Context, i int) (int, error) {
		if i == 1 {
			cancel() // a later harness would observe ctx done
			return 0, real
		}
		<-ctx.Done()
		return 0, ctx.Err()
	})
	if !errors.Is(err, real) {
		t.Fatalf("got %v, want the cell error to win over cancellation", err)
	}
}

func TestCacheSingleFlight(t *testing.T) {
	c := NewCache()
	var computed atomic.Int32
	var wg sync.WaitGroup
	for range 16 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := Cached(c, "k", func() (int, error) {
				computed.Add(1)
				time.Sleep(5 * time.Millisecond)
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("got (%d, %v)", v, err)
			}
		}()
	}
	wg.Wait()
	if got := computed.Load(); got != 1 {
		t.Errorf("compute ran %d times, want 1 (single flight)", got)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 15 || s.Entries != 1 {
		t.Errorf("stats = %+v, want 1 miss / 15 hits / 1 entry", s)
	}
}

func TestCacheDoesNotCacheErrors(t *testing.T) {
	c := NewCache()
	fail := true
	compute := func() (int, error) {
		if fail {
			return 0, errors.New("cancelled mid-cell")
		}
		return 7, nil
	}
	if _, err := Cached(c, "k", compute); err == nil {
		t.Fatal("first compute should fail")
	}
	fail = false
	v, err := Cached(c, "k", compute)
	if err != nil || v != 7 {
		t.Fatalf("retry after error got (%d, %v), want (7, nil)", v, err)
	}
}

func TestCacheNilAndTypeMismatch(t *testing.T) {
	v, err := Cached[int](nil, "k", func() (int, error) { return 3, nil })
	if err != nil || v != 3 {
		t.Fatalf("nil cache pass-through got (%d, %v)", v, err)
	}
	c := NewCache()
	if _, err := Cached(c, "k", func() (int, error) { return 3, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := Cached(c, "k", func() (string, error) { return "x", nil }); err == nil {
		t.Error("type-mismatched reuse of a key must error, not mis-cast")
	}
}

func TestKeyDeterminismAndDistinctness(t *testing.T) {
	type cfg struct {
		N    int
		Mode string
	}
	a := Key("kernel", cfg{64, "serial"}, "N=64")
	b := Key("kernel", cfg{64, "serial"}, "N=64")
	if a != b {
		t.Error("identical parts must key identically")
	}
	if a == Key("kernel", cfg{128, "serial"}, "N=128") {
		t.Error("distinct parts must key distinctly")
	}
	if Key("ab", "c") == Key("a", "bc") {
		t.Error("part boundaries must be preserved")
	}
}
