package runner

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
)

// Tier is an optional persistent layer under the in-memory cache: a
// byte-oriented key-value store consulted on in-memory misses
// (read-through) and populated on successful computes (write-through).
// Implementations must be safe for concurrent use; internal/store
// provides the disk-backed one. Both methods are best-effort — a Load
// miss triggers a compute and a failed Store loses nothing but reuse.
type Tier interface {
	Load(key string) (data []byte, ok bool)
	Store(key string, data []byte)
}

// Cache is a content-keyed, in-memory result cache with single-flight
// semantics: concurrent lookups of the same key block on one
// computation instead of duplicating it. The simulations it fronts are
// deterministic, so a cached value is byte-identical to a recomputed
// one; failed computations are not cached (a cancellation must not
// poison the key for a later retry).
//
// Two optional knobs make it safe as a long-lived shared cache (the
// smtd daemon's default): WithLimit bounds the resident entries with
// LRU eviction, and WithTier layers a persistent store underneath so
// evicted or restart-lost results are one disk read away instead of a
// re-simulation.
type Cache struct {
	mu        sync.Mutex
	entries   map[string]*cacheEntry
	lru       *list.List // completed entries, front = most recently used
	limit     int
	tier      Tier
	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheEntry struct {
	key  string
	done chan struct{}
	val  any
	err  error
	elem *list.Element // nil while the computation is in flight
}

// NewCache returns an empty cache, safe for concurrent use.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]*cacheEntry), lru: list.New()}
}

// WithLimit bounds the resident completed entries; inserting beyond n
// evicts the least recently used. n <= 0 means unbounded (the default).
// In-flight computations are never evicted. Returns c for chaining at
// construction; do not change the limit once lookups have started.
func (c *Cache) WithLimit(n int) *Cache {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.limit = n
	return c
}

// WithTier attaches the persistent layer consulted on in-memory misses.
// Returns c for chaining at construction; do not change the tier once
// lookups have started.
func (c *Cache) WithTier(t Tier) *Cache {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tier = t
	return c
}

// CacheStats reports cache effectiveness.
type CacheStats struct {
	// Hits counts lookups served from a completed or in-flight entry.
	Hits uint64
	// Misses counts lookups that had to compute (or read the tier).
	Misses uint64
	// Evictions counts completed entries dropped to honour WithLimit.
	Evictions uint64
	// Entries is the number of stored results.
	Entries int
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Entries: len(c.entries)}
}

// do returns the cached value for key, computing it via compute on the
// first (or first-after-failure) lookup. Concurrent callers of the same
// key wait for the in-flight computation. A panicking compute is
// converted to an error for the waiters (so they unblock instead of
// hanging on a forever-in-flight entry) and then re-raised for the
// panicking caller, whose own isolation decides what it means.
func (c *Cache) do(key string, compute func() (any, error)) (any, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
		c.mu.Unlock()
		<-e.done
		return e.val, e.err
	}
	e := &cacheEntry{key: key, done: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()

	panicked := true
	defer func() {
		if !panicked {
			return
		}
		e.err = fmt.Errorf("runner: cache compute for %q panicked", key)
		c.mu.Lock()
		delete(c.entries, key)
		c.mu.Unlock()
		close(e.done)
	}()
	e.val, e.err = compute()
	panicked = false

	c.mu.Lock()
	if e.err != nil {
		delete(c.entries, key)
	} else {
		e.elem = c.lru.PushFront(e)
		c.evictOverLimitLocked()
	}
	c.mu.Unlock()
	close(e.done)
	return e.val, e.err
}

// evictOverLimitLocked drops least-recently-used completed entries until
// the resident set fits the limit. Only entries in the LRU list (i.e.
// completed) are candidates; waiters holding an evicted entry pointer
// still read its value — eviction only forgets the key.
func (c *Cache) evictOverLimitLocked() {
	if c.limit <= 0 {
		return
	}
	for c.lru.Len() > c.limit {
		back := c.lru.Back()
		if back == nil {
			return
		}
		e := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		delete(c.entries, e.key)
		c.evictions++
	}
}

// tierSnapshot reads the tier pointer under the lock (WithTier may run
// on another goroutine during setup; lookups must not race it).
func (c *Cache) tierSnapshot() Tier {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tier
}

// Meter observes how one Cached lookup was satisfied, for per-caller
// attribution (the service binds one per tenant). The cache itself
// keeps only aggregate counters — it is shared and content-addressed,
// so "whose bytes are these" is a question only the caller can answer.
// Implementations must be safe for concurrent use. All hooks are
// invoked outside the cache lock.
type Meter interface {
	// CacheServed fires when the in-memory cache satisfied the lookup —
	// a completed entry, or joining a computation another caller had in
	// flight (single-flight attribution goes to the computing caller).
	CacheServed()
	// TierServed fires when the persistent tier satisfied the lookup,
	// with the payload size read.
	TierServed(bytes int)
	// Simulated fires when the value had to be computed (every cache
	// tier missed).
	Simulated()
	// TierWritten fires when a computed value was written through to
	// the tier, with the payload size written.
	TierWritten(bytes int)
}

// Cached runs compute through the cache under key. A nil cache computes
// directly, so callers can thread an optional cache without branching.
//
// With a tier attached, an in-memory miss first tries the tier
// (read-through): a stored payload is decoded as JSON into R. On a tier
// miss — or an undecodable payload, e.g. after a schema change — the
// value is computed and written back (write-through). The decode/encode
// round-trip is exact for the result types in play (integers, strings
// and finite float64s), so a tier hit is byte-identical to a recompute.
func Cached[R any](c *Cache, key string, compute func() (R, error)) (R, error) {
	return CachedMetered(c, key, nil, compute)
}

// CachedMetered is Cached with an attribution hook: m (when non-nil)
// is told whether the lookup was served from memory, served from the
// tier, or computed — and how many tier bytes moved. This is the choke
// point the service uses for per-tenant store accounting; the split
// from Cached keeps the unmetered call sites untouched.
func CachedMetered[R any](c *Cache, key string, m Meter, compute func() (R, error)) (R, error) {
	if c == nil {
		r, err := compute()
		if m != nil && err == nil {
			m.Simulated()
		}
		return r, err
	}
	// ran flips inside the closure; do() runs it on this goroutine or
	// not at all, so reading it afterwards is race-free. If it never
	// ran, the in-memory cache (or a joined in-flight compute)
	// satisfied the lookup.
	ran := false
	v, err := c.do(key, func() (any, error) {
		ran = true
		tier := c.tierSnapshot()
		if tier != nil {
			if data, ok := tier.Load(key); ok {
				var r R
				if err := json.Unmarshal(data, &r); err == nil {
					if m != nil {
						m.TierServed(len(data))
					}
					return r, nil
				}
			}
		}
		r, err := compute()
		if err != nil {
			return nil, err
		}
		if m != nil {
			m.Simulated()
		}
		if tier != nil {
			if data, err := json.Marshal(r); err == nil {
				tier.Store(key, data)
				if m != nil {
					m.TierWritten(len(data))
				}
			}
		}
		return r, nil
	})
	if err != nil {
		var zero R
		return zero, err
	}
	if !ran && m != nil {
		m.CacheServed()
	}
	r, ok := v.(R)
	if !ok {
		var zero R
		return zero, fmt.Errorf("runner: cache key %q holds %T, caller wants %T", key, v, zero)
	}
	return r, nil
}

// Key builds a deterministic content key from the cell's identifying
// parts (machine configuration, kernel configuration, mode, label, …)
// by hashing their %#v renderings. Parts must render deterministically:
// plain values, structs and slices qualify; maps with more than one
// entry and pointers do not (pass a canonicalised form instead).
func Key(parts ...any) string {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%#v\x00", p)
	}
	return hex.EncodeToString(h.Sum(nil))
}
