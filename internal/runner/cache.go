package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
)

// Cache is a content-keyed, in-memory result cache with single-flight
// semantics: concurrent lookups of the same key block on one
// computation instead of duplicating it. The simulations it fronts are
// deterministic, so a cached value is byte-identical to a recomputed
// one; failed computations are not cached (a cancellation must not
// poison the key for a later retry).
type Cache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	hits    uint64
	misses  uint64
}

type cacheEntry struct {
	done chan struct{}
	val  any
	err  error
}

// NewCache returns an empty cache, safe for concurrent use.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]*cacheEntry)}
}

// CacheStats reports cache effectiveness.
type CacheStats struct {
	// Hits counts lookups served from a completed or in-flight entry.
	Hits uint64
	// Misses counts lookups that had to compute.
	Misses uint64
	// Entries is the number of stored results.
	Entries int
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: len(c.entries)}
}

// do returns the cached value for key, computing it via compute on the
// first (or first-after-failure) lookup. Concurrent callers of the same
// key wait for the in-flight computation.
func (c *Cache) do(key string, compute func() (any, error)) (any, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-e.done
		return e.val, e.err
	}
	e := &cacheEntry{done: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()

	e.val, e.err = compute()
	if e.err != nil {
		c.mu.Lock()
		delete(c.entries, key)
		c.mu.Unlock()
	}
	close(e.done)
	return e.val, e.err
}

// Cached runs compute through the cache under key. A nil cache computes
// directly, so callers can thread an optional cache without branching.
func Cached[R any](c *Cache, key string, compute func() (R, error)) (R, error) {
	if c == nil {
		return compute()
	}
	v, err := c.do(key, func() (any, error) { return compute() })
	if err != nil {
		var zero R
		return zero, err
	}
	r, ok := v.(R)
	if !ok {
		var zero R
		return zero, fmt.Errorf("runner: cache key %q holds %T, caller wants %T", key, v, zero)
	}
	return r, nil
}

// Key builds a deterministic content key from the cell's identifying
// parts (machine configuration, kernel configuration, mode, label, …)
// by hashing their %#v renderings. Parts must render deterministically:
// plain values, structs and slices qualify; maps with more than one
// entry and pointers do not (pass a canonicalised form instead).
func Key(parts ...any) string {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%#v\x00", p)
	}
	return hex.EncodeToString(h.Sum(nil))
}
