package runner

import (
	"context"
	"runtime"
	"testing"
	"time"
)

// busyCell is a CPU-bound stand-in for one simulation cell.
func busyCell(_ context.Context, seed int) (uint64, error) {
	x := uint64(seed)*2654435761 + 1
	for range 2_000_000 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	return x, nil
}

// BenchmarkMapSpeedup measures the pool's parallel speedup over the
// workers=1 path on CPU-bound cells, reporting it as a metric (≈ core
// count on an idle machine; ≈1 guarantees no regression on 1 core).
func BenchmarkMapSpeedup(b *testing.B) {
	specs := make([]int, 4*runtime.GOMAXPROCS(0))
	for i := range specs {
		specs[i] = i
	}
	run := func(workers int) time.Duration {
		start := time.Now()
		if _, err := Map(context.Background(), workers, specs, busyCell); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	var serial, parallel time.Duration
	for b.Loop() {
		serial += run(1)
		parallel += run(0)
	}
	b.ReportMetric(serial.Seconds()/parallel.Seconds(), "speedup")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
}
