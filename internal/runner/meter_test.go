package runner

import (
	"sync"
	"testing"
)

// countMeter records which attribution hooks fired.
type countMeter struct {
	mu          sync.Mutex
	cacheServed int
	tierServed  int
	servedBytes int
	simulated   int
	tierWritten int
	wroteBytes  int
}

func (m *countMeter) CacheServed() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cacheServed++
}

func (m *countMeter) TierServed(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tierServed++
	m.servedBytes += n
}

func (m *countMeter) Simulated() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.simulated++
}

func (m *countMeter) TierWritten(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tierWritten++
	m.wroteBytes += n
}

func TestCachedMeteredAttribution(t *testing.T) {
	tier := newFakeTier()
	c := NewCache().WithTier(tier)
	m := &countMeter{}
	get := func() (int, error) {
		return CachedMetered(c, "k", m, func() (int, error) { return 42, nil })
	}

	// Cold: the caller simulates and the result is written to the tier.
	if v, err := get(); err != nil || v != 42 {
		t.Fatalf("cold get = %d, %v", v, err)
	}
	if m.simulated != 1 || m.tierWritten != 1 || m.wroteBytes == 0 {
		t.Fatalf("after cold get: %+v, want 1 simulate + 1 tier write", m)
	}

	// Warm in memory: served from cache, no new simulation or IO.
	if _, err := get(); err != nil {
		t.Fatal(err)
	}
	if m.cacheServed != 1 || m.simulated != 1 || m.tierServed != 0 {
		t.Fatalf("after warm get: %+v, want 1 cache-serve", m)
	}

	// Fresh process, same tier: served from the tier, bytes attributed.
	c2 := NewCache().WithTier(tier)
	m2 := &countMeter{}
	if v, err := CachedMetered(c2, "k", m2, func() (int, error) {
		t.Fatal("tier hit must not recompute")
		return 0, nil
	}); err != nil || v != 42 {
		t.Fatalf("tier get = %d, %v", v, err)
	}
	if m2.tierServed != 1 || m2.servedBytes != m.wroteBytes || m2.simulated != 0 {
		t.Fatalf("after tier get: %+v, want 1 tier-serve of %d bytes", m2, m.wroteBytes)
	}
}

func TestCachedMeteredNilMeterAndNilCache(t *testing.T) {
	// Nil meter: plain caching still works (Cached delegates here).
	c := NewCache()
	if v, err := CachedMetered(c, "k", nil, func() (int, error) { return 7, nil }); err != nil || v != 7 {
		t.Fatalf("nil meter get = %d, %v", v, err)
	}
	// Nil cache: computes every time, still attributed as simulation.
	m := &countMeter{}
	for i := 0; i < 2; i++ {
		if v, err := CachedMetered[int](nil, "k", m, func() (int, error) { return 9, nil }); err != nil || v != 9 {
			t.Fatalf("nil cache get = %d, %v", v, err)
		}
	}
	if m.simulated != 2 || m.cacheServed != 0 {
		t.Fatalf("nil cache meter = %+v, want 2 simulations", m)
	}
}

func TestCachedMeteredJoinersCountAsCacheServed(t *testing.T) {
	c := NewCache()
	start := make(chan struct{})
	release := make(chan struct{})
	meters := make([]*countMeter, 4)
	var wg sync.WaitGroup
	for i := range meters {
		meters[i] = &countMeter{}
		wg.Add(1)
		go func(m *countMeter) {
			defer wg.Done()
			<-start
			CachedMetered(c, "k", m, func() (int, error) {
				close(release) // only one closure runs; a second close panics
				return 1, nil
			})
		}(meters[i])
	}
	close(start)
	wg.Wait()
	<-release
	var sim, served int
	for _, m := range meters {
		sim += m.simulated
		served += m.cacheServed
	}
	if sim != 1 || served != 3 {
		t.Fatalf("simulated=%d cacheServed=%d, want exactly 1 simulation and 3 joiners", sim, served)
	}
}
