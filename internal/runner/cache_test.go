package runner

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// fakeTier is an in-memory Tier recording its traffic.
type fakeTier struct {
	mu     sync.Mutex
	data   map[string][]byte
	loads  int
	stores int
}

func newFakeTier() *fakeTier { return &fakeTier{data: make(map[string][]byte)} }

func (f *fakeTier) Load(key string) ([]byte, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.loads++
	d, ok := f.data[key]
	return d, ok
}

func (f *fakeTier) Store(key string, data []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stores++
	f.data[key] = append([]byte(nil), data...)
}

func TestCacheLimitEvictsLRU(t *testing.T) {
	c := NewCache().WithLimit(2)
	get := func(key string) (string, error) {
		return Cached(c, key, func() (string, error) { return "v-" + key, nil })
	}
	for _, k := range []string{"a", "b"} {
		if _, err := get(k); err != nil {
			t.Fatal(err)
		}
	}
	// Touch "a" so "b" is the least recently used, then overflow.
	if _, err := get("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := get("c"); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("after overflow: %+v, want 2 entries, 1 eviction", st)
	}
	// "a" survived (recently used), "b" did not.
	misses := st.Misses
	if _, err := get("a"); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Misses; got != misses {
		t.Errorf("lookup of retained key missed (misses %d -> %d)", misses, got)
	}
	if _, err := get("b"); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Misses; got != misses+1 {
		t.Errorf("lookup of evicted key should miss (misses %d -> %d)", misses, got)
	}
}

func TestCacheLimitSkipsInFlight(t *testing.T) {
	c := NewCache().WithLimit(1)
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := Cached(c, "slow", func() (int, error) {
			close(started)
			<-release
			return 1, nil
		})
		if err != nil {
			t.Error(err)
		}
	}()
	<-started
	// Complete other keys while "slow" is in flight; the limit of 1 must
	// evict among the completed entries only.
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, err := Cached(c, key, func() (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	<-done
	// The slow entry completed after the churn and must be resident.
	hits := c.Stats().Hits
	v, err := Cached(c, "slow", func() (int, error) {
		t.Error("in-flight entry was evicted; recomputed")
		return -1, nil
	})
	if err != nil || v != 1 {
		t.Fatalf("slow = %d, %v, want 1, nil", v, err)
	}
	if got := c.Stats().Hits; got != hits+1 {
		t.Errorf("expected a hit on the completed in-flight entry (hits %d -> %d)", hits, got)
	}
}

func TestCacheTierReadThroughAndWriteThrough(t *testing.T) {
	tier := newFakeTier()

	// A cold cache computes and writes through.
	c1 := NewCache().WithTier(tier)
	computes := 0
	v, err := Cached(c1, "k", func() (float64, error) { computes++; return 3.25, nil })
	if err != nil || v != 3.25 {
		t.Fatalf("cold = %v, %v", v, err)
	}
	if computes != 1 || tier.stores != 1 {
		t.Fatalf("computes=%d stores=%d, want 1, 1", computes, tier.stores)
	}

	// A fresh cache over the same tier reads through without computing.
	c2 := NewCache().WithTier(tier)
	v, err = Cached(c2, "k", func() (float64, error) { computes++; return -1, nil })
	if err != nil || v != 3.25 {
		t.Fatalf("warm = %v, %v", v, err)
	}
	if computes != 1 {
		t.Fatalf("warm lookup recomputed (computes=%d)", computes)
	}

	// An undecodable payload falls through to compute and is rewritten.
	tier.data["k"] = []byte("{not json")
	c3 := NewCache().WithTier(tier)
	v, err = Cached(c3, "k", func() (float64, error) { computes++; return 3.25, nil })
	if err != nil || v != 3.25 || computes != 2 {
		t.Fatalf("corrupt payload: v=%v err=%v computes=%d, want recompute", v, err, computes)
	}
	if string(tier.data["k"]) != "3.25" {
		t.Errorf("tier not rewritten after corrupt payload: %q", tier.data["k"])
	}
}

func TestCacheEvictedKeyRefilledFromTier(t *testing.T) {
	tier := newFakeTier()
	c := NewCache().WithLimit(1).WithTier(tier)
	computes := 0
	get := func(key string) {
		t.Helper()
		want := "v-" + key
		v, err := Cached(c, key, func() (string, error) { computes++; return want, nil })
		if err != nil || v != want {
			t.Fatalf("get(%q) = %q, %v", key, v, err)
		}
	}
	get("a")
	get("b") // evicts "a" from memory; tier still holds it
	before := computes
	get("a") // in-memory miss, tier hit
	if computes != before {
		t.Errorf("evicted key recomputed instead of tier read-through (computes %d -> %d)", before, computes)
	}
}

// A panicking compute must not wedge its key: concurrent waiters on the
// in-flight entry unblock with an error instead of hanging forever, the
// panic still propagates to the panicking caller, and a later lookup of
// the same key recomputes cleanly.
func TestCachePanickingComputeUnblocksWaiters(t *testing.T) {
	c := NewCache()
	started := make(chan struct{})
	waiterErr := make(chan error, 1)
	go func() {
		<-started
		_, err := Cached(c, "k", func() (int, error) { return 7, nil })
		waiterErr <- err
	}()

	var recovered any
	func() {
		defer func() { recovered = recover() }()
		Cached(c, "k", func() (int, error) {
			close(started)
			// Wait until the waiter has attached to the in-flight entry
			// (its lookup counts as a hit) before blowing up.
			for c.Stats().Hits == 0 {
			}
			panic("boom")
		})
	}()
	if recovered != "boom" {
		t.Fatalf("panic did not propagate to the computing caller: %v", recovered)
	}

	err := <-waiterErr
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("waiter got %v, want a compute-panicked error", err)
	}

	// The key is not poisoned: a fresh lookup computes normally.
	v, err := Cached(c, "k", func() (int, error) { return 11, nil })
	if err != nil || v != 11 {
		t.Fatalf("post-panic lookup = %v, %v; want 11", v, err)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Errorf("entries = %d after recovery, want 1", st.Entries)
	}
}
