// Package runner schedules independent, deterministic experiment cells
// over a bounded worker pool. It is the concurrency layer under
// internal/experiments: every figure and table of the reproduction is a
// fan-out of isolated simulations (one machine, one cell, no shared
// state), which Map executes on up to GOMAXPROCS workers while
// preserving the exact submission order of the results — the parallel
// output of a harness is byte-identical to its serial output.
//
// Guarantees:
//
//   - Ordering: Map returns results indexed exactly like the input
//     specs, regardless of completion order.
//   - Isolation: a panic inside one cell is recovered into a *PanicError
//     for that cell; the remaining cells still run.
//   - Cancellation: cells observe ctx between runs; once ctx is done no
//     new cell starts (a cell already simulating completes — the
//     simulator has no preemption points).
//   - Determinism: the first error in submission order is returned, so a
//     failing configuration reports the same error the serial loop
//     would, independent of scheduling. Context errors are only
//     reported when no cell failed on its own.
//
// The companion Cache (cache.go) adds content-keyed result reuse with
// single-flight semantics, so identical cells submitted concurrently —
// shared solo baselines, repeated default configurations — simulate
// once.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Func computes one cell. It must be safe to call concurrently with
// other cells (the experiment harnesses construct all mutable state —
// builders, machines — inside the cell).
type Func[S, R any] func(ctx context.Context, spec S) (R, error)

// PanicError wraps a panic recovered from a cell so one bad
// configuration cannot kill a whole figure.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the stack captured at the recovery point.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: cell panicked: %v\n%s", e.Value, e.Stack)
}

// Workers resolves a worker-count setting: n if positive, otherwise
// GOMAXPROCS (the default for every -workers flag).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn over every spec on at most Workers(workers) goroutines and
// returns the results in submission order. On failure it returns the
// first error in submission order (preferring cell errors over
// cancellation; see the package comment).
func Map[S, R any](ctx context.Context, workers int, specs []S, fn Func[S, R]) ([]R, error) {
	n := len(specs)
	out := make([]R, n)
	errs := make([]error, n)

	w := Workers(workers)
	if w > n {
		w = n
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for range w {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i], errs[i] = runCell(ctx, specs[i], fn)
			}
		}()
	}
	next := 0
feed:
	for ; next < n; next++ {
		select {
		case idx <- next:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	for i := next; i < n; i++ {
		errs[i] = ctx.Err()
	}

	var ctxErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if ctxErr == nil {
				ctxErr = err
			}
			continue
		}
		return nil, err
	}
	if ctxErr != nil {
		return nil, ctxErr
	}
	return out, nil
}

// runCell executes one cell with panic recovery and a cancellation
// check before starting.
func runCell[S, R any](ctx context.Context, spec S, fn Func[S, R]) (r R, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Value: p, Stack: debug.Stack()}
		}
	}()
	if err := ctx.Err(); err != nil {
		return r, err
	}
	return fn(ctx, spec)
}
