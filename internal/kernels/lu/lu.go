// Package lu implements the paper's tiled LU-decomposition microkernel
// (§5.1(ii)): a right-looking factorisation over a blocked matrix whose
// steps decompose into three dependence-ordered computation phases —
// diagonal-tile factorisation, panel updates, and trailing-submatrix
// updates. The paper evaluates three modes: serial, coarse-grained work
// partitioning with inter-phase barriers (tlp-coarse), and pure
// speculative precomputation (tlp-pfetch) where a helper thread fills the
// cache with the next tile to be factorised.
//
// Per Table 1, the LU mix spreads its heavy ALU traffic (≈32% normalised)
// across both double-speed ALUs (plain adds, unlike MM's ALU0-bound
// logical masks), with ≈40% loads and ≈9% each of FP add/mul and stores.
// The LU prefetcher is NOT lightweight: its non-blocked addressing forces
// a full loop nest of integer address arithmetic per prefetched tile, so
// its dynamic µop count approaches the worker's — the paper measures
// 3.26×10⁹ vs 3.21×10⁹ — which is what destroys the SPR version's
// performance despite a ≈98% reduction in the worker's L2 misses.
package lu

import (
	"fmt"

	"smtexplore/internal/isa"
	"smtexplore/internal/kernels"
	"smtexplore/internal/layout"
	"smtexplore/internal/syncprim"
	"smtexplore/internal/trace"
)

// Static load sites.
const (
	TagLoadA isa.Tag = kernels.TagBaseLU + iota
	TagLoadB
	TagLoadDest
	TagPrefetch
)

// Config parameterises the kernel.
type Config struct {
	// N is the matrix dimension (power of two).
	N int
	// Tile is the tile dimension (power of two dividing N).
	Tile int
	// SpanTasks is the precomputation span in tile-update tasks.
	SpanTasks int
	// AddrUopsPerIter is the integer address-arithmetic cost per inner
	// iteration of the precomputation thread (the paper's LU prefetcher
	// pays heavily here).
	AddrUopsPerIter int
	// PrefetchWait selects the prefetcher's barrier wait flavour.
	PrefetchWait syncprim.WaitKind
	// WaitPlan optionally overrides the wait flavour per barrier cell in
	// the coarse scheme — the paper's selective halting, built from a
	// profiling run's Machine.WaitProfile via syncprim.PlanFromProfile.
	WaitPlan syncprim.Plan
	// Base is the address-space base.
	Base uint64
}

// DefaultConfig returns the standard configuration for dimension n.
func DefaultConfig(n int) Config {
	return Config{
		N:               n,
		Tile:            16,
		SpanTasks:       2,
		AddrUopsPerIter: 8,
		PrefetchWait:    syncprim.SpinPause,
		Base:            0x0400_0000,
	}
}

// Kernel builds LU programs for every mode.
type Kernel struct {
	cfg   Config
	a     *layout.Blocked
	cells syncprim.CellAlloc

	wkStart   syncprim.Flag
	pfDone    syncprim.Flag
	phaseBars [3]*syncprim.Barrier // one barrier per computation phase
}

// New validates cfg and lays out the matrix.
func New(cfg Config) (*Kernel, error) {
	if cfg.Tile <= 0 || cfg.N <= 0 || cfg.N%cfg.Tile != 0 {
		return nil, fmt.Errorf("lu: tile %d does not tile N %d", cfg.Tile, cfg.N)
	}
	if cfg.SpanTasks <= 0 {
		return nil, fmt.Errorf("lu: span %d not positive", cfg.SpanTasks)
	}
	if cfg.AddrUopsPerIter < 0 {
		return nil, fmt.Errorf("lu: address µops %d negative", cfg.AddrUopsPerIter)
	}
	ar := layout.NewArena(cfg.Base)
	size := uint64(cfg.N) * uint64(cfg.N) * layout.ElemSize
	k := &Kernel{cfg: cfg}
	var err error
	if k.a, err = layout.NewBlocked(ar.Alloc(size), cfg.N, cfg.Tile); err != nil {
		return nil, fmt.Errorf("lu: %w", err)
	}
	k.wkStart = syncprim.NewFlag(&k.cells)
	k.pfDone = syncprim.NewFlag(&k.cells)
	for i := range k.phaseBars {
		k.phaseBars[i] = syncprim.NewBarrier(&k.cells)
	}
	return k, nil
}

// Name returns the kernel name.
func (k *Kernel) Name() string { return "lu" }

// Modes lists the modes the paper evaluates for LU (no hybrid scheme: it
// would need a finer-grained partitioning strategy, §5.1(ii)).
func (k *Kernel) Modes() []kernels.Mode {
	return []kernels.Mode{kernels.Serial, kernels.TLPCoarse, kernels.TLPPfetch}
}

// task is one unit of tile work in the factorisation.
type task struct {
	kind kindT
	// dest, plus the source tiles of an update (tile coordinates).
	di, dj int
	ai, aj int
	bi, bj int
	step   int // factorisation step k
	phase  int // 1, 2 or 3
}

type kindT uint8

const (
	diagTask  kindT = iota // factor the diagonal tile
	panelTask              // triangular-solve a panel tile
	trailTask              // trailing-submatrix update
)

// tasks enumerates the full factorisation in serial order.
func (k *Kernel) tasks() []task {
	tn := k.cfg.N / k.cfg.Tile
	var out []task
	for s := 0; s < tn; s++ {
		out = append(out, task{kind: diagTask, di: s, dj: s, step: s, phase: 1})
		for j := s + 1; j < tn; j++ {
			out = append(out, task{kind: panelTask, di: s, dj: j, ai: s, aj: s, bi: s, bj: j, step: s, phase: 2})
		}
		for i := s + 1; i < tn; i++ {
			out = append(out, task{kind: panelTask, di: i, dj: s, ai: i, aj: s, bi: s, bj: s, step: s, phase: 2})
		}
		for i := s + 1; i < tn; i++ {
			for j := s + 1; j < tn; j++ {
				out = append(out, task{kind: trailTask, di: i, dj: j, ai: i, aj: s, bi: s, bj: j, step: s, phase: 3})
			}
		}
	}
	return out
}

// emitUpdateElem emits one inner element update with the Table 1 LU mix:
// three integer address µops (spread over both ALUs), four loads, fmul,
// fsub, store, and loop overhead every fourth element.
func (k *Kernel) emitUpdateElem(e *trace.Emitter, t task, gi, gk, gj int, seq *uint64) {
	s := *seq
	*seq = s + 1
	r := int(s)
	dReg := isa.F(r & 7)
	tReg := isa.F(8 + r%6)
	aReg := isa.F(14 + (r & 3))
	bReg := isa.F(18 + (r & 3))

	e.ALU(isa.IAdd, isa.R(r&3), isa.R(28), isa.R(29))
	e.ALU(isa.IAdd, isa.R(4+(r&3)), isa.R(28), isa.R(29))
	e.ALU(isa.ILogic, isa.R(8+(r&1)), isa.R(8+(r&1)), isa.R(30))
	e.TaggedLoad(aReg, k.a.Addr(gi, gk), TagLoadA)
	e.TaggedLoad(bReg, k.a.Addr(gk, gj), TagLoadB)
	e.TaggedLoad(dReg, k.a.Addr(gi, gj), TagLoadDest)
	// The compiled binary's reloads of spilled operands (Table 1 shows
	// LU at ≈4.5 loads per multiply-accumulate).
	e.TaggedLoad(aReg, k.a.Addr(gi, gk), TagLoadA)
	if r&1 == 0 {
		e.TaggedLoad(bReg, k.a.Addr(gk, gj), TagLoadB)
	}
	e.ALU(isa.FMul, tReg, aReg, bReg)
	e.ALU(isa.FSub, dReg, dReg, tReg)
	e.Store(dReg, k.a.Addr(gi, gj))
	if r&3 == 3 {
		e.ALU(isa.IAdd, isa.R(12), isa.R(28), isa.R(29))
		e.Branch()
	}
}

// emitTask emits the compute of one tile task. For partitioned execution,
// own selects whether this thread owns the task.
func (k *Kernel) emitTask(e *trace.Emitter, t task, seq *uint64) {
	tile := k.cfg.Tile
	switch t.kind {
	case diagTask:
		// In-tile factorisation: per pivot a reciprocal (fdiv) and rank-1
		// update of the remaining sub-tile.
		base := t.di * tile
		for kk := 0; kk < tile; kk++ {
			e.ALU(isa.FDiv, isa.F(22), isa.F(23), isa.F(24))
			for ii := kk + 1; ii < tile; ii++ {
				for jj := kk + 1; jj < tile; jj++ {
					k.emitUpdateElem(e, t, base+ii, base+kk, base+jj, seq)
				}
			}
		}
	default:
		// Panel and trailing updates share the dest -= a·b loop nest:
		// dest(di,dj) -= A(ai,aj)·A(bi,bj), with the contraction index
		// running over A(ai,·)'s columns == A(·,bj)'s rows (aj == bi).
		for li := 0; li < tile; li++ {
			for lk := 0; lk < tile; lk++ {
				for lj := 0; lj < tile; lj++ {
					k.emitUpdateElem(e, t,
						t.di*tile+li, t.aj*tile+lk, t.dj*tile+lj, seq)
				}
			}
		}
	}
}

// emitPrefetchTask emits the precomputation slice for one tile task: the
// full T³ loop nest of integer address arithmetic (the non-blocked
// indexing the paper blames for the prefetcher's µop bloat) with a tagged
// line load every fourth iteration, cycling over the three tiles the
// worker will touch.
func (k *Kernel) emitPrefetchTask(e *trace.Emitter, t task, seq *uint64) {
	if t.kind == diagTask {
		return // the hot diagonal tile is already cache-resident
	}
	tile := k.cfg.Tile
	lines := k.tileLines(t)
	iters := tile * tile * tile
	for i := 0; i < iters; i++ {
		s := *seq
		*seq = s + 1
		r := int(s)
		for u := 0; u < k.cfg.AddrUopsPerIter; u++ {
			switch u % 4 {
			case 0, 1:
				e.ALU(isa.IAdd, isa.R(r&7), isa.R(28), isa.R(29))
			case 2:
				e.ALU(isa.IMul, isa.R(8+(r&3)), isa.R(28), isa.R(29))
			default:
				e.ALU(isa.ILogic, isa.R(12+(r&1)), isa.R(12+(r&1)), isa.R(30))
			}
		}
		if r&3 == 0 && len(lines) > 0 {
			e.TaggedLoad(isa.F(25+(r&3)), lines[(i/4)%len(lines)], TagPrefetch)
		}
	}
}

// tileLines returns the line addresses of the task's three tiles.
func (k *Kernel) tileLines(t task) []uint64 {
	const lineBytes = 64
	var out []uint64
	for _, tc := range [][2]int{{t.di, t.dj}, {t.ai, t.aj}, {t.bi, t.bj}} {
		base := k.a.TileBase(tc[0], tc[1])
		for off := uint64(0); off < k.a.TileBytes(); off += lineBytes {
			out = append(out, base+off)
		}
	}
	return out
}

// Programs builds the program pair for mode.
func (k *Kernel) Programs(mode kernels.Mode) ([2]trace.Program, error) {
	switch mode {
	case kernels.Serial:
		return [2]trace.Program{k.serialProgram(), nil}, nil
	case kernels.TLPCoarse:
		return [2]trace.Program{k.coarseProgram(0), k.coarseProgram(1)}, nil
	case kernels.TLPPfetch:
		return [2]trace.Program{k.spanWorker(), k.prefetcher()}, nil
	default:
		return [2]trace.Program{}, kernels.ErrUnsupportedMode{Kernel: k.Name(), Mode: mode}
	}
}

func (k *Kernel) serialProgram() trace.Program {
	return trace.Generate(func(e *trace.Emitter) {
		var seq uint64
		for _, t := range k.tasks() {
			if e.Stopped() {
				return
			}
			k.emitTask(e, t, &seq)
		}
	})
}

// coarseProgram runs the dependence-ordered three-phase scheme: the
// diagonal factorisation runs on thread 0, panel and trailing tiles split
// between the threads by parity, with a barrier after every phase.
func (k *Kernel) coarseProgram(tid int) trace.Program {
	tn := k.cfg.N / k.cfg.Tile
	return trace.Generate(func(e *trace.Emitter) {
		var bars [3]*syncprim.Participant
		for i := range bars {
			bars[i] = k.phaseBars[i].Join(tid, syncprim.SpinPause)
		}
		var seq uint64
		tasks := k.tasks()
		i := 0
		for s := 0; s < tn; s++ {
			for ph := 1; ph <= 3; ph++ {
				share := 0
				for ; i < len(tasks) && tasks[i].step == s && tasks[i].phase == ph; i++ {
					t := tasks[i]
					owned := false
					switch t.kind {
					case diagTask:
						owned = tid == 0
					default:
						owned = share&1 == tid
						share++
					}
					if owned {
						k.emitTask(e, t, &seq)
					}
					if e.Stopped() {
						return
					}
				}
				bars[ph-1].ArrivePlanned(e, k.cfg.WaitPlan)
			}
		}
	})
}

// PhaseWaitCells returns, per computation phase, the cell that
// participant tid waits on at that phase's barrier — the keys of a
// selective-halting plan.
func (k *Kernel) PhaseWaitCells(tid int) [3]isa.Cell {
	var out [3]isa.Cell
	for i := range out {
		out[i] = k.phaseBars[i].Join(tid, syncprim.SpinPause).WaitCell()
	}
	return out
}

// spans chunks the task list into precomputation spans.
func (k *Kernel) spans() [][]task {
	all := k.tasks()
	var out [][]task
	for len(all) > 0 {
		n := k.cfg.SpanTasks
		if n > len(all) {
			n = len(all)
		}
		out = append(out, all[:n])
		all = all[n:]
	}
	return out
}

func (k *Kernel) spanWorker() trace.Program {
	return trace.Generate(func(e *trace.Emitter) {
		var seq uint64
		for σ, span := range k.spans() {
			if e.Stopped() {
				return
			}
			k.wkStart.Set(e, int64(σ)+1)
			k.pfDone.Wait(e, syncprim.SpinPause, isa.CmpGE, int64(σ)+1)
			for _, t := range span {
				k.emitTask(e, t, &seq)
			}
		}
	})
}

func (k *Kernel) prefetcher() trace.Program {
	return trace.Generate(func(e *trace.Emitter) {
		var seq uint64
		for σ, span := range k.spans() {
			if e.Stopped() {
				return
			}
			if σ > 0 {
				k.wkStart.Wait(e, k.cfg.PrefetchWait, isa.CmpGE, int64(σ))
			}
			for _, t := range span {
				k.emitPrefetchTask(e, t, &seq)
			}
			k.pfDone.Set(e, int64(σ)+1)
		}
	})
}

// TaskCount exposes the task-list length for tests.
func (k *Kernel) TaskCount() int { return len(k.tasks()) }
