package lu

import (
	"math"
	"testing"

	"smtexplore/internal/isa"
	"smtexplore/internal/kernels"
	"smtexplore/internal/mem"
	"smtexplore/internal/perfmon"
	"smtexplore/internal/smt"
	"smtexplore/internal/syncprim"
	"smtexplore/internal/trace"
)

func testKernel(t *testing.T, n int) *Kernel {
	t.Helper()
	k, err := New(DefaultConfig(n))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func scaledConfig() smt.Config {
	cfg := smt.DefaultConfig()
	cfg.Mem.L2 = mem.CacheConfig{Size: 32 << 10, LineSize: 64, Assoc: 8, Latency: 18}
	return cfg
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{N: 20, Tile: 8, SpanTasks: 2}); err == nil {
		t.Error("non-tiling config accepted")
	}
	if _, err := New(Config{N: 16, Tile: 8, SpanTasks: 0}); err == nil {
		t.Error("zero span accepted")
	}
	if _, err := New(Config{N: 16, Tile: 8, SpanTasks: 1, AddrUopsPerIter: -1}); err == nil {
		t.Error("negative addr µops accepted")
	}
}

func TestTaskEnumeration(t *testing.T) {
	k := testKernel(t, 64) // TN = 4
	// Per step s: 1 diag + 2(TN-s-1) panel + (TN-s-1)^2 trailing.
	want := 0
	for s := 0; s < 4; s++ {
		r := 4 - s - 1
		want += 1 + 2*r + r*r
	}
	if got := k.TaskCount(); got != want {
		t.Fatalf("task count = %d, want %d", got, want)
	}
}

func TestSerialMixMatchesTable1(t *testing.T) {
	k := testKernel(t, 32)
	progs, err := k.Programs(kernels.Serial)
	if err != nil {
		t.Fatal(err)
	}
	mix := trace.Mix(progs[0])
	var total uint64
	for _, n := range mix {
		total += n
	}
	share := func(ops ...isa.Op) float64 {
		var n uint64
		for _, op := range ops {
			n += mix[op]
		}
		return 100 * float64(n) / float64(total)
	}
	// Table 1, LU serial column normalised to 100%: ALUs ≈32%, FP_ADD
	// ≈9.2%, FP_MUL ≈9.2%, LOAD ≈40.7%, STORE ≈9.3%.
	checks := []struct {
		name string
		got  float64
		want float64
		tol  float64
	}{
		{"ALUs", share(isa.IAdd, isa.ILogic, isa.Branch), 32, 4},
		{"FP_ADD", share(isa.FSub, isa.FAdd), 9.2, 2},
		{"FP_MUL", share(isa.FMul), 9.2, 2},
		{"LOAD", share(isa.Load), 40.7, 5},
		{"STORE", share(isa.Store), 9.3, 2},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > c.tol {
			t.Errorf("%s share = %.2f%%, want %.1f±%.0f", c.name, c.got, c.want, c.tol)
		}
	}
	// LU contains the factorisation's divides.
	if mix[isa.FDiv] == 0 {
		t.Error("no fdiv µops in LU factorisation")
	}
}

func TestCoarsePartitionsBalance(t *testing.T) {
	k := testKernel(t, 64)
	progs, err := k.Programs(kernels.TLPCoarse)
	if err != nil {
		t.Fatal(err)
	}
	m0, m1 := trace.Mix(progs[0]), trace.Mix(progs[1])
	sp, _ := k.Programs(kernels.Serial)
	serialFP := trace.Mix(sp[0])[isa.FSub]
	if got := m0[isa.FSub] + m1[isa.FSub]; got != serialFP {
		t.Errorf("partitioned fsub total = %d, want %d", got, serialFP)
	}
	// Thread 0 additionally owns the diagonal factorisation, so a modest
	// imbalance is expected; it must stay under the diag task volume.
	diff := float64(m0[isa.FSub]) - float64(m1[isa.FSub])
	if math.Abs(diff) > 0.25*float64(serialFP) {
		t.Errorf("partition imbalance too large: %v vs %v", m0[isa.FSub], m1[isa.FSub])
	}
}

func TestPrefetcherUopVolumeNearWorker(t *testing.T) {
	// The paper's LU prefetcher executes about as many instructions as
	// the worker (3.26e9 vs 3.21e9). Our synthesis lands in the same
	// regime: within 2x of the worker.
	k := testKernel(t, 32)
	progs, err := k.Programs(kernels.TLPPfetch)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.Count(progs[0])
	p := trace.Count(progs[1])
	ratio := float64(p) / float64(w)
	if ratio < 0.5 || ratio > 1.5 {
		t.Errorf("prefetcher/worker µop ratio = %.2f (%d vs %d), want ≈1 (heavy addressing)", ratio, p, w)
	}
}

func TestAllModesRunToCompletion(t *testing.T) {
	k := testKernel(t, 32)
	for _, mode := range k.Modes() {
		progs, err := k.Programs(mode)
		if err != nil {
			t.Fatal(err)
		}
		m := smt.New(scaledConfig())
		m.LoadProgram(kernels.WorkerTid, progs[0])
		if progs[1] != nil {
			m.LoadProgram(kernels.HelperTid, progs[1])
		}
		res, err := m.Run(500_000_000)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !res.Completed {
			t.Fatalf("%v did not complete", mode)
		}
		if m.Counters().Get(perfmon.InstrRetired, 0) == 0 {
			t.Fatalf("%v: worker retired nothing", mode)
		}
	}
}

func TestPrefetchReducesWorkerMisses(t *testing.T) {
	// Paper: the LU worker's L2 misses drop ≈98% with a prefetcher.
	run := func(mode kernels.Mode) *smt.Machine {
		k := testKernel(t, 64)
		progs, err := k.Programs(mode)
		if err != nil {
			t.Fatal(err)
		}
		m := smt.New(scaledConfig())
		m.LoadProgram(kernels.WorkerTid, progs[0])
		if progs[1] != nil {
			m.LoadProgram(kernels.HelperTid, progs[1])
		}
		if res, err := m.Run(2_000_000_000); err != nil || !res.Completed {
			t.Fatalf("%v: err=%v completed=%v", mode, err, res.Completed)
		}
		return m
	}
	serial := run(kernels.Serial)
	pfetch := run(kernels.TLPPfetch)
	sMiss := serial.Hierarchy().Thread(0).L2ReadMisses
	wMiss := pfetch.Hierarchy().Thread(0).L2ReadMisses
	if sMiss == 0 {
		t.Fatal("serial produced no misses")
	}
	if reduction := 1 - float64(wMiss)/float64(sMiss); reduction < 0.5 {
		t.Errorf("worker miss reduction = %.0f%% (%d → %d), want substantial (paper ≈98%%)",
			reduction*100, sMiss, wMiss)
	}
	// And the SPR version must be slower despite the locality win (the
	// paper's 1.61–1.96x slowdown from µop inflation).
	if pfetch.Cycle() <= serial.Cycle() {
		t.Errorf("lu tlp-pfetch (%d cycles) not slower than serial (%d): µop bloat should dominate",
			pfetch.Cycle(), serial.Cycle())
	}
}

func TestUnsupportedModes(t *testing.T) {
	k := testKernel(t, 16)
	for _, mode := range []kernels.Mode{kernels.TLPFine, kernels.TLPPfetchWork} {
		if _, err := k.Programs(mode); err == nil {
			t.Errorf("mode %v unexpectedly supported", mode)
		}
	}
}

func TestPhaseWaitCellsDistinct(t *testing.T) {
	k := testKernel(t, 32)
	c0 := k.PhaseWaitCells(0)
	c1 := k.PhaseWaitCells(1)
	seen := map[isa.Cell]bool{}
	for i := 0; i < 3; i++ {
		if c0[i] == c1[i] {
			t.Errorf("phase %d: both participants wait on the same cell", i)
		}
		for _, c := range []isa.Cell{c0[i], c1[i]} {
			if seen[c] {
				t.Errorf("cell %d reused across phases", c)
			}
			seen[c] = true
		}
	}
}

func TestWaitPlanChangesCoarseWaits(t *testing.T) {
	cfg := DefaultConfig(32)
	k1 := testKernel(t, 32)
	cfg.WaitPlan = syncprim.Plan{
		k1.PhaseWaitCells(1)[0]: syncprim.HaltWait, // phase-1 barrier for thread 1
	}
	k2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	progs, err := k2.Programs(kernels.TLPCoarse)
	if err != nil {
		t.Fatal(err)
	}
	halts := 0
	for _, in := range trace.Collect(progs[1]) {
		if in.Op == isa.HaltWait {
			halts++
		}
	}
	if halts == 0 {
		t.Fatal("wait plan did not produce halt waits on thread 1")
	}
	// Thread 0 keeps spinning everywhere (its cells are unplanned).
	for _, in := range trace.Collect(progs[0]) {
		if in.Op == isa.HaltWait {
			t.Fatal("thread 0 unexpectedly halts")
		}
	}
}
