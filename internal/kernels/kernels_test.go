package kernels

import (
	"strings"
	"testing"
)

func TestModeNames(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range AllModes() {
		name := m.String()
		if name == "" || strings.HasPrefix(name, "mode(") {
			t.Fatalf("mode %d unnamed", m)
		}
		if seen[name] {
			t.Fatalf("duplicate mode name %q", name)
		}
		seen[name] = true
		if !m.Valid() {
			t.Fatalf("mode %v invalid", m)
		}
	}
	if len(AllModes()) != NumModes {
		t.Fatalf("AllModes returned %d, want %d", len(AllModes()), NumModes)
	}
	if Mode(99).Valid() {
		t.Error("out-of-range mode valid")
	}
	if got := Mode(99).String(); !strings.HasPrefix(got, "mode(") {
		t.Errorf("out-of-range mode name %q", got)
	}
}

func TestPaperModeNames(t *testing.T) {
	// The names are the paper's labels; the harness output depends on them.
	want := map[Mode]string{
		Serial:         "serial",
		TLPFine:        "tlp-fine",
		TLPCoarse:      "tlp-coarse",
		TLPPfetch:      "tlp-pfetch",
		TLPPfetchWork:  "tlp-pfetch+work",
		SerialPrefetch: "serial+pf",
	}
	for m, name := range want {
		if m.String() != name {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), name)
		}
	}
}

func TestErrUnsupportedMode(t *testing.T) {
	err := ErrUnsupportedMode{Kernel: "lu", Mode: TLPFine}
	if !strings.Contains(err.Error(), "lu") || !strings.Contains(err.Error(), "tlp-fine") {
		t.Errorf("error message uninformative: %q", err.Error())
	}
}

func TestTidRoles(t *testing.T) {
	if WorkerTid == HelperTid {
		t.Error("worker and helper share a context")
	}
	if WorkerTid != 0 || HelperTid != 1 {
		t.Error("paper binding: worker on logical CPU 0, helper on 1")
	}
}
