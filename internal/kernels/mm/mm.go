// Package mm implements the paper's Matrix Multiplication microkernel:
// tiled C = A·B over blocked array layouts with binary-mask fast indexing,
// in the five execution modes of §5.1(i) — serial, fine- and coarse-grained
// work partitioning (TLP), pure speculative precomputation (tlp-pfetch),
// and the hybrid prefetch+work scheme.
//
// The generated per-element instruction pattern reproduces the Pin-profiled
// dynamic mix of Table 1 (MM column): ≈27% ALU µops — most of them the
// logical mask operations of the blocked layout, which execute only on
// ALU0 — ≈12% FP_ADD, ≈12% FP_MUL, ≈37% LOAD and ≈12% STORE. The compiled
// binary the paper profiles reloads all three operands per update, which is
// why the kernel emits three loads per multiply-accumulate.
package mm

import (
	"fmt"

	"smtexplore/internal/isa"
	"smtexplore/internal/kernels"
	"smtexplore/internal/layout"
	"smtexplore/internal/syncprim"
	"smtexplore/internal/trace"
)

// Static load sites, for delinquent-load profiling.
const (
	TagLoadA isa.Tag = kernels.TagBaseMM + iota
	TagLoadB
	TagLoadC
	TagPrefetch
)

// Config parameterises the kernel.
type Config struct {
	// N is the matrix dimension (power of two).
	N int
	// Tile is the tile dimension (power of two dividing N); the paper
	// chooses tiles that fit in L1.
	Tile int
	// SpanSteps is the precomputation-span length in (ti,tj,tk) tile
	// steps: the prefetcher runs exactly one span ahead of the worker,
	// regulated by the §3.2 barrier scheme.
	SpanSteps int
	// PrefetchWait selects how the prefetcher waits at span barriers
	// (spin+pause by default; halt for the selective-halting variant).
	PrefetchWait syncprim.WaitKind
	// Base is the address-space base for the kernel's arrays.
	Base uint64
}

// DefaultConfig returns the standard configuration for dimension n.
func DefaultConfig(n int) Config {
	return Config{
		N:            n,
		Tile:         16,
		SpanSteps:    2,
		PrefetchWait: syncprim.SpinPause,
		Base:         0x0100_0000,
	}
}

// Kernel builds MM programs for every mode.
type Kernel struct {
	cfg     Config
	a, b, c *layout.Blocked
	cells   syncprim.CellAlloc

	wkStart syncprim.Flag // worker's span progress
	pfDone  syncprim.Flag // prefetcher's span progress
	endBar  *syncprim.Barrier
}

// New validates cfg and lays out the matrices.
func New(cfg Config) (*Kernel, error) {
	if cfg.Tile <= 0 || cfg.N <= 0 || cfg.N%cfg.Tile != 0 {
		return nil, fmt.Errorf("mm: tile %d does not tile N %d", cfg.Tile, cfg.N)
	}
	if cfg.SpanSteps <= 0 {
		return nil, fmt.Errorf("mm: span %d not positive", cfg.SpanSteps)
	}
	ar := layout.NewArena(cfg.Base)
	size := uint64(cfg.N) * uint64(cfg.N) * layout.ElemSize
	k := &Kernel{cfg: cfg}
	var err error
	if k.a, err = layout.NewBlocked(ar.Alloc(size), cfg.N, cfg.Tile); err != nil {
		return nil, fmt.Errorf("mm: %w", err)
	}
	if k.b, err = layout.NewBlocked(ar.Alloc(size), cfg.N, cfg.Tile); err != nil {
		return nil, fmt.Errorf("mm: %w", err)
	}
	if k.c, err = layout.NewBlocked(ar.Alloc(size), cfg.N, cfg.Tile); err != nil {
		return nil, fmt.Errorf("mm: %w", err)
	}
	k.wkStart = syncprim.NewFlag(&k.cells)
	k.pfDone = syncprim.NewFlag(&k.cells)
	k.endBar = syncprim.NewBarrier(&k.cells)
	return k, nil
}

// Name returns the kernel name.
func (k *Kernel) Name() string { return "mm" }

// Modes lists the modes the paper evaluates for MM.
func (k *Kernel) Modes() []kernels.Mode {
	return []kernels.Mode{
		kernels.Serial, kernels.TLPFine, kernels.TLPCoarse,
		kernels.TLPPfetch, kernels.TLPPfetchWork, kernels.SerialPrefetch,
	}
}

// step is one (ti, tj, tk) tile triple of the serial iteration order.
type step struct{ ti, tj, tk int }

func (k *Kernel) steps() []step {
	tn := k.cfg.N / k.cfg.Tile
	out := make([]step, 0, tn*tn*tn)
	for ti := 0; ti < tn; ti++ {
		for tj := 0; tj < tn; tj++ {
			for tk := 0; tk < tn; tk++ {
				out = append(out, step{ti, tj, tk})
			}
		}
	}
	return out
}

// emitElem emits one multiply-accumulate element update
// C[gi,gj] += A[gi,gk]·B[gk,gj], with the Table 1 MM mix: two logical
// mask µops for the blocked-layout index, three loads, fmul, fadd, store,
// and loop overhead (iadd+branch) every eighth element.
func (k *Kernel) emitElem(e *trace.Emitter, gi, gk, gj int, seq *uint64) {
	s := *seq
	*seq = s + 1
	// Deep register rotation models the paper's aggressively unrolled
	// serial code: enough independent chains that the 7-cycle fmul and
	// 5-cycle fadd latencies never bind, leaving the load port as the
	// kernel's structural bottleneck.
	idxReg := isa.R(int(s) & 3)
	cReg := isa.F(int(s) & 7)        // accumulator rotation F0..F7
	tReg := isa.F(8 + (int(s) % 6))  // product rotation F8..F13
	aReg := isa.F(14 + (int(s) & 3)) // F14..F17
	bReg := isa.F(18 + (int(s) & 3)) // F18..F21

	e.ALU(isa.ILogic, idxReg, idxReg, isa.R(30))
	e.ALU(isa.ILogic, idxReg, idxReg, isa.R(30))
	e.TaggedLoad(aReg, k.a.Addr(gi, gk), TagLoadA)
	e.TaggedLoad(bReg, k.b.Addr(gk, gj), TagLoadB)
	e.TaggedLoad(cReg, k.c.Addr(gi, gj), TagLoadC)
	e.ALU(isa.FMul, tReg, aReg, bReg)
	e.ALU(isa.FAdd, cReg, cReg, tReg)
	e.Store(cReg, k.c.Addr(gi, gj))
	if s&7 == 7 {
		e.ALU(isa.IAdd, isa.R(4+(int(s>>3)&1)), isa.R(28), isa.R(29))
		e.Branch()
	}
}

// emitStep emits the full tile-step compute. filter selects which
// intra-tile elements this thread computes (nil = all): it receives the
// running element index within the tile pair.
func (k *Kernel) emitStep(e *trace.Emitter, st step, seq *uint64, filter func(elem int) bool) {
	t := k.cfg.Tile
	elem := 0
	for li := 0; li < t; li++ {
		gi := st.ti*t + li
		for lk := 0; lk < t; lk++ {
			gk := st.tk*t + lk
			for lj := 0; lj < t; lj++ {
				gj := st.tj*t + lj
				if filter == nil || filter(elem) {
					k.emitElem(e, gi, gk, gj, seq)
				}
				elem++
			}
		}
	}
}

// emitPrefetchStep emits the helper-thread prefetch of the tiles the
// worker will consume in step st: one tagged load per cache line of the
// A and B tiles, with a mask µop every other line for the blocked-layout
// address arithmetic (the prefetcher is the distilled delinquent-load
// slice — everything else was eliminated).
func (k *Kernel) emitPrefetchStep(e *trace.Emitter, st step, seq *uint64) {
	const lineBytes = 64
	for n, base := range []uint64{
		k.a.TileBase(st.ti, st.tk),
		k.b.TileBase(st.tk, st.tj),
	} {
		tb := k.a.TileBytes()
		for off := uint64(0); off < tb; off += lineBytes {
			s := *seq
			*seq = s + 1
			if s&1 == 0 {
				e.ALU(isa.ILogic, isa.R(6+n), isa.R(6+n), isa.R(30))
			}
			e.TaggedLoad(isa.F(10+(int(s)&3)), base+off, TagPrefetch)
		}
	}
}

// Programs builds the program pair for mode. Index kernels.WorkerTid is
// the main/worker thread; kernels.HelperTid is the sibling (second worker
// or prefetcher) or nil for serial execution.
func (k *Kernel) Programs(mode kernels.Mode) ([2]trace.Program, error) {
	switch mode {
	case kernels.Serial:
		return [2]trace.Program{k.serialProgram(), nil}, nil
	case kernels.TLPFine:
		return [2]trace.Program{k.fineProgram(0), k.fineProgram(1)}, nil
	case kernels.TLPCoarse:
		return [2]trace.Program{k.coarseProgram(0), k.coarseProgram(1)}, nil
	case kernels.TLPPfetch:
		return [2]trace.Program{k.spanWorker(nil, false), k.prefetcher()}, nil
	case kernels.TLPPfetchWork:
		fine := func(tid int) func(int) bool {
			return func(elem int) bool { return elem&1 == tid }
		}
		return [2]trace.Program{
			k.spanWorker(fine(0), true),
			k.hybridHelper(fine(1)),
		}, nil
	case kernels.SerialPrefetch:
		return [2]trace.Program{k.serialPrefetchProgram(), nil}, nil
	default:
		return [2]trace.Program{}, kernels.ErrUnsupportedMode{Kernel: k.Name(), Mode: mode}
	}
}

func (k *Kernel) serialProgram() trace.Program {
	return trace.Generate(func(e *trace.Emitter) {
		var seq uint64
		for _, st := range k.steps() {
			if e.Stopped() {
				return
			}
			k.emitStep(e, st, &seq, nil)
		}
	})
}

// fineProgram partitions consecutive intra-tile elements circularly
// between the threads (§5.1: "consecutive elements within a single tile of
// C are assigned to different threads in a circular fashion").
func (k *Kernel) fineProgram(tid int) trace.Program {
	return trace.Generate(func(e *trace.Emitter) {
		var seq uint64
		for _, st := range k.steps() {
			if e.Stopped() {
				return
			}
			k.emitStep(e, st, &seq, func(elem int) bool { return elem&1 == tid })
		}
		k.endBar.Join(tid, syncprim.SpinPause).Arrive(e)
	})
}

// coarseProgram assigns consecutive C tiles to threads circularly; each
// thread works in its own cache area.
func (k *Kernel) coarseProgram(tid int) trace.Program {
	tn := k.cfg.N / k.cfg.Tile
	return trace.Generate(func(e *trace.Emitter) {
		var seq uint64
		for _, st := range k.steps() {
			if e.Stopped() {
				return
			}
			if (st.ti*tn+st.tj)&1 != tid {
				continue
			}
			k.emitStep(e, st, &seq, nil)
		}
		k.endBar.Join(tid, syncprim.SpinPause).Arrive(e)
	})
}

// spans groups the serial step sequence into precomputation spans.
func (k *Kernel) spans() [][]step {
	all := k.steps()
	var out [][]step
	for len(all) > 0 {
		n := k.cfg.SpanSteps
		if n > len(all) {
			n = len(all)
		}
		out = append(out, all[:n])
		all = all[n:]
	}
	return out
}

// spanWorker is the computation thread of the SPR schemes: before span σ
// it publishes its progress and waits (briefly, in the common case) until
// the prefetcher has covered span σ. In the hybrid scheme (spanBarrier)
// the fine-grained partitioning additionally requires a completion barrier
// after every span.
func (k *Kernel) spanWorker(filter func(int) bool, spanBarrier bool) trace.Program {
	return trace.Generate(func(e *trace.Emitter) {
		bar := k.endBar.Join(0, syncprim.SpinPause)
		var seq uint64
		for σ, span := range k.spans() {
			if e.Stopped() {
				return
			}
			k.wkStart.Set(e, int64(σ)+1)
			k.pfDone.Wait(e, syncprim.SpinPause, isa.CmpGE, int64(σ)+1)
			for _, st := range span {
				k.emitStep(e, st, &seq, filter)
			}
			if spanBarrier {
				bar.Arrive(e)
			}
		}
	})
}

// prefetcher is the pure-SPR helper: it prefetches span σ's tiles after
// the worker has started span σ-1, staying exactly one span ahead.
func (k *Kernel) prefetcher() trace.Program {
	return trace.Generate(func(e *trace.Emitter) {
		var seq uint64
		for σ, span := range k.spans() {
			if e.Stopped() {
				return
			}
			if σ > 0 {
				k.wkStart.Wait(e, k.cfg.PrefetchWait, isa.CmpGE, int64(σ))
			}
			for _, st := range span {
				k.emitPrefetchStep(e, st, &seq)
			}
			k.pfDone.Set(e, int64(σ)+1)
		}
	})
}

// hybridHelper both prefetches the upcoming span and computes its share of
// the current one (tlp-pfetch+work): prefetch of span σ+1 overlaps the
// worker's computation of span σ, and a completion barrier closes each
// span of the fine-grained partitioning.
func (k *Kernel) hybridHelper(filter func(int) bool) trace.Program {
	return trace.Generate(func(e *trace.Emitter) {
		bar := k.endBar.Join(1, syncprim.SpinPause)
		var seq uint64
		spans := k.spans()
		for σ, span := range spans {
			if e.Stopped() {
				return
			}
			if σ == 0 {
				for _, st := range span {
					k.emitPrefetchStep(e, st, &seq)
				}
				k.pfDone.Set(e, 1)
			}
			if σ+1 < len(spans) {
				k.wkStart.Wait(e, k.cfg.PrefetchWait, isa.CmpGE, int64(σ)+1)
				for _, st := range spans[σ+1] {
					k.emitPrefetchStep(e, st, &seq)
				}
				k.pfDone.Set(e, int64(σ)+2)
			}
			for _, st := range span {
				k.emitStep(e, st, &seq, filter)
			}
			bar.Arrive(e)
		}
	})
}

// tileLines returns the cache-line addresses of a step's A and B tiles.
func (k *Kernel) tileLines(st step) []uint64 {
	const lineBytes = 64
	var out []uint64
	for _, base := range []uint64{
		k.a.TileBase(st.ti, st.tk),
		k.b.TileBase(st.tk, st.tj),
	} {
		for off := uint64(0); off < k.a.TileBytes(); off += lineBytes {
			out = append(out, base+off)
		}
	}
	return out
}

// serialPrefetchProgram is the paper's conclusion made concrete: the
// serial worker with non-binding prefetch instructions for the next tile
// step interleaved into the element stream — SPR embodied in the working
// thread, no helper, no barriers, minimal extra µops.
func (k *Kernel) serialPrefetchProgram() trace.Program {
	steps := k.steps()
	t := k.cfg.Tile
	return trace.Generate(func(e *trace.Emitter) {
		var seq uint64
		for si, st := range steps {
			if e.Stopped() {
				return
			}
			var pf []uint64
			if si+1 < len(steps) {
				pf = k.tileLines(steps[si+1])
			}
			elem := 0
			for li := 0; li < t; li++ {
				gi := st.ti*t + li
				for lk := 0; lk < t; lk++ {
					gk := st.tk*t + lk
					for lj := 0; lj < t; lj++ {
						gj := st.tj*t + lj
						k.emitElem(e, gi, gk, gj, &seq)
						// One prefetch hint every eighth element covers
						// the next step's 64 lines well within its 4096
						// elements.
						if elem&7 == 0 && len(pf) > 0 {
							e.Emit(isa.Pf(pf[0], TagPrefetch))
							pf = pf[1:]
						}
						elem++
					}
				}
			}
		}
	})
}

// Steps and Spans expose iteration geometry for tests.
func (k *Kernel) StepCount() int { return len(k.steps()) }
func (k *Kernel) SpanCount() int { return len(k.spans()) }
