package mm

import (
	"math"
	"testing"

	"smtexplore/internal/isa"
	"smtexplore/internal/kernels"
	"smtexplore/internal/mem"
	"smtexplore/internal/perfmon"
	"smtexplore/internal/smt"
	"smtexplore/internal/trace"
)

func testKernel(t *testing.T, n int) *Kernel {
	t.Helper()
	k, err := New(DefaultConfig(n))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// scaledConfig is the kernel-experiment machine: caches shrunk so the
// scaled problem sizes oversubscribe L2 the way the paper's Class A /
// 1024..4096 inputs oversubscribed the Xeon's 512 KB.
func scaledConfig() smt.Config {
	cfg := smt.DefaultConfig()
	cfg.Mem.L2 = mem.CacheConfig{Size: 32 << 10, LineSize: 64, Assoc: 8, Latency: 18}
	return cfg
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{N: 20, Tile: 8, SpanSteps: 4}); err == nil {
		t.Error("non-tiling config accepted")
	}
	if _, err := New(Config{N: 16, Tile: 8, SpanSteps: 0}); err == nil {
		t.Error("zero span accepted")
	}
}

func TestSerialMixMatchesTable1(t *testing.T) {
	k := testKernel(t, 32)
	progs, err := k.Programs(kernels.Serial)
	if err != nil {
		t.Fatal(err)
	}
	mix := trace.Mix(progs[0])
	var total uint64
	for _, n := range mix {
		total += n
	}
	share := func(ops ...isa.Op) float64 {
		var n uint64
		for _, op := range ops {
			n += mix[op]
		}
		return 100 * float64(n) / float64(total)
	}
	// Table 1, MM serial column: ALUs 27.06, FP_ADD 11.70, FP_MUL 11.70,
	// LOAD 38.76, STORE 12.07 (±4 points tolerance for the synthesis).
	checks := []struct {
		name string
		got  float64
		want float64
		tol  float64
	}{
		{"ALUs", share(isa.ILogic, isa.IAdd, isa.ISub, isa.Branch), 27.06, 4},
		{"FP_ADD", share(isa.FAdd), 11.70, 2},
		{"FP_MUL", share(isa.FMul), 11.70, 2},
		{"LOAD", share(isa.Load), 38.76, 4},
		{"STORE", share(isa.Store), 12.07, 2},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > c.tol {
			t.Errorf("%s share = %.2f%%, want %.2f±%.0f", c.name, c.got, c.want, c.tol)
		}
	}
	// The logical-op (ALU0-only) share is the MM bottleneck: ≈25% per §5.3.
	if lg := share(isa.ILogic); math.Abs(lg-25) > 4 {
		t.Errorf("logical share = %.2f%%, want ≈25%%", lg)
	}
}

func TestSerialElementCount(t *testing.T) {
	k := testKernel(t, 32)
	progs, _ := k.Programs(kernels.Serial)
	mix := trace.Mix(progs[0])
	// One fadd per (i,k,j) triple: N^3.
	if want := uint64(32 * 32 * 32); mix[isa.FAdd] != want {
		t.Errorf("fadd count = %d, want %d", mix[isa.FAdd], want)
	}
}

func TestTLPPartitionsSplitWork(t *testing.T) {
	k := testKernel(t, 32)
	for _, mode := range []kernels.Mode{kernels.TLPFine, kernels.TLPCoarse} {
		progs, err := k.Programs(mode)
		if err != nil {
			t.Fatal(err)
		}
		m0, m1 := trace.Mix(progs[0]), trace.Mix(progs[1])
		total := m0[isa.FAdd] + m1[isa.FAdd]
		if want := uint64(32 * 32 * 32); total != want {
			t.Errorf("%v: total fadds %d, want %d", mode, total, want)
		}
		if diff := int64(m0[isa.FAdd]) - int64(m1[isa.FAdd]); diff > 16 || diff < -16 {
			t.Errorf("%v: imbalanced partition %d vs %d", mode, m0[isa.FAdd], m1[isa.FAdd])
		}
	}
}

func TestCoarseThreadsWorkOnDisjointCTiles(t *testing.T) {
	k := testKernel(t, 32)
	progs, _ := k.Programs(kernels.TLPCoarse)
	stores := func(p trace.Program) map[uint64]bool {
		s := map[uint64]bool{}
		for _, in := range trace.Collect(p) {
			if in.Op == isa.Store {
				s[in.Addr&^63] = true // line granularity
			}
		}
		return s
	}
	s0, s1 := stores(progs[0]), stores(progs[1])
	for line := range s0 {
		if s1[line] {
			t.Fatalf("coarse threads share C line %#x", line)
		}
	}
}

func TestFineThreadsShareCLines(t *testing.T) {
	k := testKernel(t, 32)
	progs, _ := k.Programs(kernels.TLPFine)
	stores := func(p trace.Program) map[uint64]bool {
		s := map[uint64]bool{}
		for _, in := range trace.Collect(p) {
			if in.Op == isa.Store {
				s[in.Addr&^63] = true
			}
		}
		return s
	}
	s0, s1 := stores(progs[0]), stores(progs[1])
	shared := 0
	for line := range s0 {
		if s1[line] {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("fine partitioning should interleave threads on the same C lines")
	}
}

func TestPrefetcherCoversWorkerTiles(t *testing.T) {
	k := testKernel(t, 32)
	progs, _ := k.Programs(kernels.TLPPfetch)
	workerLoads := map[uint64]bool{}
	for _, in := range trace.Collect(progs[0]) {
		if in.Op == isa.Load && (in.Tag == TagLoadA || in.Tag == TagLoadB) {
			workerLoads[in.Addr&^63] = true
		}
	}
	pfLoads := map[uint64]bool{}
	for _, in := range trace.Collect(progs[1]) {
		if in.Op == isa.Load && in.Tag == TagPrefetch {
			pfLoads[in.Addr&^63] = true
		}
	}
	for line := range workerLoads {
		if !pfLoads[line] {
			t.Fatalf("worker A/B line %#x never prefetched", line)
		}
	}
}

func TestPrefetcherIsLightweight(t *testing.T) {
	k := testKernel(t, 32)
	progs, _ := k.Programs(kernels.TLPPfetch)
	w := trace.Count(progs[0])
	p := trace.Count(progs[1])
	if p*5 > w {
		t.Errorf("prefetcher %d µops vs worker %d: should be a small fraction", p, w)
	}
}

func TestAllModesRunToCompletion(t *testing.T) {
	k := testKernel(t, 32)
	for _, mode := range k.Modes() {
		progs, err := k.Programs(mode)
		if err != nil {
			t.Fatal(err)
		}
		m := smt.New(scaledConfig())
		m.LoadProgram(kernels.WorkerTid, progs[0])
		if progs[1] != nil {
			m.LoadProgram(kernels.HelperTid, progs[1])
		}
		res, err := m.Run(200_000_000)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !res.Completed {
			t.Fatalf("%v did not complete", mode)
		}
	}
}

func TestPrefetchReducesWorkerL2Misses(t *testing.T) {
	// The paper's headline for MM: the worker's L2 read misses drop ≈82%
	// under tlp-pfetch. With the scaled caches, N=64 (32 KB per matrix,
	// 96 KB total vs 32 KB L2) exercises the same capacity-miss regime as
	// the paper's 1024² inputs against the Xeon's 512 KB.
	run := func(mode kernels.Mode) *smt.Machine {
		k := testKernel(t, 64)
		progs, err := k.Programs(mode)
		if err != nil {
			t.Fatal(err)
		}
		m := smt.New(scaledConfig())
		m.LoadProgram(kernels.WorkerTid, progs[0])
		if progs[1] != nil {
			m.LoadProgram(kernels.HelperTid, progs[1])
		}
		if res, err := m.Run(500_000_000); err != nil || !res.Completed {
			t.Fatalf("%v: err=%v completed=%v", mode, err, res.Completed)
		}
		return m
	}
	serial := run(kernels.Serial)
	pfetch := run(kernels.TLPPfetch)
	sMiss := serial.Hierarchy().Thread(0).L2ReadMisses
	wMiss := pfetch.Hierarchy().Thread(0).L2ReadMisses
	if sMiss == 0 {
		t.Fatal("serial run produced no L2 misses; problem size too small")
	}
	reduction := 1 - float64(wMiss)/float64(sMiss)
	if reduction < 0.5 {
		t.Errorf("worker L2 read-miss reduction = %.0f%% (serial %d → pfetch-worker %d), want substantial (paper: ≈82%%)",
			reduction*100, sMiss, wMiss)
	}
	// And the µop counters should show the worker did the full work.
	if pfetch.Counters().Get(perfmon.InstrRetired, 0) < serial.Counters().Get(perfmon.InstrRetired, 0) {
		t.Error("pfetch worker retired fewer program instructions than serial")
	}
}

func TestUnsupportedModeError(t *testing.T) {
	k := testKernel(t, 32)
	if _, err := k.Programs(kernels.Mode(99)); err == nil {
		t.Fatal("invalid mode accepted")
	}
}

func TestSerialPrefetchExtension(t *testing.T) {
	// The paper's conclusion: embedding the prefetches in the working
	// thread combines low µop count with reduced misses and "achieves
	// best performance". Compare serial, tlp-pfetch and serial+pf.
	run := func(mode kernels.Mode) *smt.Machine {
		k := testKernel(t, 64)
		progs, err := k.Programs(mode)
		if err != nil {
			t.Fatal(err)
		}
		m := smt.New(scaledConfig())
		m.LoadProgram(kernels.WorkerTid, progs[0])
		if progs[1] != nil {
			m.LoadProgram(kernels.HelperTid, progs[1])
		}
		if res, err := m.Run(2_000_000_000); err != nil || !res.Completed {
			t.Fatalf("%v: err=%v completed=%v", mode, err, res.Completed)
		}
		return m
	}
	serial := run(kernels.Serial)
	spr := run(kernels.TLPPfetch)
	inline := run(kernels.SerialPrefetch)

	// serial+pf must beat the helper-thread scheme...
	if inline.Cycle() >= spr.Cycle() {
		t.Errorf("serial+pf (%d cycles) not faster than tlp-pfetch (%d)", inline.Cycle(), spr.Cycle())
	}
	// ...and stay within a whisker of (or beat) plain serial.
	if float64(inline.Cycle()) > 1.05*float64(serial.Cycle()) {
		t.Errorf("serial+pf (%d cycles) noticeably slower than serial (%d)", inline.Cycle(), serial.Cycle())
	}
	// Its µop overhead is small, unlike the SPR helper's.
	serialUops := serial.Counters().Total(perfmon.UopsRetired)
	inlineUops := inline.Counters().Total(perfmon.UopsRetired)
	sprUops := spr.Counters().Total(perfmon.UopsRetired)
	if float64(inlineUops) > 1.06*float64(serialUops) {
		t.Errorf("serial+pf µops %d vs serial %d: overhead too large", inlineUops, serialUops)
	}
	if inlineUops >= sprUops {
		t.Errorf("serial+pf µops %d not below tlp-pfetch %d", inlineUops, sprUops)
	}
}
