package bt

import (
	"math"
	"testing"

	"smtexplore/internal/isa"
	"smtexplore/internal/kernels"
	"smtexplore/internal/mem"
	"smtexplore/internal/perfmon"
	"smtexplore/internal/smt"
	"smtexplore/internal/trace"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.G = 6
	cfg.Steps = 1
	return cfg
}

func testKernel(t *testing.T, cfg Config) *Kernel {
	t.Helper()
	k, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func scaledConfig() smt.Config {
	cfg := smt.DefaultConfig()
	cfg.Mem.L2 = mem.CacheConfig{Size: 32 << 10, LineSize: 64, Assoc: 8, Latency: 18}
	return cfg
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{G: 1, Steps: 1}); err == nil {
		t.Error("grid 1 accepted")
	}
	if _, err := New(Config{G: 8, Steps: 0}); err == nil {
		t.Error("zero steps accepted")
	}
}

func TestSerialMixApproximatesTable1(t *testing.T) {
	k := testKernel(t, smallConfig())
	progs, err := k.Programs(kernels.Serial)
	if err != nil {
		t.Fatal(err)
	}
	mix := trace.Mix(progs[0])
	var total uint64
	for _, n := range mix {
		total += n
	}
	share := func(ops ...isa.Op) float64 {
		var n uint64
		for _, op := range ops {
			n += mix[op]
		}
		return 100 * float64(n) / float64(total)
	}
	// Table 1 BT serial, normalised: ALUs ≈6.9%, FP_ADD ≈15.1%, FP_MUL
	// ≈18.8%, FP_MOVE ≈9.0%, LOAD ≈36.5%, STORE ≈13.7%.
	checks := []struct {
		name string
		got  float64
		want float64
		tol  float64
	}{
		{"ALUs", share(isa.IAdd, isa.ILogic, isa.Branch), 6.9, 3},
		{"FP_ADD", share(isa.FAdd), 15.1, 3},
		{"FP_MUL", share(isa.FMul), 18.8, 3},
		{"FP_MOVE", share(isa.FMove), 9.0, 3},
		{"LOAD", share(isa.Load), 36.5, 4},
		{"STORE", share(isa.Store), 13.7, 3},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > c.tol {
			t.Errorf("%s share = %.2f%%, want %.1f±%.0f", c.name, c.got, c.want, c.tol)
		}
	}
}

func TestSweepLinesCoverGrid(t *testing.T) {
	k := testKernel(t, smallConfig())
	for dim := 0; dim < 3; dim++ {
		lines := k.sweepLines(dim)
		if len(lines) != k.LineCount() {
			t.Fatalf("dim %d: %d lines, want %d", dim, len(lines), k.LineCount())
		}
		seen := map[int]bool{}
		for _, l := range lines {
			if len(l.cells) != smallConfig().G {
				t.Fatalf("dim %d: line length %d", dim, len(l.cells))
			}
			for _, c := range l.cells {
				if seen[c] {
					t.Fatalf("dim %d: cell %d on two lines", dim, c)
				}
				seen[c] = true
			}
		}
		if len(seen) != 6*6*6 {
			t.Fatalf("dim %d: covered %d cells, want 216", dim, len(seen))
		}
	}
}

func TestXSweepIsContiguousYZAreStrided(t *testing.T) {
	k := testKernel(t, smallConfig())
	x := k.sweepLines(0)[0]
	for i := 1; i < len(x.cells); i++ {
		if x.cells[i] != x.cells[i-1]+1 {
			t.Fatal("x sweep not memory-contiguous")
		}
	}
	y := k.sweepLines(1)[0]
	if y.cells[1]-y.cells[0] != smallConfig().G {
		t.Fatal("y sweep stride wrong")
	}
	z := k.sweepLines(2)[0]
	if z.cells[1]-z.cells[0] != smallConfig().G*smallConfig().G {
		t.Fatal("z sweep stride wrong")
	}
}

func TestCoarsePartitionPerfectlyBalanced(t *testing.T) {
	// Table 1: the BT threads execute exactly half the serial
	// instructions each ("perfect workload partitioning").
	cfg := smallConfig()
	k := testKernel(t, cfg)
	progs, err := k.Programs(kernels.TLPCoarse)
	if err != nil {
		t.Fatal(err)
	}
	count := func(p trace.Program) uint64 {
		var n uint64
		for _, v := range trace.Mix(p) {
			n += v
		}
		return n
	}
	c0, c1 := count(progs[0]), count(progs[1])
	diff := math.Abs(float64(c0)-float64(c1)) / float64(c0+c1)
	if diff > 0.01 {
		t.Errorf("imbalance %.2f%% between %d and %d", diff*100, c0, c1)
	}
	sp, _ := k.Programs(kernels.Serial)
	serial := count(sp[0])
	// Modulo the barrier µops, the split adds no overhead.
	if overhead := float64(c0+c1-serial) / float64(serial); overhead > 0.01 {
		t.Errorf("partition overhead %.2f%%, want ≈0 (perfect partitioning)", overhead*100)
	}
}

func TestPrefetcherIsSmall(t *testing.T) {
	k := testKernel(t, smallConfig())
	progs, _ := k.Programs(kernels.TLPPfetch)
	w := trace.Count(progs[0])
	p := trace.Count(progs[1])
	ratio := float64(p) / float64(w)
	// Paper: BT's prefetcher retires ≈19% of the worker's count (8.4e9
	// vs 45e9). Ours is line walks only; accept anything well under 1.
	if ratio > 0.4 {
		t.Errorf("prefetcher/worker ratio %.2f too large", ratio)
	}
}

func TestAllModesRunToCompletion(t *testing.T) {
	k := testKernel(t, smallConfig())
	for _, mode := range k.Modes() {
		progs, err := k.Programs(mode)
		if err != nil {
			t.Fatal(err)
		}
		m := smt.New(scaledConfig())
		m.LoadProgram(kernels.WorkerTid, progs[0])
		if progs[1] != nil {
			m.LoadProgram(kernels.HelperTid, progs[1])
		}
		res, err := m.Run(2_000_000_000)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !res.Completed {
			t.Fatalf("%v did not complete", mode)
		}
		if m.Counters().Get(perfmon.InstrRetired, 0) == 0 {
			t.Fatalf("%v: worker retired nothing", mode)
		}
	}
}

func TestTLPCoarseGivesSpeedup(t *testing.T) {
	// BT is the paper's headline TLP result: tlp-coarse is ≈6% FASTER
	// than serial. Assert a speedup (any positive margin).
	cfg := DefaultConfig()
	cfg.G = 8
	cfg.Steps = 1
	run := func(mode kernels.Mode) uint64 {
		k := testKernel(t, cfg)
		progs, err := k.Programs(mode)
		if err != nil {
			t.Fatal(err)
		}
		m := smt.New(scaledConfig())
		m.LoadProgram(kernels.WorkerTid, progs[0])
		if progs[1] != nil {
			m.LoadProgram(kernels.HelperTid, progs[1])
		}
		if res, err := m.Run(4_000_000_000); err != nil || !res.Completed {
			t.Fatalf("%v: err=%v completed=%v", mode, err, res.Completed)
		}
		return m.Cycle()
	}
	serial := run(kernels.Serial)
	coarse := run(kernels.TLPCoarse)
	if coarse >= serial {
		t.Errorf("bt tlp-coarse (%d) not faster than serial (%d); paper reports ≈6%% speedup", coarse, serial)
	}
}

func TestUnsupportedModes(t *testing.T) {
	k := testKernel(t, smallConfig())
	for _, mode := range []kernels.Mode{kernels.TLPFine, kernels.TLPPfetchWork} {
		if _, err := k.Programs(mode); err == nil {
			t.Errorf("mode %v unexpectedly supported", mode)
		}
	}
}
