// Package bt implements the paper's NAS BT benchmark (§5.2(ii)): an ADI
// solver for block-tridiagonal systems of 5×5 blocks on a 3-D grid, swept
// along each dimension per time step. BT has the richest FP mix of the
// four kernels (Table 1: ≈19% FP_MUL, ≈15% FP_ADD, ≈9% FP_MOVE, only ≈7%
// ALU) and "somewhat better data locality" than CG — but its y- and
// z-dimension sweeps stride far apart in memory, imposing latencies the
// hardware streamer cannot hide.
//
// BT is the paper's one TLP success: coarse partitioning of the
// independent lines of each sweep, with perfect balance (Table 1 shows the
// threads executing exactly half the serial instructions each), assorted
// compute that spreads over the FP subunits, and low ALU contention let
// hyper-threading interleave memory latency with computation for a ≈6%
// speedup. The SPR scheme instead costs ≈1% despite cutting the worker's
// misses, because of the added prefetch µops.
package bt

import (
	"fmt"

	"smtexplore/internal/isa"
	"smtexplore/internal/kernels"
	"smtexplore/internal/layout"
	"smtexplore/internal/syncprim"
	"smtexplore/internal/trace"
)

// Static load sites.
const (
	TagLoadBlock isa.Tag = kernels.TagBaseBT + iota
	TagLoadRHS
	TagPrefetch
)

// Block geometry of the benchmark.
const (
	// BlockDim is the tridiagonal block dimension (5×5 systems).
	BlockDim = 5
	// blockBytes is one 5×5 block of float64.
	blockBytes = BlockDim * BlockDim * layout.ElemSize
	// rhsBytes is one 5-vector of float64.
	rhsBytes = BlockDim * layout.ElemSize
)

// Config parameterises the kernel.
type Config struct {
	// G is the grid dimension (G³ cells).
	G int
	// Steps is the number of ADI time steps.
	Steps int
	// PrefetchWait selects the prefetcher's wait flavour.
	PrefetchWait syncprim.WaitKind
	// Base is the address-space base.
	Base uint64
}

// DefaultConfig returns the scaled stand-in for BT Class A (64³ grid,
// 200 steps): the per-cell block data (≈2 KB across the lhs and rhs
// arrays) times the grid far exceeds the scaled L2.
func DefaultConfig() Config {
	return Config{
		G:            10,
		Steps:        2,
		PrefetchWait: syncprim.SpinPause,
		Base:         0x0C00_0000,
	}
}

// Kernel builds BT programs for every mode.
type Kernel struct {
	cfg   Config
	lhsA  uint64 // [G³] blocks: sub-diagonal
	lhsB  uint64 // [G³] blocks: diagonal
	lhsC  uint64 // [G³] blocks: super-diagonal
	rhs   uint64 // [G³] 5-vectors
	cells syncprim.CellAlloc

	wkStart  syncprim.Flag
	pfDone   syncprim.Flag
	sweepBar *syncprim.Barrier
}

// New validates cfg and lays out the grid arrays.
func New(cfg Config) (*Kernel, error) {
	if cfg.G < 2 {
		return nil, fmt.Errorf("bt: grid %d too small", cfg.G)
	}
	if cfg.Steps <= 0 {
		return nil, fmt.Errorf("bt: steps %d not positive", cfg.Steps)
	}
	cells := uint64(cfg.G) * uint64(cfg.G) * uint64(cfg.G)
	ar := layout.NewArena(cfg.Base)
	k := &Kernel{cfg: cfg}
	k.lhsA = ar.Alloc(cells * blockBytes)
	k.lhsB = ar.Alloc(cells * blockBytes)
	k.lhsC = ar.Alloc(cells * blockBytes)
	k.rhs = ar.Alloc(cells * rhsBytes)
	k.wkStart = syncprim.NewFlag(&k.cells)
	k.pfDone = syncprim.NewFlag(&k.cells)
	k.sweepBar = syncprim.NewBarrier(&k.cells)
	return k, nil
}

// Name returns the kernel name.
func (k *Kernel) Name() string { return "bt" }

// Modes lists the modes the paper evaluates for BT.
func (k *Kernel) Modes() []kernels.Mode {
	return []kernels.Mode{kernels.Serial, kernels.TLPCoarse, kernels.TLPPfetch}
}

// cellIndex linearises grid coordinates (k fastest: the x dimension is
// memory-contiguous, so x sweeps stream while y and z sweeps stride).
func (k *Kernel) cellIndex(x, y, z int) int {
	g := k.cfg.G
	return (z*g+y)*g + x
}

// blockAddr returns the byte address of a cell's block in one lhs array.
func blockAddr(base uint64, cell int) uint64 {
	return base + uint64(cell)*blockBytes
}

func rhsAddr(base uint64, cell int) uint64 {
	return base + uint64(cell)*rhsBytes
}

// emitBlockOp emits nFmul inner element updates of a block operation
// reading blocks at aBase/bBase and updating the destination at dBase,
// with the Table 1 BT mix: per fmul ≈2 loads, 0.8 fadd, 0.5 fmove, 0.75
// store, 0.35 ALU.
func (k *Kernel) emitBlockOp(e *trace.Emitter, aBase, bBase, dBase uint64, nFmul int, seq *uint64) {
	for i := 0; i < nFmul; i++ {
		s := *seq
		*seq = s + 1
		r := int(s)
		aReg := isa.F(r % 5)
		bReg := isa.F(5 + r%5)
		tReg := isa.F(10 + r%6)
		dReg := isa.F(16 + (r & 3))

		aOff := uint64(i%25) * layout.ElemSize
		bOff := uint64((i*7)%25) * layout.ElemSize
		dOff := uint64(i%25) * layout.ElemSize
		e.TaggedLoad(aReg, aBase+aOff, TagLoadBlock)
		e.TaggedLoad(bReg, bBase+bOff, TagLoadBlock)
		e.ALU(isa.FMul, tReg, aReg, bReg)
		if i%5 != 4 {
			e.ALU(isa.FAdd, dReg, dReg, tReg)
		}
		if r&1 == 0 {
			e.ALU(isa.FMove, isa.F(20+(r&3)), tReg, isa.RegNone)
		}
		if i%4 != 3 {
			e.Store(dReg, dBase+dOff)
		}
		if i%3 == 0 {
			e.ALU(isa.IAdd, isa.R(r&7), isa.R(28), isa.R(29))
		}
		if r&7 == 7 {
			e.Branch()
		}
	}
}

// emitCellSolve emits the per-cell work of a forward-elimination step
// along a line: one block-block multiply (B -= A·C_prev, 125 multiplies)
// and two block-vector operations (25 multiplies each).
func (k *Kernel) emitCellSolve(e *trace.Emitter, cell, prev int, seq *uint64) {
	k.emitBlockOp(e, blockAddr(k.lhsA, cell), blockAddr(k.lhsC, prev),
		blockAddr(k.lhsB, cell), BlockDim*BlockDim*BlockDim, seq)
	k.emitBlockOp(e, blockAddr(k.lhsA, cell), rhsAddr(k.rhs, prev),
		rhsAddr(k.rhs, cell), BlockDim*BlockDim, seq)
	k.emitBlockOp(e, blockAddr(k.lhsB, cell), rhsAddr(k.rhs, cell),
		rhsAddr(k.rhs, cell), BlockDim*BlockDim, seq)
}

// line is one tridiagonal system: the cells along one dimension.
type line struct {
	cells []int
}

// sweepLines enumerates the independent lines of dimension dim (0 = x,
// 1 = y, 2 = z) in the serial iteration order.
func (k *Kernel) sweepLines(dim int) []line {
	g := k.cfg.G
	var out []line
	for a := 0; a < g; a++ {
		for b := 0; b < g; b++ {
			l := line{cells: make([]int, g)}
			for c := 0; c < g; c++ {
				switch dim {
				case 0:
					l.cells[c] = k.cellIndex(c, a, b)
				case 1:
					l.cells[c] = k.cellIndex(a, c, b)
				default:
					l.cells[c] = k.cellIndex(a, b, c)
				}
			}
			out = append(out, l)
		}
	}
	return out
}

// emitLine emits the forward elimination and back substitution along one
// line.
func (k *Kernel) emitLine(e *trace.Emitter, l line, seq *uint64) {
	for i := 1; i < len(l.cells); i++ {
		k.emitCellSolve(e, l.cells[i], l.cells[i-1], seq)
	}
	// Back substitution: one block-vector multiply per cell.
	for i := len(l.cells) - 2; i >= 0; i-- {
		k.emitBlockOp(e, blockAddr(k.lhsC, l.cells[i]), rhsAddr(k.rhs, l.cells[i+1]),
			rhsAddr(k.rhs, l.cells[i]), BlockDim*BlockDim, seq)
	}
}

// emitPrefetchLine emits the helper-thread prefetch of one line's blocks:
// one tagged load per cache line of the lhs and rhs data the worker is
// about to consume, with light address arithmetic.
func (k *Kernel) emitPrefetchLine(e *trace.Emitter, l line, seq *uint64) {
	for _, cell := range l.cells {
		for _, base := range []uint64{
			blockAddr(k.lhsA, cell), blockAddr(k.lhsB, cell), blockAddr(k.lhsC, cell),
		} {
			for off := uint64(0); off < blockBytes; off += 64 {
				s := *seq
				*seq = s + 1
				if s&1 == 0 {
					e.ALU(isa.IAdd, isa.R(int(s)&7), isa.R(28), isa.R(29))
				}
				e.TaggedLoad(isa.F(24+(int(s)&3)), base+off, TagPrefetch)
			}
		}
		s := *seq
		*seq = s + 1
		e.TaggedLoad(isa.F(28+(int(s)&1)), rhsAddr(k.rhs, cell), TagPrefetch)
	}
}

// Programs builds the program pair for mode.
func (k *Kernel) Programs(mode kernels.Mode) ([2]trace.Program, error) {
	switch mode {
	case kernels.Serial:
		return [2]trace.Program{k.serialProgram(), nil}, nil
	case kernels.TLPCoarse:
		return [2]trace.Program{k.coarseProgram(0), k.coarseProgram(1)}, nil
	case kernels.TLPPfetch:
		return [2]trace.Program{k.spanWorker(), k.prefetcher()}, nil
	default:
		return [2]trace.Program{}, kernels.ErrUnsupportedMode{Kernel: k.Name(), Mode: mode}
	}
}

func (k *Kernel) serialProgram() trace.Program {
	return trace.Generate(func(e *trace.Emitter) {
		var seq uint64
		for step := 0; step < k.cfg.Steps; step++ {
			for dim := 0; dim < 3; dim++ {
				for _, l := range k.sweepLines(dim) {
					if e.Stopped() {
						return
					}
					k.emitLine(e, l, &seq)
				}
			}
		}
	})
}

// coarseProgram splits each sweep's independent lines between the threads
// by parity (the perfect partitioning Table 1 shows), with a barrier
// between sweeps to respect the ADI dimension ordering.
func (k *Kernel) coarseProgram(tid int) trace.Program {
	return trace.Generate(func(e *trace.Emitter) {
		bar := k.sweepBar.Join(tid, syncprim.SpinPause)
		var seq uint64
		for step := 0; step < k.cfg.Steps; step++ {
			for dim := 0; dim < 3; dim++ {
				for li, l := range k.sweepLines(dim) {
					if e.Stopped() {
						return
					}
					if li&1 != tid {
						continue
					}
					k.emitLine(e, l, &seq)
				}
				bar.Arrive(e)
			}
		}
	})
}

// spanWorker is the SPR computation thread: one precomputation span per
// line, gated on the prefetcher running exactly one line ahead.
func (k *Kernel) spanWorker() trace.Program {
	return trace.Generate(func(e *trace.Emitter) {
		var seq uint64
		epoch := int64(0)
		for step := 0; step < k.cfg.Steps; step++ {
			for dim := 0; dim < 3; dim++ {
				for _, l := range k.sweepLines(dim) {
					if e.Stopped() {
						return
					}
					epoch++
					k.wkStart.Set(e, epoch)
					k.pfDone.Wait(e, syncprim.SpinPause, isa.CmpGE, epoch)
					k.emitLine(e, l, &seq)
				}
			}
		}
	})
}

func (k *Kernel) prefetcher() trace.Program {
	return trace.Generate(func(e *trace.Emitter) {
		var seq uint64
		epoch := int64(0)
		for step := 0; step < k.cfg.Steps; step++ {
			for dim := 0; dim < 3; dim++ {
				for _, l := range k.sweepLines(dim) {
					if e.Stopped() {
						return
					}
					epoch++
					if epoch > 1 {
						k.wkStart.Wait(e, k.cfg.PrefetchWait, isa.CmpGE, epoch-1)
					}
					k.emitPrefetchLine(e, l, &seq)
					k.pfDone.Set(e, epoch)
				}
			}
		}
	})
}

// LineCount exposes per-sweep line count for tests.
func (k *Kernel) LineCount() int { return k.cfg.G * k.cfg.G }
