// Package kernels defines the shared vocabulary of the paper's benchmark
// implementations: the multithreaded execution modes of Section 5 and the
// program-pair contract that every kernel (MM, LU, CG, BT) satisfies.
//
// Each kernel sub-package builds address-faithful instruction-stream
// generators whose dynamic instruction mixes are engineered to match the
// Pin-profiled mixes of Table 1, for every execution mode the paper
// evaluates on that kernel.
package kernels

import "fmt"

// Mode is one of the paper's execution configurations.
type Mode uint8

const (
	// Serial is the single-threaded version, optimised with the loop
	// transformations of the paper (tiling, unrolling, layout tricks).
	Serial Mode = iota
	// TLPFine partitions work at element granularity: consecutive
	// elements go to different threads circularly (MM only).
	TLPFine
	// TLPCoarse partitions work at tile/row-block granularity, keeping
	// the threads in disjoint cache areas.
	TLPCoarse
	// TLPPfetch is pure speculative precomputation: one worker executes
	// everything while a helper thread prefetches the delinquent loads
	// one span ahead, regulated by barriers (§3.2).
	TLPPfetch
	// TLPPfetchWork is the hybrid: fine-grained work partitioning where
	// one thread additionally prefetches the next span.
	TLPPfetchWork

	// SerialPrefetch is the extension the paper's conclusion points at:
	// the serial worker with non-binding prefetch instructions embedded
	// inline ("embodying SPR in the working thread... combines low
	// number of µops with reduced cache misses and achieves best
	// performance"). Single-threaded; the sibling context stays idle.
	SerialPrefetch

	numModes
)

// NumModes is the number of defined modes.
const NumModes = int(numModes)

var modeNames = [NumModes]string{
	"serial", "tlp-fine", "tlp-coarse", "tlp-pfetch", "tlp-pfetch+work",
	"serial+pf",
}

func (m Mode) String() string {
	if int(m) < len(modeNames) {
		return modeNames[m]
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Valid reports whether m is a defined mode.
func (m Mode) Valid() bool { return m < numModes }

// AllModes returns every mode in paper order.
func AllModes() []Mode {
	out := make([]Mode, NumModes)
	for i := range out {
		out[i] = Mode(i)
	}
	return out
}

// WorkerTid and HelperTid fix the logical-processor roles: the main/worker
// thread binds to context 0, the sibling (second worker or prefetcher) to
// context 1, mirroring the paper's sched_setaffinity binding of two
// threads within one physical package.
const (
	WorkerTid = 0
	HelperTid = 1
)

// ErrUnsupportedMode reports a mode a kernel does not implement (the paper
// likewise implements only a subset per kernel, e.g. no hybrid scheme for
// LU).
type ErrUnsupportedMode struct {
	Kernel string
	Mode   Mode
}

func (e ErrUnsupportedMode) Error() string {
	return fmt.Sprintf("kernels: %s does not implement mode %v", e.Kernel, e.Mode)
}

// Tag ranges: each kernel tags its static load sites inside a dedicated
// range so delinquent-load profiles stay disjoint.
const (
	TagBaseMM = 1000
	TagBaseLU = 2000
	TagBaseCG = 3000
	TagBaseBT = 4000
)
