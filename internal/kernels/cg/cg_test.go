package cg

import (
	"math"
	"testing"

	"smtexplore/internal/isa"
	"smtexplore/internal/kernels"
	"smtexplore/internal/mem"
	"smtexplore/internal/perfmon"
	"smtexplore/internal/smt"
	"smtexplore/internal/trace"
)

// smallConfig is a fast test instance preserving the benchmark structure.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.N = 512
	cfg.NNZPerRow = 8
	cfg.Iters = 2
	cfg.SpanRows = 32
	return cfg
}

func testKernel(t *testing.T, cfg Config) *Kernel {
	t.Helper()
	k, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func scaledConfig() smt.Config {
	cfg := smt.DefaultConfig()
	cfg.Mem.L2 = mem.CacheConfig{Size: 32 << 10, LineSize: 64, Assoc: 8, Latency: 18}
	return cfg
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.Iters = 0
	if _, err := New(bad); err == nil {
		t.Error("zero iterations accepted")
	}
	bad = DefaultConfig()
	bad.SpanRows = 0
	if _, err := New(bad); err == nil {
		t.Error("zero span accepted")
	}
	bad = DefaultConfig()
	bad.NNZPerRow = 0
	if _, err := New(bad); err == nil {
		t.Error("zero nnz accepted")
	}
}

func TestSerialMixApproximatesTable1(t *testing.T) {
	k := testKernel(t, smallConfig())
	progs, err := k.Programs(kernels.Serial)
	if err != nil {
		t.Fatal(err)
	}
	mix := trace.Mix(progs[0])
	var total uint64
	for _, n := range mix {
		total += n
	}
	share := func(ops ...isa.Op) float64 {
		var n uint64
		for _, op := range ops {
			n += mix[op]
		}
		return 100 * float64(n) / float64(total)
	}
	// Table 1 CG serial, normalised: ALUs ≈26%, FP_ADD ≈8%, FP_MUL ≈8%,
	// FP_MOVE ≈16%, LOAD ≈34%, STORE ≈9%. CG is the only kernel with a
	// large FP_MOVE share.
	checks := []struct {
		name string
		got  float64
		want float64
		tol  float64
	}{
		{"ALUs", share(isa.IAdd, isa.ILogic, isa.Branch), 26, 6},
		{"FP_ADD", share(isa.FAdd), 8.1, 3},
		{"FP_MUL", share(isa.FMul), 8.1, 3},
		{"FP_MOVE", share(isa.FMove), 15.7, 5},
		{"LOAD", share(isa.Load), 33.6, 6},
		{"STORE", share(isa.Store), 8.7, 6},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > c.tol {
			t.Errorf("%s share = %.2f%%, want %.1f±%.0f", c.name, c.got, c.want, c.tol)
		}
	}
}

func TestGatherAddressesFollowPattern(t *testing.T) {
	k := testKernel(t, smallConfig())
	progs, _ := k.Programs(kernels.Serial)
	csr, geo := k.CSR(), k.Geometry()
	want := map[uint64]bool{}
	for _, col := range csr.Col {
		want[geo.XAddr(int(col))] = true
	}
	seen := 0
	for _, in := range trace.Collect(trace.Limit(progs[0], 200_000)) {
		if in.Tag == TagGatherX {
			if !want[in.Addr] {
				t.Fatalf("gather address %#x not an x[col] location", in.Addr)
			}
			seen++
		}
	}
	if seen == 0 {
		t.Fatal("no x gathers observed")
	}
}

func TestCoarseSplitsRowsAndBarriers(t *testing.T) {
	k := testKernel(t, smallConfig())
	progs, err := k.Programs(kernels.TLPCoarse)
	if err != nil {
		t.Fatal(err)
	}
	count := func(m map[isa.Op]uint64) uint64 {
		var n uint64
		for _, v := range m {
			n += v
		}
		return n
	}
	m0, m1 := trace.Mix(progs[0]), trace.Mix(progs[1])
	sp, _ := k.Programs(kernels.Serial)
	serialTotal := count(trace.Mix(sp[0]))
	got := count(m0) + count(m1)
	if got <= serialTotal {
		t.Errorf("threaded instruction total %d not above serial %d (reduction overhead missing)", got, serialTotal)
	}
	// Parallelisation overhead: each thread executes more than half the
	// serial work (the paper's explanation for CG's TLP slowdown).
	if 2*count(m0) <= serialTotal {
		t.Errorf("thread0 total %d not above half of serial %d", count(m0), serialTotal)
	}
	// 5 barriers per iteration per thread.
	if fs := m0[isa.FlagStore]; fs != uint64(5*smallConfig().Iters) {
		t.Errorf("thread0 flag stores = %d, want %d (5 barriers/iter)", fs, 5*smallConfig().Iters)
	}
}

func TestPrefetcherWalksValColStreams(t *testing.T) {
	k := testKernel(t, smallConfig())
	progs, _ := k.Programs(kernels.TLPPfetch)
	geo := k.Geometry()
	nnz := uint64(k.CSR().NNZ())
	valEnd, colEnd := geo.Val+nnz*8, geo.Col+nnz*4
	var inVal, inCol, other int
	for _, in := range trace.Collect(progs[1]) {
		if in.Tag != TagPrefetch {
			continue
		}
		switch {
		case in.Addr >= geo.Val && in.Addr < valEnd:
			inVal++
		case in.Addr >= geo.Col && in.Addr < colEnd:
			inCol++
		default:
			other++
		}
	}
	if inVal == 0 || inCol == 0 {
		t.Fatalf("prefetcher skipped a stream: val=%d col=%d", inVal, inCol)
	}
	if other != 0 {
		t.Fatalf("%d prefetches outside the delinquent streams", other)
	}
}

func TestPrefetcherIsTiny(t *testing.T) {
	// Paper: the CG prefetcher executes ~1.4% of the worker's
	// instructions (0.17e9 vs 11.93e9) — only the line walks of the
	// val/col streams.
	k := testKernel(t, smallConfig())
	progs, _ := k.Programs(kernels.TLPPfetch)
	w := trace.Count(progs[0])
	p := trace.Count(progs[1])
	if ratio := float64(p) / float64(w); ratio > 0.10 {
		t.Errorf("prefetcher/worker ratio = %.3f (%d vs %d), want ≲ 0.05", ratio, p, w)
	}
}

func TestAllModesRunToCompletion(t *testing.T) {
	k := testKernel(t, smallConfig())
	for _, mode := range k.Modes() {
		progs, err := k.Programs(mode)
		if err != nil {
			t.Fatal(err)
		}
		m := smt.New(scaledConfig())
		m.LoadProgram(kernels.WorkerTid, progs[0])
		if progs[1] != nil {
			m.LoadProgram(kernels.HelperTid, progs[1])
		}
		res, err := m.Run(500_000_000)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !res.Completed {
			t.Fatalf("%v did not complete", mode)
		}
		if m.Counters().Get(perfmon.InstrRetired, 0) == 0 {
			t.Fatalf("%v: worker retired nothing", mode)
		}
	}
}

func TestHyperThreadingGivesNoCGSpeedup(t *testing.T) {
	// Figure 5(a) for CG: the single-threaded version outperforms the
	// dual-threaded methods — tlp-coarse only marginally (factor 1.03),
	// the SPR schemes substantially (1.82 and 1.91). Our reproduction
	// asserts the same shape: no meaningful TLP win, and clear SPR
	// slowdowns.
	cfg := DefaultConfig()
	cfg.Iters = 4
	run := func(mode kernels.Mode) uint64 {
		k := testKernel(t, cfg)
		progs, err := k.Programs(mode)
		if err != nil {
			t.Fatal(err)
		}
		m := smt.New(scaledConfig())
		m.LoadProgram(kernels.WorkerTid, progs[0])
		if progs[1] != nil {
			m.LoadProgram(kernels.HelperTid, progs[1])
		}
		if res, err := m.Run(4_000_000_000); err != nil || !res.Completed {
			t.Fatalf("%v: err=%v completed=%v", mode, err, res.Completed)
		}
		return m.Cycle()
	}
	serial := float64(run(kernels.Serial))
	if coarse := float64(run(kernels.TLPCoarse)); coarse < 0.90*serial {
		t.Errorf("tlp-coarse %.0f vs serial %.0f: > 10%% TLP speedup contradicts the paper (factor ≈1.03 slower)", coarse, serial)
	}
	if pf := float64(run(kernels.TLPPfetch)); pf < 1.10*serial {
		t.Errorf("tlp-pfetch %.0f vs serial %.0f: should be clearly slower (paper: 1.82x)", pf, serial)
	}
	if hy := float64(run(kernels.TLPPfetchWork)); hy < 1.02*serial {
		t.Errorf("tlp-pfetch+work %.0f vs serial %.0f: should be slower (paper: 1.91x)", hy, serial)
	}
}

func TestUnsupportedMode(t *testing.T) {
	k := testKernel(t, smallConfig())
	if _, err := k.Programs(kernels.TLPFine); err == nil {
		t.Fatal("tlp-fine unexpectedly supported for CG")
	}
}
