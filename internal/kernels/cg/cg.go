// Package cg implements the paper's NAS CG benchmark (§5.2(i)): a
// conjugate-gradient solver over an unstructured random sparse matrix,
// characterised by random memory access patterns (the x-vector gathers of
// the sparse matrix-vector product) and frequent synchronisation.
//
// Each CG iteration performs one SpMV (q = A·p), two dot-product
// reductions and three AXPY vector updates; the TLP version splits rows
// and vector ranges between the threads with a barrier after every one of
// those phases — the "frequent invocations of synchronization primitives"
// the paper blames for the SPR version's deceleration. The precomputation
// thread distills CG's delinquent loads: the val/col CSR streams (which
// dominate the L2 misses, since the x vector itself stays L2-resident) are
// walked one span ahead, line by line.
//
// The Table 1 CG column is matched approximately: ≈26% ALU, ≈8% FP_ADD,
// ≈8% FP_MUL, ≈16% FP_MOVE (CG's register shuffling is the only kernel
// with a large FP_MOVE share), ≈34% LOAD, ≈9% STORE.
package cg

import (
	"fmt"

	"smtexplore/internal/isa"
	"smtexplore/internal/kernels"
	"smtexplore/internal/layout"
	"smtexplore/internal/sparse"
	"smtexplore/internal/syncprim"
	"smtexplore/internal/trace"
)

// Static load sites.
const (
	TagLoadVal isa.Tag = kernels.TagBaseCG + iota
	TagLoadCol
	TagGatherX
	TagVector
	TagPrefetch
)

// Config parameterises the kernel.
type Config struct {
	// N is the matrix dimension.
	N int
	// NNZPerRow is the nonzeros per row of the random pattern.
	NNZPerRow int
	// Iters is the number of CG iterations.
	Iters int
	// Seed drives the random sparsity pattern.
	Seed int64
	// SpanRows is the precomputation span in matrix rows.
	SpanRows int
	// PhaseOverheadUops is the per-phase parallelisation overhead each
	// thread pays in the threaded modes (partial-result exchange,
	// boundary recomputation, the pthreads transformation of the OpenMP
	// reductions). Table 1 shows each CG thread executing ≈59% of the
	// serial instruction count — "more than the half ... due to
	// parallelization overhead". Zero selects the default of 4·N.
	PhaseOverheadUops int
	// PrefetchWait selects the prefetcher's wait flavour.
	PrefetchWait syncprim.WaitKind
	// Base is the address-space base.
	Base uint64
}

// DefaultConfig returns the scaled stand-in for CG Class A (n=14000,
// ~1.85M nonzeros): the val/col matrix streams (96 KB per sweep) far
// exceed the scaled 32 KB L2 — they are the delinquent loads — while the
// x gather vector stays cache-resident, exactly the paper's miss regime
// (its 112 KB x fit the Xeon's 512 KB L2).
func DefaultConfig() Config {
	return Config{
		N:            512,
		NNZPerRow:    16,
		Iters:        30,
		Seed:         20060814, // ICPP'06 vintage
		SpanRows:     32,
		PrefetchWait: syncprim.SpinPause,
		Base:         0x0800_0000,
	}
}

// Kernel builds CG programs for every mode.
type Kernel struct {
	cfg   Config
	csr   *sparse.CSR
	geo   sparse.Geometry
	pvec  *layout.Vec // direction vector p
	cells syncprim.CellAlloc

	wkStart  syncprim.Flag
	pfDone   syncprim.Flag
	phaseBar *syncprim.Barrier
}

// New validates cfg, generates the sparse pattern and lays out the arrays.
func New(cfg Config) (*Kernel, error) {
	if cfg.Iters <= 0 {
		return nil, fmt.Errorf("cg: iterations %d not positive", cfg.Iters)
	}
	if cfg.SpanRows <= 0 {
		return nil, fmt.Errorf("cg: span %d not positive", cfg.SpanRows)
	}
	if cfg.PhaseOverheadUops == 0 {
		cfg.PhaseOverheadUops = 4 * cfg.N
	}
	if cfg.PhaseOverheadUops < 0 {
		return nil, fmt.Errorf("cg: negative phase overhead %d", cfg.PhaseOverheadUops)
	}
	csr, err := sparse.NewRandomCSR(cfg.N, cfg.NNZPerRow, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("cg: %w", err)
	}
	ar := layout.NewArena(cfg.Base)
	nnz := uint64(csr.NNZ())
	k := &Kernel{cfg: cfg, csr: csr}
	k.geo = sparse.Geometry{
		Val:    ar.Alloc(nnz * 8),
		Col:    ar.Alloc(nnz * 4),
		RowPtr: ar.Alloc(uint64(cfg.N+1) * 4),
		X:      ar.Alloc(uint64(cfg.N) * 8),
		Y:      ar.Alloc(uint64(cfg.N) * 8),
	}
	k.pvec = layout.MustVec(ar.Alloc(uint64(cfg.N)*8), cfg.N, 8)
	k.wkStart = syncprim.NewFlag(&k.cells)
	k.pfDone = syncprim.NewFlag(&k.cells)
	k.phaseBar = syncprim.NewBarrier(&k.cells)
	return k, nil
}

// Name returns the kernel name.
func (k *Kernel) Name() string { return "cg" }

// Modes lists the modes the paper evaluates for CG.
func (k *Kernel) Modes() []kernels.Mode {
	return []kernels.Mode{
		kernels.Serial, kernels.TLPCoarse, kernels.TLPPfetch, kernels.TLPPfetchWork,
	}
}

// emitSpMVRow emits the sparse dot product of one matrix row: per nonzero
// a val load, a col load, the random x gather, fmul, fadd into the
// accumulator and an fmove shuffle; per row the result store plus loop
// overhead.
func (k *Kernel) emitSpMVRow(e *trace.Emitter, row int, seq *uint64) {
	start, end := int(k.csr.RowPtr[row]), int(k.csr.RowPtr[row+1])
	for kk := start; kk < end; kk++ {
		s := *seq
		*seq = s + 1
		r := int(s)
		// Deep rotations (the unrolled, optimised serial code): the
		// random x gathers are the long-latency producers, so they get
		// the deepest rotation to expose memory-level parallelism.
		vReg := isa.F(r % 3)
		xReg := isa.F(3 + r%6)
		tReg := isa.F(9 + r%5)
		accReg := isa.F(14 + (r & 3))
		colReg := isa.R(r & 3)

		e.ALU(isa.IAdd, isa.R(4+(r&3)), isa.R(28), isa.R(29)) // k++
		e.TaggedLoad(colReg, k.geo.ColAddr(kk), TagLoadCol)
		e.ALU(isa.IAdd, isa.R(8+(r&1)), colReg, isa.R(29)) // scale col index
		e.TaggedLoad(vReg, k.geo.ValAddr(kk), TagLoadVal)
		e.TaggedLoad(xReg, k.geo.XAddr(int(k.csr.Col[kk])), TagGatherX)
		e.ALU(isa.IAdd, isa.R(12+(r&1)), isa.R(28), isa.R(29)) // row cursor
		e.TaggedLoad(vReg, k.geo.ValAddr(kk), TagLoadVal)      // spill reload
		e.ALU(isa.FMul, tReg, vReg, xReg)
		e.ALU(isa.FAdd, accReg, accReg, tReg)
		e.ALU(isa.FMove, isa.F(18+(r&3)), accReg, isa.RegNone)
		e.ALU(isa.FMove, isa.F(22+(r&1)), tReg, isa.RegNone)
		// The profiled binary stores the running accumulation per element
		// (no register-resident reduction), giving CG its ≈9% store share.
		e.Store(accReg, k.geo.YAddr(row))
		if r&3 == 3 {
			e.Branch()
		}
	}
}

// emitDotRange emits a partial dot product over vector rows [lo,hi): two
// loads, fmul, fadd, fmove per element.
func (k *Kernel) emitDotRange(e *trace.Emitter, lo, hi int, seq *uint64) {
	for i := lo; i < hi; i++ {
		s := *seq
		*seq = s + 1
		r := int(s)
		a := isa.F(r & 3)
		b := isa.F(4 + (r & 3))
		t := isa.F(8 + r%6)
		e.TaggedLoad(a, k.geo.YAddr(i), TagVector)
		e.TaggedLoad(b, k.pvec.Addr(i), TagVector)
		e.ALU(isa.FMul, t, a, b)
		e.ALU(isa.FAdd, isa.F(14+(r&1)), isa.F(14+(r&1)), t)
		if r&1 == 0 {
			e.ALU(isa.FMove, isa.F(18), isa.F(14), isa.RegNone)
		}
		if r&3 == 3 {
			e.ALU(isa.IAdd, isa.R(r&3), isa.R(28), isa.R(29))
			e.Branch()
		}
	}
}

// emitAxpyRange emits y += alpha*p over [lo,hi): two loads, fmul, fadd,
// store per element.
func (k *Kernel) emitAxpyRange(e *trace.Emitter, lo, hi int, seq *uint64) {
	for i := lo; i < hi; i++ {
		s := *seq
		*seq = s + 1
		r := int(s)
		a := isa.F(r & 3)
		b := isa.F(4 + (r & 3))
		t := isa.F(8 + r%6)
		e.TaggedLoad(a, k.geo.XAddr(i), TagVector)
		e.TaggedLoad(b, k.pvec.Addr(i), TagVector)
		e.ALU(isa.FMul, t, b, isa.F(20))
		e.ALU(isa.FAdd, a, a, t)
		e.Store(a, k.geo.XAddr(i))
		if r&3 == 3 {
			e.ALU(isa.IAdd, isa.R(r&3), isa.R(28), isa.R(29))
			e.Branch()
		}
	}
}

// reduceOverhead emits the parallelisation overhead each thread pays per
// phase: partial-result stores and reloads, accumulator shuffles and the
// index bookkeeping of the pthreads transformation. Sized so each thread's
// dynamic instruction count lands near the 59%-of-serial Table 1 reports.
func (k *Kernel) reduceOverhead(e *trace.Emitter, tid int, seq *uint64) {
	scratch := k.geo.Y + uint64(k.cfg.N)*8 + uint64(tid)*256
	for i := 0; i < k.cfg.PhaseOverheadUops; i++ {
		s := *seq
		*seq = s + 1
		r := int(s)
		switch i % 6 {
		case 0:
			e.ALU(isa.IAdd, isa.R(r&7), isa.R(28), isa.R(29))
		case 1:
			e.TaggedLoad(isa.F(r&3), scratch+uint64(r&15)*8, TagVector)
		case 2:
			e.ALU(isa.FMove, isa.F(18+(r&3)), isa.F(14), isa.RegNone)
		case 3:
			e.ALU(isa.FAdd, isa.F(14+(r&1)), isa.F(14+(r&1)), isa.F(22))
		case 4:
			e.Store(isa.F(14+(r&1)), scratch+uint64(r&15)*8)
		default:
			e.ALU(isa.IAdd, isa.R(8+(r&3)), isa.R(28), isa.R(29))
		}
	}
}

// Programs builds the program pair for mode.
func (k *Kernel) Programs(mode kernels.Mode) ([2]trace.Program, error) {
	switch mode {
	case kernels.Serial:
		return [2]trace.Program{k.serialProgram(), nil}, nil
	case kernels.TLPCoarse:
		return [2]trace.Program{k.coarseProgram(0), k.coarseProgram(1)}, nil
	case kernels.TLPPfetch:
		return [2]trace.Program{k.spanWorker(), k.prefetcher()}, nil
	case kernels.TLPPfetchWork:
		return [2]trace.Program{k.hybridWorker(), k.hybridHelper()}, nil
	default:
		return [2]trace.Program{}, kernels.ErrUnsupportedMode{Kernel: k.Name(), Mode: mode}
	}
}

func (k *Kernel) serialProgram() trace.Program {
	n := k.cfg.N
	return trace.Generate(func(e *trace.Emitter) {
		var seq uint64
		for it := 0; it < k.cfg.Iters && !e.Stopped(); it++ {
			for row := 0; row < n; row++ {
				k.emitSpMVRow(e, row, &seq)
			}
			k.emitDotRange(e, 0, n, &seq)
			k.emitAxpyRange(e, 0, n, &seq)
			k.emitDotRange(e, 0, n, &seq)
			k.emitAxpyRange(e, 0, n, &seq)
		}
	})
}

// coarseProgram splits every phase's index range in half, with a barrier
// and reduction overhead after each phase — CG's synchronisation-heavy
// threading.
func (k *Kernel) coarseProgram(tid int) trace.Program {
	n := k.cfg.N
	half := n / 2
	lo, hi := 0, half
	if tid == 1 {
		lo, hi = half, n
	}
	return trace.Generate(func(e *trace.Emitter) {
		bar := k.phaseBar.Join(tid, syncprim.SpinPause)
		var seq uint64
		for it := 0; it < k.cfg.Iters && !e.Stopped(); it++ {
			for row := lo; row < hi; row++ {
				k.emitSpMVRow(e, row, &seq)
			}
			k.reduceOverhead(e, tid, &seq)
			bar.Arrive(e)
			k.emitDotRange(e, lo, hi, &seq)
			k.reduceOverhead(e, tid, &seq)
			bar.Arrive(e)
			k.emitAxpyRange(e, lo, hi, &seq)
			bar.Arrive(e)
			k.emitDotRange(e, lo, hi, &seq)
			k.reduceOverhead(e, tid, &seq)
			bar.Arrive(e)
			k.emitAxpyRange(e, lo, hi, &seq)
			bar.Arrive(e)
		}
	})
}

// spans partitions the row space of one SpMV into precomputation spans.
func (k *Kernel) spanCount() int {
	return (k.cfg.N + k.cfg.SpanRows - 1) / k.cfg.SpanRows
}

// spanWorker is the SPR computation thread: the SpMV of each iteration is
// chunked into row spans gated on the prefetcher's progress; the vector
// phases run unchunked (their streams are prefetcher-free).
func (k *Kernel) spanWorker() trace.Program {
	n := k.cfg.N
	return trace.Generate(func(e *trace.Emitter) {
		var seq uint64
		epoch := int64(0)
		for it := 0; it < k.cfg.Iters && !e.Stopped(); it++ {
			for σ := 0; σ < k.spanCount(); σ++ {
				epoch++
				k.wkStart.Set(e, epoch)
				k.pfDone.Wait(e, syncprim.SpinPause, isa.CmpGE, epoch)
				lo := σ * k.cfg.SpanRows
				hi := min(lo+k.cfg.SpanRows, n)
				for row := lo; row < hi; row++ {
					k.emitSpMVRow(e, row, &seq)
				}
			}
			k.emitDotRange(e, 0, n, &seq)
			k.emitAxpyRange(e, 0, n, &seq)
			k.emitDotRange(e, 0, n, &seq)
			k.emitAxpyRange(e, 0, n, &seq)
		}
	})
}

// emitPrefetchSpan walks the val and col streams of the span's rows line
// by line — the delinquent loads the Valgrind-style profile isolates (the
// x vector is L2-resident and needs no prefetching).
func (k *Kernel) emitPrefetchSpan(e *trace.Emitter, lo, hi int, seq *uint64) {
	const lineBytes = 64
	start := int(k.csr.RowPtr[lo])
	end := int(k.csr.RowPtr[hi])
	valStart, valEnd := k.geo.ValAddr(start)&^63, k.geo.ValAddr(end)
	for a := valStart; a < valEnd; a += lineBytes {
		s := *seq
		*seq = s + 1
		if s&1 == 0 {
			e.ALU(isa.IAdd, isa.R(int(s)&3), isa.R(28), isa.R(29))
		}
		e.TaggedLoad(isa.F(24+(int(s)&3)), a, TagPrefetch)
	}
	colStart, colEnd := k.geo.ColAddr(start)&^63, k.geo.ColAddr(end)
	for a := colStart; a < colEnd; a += lineBytes {
		s := *seq
		*seq = s + 1
		if s&1 == 0 {
			e.ALU(isa.IAdd, isa.R(int(s)&3), isa.R(28), isa.R(29))
		}
		e.TaggedLoad(isa.R(8+(int(s)&3)), a, TagPrefetch)
	}
}

func (k *Kernel) prefetcher() trace.Program {
	n := k.cfg.N
	return trace.Generate(func(e *trace.Emitter) {
		var seq uint64
		epoch := int64(0)
		for it := 0; it < k.cfg.Iters && !e.Stopped(); it++ {
			for σ := 0; σ < k.spanCount(); σ++ {
				epoch++
				if epoch > 1 {
					k.wkStart.Wait(e, k.cfg.PrefetchWait, isa.CmpGE, epoch-1)
				}
				lo := σ * k.cfg.SpanRows
				hi := min(lo+k.cfg.SpanRows, n)
				k.emitPrefetchSpan(e, lo, hi, &seq)
				k.pfDone.Set(e, epoch)
			}
		}
	})
}

// hybridWorker/hybridHelper implement tlp-pfetch+work: rows split in half;
// the helper also prefetches its partner's upcoming val/col span. Per-span
// barriers keep the fine partitioning aligned.
func (k *Kernel) hybridWorker() trace.Program {
	n := k.cfg.N
	half := n / 2
	const tid = 0
	return trace.Generate(func(e *trace.Emitter) {
		bar := k.phaseBar.Join(tid, syncprim.SpinPause)
		var seq uint64
		epoch := int64(0)
		for it := 0; it < k.cfg.Iters && !e.Stopped(); it++ {
			for σ := 0; σ*k.cfg.SpanRows < half; σ++ {
				epoch++
				k.wkStart.Set(e, epoch)
				k.pfDone.Wait(e, syncprim.SpinPause, isa.CmpGE, epoch)
				lo := σ * k.cfg.SpanRows
				hi := min(lo+k.cfg.SpanRows, half)
				for row := lo; row < hi; row++ {
					k.emitSpMVRow(e, row, &seq)
				}
			}
			k.reduceOverhead(e, tid, &seq)
			bar.Arrive(e)
			k.emitDotRange(e, 0, half, &seq)
			k.reduceOverhead(e, tid, &seq)
			bar.Arrive(e)
			k.emitAxpyRange(e, 0, half, &seq)
			bar.Arrive(e)
			k.emitDotRange(e, 0, half, &seq)
			k.reduceOverhead(e, tid, &seq)
			bar.Arrive(e)
			k.emitAxpyRange(e, 0, half, &seq)
			bar.Arrive(e)
		}
	})
}

func (k *Kernel) hybridHelper() trace.Program {
	n := k.cfg.N
	half := n / 2
	const tid = 1
	return trace.Generate(func(e *trace.Emitter) {
		bar := k.phaseBar.Join(tid, syncprim.SpinPause)
		var seq uint64
		epoch := int64(0)
		for it := 0; it < k.cfg.Iters && !e.Stopped(); it++ {
			for σ := 0; σ*k.cfg.SpanRows < half; σ++ {
				epoch++
				if epoch > 1 {
					k.wkStart.Wait(e, k.cfg.PrefetchWait, isa.CmpGE, epoch-1)
				}
				// Prefetch the worker's upcoming span, then compute the
				// mirrored span of the helper's own half.
				lo := σ * k.cfg.SpanRows
				hi := min(lo+k.cfg.SpanRows, half)
				k.emitPrefetchSpan(e, lo, hi, &seq)
				k.pfDone.Set(e, epoch)
				for row := half + lo; row < half+hi && row < n; row++ {
					k.emitSpMVRow(e, row, &seq)
				}
			}
			k.reduceOverhead(e, tid, &seq)
			bar.Arrive(e)
			k.emitDotRange(e, half, n, &seq)
			k.reduceOverhead(e, tid, &seq)
			bar.Arrive(e)
			k.emitAxpyRange(e, half, n, &seq)
			bar.Arrive(e)
			k.emitDotRange(e, half, n, &seq)
			k.reduceOverhead(e, tid, &seq)
			bar.Arrive(e)
			k.emitAxpyRange(e, half, n, &seq)
			bar.Arrive(e)
		}
	})
}

// CSR exposes the generated sparsity pattern for tests.
func (k *Kernel) CSR() *sparse.CSR { return k.csr }

// Geometry exposes the array placement for tests.
func (k *Kernel) Geometry() sparse.Geometry { return k.geo }
