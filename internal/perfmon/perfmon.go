// Package perfmon is the reproduction's analogue of the custom
// performance-monitoring library the paper built over the Xeon's
// monitoring registers: a set of named hardware events, each qualified by
// logical-processor ID, counted with negligible overhead during
// simulation.
//
// The three headline events of the paper — L2 read misses as seen by the
// bus unit, resource (store-buffer allocator) stall cycles, and µops
// retired — are first-class, alongside the supporting events used in the
// analysis sections.
package perfmon

import (
	"fmt"
	"sort"
	"strings"
)

// Event names a countable hardware event.
type Event uint8

// Events. Per-logical-CPU qualification follows the paper: every event can
// be read for either context or summed over the physical package.
const (
	// Cycles counts core clock cycles during which the context was
	// active (not halted).
	Cycles Event = iota
	// HaltedCycles counts cycles spent in the halted state.
	HaltedCycles
	// InstrRetired counts generator-level instructions retired.
	InstrRetired
	// UopsRetired counts retired µops, including spin-loop expansions —
	// the paper's "µops retired" metric.
	UopsRetired
	// SpinUopsRetired counts the subset of retired µops produced by
	// spin-wait loop expansion (load/cmp/branch/pause iterations).
	SpinUopsRetired
	// L1Misses counts L1D load+store misses.
	L1Misses
	// L2Misses counts demand L2 misses (read + write) seen by the bus.
	L2Misses
	// L2ReadMisses counts demand L2 read misses — the paper's "L2
	// Misses" figure panels.
	L2ReadMisses
	// ResourceStallCycles counts allocator cycles stalled waiting for a
	// store-buffer entry — the paper's "resource stall cycles".
	ResourceStallCycles
	// ROBStallCycles counts allocator stalls on reorder-buffer entries.
	ROBStallCycles
	// LoadBufStallCycles counts allocator stalls on load-buffer entries.
	LoadBufStallCycles
	// SchedStallCycles counts allocator stalls on scheduler-window slots.
	SchedStallCycles
	// IssuedUops counts µops issued to execution ports (includes
	// replays).
	IssuedUops
	// ReplayedUops counts µops re-issued after an MSHR-full rejection.
	ReplayedUops
	// PipelineFlushes counts memory-order-violation flushes (spin-wait
	// exits).
	PipelineFlushes
	// FlushPenaltyCycles counts cycles lost to those flushes.
	FlushPenaltyCycles
	// HaltTransitions counts halt→active wake-ups (IPIs received).
	HaltTransitions
	// FetchStarvedCycles counts cycles the context fetched nothing while
	// runnable (program exhausted or front-end blocked).
	FetchStarvedCycles
	// PauseUopsRetired counts retired pause µops.
	PauseUopsRetired
	// MSHRRetryCycles counts scheduler replays due to MSHR exhaustion.
	MSHRRetryCycles
	// BarrierWaitCycles counts cycles spent waiting inside
	// SpinWait/HaltWait operations.
	BarrierWaitCycles
	// MachineClears counts memory-order machine clears: a sibling store
	// retired into a line with an in-flight load, forcing a replay.
	MachineClears
	// MachineClearCycles counts the replay penalty cycles charged.
	MachineClearCycles

	numEvents
)

// NumEvents is the number of defined events.
const NumEvents = int(numEvents)

var eventNames = [NumEvents]string{
	Cycles:              "cycles",
	HaltedCycles:        "halted_cycles",
	InstrRetired:        "instr_retired",
	UopsRetired:         "uops_retired",
	SpinUopsRetired:     "spin_uops_retired",
	L1Misses:            "l1_misses",
	L2Misses:            "l2_misses",
	L2ReadMisses:        "l2_read_misses",
	ResourceStallCycles: "resource_stall_cycles",
	ROBStallCycles:      "rob_stall_cycles",
	LoadBufStallCycles:  "loadbuf_stall_cycles",
	SchedStallCycles:    "sched_stall_cycles",
	IssuedUops:          "issued_uops",
	ReplayedUops:        "replayed_uops",
	PipelineFlushes:     "pipeline_flushes",
	FlushPenaltyCycles:  "flush_penalty_cycles",
	HaltTransitions:     "halt_transitions",
	FetchStarvedCycles:  "fetch_starved_cycles",
	PauseUopsRetired:    "pause_uops_retired",
	MSHRRetryCycles:     "mshr_retry_cycles",
	BarrierWaitCycles:   "barrier_wait_cycles",
	MachineClears:       "machine_clears",
	MachineClearCycles:  "machine_clear_cycles",
}

func (e Event) String() string {
	if int(e) < len(eventNames) && eventNames[e] != "" {
		return eventNames[e]
	}
	return fmt.Sprintf("event(%d)", uint8(e))
}

// Valid reports whether e is a defined event.
func (e Event) Valid() bool { return e < numEvents }

// Events returns all defined events in declaration order.
func Events() []Event {
	out := make([]Event, NumEvents)
	for i := range out {
		out[i] = Event(i)
	}
	return out
}

// NumContexts is the number of logical processors on the simulated
// physical package.
const NumContexts = 2

// Counters is a bank of per-logical-CPU event counters. The zero value is
// ready to use.
type Counters struct {
	c [NumEvents][NumContexts]uint64
}

// Add accumulates n occurrences of ev on logical CPU tid.
func (k *Counters) Add(ev Event, tid int, n uint64) {
	if !ev.Valid() {
		panic(fmt.Sprintf("perfmon: invalid event %d", uint8(ev)))
	}
	if tid < 0 || tid >= NumContexts {
		panic(fmt.Sprintf("perfmon: invalid logical CPU %d", tid))
	}
	k.c[ev][tid] += n
}

// Inc accumulates one occurrence.
func (k *Counters) Inc(ev Event, tid int) { k.Add(ev, tid, 1) }

// Get reads the count of ev on logical CPU tid.
func (k *Counters) Get(ev Event, tid int) uint64 {
	if !ev.Valid() {
		panic(fmt.Sprintf("perfmon: invalid event %d", uint8(ev)))
	}
	if tid < 0 || tid >= NumContexts {
		panic(fmt.Sprintf("perfmon: invalid logical CPU %d", tid))
	}
	return k.c[ev][tid]
}

// Total reads the count of ev summed over both logical CPUs — the paper's
// "sum for both threads" reporting mode.
func (k *Counters) Total(ev Event) uint64 {
	var t uint64
	for tid := 0; tid < NumContexts; tid++ {
		t += k.Get(ev, tid)
	}
	return t
}

// Reset zeroes every counter.
func (k *Counters) Reset() { k.c = [NumEvents][NumContexts]uint64{} }

// Snapshot copies the current counter state.
func (k *Counters) Snapshot() Snapshot {
	var s Snapshot
	s.c = k.c
	return s
}

// Restore overwrites the bank with a previously captured snapshot —
// the inverse of Snapshot, used when a checkpointed machine is resumed.
func (k *Counters) Restore(s Snapshot) { k.c = s.c }

// Snapshot is an immutable copy of a counter bank.
type Snapshot struct {
	c [NumEvents][NumContexts]uint64
}

// Raw exposes the counter matrix, indexed [event][cpu]. Checkpoint
// codecs serialize it; FromRaw rebuilds the snapshot on restore.
func (s Snapshot) Raw() [NumEvents][NumContexts]uint64 { return s.c }

// FromRaw rebuilds a snapshot from a Raw counter matrix.
func FromRaw(raw [NumEvents][NumContexts]uint64) Snapshot { return Snapshot{c: raw} }

// Get reads event ev for logical CPU tid from the snapshot.
func (s Snapshot) Get(ev Event, tid int) uint64 { return s.c[ev][tid] }

// Total reads event ev summed over both logical CPUs.
func (s Snapshot) Total(ev Event) uint64 {
	var t uint64
	for tid := 0; tid < NumContexts; tid++ {
		t += s.c[ev][tid]
	}
	return t
}

// Delta returns s - earlier, element-wise. It panics if any counter would
// go negative (snapshots from different runs or wrong order).
func (s Snapshot) Delta(earlier Snapshot) Snapshot {
	var d Snapshot
	for ev := 0; ev < NumEvents; ev++ {
		for tid := 0; tid < NumContexts; tid++ {
			a, b := s.c[ev][tid], earlier.c[ev][tid]
			if b > a {
				panic(fmt.Sprintf("perfmon: delta underflow on %v/cpu%d", Event(ev), tid))
			}
			d.c[ev][tid] = a - b
		}
	}
	return d
}

// Format renders the snapshot as an aligned table of the non-zero events,
// one row per event with per-CPU and total columns.
func (s Snapshot) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %14s %14s %14s\n", "event", "cpu0", "cpu1", "total")
	rows := make([]Event, 0, NumEvents)
	for ev := 0; ev < NumEvents; ev++ {
		if s.Total(Event(ev)) != 0 {
			rows = append(rows, Event(ev))
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
	for _, ev := range rows {
		fmt.Fprintf(&b, "%-24s %14d %14d %14d\n",
			ev.String(), s.Get(ev, 0), s.Get(ev, 1), s.Total(ev))
	}
	return b.String()
}
