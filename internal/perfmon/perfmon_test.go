package perfmon

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEventNamesUniqueAndComplete(t *testing.T) {
	seen := map[string]bool{}
	for _, ev := range Events() {
		name := ev.String()
		if name == "" || strings.HasPrefix(name, "event(") {
			t.Fatalf("event %d has no name", ev)
		}
		if seen[name] {
			t.Fatalf("duplicate event name %q", name)
		}
		seen[name] = true
	}
	if len(Events()) != NumEvents {
		t.Fatalf("Events() returned %d, want %d", len(Events()), NumEvents)
	}
}

func TestAddGetTotal(t *testing.T) {
	var k Counters
	k.Add(UopsRetired, 0, 10)
	k.Add(UopsRetired, 1, 5)
	k.Inc(UopsRetired, 1)
	if got := k.Get(UopsRetired, 0); got != 10 {
		t.Errorf("cpu0 = %d, want 10", got)
	}
	if got := k.Get(UopsRetired, 1); got != 6 {
		t.Errorf("cpu1 = %d, want 6", got)
	}
	if got := k.Total(UopsRetired); got != 16 {
		t.Errorf("total = %d, want 16", got)
	}
	if got := k.Total(L2ReadMisses); got != 0 {
		t.Errorf("untouched event total = %d, want 0", got)
	}
}

func TestReset(t *testing.T) {
	var k Counters
	k.Add(Cycles, 0, 99)
	k.Reset()
	if k.Total(Cycles) != 0 {
		t.Error("reset did not zero counters")
	}
}

func TestPanicsOnInvalidArgs(t *testing.T) {
	var k Counters
	for name, fn := range map[string]func(){
		"add invalid event": func() { k.Add(Event(200), 0, 1) },
		"add invalid cpu":   func() { k.Add(Cycles, 2, 1) },
		"add negative cpu":  func() { k.Add(Cycles, -1, 1) },
		"get invalid event": func() { k.Get(Event(200), 0) },
		"get invalid cpu":   func() { k.Get(Cycles, 7) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSnapshotIsolation(t *testing.T) {
	var k Counters
	k.Add(L2Misses, 0, 3)
	s := k.Snapshot()
	k.Add(L2Misses, 0, 4)
	if s.Get(L2Misses, 0) != 3 {
		t.Error("snapshot mutated by later Add")
	}
	if k.Get(L2Misses, 0) != 7 {
		t.Error("live counter wrong")
	}
}

func TestDelta(t *testing.T) {
	var k Counters
	k.Add(Cycles, 0, 100)
	before := k.Snapshot()
	k.Add(Cycles, 0, 50)
	k.Add(Cycles, 1, 7)
	d := k.Snapshot().Delta(before)
	if d.Get(Cycles, 0) != 50 || d.Get(Cycles, 1) != 7 {
		t.Errorf("delta = %d/%d, want 50/7", d.Get(Cycles, 0), d.Get(Cycles, 1))
	}
}

func TestDeltaUnderflowPanics(t *testing.T) {
	var k Counters
	k.Add(Cycles, 0, 5)
	later := k.Snapshot()
	k.Add(Cycles, 0, 5)
	evenLater := k.Snapshot()
	defer func() {
		if recover() == nil {
			t.Fatal("delta underflow did not panic")
		}
	}()
	later.Delta(evenLater)
}

func TestFormatShowsOnlyNonZero(t *testing.T) {
	var k Counters
	k.Add(UopsRetired, 0, 42)
	out := k.Snapshot().Format()
	if !strings.Contains(out, "uops_retired") {
		t.Error("format missing counted event")
	}
	if strings.Contains(out, "l2_read_misses") {
		t.Error("format shows zero event")
	}
	if !strings.Contains(out, "42") {
		t.Error("format missing value")
	}
}

// Property: Total always equals the sum of per-CPU Gets, and Delta of a
// snapshot with itself is zero.
func TestCounterAlgebra_Property(t *testing.T) {
	f := func(a, b uint32, evSeed uint8) bool {
		ev := Event(int(evSeed) % NumEvents)
		var k Counters
		k.Add(ev, 0, uint64(a))
		k.Add(ev, 1, uint64(b))
		s := k.Snapshot()
		if s.Total(ev) != uint64(a)+uint64(b) {
			return false
		}
		z := s.Delta(s)
		return z.Total(ev) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
