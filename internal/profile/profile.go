// Package profile reproduces the paper's two instrumentation methodologies
// in simulator form:
//
//   - The Pin-based dynamic instruction-mix analysis behind Table 1: a
//     Collector attached to the machine's retirement stage attributes every
//     retired µop to the execution subunit it used, yielding per-thread
//     utilisation percentages for ALUs, FP_ADD, FP_MUL, FP_MOVE, LOAD and
//     STORE.
//
//   - The Valgrind-based memory profiling of §3.2 used to identify
//     delinquent loads: static instruction sites (isa.Tag) are ranked by
//     the demand L2 misses attributed to them, and the smallest prefix
//     covering a target fraction (the paper isolates 92–96% of misses) is
//     selected for precomputation-thread construction.
package profile

import (
	"fmt"
	"sort"
	"strings"

	"smtexplore/internal/isa"
	"smtexplore/internal/mem"
	"smtexplore/internal/smt"
)

// Collector accumulates the dynamic instruction mix per hardware context,
// in the spirit of the paper's Pin tool. Spin-loop µops injected by the
// simulator are counted separately — the paper's profiling of the original
// executables likewise excluded the synchronisation primitives ("not
// included in the profiling process").
type Collector struct {
	units [smt.NumContexts][isa.NumUnits]uint64
	ops   [smt.NumContexts][isa.NumOps]uint64
	total [smt.NumContexts]uint64
	spin  [smt.NumContexts]uint64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Attach installs the collector on m's retirement observer. Only one
// observer can be active per machine; Attach replaces any previous one.
func (c *Collector) Attach(m *smt.Machine) {
	m.OnRetire(c.Observe)
}

// Observe records one retirement (exported so callers can chain
// observers).
func (c *Collector) Observe(ri smt.RetireInfo) {
	if ri.Spin {
		c.spin[ri.Tid]++
		return
	}
	c.total[ri.Tid]++
	c.ops[ri.Tid][ri.Instr.Op]++
	if ri.Unit != isa.UnitNone {
		c.units[ri.Tid][ri.Unit]++
	}
}

// Total returns the profiled (non-spin) instruction count of context tid.
func (c *Collector) Total(tid int) uint64 { return c.total[tid] }

// SpinUops returns the spin-loop µops excluded from the mix.
func (c *Collector) SpinUops(tid int) uint64 { return c.spin[tid] }

// UnitCount returns retired µops of context tid that used subunit u.
func (c *Collector) UnitCount(tid int, u isa.Unit) uint64 { return c.units[tid][u] }

// OpCount returns retired µops of context tid with op class o.
func (c *Collector) OpCount(tid int, o isa.Op) uint64 { return c.ops[tid][o] }

// Row is the Table 1 grouping of execution subunits.
type Row uint8

// Table 1 rows.
const (
	RowALUs Row = iota // ALU0 + ALU1 + slow int
	RowFPAdd
	RowFPMul
	RowFPDiv
	RowFPMove
	RowLoad
	RowStore
	numRows
)

// NumRows is the number of Table 1 rows.
const NumRows = int(numRows)

var rowNames = [NumRows]string{
	"ALUs", "FP_ADD", "FP_MUL", "FP_DIV", "FP_MOVE", "LOAD", "STORE",
}

func (r Row) String() string {
	if int(r) < len(rowNames) {
		return rowNames[r]
	}
	return fmt.Sprintf("row(%d)", uint8(r))
}

// Rows returns the Table 1 rows in order.
func Rows() []Row {
	out := make([]Row, NumRows)
	for i := range out {
		out[i] = Row(i)
	}
	return out
}

// rowUnits maps each row to its subunits.
var rowUnits = [NumRows][]isa.Unit{
	RowALUs:   {isa.UnitALU0, isa.UnitALU1, isa.UnitSlowInt},
	RowFPAdd:  {isa.UnitFPAdd},
	RowFPMul:  {isa.UnitFPMul},
	RowFPDiv:  {isa.UnitFPDiv},
	RowFPMove: {isa.UnitFPMove},
	RowLoad:   {isa.UnitLoad},
	RowStore:  {isa.UnitStore},
}

// RowShare returns the percentage of context tid's profiled instructions
// that used the subunits of row r — the cells of Table 1.
func (c *Collector) RowShare(tid int, r Row) float64 {
	if c.total[tid] == 0 {
		return 0
	}
	var n uint64
	for _, u := range rowUnits[r] {
		n += c.units[tid][u]
	}
	return 100 * float64(n) / float64(c.total[tid])
}

// ALU0Share returns the percentage of profiled instructions executed on
// ALU0 specifically — the serialisation bottleneck §5.3 identifies for
// logical-op-heavy code.
func (c *Collector) ALU0Share(tid int) float64 {
	if c.total[tid] == 0 {
		return 0
	}
	return 100 * float64(c.units[tid][isa.UnitALU0]) / float64(c.total[tid])
}

// Format renders the per-context mix as an aligned table.
func (c *Collector) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %12s %12s\n", "EX. UNIT", "cpu0", "cpu1")
	for _, r := range Rows() {
		fmt.Fprintf(&b, "%-10s %11.2f%% %11.2f%%\n", r.String(), c.RowShare(0, r), c.RowShare(1, r))
	}
	fmt.Fprintf(&b, "%-10s %12d %12d\n", "Total", c.total[0], c.total[1])
	return b.String()
}

// TagMiss pairs a static load site with its attributed demand L2 misses.
type TagMiss struct {
	Tag    isa.Tag
	Misses uint64
}

// DelinquentLoads ranks static sites by attributed L2 misses and returns
// the smallest prefix covering at least frac of all attributed misses —
// the paper's delinquent-load selection (it isolates the instructions
// causing 92–96% of L2 misses). frac must be in (0, 1].
func DelinquentLoads(h *mem.Hierarchy, frac float64) []TagMiss {
	if frac <= 0 || frac > 1 {
		panic(fmt.Sprintf("profile: coverage fraction %v out of (0,1]", frac))
	}
	all := h.TagMisses()
	ranked := make([]TagMiss, 0, len(all))
	var total uint64
	for tag, n := range all {
		ranked = append(ranked, TagMiss{Tag: tag, Misses: n})
		total += n
	}
	if total == 0 {
		return nil
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Misses != ranked[j].Misses {
			return ranked[i].Misses > ranked[j].Misses
		}
		return ranked[i].Tag < ranked[j].Tag
	})
	need := uint64(frac * float64(total))
	var acc uint64
	for i, tm := range ranked {
		acc += tm.Misses
		if acc >= need {
			return ranked[:i+1]
		}
	}
	return ranked
}

// Coverage returns the fraction of all attributed misses covered by the
// given tag set.
func Coverage(h *mem.Hierarchy, tags []TagMiss) float64 {
	all := h.TagMisses()
	var total, covered uint64
	for _, n := range all {
		total += n
	}
	if total == 0 {
		return 0
	}
	for _, tm := range tags {
		covered += all[tm.Tag]
	}
	return float64(covered) / float64(total)
}
