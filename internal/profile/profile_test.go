package profile

import (
	"math"
	"strings"
	"testing"

	"smtexplore/internal/isa"
	"smtexplore/internal/mem"
	"smtexplore/internal/smt"
	"smtexplore/internal/trace"
)

func TestCollectorMix(t *testing.T) {
	// 2 fadd, 1 fmul, 4 loads, 1 store, 2 ilogic = 10 instructions.
	p := trace.Generate(func(e *trace.Emitter) {
		e.ALU(isa.FAdd, isa.F(0), isa.F(6), isa.F(7))
		e.ALU(isa.FAdd, isa.F(1), isa.F(6), isa.F(7))
		e.ALU(isa.FMul, isa.F(2), isa.F(6), isa.F(7))
		for i := 0; i < 4; i++ {
			e.Load(isa.F(3), uint64(i)*64)
		}
		e.Store(isa.F(0), 4096)
		e.ALU(isa.ILogic, isa.R(0), isa.R(6), isa.R(7))
		e.ALU(isa.ILogic, isa.R(1), isa.R(6), isa.R(7))
	})
	m := smt.New(smt.DefaultConfig())
	c := NewCollector()
	c.Attach(m)
	m.LoadProgram(0, p)
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if c.Total(0) != 10 {
		t.Fatalf("total = %d, want 10", c.Total(0))
	}
	checks := map[Row]float64{
		RowFPAdd: 20, RowFPMul: 10, RowLoad: 40, RowStore: 10, RowALUs: 20,
	}
	for row, want := range checks {
		if got := c.RowShare(0, row); math.Abs(got-want) > 0.01 {
			t.Errorf("%v share = %.2f%%, want %.0f%%", row, got, want)
		}
	}
	// Logical ops execute only on ALU0.
	if got := c.ALU0Share(0); math.Abs(got-20) > 0.01 {
		t.Errorf("ALU0 share = %.2f%%, want 20%%", got)
	}
	out := c.Format()
	if !strings.Contains(out, "FP_ADD") || !strings.Contains(out, "Total") {
		t.Error("Format missing rows")
	}
}

func TestCollectorExcludesSpinUops(t *testing.T) {
	const cell = isa.Cell(1)
	producer := trace.Generate(func(e *trace.Emitter) {
		for i := 0; i < 2000; i++ {
			e.ALU(isa.FAdd, isa.F(i%4), isa.F(6), isa.F(7))
		}
		e.SetFlag(cell, 1, isa.CellAddr(cell))
	})
	waiter := trace.Generate(func(e *trace.Emitter) {
		e.Spin(cell, isa.CmpEQ, 1)
		e.ALU(isa.IAdd, isa.R(0), isa.R(6), isa.R(7))
	})
	m := smt.New(smt.DefaultConfig())
	c := NewCollector()
	c.Attach(m)
	m.LoadProgram(0, producer)
	m.LoadProgram(1, waiter)
	if _, err := m.Run(20_000_000); err != nil {
		t.Fatal(err)
	}
	if c.Total(1) != 1 {
		t.Errorf("waiter profiled total = %d, want 1 (spin µops excluded)", c.Total(1))
	}
	if c.SpinUops(1) == 0 {
		t.Error("spin µops not tracked")
	}
}

func delinquentFixture(t *testing.T) *mem.Hierarchy {
	t.Helper()
	h := mem.NewHierarchy(mem.HierarchyConfig{
		L1:         mem.CacheConfig{Size: 512, LineSize: 64, Assoc: 2, Latency: 2},
		L2:         mem.CacheConfig{Size: 4 << 10, LineSize: 64, Assoc: 4, Latency: 18},
		MemLatency: 250,
		MSHRs:      8,
	})
	now := uint64(0)
	miss := func(tag isa.Tag, n int) {
		for i := 0; i < n; i++ {
			h.Access(now, 0, uint64(tag)<<24|uint64(i)<<12, false, tag)
			now += 600
		}
	}
	miss(1, 90) // dominant delinquent load
	miss(2, 6)
	miss(3, 3)
	miss(4, 1)
	return h
}

func TestDelinquentLoadsCoverage(t *testing.T) {
	h := delinquentFixture(t)
	top := DelinquentLoads(h, 0.90)
	if len(top) != 1 || top[0].Tag != 1 {
		t.Fatalf("top = %+v, want only tag 1", top)
	}
	if cov := Coverage(h, top); cov < 0.90 {
		t.Errorf("coverage = %.2f, want ≥ 0.90", cov)
	}
	// Paper-style 96% needs the second site too.
	top96 := DelinquentLoads(h, 0.96)
	if len(top96) != 2 || top96[1].Tag != 2 {
		t.Fatalf("96%% selection = %+v, want tags 1,2", top96)
	}
	all := DelinquentLoads(h, 1.0)
	if len(all) != 4 {
		t.Fatalf("full selection has %d sites, want 4", len(all))
	}
	if cov := Coverage(h, all); math.Abs(cov-1) > 1e-9 {
		t.Errorf("full coverage = %v, want 1", cov)
	}
}

func TestDelinquentLoadsEmptyAndInvalid(t *testing.T) {
	h := mem.NewHierarchy(mem.DefaultHierarchy())
	if got := DelinquentLoads(h, 0.9); got != nil {
		t.Errorf("no-miss hierarchy returned %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("frac 0 did not panic")
		}
	}()
	DelinquentLoads(h, 0)
}
