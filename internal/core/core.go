// Package core is the public facade of the reproduction library: it ties
// together the SMT processor simulator, the synthetic-stream generators,
// the benchmark kernels and the experiment harness behind a small API
// that the command-line tools, the examples and downstream users drive.
//
// The building blocks remain importable individually (internal/smt,
// internal/streams, internal/kernels/..., internal/experiments); core
// provides the common compositions:
//
//	// Co-run two instruction streams and read their CPIs.
//	r, _ := core.CoExecute(core.StreamMachine(), spec1, spec2)
//
//	// Run a benchmark kernel in one of the paper's modes.
//	met, _ := core.RunBenchmark(core.BenchmarkMM, kernels.TLPPfetch, 64)
package core

import (
	"fmt"

	"smtexplore/internal/experiments"
	"smtexplore/internal/kernels"
	"smtexplore/internal/kernels/bt"
	"smtexplore/internal/kernels/cg"
	"smtexplore/internal/kernels/lu"
	"smtexplore/internal/kernels/mm"
	"smtexplore/internal/perfmon"
	"smtexplore/internal/smt"
	"smtexplore/internal/streams"
	"smtexplore/internal/trace"
)

// StreamMachine returns the processor configuration used for the
// Section 4 stream experiments.
func StreamMachine() smt.Config { return experiments.StreamMachineConfig() }

// KernelMachine returns the scaled processor configuration used for the
// Section 5 benchmark experiments.
func KernelMachine() smt.Config { return experiments.KernelMachineConfig() }

// StreamResult reports one co-execution measurement.
type StreamResult struct {
	// CPI is the per-context cycles-per-instruction over the window.
	CPI []float64
	// Slowdown is CPI[i] relative to each stream running alone (only
	// populated by CoExecuteWithBaseline).
	Slowdown []float64
}

// CoExecute runs one or two synthetic streams for the standard
// measurement window and returns their CPIs.
func CoExecute(mcfg smt.Config, specs ...streams.Spec) (StreamResult, error) {
	cpi, err := experiments.MeasureCPI(mcfg, specs, experiments.StreamWindowCycles)
	if err != nil {
		return StreamResult{}, err
	}
	return StreamResult{CPI: cpi}, nil
}

// CoExecuteWithBaseline runs the pair and additionally measures each
// stream alone, returning the paper's slowdown factors.
func CoExecuteWithBaseline(mcfg smt.Config, a, b streams.Spec) (StreamResult, error) {
	duo, err := experiments.MeasureCPI(mcfg, []streams.Spec{a, b}, experiments.StreamWindowCycles)
	if err != nil {
		return StreamResult{}, err
	}
	out := StreamResult{CPI: duo, Slowdown: make([]float64, 2)}
	for i, sp := range []streams.Spec{a, b} {
		solo, err := experiments.MeasureCPI(mcfg, []streams.Spec{sp}, experiments.StreamWindowCycles)
		if err != nil {
			return StreamResult{}, err
		}
		out.Slowdown[i] = duo[i]/solo[0] - 1
	}
	return out, nil
}

// Benchmark identifies one of the paper's four applications.
type Benchmark uint8

// The paper's benchmarks.
const (
	BenchmarkMM Benchmark = iota
	BenchmarkLU
	BenchmarkCG
	BenchmarkBT
)

func (b Benchmark) String() string {
	switch b {
	case BenchmarkMM:
		return "mm"
	case BenchmarkLU:
		return "lu"
	case BenchmarkCG:
		return "cg"
	case BenchmarkBT:
		return "bt"
	}
	return fmt.Sprintf("benchmark(%d)", uint8(b))
}

// NewBuilder constructs a kernel builder for the benchmark. size selects
// the matrix dimension for MM/LU; CG and BT use their scaled defaults
// (pass 0).
func NewBuilder(b Benchmark, size int) (experiments.Builder, error) {
	switch b {
	case BenchmarkMM:
		return mm.New(mm.DefaultConfig(size))
	case BenchmarkLU:
		return lu.New(lu.DefaultConfig(size))
	case BenchmarkCG:
		if size != 0 {
			cfg := cg.DefaultConfig()
			cfg.N = size
			return cg.New(cfg)
		}
		return cg.New(cg.DefaultConfig())
	case BenchmarkBT:
		if size != 0 {
			cfg := bt.DefaultConfig()
			cfg.G = size
			return bt.New(cfg)
		}
		return bt.New(bt.DefaultConfig())
	}
	return nil, fmt.Errorf("core: unknown benchmark %d", uint8(b))
}

// RunBenchmark builds and executes the benchmark in the given mode on the
// kernel machine and returns the paper's monitored events.
func RunBenchmark(b Benchmark, mode kernels.Mode, size int) (experiments.KernelMetrics, error) {
	builder, err := NewBuilder(b, size)
	if err != nil {
		return experiments.KernelMetrics{}, err
	}
	label := b.String()
	if size != 0 {
		label = fmt.Sprintf("%s N=%d", b, size)
	}
	return experiments.RunKernel(builder, mode, KernelMachine(), label)
}

// RunProgram executes arbitrary user programs (one per hardware context;
// nil for an idle context) on a machine with the given configuration,
// returning the machine for counter inspection.
func RunProgram(mcfg smt.Config, maxCycles uint64, progs ...trace.Program) (*smt.Machine, error) {
	if len(progs) == 0 || len(progs) > smt.NumContexts {
		return nil, fmt.Errorf("core: %d programs (want 1 or 2)", len(progs))
	}
	m := smt.New(mcfg)
	for i, p := range progs {
		if p != nil {
			m.LoadProgram(i, p)
		}
	}
	if _, err := m.Run(maxCycles); err != nil {
		return m, err
	}
	return m, nil
}

// IPC reads instructions-per-cycle for a context from a finished machine.
func IPC(m *smt.Machine, tid int) float64 {
	c := m.Counters()
	cyc := c.Get(perfmon.Cycles, tid)
	if cyc == 0 {
		return 0
	}
	return float64(c.Get(perfmon.InstrRetired, tid)) / float64(cyc)
}
