package core

import (
	"testing"

	"smtexplore/internal/isa"
	"smtexplore/internal/kernels"
	"smtexplore/internal/streams"
	"smtexplore/internal/trace"
)

func TestCoExecute(t *testing.T) {
	r, err := CoExecute(StreamMachine(),
		streams.Spec{Kind: streams.FAddS, ILP: streams.MaxILP},
		streams.Spec{Kind: streams.FMulS, ILP: streams.MaxILP})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.CPI) != 2 || r.CPI[0] <= 0 || r.CPI[1] <= 0 {
		t.Fatalf("bad result %+v", r)
	}
}

func TestCoExecuteWithBaseline(t *testing.T) {
	r, err := CoExecuteWithBaseline(StreamMachine(),
		streams.Spec{Kind: streams.IAddS, ILP: streams.MaxILP},
		streams.Spec{Kind: streams.IAddS, ILP: streams.MaxILP})
	if err != nil {
		t.Fatal(err)
	}
	// iadd×iadd co-execution ≈ serialisation: ~100% slowdown each.
	for i, s := range r.Slowdown {
		if s < 0.6 || s > 1.5 {
			t.Errorf("slowdown[%d] = %.2f, want ≈1", i, s)
		}
	}
}

func TestNewBuilderAllBenchmarks(t *testing.T) {
	cases := []struct {
		b    Benchmark
		size int
	}{
		{BenchmarkMM, 32}, {BenchmarkLU, 32}, {BenchmarkCG, 0}, {BenchmarkBT, 0},
		{BenchmarkCG, 256}, {BenchmarkBT, 6},
	}
	for _, c := range cases {
		builder, err := NewBuilder(c.b, c.size)
		if err != nil {
			t.Fatalf("%v size %d: %v", c.b, c.size, err)
		}
		if builder.Name() != c.b.String() {
			t.Errorf("builder name %q for %v", builder.Name(), c.b)
		}
		if len(builder.Modes()) < 3 {
			t.Errorf("%v has %d modes", c.b, len(builder.Modes()))
		}
	}
	if _, err := NewBuilder(Benchmark(9), 0); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunBenchmark(t *testing.T) {
	met, err := RunBenchmark(BenchmarkMM, kernels.Serial, 32)
	if err != nil {
		t.Fatal(err)
	}
	if met.Cycles == 0 || met.UopsRetired == 0 {
		t.Fatalf("empty metrics %+v", met)
	}
	if met.Kernel != "mm" || met.Mode != kernels.Serial {
		t.Errorf("metrics identity wrong: %+v", met)
	}
}

func TestRunProgramAndIPC(t *testing.T) {
	p := trace.Generate(func(e *trace.Emitter) {
		for i := 0; i < 1000; i++ {
			e.ALU(isa.IAdd, isa.R(i%6), isa.R(10), isa.R(11))
		}
	})
	m, err := RunProgram(StreamMachine(), 1_000_000, p)
	if err != nil {
		t.Fatal(err)
	}
	if ipc := IPC(m, 0); ipc < 1.5 {
		t.Errorf("iadd IPC = %.2f, want near the front-end bound", ipc)
	}
	if ipc := IPC(m, 1); ipc != 0 {
		t.Errorf("idle context IPC = %.2f", ipc)
	}
	if _, err := RunProgram(StreamMachine(), 100); err == nil {
		t.Error("no programs accepted")
	}
}
