// Package isa defines the micro-operation (µop) vocabulary executed by the
// simulated SMT processor: operation classes, architectural registers,
// issue ports, execution subunits, and the per-operation latency and
// throughput tables.
//
// The tables model a NetBurst-style (Pentium 4 / Xeon "Northwood") core as
// described in the paper and the IA-32 optimisation manual: two double-speed
// integer ALUs (only ALU0 executes logical operations), a single FP execute
// unit on port 1 shared by fadd/fmul/fdiv, an FP move unit on port 0, one
// load port and one store port.
package isa

import "fmt"

// Op is a micro-operation class.
type Op uint8

// Operation classes. The arithmetic and memory classes correspond to the
// synthetic instruction streams of Section 4 of the paper; the tail of the
// enum holds control/synchronisation operations interpreted specially by
// the simulator front end and retire stage.
const (
	// Nop retires without using an execution unit.
	Nop Op = iota

	// Integer arithmetic (register-to-register).
	IAdd
	ISub
	ILogic // and/or/xor/shift with binary masks; executes only on ALU0
	IMul
	IDiv

	// Floating-point arithmetic (register-to-register, 32-bit scalars in
	// the paper's streams; the class is what matters, not the width).
	FAdd
	FSub
	FMul
	FDiv
	FMove

	// Memory operations. The register bank of Dst/Src distinguishes the
	// paper's iload/fload and istore/fstore variants.
	Load
	Store

	// Branch models loop-closing conditional jumps. Branches are assumed
	// correctly predicted (the kernels' loops are highly regular); the
	// only modelled misprediction-like event is the memory-order
	// violation flush on spin-wait exit.
	Branch

	// Pause is the IA-32 spin-wait hint: it de-pipelines the spin loop,
	// occupying the thread for several cycles without consuming issue
	// ports or scheduler entries aggressively.
	Pause

	// SpinWait is a declarative busy-wait on a synchronisation cell.
	// The front end expands it into (load, cmp, branch[, pause]) µop
	// groups every iteration until the cell's retired value satisfies
	// the wait condition; completion injects a memory-order-violation
	// pipeline flush, as observed on hyper-threaded processors.
	SpinWait

	// HaltWait is a declarative wait that puts the logical processor
	// into the halted state: its statically partitioned resources are
	// relinquished to the sibling thread and it wakes (after an IPI
	// delay) when the awaited cell condition becomes true.
	HaltWait

	// FlagStore is a store that also deposits a value into a
	// synchronisation cell at retirement, making it visible to
	// SpinWait/HaltWait on the sibling thread. It occupies the store
	// port and a store-buffer entry like any other store.
	FlagStore

	// Prefetch is the non-binding software-prefetch instruction
	// (prefetchnta-style): it occupies the load port and starts a line
	// fill but completes at address-generation latency without waiting
	// for the data, has no destination register, and is dropped silently
	// when no fill resources are free. The paper's conclusion points at
	// embedding these in the working thread as the scheme that "combines
	// low number of µops with reduced cache misses".
	Prefetch

	numOps
)

// NumOps is the number of distinct operation classes.
const NumOps = int(numOps)

var opNames = [NumOps]string{
	Nop:       "nop",
	IAdd:      "iadd",
	ISub:      "isub",
	ILogic:    "ilogic",
	IMul:      "imul",
	IDiv:      "idiv",
	FAdd:      "fadd",
	FSub:      "fsub",
	FMul:      "fmul",
	FDiv:      "fdiv",
	FMove:     "fmove",
	Load:      "load",
	Store:     "store",
	Branch:    "branch",
	Pause:     "pause",
	SpinWait:  "spinwait",
	HaltWait:  "haltwait",
	FlagStore: "flagstore",
	Prefetch:  "prefetch",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined operation class.
func (o Op) Valid() bool { return o < numOps }

// IsMem reports whether the operation accesses the data cache.
func (o Op) IsMem() bool {
	return o == Load || o == Store || o == FlagStore || o == Prefetch
}

// IsStore reports whether the operation occupies a store-buffer entry.
func (o Op) IsStore() bool { return o == Store || o == FlagStore }

// IsArith reports whether the operation is one of the paper's arithmetic
// stream classes.
func (o Op) IsArith() bool {
	switch o {
	case IAdd, ISub, ILogic, IMul, IDiv, FAdd, FSub, FMul, FDiv, FMove:
		return true
	}
	return false
}

// IsFP reports whether the operation executes in the floating-point
// subunits.
func (o Op) IsFP() bool {
	switch o {
	case FAdd, FSub, FMul, FDiv, FMove:
		return true
	}
	return false
}

// IsSync reports whether the operation is one of the declarative
// synchronisation operations interpreted by the simulator rather than
// issued to an execution port directly.
func (o Op) IsSync() bool {
	switch o {
	case SpinWait, HaltWait, Pause:
		return true
	}
	return false
}

// Port is an issue port of the out-of-order core.
type Port uint8

// Issue ports, following Figure 6 of the paper.
const (
	PortNone Port = iota // does not use an issue port (nop, pause, ...)
	Port0                // ALU0 (double speed) + FP move
	Port1                // ALU1 (double speed) + FP execute + slow int
	Port2                // load
	Port3                // store address/data
	numPorts
)

// NumPorts is the number of distinct issue ports, including PortNone.
const NumPorts = int(numPorts)

var portNames = [NumPorts]string{"none", "port0", "port1", "port2", "port3"}

func (p Port) String() string {
	if int(p) < len(portNames) {
		return portNames[p]
	}
	return fmt.Sprintf("port(%d)", uint8(p))
}

// Unit is an execution subunit, the granularity at which Table 1 of the
// paper reports utilisation.
type Unit uint8

// Execution subunits.
const (
	UnitNone    Unit = iota
	UnitALU0         // double-speed ALU; the only ALU wired for logical ops
	UnitALU1         // double-speed ALU
	UnitSlowInt      // imul/idiv unit behind port 1
	UnitFPAdd        // fadd/fsub pipeline in the FP execute unit
	UnitFPMul        // fmul pipeline in the FP execute unit
	UnitFPDiv        // non-pipelined divider in the FP execute unit
	UnitFPMove       // FP move/exchange unit on port 0
	UnitLoad         // load port AGU + cache access
	UnitStore        // store port
	numUnits
)

// NumUnits is the number of distinct execution subunits.
const NumUnits = int(numUnits)

var unitNames = [NumUnits]string{
	"none", "ALU0", "ALU1", "SLOW_INT", "FP_ADD", "FP_MUL", "FP_DIV",
	"FP_MOVE", "LOAD", "STORE",
}

func (u Unit) String() string {
	if int(u) < len(unitNames) {
		return unitNames[u]
	}
	return fmt.Sprintf("unit(%d)", uint8(u))
}

// Spec describes how an operation class executes.
type Spec struct {
	// Ports lists the issue ports the op may be dispatched to. Most ops
	// have one choice; plain integer ALU ops may use either double-speed
	// ALU (port 0 or port 1).
	Ports []Port
	// UnitFor maps each usable port to the subunit exercised there
	// (indexed by Port; UnitNone for unusable ports).
	UnitFor [NumPorts]Unit
	// Latency is the cycle count from issue to result availability.
	Latency int
	// Recurrence is the initiation interval of the subunit for this op:
	// 1 means fully pipelined, Latency means unpipelined. The
	// double-speed ALUs are modelled as accepting two µops per cycle via
	// PortWidth rather than a fractional recurrence.
	Recurrence int
}

// unitFor builds the port→unit table from pairs.
func unitFor(pairs ...any) [NumPorts]Unit {
	var t [NumPorts]Unit
	for i := 0; i < len(pairs); i += 2 {
		t[pairs[i].(Port)] = pairs[i+1].(Unit)
	}
	return t
}

// specs is indexed by Op. Latencies follow the IA-32 optimisation manual
// for the Northwood core (whose 2.8 GHz Xeon sibling the paper measures).
var specs = [NumOps]Spec{
	Nop: {Latency: 1, Recurrence: 1},
	IAdd: {
		Ports:      []Port{Port0, Port1},
		UnitFor:    unitFor(Port0, UnitALU0, Port1, UnitALU1),
		Latency:    1,
		Recurrence: 1,
	},
	ISub: {
		Ports:      []Port{Port0, Port1},
		UnitFor:    unitFor(Port0, UnitALU0, Port1, UnitALU1),
		Latency:    1,
		Recurrence: 1,
	},
	ILogic: {
		// Logical operations execute only on ALU0 (paper §5.3): this is
		// the serialisation bottleneck for the blocked-array-layout MM.
		Ports:      []Port{Port0},
		UnitFor:    unitFor(Port0, UnitALU0),
		Latency:    1,
		Recurrence: 1,
	},
	IMul: {
		Ports:      []Port{Port1},
		UnitFor:    unitFor(Port1, UnitSlowInt),
		Latency:    15,
		Recurrence: 5,
	},
	IDiv: {
		// NetBurst executes integer divides on the FP divider, so idiv
		// contends with fdiv — and leaves the imul unit alone, which is
		// why the paper finds imul "almost unaffected by co-existing
		// threads".
		Ports:      []Port{Port1},
		UnitFor:    unitFor(Port1, UnitFPDiv),
		Latency:    56,
		Recurrence: 56, // unpipelined
	},
	FAdd: {
		Ports:      []Port{Port1},
		UnitFor:    unitFor(Port1, UnitFPAdd),
		Latency:    5,
		Recurrence: 1,
	},
	FSub: {
		Ports:      []Port{Port1},
		UnitFor:    unitFor(Port1, UnitFPAdd),
		Latency:    5,
		Recurrence: 1,
	},
	FMul: {
		Ports:      []Port{Port1},
		UnitFor:    unitFor(Port1, UnitFPMul),
		Latency:    7,
		Recurrence: 2,
	},
	FDiv: {
		Ports:      []Port{Port1},
		UnitFor:    unitFor(Port1, UnitFPDiv),
		Latency:    38,
		Recurrence: 38, // unpipelined
	},
	FMove: {
		Ports:      []Port{Port0},
		UnitFor:    unitFor(Port0, UnitFPMove),
		Latency:    6,
		Recurrence: 1,
	},
	Load: {
		Ports:      []Port{Port2},
		UnitFor:    unitFor(Port2, UnitLoad),
		Latency:    2, // AGU + L1 pipeline; cache hierarchy adds miss latency
		Recurrence: 1,
	},
	Store: {
		Ports:      []Port{Port3},
		UnitFor:    unitFor(Port3, UnitStore),
		Latency:    2,
		Recurrence: 1,
	},
	FlagStore: {
		Ports:      []Port{Port3},
		UnitFor:    unitFor(Port3, UnitStore),
		Latency:    2,
		Recurrence: 1,
	},
	Branch: {
		Ports:      []Port{Port0},
		UnitFor:    unitFor(Port0, UnitALU0),
		Latency:    1,
		Recurrence: 1,
	},
	Prefetch: {
		Ports:      []Port{Port2},
		UnitFor:    unitFor(Port2, UnitLoad),
		Latency:    2, // AGU only; the fill proceeds asynchronously
		Recurrence: 1,
	},
	Pause:    {Latency: 10, Recurrence: 10}, // de-pipelined spin delay
	SpinWait: {Latency: 1, Recurrence: 1},   // expanded by the front end
	HaltWait: {Latency: 1, Recurrence: 1},   // interpreted by the front end
}

// SpecOf returns the execution specification of an operation class.
func SpecOf(o Op) Spec {
	if !o.Valid() {
		panic(fmt.Sprintf("isa: invalid op %d", uint8(o)))
	}
	return specs[o]
}

// Latency returns the issue-to-result latency of o in cycles.
func (o Op) Latency() int { return SpecOf(o).Latency }

// PortWidth is the number of µops a port accepts per cycle when driving a
// double-speed ALU. Ports 0 and 1 accept two ALU µops per cycle; a
// same-cycle FP or slow-int µop on the port consumes the whole cycle.
func PortWidth(p Port, u Unit) int {
	if (p == Port0 && u == UnitALU0) || (p == Port1 && u == UnitALU1) {
		return 2
	}
	return 1
}

// UnitOfStream maps one of the paper's stream/arithmetic classes to the
// subunit it exercises for Table 1-style accounting. Loads and stores map
// to the LOAD/STORE units; IAdd/ISub/ILogic/Branch group under the ALUs.
func UnitOfStream(o Op) Unit {
	switch o {
	case IAdd, ISub, ILogic, Branch:
		return UnitALU0 // representative; profile distinguishes ALU0/ALU1 by issue
	case IMul:
		return UnitSlowInt
	case IDiv:
		return UnitFPDiv
	case FAdd, FSub:
		return UnitFPAdd
	case FMul:
		return UnitFPMul
	case FDiv:
		return UnitFPDiv
	case FMove:
		return UnitFPMove
	case Load, Prefetch:
		return UnitLoad
	case Store, FlagStore:
		return UnitStore
	}
	return UnitNone
}
