package isa

import (
	"testing"
	"testing/quick"
)

func TestOpStrings(t *testing.T) {
	seen := map[string]Op{}
	for o := Op(0); o < numOps; o++ {
		s := o.String()
		if s == "" {
			t.Fatalf("op %d has empty name", o)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("ops %v and %v share the name %q", prev, o, s)
		}
		seen[s] = o
	}
	if got := Op(200).String(); got != "op(200)" {
		t.Errorf("out-of-range op name = %q", got)
	}
}

func TestSpecTablesComplete(t *testing.T) {
	for o := Op(0); o < numOps; o++ {
		sp := SpecOf(o)
		if sp.Latency <= 0 {
			t.Errorf("%v: non-positive latency %d", o, sp.Latency)
		}
		if sp.Recurrence <= 0 {
			t.Errorf("%v: non-positive recurrence %d", o, sp.Recurrence)
		}
		if sp.Recurrence > sp.Latency {
			t.Errorf("%v: recurrence %d exceeds latency %d", o, sp.Recurrence, sp.Latency)
		}
		mapped := 0
		for _, p := range sp.Ports {
			if sp.UnitFor[p] == UnitNone {
				t.Errorf("%v: port %v has no unit mapping", o, p)
			}
		}
		for p := 0; p < NumPorts; p++ {
			if sp.UnitFor[p] != UnitNone {
				mapped++
			}
		}
		if mapped != len(sp.Ports) {
			t.Errorf("%v: UnitFor has %d entries for %d ports", o, mapped, len(sp.Ports))
		}
	}
}

func TestSpecOfPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SpecOf(invalid) did not panic")
		}
	}()
	SpecOf(numOps)
}

func TestLogicalOpsOnlyOnALU0(t *testing.T) {
	sp := SpecOf(ILogic)
	if len(sp.Ports) != 1 || sp.Ports[0] != Port0 {
		t.Fatalf("ILogic ports = %v, want only Port0", sp.Ports)
	}
	if sp.UnitFor[Port0] != UnitALU0 {
		t.Fatalf("ILogic unit = %v, want ALU0", sp.UnitFor[Port0])
	}
}

func TestPlainIntALUHasTwoPorts(t *testing.T) {
	for _, o := range []Op{IAdd, ISub} {
		sp := SpecOf(o)
		if len(sp.Ports) != 2 {
			t.Fatalf("%v ports = %v, want both double-speed ALUs", o, sp.Ports)
		}
	}
}

func TestFPSharesPort1(t *testing.T) {
	for _, o := range []Op{FAdd, FSub, FMul, FDiv} {
		sp := SpecOf(o)
		if len(sp.Ports) != 1 || sp.Ports[0] != Port1 {
			t.Fatalf("%v ports = %v, want only Port1 (single FP execute unit)", o, sp.Ports)
		}
	}
}

func TestUnpipelinedDividers(t *testing.T) {
	for _, o := range []Op{FDiv, IDiv} {
		sp := SpecOf(o)
		if sp.Recurrence != sp.Latency {
			t.Errorf("%v: recurrence %d != latency %d; divider must be unpipelined", o, sp.Recurrence, sp.Latency)
		}
	}
}

func TestPortWidthDoubleSpeedALUs(t *testing.T) {
	if PortWidth(Port0, UnitALU0) != 2 {
		t.Error("ALU0 on port0 should be double speed")
	}
	if PortWidth(Port1, UnitALU1) != 2 {
		t.Error("ALU1 on port1 should be double speed")
	}
	if PortWidth(Port1, UnitFPAdd) != 1 {
		t.Error("FP on port1 should be single speed")
	}
	if PortWidth(Port2, UnitLoad) != 1 {
		t.Error("load port should be single speed")
	}
}

func TestRegisterEncoding(t *testing.T) {
	if RegNone.Bank() != BankNone {
		t.Error("RegNone bank")
	}
	for i := 0; i < NumIntRegs; i++ {
		r := R(i)
		if r.Bank() != BankInt {
			t.Fatalf("R(%d).Bank() = %v", i, r.Bank())
		}
	}
	for i := 0; i < NumFPRegs; i++ {
		r := F(i)
		if r.Bank() != BankFP {
			t.Fatalf("F(%d).Bank() = %v", i, r.Bank())
		}
	}
	if R(3) == F(3) {
		t.Error("int and fp register encodings collide")
	}
	if got := R(5).String(); got != "r5" {
		t.Errorf("R(5).String() = %q", got)
	}
	if got := F(7).String(); got != "f7" {
		t.Errorf("F(7).String() = %q", got)
	}
}

func TestRegisterConstructorsPanicOutOfRange(t *testing.T) {
	for _, fn := range []func(){func() { R(-1) }, func() { R(NumIntRegs) }, func() { F(-1) }, func() { F(NumFPRegs) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("register constructor accepted out-of-range index")
				}
			}()
			fn()
		}()
	}
}

func TestRegisterEncodingDisjoint_Property(t *testing.T) {
	// Property: distinct (bank, index) pairs never alias.
	f := func(a, b uint8) bool {
		ia, ib := int(a)%NumIntRegs, int(b)%NumFPRegs
		return R(ia) != F(ib)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCmpKindHolds(t *testing.T) {
	cases := []struct {
		cmp       CmpKind
		v, want   int64
		satisfied bool
	}{
		{CmpEQ, 5, 5, true},
		{CmpEQ, 4, 5, false},
		{CmpNE, 4, 5, true},
		{CmpNE, 5, 5, false},
		{CmpGE, 5, 5, true},
		{CmpGE, 6, 5, true},
		{CmpGE, 4, 5, false},
	}
	for _, c := range cases {
		if got := c.cmp.Holds(c.v, c.want); got != c.satisfied {
			t.Errorf("(%d %v %d) = %v, want %v", c.v, c.cmp, c.want, got, c.satisfied)
		}
	}
}

func TestInstrValidate(t *testing.T) {
	good := []Instr{
		ALU(FAdd, F(0), F(1), F(2)),
		ALU(IAdd, R(0), R(1), R(2)),
		Ld(F(0), 0x1000),
		St(F(0), 0x1000),
		Flag(1, 7, 0x2000),
		Spin(1, CmpEQ, 7),
		Halt(2, CmpGE, 3),
		{Op: Pause},
		{Op: Nop},
		{Op: Branch},
	}
	for _, in := range good {
		if err := in.Validate(); err != nil {
			t.Errorf("Validate(%v) = %v, want nil", in, err)
		}
	}
	bad := []Instr{
		{Op: numOps},
		ALU(FAdd, R(0), F(1), F(2)), // fp op with int dst
		ALU(IAdd, F(0), R(1), R(2)), // int op with fp dst
		{Op: Load},                  // no dst
		{Op: Store},                 // no src
		{Op: SpinWait},              // no cell
		{Op: HaltWait},              // no cell
		{Op: FlagStore},             // no cell
		{Op: IAdd, Dst: Reg(NumRegs), Src1: R(0), Src2: R(1)}, // invalid reg
	}
	for _, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", in)
		}
	}
}

func TestOpPredicates(t *testing.T) {
	if !Load.IsMem() || !Store.IsMem() || !FlagStore.IsMem() || IAdd.IsMem() {
		t.Error("IsMem misclassifies")
	}
	if !Store.IsStore() || !FlagStore.IsStore() || Load.IsStore() {
		t.Error("IsStore misclassifies")
	}
	if !FAdd.IsFP() || !FMove.IsFP() || IAdd.IsFP() || Load.IsFP() {
		t.Error("IsFP misclassifies")
	}
	if !SpinWait.IsSync() || !HaltWait.IsSync() || !Pause.IsSync() || Load.IsSync() {
		t.Error("IsSync misclassifies")
	}
	for _, o := range []Op{IAdd, ISub, ILogic, IMul, IDiv, FAdd, FSub, FMul, FDiv, FMove} {
		if !o.IsArith() {
			t.Errorf("%v should be arithmetic", o)
		}
	}
	for _, o := range []Op{Load, Store, Branch, Pause, Nop} {
		if o.IsArith() {
			t.Errorf("%v should not be arithmetic", o)
		}
	}
}

func TestUnitOfStream(t *testing.T) {
	cases := map[Op]Unit{
		IAdd: UnitALU0, ILogic: UnitALU0, IMul: UnitSlowInt,
		FAdd: UnitFPAdd, FSub: UnitFPAdd, FMul: UnitFPMul, FDiv: UnitFPDiv,
		FMove: UnitFPMove, Load: UnitLoad, Store: UnitStore, FlagStore: UnitStore,
		Pause: UnitNone, Nop: UnitNone,
	}
	for o, want := range cases {
		if got := UnitOfStream(o); got != want {
			t.Errorf("UnitOfStream(%v) = %v, want %v", o, got, want)
		}
	}
}

func TestInstrStringForms(t *testing.T) {
	forms := []struct {
		in   Instr
		want string
	}{
		{Ld(F(0), 0x40), "load f0 <- [0x40]"},
		{St(F(1), 0x80), "store [0x80] <- f1"},
		{Spin(3, CmpEQ, 1), "spinwait cell3 == 1"},
	}
	for _, f := range forms {
		if got := f.in.String(); got != f.want {
			t.Errorf("String() = %q, want %q", got, f.want)
		}
	}
}

func TestPrefetchOp(t *testing.T) {
	if !Prefetch.IsMem() {
		t.Error("prefetch should be a memory op")
	}
	if Prefetch.IsStore() || Prefetch.IsArith() || Prefetch.IsSync() {
		t.Error("prefetch misclassified")
	}
	sp := SpecOf(Prefetch)
	if len(sp.Ports) != 1 || sp.Ports[0] != Port2 {
		t.Errorf("prefetch ports %v, want load port", sp.Ports)
	}
	if sp.Latency != 2 {
		t.Errorf("prefetch latency %d, want AGU-only 2", sp.Latency)
	}
	in := Pf(0x1234, 7)
	if err := in.Validate(); err != nil {
		t.Errorf("Pf invalid: %v", err)
	}
	if in.Addr != 0x1234 || in.Tag != 7 || in.Dst != RegNone {
		t.Errorf("Pf fields wrong: %+v", in)
	}
	if UnitOfStream(Prefetch) != UnitLoad {
		t.Error("prefetch unit attribution wrong")
	}
}
