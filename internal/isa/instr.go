package isa

import "fmt"

// Reg identifies an architectural register. Each hardware context of the
// simulated processor has its own architectural register file; Reg values
// are context-local. The encoding packs two banks (integer and FP) into a
// single byte so instructions stay compact:
//
//	0          RegNone (no operand)
//	1..32      integer registers R0..R31
//	33..64     floating-point registers F0..F31
type Reg uint8

// RegNone marks an absent operand.
const RegNone Reg = 0

// NumIntRegs and NumFPRegs bound each architectural register bank.
const (
	NumIntRegs = 32
	NumFPRegs  = 32
	// NumRegs is the size of a flat per-context register scoreboard
	// indexed directly by Reg.
	NumRegs = 1 + NumIntRegs + NumFPRegs
)

// R returns the i-th integer register.
func R(i int) Reg {
	if i < 0 || i >= NumIntRegs {
		panic(fmt.Sprintf("isa: integer register index %d out of range", i))
	}
	return Reg(1 + i)
}

// F returns the i-th floating-point register.
func F(i int) Reg {
	if i < 0 || i >= NumFPRegs {
		panic(fmt.Sprintf("isa: fp register index %d out of range", i))
	}
	return Reg(1 + NumIntRegs + i)
}

// Bank is a register bank.
type Bank uint8

// Register banks.
const (
	BankNone Bank = iota
	BankInt
	BankFP
)

// Bank reports which bank r belongs to.
func (r Reg) Bank() Bank {
	switch {
	case r == RegNone:
		return BankNone
	case r <= NumIntRegs:
		return BankInt
	case r <= NumIntRegs+NumFPRegs:
		return BankFP
	}
	return BankNone
}

// Valid reports whether r is RegNone or a defined register.
func (r Reg) Valid() bool { return int(r) < NumRegs }

func (r Reg) String() string {
	switch r.Bank() {
	case BankNone:
		return "-"
	case BankInt:
		return fmt.Sprintf("r%d", int(r)-1)
	default:
		return fmt.Sprintf("f%d", int(r)-1-NumIntRegs)
	}
}

// Cell identifies a synchronisation cell: a simulated shared-memory word
// used by spin-wait loops, halt waits and flag stores. Cell 0 means "no
// cell". Cells have real simulated values (updated at store retirement);
// ordinary data memory does not, since the kernels are address-faithful
// generators rather than interpreted programs.
type Cell uint32

// NoCell marks the absence of a synchronisation cell.
const NoCell Cell = 0

// CellAddr returns the canonical backing byte address of a synchronisation
// cell. Cells are placed on distinct cache lines in a reserved high region
// of the simulated address space, so spin-loop loads and flag stores
// exercise the cache hierarchy without aliasing workload data.
func CellAddr(c Cell) uint64 { return 0xF000_0000 + uint64(c)*64 }

// Tag labels a static instruction site. The profiling substrate attributes
// dynamic events (retired µops, cache misses) to tags, which is how the
// Valgrind-style delinquent-load analysis of the paper is reproduced.
type Tag uint32

// NoTag is the anonymous static site.
const NoTag Tag = 0

// CmpKind selects the predicate of a SpinWait/HaltWait operation.
type CmpKind uint8

// Wait predicates.
const (
	CmpEQ CmpKind = iota // wait until cell == Val
	CmpNE                // wait until cell != Val
	CmpGE                // wait until cell >= Val
)

func (c CmpKind) String() string {
	switch c {
	case CmpEQ:
		return "=="
	case CmpNE:
		return "!="
	case CmpGE:
		return ">="
	}
	return "?"
}

// Holds reports whether the predicate is satisfied by value v.
func (c CmpKind) Holds(v, want int64) bool {
	switch c {
	case CmpEQ:
		return v == want
	case CmpNE:
		return v != want
	case CmpGE:
		return v >= want
	}
	return false
}

// Instr is one micro-operation as emitted by a workload generator.
//
// Register operands drive the dependence machinery (RAW through Src1/Src2,
// WAW/WAR through Dst: the simulator has no rename stage, which is exactly
// how the paper's ILP knob — the number of distinct target registers —
// throttles parallelism). Addr drives the cache hierarchy for memory ops.
// Cell/Val/Cmp parameterise the synchronisation operations.
type Instr struct {
	Op   Op
	Dst  Reg
	Src1 Reg
	Src2 Reg

	// Addr is the byte address accessed by Load/Store/FlagStore.
	Addr uint64

	// Cell is the synchronisation cell read by SpinWait/HaltWait or
	// written by FlagStore.
	Cell Cell
	// Val is the comparison operand (waits) or stored value (FlagStore).
	Val int64
	// Cmp is the wait predicate for SpinWait/HaltWait.
	Cmp CmpKind

	// UsePause selects the pause-augmented spin loop body for SpinWait
	// (the paper's recommended form); when false the loop spins
	// aggressively, consuming issue slots — the behaviour §3.1 warns
	// about.
	UsePause bool

	// Tag identifies the static site for profiling.
	Tag Tag
}

func (in Instr) String() string {
	switch in.Op {
	case Load:
		return fmt.Sprintf("%s %s <- [%#x]", in.Op, in.Dst, in.Addr)
	case Store:
		return fmt.Sprintf("%s [%#x] <- %s", in.Op, in.Addr, in.Src1)
	case FlagStore:
		return fmt.Sprintf("%s cell%d <- %d [%#x]", in.Op, in.Cell, in.Val, in.Addr)
	case SpinWait, HaltWait:
		return fmt.Sprintf("%s cell%d %s %d", in.Op, in.Cell, in.Cmp, in.Val)
	case Pause, Nop, Branch:
		return in.Op.String()
	default:
		return fmt.Sprintf("%s %s <- %s, %s", in.Op, in.Dst, in.Src1, in.Src2)
	}
}

// Validate checks structural well-formedness of the instruction and
// returns a descriptive error for generator bugs (wrong register bank,
// memory op without address alignment, sync op without a cell, ...).
func (in Instr) Validate() error {
	if !in.Op.Valid() {
		return fmt.Errorf("isa: invalid op %d", uint8(in.Op))
	}
	for _, r := range [3]Reg{in.Dst, in.Src1, in.Src2} {
		if !r.Valid() {
			return fmt.Errorf("isa: %s: invalid register %d", in.Op, uint8(r))
		}
	}
	switch in.Op {
	case IAdd, ISub, ILogic, IMul, IDiv:
		if in.Dst.Bank() != BankInt {
			return fmt.Errorf("isa: %s: destination %s is not an integer register", in.Op, in.Dst)
		}
	case FAdd, FSub, FMul, FDiv, FMove:
		if in.Dst.Bank() != BankFP {
			return fmt.Errorf("isa: %s: destination %s is not an fp register", in.Op, in.Dst)
		}
	case Load:
		if in.Dst == RegNone {
			return fmt.Errorf("isa: load without destination register")
		}
	case Store:
		if in.Src1 == RegNone {
			return fmt.Errorf("isa: store without source register")
		}
	case SpinWait, HaltWait:
		if in.Cell == NoCell {
			return fmt.Errorf("isa: %s without synchronisation cell", in.Op)
		}
	case FlagStore:
		if in.Cell == NoCell {
			return fmt.Errorf("isa: flagstore without synchronisation cell")
		}
	}
	return nil
}

// Convenience constructors used pervasively by the workload generators.

// ALU builds a register-to-register arithmetic µop.
func ALU(op Op, dst, src1, src2 Reg) Instr {
	return Instr{Op: op, Dst: dst, Src1: src1, Src2: src2}
}

// Ld builds a load from addr into dst.
func Ld(dst Reg, addr uint64) Instr { return Instr{Op: Load, Dst: dst, Addr: addr} }

// St builds a store of src to addr.
func St(src Reg, addr uint64) Instr { return Instr{Op: Store, Src1: src, Addr: addr} }

// TaggedLd builds a load carrying a static-site tag for profiling.
func TaggedLd(dst Reg, addr uint64, tag Tag) Instr {
	return Instr{Op: Load, Dst: dst, Addr: addr, Tag: tag}
}

// Pf builds a non-binding software prefetch of addr.
func Pf(addr uint64, tag Tag) Instr {
	return Instr{Op: Prefetch, Addr: addr, Tag: tag}
}

// Flag builds a FlagStore writing val to cell (backed by byte address addr).
func Flag(cell Cell, val int64, addr uint64) Instr {
	return Instr{Op: FlagStore, Cell: cell, Val: val, Addr: addr}
}

// Spin builds a pause-augmented spin wait until cell satisfies cmp val.
func Spin(cell Cell, cmp CmpKind, val int64) Instr {
	return Instr{Op: SpinWait, Cell: cell, Cmp: cmp, Val: val, UsePause: true}
}

// RawSpin builds a spin wait without the pause hint.
func RawSpin(cell Cell, cmp CmpKind, val int64) Instr {
	return Instr{Op: SpinWait, Cell: cell, Cmp: cmp, Val: val}
}

// Halt builds a halt-until-condition wait: the context relinquishes its
// statically partitioned resources and sleeps until cell satisfies cmp val,
// then pays the wake-up (IPI + mode transition) penalty.
func Halt(cell Cell, cmp CmpKind, val int64) Instr {
	return Instr{Op: HaltWait, Cell: cell, Cmp: cmp, Val: val}
}
