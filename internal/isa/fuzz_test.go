package isa

import "testing"

// FuzzInstrValidate throws arbitrary bytes at the Instr structure:
// Validate and String must classify or reject anything without
// panicking, and accepted instructions must print non-empty.
func FuzzInstrValidate(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(0), uint8(0), uint64(0), uint32(0), int64(0), uint8(0), false, uint32(0))
	f.Add(uint8(6), uint8(33), uint8(34), uint8(35), uint64(0x1000), uint32(1), int64(42), uint8(1), true, uint32(7))
	f.Add(uint8(255), uint8(255), uint8(255), uint8(255), ^uint64(0), ^uint32(0), int64(-1), uint8(255), false, ^uint32(0))
	f.Fuzz(func(t *testing.T, op, dst, s1, s2 uint8, addr uint64, cell uint32, val int64, cmp uint8, pause bool, tag uint32) {
		in := Instr{
			Op: Op(op), Dst: Reg(dst), Src1: Reg(s1), Src2: Reg(s2),
			Addr: addr, Cell: Cell(cell), Val: val, Cmp: CmpKind(cmp),
			UsePause: pause, Tag: Tag(tag),
		}
		err := in.Validate()
		if s := in.String(); s == "" {
			t.Fatalf("empty rendering for %#v (validate: %v)", in, err)
		}
	})
}

// FuzzInstrConstruct drives every convenience constructor with sanitized
// operands: whatever a constructor builds must pass Validate — the
// property workload generators rely on when they emit unchecked.
func FuzzInstrConstruct(f *testing.F) {
	f.Add(uint8(0), uint8(0), 0, 1, 2, uint64(0), uint32(0), int64(0), uint8(0), uint32(0))
	f.Add(uint8(3), uint8(4), 5, 6, 7, uint64(0xfff0), uint32(9), int64(-3), uint8(2), uint32(12))
	f.Add(uint8(7), uint8(9), 31, 31, 31, ^uint64(0), ^uint32(0), int64(1)<<62, uint8(1), ^uint32(0))
	f.Fuzz(func(t *testing.T, kind, opSel uint8, di, si, ti int, addr uint64, cell uint32, val int64, cmpSel uint8, tag uint32) {
		intOps := []Op{IAdd, ISub, ILogic, IMul, IDiv}
		fpOps := []Op{FAdd, FSub, FMul, FDiv, FMove}
		reg := func(i int, fp bool) Reg {
			i &= 31 // both banks hold 32 registers
			if fp {
				return F(i)
			}
			return R(i)
		}
		c := Cell(cell%1024 + 1) // constructors require a real cell
		cmp := CmpKind(cmpSel % 3)

		var in Instr
		switch kind % 8 {
		case 0:
			in = ALU(intOps[int(opSel)%len(intOps)], reg(di, false), reg(si, false), reg(ti, false))
		case 1:
			in = ALU(fpOps[int(opSel)%len(fpOps)], reg(di, true), reg(si, true), reg(ti, true))
		case 2:
			in = Ld(reg(di, opSel%2 == 0), addr)
		case 3:
			in = St(reg(si, opSel%2 == 0), addr)
		case 4:
			in = TaggedLd(reg(di, true), addr, Tag(tag))
		case 5:
			in = Pf(addr, Tag(tag))
		case 6:
			in = Flag(c, val, CellAddr(c))
		case 7:
			switch opSel % 3 {
			case 0:
				in = Spin(c, cmp, val)
			case 1:
				in = RawSpin(c, cmp, val)
			default:
				in = Halt(c, cmp, val)
			}
		}
		if err := in.Validate(); err != nil {
			t.Fatalf("constructor produced invalid instruction %v: %v", in, err)
		}
		if in.String() == "" {
			t.Fatalf("constructor produced unprintable instruction %#v", in)
		}
	})
}
