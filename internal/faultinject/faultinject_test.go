package faultinject

import (
	"errors"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"os"
)

func TestDisarmedHitIsNil(t *testing.T) {
	Disarm()
	if err := Hit(PointStoreRead); err != nil {
		t.Fatalf("disarmed Hit = %v, want nil", err)
	}
	if Fires() != 0 {
		t.Errorf("disarmed Fires = %d, want 0", Fires())
	}
}

func TestErrorActionAfterAndCount(t *testing.T) {
	in, err := New(Plan{Rules: []Rule{
		{Point: "p", Action: ActionError, Error: "disk on fire", After: 2, Count: 3},
	}})
	if err != nil {
		t.Fatal(err)
	}
	var faults int
	for i := range 10 {
		err := in.Hit("p")
		if err != nil {
			faults++
			if !IsFault(err) {
				t.Fatalf("call %d: error %v is not a *Fault", i, err)
			}
			if !strings.Contains(err.Error(), "disk on fire") || !strings.Contains(err.Error(), "p") {
				t.Errorf("fault message %q lacks rule error or point", err)
			}
			if i < 2 {
				t.Errorf("rule fired on call %d despite after=2", i)
			}
		}
	}
	if faults != 3 {
		t.Errorf("%d faults over 10 calls, want exactly 3 (after=2, count=3)", faults)
	}
	if in.Fires() != 3 {
		t.Errorf("Fires = %d, want 3", in.Fires())
	}
	snap := in.Snapshot()
	if len(snap) != 1 || snap[0].Point != "p" || snap[0].Calls != 10 || snap[0].Fires != 3 {
		t.Errorf("Snapshot = %+v, want p with 10 calls and 3 fires", snap)
	}
}

// Same seed, same call sequence, same fault sequence — and a second
// point's presence must not perturb the first point's draws.
func TestProbDeterminismAndIsolation(t *testing.T) {
	sequence := func(rules []Rule) []bool {
		in, err := New(Plan{Seed: 42, Rules: rules})
		if err != nil {
			t.Fatal(err)
		}
		var out []bool
		for range 200 {
			out = append(out, in.Hit("a") != nil)
		}
		return out
	}
	base := []Rule{{Point: "a", Action: ActionError, Prob: 0.3}}
	first := sequence(base)
	second := sequence(base)
	withB := sequence(append([]Rule{{Point: "b", Action: ActionError, Prob: 0.9}}, base...))

	var fires int
	for i := range first {
		if first[i] {
			fires++
		}
		if first[i] != second[i] {
			t.Fatalf("call %d differs between identical runs", i)
		}
		if first[i] != withB[i] {
			t.Fatalf("call %d of point a perturbed by point b's rule", i)
		}
	}
	if fires < 30 || fires > 90 {
		t.Errorf("prob 0.3 fired %d/200 times; outside a plausible band", fires)
	}
}

func TestLatencyAction(t *testing.T) {
	in, err := New(Plan{Rules: []Rule{
		{Point: "slow", Action: ActionLatency, LatencyMS: 30, Count: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := in.Hit("slow"); err != nil {
		t.Fatalf("latency action returned error %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("latency action slept %v, want >= 30ms", d)
	}
	start = time.Now()
	in.Hit("slow") // count exhausted
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Errorf("exhausted latency rule still slept %v", d)
	}
}

// Latency composes with a later error rule on the same point.
func TestLatencyThenError(t *testing.T) {
	in, err := New(Plan{Rules: []Rule{
		{Point: "p", Action: ActionLatency, LatencyMS: 10},
		{Point: "p", Action: ActionError, Error: "late and broken"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	herr := in.Hit("p")
	if herr == nil || !strings.Contains(herr.Error(), "late and broken") {
		t.Fatalf("Hit = %v, want the error rule's fault", herr)
	}
	if d := time.Since(start); d < 8*time.Millisecond {
		t.Errorf("latency rule skipped: slept only %v", d)
	}
}

func TestPanicAction(t *testing.T) {
	in, err := New(Plan{Rules: []Rule{
		{Point: "boom", Action: ActionPanic, Error: "kaboom"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("panic action did not panic")
		}
		if s, ok := p.(string); !ok || !strings.Contains(s, "kaboom") {
			t.Errorf("panic value %v lacks the rule message", p)
		}
	}()
	in.Hit("boom")
}

func TestPlanValidation(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		want string
	}{
		{"empty point", Plan{Rules: []Rule{{Action: ActionError}}}, "empty point"},
		{"bad action", Plan{Rules: []Rule{{Point: "p", Action: "explode"}}}, "unknown action"},
		{"latency without ms", Plan{Rules: []Rule{{Point: "p", Action: ActionLatency}}}, "latency_ms"},
		{"bad prob", Plan{Rules: []Rule{{Point: "p", Action: ActionError, Prob: 1.5}}}, "outside [0,1]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.plan); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("New = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestArmFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(path, []byte(`{"seed":7,"rules":[{"point":"store.read","action":"error","count":2}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	in, err := ArmFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer Disarm()
	if Armed() != in {
		t.Fatal("ArmFile did not arm its injector")
	}
	if err := Hit(PointStoreRead); err == nil {
		t.Error("armed plan did not fire on store.read")
	}
	if Fires() != 1 {
		t.Errorf("Fires = %d, want 1", Fires())
	}
	Disarm()
	if err := Hit(PointStoreRead); err != nil {
		t.Errorf("Hit after Disarm = %v, want nil", err)
	}

	if _, err := ArmFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("ArmFile on a missing file succeeded")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{nope"), 0o644)
	if _, err := ArmFile(bad); err == nil {
		t.Error("ArmFile on malformed JSON succeeded")
	}
}

// Hammering one injector from many goroutines must be race-free and
// must respect Count exactly.
func TestConcurrentHits(t *testing.T) {
	in, err := New(Plan{Rules: []Rule{
		{Point: "p", Action: ActionError, Count: 50},
	}})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var faults int
	for range 8 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range 100 {
				if err := in.Hit("p"); err != nil {
					var f *Fault
					if !errors.As(err, &f) {
						t.Error("non-Fault error from Hit")
					}
					mu.Lock()
					faults++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if faults != 50 {
		t.Errorf("%d faults, want exactly count=50", faults)
	}
}
