// Package faultinject is a deterministic, seed-driven fault-plan
// framework: named fault points in production code paths (disk I/O,
// cell execution, queue admission, journal writes) consult an armed
// plan and inject errors, latency or panics according to per-point
// rules. It exists so failure handling — circuit breakers, watchdogs,
// journal recovery, client retries — can be exercised end to end by
// the chaos-smoke harness and by unit tests, with byte-reproducible
// fault sequences.
//
// Design constraints:
//
//   - Zero overhead when disarmed: Hit is a single atomic load and a
//     nil check, so the fault points can stay in the hot paths
//     permanently.
//   - Determinism: each point draws from its own RNG, seeded from the
//     plan seed and the point name, so adding calls to one point never
//     perturbs another point's fault sequence, and a given plan
//     produces the same faults run after run (given the same per-point
//     call order).
//   - One armed plan at a time, process-wide: the daemon arms a plan at
//     startup from -fault-plan; tests Arm/Disarm around themselves.
package faultinject

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Fault-point names. Each constant is referenced by exactly the code
// path it describes; a plan rule whose Point matches injects there.
const (
	// PointStoreRead fires inside store.(*Store).Get before the entry
	// file is read; an error action is indistinguishable from a failing
	// disk read.
	PointStoreRead = "store.read"
	// PointStoreWrite fires inside store.(*Store).Put before the temp
	// file is created; an error action is indistinguishable from a
	// failing disk write.
	PointStoreWrite = "store.write"
	// PointExecCell fires at the start of every service cell execution,
	// inside the panic-isolation and watchdog scope: error fails the
	// cell, latency simulates a wedged cell, panic exercises isolation.
	PointExecCell = "exec.cell"
	// PointQueueAdmit fires during job submission; an error action is
	// reported as queue-full backpressure (HTTP 429 + Retry-After).
	PointQueueAdmit = "queue.admit"
	// PointJournalWrite fires inside journal record writes; an error
	// action makes the write fail as if the disk did.
	PointJournalWrite = "journal.write"
	// PointCheckpointWrite fires before a cell checkpoint is encoded and
	// stored; an error action drops that checkpoint (the cell keeps
	// running and the previous checkpoint, if any, stays current).
	PointCheckpointWrite = "checkpoint.write"
	// PointCheckpointRestore fires before a stored checkpoint is decoded
	// and restored; an error action makes the cell run from cycle zero,
	// as if no checkpoint existed.
	PointCheckpointRestore = "checkpoint.restore"
)

// Actions a rule can take when it fires.
const (
	// ActionError makes Hit return a *Fault carrying the rule's Error
	// message.
	ActionError = "error"
	// ActionLatency makes Hit sleep LatencyMS milliseconds, then keep
	// evaluating later rules (so latency composes with error/panic).
	ActionLatency = "latency"
	// ActionPanic makes Hit panic, exercising the caller's isolation.
	ActionPanic = "panic"
)

// Rule injects one kind of fault at one point. Triggering is governed
// by After (skip the first After calls to the point), Count (fire at
// most Count times; 0 = unlimited) and Prob (fire with this
// probability on eligible calls; 0 or absent = always).
type Rule struct {
	Point     string  `json:"point"`
	Action    string  `json:"action"`
	Error     string  `json:"error,omitempty"`
	LatencyMS int     `json:"latency_ms,omitempty"`
	Prob      float64 `json:"prob,omitempty"`
	After     int     `json:"after,omitempty"`
	Count     int     `json:"count,omitempty"`
}

// Plan is a reproducible fault schedule: a seed plus the rules.
type Plan struct {
	Seed  int64  `json:"seed"`
	Rules []Rule `json:"rules"`
}

// Fault is the error Hit returns for error actions.
type Fault struct {
	Point string
	Msg   string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("injected fault at %s: %s", f.Point, f.Msg)
}

// IsFault reports whether err is an injected fault.
func IsFault(err error) bool {
	_, ok := err.(*Fault)
	return ok
}

type ruleState struct {
	rule  Rule
	fired int
}

type pointState struct {
	calls int
	rng   *rand.Rand
	rules []*ruleState
}

// Injector is a compiled, armable plan. Safe for concurrent use.
type Injector struct {
	mu     sync.Mutex
	points map[string]*pointState
	fires  uint64
}

// New validates and compiles a plan.
func New(p Plan) (*Injector, error) {
	in := &Injector{points: make(map[string]*pointState)}
	for i, r := range p.Rules {
		if r.Point == "" {
			return nil, fmt.Errorf("faultinject: rule %d: empty point", i)
		}
		switch r.Action {
		case ActionError:
			if r.Error == "" {
				r.Error = "injected fault"
			}
		case ActionPanic:
			if r.Error == "" {
				r.Error = "injected panic"
			}
		case ActionLatency:
			if r.LatencyMS <= 0 {
				return nil, fmt.Errorf("faultinject: rule %d: latency action needs latency_ms > 0", i)
			}
		default:
			return nil, fmt.Errorf("faultinject: rule %d: unknown action %q (want error, latency or panic)", i, r.Action)
		}
		if r.Prob < 0 || r.Prob > 1 {
			return nil, fmt.Errorf("faultinject: rule %d: prob %v outside [0,1]", i, r.Prob)
		}
		ps := in.points[r.Point]
		if ps == nil {
			h := fnv.New64a()
			h.Write([]byte(r.Point))
			ps = &pointState{rng: rand.New(rand.NewSource(p.Seed ^ int64(h.Sum64())))}
			in.points[r.Point] = ps
		}
		ps.rules = append(ps.rules, &ruleState{rule: r})
	}
	return in, nil
}

// LoadPlan reads a JSON plan file.
func LoadPlan(path string) (Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Plan{}, fmt.Errorf("faultinject: %w", err)
	}
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return Plan{}, fmt.Errorf("faultinject: parsing %s: %w", path, err)
	}
	return p, nil
}

// Hit evaluates the point against this injector: latency rules sleep
// (and accumulate), the first error rule returns a *Fault, the first
// panic rule panics. Nil when nothing fires.
func (in *Injector) Hit(point string) error {
	in.mu.Lock()
	ps := in.points[point]
	if ps == nil {
		in.mu.Unlock()
		return nil
	}
	ps.calls++
	var sleep time.Duration
	var fired *ruleState
	for _, rs := range ps.rules {
		if ps.calls <= rs.rule.After {
			continue
		}
		if rs.rule.Count > 0 && rs.fired >= rs.rule.Count {
			continue
		}
		if rs.rule.Prob > 0 && rs.rule.Prob < 1 && ps.rng.Float64() >= rs.rule.Prob {
			continue
		}
		rs.fired++
		in.fires++
		if rs.rule.Action == ActionLatency {
			sleep += time.Duration(rs.rule.LatencyMS) * time.Millisecond
			continue
		}
		fired = rs
		break
	}
	in.mu.Unlock()

	if sleep > 0 {
		time.Sleep(sleep)
	}
	if fired == nil {
		return nil
	}
	if fired.rule.Action == ActionPanic {
		panic(fmt.Sprintf("faultinject: %s: %s", point, fired.rule.Error))
	}
	return &Fault{Point: point, Msg: fired.rule.Error}
}

// Fires returns the total number of rule firings so far.
func (in *Injector) Fires() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fires
}

// Snapshot reports per-point call and fire counts, sorted by point
// name, for logs and assertions.
func (in *Injector) Snapshot() []PointStats {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]PointStats, 0, len(in.points))
	for name, ps := range in.points {
		st := PointStats{Point: name, Calls: ps.calls}
		for _, rs := range ps.rules {
			st.Fires += rs.fired
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Point < out[j].Point })
	return out
}

// PointStats is one point's activity in a Snapshot.
type PointStats struct {
	Point string
	Calls int
	Fires int
}

// armed is the process-wide injector; nil means every Hit is free.
var armed atomic.Pointer[Injector]

// Arm installs in as the process-wide injector (nil disarms).
func Arm(in *Injector) { armed.Store(in) }

// Disarm removes the process-wide injector.
func Disarm() { armed.Store(nil) }

// Armed returns the process-wide injector, or nil.
func Armed() *Injector { return armed.Load() }

// ArmFile loads, compiles and arms a JSON plan file, returning the
// injector for inspection.
func ArmFile(path string) (*Injector, error) {
	p, err := LoadPlan(path)
	if err != nil {
		return nil, err
	}
	in, err := New(p)
	if err != nil {
		return nil, err
	}
	Arm(in)
	return in, nil
}

// Hit evaluates point against the armed plan; it is a no-op (one
// atomic load) when nothing is armed.
func Hit(point string) error {
	in := armed.Load()
	if in == nil {
		return nil
	}
	return in.Hit(point)
}

// Fires returns the armed injector's total firings (0 when disarmed).
func Fires() uint64 {
	in := armed.Load()
	if in == nil {
		return 0
	}
	return in.Fires()
}
