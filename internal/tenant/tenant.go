// Package tenant defines tenant identity, per-tenant quotas, and
// fair-share weights for the multi-tenant service layer. The service
// and the cluster coordinator both consult a Registry at admission
// time; the scheduler consults it for deficit-round-robin weights.
//
// Tenancy is deliberately thin: a tenant is a validated name plus a
// Config. There is no authentication — callers assert identity via
// the X-Tenant header — because the threat model here is resource
// isolation between cooperating clients (the paper's contending SMT
// contexts, lifted to the service level), not access control.
package tenant

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// Default is the tenant every request without an explicit identity is
// accounted to. It preserves pre-tenant compatibility: a deployment
// that never configures tenants behaves exactly as before, with all
// work sharing one identity and no quotas.
const Default = "default"

// MaxNameLen bounds tenant names so they stay usable as metric labels
// and store-namespace keys.
const MaxNameLen = 64

// ValidName reports whether name is a legal tenant identity:
// non-empty, at most MaxNameLen bytes, starting with a letter or
// digit, and containing only letters, digits, '-', '_', and '.'.
// The alphabet is the intersection of what is safe in HTTP header
// values, Prometheus label values, and filesystem path segments.
func ValidName(name string) bool {
	if len(name) == 0 || len(name) > MaxNameLen {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Duration wraps time.Duration with JSON encoding as a
// time.ParseDuration string ("30s", "1m"), matching how operators
// write intervals in config files.
type Duration time.Duration

func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("duration must be a string like \"30s\": %w", err)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return err
	}
	*d = Duration(v)
	return nil
}

// Config is one tenant's quotas and scheduling weight. The zero value
// means "no quotas, weight 1" — identical to pre-tenant behavior.
type Config struct {
	// Weight is the tenant's fair-share weight in the deficit
	// round-robin scheduler. Tenants within a priority class receive
	// service proportional to their weights. Zero means 1.
	Weight int `json:"weight,omitempty"`
	// MaxQueuedJobs caps jobs this tenant may have waiting in the
	// queue. Zero means unlimited.
	MaxQueuedJobs int `json:"max_queued_jobs,omitempty"`
	// MaxActiveCells caps the sum of cells across this tenant's live
	// (queued + running) jobs. Zero means unlimited.
	MaxActiveCells int `json:"max_active_cells,omitempty"`
	// CycleBudget caps simulated cycles charged to this tenant per
	// BudgetInterval window. Zero means unlimited.
	CycleBudget uint64 `json:"cycle_budget,omitempty"`
	// BudgetInterval is the window over which CycleBudget applies.
	// Zero with a non-zero CycleBudget defaults to one minute.
	BudgetInterval Duration `json:"budget_interval,omitempty"`
}

// NormWeight returns the effective scheduling weight (>= 1).
func (c Config) NormWeight() int {
	if c.Weight < 1 {
		return 1
	}
	return c.Weight
}

// interval returns the effective budget window.
func (c Config) interval() time.Duration {
	if c.BudgetInterval > 0 {
		return time.Duration(c.BudgetInterval)
	}
	return time.Minute
}

// budgetWindow tracks cycles charged to one tenant in the current
// fixed window. Fixed (not sliding) windows are deliberate: they are
// cheap, deterministic, and the worst-case overshoot is one window's
// budget — acceptable for a coarse per-tenant rate cap.
type budgetWindow struct {
	start time.Time
	spent uint64
}

// Registry maps tenant names to Configs and tracks per-tenant cycle
// budget windows. A nil *Registry is valid and means "no tenant
// configuration": every name resolves to the zero Config.
type Registry struct {
	mu      sync.Mutex
	configs map[string]Config
	def     Config // the "*" entry: config for names not listed
	windows map[string]*budgetWindow
}

// NewRegistry builds a registry from explicit per-tenant configs. The
// "*" key, if present, becomes the default Config for tenants not
// named; without it, unnamed tenants get the zero Config (no limits).
func NewRegistry(configs map[string]Config) *Registry {
	r := &Registry{
		configs: make(map[string]Config, len(configs)),
		windows: make(map[string]*budgetWindow),
	}
	for name, c := range configs {
		if name == "*" {
			r.def = c
			continue
		}
		r.configs[name] = c
	}
	return r
}

// fileSchema is the on-disk shape: {"tenants": {"name": {...}, "*": {...}}}.
type fileSchema struct {
	Tenants map[string]Config `json:"tenants"`
}

// LoadFile reads a tenant config file. Every tenant name (other than
// the "*" default entry) must satisfy ValidName.
func LoadFile(path string) (*Registry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f fileSchema
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("tenant config %s: %w", path, err)
	}
	for name := range f.Tenants {
		if name != "*" && !ValidName(name) {
			return nil, fmt.Errorf("tenant config %s: invalid tenant name %q", path, name)
		}
	}
	return NewRegistry(f.Tenants), nil
}

// Config resolves the Config for name. Unknown names fall back to the
// "*" default entry, then to the zero Config.
func (r *Registry) Config(name string) Config {
	if r == nil {
		return Config{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.configs[name]; ok {
		return c
	}
	return r.def
}

// Weight resolves the effective scheduling weight for name.
func (r *Registry) Weight(name string) int {
	return r.Config(name).NormWeight()
}

// Names returns the explicitly configured tenant names (excluding the
// "*" default), in no particular order.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.configs))
	for name := range r.configs {
		out = append(out, name)
	}
	return out
}

// ChargeCycles records simulated cycles against name's budget window
// at time now. Charging is unconditional — work already admitted runs
// to completion; the budget gates future admissions, not execution.
func (r *Registry) ChargeCycles(name string, cycles uint64, now time.Time) {
	if r == nil || cycles == 0 {
		return
	}
	c := r.Config(name)
	if c.CycleBudget == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	w := r.windowLocked(name, c, now)
	w.spent += cycles
}

// BudgetRemaining reports how many cycles remain in name's current
// window, and whether a budget applies at all. With no budget the
// second return is false and callers must not gate on the first.
func (r *Registry) BudgetRemaining(name string, now time.Time) (uint64, bool) {
	if r == nil {
		return 0, false
	}
	c := r.Config(name)
	if c.CycleBudget == 0 {
		return 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	w := r.windowLocked(name, c, now)
	if w.spent >= c.CycleBudget {
		return 0, true
	}
	return c.CycleBudget - w.spent, true
}

// windowLocked returns name's current window, rolling it forward when
// the interval has elapsed. Callers hold r.mu.
func (r *Registry) windowLocked(name string, c Config, now time.Time) *budgetWindow {
	w := r.windows[name]
	if w == nil {
		w = &budgetWindow{start: now}
		r.windows[name] = w
	}
	if now.Sub(w.start) >= c.interval() {
		w.start = now
		w.spent = 0
	}
	return w
}
