package tenant

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestValidName(t *testing.T) {
	valid := []string{"a", "default", "team-a", "Team_B", "t.9", "A0", "9x"}
	for _, n := range valid {
		if !ValidName(n) {
			t.Errorf("ValidName(%q) = false, want true", n)
		}
	}
	invalid := []string{"", "-lead", "_lead", ".lead", "has space", "has/slash",
		"quo\"te", "newline\n", "über", string(make([]byte, MaxNameLen+1))}
	for _, n := range invalid {
		if ValidName(n) {
			t.Errorf("ValidName(%q) = true, want false", n)
		}
	}
	// Exactly MaxNameLen ASCII letters is legal.
	long := make([]byte, MaxNameLen)
	for i := range long {
		long[i] = 'a'
	}
	if !ValidName(string(long)) {
		t.Errorf("ValidName(64×'a') = false, want true")
	}
}

func TestNilRegistryIsOpen(t *testing.T) {
	var r *Registry
	if c := r.Config("anyone"); c != (Config{}) {
		t.Fatalf("nil registry Config = %+v, want zero", c)
	}
	if w := r.Weight("anyone"); w != 1 {
		t.Fatalf("nil registry Weight = %d, want 1", w)
	}
	if _, ok := r.BudgetRemaining("anyone", time.Now()); ok {
		t.Fatal("nil registry reported an active budget")
	}
	r.ChargeCycles("anyone", 100, time.Now()) // must not panic
}

func TestRegistryDefaults(t *testing.T) {
	r := NewRegistry(map[string]Config{
		"alice": {Weight: 3, MaxQueuedJobs: 5},
		"*":     {Weight: 2, MaxQueuedJobs: 1},
	})
	if c := r.Config("alice"); c.Weight != 3 || c.MaxQueuedJobs != 5 {
		t.Fatalf("alice config = %+v", c)
	}
	if c := r.Config("stranger"); c.Weight != 2 || c.MaxQueuedJobs != 1 {
		t.Fatalf("stranger should get the * default, got %+v", c)
	}
	if w := r.Weight("stranger"); w != 2 {
		t.Fatalf("stranger weight = %d, want 2", w)
	}
	// Zero/negative weights normalize to 1.
	if (Config{}).NormWeight() != 1 || (Config{Weight: -4}).NormWeight() != 1 {
		t.Fatal("NormWeight must floor at 1")
	}
}

func TestCycleBudgetWindow(t *testing.T) {
	r := NewRegistry(map[string]Config{
		"a": {CycleBudget: 1000, BudgetInterval: Duration(time.Minute)},
	})
	t0 := time.Unix(1000, 0)

	rem, ok := r.BudgetRemaining("a", t0)
	if !ok || rem != 1000 {
		t.Fatalf("fresh window: remaining=%d ok=%v, want 1000 true", rem, ok)
	}
	r.ChargeCycles("a", 600, t0)
	if rem, _ := r.BudgetRemaining("a", t0.Add(time.Second)); rem != 400 {
		t.Fatalf("after 600 charged: remaining=%d, want 400", rem)
	}
	r.ChargeCycles("a", 600, t0.Add(2*time.Second))
	if rem, _ := r.BudgetRemaining("a", t0.Add(3*time.Second)); rem != 0 {
		t.Fatalf("overspent window: remaining=%d, want 0", rem)
	}
	// The window rolls over after the interval and the budget refills.
	if rem, _ := r.BudgetRemaining("a", t0.Add(time.Minute+time.Second)); rem != 1000 {
		t.Fatalf("after rollover: remaining=%d, want 1000", rem)
	}

	// A tenant without a budget never reports one, even after charges.
	r.ChargeCycles("free", 1<<40, t0)
	if _, ok := r.BudgetRemaining("free", t0); ok {
		t.Fatal("unbudgeted tenant reported an active budget")
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tenants.json")
	conf := `{
  "tenants": {
    "heavy": {"weight": 1, "max_queued_jobs": 4, "max_active_cells": 8,
              "cycle_budget": 500000, "budget_interval": "30s"},
    "light": {"weight": 1},
    "*":     {"max_queued_jobs": 16}
  }
}`
	if err := os.WriteFile(path, []byte(conf), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	h := r.Config("heavy")
	if h.MaxQueuedJobs != 4 || h.MaxActiveCells != 8 || h.CycleBudget != 500000 {
		t.Fatalf("heavy config = %+v", h)
	}
	if got := time.Duration(h.BudgetInterval); got != 30*time.Second {
		t.Fatalf("budget_interval = %v, want 30s", got)
	}
	if c := r.Config("nobody"); c.MaxQueuedJobs != 16 {
		t.Fatalf("* default not applied: %+v", c)
	}
	names := r.Names()
	if len(names) != 2 {
		t.Fatalf("Names() = %v, want heavy+light", names)
	}

	// Invalid tenant names are rejected at load time.
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"tenants": {"no spaces": {}}}`), 0o644)
	if _, err := LoadFile(bad); err == nil {
		t.Fatal("LoadFile accepted an invalid tenant name")
	}
	// Malformed durations are rejected with a useful error.
	badDur := filepath.Join(dir, "baddur.json")
	os.WriteFile(badDur, []byte(`{"tenants": {"a": {"budget_interval": 30}}}`), 0o644)
	if _, err := LoadFile(badDur); err == nil {
		t.Fatal("LoadFile accepted a numeric duration")
	}
}
