package trace

import (
	"testing"
	"testing/quick"

	"smtexplore/internal/isa"
)

func threeAdds() Program {
	return Generate(func(e *Emitter) {
		e.ALU(isa.FAdd, isa.F(0), isa.F(1), isa.F(2))
		e.ALU(isa.FAdd, isa.F(1), isa.F(2), isa.F(3))
		e.ALU(isa.FAdd, isa.F(2), isa.F(3), isa.F(4))
	})
}

func TestStreamPullsAll(t *testing.T) {
	s := NewStream(threeAdds())
	defer s.Close()
	var n int
	for {
		in, ok := s.Next()
		if !ok {
			break
		}
		if in.Op != isa.FAdd {
			t.Fatalf("unexpected op %v", in.Op)
		}
		n++
	}
	if n != 3 {
		t.Fatalf("pulled %d instructions, want 3", n)
	}
	if !s.Done() {
		t.Error("stream should report done")
	}
	if s.Generated != 3 {
		t.Errorf("Generated = %d, want 3", s.Generated)
	}
	// Next after exhaustion stays ok=false.
	if _, ok := s.Next(); ok {
		t.Error("Next after exhaustion returned ok")
	}
}

func TestStreamCloseEarly(t *testing.T) {
	s := NewStream(Forever(threeAdds()))
	if _, ok := s.Next(); !ok {
		t.Fatal("expected an instruction")
	}
	s.Close()
	if _, ok := s.Next(); ok {
		t.Error("Next after Close returned ok")
	}
	s.Close() // double close must be safe
}

func TestEmitterValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("emitting an invalid instruction did not panic")
		}
	}()
	p := Generate(func(e *Emitter) {
		e.Emit(isa.Instr{Op: isa.Load}) // load without destination
	})
	Count(p)
}

func TestConcatOrderAndCount(t *testing.T) {
	p := Concat(threeAdds(), Generate(func(e *Emitter) { e.Nop() }))
	got := Collect(p)
	if len(got) != 4 {
		t.Fatalf("len = %d, want 4", len(got))
	}
	if got[3].Op != isa.Nop {
		t.Errorf("last op = %v, want nop", got[3].Op)
	}
}

func TestConcatStopsEarly(t *testing.T) {
	p := Concat(Forever(threeAdds()), threeAdds())
	got := Collect(Limit(p, 5))
	if len(got) != 5 {
		t.Fatalf("len = %d, want 5", len(got))
	}
}

func TestRepeat(t *testing.T) {
	if n := Count(Repeat(threeAdds(), 4)); n != 12 {
		t.Fatalf("Repeat count = %d, want 12", n)
	}
	if n := Count(Repeat(threeAdds(), 0)); n != 0 {
		t.Fatalf("Repeat(0) count = %d, want 0", n)
	}
}

func TestRepeatNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Repeat(-1) did not panic")
		}
	}()
	Repeat(threeAdds(), -1)
}

func TestForeverIsUnbounded(t *testing.T) {
	const n = 10_000
	if got := Count(Limit(Forever(threeAdds()), n)); got != n {
		t.Fatalf("count = %d, want %d", got, n)
	}
}

func TestLimitZero(t *testing.T) {
	if n := Count(Limit(threeAdds(), 0)); n != 0 {
		t.Fatalf("Limit(0) count = %d", n)
	}
}

func TestEmptyProgram(t *testing.T) {
	if n := Count(Empty()); n != 0 {
		t.Fatalf("Empty count = %d", n)
	}
}

func TestMix(t *testing.T) {
	p := Generate(func(e *Emitter) {
		e.ALU(isa.FAdd, isa.F(0), isa.F(1), isa.F(2))
		e.ALU(isa.FMul, isa.F(1), isa.F(2), isa.F(3))
		e.Load(isa.F(2), 64)
		e.Load(isa.F(3), 128)
		e.Store(isa.F(0), 192)
	})
	m := Mix(p)
	want := map[isa.Op]uint64{isa.FAdd: 1, isa.FMul: 1, isa.Load: 2, isa.Store: 1}
	for op, n := range want {
		if m[op] != n {
			t.Errorf("mix[%v] = %d, want %d", op, m[op], n)
		}
	}
	if len(m) != len(want) {
		t.Errorf("mix has %d classes, want %d: %v", len(m), len(want), m)
	}
}

func TestEmitterStoppedShortCircuits(t *testing.T) {
	var emitted uint64
	p := Generate(func(e *Emitter) {
		for i := 0; i < 100 && !e.Stopped(); i++ {
			e.Nop()
		}
		emitted = e.Count
	})
	got := Collect(Limit(p, 5))
	if len(got) != 5 {
		t.Fatalf("collected %d, want 5", len(got))
	}
	// Emitter should have noticed the stop after at most one extra emit.
	if emitted > 6 {
		t.Errorf("generator kept emitting after stop: %d", emitted)
	}
}

// Property: Limit(p, n) yields exactly min(n, Count(p)) instructions and is
// a prefix of p.
func TestLimitPrefix_Property(t *testing.T) {
	f := func(lenSeed, limSeed uint16) bool {
		total := int(lenSeed % 200)
		lim := uint64(limSeed % 250)
		p := Generate(func(e *Emitter) {
			for i := 0; i < total; i++ {
				e.Load(isa.F(i%4), uint64(i)*64)
			}
		})
		full := Collect(p)
		got := Collect(Limit(p, lim))
		want := int(lim)
		if total < want {
			want = total
		}
		if len(got) != want {
			return false
		}
		for i := range got {
			if got[i] != full[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Count(Repeat(p, n)) == n * Count(p).
func TestRepeatCount_Property(t *testing.T) {
	f := func(lenSeed, repSeed uint8) bool {
		total := int(lenSeed % 20)
		reps := int(repSeed % 10)
		p := Generate(func(e *Emitter) {
			for i := 0; i < total; i++ {
				e.Nop()
			}
		})
		return Count(Repeat(p, reps)) == uint64(total*reps)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
