package trace

import (
	"runtime"
	"testing"
	"time"

	"smtexplore/internal/isa"
)

// TestStreamCloseReleasesGoroutine pins the resource contract of
// Stream.Close: abandoning a stream mid-program (the bounded
// measurement window case) must release the iter.Pull generator
// goroutine, and Next after Close must report exhaustion rather than
// resurrect it.
func TestStreamCloseReleasesGoroutine(t *testing.T) {
	before := runtime.NumGoroutine()
	const rounds = 50
	for i := 0; i < rounds; i++ {
		s := NewStream(Forever(Generate(func(e *Emitter) {
			e.Nop()
		})))
		for k := 0; k < 3; k++ {
			if _, ok := s.Next(); !ok {
				t.Fatal("Forever stream ended")
			}
		}
		s.Close()
		s.Close() // idempotent
		if _, ok := s.Next(); ok {
			t.Fatal("Next after Close returned an instruction")
		}
		if !s.Done() {
			t.Fatal("closed stream not Done")
		}
	}
	after := runtime.NumGoroutine()
	for i := 0; i < 200 && after > before; i++ {
		time.Sleep(time.Millisecond)
		after = runtime.NumGoroutine()
	}
	if after > before {
		t.Errorf("leaked %d goroutines over %d close cycles (before=%d after=%d)",
			after-before, rounds, before, after)
	}
}

// TestStreamCloseUnpulled closes a stream that was never pulled from.
func TestStreamCloseUnpulled(t *testing.T) {
	s := NewStream(Generate(func(e *Emitter) {
		e.Emit(isa.Instr{Op: isa.Nop})
	}))
	s.Close()
	if _, ok := s.Next(); ok {
		t.Fatal("Next after Close returned an instruction")
	}
}
