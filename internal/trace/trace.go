// Package trace provides the workload representation consumed by the SMT
// simulator: a Program is a lazily evaluated µop sequence for one hardware
// context, written as ordinary sequential Go code against an Emitter.
//
// Programs are *address-faithful generators*: they produce the exact µop
// classes, register dependences and byte addresses a kernel would execute,
// without interpreting data values. Data-dependent control flow — which in
// the paper's loop-based scientific kernels occurs only at synchronisation
// points — is expressed through the declarative SpinWait/HaltWait/FlagStore
// operations interpreted by the simulator, so a Program's instruction
// sequence is fixed and the simulation fully deterministic.
package trace

import (
	"fmt"
	"iter"

	"smtexplore/internal/isa"
)

// Program is a lazily generated instruction stream for one hardware
// context. The simulator pulls µops one at a time; generation cost is
// incurred on demand so arbitrarily long workloads run in constant memory.
type Program = iter.Seq[isa.Instr]

// streamBatch is how many instructions a Stream pulls from its generator
// per coroutine switch. iter.Pull costs one goroutine round trip per
// yield, which profiles as ~15% of simulation time when paid per
// instruction; batching amortises it to one switch per streamBatch µops
// while keeping generation lazy at batch granularity.
const streamBatch = 256

// Stream adapts a Program to the pull interface used by the simulator
// front end. Close must be called when the stream is abandoned before
// exhaustion (e.g. a bounded measurement window).
type Stream struct {
	next func() ([]isa.Instr, bool)
	stop func()

	// buf is the current batch on loan from the generator goroutine; the
	// generator is suspended until the next pull, so reading (never
	// retaining) it here is race-free even though the backing array is
	// reused across batches.
	buf []isa.Instr
	pos int

	// loop, when non-nil, is an endless cyclic program served straight
	// from the slice (NewLoop): no generator goroutine, no per-batch
	// hand-off — Next is an array index and a wrap test. buf/pos double
	// as the cursor (buf == loop).
	loop []isa.Instr

	// Generated counts instructions pulled so far.
	Generated uint64
	done      bool
}

// NewStream starts pulling from p.
func NewStream(p Program) *Stream {
	next, stop := iter.Pull(batches(p, streamBatch))
	return &Stream{next: next, stop: stop}
}

// NewLoop builds the endless program that cycles through body, serving
// instructions directly from the slice. It is observationally identical
// to NewStream(Forever(<emit body>)) but removes the generator goroutine
// and the per-instruction emit/validate path from the simulation loop —
// the workload generators of this repository are all periodic, so their
// streams collapse to one precomputed period. The body is validated here,
// once, and must not be mutated afterwards (it may be shared across
// streams).
func NewLoop(body []isa.Instr) *Stream {
	if len(body) == 0 {
		panic("trace: NewLoop with empty body")
	}
	for _, in := range body {
		if err := in.Validate(); err != nil {
			panic(fmt.Sprintf("trace: invalid loop-body instruction: %v", err))
		}
	}
	return &Stream{loop: body, buf: body}
}

// batches regroups p into slices of at most n instructions, reusing one
// backing buffer. The buffer hand-off is safe under iter.Pull because the
// generator only resumes — and overwrites the buffer — after the consumer
// asks for the next batch.
func batches(p Program, n int) iter.Seq[[]isa.Instr] {
	return func(yield func([]isa.Instr) bool) {
		buf := make([]isa.Instr, 0, n)
		stopped := false
		p(func(in isa.Instr) bool {
			buf = append(buf, in)
			if len(buf) == n {
				if !yield(buf) {
					stopped = true
					return false
				}
				buf = buf[:0]
			}
			return true
		})
		if !stopped && len(buf) > 0 {
			yield(buf)
		}
	}
}

// Next returns the next instruction, or ok=false at end of program.
func (s *Stream) Next() (isa.Instr, bool) {
	if s.pos >= len(s.buf) {
		if s.loop != nil && !s.done {
			s.pos = 0
		} else {
			if s.done {
				return isa.Instr{}, false
			}
			b, ok := s.next()
			if !ok {
				s.done = true
				return isa.Instr{}, false
			}
			s.buf, s.pos = b, 0
		}
	}
	in := s.buf[s.pos]
	s.pos++
	s.Generated++
	return in, true
}

// Skip advances the stream past n instructions, as if Next had been
// called n times discarding the results (the snapshot-restore
// fast-forward). Loop streams jump by modular arithmetic; generated
// streams replay. It reports how many instructions were actually skipped
// (short only when a finite program ends).
func (s *Stream) Skip(n uint64) uint64 {
	if s.loop != nil && !s.done {
		s.pos = int((uint64(s.pos) + n) % uint64(len(s.loop)))
		s.Generated += n
		return n
	}
	for k := uint64(0); k < n; k++ {
		if _, ok := s.Next(); !ok {
			return k
		}
	}
	return n
}

// Done reports whether the program is exhausted.
func (s *Stream) Done() bool { return s.done }

// Close releases the generator. Safe to call multiple times.
func (s *Stream) Close() {
	s.done = true
	s.buf, s.pos, s.loop = nil, 0, nil
	if s.stop != nil {
		s.stop()
		s.stop = nil
	}
}

// Emitter is the DSL handed to workload generator functions. All Emit*
// methods validate the instruction in debug builds of a program (always —
// validation is cheap relative to pipeline simulation) and panic with a
// descriptive message on generator bugs, which tests surface immediately.
type Emitter struct {
	yield   func(isa.Instr) bool
	stopped bool
	// Count is the number of instructions emitted through this Emitter.
	Count uint64
}

// Generate turns a generator function into a Program.
func Generate(fn func(e *Emitter)) Program {
	return func(yield func(isa.Instr) bool) {
		e := &Emitter{yield: yield}
		fn(e)
	}
}

// Stopped reports whether the consumer stopped pulling; generator loops
// should return promptly once true (Emit keeps discarding after stop, so
// correctness does not depend on it, but wasted generation does).
func (e *Emitter) Stopped() bool { return e.stopped }

// Emit yields one instruction.
func (e *Emitter) Emit(in isa.Instr) {
	if err := in.Validate(); err != nil {
		panic(fmt.Sprintf("trace: emitted invalid instruction: %v", err))
	}
	if e.stopped {
		return
	}
	e.Count++
	if !e.yield(in) {
		e.stopped = true
	}
}

// EmitAll yields a sequence of instructions in order.
func (e *Emitter) EmitAll(ins ...isa.Instr) {
	for _, in := range ins {
		e.Emit(in)
	}
}

// ALU emits a register-to-register arithmetic µop.
func (e *Emitter) ALU(op isa.Op, dst, src1, src2 isa.Reg) {
	e.Emit(isa.ALU(op, dst, src1, src2))
}

// Load emits a load of addr into dst.
func (e *Emitter) Load(dst isa.Reg, addr uint64) { e.Emit(isa.Ld(dst, addr)) }

// TaggedLoad emits a load carrying a static-site tag for delinquent-load
// profiling.
func (e *Emitter) TaggedLoad(dst isa.Reg, addr uint64, tag isa.Tag) {
	e.Emit(isa.TaggedLd(dst, addr, tag))
}

// Store emits a store of src to addr.
func (e *Emitter) Store(src isa.Reg, addr uint64) { e.Emit(isa.St(src, addr)) }

// Branch emits a loop-closing branch µop.
func (e *Emitter) Branch() { e.Emit(isa.Instr{Op: isa.Branch}) }

// Nop emits a no-op.
func (e *Emitter) Nop() { e.Emit(isa.Instr{Op: isa.Nop}) }

// Pause emits the spin-wait hint.
func (e *Emitter) Pause() { e.Emit(isa.Instr{Op: isa.Pause}) }

// Spin emits a pause-augmented spin wait on cell.
func (e *Emitter) Spin(cell isa.Cell, cmp isa.CmpKind, val int64) {
	e.Emit(isa.Spin(cell, cmp, val))
}

// RawSpin emits a spin wait without the pause hint.
func (e *Emitter) RawSpin(cell isa.Cell, cmp isa.CmpKind, val int64) {
	e.Emit(isa.RawSpin(cell, cmp, val))
}

// HaltUntil emits a halt-based wait on cell.
func (e *Emitter) HaltUntil(cell isa.Cell, cmp isa.CmpKind, val int64) {
	e.Emit(isa.Halt(cell, cmp, val))
}

// SetFlag emits a FlagStore of val to cell backed by address addr.
func (e *Emitter) SetFlag(cell isa.Cell, val int64, addr uint64) {
	e.Emit(isa.Flag(cell, val, addr))
}

// Combinators.

// Empty is the zero-instruction program.
func Empty() Program { return func(func(isa.Instr) bool) {} }

// Concat runs programs back to back on the same context.
func Concat(ps ...Program) Program {
	return func(yield func(isa.Instr) bool) {
		for _, p := range ps {
			stopped := false
			p(func(in isa.Instr) bool {
				if !yield(in) {
					stopped = true
					return false
				}
				return true
			})
			if stopped {
				return
			}
		}
	}
}

// Repeat replays p n times. p must be a pure generator (replayable), which
// all workload generators in this repository are.
func Repeat(p Program, n int) Program {
	if n < 0 {
		panic("trace: Repeat with negative count")
	}
	ps := make([]Program, n)
	for i := range ps {
		ps[i] = p
	}
	return Concat(ps...)
}

// Forever replays p endlessly; callers bound execution with a measurement
// window (cycle or instruction budget), as the paper does with its 10 s
// stream runs.
func Forever(p Program) Program {
	return func(yield func(isa.Instr) bool) {
		for {
			stopped := false
			p(func(in isa.Instr) bool {
				if !yield(in) {
					stopped = true
					return false
				}
				return true
			})
			if stopped {
				return
			}
		}
	}
}

// Limit truncates p to at most n instructions.
func Limit(p Program, n uint64) Program {
	return func(yield func(isa.Instr) bool) {
		var count uint64
		p(func(in isa.Instr) bool {
			if count >= n {
				return false
			}
			count++
			return yield(in)
		})
	}
}

// Count fully evaluates p and returns its instruction count. Intended for
// tests and profiling of finite programs.
func Count(p Program) uint64 {
	var n uint64
	p(func(isa.Instr) bool { n++; return true })
	return n
}

// Collect fully evaluates p into a slice. Intended for tests on small
// programs.
func Collect(p Program) []isa.Instr {
	var out []isa.Instr
	p(func(in isa.Instr) bool { out = append(out, in); return true })
	return out
}

// Mix counts instructions of p per op class. Intended for tests validating
// generator instruction mixes against Table 1 targets.
func Mix(p Program) map[isa.Op]uint64 {
	m := make(map[isa.Op]uint64)
	p(func(in isa.Instr) bool { m[in.Op]++; return true })
	return m
}
