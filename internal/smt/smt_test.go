package smt

import (
	"errors"
	"testing"

	"smtexplore/internal/isa"
	"smtexplore/internal/perfmon"
	"smtexplore/internal/trace"
)

// fastMem returns a config with a tiny, fast memory system so arithmetic
// pipeline behaviour dominates.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Mem.Prefetch = false
	return cfg
}

// runSingle executes p alone on context 0 and returns the machine.
func runSingle(t *testing.T, cfg Config, p trace.Program) *Machine {
	t.Helper()
	m := New(cfg)
	m.LoadProgram(0, p)
	res, err := m.Run(50_000_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !res.Completed {
		t.Fatal("program did not complete within cycle budget")
	}
	return m
}

// chainProg emits n dependent ops of class op across k independent chains
// (the paper's ILP knob: k target registers).
func chainProg(op isa.Op, n, k int) trace.Program {
	return trace.Generate(func(e *trace.Emitter) {
		reg := isa.F
		if !op.IsFP() {
			reg = isa.R
		}
		for i := 0; i < n; i++ {
			d := reg(i % k)
			e.ALU(op, d, reg(k+1), reg(k+2)) // sources disjoint from targets
		}
	})
}

func cpi(m *Machine, tid int) float64 {
	c := m.Counters()
	instr := c.Get(perfmon.InstrRetired, tid)
	if instr == 0 {
		return 0
	}
	return float64(c.Get(perfmon.Cycles, tid)) / float64(instr)
}

func TestSingleThreadRetiresAll(t *testing.T) {
	const n = 1000
	m := runSingle(t, testConfig(), chainProg(isa.FAdd, n, 6))
	c := m.Counters()
	if got := c.Get(perfmon.InstrRetired, 0); got != n {
		t.Fatalf("retired %d instructions, want %d", got, n)
	}
	if got := c.Get(perfmon.InstrRetired, 1); got != 0 {
		t.Fatalf("idle context retired %d instructions", got)
	}
	if c.Get(perfmon.Cycles, 0) == 0 {
		t.Fatal("no cycles counted")
	}
}

func TestILPKnobFAdd(t *testing.T) {
	// fadd latency is 5, fully pipelined, one FP port: with 6 chains the
	// port saturates (CPI→1); with 1 chain every op waits the full
	// latency (CPI→5).
	const n = 20_000
	max := runSingle(t, testConfig(), chainProg(isa.FAdd, n, 6))
	min := runSingle(t, testConfig(), chainProg(isa.FAdd, n, 1))
	cpiMax, cpiMin := cpi(max, 0), cpi(min, 0)
	if cpiMax > 1.3 {
		t.Errorf("max-ILP fadd CPI = %.2f, want ≈1", cpiMax)
	}
	if cpiMin < 4.5 || cpiMin > 5.8 {
		t.Errorf("min-ILP fadd CPI = %.2f, want ≈5", cpiMin)
	}
	if cpiMin <= cpiMax {
		t.Errorf("min-ILP CPI %.2f not worse than max-ILP %.2f", cpiMin, cpiMax)
	}
}

func TestIAddBoundByFrontEnd(t *testing.T) {
	// Independent iadds: two double-speed ALUs could do 4/cycle, but
	// alloc/retire width 3 bounds throughput → CPI ≈ 1/3.
	const n = 30_000
	m := runSingle(t, testConfig(), chainProg(isa.IAdd, n, 6))
	got := cpi(m, 0)
	if got < 0.30 || got > 0.45 {
		t.Errorf("max-ILP iadd CPI = %.2f, want ≈0.33", got)
	}
}

func TestUnpipelinedFDiv(t *testing.T) {
	// fdiv is unpipelined with latency 38: even with max ILP the unit
	// recurrence serialises ops → CPI ≈ 38.
	const n = 2_000
	m := runSingle(t, testConfig(), chainProg(isa.FDiv, n, 6))
	got := cpi(m, 0)
	if got < 35 || got > 42 {
		t.Errorf("fdiv CPI = %.2f, want ≈38", got)
	}
}

func TestLogicalOpsSerialiseOnALU0(t *testing.T) {
	// Independent ilogic ops all need ALU0: 2/cycle max (double speed),
	// so CPI ≥ 0.5; independent iadds spread over both ALUs reach the
	// front-end bound 1/3.
	const n = 30_000
	logic := runSingle(t, testConfig(), chainProg(isa.ILogic, n, 6))
	adds := runSingle(t, testConfig(), chainProg(isa.IAdd, n, 6))
	cpiL, cpiA := cpi(logic, 0), cpi(adds, 0)
	if cpiL < 0.48 || cpiL > 0.65 {
		t.Errorf("ilogic CPI = %.2f, want ≈0.5 (ALU0 only)", cpiL)
	}
	if cpiL <= cpiA {
		t.Errorf("ilogic CPI %.2f should exceed iadd CPI %.2f", cpiL, cpiA)
	}
}

func TestDualThreadIAddHalvesThroughput(t *testing.T) {
	// Front-end-bound streams see ~100% slowdown when co-scheduled (the
	// paper's iadd×iadd observation: equivalent to serial execution).
	const n = 30_000
	solo := runSingle(t, testConfig(), chainProg(isa.IAdd, n, 6))
	m := New(testConfig())
	m.LoadProgram(0, chainProg(isa.IAdd, n, 6))
	m.LoadProgram(1, chainProg(isa.IAdd, n, 6))
	if _, err := m.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	soloCPI, dualCPI := cpi(solo, 0), cpi(m, 0)
	slowdown := dualCPI/soloCPI - 1
	if slowdown < 0.8 || slowdown > 1.3 {
		t.Errorf("iadd co-execution slowdown = %.0f%%, want ≈100%%", slowdown*100)
	}
}

func TestDualThreadMinILPFAddCoexists(t *testing.T) {
	// Min-ILP fadd streams leave the FP port mostly idle; co-execution
	// should barely change per-thread CPI (the paper's Figure 1 insight).
	const n = 20_000
	solo := runSingle(t, testConfig(), chainProg(isa.FAdd, n, 1))
	m := New(testConfig())
	m.LoadProgram(0, chainProg(isa.FAdd, n, 1))
	m.LoadProgram(1, chainProg(isa.FAdd, n, 1))
	if _, err := m.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	soloCPI, dualCPI := cpi(solo, 0), cpi(m, 0)
	if dualCPI > soloCPI*1.15 {
		t.Errorf("min-ILP fadd dual CPI %.2f vs solo %.2f: should coexist", dualCPI, soloCPI)
	}
}

func TestLoadHitLatencyAndMisses(t *testing.T) {
	cfg := testConfig()
	// Walk far beyond L2 so every line misses to memory.
	const lines = 2000
	p := trace.Generate(func(e *trace.Emitter) {
		for i := 0; i < lines; i++ {
			e.Load(isa.F(i%6), uint64(i)*64+1<<24)
		}
	})
	m := runSingle(t, cfg, p)
	th := m.Hierarchy().Thread(0)
	if th.L2Misses != lines {
		t.Errorf("L2 misses = %d, want %d", th.L2Misses, lines)
	}
	c := m.Counters()
	if c.Get(perfmon.InstrRetired, 0) != lines {
		t.Errorf("retired %d, want %d", c.Get(perfmon.InstrRetired, 0), lines)
	}
}

func TestStoreBufferStalls(t *testing.T) {
	// A dense store stream that misses L2 keeps store-buffer entries
	// occupied for the full drain latency, stalling the allocator — the
	// paper's resource-stall metric.
	cfg := testConfig()
	p := trace.Generate(func(e *trace.Emitter) {
		for i := 0; i < 4000; i++ {
			e.Store(isa.F(0), uint64(i)*64+1<<26)
		}
	})
	m := runSingle(t, cfg, p)
	if got := m.Counters().Get(perfmon.ResourceStallCycles, 0); got == 0 {
		t.Error("expected store-buffer stall cycles for missing store stream")
	}
}

func TestFlagStoreSpinHandshake(t *testing.T) {
	// Context 1 spins until context 0 raises the flag after its work.
	const cell = isa.Cell(1)
	producer := trace.Generate(func(e *trace.Emitter) {
		for i := 0; i < 500; i++ {
			e.ALU(isa.FAdd, isa.F(0), isa.F(1), isa.F(2))
		}
		e.SetFlag(cell, 1, isa.CellAddr(cell))
	})
	consumer := trace.Generate(func(e *trace.Emitter) {
		e.Spin(cell, isa.CmpEQ, 1)
		for i := 0; i < 100; i++ {
			e.ALU(isa.FAdd, isa.F(0), isa.F(1), isa.F(2))
		}
	})
	m := New(testConfig())
	m.LoadProgram(0, producer)
	m.LoadProgram(1, consumer)
	res, err := m.Run(10_000_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !res.Completed {
		t.Fatal("handshake did not complete")
	}
	c := m.Counters()
	if c.Get(perfmon.SpinUopsRetired, 1) == 0 {
		t.Error("consumer retired no spin µops while waiting")
	}
	if c.Get(perfmon.PipelineFlushes, 1) == 0 {
		t.Error("spin exit did not flush the pipeline")
	}
	if c.Get(perfmon.InstrRetired, 1) != 101 { // 100 fadds + flag-spin? no: 100 fadds + the FlagStore? consumer has no flagstore
		// consumer retires exactly 100 program instructions
		if c.Get(perfmon.InstrRetired, 1) != 100 {
			t.Errorf("consumer retired %d program instrs, want 100", c.Get(perfmon.InstrRetired, 1))
		}
	}
	if m.CellValue(cell) != 1 {
		t.Errorf("cell = %d, want 1", m.CellValue(cell))
	}
}

func TestSpinAlreadySatisfiedNoFlush(t *testing.T) {
	const cell = isa.Cell(2)
	p := trace.Generate(func(e *trace.Emitter) {
		e.Spin(cell, isa.CmpEQ, 5)
		e.ALU(isa.IAdd, isa.R(0), isa.R(1), isa.R(2))
	})
	m := New(testConfig())
	m.SetCell(cell, 5)
	m.LoadProgram(0, p)
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	c := m.Counters()
	if c.Get(perfmon.PipelineFlushes, 0) != 0 {
		t.Error("satisfied-on-arrival spin should not flush")
	}
	if c.Get(perfmon.SpinUopsRetired, 0) != 0 {
		t.Error("satisfied-on-arrival spin should retire no spin µops")
	}
}

func TestRawSpinConsumesMoreUopsThanPause(t *testing.T) {
	const cell = isa.Cell(3)
	mk := func(raw bool) *Machine {
		producer := trace.Generate(func(e *trace.Emitter) {
			for i := 0; i < 3000; i++ {
				e.ALU(isa.FAdd, isa.F(i%3), isa.F(4), isa.F(5))
			}
			e.SetFlag(cell, 1, isa.CellAddr(cell))
		})
		waiter := trace.Generate(func(e *trace.Emitter) {
			if raw {
				e.RawSpin(cell, isa.CmpEQ, 1)
			} else {
				e.Spin(cell, isa.CmpEQ, 1)
			}
		})
		m := New(testConfig())
		m.LoadProgram(0, producer)
		m.LoadProgram(1, waiter)
		if _, err := m.Run(20_000_000); err != nil {
			t.Fatal(err)
		}
		return m
	}
	raw := mk(true)
	paused := mk(false)
	rawSpin := raw.Counters().Get(perfmon.SpinUopsRetired, 1)
	pausedSpin := paused.Counters().Get(perfmon.SpinUopsRetired, 1)
	if rawSpin <= pausedSpin*2 {
		t.Errorf("raw spin retired %d µops vs paused %d: pause should throttle the loop hard", rawSpin, pausedSpin)
	}
	// And the producer should finish no slower alongside the paused spin.
	rawCyc := raw.Counters().Get(perfmon.Cycles, 0)
	pausedCyc := paused.Counters().Get(perfmon.Cycles, 0)
	if pausedCyc > rawCyc+rawCyc/10 {
		t.Errorf("producer slower beside paused spin (%d) than raw spin (%d)", pausedCyc, rawCyc)
	}
}

func TestHaltReleasesResourcesAndWakes(t *testing.T) {
	const cell = isa.Cell(4)
	worker := trace.Generate(func(e *trace.Emitter) {
		for i := 0; i < 5000; i++ {
			e.ALU(isa.IAdd, isa.R(i%6), isa.R(10), isa.R(11))
		}
		e.SetFlag(cell, 1, isa.CellAddr(cell))
		for i := 0; i < 100; i++ {
			e.ALU(isa.IAdd, isa.R(i%6), isa.R(10), isa.R(11))
		}
	})
	sleeper := trace.Generate(func(e *trace.Emitter) {
		e.HaltUntil(cell, isa.CmpEQ, 1)
		for i := 0; i < 100; i++ {
			e.ALU(isa.IAdd, isa.R(i%6), isa.R(10), isa.R(11))
		}
	})
	m := New(testConfig())
	m.LoadProgram(0, worker)
	m.LoadProgram(1, sleeper)
	res, err := m.Run(10_000_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !res.Completed {
		t.Fatal("halt workload did not complete")
	}
	c := m.Counters()
	if c.Get(perfmon.HaltedCycles, 1) == 0 {
		t.Error("sleeper never counted halted cycles")
	}
	if c.Get(perfmon.HaltTransitions, 1) != 1 {
		t.Errorf("halt transitions = %d, want 1", c.Get(perfmon.HaltTransitions, 1))
	}
	if c.Get(perfmon.SpinUopsRetired, 1) != 0 {
		t.Error("halted context should not retire spin µops")
	}
	if c.Get(perfmon.InstrRetired, 1) != 100 {
		t.Errorf("sleeper retired %d, want 100", c.Get(perfmon.InstrRetired, 1))
	}
}

func TestHaltGivesSiblingFullResources(t *testing.T) {
	// A store-hungry worker should stall less on the store buffer while
	// its sibling is halted (full 24 entries) than while the sibling
	// spins (partitioned 12 entries).
	const cell = isa.Cell(5)
	mkWorker := func() trace.Program {
		return trace.Generate(func(e *trace.Emitter) {
			// Walk a 64 KB region repeatedly: after the first pass the
			// stores hit L2, where the 20-cycle drain makes store-buffer
			// depth (12 partitioned vs 24 recombined) the bottleneck —
			// unlike memory-missing stores, which are MSHR-bound.
			const lines = 1024
			for pass := 0; pass < 4; pass++ {
				for i := 0; i < lines; i++ {
					e.Store(isa.F(0), uint64(i)*64+1<<26)
				}
			}
			e.SetFlag(cell, 1, isa.CellAddr(cell))
		})
	}
	mk := func(halt bool) uint64 {
		waiter := trace.Generate(func(e *trace.Emitter) {
			if halt {
				e.HaltUntil(cell, isa.CmpEQ, 1)
			} else {
				e.Spin(cell, isa.CmpEQ, 1)
			}
		})
		m := New(testConfig())
		m.LoadProgram(0, mkWorker())
		m.LoadProgram(1, waiter)
		if _, err := m.Run(50_000_000); err != nil {
			t.Fatal(err)
		}
		return m.Counters().Get(perfmon.Cycles, 0)
	}
	spinCycles := mk(false)
	haltCycles := mk(true)
	if haltCycles >= spinCycles {
		t.Errorf("worker beside halted sibling (%d cycles) not faster than beside spinning sibling (%d)", haltCycles, spinCycles)
	}
}

func TestDeadlockDetection(t *testing.T) {
	p := trace.Generate(func(e *trace.Emitter) {
		e.Spin(isa.Cell(9), isa.CmpEQ, 42) // never satisfied
	})
	m := New(testConfig())
	m.LoadProgram(0, p)
	_, err := m.Run(0)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestCycleBudgetStopsForeverStream(t *testing.T) {
	m := New(testConfig())
	m.LoadProgram(0, trace.Forever(chainProg(isa.IAdd, 64, 6)))
	res, err := m.Run(10_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("forever stream reported completion")
	}
	if res.Cycles != 10_000 {
		t.Fatalf("ran %d cycles, want 10000", res.Cycles)
	}
	if m.Counters().Get(perfmon.InstrRetired, 0) == 0 {
		t.Fatal("nothing retired within budget")
	}
}

func TestOnRetireObserver(t *testing.T) {
	var units []isa.Unit
	m := New(testConfig())
	m.OnRetire(func(ri RetireInfo) {
		if ri.Tid == 0 && !ri.Spin {
			units = append(units, ri.Unit)
		}
	})
	m.LoadProgram(0, trace.Generate(func(e *trace.Emitter) {
		e.ALU(isa.FAdd, isa.F(0), isa.F(1), isa.F(2))
		e.ALU(isa.FMul, isa.F(1), isa.F(2), isa.F(3))
		e.Load(isa.F(2), 64)
	}))
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	want := []isa.Unit{isa.UnitFPAdd, isa.UnitFPMul, isa.UnitLoad}
	if len(units) != len(want) {
		t.Fatalf("observed %d retires, want %d", len(units), len(want))
	}
	for i := range want {
		if units[i] != want[i] {
			t.Errorf("retire %d unit = %v, want %v", i, units[i], want[i])
		}
	}
}

func TestStaticPartitioningAblation(t *testing.T) {
	// With NoStaticPartition, a dual-thread store-heavy workload should
	// see fewer store-buffer stalls than under static halving.
	mkProg := func() trace.Program {
		return trace.Generate(func(e *trace.Emitter) {
			for i := 0; i < 2000; i++ {
				e.Store(isa.F(0), uint64(i)*64+1<<26)
			}
		})
	}
	run := func(shared bool) uint64 {
		cfg := testConfig()
		cfg.NoStaticPartition = shared
		m := New(cfg)
		m.LoadProgram(0, mkProg())
		m.LoadProgram(1, mkProg())
		if _, err := m.Run(80_000_000); err != nil {
			t.Fatal(err)
		}
		return m.Counters().Total(perfmon.ResourceStallCycles)
	}
	partitioned := run(false)
	shared := run(true)
	if shared >= partitioned {
		t.Errorf("shared buffers stalls (%d) not below partitioned (%d)", shared, partitioned)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.ROB = 125 // odd
	if err := bad.Validate(); err == nil {
		t.Error("odd ROB accepted")
	}
	bad = DefaultConfig()
	bad.AllocWidth = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero alloc width accepted")
	}
	bad = DefaultConfig()
	bad.SpinExitFlushPenalty = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative penalty accepted")
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestLoadProgramTwicePanics(t *testing.T) {
	m := New(testConfig())
	m.LoadProgram(0, trace.Empty())
	defer func() {
		if recover() == nil {
			t.Fatal("double LoadProgram did not panic")
		}
	}()
	m.LoadProgram(0, trace.Empty())
}

func TestUopConservation(t *testing.T) {
	// Every generated program instruction must retire exactly once.
	const n = 5000
	p := trace.Generate(func(e *trace.Emitter) {
		for i := 0; i < n; i++ {
			switch i % 4 {
			case 0:
				e.ALU(isa.FAdd, isa.F(i%6), isa.F(7), isa.F(8))
			case 1:
				e.Load(isa.F(i%6), uint64(i)*8)
			case 2:
				e.Store(isa.F(i%6), uint64(i)*8)
			case 3:
				e.ALU(isa.ILogic, isa.R(i%6), isa.R(7), isa.R(8))
			}
		}
	})
	m := runSingle(t, testConfig(), p)
	if got := m.Counters().Get(perfmon.InstrRetired, 0); got != n {
		t.Fatalf("retired %d, want %d (µop conservation violated)", got, n)
	}
}
