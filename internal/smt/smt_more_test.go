package smt

import (
	"errors"
	"testing"

	"smtexplore/internal/isa"
	"smtexplore/internal/perfmon"
	"smtexplore/internal/trace"
)

// TestDeterminism: the simulator is a pure function of (config, programs);
// two runs of the same workload must produce identical counter banks.
func TestDeterminism(t *testing.T) {
	build := func() *Machine {
		m := New(testConfig())
		m.LoadProgram(0, trace.Generate(func(e *trace.Emitter) {
			for i := 0; i < 3000; i++ {
				e.Load(isa.F(i%6), uint64(i)*48+1<<22)
				e.ALU(isa.FMul, isa.F(8+(i%4)), isa.F(i%6), isa.F(14))
				e.ALU(isa.FAdd, isa.F(16+(i%4)), isa.F(16+(i%4)), isa.F(8+(i%4)))
				e.Store(isa.F(16+(i%4)), uint64(i)*48+1<<23)
			}
		}))
		m.LoadProgram(1, trace.Generate(func(e *trace.Emitter) {
			for i := 0; i < 2000; i++ {
				e.ALU(isa.ILogic, isa.R(i%4), isa.R(i%4), isa.R(30))
				e.Load(isa.R(8+(i%4)), uint64(i)*32+1<<24)
			}
		}))
		if _, err := m.Run(50_000_000); err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := build(), build()
	if a.Cycle() != b.Cycle() {
		t.Fatalf("cycle counts differ: %d vs %d", a.Cycle(), b.Cycle())
	}
	sa, sb := a.Counters().Snapshot(), b.Counters().Snapshot()
	for _, ev := range perfmon.Events() {
		for tid := 0; tid < NumContexts; tid++ {
			if sa.Get(ev, tid) != sb.Get(ev, tid) {
				t.Errorf("%v/cpu%d differs: %d vs %d", ev, tid, sa.Get(ev, tid), sb.Get(ev, tid))
			}
		}
	}
}

// TestMachineClearFiresOnSharedLine: a store retiring into a line with a
// sibling's in-flight load triggers the clear; disjoint lines do not.
func TestMachineClearFiresOnSharedLine(t *testing.T) {
	run := func(sharedLine bool) uint64 {
		loadAddr := uint64(1 << 22)
		storeAddr := loadAddr
		if !sharedLine {
			storeAddr += 1 << 20
		}
		m := New(testConfig())
		// Context 0 keeps loads to the line in flight (L2-missing, so
		// they stay in flight long).
		m.LoadProgram(0, trace.Generate(func(e *trace.Emitter) {
			for i := 0; i < 400; i++ {
				e.Load(isa.F(i%6), loadAddr+uint64(i%2)*8)
				for j := 0; j < 6; j++ {
					e.ALU(isa.IAdd, isa.R(j), isa.R(10), isa.R(11))
				}
			}
		}))
		// Context 1 stores into the (shared or disjoint) line.
		m.LoadProgram(1, trace.Generate(func(e *trace.Emitter) {
			for i := 0; i < 400; i++ {
				e.Store(isa.F(0), storeAddr+uint64(i%4)*8)
				for j := 0; j < 6; j++ {
					e.ALU(isa.IAdd, isa.R(j), isa.R(10), isa.R(11))
				}
			}
		}))
		if _, err := m.Run(10_000_000); err != nil {
			t.Fatal(err)
		}
		return m.Counters().Get(perfmon.MachineClears, 0)
	}
	if got := run(true); got == 0 {
		t.Error("no machine clears on shared-line store/load interleave")
	}
	if got := run(false); got != 0 {
		t.Errorf("%d machine clears on disjoint lines", got)
	}
}

// TestMachineClearDisabled: MachineClearPenalty 0 switches the mechanism
// off.
func TestMachineClearDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.MachineClearPenalty = 0
	m := New(cfg)
	m.LoadProgram(0, trace.Generate(func(e *trace.Emitter) {
		for i := 0; i < 200; i++ {
			e.Load(isa.F(i%6), 1<<22)
		}
	}))
	m.LoadProgram(1, trace.Generate(func(e *trace.Emitter) {
		for i := 0; i < 200; i++ {
			e.Store(isa.F(0), 1<<22)
		}
	}))
	if _, err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if got := m.Counters().Total(perfmon.MachineClears); got != 0 {
		t.Errorf("machine clears counted while disabled: %d", got)
	}
}

// TestHaltWakeLatencyCharged: the waking context resumes only after the
// configured wake latency.
func TestHaltWakeLatencyCharged(t *testing.T) {
	measure := func(wake int) uint64 {
		cfg := testConfig()
		cfg.HaltWakeLatency = wake
		const cell = isa.Cell(3)
		m := New(cfg)
		m.LoadProgram(0, trace.Generate(func(e *trace.Emitter) {
			for i := 0; i < 300; i++ {
				e.ALU(isa.IAdd, isa.R(i%6), isa.R(10), isa.R(11))
			}
			e.SetFlag(cell, 1, isa.CellAddr(cell))
		}))
		m.LoadProgram(1, trace.Generate(func(e *trace.Emitter) {
			e.HaltUntil(cell, isa.CmpEQ, 1)
			e.ALU(isa.IAdd, isa.R(0), isa.R(10), isa.R(11))
		}))
		res, err := m.Run(5_000_000)
		if err != nil || !res.Completed {
			t.Fatalf("wake=%d: err=%v completed=%v", wake, err, res.Completed)
		}
		return m.Cycle()
	}
	fast := measure(100)
	slow := measure(5000)
	if slow < fast+4000 {
		t.Errorf("wake latency not charged: %d vs %d cycles", fast, slow)
	}
}

// TestBothThreadsHaltedDeadlocks: two contexts halting on cells only the
// other would set is a lost-wakeup deadlock the watchdog must catch.
func TestBothThreadsHaltedDeadlocks(t *testing.T) {
	m := New(testConfig())
	m.LoadProgram(0, trace.Generate(func(e *trace.Emitter) {
		e.HaltUntil(isa.Cell(1), isa.CmpEQ, 1)
		e.SetFlag(isa.Cell(2), 1, isa.CellAddr(2))
	}))
	m.LoadProgram(1, trace.Generate(func(e *trace.Emitter) {
		e.HaltUntil(isa.Cell(2), isa.CmpEQ, 1)
		e.SetFlag(isa.Cell(1), 1, isa.CellAddr(1))
	}))
	if _, err := m.Run(0); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

// TestRetireOrderIsProgramOrder: per context, the observer sees exactly
// the program sequence.
func TestRetireOrderIsProgramOrder(t *testing.T) {
	const n = 500
	var tags []isa.Tag
	m := New(testConfig())
	m.OnRetire(func(ri RetireInfo) {
		if ri.Tid == 0 && !ri.Spin {
			tags = append(tags, ri.Instr.Tag)
		}
	})
	m.LoadProgram(0, trace.Generate(func(e *trace.Emitter) {
		for i := 0; i < n; i++ {
			e.TaggedLoad(isa.F(i%6), uint64(i)*64, isa.Tag(i+1))
		}
	}))
	if _, err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if len(tags) != n {
		t.Fatalf("observed %d retires, want %d", len(tags), n)
	}
	for i, tag := range tags {
		if tag != isa.Tag(i+1) {
			t.Fatalf("retire %d has tag %d: out of program order", i, tag)
		}
	}
}

// TestPartitionFreezeOnWake: the sibling's allocator stalls briefly when a
// halted context wakes and the buffers re-partition.
func TestPartitionFreezeOnWake(t *testing.T) {
	cfg := testConfig()
	cfg.PartitionFreeze = 2000 // exaggerate to make it visible
	const cell = isa.Cell(5)
	m := New(cfg)
	m.LoadProgram(0, trace.Generate(func(e *trace.Emitter) {
		for i := 0; i < 2000; i++ {
			e.ALU(isa.IAdd, isa.R(i%6), isa.R(10), isa.R(11))
		}
		e.SetFlag(cell, 1, isa.CellAddr(cell))
		for i := 0; i < 6000; i++ {
			e.ALU(isa.IAdd, isa.R(i%6), isa.R(10), isa.R(11))
		}
	}))
	m.LoadProgram(1, trace.Generate(func(e *trace.Emitter) {
		e.HaltUntil(cell, isa.CmpEQ, 1)
		for i := 0; i < 100; i++ {
			e.ALU(isa.IAdd, isa.R(i%6), isa.R(10), isa.R(11))
		}
	}))
	res, err := m.Run(10_000_000)
	if err != nil || !res.Completed {
		t.Fatalf("err=%v completed=%v", err, res.Completed)
	}
	// With a 2000-cycle freeze the total time must exceed the unfrozen
	// variant noticeably.
	cfg2 := testConfig()
	cfg2.PartitionFreeze = 0
	m2 := New(cfg2)
	m2.LoadProgram(0, trace.Generate(func(e *trace.Emitter) {
		for i := 0; i < 2000; i++ {
			e.ALU(isa.IAdd, isa.R(i%6), isa.R(10), isa.R(11))
		}
		e.SetFlag(cell, 1, isa.CellAddr(cell))
		for i := 0; i < 6000; i++ {
			e.ALU(isa.IAdd, isa.R(i%6), isa.R(10), isa.R(11))
		}
	}))
	m2.LoadProgram(1, trace.Generate(func(e *trace.Emitter) {
		e.HaltUntil(cell, isa.CmpEQ, 1)
		for i := 0; i < 100; i++ {
			e.ALU(isa.IAdd, isa.R(i%6), isa.R(10), isa.R(11))
		}
	}))
	if res2, err := m2.Run(10_000_000); err != nil || !res2.Completed {
		t.Fatalf("err=%v", err)
	}
	if m.Cycle() <= m2.Cycle() {
		t.Errorf("partition freeze had no effect: %d vs %d cycles", m.Cycle(), m2.Cycle())
	}
}

// TestNoStaticPartitionSharesEverything: with the ablation knob on, a
// single thread may fill the whole store queue even while its sibling
// runs.
func TestNoStaticPartitionSharesEverything(t *testing.T) {
	run := func(shared bool) uint64 {
		cfg := testConfig()
		cfg.NoStaticPartition = shared
		m := New(cfg)
		m.LoadProgram(0, trace.Generate(func(e *trace.Emitter) {
			for i := 0; i < 1500; i++ {
				e.Store(isa.F(0), uint64(i)*64+1<<26)
			}
		}))
		m.LoadProgram(1, trace.Generate(func(e *trace.Emitter) {
			for i := 0; i < 1500; i++ {
				e.ALU(isa.IAdd, isa.R(i%6), isa.R(10), isa.R(11))
			}
		}))
		if _, err := m.Run(80_000_000); err != nil {
			t.Fatal(err)
		}
		return m.Counters().Get(perfmon.ResourceStallCycles, 0)
	}
	if shared, static := run(true), run(false); shared >= static {
		t.Errorf("shared buffers stalls (%d) not below static (%d)", shared, static)
	}
}

// TestCellsVisibleOnlyAfterRetire: a FlagStore publishes its value at
// retirement, not at issue.
func TestCellsVisibleOnlyAfterRetire(t *testing.T) {
	const cell = isa.Cell(7)
	m := New(testConfig())
	m.LoadProgram(0, trace.Generate(func(e *trace.Emitter) {
		// A long-latency fdiv chain delays retirement of the flag store
		// behind it.
		for i := 0; i < 4; i++ {
			e.ALU(isa.FDiv, isa.F(0), isa.F(0), isa.F(2))
		}
		e.SetFlag(cell, 1, isa.CellAddr(cell))
	}))
	for m.CellValue(cell) == 0 && !m.Done() {
		m.Step()
	}
	// The four dependent fdivs serialise ≥ 4*38 cycles before the store
	// can retire.
	if m.Cycle() < 4*38 {
		t.Errorf("flag visible at cycle %d, before the fdiv chain (≥152) could retire", m.Cycle())
	}
}

// TestSoftwarePrefetchIsNonBlocking: a prefetch instruction completes at
// AGU latency while its fill proceeds, so a later load to the line hits.
func TestSoftwarePrefetchIsNonBlocking(t *testing.T) {
	withPf := func(pf bool) (uint64, uint64) {
		m := New(testConfig())
		m.LoadProgram(0, trace.Generate(func(e *trace.Emitter) {
			if pf {
				e.Emit(isa.Pf(1<<25, 0))
			}
			// Enough independent work to cover the fill latency.
			for i := 0; i < 400; i++ {
				e.ALU(isa.IAdd, isa.R(i%6), isa.R(10), isa.R(11))
			}
			e.Load(isa.F(0), 1<<25)
			e.ALU(isa.FAdd, isa.F(1), isa.F(0), isa.F(2))
		}))
		if res, err := m.Run(10_000_000); err != nil || !res.Completed {
			t.Fatalf("err=%v", err)
		}
		return m.Cycle(), m.Hierarchy().Thread(0).L2ReadMisses
	}
	plainCycles, plainMisses := withPf(false)
	pfCycles, pfMisses := withPf(true)
	if pfCycles >= plainCycles {
		t.Errorf("prefetch did not help: %d vs %d cycles", pfCycles, plainCycles)
	}
	// The prefetch takes the (attributed) miss; the demand load hits.
	if pfMisses < plainMisses {
		t.Errorf("miss accounting odd: %d vs %d", pfMisses, plainMisses)
	}
	// And the prefetch itself must not stall the front end for the fill:
	// the run is far shorter than fill latency + work.
	if pfCycles > plainCycles-100 {
		t.Errorf("prefetch blocked the pipeline: %d vs %d", pfCycles, plainCycles)
	}
}

// TestWaitProfileAttribution: wait cycles land on the awaited cell.
func TestWaitProfileAttribution(t *testing.T) {
	m := New(testConfig())
	m.LoadProgram(0, trace.Generate(func(e *trace.Emitter) {
		for i := 0; i < 2000; i++ {
			e.ALU(isa.FAdd, isa.F(i%6), isa.F(8), isa.F(9))
		}
		e.SetFlag(3, 1, isa.CellAddr(3))
	}))
	m.LoadProgram(1, trace.Generate(func(e *trace.Emitter) {
		e.Spin(3, isa.CmpEQ, 1)
	}))
	if _, err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	wp := m.WaitProfile()
	if wp[3] == 0 {
		t.Fatal("no wait cycles attributed to cell 3")
	}
	if len(wp) != 1 {
		t.Errorf("unexpected cells in profile: %v", wp)
	}
}
