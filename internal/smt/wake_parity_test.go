package smt

import (
	"fmt"
	"testing"

	"smtexplore/internal/kernels"
	"smtexplore/internal/kernels/mm"
)

// TestWakePruningParity locksteps two machines over the MM tlp-fine
// kernel — one with wake-bound pruning (bitmap word skips, deep sleepers,
// port-block memos), one examining every scheduler entry every cycle —
// and requires identical occupancy and counters at every cycle. Pruning
// is a pure scan optimisation; any divergence is a timing bug.
func TestWakePruningParity(t *testing.T) {
	mk := func() *Machine {
		m := New(DefaultConfig())
		k, err := mm.New(mm.DefaultConfig(16))
		if err != nil {
			t.Fatal(err)
		}
		progs, err := k.Programs(kernels.TLPPfetchWork)
		if err != nil {
			t.Fatal(err)
		}
		m.LoadProgram(0, progs[0])
		if progs[1] != nil {
			m.LoadProgram(1, progs[1])
		}
		return m
	}
	a, b := mk(), mk()
	defer a.Close()
	defer b.Close()
	defer func() { debugNoWake = false }()
	for c := 0; c < 200000; c++ {
		if a.Done() && b.Done() {
			break
		}
		debugNoWake = false
		a.Step()
		debugNoWake = true
		b.Step()
		debugNoWake = false
		sa, sb := a.OccState(), b.OccState()
		if sa != sb {
			t.Fatalf("cycle %d: occupancy diverged\n  pruned:   %+v\n  per-slot: %+v\nsched(pruned)=%s\nsched(per-slot)=%s",
				c, sa, sb, dumpSched(a), dumpSched(b))
		}
		ca, cb := a.Counters().Snapshot().Raw(), b.Counters().Snapshot().Raw()
		if ca != cb {
			t.Fatalf("cycle %d: counters diverged\n pruned=%v\n per-slot=%v", c, ca, cb)
		}
	}
}

func dumpSched(m *Machine) string {
	out := ""
	m.schedEach(func(e schedEntry) {
		u := m.resolve(e.ref)
		if u == nil {
			out += fmt.Sprintf("[stale t%d wake=%d]", e.ref.tid, e.wake)
			return
		}
		out += fmt.Sprintf("[t%d %v seq=%d wake=%d rdy=%d retry=%d canc=%v iss=%v]",
			e.ref.tid, u.in.Op, u.seq, e.wake, u.readyAt, u.retryAt, u.cancelled, u.issued)
	})
	return out
}
