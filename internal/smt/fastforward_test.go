package smt

import (
	"testing"

	"smtexplore/internal/isa"
	"smtexplore/internal/perfmon"
	"smtexplore/internal/trace"
)

// ffPair runs the same workload twice — fast-forward off and on — and
// returns both machines for comparison. FF is an internal shortcut over
// provably idle cycles, so every architectural observable must match the
// per-cycle run exactly.
func ffPair(t *testing.T, load func(m *Machine)) (slow, fast *Machine) {
	t.Helper()
	run := func(ff bool) *Machine {
		m := New(testConfig())
		m.SetFastForward(ff)
		load(m)
		res, err := m.Run(200_000_000)
		if err != nil {
			t.Fatalf("ff=%v: %v", ff, err)
		}
		if !res.Completed {
			t.Fatalf("ff=%v: hung", ff)
		}
		return m
	}
	return run(false), run(true)
}

// ffCompare asserts cycle-exact equivalence of the two finished runs:
// total cycles, the full counter bank, and the per-cell wait profile.
func ffCompare(t *testing.T, tag string, slow, fast *Machine) {
	t.Helper()
	if slow.Cycle() != fast.Cycle() {
		t.Fatalf("%s: cycles diverged: slow=%d fast=%d", tag, slow.Cycle(), fast.Cycle())
	}
	ss, sf := slow.Counters().Snapshot(), fast.Counters().Snapshot()
	for _, ev := range perfmon.Events() {
		for tid := 0; tid < NumContexts; tid++ {
			if a, b := ss.Get(ev, tid), sf.Get(ev, tid); a != b {
				t.Errorf("%s: %v[t%d]: slow=%d fast=%d", tag, ev, tid, a, b)
			}
		}
	}
	ws, wf := slow.WaitProfile(), fast.WaitProfile()
	if len(ws) != len(wf) {
		t.Fatalf("%s: wait profile size: slow=%v fast=%v", tag, ws, wf)
	}
	for c, v := range ws {
		if wf[c] != v {
			t.Errorf("%s: wait[%v]: slow=%d fast=%d", tag, c, v, wf[c])
		}
	}
}

// TestFastForwardParityRandomPrograms: FF ≡ per-cycle stepping over
// arbitrary dual-context programs with a spin handshake.
func TestFastForwardParityRandomPrograms(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		cell := isa.Cell(seed%8 + 1)
		slow, fast := ffPair(t, func(m *Machine) {
			m.LoadProgram(0, randomProgram(seed*3, 1000, []isa.Cell{cell}))
			m.LoadProgram(1, trace.Concat(
				trace.Generate(func(e *trace.Emitter) { e.Spin(cell, isa.CmpEQ, 1) }),
				randomProgram(seed*5, 600, nil),
			))
		})
		ffCompare(t, "spin", slow, fast)
		slow.Close()
		fast.Close()
	}
}

// TestFastForwardParityHaltWait: FF across halted-context spans (the
// deepest skips: one context halted, the other draining a long miss
// chain) still lands on the exact wake cycle.
func TestFastForwardParityHaltWait(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		cell := isa.Cell(seed%8 + 1)
		slow, fast := ffPair(t, func(m *Machine) {
			m.LoadProgram(0, trace.Concat(
				randomProgram(seed*7, 900, []isa.Cell{cell}),
				randomProgram(seed*7+1, 300, nil),
			))
			m.LoadProgram(1, trace.Concat(
				trace.Generate(func(e *trace.Emitter) { e.HaltUntil(cell, isa.CmpEQ, 1) }),
				randomProgram(seed*11, 400, nil),
			))
		})
		ffCompare(t, "halt", slow, fast)
		slow.Close()
		fast.Close()
	}
}

// TestFastForwardParityMemBound: a single-context miss-dominated load
// chain, where FF skips the bulk of all cycles.
func TestFastForwardParityMemBound(t *testing.T) {
	slow, fast := ffPair(t, func(m *Machine) {
		m.LoadProgram(0, loadChainBody(0x4000_0000, 1<<20))
	})
	defer slow.Close()
	defer fast.Close()
	ffCompare(t, "membound", slow, fast)
}

// TestFastForwardSnapshotParity: snapshotting a paused FF run restores
// into a machine whose continuation matches the unpaused per-cycle run.
func TestFastForwardSnapshotParity(t *testing.T) {
	load := func(m *Machine) {
		m.LoadProgram(0, randomProgram(21, 1500, []isa.Cell{3}))
		m.LoadProgram(1, trace.Concat(
			trace.Generate(func(e *trace.Emitter) { e.Spin(3, isa.CmpEQ, 1) }),
			randomProgram(23, 500, nil),
		))
	}
	ref := New(testConfig())
	defer ref.Close()
	ref.SetFastForward(false)
	load(ref)
	if _, err := ref.Run(200_000_000); err != nil {
		t.Fatal(err)
	}

	m := New(testConfig())
	defer m.Close()
	m.SetFastForward(true)
	load(m)
	var snap *Snapshot
	res, err := m.RunPausable(200_000_000, 2000, func() bool {
		if snap == nil && m.Cycle() > 3000 {
			snap = m.Snapshot()
			return true
		}
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Paused || snap == nil {
		t.Fatal("run never paused for the snapshot")
	}

	r := New(testConfig())
	defer r.Close()
	r.SetFastForward(true)
	load(r)
	if err := r.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(200_000_000); err != nil {
		t.Fatal(err)
	}
	ffCompare(t, "restored", ref, r)
}

// TestStepZeroAllocSteadyState: once warm, the disarmed per-cycle step
// path performs no heap allocation at all — across compute-bound,
// dual-context and miss-dominated phases. This is the property the
// benchmark gate enforces with allocs/op; the test pins it locally.
func TestStepZeroAllocSteadyState(t *testing.T) {
	cases := []struct {
		name string
		load func(m *Machine)
	}{
		{"compute-2ctx", func(m *Machine) {
			m.LoadProgram(0, trace.Forever(chainProg(isa.FAdd, 1024, 6)))
			m.LoadProgram(1, trace.Forever(chainProg(isa.IAdd, 1024, 6)))
		}},
		{"membound-1ctx", func(m *Machine) {
			m.LoadProgram(0, trace.Forever(loadChainBody(0x4000_0000, 8<<20)))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := New(testConfig())
			defer m.Close()
			tc.load(m)
			// Warm-up: fill the ROB/scheduler rings, fault in the loop
			// stream cache, reach steady state.
			if _, err := m.Run(50_000); err != nil {
				t.Fatal(err)
			}
			avg := testing.AllocsPerRun(10, func() {
				for i := 0; i < 10_000; i++ {
					m.Step()
				}
			})
			if avg != 0 {
				t.Fatalf("steady-state stepping allocates: %.2f allocs per 10k cycles", avg)
			}
		})
	}
}
