package smt

import (
	"smtexplore/internal/isa"
	"smtexplore/internal/perfmon"
)

// issue dispatches ready µops from the shared scheduler window to the
// execution ports, oldest first across both contexts, up to IssueWidth per
// cycle. Port bandwidth is modelled in half-slots: the double-speed ALUs
// accept two µops per cycle on their port, while any other µop (FP,
// slow-int, load, store) occupies its port for the whole cycle.
// Non-pipelined or partially pipelined units additionally enforce their
// initiation interval through unitNextFree.
func (m *Machine) issue() {
	now := m.cycle
	issued := 0
	var portBudget [isa.NumPorts]int
	for p := 1; p < isa.NumPorts; p++ {
		portBudget[p] = 2 // two half-slots per port per cycle
	}

	// The select logic examines only the oldest scanLimit candidates per
	// cycle, like the bounded wakeup/select of the modelled scheduler
	// queues; younger entries wait until age brings them forward.
	const scanLimit = 64

	kept := m.sched[:0]
	for i, ref := range m.sched {
		if issued >= m.cfg.IssueWidth || len(kept) >= scanLimit {
			// No more dispatch this cycle: retain the tail wholesale.
			kept = append(kept, m.sched[i:]...)
			break
		}
		u := m.resolve(ref)
		if u == nil || u.cancelled || u.issued {
			// Stale (flushed) or already dispatched: drop the entry and
			// release the window slot.
			m.threads[ref.tid].schedCount--
			continue
		}
		if u.retryAt > now || !m.uopReady(u, now) {
			kept = append(kept, ref)
			continue
		}
		port, unit, cost, ok := m.pickPort(u, portBudget[:], now)
		if !ok {
			kept = append(kept, ref)
			continue
		}

		if u.in.Op == isa.Load {
			res := m.hier.Access(now, int(ref.tid), u.in.Addr, false, u.in.Tag)
			if res.Retry {
				// MSHR file full: the load replays later. The issue slot
				// and port bandwidth are consumed regardless.
				u.retryAt = now + uint64(m.cfg.RetryDelay)
				m.ctr.Inc(perfmon.ReplayedUops, int(ref.tid))
				portBudget[port] -= cost
				issued++
				kept = append(kept, ref)
				continue
			}
			u.doneAt = now + uint64(res.Latency)
			m.bookAccess(int(ref.tid), res, false)
			if m.cfg.MachineClearPenalty > 0 {
				t := &m.threads[ref.tid]
				t.inflightLoads[t.loadRecPos&7] = loadRec{ref: ref, line: u.in.Addr &^ 63}
				t.loadRecPos++
			}
		} else if u.in.Op == isa.Prefetch {
			// Non-binding software prefetch: the fill starts (or the hint
			// is dropped when the MSHR file is full) but the µop itself
			// completes at address-generation latency — it never blocks.
			res := m.hier.Access(now, int(ref.tid), u.in.Addr, false, u.in.Tag)
			if !res.Retry {
				m.bookAccess(int(ref.tid), res, false)
			}
			u.doneAt = now + uint64(isa.SpecOf(isa.Prefetch).Latency)
		} else {
			u.doneAt = now + uint64(isa.SpecOf(u.in.Op).Latency)
		}

		u.issued = true
		u.issueAt = now
		u.port, u.unit = port, unit
		if rec := isa.SpecOf(u.in.Op).Recurrence; rec > 1 {
			m.unitNextFree[unit] = now + uint64(rec)
		}
		portBudget[port] -= cost
		issued++
		m.ctr.Inc(perfmon.IssuedUops, int(ref.tid))
		m.threads[ref.tid].schedCount--
	}
	m.sched = kept
}

// uopReady reports whether all dataflow dependences of u are satisfied.
// Satisfied references are cleared and producer completion times memoised
// in readyAt, so the per-cycle scheduler scan degenerates to a single
// comparison for most waiting µops.
func (m *Machine) uopReady(u *uop, now uint64) bool {
	if u.readyAt > now {
		return false
	}
	ok := true
	if u.dep1.gen != 0 {
		if m.depSettled(&u.dep1, u, now) {
			u.dep1 = uopRef{}
		} else {
			ok = false
		}
	}
	if u.dep2.gen != 0 {
		if m.depSettled(&u.dep2, u, now) {
			u.dep2 = uopRef{}
		} else {
			ok = false
		}
	}
	if u.depW.gen != 0 {
		if m.depSettled(&u.depW, u, now) {
			u.depW = uopRef{}
		} else {
			ok = false
		}
	}
	return ok
}

// depSettled reports whether the dependence *r is complete at now; when the
// producer has issued but not completed, the consumer's readyAt advances to
// the producer's completion time.
func (m *Machine) depSettled(r *uopRef, consumer *uop, now uint64) bool {
	p := m.resolve(*r)
	if p == nil || p.cancelled {
		return true
	}
	if !p.issued {
		// The scan is oldest-first and single-pass: a producer that has
		// not issued by the time its consumer is examined cannot issue
		// until next cycle, so with ≥1-cycle latency the consumer cannot
		// be ready before now+2. Memoising this halves dependence walks
		// without altering timing.
		if now+2 > consumer.readyAt {
			consumer.readyAt = now + 2
		}
		return false
	}
	if p.doneAt <= now {
		return true
	}
	if p.doneAt > consumer.readyAt {
		consumer.readyAt = p.doneAt
	}
	return false
}

// pickPort selects an issue port for u honouring per-cycle half-slot
// budgets and unit initiation intervals. cost is 1 half-slot for
// double-speed ALU µops, 2 (the full port) otherwise.
func (m *Machine) pickPort(u *uop, portBudget []int, now uint64) (isa.Port, isa.Unit, int, bool) {
	spec := isa.SpecOf(u.in.Op)
	for _, p := range spec.Ports {
		unit := spec.UnitFor[p]
		cost := 1
		if isa.PortWidth(p, unit) < 2 {
			cost = 2
		}
		if portBudget[p] < cost {
			continue
		}
		if m.unitNextFree[unit] > now {
			continue
		}
		return p, unit, cost, true
	}
	return isa.PortNone, isa.UnitNone, 0, false
}
