package smt

import (
	"math/bits"

	"smtexplore/internal/isa"
	"smtexplore/internal/perfmon"
)

// schedEntry is one scheduler-window slot: the µop reference plus a
// conservative wake bound — a cycle before which examining the µop is
// provably a no-op (dependences cannot have completed, a retry delay is
// pending, or every candidate execution unit is busy). The bound lets
// the select scan skip the entry — and, via the per-word schedMin
// summary, whole uint64 words of entries — without resolving it. Wake
// bounds are advisory: a stale-low bound re-examines harmlessly (every
// skipped examination path is mutation-free), so they are neither
// serialized in snapshots nor consulted for anything but scan pruning.
type schedEntry struct {
	ref uopRef
	// op mirrors the µop's opcode so the port-budget probe of a
	// ready-but-port-starved entry needs no ROB access.
	op isa.Op
	// ready caches a true uopReady verdict. Readiness is sticky — a
	// satisfied dependence is cleared from the µop and readyAt never
	// rises afterwards — so the flag is invalidated only by the
	// spin-exit flush, via schedWakeStale.
	ready bool
	wake  uint64
}

// debugNoWake (tests only) disables wake-bound pruning so every entry is
// examined every cycle, the pre-bitmap behaviour.
var debugNoWake = false

// schedAsleep is the wake bound of an entry with no scheduled
// re-examination: it sleeps until a producer dispatch prods it.
const schedAsleep = ^uint64(0)

// schedInsert appends a reference to the scheduler ring in allocation
// order. wake is the entry's initial wake bound (the consumer's readyAt
// memo captured at allocation) and op the µop's opcode.
func (m *Machine) schedInsert(ref uopRef, op isa.Op, wake uint64) {
	// Compact one bitmap word short of capacity: the scan walks
	// 64-aligned absolute windows, and keeping the span under
	// capacity-64 guarantees no two windows alias the same physical
	// word — otherwise the oldest and newest entries would share a word
	// and be visited out of age order.
	if m.schedTail-m.schedHead >= uint64(len(m.schedRing)-64) {
		m.schedCompact()
	}
	slot := m.schedTail & uint64(len(m.schedRing)-1)
	m.schedRing[slot] = schedEntry{ref: ref, op: op, wake: wake}
	if u := m.resolve(ref); u != nil {
		u.schedSlot = uint32(slot)
	}
	w := slot >> 6
	if m.schedLive[w] == 0 {
		m.schedWordOp[w] = op
		m.schedWordMixed[w] = false
	} else if m.schedWordOp[w] != op {
		m.schedWordMixed[w] = true
	}
	m.schedLive[w] |= 1 << (slot & 63)
	if wake == schedAsleep {
		m.schedDeep[w] |= 1 << (slot & 63)
	} else {
		m.schedDeep[w] &^= 1 << (slot & 63)
	}
	if wake < m.schedMin[w] {
		m.schedMin[w] = wake
	}
	m.schedTail++
}

// schedCompact squeezes the holes out of the ring when the absolute span
// reaches capacity. Live entries keep their relative (age) order, so the
// scan — and therefore simulated timing — is unaffected. Amortised cost
// is O(1) per insertion: at least half the span is holes when it fires.
func (m *Machine) schedCompact() {
	mask := uint64(len(m.schedRing) - 1)
	n := uint64(0)
	for pos := m.schedHead; pos < m.schedTail; pos++ {
		slot := pos & mask
		if m.schedLive[slot>>6]&(1<<(slot&63)) != 0 {
			m.schedScratch[n] = m.schedRing[slot]
			n++
		}
	}
	for i := range m.schedLive {
		m.schedLive[i] = 0
		m.schedMin[i] = ^uint64(0)
		m.schedDeep[i] = 0
	}
	copy(m.schedRing, m.schedScratch[:n])
	for i := uint64(0); i < n; i++ {
		w := i >> 6
		if m.schedLive[w] == 0 {
			m.schedWordOp[w] = m.schedRing[i].op
			m.schedWordMixed[w] = false
		} else if m.schedWordOp[w] != m.schedRing[i].op {
			m.schedWordMixed[w] = true
		}
		m.schedLive[w] |= 1 << (i & 63)
		if m.schedRing[i].wake == schedAsleep {
			m.schedDeep[w] |= 1 << (i & 63)
		}
		if wk := m.schedRing[i].wake; wk < m.schedMin[w] {
			m.schedMin[w] = wk
		}
		// Keep the µop's back-pointer valid so dispatch prods land.
		if u := m.resolve(m.schedRing[i].ref); u != nil {
			u.schedSlot = uint32(i)
		}
	}
	m.schedHead, m.schedTail = 0, n
}

// schedEach visits the live scheduler entries oldest-first (snapshot and
// introspection path; the hot scan in issue is hand-rolled).
func (m *Machine) schedEach(fn func(schedEntry)) {
	mask := uint64(len(m.schedRing) - 1)
	for pos := m.schedHead; pos < m.schedTail; pos++ {
		slot := pos & mask
		if m.schedLive[slot>>6]&(1<<(slot&63)) != 0 {
			fn(m.schedRing[slot])
		}
	}
}

// schedLen counts the live scheduler entries.
func (m *Machine) schedLen() int {
	n := 0
	for _, w := range m.schedLive {
		n += bits.OnesCount64(w)
	}
	return n
}

// schedReset empties the ring (Restore path). Entries are re-inserted
// with wake 0 — examined immediately, exactly as the pre-wake-bound scan
// treated every entry — so a restored machine steps identically.
func (m *Machine) schedReset() {
	for i := range m.schedLive {
		m.schedLive[i] = 0
		m.schedMin[i] = ^uint64(0)
		m.schedDeep[i] = 0
	}
	m.schedHead, m.schedTail = 0, 0
	m.portBlockedAt = [len(m.portBlockedAt)]uint64{}
	m.portBlockedWake = [len(m.portBlockedWake)]uint64{}
}

// schedWakeStale zeroes the wake bound of entries whose reference went
// stale (spin-flush invalidation), so the next scan drops them — and
// releases their window slots — on the same cycle the per-slot scan
// always did, keeping allocation timing byte-identical.
func (m *Machine) schedWakeStale() {
	mask := uint64(len(m.schedRing) - 1)
	for pos := m.schedHead; pos < m.schedTail; pos++ {
		slot := pos & mask
		w := slot >> 6
		if m.schedLive[w]&(1<<(slot&63)) == 0 {
			continue
		}
		e := &m.schedRing[slot]
		if u := m.resolve(e.ref); u == nil || u.cancelled || u.issued {
			e.wake = 0
			e.ready = false
			m.schedMin[w] = 0
			m.schedDeep[w] &^= 1 << (slot & 63)
		}
	}
}

// nextPortFree returns a lower bound on the next cycle a µop of opcode op
// could acquire an issue port: next cycle if any candidate unit is (or is
// about to be) free — per-cycle port budgets reset every cycle —
// otherwise the earliest initiation-interval expiry among the candidate
// units. unitNextFree only grows, so the bound can go stale low (harmless
// re-examination) but never high.
func (m *Machine) nextPortFree(op isa.Op, now uint64) uint64 {
	earliest := ^uint64(0)
	for _, c := range opPorts[op] {
		nf := m.unitNextFree[c.unit]
		if nf <= now+1 {
			return now + 1
		}
		if nf < earliest {
			earliest = nf
		}
	}
	return earliest
}

// issue dispatches ready µops from the shared scheduler window to the
// execution ports, oldest first across both contexts, up to IssueWidth per
// cycle. Port bandwidth is modelled in half-slots: the double-speed ALUs
// accept two µops per cycle on their port, while any other µop (FP,
// slow-int, load, store) occupies its port for the whole cycle.
// Non-pipelined or partially pipelined units additionally enforce their
// initiation interval through unitNextFree.
func (m *Machine) issue() {
	now := m.cycle
	issued := 0
	var portBudget [isa.NumPorts]int
	for p := 1; p < isa.NumPorts; p++ {
		portBudget[p] = 2 // two half-slots per port per cycle
	}

	// The select logic examines only the oldest scanLimit candidates per
	// cycle, like the bounded wakeup/select of the modelled scheduler
	// queues; younger entries wait until age brings them forward. kept
	// counts retained candidates — skipping a sleeping entry (or a whole
	// word of them) retains it, so wake-bound pruning leaves the
	// scan-window accounting identical to the per-slot loop.
	const scanLimit = 64

	width := m.cfg.IssueWidth
	kept := 0
	mask := uint64(len(m.schedRing) - 1)
	stopped := false
	var issuedBy [NumContexts]uint64

	// Walk 64-aligned absolute windows; each maps to exactly one bitmap
	// word (the span never exceeds ring capacity, and bits outside
	// [head, tail) are clear).
	for base := m.schedHead &^ 63; base < m.schedTail && !stopped; base += 64 {
		w := (base & mask) >> 6
		liveW := m.schedLive[w]
		if liveW == 0 {
			continue
		}
		if m.schedMin[w] > now && !debugNoWake {
			// Every entry in this word sleeps past now: retain them all
			// with one compare. They still occupy scan-window slots.
			kept += bits.OnesCount64(liveW)
			if kept >= scanLimit {
				break
			}
			continue
		}
		newMin := ^uint64(0)
		wordPartial := false
		// Deep sleepers (wake == schedAsleep) re-arm only via a dispatch
		// prod, so the scan retains them by popcount — interleaved in age
		// order with the awake entries so the scan-window accounting stays
		// identical to the per-slot loop (their ^0 wake never lowers
		// newMin, and their examination would be a pure skip).
		deepPending := m.schedDeep[w] & liveW
		if debugNoWake {
			deepPending = 0
		}
		for bm := liveW &^ deepPending; bm != 0; bm &= bm - 1 {
			b := bits.TrailingZeros64(bm)
			if older := deepPending & (1<<uint(b) - 1); older != 0 {
				kept += bits.OnesCount64(older)
				// A dispatch at an earlier awake bit may have prodded one
				// of these sleepers, giving it a finite wake (> now, so it
				// needs no exam this cycle) that the exact-min update must
				// see — the per-slot loop would have visited it here.
				if prodded := older &^ m.schedDeep[w]; prodded != 0 {
					for bm2 := prodded; bm2 != 0; bm2 &= bm2 - 1 {
						slot2 := w<<6 | uint64(bits.TrailingZeros64(bm2))
						if wk := m.schedRing[slot2].wake; wk < newMin {
							newMin = wk
						}
					}
				}
				deepPending &^= older
			}
			if issued >= width || kept >= scanLimit {
				// No more dispatch this cycle: retain the tail wholesale.
				stopped = true
				break
			}
			slot := w<<6 | uint64(b)
			e := &m.schedRing[slot]
			if e.wake > now && !debugNoWake {
				kept++
				if e.wake < newMin {
					newMin = e.wake
				}
				continue
			}
			ref := e.ref
			var u *uop
			if !e.ready {
				u = m.resolve(ref)
				if u == nil || u.cancelled || u.issued {
					// Stale (flushed) or already dispatched: drop the
					// entry and release the window slot.
					m.schedLive[w] &^= 1 << uint64(b)
					m.threads[ref.tid].schedCount--
					continue
				}
				if u.retryAt > now {
					wk := u.readyAt
					if u.retryAt > wk {
						wk = u.retryAt
					}
					e.wake = wk
					kept++
					if wk < newMin {
						newMin = wk
					}
					continue
				}
				if ready, deep := m.uopReady(u, ref, now); !ready {
					// Not ready: sleep until the memoised bound — or,
					// when every outstanding producer will prod this
					// entry on dispatch, without any bound at all. A
					// false uopReady always leaves readyAt > now, and in
					// between the per-slot loop's examination was a
					// no-op, so the skip is timing-exact.
					wk := u.readyAt
					if deep {
						wk = schedAsleep
						m.schedDeep[w] |= 1 << uint64(b)
					}
					e.wake = wk
					kept++
					if wk < newMin {
						newMin = wk
					}
					continue
				}
				e.ready = true
			}
			if m.portBlockedAt[e.op] == now+1 {
				// A same-class candidate already found the ports
				// exhausted this cycle; reuse its wake bound.
				wk := m.portBlockedWake[e.op]
				e.wake = wk
				kept++
				if wk < newMin {
					newMin = wk
				}
				if !m.schedWordMixed[w] {
					// Opcode-uniform word: every remaining candidate
					// hits the same exhausted port class (ready or not,
					// none can dispatch this cycle), so retain the
					// remainder wholesale — the unvisited awake bits and
					// the still-pending deep sleepers. Skipped
					// examinations are pure memo updates — timing-exact
					// to defer.
					kept += bits.OnesCount64(bm&(bm-1)) + bits.OnesCount64(deepPending)
					wordPartial = true
					break
				}
				continue
			}
			port, unit, cost, ok := m.pickPort(e.op, portBudget[:], now)
			if !ok {
				// Port-starved: probe again next time a candidate unit
				// can be free. A cached-ready entry reaches this point
				// without touching the ROB at all.
				wk := m.nextPortFree(e.op, now)
				m.portBlockedAt[e.op] = now + 1
				m.portBlockedWake[e.op] = wk
				e.wake = wk
				kept++
				if wk < newMin {
					newMin = wk
				}
				if !m.schedWordMixed[w] {
					kept += bits.OnesCount64(bm&(bm-1)) + bits.OnesCount64(deepPending)
					wordPartial = true
					break
				}
				continue
			}
			if u == nil {
				u = m.resolve(ref)
			}

			if u.in.Op == isa.Load {
				res := m.hier.Access(now, int(ref.tid), u.in.Addr, false, u.in.Tag)
				if res.Retry {
					// MSHR file full: the load replays later. The issue
					// slot and port bandwidth are consumed regardless.
					u.retryAt = now + uint64(m.cfg.RetryDelay)
					m.ctr.Inc(perfmon.ReplayedUops, int(ref.tid))
					portBudget[port] -= cost
					issued++
					e.wake = u.retryAt
					kept++
					if e.wake < newMin {
						newMin = e.wake
					}
					continue
				}
				u.doneAt = now + uint64(res.Latency)
				m.bookAccess(int(ref.tid), res, false)
				if m.cfg.MachineClearPenalty > 0 {
					t := &m.threads[ref.tid]
					t.inflightLoads[t.loadRecPos&7] = loadRec{ref: ref, line: u.in.Addr &^ 63}
					t.loadRecPos++
				}
			} else if u.in.Op == isa.Prefetch {
				// Non-binding software prefetch: the fill starts (or the
				// hint is dropped when the MSHR file is full) but the µop
				// itself completes at address-generation latency — it
				// never blocks.
				res := m.hier.Access(now, int(ref.tid), u.in.Addr, false, u.in.Tag)
				if !res.Retry {
					m.bookAccess(int(ref.tid), res, false)
				}
				u.doneAt = now + uint64(isa.SpecOf(isa.Prefetch).Latency)
			} else {
				u.doneAt = now + opLatency[u.in.Op]
			}

			u.issued = true
			u.issueAt = now
			u.port, u.unit = port, unit
			if rec := opRecurrence[e.op]; rec > 1 {
				m.unitNextFree[unit] = now + rec
			}
			portBudget[port] -= cost
			issued++
			issuedBy[ref.tid]++
			m.schedLive[w] &^= 1 << uint64(b)
			m.threads[ref.tid].schedCount--
			if u.nCons != 0 {
				m.prodConsumers(u)
			}
		}
		if !stopped && !wordPartial && deepPending != 0 {
			// Deep sleepers younger than the last examined awake entry
			// still occupy scan-window slots.
			kept += bits.OnesCount64(deepPending)
			// A dispatch above may have prodded a younger deep sleeper in
			// this same word, giving it a finite wake the exact-min update
			// below must see (the per-slot loop would have visited it).
			if prodded := deepPending &^ m.schedDeep[w]; prodded != 0 {
				for bm := prodded; bm != 0; bm &= bm - 1 {
					slot := w<<6 | uint64(bits.TrailingZeros64(bm))
					if wk := m.schedRing[slot].wake; wk < newMin {
						newMin = wk
					}
				}
			}
		}
		switch {
		case wordPartial:
			// The retained remainder may hold entries with wake bounds at
			// or below now; re-examine the word next cycle.
			if newMin > now+1 {
				newMin = now + 1
			}
			m.schedMin[w] = newMin
			if kept >= scanLimit {
				stopped = true
			}
		case !stopped:
			// The whole word was examined: its minimum wake is now exact.
			// On an early stop the stale (lower) bound stays — wakes only
			// rise, so it remains a valid lower bound.
			m.schedMin[w] = newMin
		}
	}

	for tid, n := range issuedBy {
		if n != 0 {
			m.ctr.Add(perfmon.IssuedUops, tid, n)
		}
	}

	// Advance past leading holes so the span — and compaction pressure —
	// tracks the live window. Amortised O(1): head only moves forward.
	for m.schedHead < m.schedTail {
		slot := m.schedHead & mask
		if m.schedLive[slot>>6]&(1<<(slot&63)) != 0 {
			break
		}
		m.schedHead++
	}
}

// Dependence examination outcomes beyond plain settled/unsettled, used to
// decide whether an unready µop may sleep until prodded rather than poll.
const (
	depDone     = iota // settled: producer complete or gone
	depPending         // issued; completion bound folded into readyAt
	depWillProd        // unissued, registered: producer dispatch will prod
	depPoll            // unissued, unregistered: consumer must poll
)

// uopReady reports whether all dataflow dependences of u are satisfied.
// Satisfied references are cleared and producer completion times memoised
// in readyAt, so the per-cycle scheduler scan degenerates to a single
// comparison for most waiting µops. deep reports that an unready µop may
// sleep without a finite wake bound: at least one outstanding producer is
// registered to prod it on dispatch, and none requires polling — pending
// (already-issued) producers are safe to oversleep because their
// completion is folded into readyAt, which every future prod honours.
func (m *Machine) uopReady(u *uop, ref uopRef, now uint64) (ready, deep bool) {
	if u.readyAt > now {
		return false, false
	}
	ready = true
	willProd, poll := false, false
	if u.dep1.gen != 0 {
		switch m.depSettled(&u.dep1, u, ref, 1, now) {
		case depDone:
			u.dep1 = uopRef{}
		case depWillProd:
			ready, willProd = false, true
		case depPoll:
			ready, poll = false, true
		default:
			ready = false
		}
	}
	if u.dep2.gen != 0 {
		switch m.depSettled(&u.dep2, u, ref, 2, now) {
		case depDone:
			u.dep2 = uopRef{}
		case depWillProd:
			ready, willProd = false, true
		case depPoll:
			ready, poll = false, true
		default:
			ready = false
		}
	}
	if u.depW.gen != 0 {
		switch m.depSettled(&u.depW, u, ref, 4, now) {
		case depDone:
			u.depW = uopRef{}
		case depWillProd:
			ready, willProd = false, true
		case depPoll:
			ready, poll = false, true
		default:
			ready = false
		}
	}
	return ready, willProd && !poll
}

// depSettled examines the dependence *r at cycle now, advancing the
// consumer's readyAt to the best known completion bound and registering
// the consumer for a dispatch prod when the producer has room.
func (m *Machine) depSettled(r *uopRef, consumer *uop, consRef uopRef, bit uint8, now uint64) int {
	p := m.resolve(*r)
	if p == nil || p.cancelled {
		return depDone
	}
	if !p.issued {
		if b := unissuedBound(p, now); b > consumer.readyAt {
			consumer.readyAt = b
		}
		if consumer.regBits&bit == 0 {
			if int(p.nCons) == len(p.cons) {
				return depPoll
			}
			p.cons[p.nCons] = consRef
			p.nCons++
			consumer.regBits |= bit
		}
		return depWillProd
	}
	if p.doneAt <= now {
		return depDone
	}
	if p.doneAt > consumer.readyAt {
		consumer.readyAt = p.doneAt
	}
	return depPending
}

// prodConsumers wakes the registered consumers of a µop that just
// dispatched: each gets its readyAt raised to the producer's completion
// time and its scheduler entry re-armed to examine at that cycle. The
// slot is validated against the consumer's reference, so a recycled or
// compacted ring can never be corrupted by a stale prod.
func (m *Machine) prodConsumers(p *uop) {
	for i := 0; i < int(p.nCons); i++ {
		ref := p.cons[i]
		c := m.resolve(ref)
		if c == nil || c.cancelled || c.issued {
			continue
		}
		if p.doneAt > c.readyAt {
			c.readyAt = p.doneAt
		}
		slot := uint64(c.schedSlot)
		e := &m.schedRing[slot]
		if e.ref == ref {
			// readyAt is always a valid wake bound for an unissued µop,
			// so set it unconditionally — raising a deep-asleep entry's
			// sentinel down, or a stale-low poll bound up.
			e.wake = c.readyAt
			w := slot >> 6
			m.schedDeep[w] &^= 1 << (slot & 63)
			if c.readyAt < m.schedMin[w] {
				m.schedMin[w] = c.readyAt
			}
		}
	}
	p.nCons = 0
}

// unissuedBound returns a lower bound on the completion time of the
// unissued producer p as observed at cycle now: p cannot acquire a port
// before max(now+1, readyAt, retryAt) — the issue scan is oldest-first
// and single-pass, so a producer seen unissued cannot dispatch until the
// next cycle — and completion follows no sooner than its fixed latency
// (1 for loads, whose latency is decided by the cache at issue). The
// bound lets a dependence chain sleep each consumer until the first
// cycle its producer could possibly have finished, collapsing the
// re-memoisation walks that otherwise recur every other cycle.
// Cancellation cannot settle a dependence ahead of this bound: the only
// cancellation path is the spin-exit flush, and spin µops are consumed
// exclusively by other spin µops flushed in the same call.
func unissuedBound(p *uop, now uint64) uint64 {
	earliest := now + 1
	if p.readyAt > earliest {
		earliest = p.readyAt
	}
	if p.retryAt > earliest {
		earliest = p.retryAt
	}
	lat := uint64(1)
	if op := p.in.Op; op != isa.Load {
		if l := opLatency[op]; l > 1 {
			lat = l
		}
	}
	return earliest + lat
}

// pickPort selects an issue port for a µop of opcode op honouring
// per-cycle half-slot budgets and unit initiation intervals. cost is 1
// half-slot for double-speed ALU µops, 2 (the full port) otherwise.
func (m *Machine) pickPort(op isa.Op, portBudget []int, now uint64) (isa.Port, isa.Unit, int, bool) {
	for _, c := range opPorts[op] {
		if portBudget[c.port] < c.cost {
			continue
		}
		if m.unitNextFree[c.unit] > now {
			continue
		}
		return c.port, c.unit, c.cost, true
	}
	return isa.PortNone, isa.UnitNone, 0, false
}
