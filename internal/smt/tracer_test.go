package smt

import (
	"strings"
	"testing"

	"smtexplore/internal/isa"
	"smtexplore/internal/trace"
)

func TestTracerCapturesAndBounds(t *testing.T) {
	m := New(testConfig())
	tr := NewTracer(8)
	tr.Attach(m)
	m.LoadProgram(0, chainProg(isa.FAdd, 50, 6))
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	recs := tr.Records()
	if len(recs) != 8 {
		t.Fatalf("captured %d records, want bounded 8", len(recs))
	}
	for _, r := range recs {
		if r.AllocCycle > r.IssueCycle || r.IssueCycle > r.CompleteCycle || r.CompleteCycle > r.Cycle {
			t.Fatalf("stage order violated: %+v", r)
		}
	}
}

func TestTracerChainsObservers(t *testing.T) {
	m := New(testConfig())
	var chained int
	m.OnRetire(func(RetireInfo) { chained++ })
	tr := NewTracer(100)
	tr.Attach(m)
	m.LoadProgram(0, chainProg(isa.IAdd, 20, 6))
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if chained != 20 {
		t.Fatalf("chained observer saw %d retires, want 20", chained)
	}
	if len(tr.Records()) != 20 {
		t.Fatalf("tracer saw %d retires, want 20", len(tr.Records()))
	}
}

func TestTracerTimelineAndStats(t *testing.T) {
	m := New(testConfig())
	tr := NewTracer(0)
	tr.Attach(m)
	m.LoadProgram(0, trace.Generate(func(e *trace.Emitter) {
		e.Load(isa.F(0), 1<<24) // cold miss: long execute phase
		e.ALU(isa.FAdd, isa.F(1), isa.F(0), isa.F(2))
	}))
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	out := tr.Timeline(0, m.Cycle()+1, 64)
	if !strings.Contains(out, "load") || !strings.Contains(out, "fadd") {
		t.Fatalf("timeline missing rows:\n%s", out)
	}
	if !strings.Contains(out, "A") || !strings.Contains(out, "R") {
		t.Fatalf("timeline missing stage markers:\n%s", out)
	}
	st := tr.Stats()
	if st.Count != 2 {
		t.Fatalf("stats count %d, want 2", st.Count)
	}
	// The cold-missing load executes for hundreds of cycles.
	if st.AvgExecute < 50 {
		t.Errorf("avg execute %.1f, want dominated by the miss", st.AvgExecute)
	}
	if st.AvgLifetime < st.AvgExecute {
		t.Error("lifetime below execute phase")
	}
}

func TestTracerTimelineWindowFilter(t *testing.T) {
	m := New(testConfig())
	tr := NewTracer(0)
	tr.Attach(m)
	m.LoadProgram(0, chainProg(isa.IAdd, 30, 6))
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if out := tr.Timeline(1_000_000, 2_000_000, 64); out != "" {
		t.Errorf("out-of-window timeline not empty:\n%s", out)
	}
}
