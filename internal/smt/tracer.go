package smt

import (
	"fmt"
	"strings"
)

// Tracer records per-µop pipeline timestamps from the retirement stream
// and renders gem5-pipeview-style timelines — the debugging companion of
// the simulator. Attach it before running; it keeps at most max records
// (oldest dropped), so tracing long runs stays bounded.
type Tracer struct {
	max  int
	recs []RetireInfo
	// Chain lets the tracer coexist with another observer (e.g. the
	// profile collector).
	chain func(RetireInfo)
}

// NewTracer builds a tracer bounded to max records (≤ 0 means 4096).
func NewTracer(max int) *Tracer {
	if max <= 0 {
		max = 4096
	}
	return &Tracer{max: max}
}

// Attach installs the tracer as the machine's retirement observer,
// preserving any observer already installed by chaining to it.
func (tr *Tracer) Attach(m *Machine) {
	tr.chain = m.onRetire
	m.OnRetire(tr.Observe)
}

// Observe records one retirement.
func (tr *Tracer) Observe(ri RetireInfo) {
	if len(tr.recs) == tr.max {
		copy(tr.recs, tr.recs[1:])
		tr.recs = tr.recs[:tr.max-1]
	}
	tr.recs = append(tr.recs, ri)
	if tr.chain != nil {
		tr.chain(ri)
	}
}

// Records returns the captured retirements, oldest first.
func (tr *Tracer) Records() []RetireInfo { return tr.recs }

// Timeline renders the µops retiring in [from, to) as one row each:
//
//	c100 [0] load f0 <- [0x40]      A--I===C...R
//
// A = allocate, I = issue, C = complete, R = retire; '-' waits in the
// scheduler, '=' executes, '.' waits for in-order retirement. Spin-loop
// µops are marked with 's'. Rows are clipped to width columns.
func (tr *Tracer) Timeline(from, to uint64, width int) string {
	if width <= 0 {
		width = 64
	}
	var b strings.Builder
	for _, ri := range tr.recs {
		if ri.Cycle < from || ri.Cycle >= to {
			continue
		}
		marker := ' '
		if ri.Spin {
			marker = 's'
		}
		fmt.Fprintf(&b, "c%-8d [%d]%c %-28s %s\n",
			ri.AllocCycle, ri.Tid, marker, clip(ri.Instr.String(), 28),
			lane(ri, width))
	}
	return b.String()
}

// lane draws one µop's pipeline occupancy.
func lane(ri RetireInfo, width int) string {
	span := ri.Cycle - ri.AllocCycle
	scale := uint64(1)
	for span/scale >= uint64(width) {
		scale *= 2
	}
	pos := func(c uint64) int { return int((c - ri.AllocCycle) / scale) }
	buf := make([]byte, pos(ri.Cycle)+1)
	for i := range buf {
		buf[i] = '.'
	}
	for i := pos(ri.AllocCycle); i < pos(ri.IssueCycle) && i < len(buf); i++ {
		buf[i] = '-'
	}
	for i := pos(ri.IssueCycle); i < pos(ri.CompleteCycle) && i < len(buf); i++ {
		buf[i] = '='
	}
	buf[pos(ri.AllocCycle)] = 'A'
	if p := pos(ri.IssueCycle); p < len(buf) {
		buf[p] = 'I'
	}
	if p := pos(ri.CompleteCycle); p < len(buf) {
		buf[p] = 'C'
	}
	buf[pos(ri.Cycle)] = 'R'
	out := string(buf)
	if scale > 1 {
		out += fmt.Sprintf("  (1 col = %d cyc)", scale)
	}
	return out
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// StageStats summarises where retired µops spent their time: average
// cycles from allocation to issue (queueing), issue to completion
// (execution) and completion to retirement (commit wait).
type StageStats struct {
	Count       uint64
	AvgQueue    float64
	AvgExecute  float64
	AvgCommit   float64
	AvgLifetime float64
}

// Stats aggregates the captured records (spin µops excluded).
func (tr *Tracer) Stats() StageStats {
	var s StageStats
	var q, e, c, l uint64
	for _, ri := range tr.recs {
		if ri.Spin {
			continue
		}
		s.Count++
		q += ri.IssueCycle - ri.AllocCycle
		e += ri.CompleteCycle - ri.IssueCycle
		c += ri.Cycle - ri.CompleteCycle
		l += ri.Cycle - ri.AllocCycle
	}
	if s.Count > 0 {
		n := float64(s.Count)
		s.AvgQueue = float64(q) / n
		s.AvgExecute = float64(e) / n
		s.AvgCommit = float64(c) / n
		s.AvgLifetime = float64(l) / n
	}
	return s
}
