package smt

import (
	"math/rand"
	"testing"

	"smtexplore/internal/isa"
	"smtexplore/internal/perfmon"
	"smtexplore/internal/trace"
)

// randomProgram generates a structurally valid workload from a seed:
// arbitrary arithmetic/memory µops, with optional producer-side flag
// publication so paired consumers can wait safely.
func randomProgram(seed int64, n int, publish []isa.Cell) trace.Program {
	return trace.Generate(func(e *trace.Emitter) {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < n && !e.Stopped(); i++ {
			switch rng.Intn(10) {
			case 0:
				e.ALU(isa.IAdd, isa.R(rng.Intn(16)), isa.R(rng.Intn(30)), isa.R(rng.Intn(30)))
			case 1:
				e.ALU(isa.ILogic, isa.R(rng.Intn(16)), isa.R(rng.Intn(30)), isa.R(30))
			case 2:
				e.ALU(isa.FAdd, isa.F(rng.Intn(16)), isa.F(rng.Intn(32)), isa.F(rng.Intn(32)))
			case 3:
				e.ALU(isa.FMul, isa.F(rng.Intn(16)), isa.F(rng.Intn(32)), isa.F(rng.Intn(32)))
			case 4:
				e.ALU(isa.FDiv, isa.F(rng.Intn(16)), isa.F(rng.Intn(32)), isa.F(rng.Intn(32)))
			case 5:
				e.ALU(isa.IMul, isa.R(rng.Intn(16)), isa.R(rng.Intn(30)), isa.R(rng.Intn(30)))
			case 6, 7:
				e.Load(isa.F(rng.Intn(16)), uint64(rng.Intn(1<<22))&^7)
			case 8:
				e.Store(isa.F(rng.Intn(16)), uint64(rng.Intn(1<<22))&^7)
			default:
				e.Branch()
			}
		}
		for _, c := range publish {
			e.SetFlag(c, 1, isa.CellAddr(c))
		}
	})
}

// TestRandomProgramsConserveInstructions: for arbitrary valid programs on
// both contexts, every generated instruction retires exactly once and the
// run completes.
func TestRandomProgramsConserveInstructions(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		n0 := 500 + int(seed*97)%1500
		n1 := 500 + int(seed*61)%1500
		m := New(testConfig())
		m.LoadProgram(0, randomProgram(seed, n0, nil))
		m.LoadProgram(1, randomProgram(seed+1000, n1, nil))
		res, err := m.Run(200_000_000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Completed {
			t.Fatalf("seed %d: did not complete", seed)
		}
		c := m.Counters()
		if got := c.Get(perfmon.InstrRetired, 0); got != uint64(n0) {
			t.Fatalf("seed %d: cpu0 retired %d, want %d", seed, got, n0)
		}
		if got := c.Get(perfmon.InstrRetired, 1); got != uint64(n1) {
			t.Fatalf("seed %d: cpu1 retired %d, want %d", seed, got, n1)
		}
		// Issue count covers every executable µop exactly once plus
		// replays; it can never be below the retired executable count.
		if c.Total(perfmon.IssuedUops) < c.Total(perfmon.UopsRetired)-c.Total(perfmon.PauseUopsRetired) {
			t.Fatalf("seed %d: issued %d < retired-executable", seed, c.Total(perfmon.IssuedUops))
		}
	}
}

// TestRandomProgramsAreDeterministic: identical seeds produce identical
// runs, including co-scheduled sync traffic.
func TestRandomProgramsAreDeterministic(t *testing.T) {
	build := func() *Machine {
		m := New(testConfig())
		m.LoadProgram(0, trace.Concat(
			randomProgram(7, 1200, []isa.Cell{5}),
		))
		m.LoadProgram(1, trace.Concat(
			trace.Generate(func(e *trace.Emitter) { e.Spin(5, isa.CmpEQ, 1) }),
			randomProgram(8, 700, nil),
		))
		if _, err := m.Run(100_000_000); err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := build(), build()
	if a.Cycle() != b.Cycle() {
		t.Fatalf("nondeterministic: %d vs %d cycles", a.Cycle(), b.Cycle())
	}
	sa, sb := a.Counters().Snapshot(), b.Counters().Snapshot()
	for _, ev := range perfmon.Events() {
		if sa.Total(ev) != sb.Total(ev) {
			t.Errorf("%v: %d vs %d", ev, sa.Total(ev), sb.Total(ev))
		}
	}
}

// TestRandomProgramsWithSyncComplete: producer/consumer pairs with random
// bodies and flag/spin (or halt) handshakes always terminate.
func TestRandomProgramsWithSyncComplete(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		useHalt := seed%2 == 0
		cell := isa.Cell(seed)
		producer := trace.Concat(
			randomProgram(seed*3, 800, []isa.Cell{cell}),
			randomProgram(seed*3+1, 200, nil),
		)
		consumer := trace.Generate(func(e *trace.Emitter) {
			if useHalt {
				e.HaltUntil(cell, isa.CmpEQ, 1)
			} else {
				e.Spin(cell, isa.CmpEQ, 1)
			}
		})
		consumer = trace.Concat(consumer, randomProgram(seed*5, 400, nil))
		m := New(testConfig())
		m.LoadProgram(0, producer)
		m.LoadProgram(1, consumer)
		res, err := m.Run(200_000_000)
		if err != nil {
			t.Fatalf("seed %d (halt=%v): %v", seed, useHalt, err)
		}
		if !res.Completed {
			t.Fatalf("seed %d (halt=%v): hung", seed, useHalt)
		}
	}
}

// TestRetireNeverExceedsWidth: the per-cycle retirement bound holds under
// random load (observed via the retirement stream).
func TestRetireNeverExceedsWidth(t *testing.T) {
	m := New(testConfig())
	perCycle := map[uint64]int{}
	m.OnRetire(func(ri RetireInfo) { perCycle[ri.Cycle]++ })
	m.LoadProgram(0, randomProgram(42, 3000, nil))
	m.LoadProgram(1, randomProgram(43, 3000, nil))
	if _, err := m.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	for cyc, n := range perCycle {
		if n > m.Config().RetireWidth {
			t.Fatalf("cycle %d retired %d µops, width %d", cyc, n, m.Config().RetireWidth)
		}
	}
}

// TestPipelineTimestampsMonotone: alloc ≤ issue ≤ complete ≤ retire for
// every retired µop under random load.
func TestPipelineTimestampsMonotone(t *testing.T) {
	m := New(testConfig())
	violations := 0
	m.OnRetire(func(ri RetireInfo) {
		if ri.AllocCycle > ri.IssueCycle || ri.IssueCycle > ri.CompleteCycle || ri.CompleteCycle > ri.Cycle {
			violations++
		}
	})
	m.LoadProgram(0, randomProgram(99, 4000, nil))
	if _, err := m.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	if violations > 0 {
		t.Fatalf("%d stage-order violations", violations)
	}
}
