package smt

import (
	"testing"

	"smtexplore/internal/isa"
	"smtexplore/internal/perfmon"
	"smtexplore/internal/trace"
)

func BenchmarkSimRate(b *testing.B) {
	m := New(testConfig())
	m.LoadProgram(0, trace.Forever(chainProg(isa.FAdd, 1024, 6)))
	m.LoadProgram(1, trace.Forever(chainProg(isa.FMul, 1024, 6)))
	b.ResetTimer()
	if _, err := m.Run(uint64(b.N)); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(m.Counters().Total(perfmon.UopsRetired))/float64(b.N), "uops/cycle")
}
