package smt

import (
	"testing"

	"smtexplore/internal/isa"
	"smtexplore/internal/perfmon"
	"smtexplore/internal/trace"
)

func BenchmarkSimRate(b *testing.B) {
	m := New(testConfig())
	defer m.Close()
	m.LoadProgram(0, trace.Forever(chainProg(isa.FAdd, 1024, 6)))
	m.LoadProgram(1, trace.Forever(chainProg(isa.FMul, 1024, 6)))
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := m.Run(uint64(b.N)); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(m.Counters().Total(perfmon.UopsRetired))/float64(b.N), "uops/cycle")
}

// loadChainBody is one pass of a dependent load chain striding line by
// line through a region far larger than the L2: every hop misses, so the
// machine spends long spans with nothing to do but wait — the fast-
// forward path's best case and the issue scan's worst.
func loadChainBody(base uint64, sizeBytes int) trace.Program {
	lines := sizeBytes / 64
	return trace.Generate(func(e *trace.Emitter) {
		for i := 0; i < lines && !e.Stopped(); i++ {
			e.Emit(isa.Instr{Op: isa.Load, Dst: isa.R(1), Src1: isa.R(1),
				Addr: base + uint64(i)*64})
		}
	})
}

// benchCycles drives m for b.N cycles and reports the retire rate.
func benchCycles(b *testing.B, m *Machine) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := m.Run(uint64(b.N)); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(m.Counters().Total(perfmon.UopsRetired))/float64(b.N), "uops/cycle")
}

// BenchmarkStepCompute measures the per-cycle stepping cost on a compute-
// bound ILP-6 chain with one and with two hardware contexts.
func BenchmarkStepCompute(b *testing.B) {
	b.Run("ctx=1", func(b *testing.B) {
		m := New(testConfig())
		defer m.Close()
		m.LoadProgram(0, trace.Forever(chainProg(isa.FAdd, 1024, 6)))
		benchCycles(b, m)
	})
	b.Run("ctx=2", func(b *testing.B) {
		m := New(testConfig())
		defer m.Close()
		m.LoadProgram(0, trace.Forever(chainProg(isa.FAdd, 1024, 6)))
		m.LoadProgram(1, trace.Forever(chainProg(isa.IAdd, 1024, 6)))
		benchCycles(b, m)
	})
}

// BenchmarkStepObserver compares the disarmed observer fast path (one
// predictable flag test per cycle) against armed no-op per-cycle and
// per-retire hooks, which force the exact slow path.
func BenchmarkStepObserver(b *testing.B) {
	mk := func() *Machine {
		m := New(testConfig())
		m.LoadProgram(0, trace.Forever(chainProg(isa.FAdd, 1024, 6)))
		m.LoadProgram(1, trace.Forever(chainProg(isa.IAdd, 1024, 6)))
		return m
	}
	b.Run("disarmed", func(b *testing.B) {
		m := mk()
		defer m.Close()
		benchCycles(b, m)
	})
	b.Run("armed=cycle", func(b *testing.B) {
		m := mk()
		defer m.Close()
		m.OnCycle(func() {})
		benchCycles(b, m)
	})
	b.Run("armed=retire", func(b *testing.B) {
		m := mk()
		defer m.Close()
		m.OnRetire(func(RetireInfo) {})
		benchCycles(b, m)
	})
}

// BenchmarkStepMemBound measures a miss-dominated dependent load chain
// with the event-driven fast-forward off and on: with it on, the long
// quiet spans between fills collapse into single skips.
func BenchmarkStepMemBound(b *testing.B) {
	for _, ff := range []struct {
		name string
		on   bool
	}{{"ff=off", false}, {"ff=on", true}} {
		b.Run(ff.name, func(b *testing.B) {
			m := New(testConfig())
			defer m.Close()
			m.SetFastForward(ff.on)
			m.LoadProgram(0, trace.Forever(loadChainBody(0x4000_0000, 8<<20)))
			benchCycles(b, m)
		})
	}
}
