package smt

import (
	"errors"
	"fmt"

	"smtexplore/internal/isa"
	"smtexplore/internal/mem"
	"smtexplore/internal/perfmon"
	"smtexplore/internal/trace"
)

// NumContexts is the number of logical processors per physical package.
const NumContexts = 2

// spinReg is the architectural register used by injected spin-loop loads;
// workload generators must not use it (syncprim reserves it).
var spinReg = isa.R(31)

// RetireInfo describes one retired µop, delivered to the OnRetire observer
// (the substrate of the Pin-style instruction-mix profiler).
type RetireInfo struct {
	Tid   int
	Instr isa.Instr
	Unit  isa.Unit
	Spin  bool // injected by spin-wait expansion
	Cycle uint64

	// Pipeline timestamps (cycle of allocation, issue and completion),
	// the substrate of the pipeline tracer.
	AllocCycle    uint64
	IssueCycle    uint64
	CompleteCycle uint64
}

// thread is the per-logical-processor state.
type thread struct {
	id      int
	stream  *trace.Stream
	started bool

	pending      isa.Instr
	pendingValid bool

	rob *rob
	ldq int
	stq int
	// stqFree holds completion times of stores draining to cache after
	// retirement; the store-buffer entry is released only then.
	stqFree []uint64
	// schedCount is this context's occupancy of the scheduler window.
	schedCount int

	regPrev [isa.NumRegs]uopRef

	// inflightLoads is a small ring of recently issued loads, scanned at
	// sibling store retirement for memory-order machine clears.
	inflightLoads [8]loadRec
	loadRecPos    int

	allocStallUntil uint64

	spinning bool
	halting  bool
	halted   bool
	wakeAt   uint64 // nonzero → wake in progress

	done bool
}

// loadRec is one in-flight load record for machine-clear detection.
type loadRec struct {
	ref  uopRef
	line uint64
}

// runnable reports whether the context holds partitioned resources (it is
// started, unfinished and not halted).
func (t *thread) runnable() bool {
	return t.started && !t.done && !t.halted
}

// drained reports whether the context's pipeline holds no in-flight state.
func (t *thread) drained() bool {
	return t.rob.count == 0 && t.stq == 0 && len(t.stqFree) == 0 && t.ldq == 0
}

// Machine is one simulated physical processor package with two logical
// processors.
type Machine struct {
	cfg  Config
	hier *mem.Hierarchy
	ctr  perfmon.Counters

	threads [NumContexts]thread
	cells   map[isa.Cell]int64

	cycle uint64
	seq   uint64

	// The scheduler window is a power-of-two ring of generation-checked
	// µop references in allocation-age order, indexed by the absolute
	// counters schedHead/schedTail (slot = counter & mask). Occupancy is
	// bit-packed: schedLive holds one bit per slot, scanned a uint64 word
	// at a time with math/bits, and schedMin caches a per-word lower
	// bound on the earliest wake cycle of the word's live entries, so the
	// per-cycle select skips whole words of provably-sleeping µops with a
	// single compare instead of a per-slot dependence walk. Wake bounds
	// are scan-private bookkeeping (never serialized): a too-low bound
	// only costs a harmless re-examination, never a timing change.
	schedRing    []schedEntry
	schedScratch []schedEntry
	schedLive    []uint64
	schedMin     []uint64
	// schedDeep marks live entries whose wake bound is schedAsleep: they
	// re-arm only via a producer's dispatch prod, so the scan retains
	// them wholesale by popcount (in age order, interleaved with the
	// awake entries) instead of visiting each bit.
	schedDeep []uint64
	schedHead uint64
	schedTail uint64

	// schedWordOp/schedWordMixed summarise the opcodes of each bitmap
	// word's live entries: while a word stays opcode-uniform (the common
	// case for the paper's homogeneous streams), a port-exhaustion memo
	// hit lets the scan retain the word's whole remainder with one
	// popcount instead of visiting every ready-but-starved entry.
	// Mixedness is sticky until the word empties or compaction rebuilds.
	schedWordOp    []isa.Op
	schedWordMixed []bool

	unitNextFree [isa.NumUnits]uint64

	// Per-cycle port-starvation memo keyed by opcode: when pickPort has
	// already failed for an opcode this cycle (portBlockedAt[op] ==
	// cycle+1), every later same-class candidate fails too — budgets
	// only decrease and initiation intervals only grow within a cycle —
	// so the scan reuses the recorded wake bound without re-probing.
	// Cleared by schedReset: a restore may rewind the cycle counter,
	// which would otherwise let a stale marker collide.
	portBlockedAt   [isa.NumOps]uint64
	portBlockedWake [isa.NumOps]uint64

	// cellWait attributes wait cycles (spinning, draining-to-halt or
	// halted) to the synchronisation cell being awaited — the
	// measurement behind the paper's selective-halting methodology
	// ("we measured the times that precomputation threads spend on
	// every barrier").
	cellWait map[isa.Cell]uint64

	onRetire func(RetireInfo)
	onCycle  func()
	// armed packs the observer arming state into one plain byte so the
	// disarmed hot path is a single predictable branch on an immediate
	// test (the faultinject.Hit pattern) instead of func-value compares
	// against nil on every cycle and every retirement.
	armed uint8

	// ff enables the event-driven fast-forward in RunPausable (see
	// fastforward.go). On by default; SetFastForward(false) forces the
	// machine to step every cycle.
	ff bool
	// ffNextTry suppresses re-attempting a failed fast-forward until the
	// given cycle: a machine that could make progress this cycle usually
	// still can next cycle, and skipping the attempt is always correct —
	// the slow path is exact. Not serialized; purely a scan throttle.
	ffNextTry uint64

	// Partition limits for the current cycle, refreshed after housekeep
	// (the only stage that changes runnable/halted state) so the
	// allocator's repeated occupancy probes avoid re-deriving the
	// dual-thread mode on every µop.
	limROB, limSched, limLDQ, limSTQ int

	// lastRetireCycle backs the deadlock watchdog.
	lastRetireCycle uint64
}

// Observer arming bits in Machine.armed.
const (
	armRetire uint8 = 1 << iota
	armCycle
)

// New builds a machine; it panics on invalid configuration (construction-
// time programming error).
func New(cfg Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Machine{
		cfg:      cfg,
		hier:     mem.NewHierarchy(cfg.Mem),
		cells:    make(map[isa.Cell]int64),
		cellWait: make(map[isa.Cell]uint64),
		ff:       true,
	}
	// Ring capacity: up to 2×SchedWindow entries can be live (the
	// NoStaticPartition ablation un-halves the per-context limit), and
	// issued/flushed entries leave age-ordered holes until the head
	// passes them, so double again for slack — compaction then triggers
	// only when at least half the span is holes. The floor of 128 keeps
	// the compaction threshold (capacity minus one bitmap word; see
	// schedInsert) at or above the live bound for small windows.
	schedCap := 128
	for schedCap < 4*cfg.SchedWindow {
		schedCap <<= 1
	}
	m.schedRing = make([]schedEntry, schedCap)
	m.schedScratch = make([]schedEntry, schedCap)
	m.schedLive = make([]uint64, schedCap/64)
	m.schedMin = make([]uint64, schedCap/64)
	m.schedDeep = make([]uint64, schedCap/64)
	m.schedWordOp = make([]isa.Op, schedCap/64)
	m.schedWordMixed = make([]bool, schedCap/64)
	for i := range m.schedMin {
		m.schedMin[i] = ^uint64(0)
	}
	for i := range m.threads {
		m.threads[i] = thread{id: i, rob: newROB(cfg.ROB)}
	}
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Hierarchy exposes the shared memory system.
func (m *Machine) Hierarchy() *mem.Hierarchy { return m.hier }

// Counters exposes the performance-monitoring bank.
func (m *Machine) Counters() *perfmon.Counters { return &m.ctr }

// Cycle returns the current cycle number.
func (m *Machine) Cycle() uint64 { return m.cycle }

// LoadProgram binds program p to logical processor tid. It must be called
// before the first Step for that context.
func (m *Machine) LoadProgram(tid int, p trace.Program) {
	m.LoadStream(tid, trace.NewStream(p))
}

// LoadStream binds an already-constructed instruction stream to logical
// processor tid — the entry point for slice-backed loop streams
// (trace.NewLoop), which bypass the generator goroutine entirely.
func (m *Machine) LoadStream(tid int, s *trace.Stream) {
	t := m.thread(tid)
	if t.started {
		panic(fmt.Sprintf("smt: context %d already has a program", tid))
	}
	t.stream = s
	t.started = true
}

func (m *Machine) thread(tid int) *thread {
	if tid < 0 || tid >= NumContexts {
		panic(fmt.Sprintf("smt: invalid logical processor %d", tid))
	}
	return &m.threads[tid]
}

// SetCell initialises a synchronisation cell value.
func (m *Machine) SetCell(c isa.Cell, v int64) { m.cells[c] = v }

// CellValue reads a synchronisation cell.
func (m *Machine) CellValue(c isa.Cell) int64 { return m.cells[c] }

// OnRetire installs the retirement observer (profiling hook). A nil fn
// removes it.
func (m *Machine) OnRetire(fn func(RetireInfo)) {
	m.onRetire = fn
	if fn != nil {
		m.armed |= armRetire
	} else {
		m.armed &^= armRetire
	}
}

// RetireObserver returns the installed retirement observer (nil when
// absent), so external instruments can chain to it instead of
// displacing it.
func (m *Machine) RetireObserver() func(RetireInfo) { return m.onRetire }

// CycleObserver returns the installed per-cycle observer (nil when
// absent); see RetireObserver.
func (m *Machine) CycleObserver() func() { return m.onCycle }

// OnCycle installs the per-cycle observer, invoked at the end of every
// Step after the cycle's counters are booked but before the cycle number
// advances — OccState() read from the hook is consistent with the
// perfmon accounting of that cycle. A nil fn removes it. The hook is the
// substrate of the occupancy sampler (internal/obs); it costs one
// armed-bit test per cycle when absent. An armed cycle observer also
// disables the event-driven fast-forward — the hook's contract is one
// call per simulated cycle.
func (m *Machine) OnCycle(fn func()) {
	m.onCycle = fn
	if fn != nil {
		m.armed |= armCycle
	} else {
		m.armed &^= armCycle
	}
}

// SetFastForward enables or disables the event-driven cycle skip in
// RunPausable. The skip is timing- and counter-exact (see fastforward.go),
// so the toggle exists for differential testing and benchmarking, not
// correctness.
func (m *Machine) SetFastForward(on bool) { m.ff = on }

// FastForward reports whether the event-driven cycle skip is enabled.
func (m *Machine) FastForward() bool { return m.ff }

// OccState is a read-only per-cycle view of the shared and partitioned
// pipeline resources — the dynamic counterpart of the paper's static
// resource-partitioning table (§2).
type OccState struct {
	// Cycle is the cycle this state describes.
	Cycle uint64
	// Sched is the per-context occupancy of the shared scheduler window.
	Sched [NumContexts]int
	// ROB, LoadQ and StoreQ are the per-context occupancies of the
	// statically partitioned buffers.
	ROB    [NumContexts]int
	LoadQ  [NumContexts]int
	StoreQ [NumContexts]int
	// Active and Halted mirror the perfmon Cycles/HaltedCycles
	// accounting: a started, unfinished context is in exactly one of the
	// two states each cycle.
	Active [NumContexts]bool
	Halted [NumContexts]bool
	// InflightFills is the number of busy MSHRs (outstanding L2 misses).
	InflightFills int
}

// OccState snapshots the current occupancy of every modelled resource.
func (m *Machine) OccState() OccState {
	s := OccState{Cycle: m.cycle, InflightFills: m.hier.InflightFills(m.cycle)}
	for i := range m.threads {
		t := &m.threads[i]
		s.Sched[i] = t.schedCount
		s.ROB[i] = t.rob.count
		s.LoadQ[i] = t.ldq
		s.StoreQ[i] = t.stq
		live := t.started && !t.done
		s.Active[i] = live && !t.halted
		s.Halted[i] = live && t.halted
	}
	return s
}

// Close releases the instruction-stream generators of every loaded
// program. Streams of programs that retire fully are closed by the
// machine itself; Close covers the abandonment paths — a bounded
// measurement window expiring or a deadlocked run — where the underlying
// iter.Pull goroutines would otherwise leak. Safe to call multiple
// times; the machine must not be stepped afterwards.
func (m *Machine) Close() {
	for i := range m.threads {
		t := &m.threads[i]
		if t.stream != nil {
			t.stream.Close()
		}
	}
}

// WaitProfile returns the cycles spent waiting (spin or halt) per
// synchronisation cell — the per-barrier wait-time measurement the paper
// uses to decide where to embed the halt machinery.
func (m *Machine) WaitProfile() map[isa.Cell]uint64 {
	out := make(map[isa.Cell]uint64, len(m.cellWait))
	for c, n := range m.cellWait {
		out[c] = n
	}
	return out
}

// Done reports whether every loaded program has fully retired.
func (m *Machine) Done() bool {
	any := false
	for i := range m.threads {
		t := &m.threads[i]
		if t.started {
			any = true
			if !t.done {
				return false
			}
		}
	}
	return any
}

// bothActive reports whether both contexts currently hold partitioned
// resources, i.e. the machine is in dual-thread (MT) mode.
func (m *Machine) bothActive() bool {
	return m.threads[0].runnable() && m.threads[1].runnable()
}

// limit returns the per-context occupancy bound for a buffer of the given
// total size under the current partitioning mode.
func (m *Machine) limit(total int) int {
	if m.cfg.NoStaticPartition {
		return total
	}
	if m.bothActive() {
		return total / 2
	}
	return total
}

// cellHolds evaluates a wait predicate against the current cell state.
func (m *Machine) cellHolds(in isa.Instr) bool {
	return in.Cmp.Holds(m.cells[in.Cell], in.Val)
}

// Step advances the machine one cycle: housekeeping, retire, issue,
// allocate — reverse pipeline order so results flow between stages with a
// one-cycle delay.
func (m *Machine) Step() {
	m.housekeep()
	m.limROB = m.limit(m.cfg.ROB)
	m.limSched = m.limit(m.cfg.SchedWindow)
	m.limLDQ = m.limit(m.cfg.LoadQ)
	m.limSTQ = m.limit(m.cfg.StoreQ)
	m.retire()
	m.issue()
	m.allocate()
	m.account()
	if m.armed&armCycle != 0 {
		m.onCycle()
	}
	m.cycle++
}

// housekeep releases timed store-buffer entries and drives the halt/wake
// state machine.
func (m *Machine) housekeep() {
	now := m.cycle
	for i := range m.threads {
		t := &m.threads[i]

		// Release drained store-buffer entries.
		if len(t.stqFree) != 0 {
			kept := t.stqFree[:0]
			for _, at := range t.stqFree {
				if at <= now {
					t.stq--
				} else {
					kept = append(kept, at)
				}
			}
			t.stqFree = kept
		}

		// A halting context becomes halted once its pipeline drains;
		// its partitioned resources recombine for the sibling.
		if t.halting && t.drained() {
			t.halting = false
			t.halted = true
		}

		// A halted context wakes when its awaited condition holds: the
		// sibling's flag store stands in for the IPI. Wake-up costs
		// HaltWakeLatency, and re-partitioning freezes the sibling's
		// allocator briefly.
		if t.halted {
			if t.wakeAt == 0 && t.pendingValid && m.cellHolds(t.pending) {
				t.wakeAt = now + uint64(m.cfg.HaltWakeLatency)
			}
			if t.wakeAt != 0 && now >= t.wakeAt {
				t.halted = false
				t.wakeAt = 0
				t.pendingValid = false // consume the HaltWait
				m.ctr.Inc(perfmon.HaltTransitions, t.id)
				sib := &m.threads[1-t.id]
				if until := now + uint64(m.cfg.PartitionFreeze); sib.runnable() && until > sib.allocStallUntil {
					sib.allocStallUntil = until
				}
			}
		}

		// Completion: stream exhausted, nothing pending, pipeline dry.
		if t.started && !t.done && !t.pendingValid && t.stream.Done() && t.drained() {
			t.done = true
			t.stream.Close()
		}
	}
}

// account books per-cycle counters.
func (m *Machine) account() {
	for i := range m.threads {
		t := &m.threads[i]
		if !t.started || t.done {
			continue
		}
		if t.halted {
			m.ctr.Inc(perfmon.HaltedCycles, t.id)
		} else {
			m.ctr.Inc(perfmon.Cycles, t.id)
		}
		if t.spinning || t.halting || t.halted {
			m.ctr.Inc(perfmon.BarrierWaitCycles, t.id)
			if t.pendingValid && t.pending.Cell != isa.NoCell {
				m.cellWait[t.pending.Cell]++
			}
		}
	}
}

// RunResult summarises a Run.
type RunResult struct {
	// Cycles is the total cycles stepped by this Run call.
	Cycles uint64
	// Completed reports whether every program retired fully (false when
	// the cycle budget expired first — the normal case for Forever
	// streams).
	Completed bool
	// Paused reports that a RunPausable pause hook stopped the run at a
	// cycle boundary; the machine is still valid and resumable.
	Paused bool
}

// ErrDeadlock is returned by Run when no µop retires for a long stretch
// while no context is legitimately halted-waiting: a lost-wakeup or
// never-satisfied spin in the workload.
var ErrDeadlock = errors.New("smt: no forward progress (spin or halt wait never satisfied)")

// deadlockWindow is the no-retirement span that triggers ErrDeadlock.
const deadlockWindow = 4_000_000

// Run steps the machine until every program completes or maxCycles elapse
// (maxCycles 0 means no bound). It returns ErrDeadlock if the workload
// stops making progress.
func (m *Machine) Run(maxCycles uint64) (RunResult, error) {
	return m.RunPausable(maxCycles, 0, nil)
}

// resolve maps a uopRef to its µop, or nil when the reference is stale
// (retired/flushed slot since recycled) or empty.
func (m *Machine) resolve(r uopRef) *uop {
	if r.gen == 0 {
		return nil
	}
	u := m.threads[r.tid].rob.at(r.idx)
	if u.gen != r.gen {
		return nil
	}
	return u
}

// depDone reports whether the dependence r is satisfied at cycle now.
func (m *Machine) depDone(r uopRef, now uint64) bool {
	u := m.resolve(r)
	if u == nil || u.cancelled {
		return true
	}
	return u.issued && u.doneAt <= now
}
