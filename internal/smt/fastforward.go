package smt

import (
	"smtexplore/internal/isa"
	"smtexplore/internal/perfmon"
)

// Event-driven fast-forward.
//
// A cycle is quiet when every pipeline stage is provably a no-op apart
// from per-cycle counter bookkeeping: no store-buffer entry drains, no
// halt/wake/completion transition fires, no µop can retire, no scheduler
// entry can act (dispatch or stale-reap), and the front end either has
// nothing pickable or is stalled on a full partitioned resource. All of
// those conditions are functions of time against otherwise-frozen state,
// each with a known next-event cycle, so a whole span of quiet cycles
// collapses into bulk counter additions and one jump of the cycle
// counter. The skip is exact: counters, timing and the deadlock watchdog
// observe precisely what stepping each cycle would have produced.

// ffSkip attempts to jump from the current cycle to the earliest future
// cycle at which any stage could act, clamped to bound (the first cycle
// the caller's loop must re-examine: a pause point, the maxCycles edge or
// the deadlock-watchdog trigger). It books the skipped cycles' counters
// in bulk and reports whether it advanced the clock.
func (m *Machine) ffSkip(bound uint64) bool {
	now := m.cycle
	if bound <= now {
		return false
	}
	event := bound

	// Scheduler: schedMin caches a per-word lower bound on the earliest
	// wake of the word's live entries. A bound at or below now means an
	// entry may be examined this cycle — dispatch, a retry expiry or a
	// stale-reference reap (schedWakeStale zeroes wakes) — so no skip.
	if m.schedTail != m.schedHead {
		for w, lv := range m.schedLive {
			if lv == 0 {
				continue
			}
			mn := m.schedMin[w]
			if mn <= now {
				return false
			}
			if mn < event {
				event = mn
			}
		}
	}

	var stallEv [NumContexts]perfmon.Event
	var stallOK [NumContexts]bool
	for i := range m.threads {
		t := &m.threads[i]
		if !t.started || t.done {
			continue
		}
		// Drain-to-halt and completion transitions re-partition the
		// machine; take those cycle by cycle.
		if t.halting {
			return false
		}
		if !t.pendingValid && t.stream.Done() && t.drained() {
			return false
		}
		if t.halted {
			if t.wakeAt != 0 {
				if t.wakeAt <= now {
					return false
				}
				if t.wakeAt < event {
					event = t.wakeAt
				}
			} else if t.pendingValid && m.cellHolds(t.pending) {
				// The wake would begin this cycle. Cells are frozen
				// inside a quiet span (publication happens only at
				// FlagStore retirement), so a false predicate here
				// stays false for the whole span.
				return false
			}
		}
		// Retirement is in-order: only the ROB head can commit, and no
		// dispatch inside the span can issue it (the scheduler events
		// above bound that), so an unissued head needs no event.
		if u := t.rob.peek(); u != nil && u.issued {
			if u.doneAt <= now {
				return false
			}
			if u.doneAt < event {
				event = u.doneAt
			}
		}
		for _, at := range t.stqFree {
			if at <= now {
				return false
			}
			if at < event {
				event = at
			}
		}

		// Front end, mirroring allocPick and the allocate stage's first
		// probe against this thread's frozen occupancies.
		if !t.runnable() {
			continue // halted: allocPick skips it
		}
		if t.allocStallUntil > now {
			if t.allocStallUntil < event {
				event = t.allocStallUntil
			}
			continue
		}
		if !t.pendingValid {
			if t.stream.Done() {
				continue // nothing to fetch, allocPick skips it
			}
			return false // the front end would fetch this cycle
		}
		ev, blocked := m.allocBlocked(t)
		if !blocked {
			return false // the front end would allocate or expand a wait
		}
		stallEv[i] = ev
		stallOK[i] = true
	}

	k := event - now
	if k == 0 {
		return false
	}

	// Bulk bookkeeping for the skipped span [now, now+k): exactly what k
	// quiet iterations of Step would have booked. A stalled front end
	// books one stall event per cycle for the context allocPick selects;
	// with both contexts stalled the preference alternates by cycle
	// parity, so the span splits into its even and odd cycles.
	evens := k / 2
	if k%2 == 1 && now%2 == 0 {
		evens++
	}
	odds := k - evens
	switch {
	case stallOK[0] && stallOK[1]:
		m.ctr.Add(stallEv[0], 0, evens)
		m.ctr.Add(stallEv[1], 1, odds)
	case stallOK[0]:
		m.ctr.Add(stallEv[0], 0, k)
	case stallOK[1]:
		m.ctr.Add(stallEv[1], 1, k)
	}
	for i := range m.threads {
		t := &m.threads[i]
		if !t.started || t.done {
			continue
		}
		if t.halted {
			m.ctr.Add(perfmon.HaltedCycles, t.id, k)
		} else {
			m.ctr.Add(perfmon.Cycles, t.id, k)
		}
		if t.spinning || t.halted { // halting never enters a span
			m.ctr.Add(perfmon.BarrierWaitCycles, t.id, k)
			if t.pendingValid && t.pending.Cell != isa.NoCell {
				m.cellWait[t.pending.Cell] += k
			}
		}
	}
	m.cycle = event
	return true
}

// allocBlocked reports whether the pending instruction of a pickable
// context is stalled on a full partitioned resource — the only front-end
// outcome that leaves a cycle quiet — and which stall event the allocate
// stage would book for it, mirroring allocSimple/allocExec's probe order
// against occupancies that cannot change inside the span.
func (m *Machine) allocBlocked(t *thread) (perfmon.Event, bool) {
	switch t.pending.Op {
	case isa.SpinWait, isa.HaltWait:
		// Wait expansion always acts (injects, finishes or halts).
		return 0, false
	case isa.Pause, isa.Nop:
		if t.rob.count >= m.limit(m.cfg.ROB) {
			return perfmon.ROBStallCycles, true
		}
		return 0, false
	}
	if t.rob.count >= m.limit(m.cfg.ROB) {
		return perfmon.ROBStallCycles, true
	}
	if t.schedCount >= m.limit(m.cfg.SchedWindow) {
		return perfmon.SchedStallCycles, true
	}
	if t.pending.Op == isa.Load && t.ldq >= m.limit(m.cfg.LoadQ) {
		return perfmon.LoadBufStallCycles, true
	}
	if t.pending.Op.IsStore() && t.stq >= m.limit(m.cfg.StoreQ) {
		return perfmon.ResourceStallCycles, true
	}
	return 0, false
}
