package smt

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"smtexplore/internal/isa"
	"smtexplore/internal/perfmon"
	"smtexplore/internal/trace"
)

// The golden tests pin the exact behaviour of canonical workloads: any
// timing-model change — intended or not — shows up as a diff against
// testdata/golden.json. Regenerate with:
//
//	go test ./internal/smt -run TestGolden -update
var update = flag.Bool("update", false, "rewrite the golden file")

type goldenEntry struct {
	Cycles      uint64 `json:"cycles"`
	Uops        uint64 `json:"uops"`
	Instr       uint64 `json:"instr"`
	L2Misses    uint64 `json:"l2_misses"`
	SpinUops    uint64 `json:"spin_uops"`
	Flushes     uint64 `json:"flushes"`
	HaltedCycle uint64 `json:"halted_cycles"`
}

func goldenWorkloads() map[string]func() *Machine {
	return map[string]func() *Machine{
		"fadd-chain": func() *Machine {
			m := New(testConfig())
			m.LoadProgram(0, chainProg(isa.FAdd, 5000, 3))
			return m
		},
		"dual-iadd": func() *Machine {
			m := New(testConfig())
			m.LoadProgram(0, chainProg(isa.IAdd, 4000, 6))
			m.LoadProgram(1, chainProg(isa.IAdd, 4000, 6))
			return m
		},
		"miss-stream": func() *Machine {
			m := New(testConfig())
			m.LoadProgram(0, trace.Generate(func(e *trace.Emitter) {
				for i := 0; i < 2000; i++ {
					e.Load(isa.F(i%6), uint64(i)*192+1<<24) // stride defeats the streamer
				}
			}))
			return m
		},
		"spin-handshake": func() *Machine {
			m := New(testConfig())
			m.LoadProgram(0, trace.Generate(func(e *trace.Emitter) {
				for i := 0; i < 2000; i++ {
					e.ALU(isa.FMul, isa.F(i%6), isa.F(8), isa.F(9))
				}
				e.SetFlag(1, 1, isa.CellAddr(1))
			}))
			m.LoadProgram(1, trace.Generate(func(e *trace.Emitter) {
				e.Spin(1, isa.CmpEQ, 1)
				for i := 0; i < 500; i++ {
					e.ALU(isa.IAdd, isa.R(i%6), isa.R(8), isa.R(9))
				}
			}))
			return m
		},
		"halt-handshake": func() *Machine {
			m := New(testConfig())
			m.LoadProgram(0, trace.Generate(func(e *trace.Emitter) {
				for i := 0; i < 3000; i++ {
					e.ALU(isa.FAdd, isa.F(i%6), isa.F(8), isa.F(9))
				}
				e.SetFlag(2, 1, isa.CellAddr(2))
			}))
			m.LoadProgram(1, trace.Generate(func(e *trace.Emitter) {
				e.HaltUntil(2, isa.CmpEQ, 1)
				e.ALU(isa.IAdd, isa.R(0), isa.R(8), isa.R(9))
			}))
			return m
		},
	}
}

func runGolden(t *testing.T, mk func() *Machine) goldenEntry {
	t.Helper()
	m := mk()
	res, err := m.Run(100_000_000)
	if err != nil || !res.Completed {
		t.Fatalf("golden run failed: err=%v completed=%v", err, res.Completed)
	}
	c := m.Counters()
	return goldenEntry{
		Cycles:      m.Cycle(),
		Uops:        c.Total(perfmon.UopsRetired),
		Instr:       c.Total(perfmon.InstrRetired),
		L2Misses:    c.Total(perfmon.L2ReadMisses) + m.Hierarchy().Thread(0).L2ReadMisses + m.Hierarchy().Thread(1).L2ReadMisses,
		SpinUops:    c.Total(perfmon.SpinUopsRetired),
		Flushes:     c.Total(perfmon.PipelineFlushes),
		HaltedCycle: c.Total(perfmon.HaltedCycles),
	}
}

func TestGoldenCounters(t *testing.T) {
	path := filepath.Join("testdata", "golden.json")
	got := map[string]goldenEntry{}
	for name, mk := range goldenWorkloads() {
		got[name] = runGolden(t, mk)
	}
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file rewritten: %s", path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Skipf("no golden file (%v); run with -update to create it", err)
	}
	want := map[string]goldenEntry{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("golden workload %q no longer exists", name)
			continue
		}
		if g != w {
			t.Errorf("%s drifted:\n got %+v\nwant %+v\n(intended model change? rerun with -update)", name, g, w)
		}
	}
}
