package smt

import (
	"encoding/json"
	"reflect"
	"testing"

	"smtexplore/internal/isa"
	"smtexplore/internal/trace"
)

// snapProg is a memory-heavy dual-phase program: a strided array walk
// (exercises caches, MSHRs and the stream prefetcher), a flag/halt
// rendezvous (exercises cells, spin/halt state) and a dependent tail.
func snapProg(tid, n int) trace.Program {
	return trace.Generate(func(e *trace.Emitter) {
		base := uint64(1<<20) * uint64(tid+1)
		for i := 0; i < n; i++ {
			e.Load(isa.R(1), base+uint64(i)*64)
			e.ALU(isa.IAdd, isa.R(2), isa.R(1), isa.R(2))
			if i%8 == 0 {
				e.Store(isa.R(2), base+uint64(i)*64)
			}
		}
		if tid == 0 {
			e.SetFlag(isa.Cell(1), 1, isa.CellAddr(1))
			e.HaltUntil(isa.Cell(2), isa.CmpEQ, 1)
		} else {
			e.HaltUntil(isa.Cell(1), isa.CmpEQ, 1)
			e.SetFlag(isa.Cell(2), 1, isa.CellAddr(2))
		}
		for i := 0; i < n/2; i++ {
			e.ALU(isa.FMul, isa.F(3), isa.F(1), isa.F(2))
			e.ALU(isa.FAdd, isa.F(4), isa.F(3), isa.F(2))
		}
	})
}

// newSnapMachine builds the dual-thread machine every test in this file
// restores into. Restore requires the target to be prepared exactly like
// the original: same config, same programs.
func newSnapMachine(cfg Config) *Machine {
	m := New(cfg)
	m.LoadProgram(0, snapProg(0, 600))
	m.LoadProgram(1, snapProg(1, 500))
	return m
}

// pauseAt runs m until the first pause point at or after cycle c and
// stops there.
func pauseAt(t *testing.T, m *Machine, c uint64) {
	t.Helper()
	res, err := m.RunPausable(0, c, func() bool { return true })
	if err != nil {
		t.Fatalf("run to pause: %v", err)
	}
	if !res.Paused {
		t.Fatalf("machine completed before the pause point at cycle %d", c)
	}
}

func finish(t *testing.T, m *Machine) RunResult {
	t.Helper()
	res, err := m.Run(50_000_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !res.Completed {
		t.Fatal("program did not complete within cycle budget")
	}
	return res
}

// TestSnapshotRestoreRoundTrip pauses a machine mid-flight (with µops in
// every queue), restores the snapshot into a fresh machine — through a
// JSON round trip, as the checkpoint codec will — and requires the
// restored machine to re-produce the snapshot bit-for-bit.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	a := newSnapMachine(cfg)
	defer a.Close()
	pauseAt(t, a, 2000)
	snap := a.Snapshot()

	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	decoded := new(Snapshot)
	if err := json.Unmarshal(raw, decoded); err != nil {
		t.Fatalf("unmarshal snapshot: %v", err)
	}

	b := newSnapMachine(cfg)
	defer b.Close()
	if err := b.Restore(decoded); err != nil {
		t.Fatalf("restore: %v", err)
	}
	again := b.Snapshot()
	if !reflect.DeepEqual(snap, again) {
		t.Fatal("restored machine's snapshot differs from the original")
	}
}

// TestRestoreParity is the determinism guarantee behind checkpointed
// cells: an interrupted-and-resumed run must finish with state identical
// to an uninterrupted one — same cycle count, counters, memory-system
// statistics and wait profile.
func TestRestoreParity(t *testing.T) {
	cfg := DefaultConfig()

	control := newSnapMachine(cfg)
	defer control.Close()
	finish(t, control)

	// Interrupt at a few different depths, including one inside the
	// halt-wait rendezvous region.
	for _, at := range []uint64{100, 1500, 4000} {
		a := newSnapMachine(cfg)
		pauseAt(t, a, at)
		snap := a.Snapshot()
		a.Close()

		b := newSnapMachine(cfg)
		if err := b.Restore(snap); err != nil {
			b.Close()
			t.Fatalf("restore at cycle %d: %v", at, err)
		}
		finish(t, b)
		if got, want := b.Snapshot(), control.Snapshot(); !reflect.DeepEqual(got, want) {
			t.Errorf("resume from cycle %d: final state differs from uninterrupted run (cycle %d vs %d)",
				at, b.Cycle(), control.Cycle())
		}
		b.Close()
	}
}

// TestRunPausableResumesAcrossCalls checks that a pause is a clean stop:
// continuing the same machine completes with exactly the state of a
// never-paused run.
func TestRunPausableResumesAcrossCalls(t *testing.T) {
	cfg := DefaultConfig()
	control := newSnapMachine(cfg)
	defer control.Close()
	finish(t, control)

	m := newSnapMachine(cfg)
	defer m.Close()
	pauses := 0
	res, err := m.RunPausable(0, 700, func() bool { pauses++; return pauses >= 3 })
	if err != nil {
		t.Fatalf("paused run: %v", err)
	}
	if !res.Paused || pauses != 3 {
		t.Fatalf("expected to stop at the third pause point, got paused=%v pauses=%d", res.Paused, pauses)
	}
	finish(t, m)
	if !reflect.DeepEqual(m.Snapshot(), control.Snapshot()) {
		t.Fatal("paused-and-continued run differs from uninterrupted run")
	}
}

func TestRestoreRejectsMismatches(t *testing.T) {
	cfg := DefaultConfig()
	a := newSnapMachine(cfg)
	defer a.Close()
	pauseAt(t, a, 500)
	snap := a.Snapshot()

	other := cfg
	other.ROB = cfg.ROB - 2
	m1 := newSnapMachine(other)
	if err := m1.Restore(snap); err == nil {
		t.Error("restore accepted a config mismatch")
	}
	m1.Close()

	m2 := New(cfg) // no programs loaded
	if err := m2.Restore(snap); err == nil {
		t.Error("restore accepted a machine with no programs")
	}
	m2.Close()

	m3 := New(cfg)
	m3.LoadProgram(0, trace.Generate(func(e *trace.Emitter) { e.Nop() }))
	m3.LoadProgram(1, trace.Generate(func(e *trace.Emitter) { e.Nop() }))
	if err := m3.Restore(snap); err == nil {
		t.Error("restore accepted a program shorter than the snapshot position")
	}
	m3.Close()

	m4 := newSnapMachine(cfg)
	m4.Step() // not fresh any more
	if err := m4.Restore(snap); err == nil {
		t.Error("restore accepted a machine that had already stepped")
	}
	m4.Close()
}
