package smt

import (
	"fmt"

	"smtexplore/internal/isa"
	"smtexplore/internal/mem"
	"smtexplore/internal/perfmon"
)

// This file implements whole-machine checkpointing. Snapshot captures
// every piece of mutable simulation state at a cycle boundary (Step is
// the natural pause point: between Steps no stage holds hidden
// temporaries), and Restore rebuilds it onto a freshly constructed
// machine carrying the same configuration and programs. Because
// programs are pure generators, the instruction streams themselves are
// not serialized — only the number of instructions already pulled —
// and Restore fast-forwards a fresh stream to the same position. A
// restored machine is therefore indistinguishable from the original:
// stepping both produces identical cycles, counters and memory-system
// state, which is what lets a resumed experiment cell report metrics
// byte-identical to an uninterrupted run.

// SnapRef is the serializable image of a generation-checked µop
// reference.
type SnapRef struct {
	Gen uint32 `json:"g,omitempty"`
	Idx int16  `json:"i,omitempty"`
	Tid int8   `json:"t,omitempty"`
}

func snapRef(r uopRef) SnapRef { return SnapRef{Gen: r.gen, Idx: r.idx, Tid: r.tid} }
func (s SnapRef) ref() uopRef  { return uopRef{gen: s.Gen, idx: s.Idx, tid: s.Tid} }

// SnapUop is the serializable image of one ROB slot. Free slots are
// captured too: their generation counters are live state (stale-ref
// detection depends on them).
type SnapUop struct {
	Gen       uint32    `json:"g,omitempty"`
	In        isa.Instr `json:"in"`
	Seq       uint64    `json:"seq,omitempty"`
	Issued    bool      `json:"is,omitempty"`
	Cancelled bool      `json:"ca,omitempty"`
	DoneAt    uint64    `json:"da,omitempty"`
	AllocAt   uint64    `json:"aa,omitempty"`
	IssueAt   uint64    `json:"ia,omitempty"`
	Port      isa.Port  `json:"po,omitempty"`
	Unit      isa.Unit  `json:"un,omitempty"`
	Dep1      SnapRef   `json:"d1,omitempty"`
	Dep2      SnapRef   `json:"d2,omitempty"`
	DepW      SnapRef   `json:"dw,omitempty"`
	RetryAt   uint64    `json:"ra,omitempty"`
	ReadyAt   uint64    `json:"rd,omitempty"`
	Spin      bool      `json:"sp,omitempty"`
}

func snapUop(u *uop) SnapUop {
	return SnapUop{
		Gen: u.gen, In: u.in, Seq: u.seq,
		Issued: u.issued, Cancelled: u.cancelled,
		DoneAt: u.doneAt, AllocAt: u.allocAt, IssueAt: u.issueAt,
		Port: u.port, Unit: u.unit,
		Dep1: snapRef(u.dep1), Dep2: snapRef(u.dep2), DepW: snapRef(u.depW),
		RetryAt: u.retryAt, ReadyAt: u.readyAt, Spin: u.spin,
	}
}

func (s SnapUop) uop() uop {
	return uop{
		gen: s.Gen, in: s.In, seq: s.Seq,
		issued: s.Issued, cancelled: s.Cancelled,
		doneAt: s.DoneAt, allocAt: s.AllocAt, issueAt: s.IssueAt,
		port: s.Port, unit: s.Unit,
		dep1: s.Dep1.ref(), dep2: s.Dep2.ref(), depW: s.DepW.ref(),
		retryAt: s.RetryAt, readyAt: s.ReadyAt, spin: s.Spin,
	}
}

// SnapLoadRec is one in-flight load record (machine-clear detection).
type SnapLoadRec struct {
	Ref  SnapRef `json:"r,omitempty"`
	Line uint64  `json:"l,omitempty"`
}

// ThreadSnapshot is the full state of one logical processor.
type ThreadSnapshot struct {
	Started bool `json:"started,omitempty"`
	// StreamGenerated is how many instructions the front end has pulled
	// from the program; Restore replays that many from a fresh stream.
	StreamGenerated uint64 `json:"stream_generated,omitempty"`
	StreamDone      bool   `json:"stream_done,omitempty"`

	Pending      isa.Instr `json:"pending"`
	PendingValid bool      `json:"pending_valid,omitempty"`

	ROB      []SnapUop `json:"rob"`
	ROBHead  int       `json:"rob_head,omitempty"`
	ROBCount int       `json:"rob_count,omitempty"`

	LDQ        int      `json:"ldq,omitempty"`
	STQ        int      `json:"stq,omitempty"`
	StqFree    []uint64 `json:"stq_free,omitempty"`
	SchedCount int      `json:"sched_count,omitempty"`

	RegPrev [isa.NumRegs]SnapRef `json:"reg_prev"`

	InflightLoads [8]SnapLoadRec `json:"inflight_loads"`
	LoadRecPos    int            `json:"load_rec_pos,omitempty"`

	AllocStallUntil uint64 `json:"alloc_stall_until,omitempty"`

	Spinning bool   `json:"spinning,omitempty"`
	Halting  bool   `json:"halting,omitempty"`
	Halted   bool   `json:"halted,omitempty"`
	WakeAt   uint64 `json:"wake_at,omitempty"`

	Done bool `json:"done,omitempty"`
}

// Snapshot is the complete mutable state of a paused machine. It is a
// plain data record (JSON-serializable end to end) so checkpoint codecs
// can persist it without reaching into simulator internals. Observers
// (OnRetire/OnCycle) are deliberately excluded: they are process-local
// instruments, reattached by the harness that owns the machine.
type Snapshot struct {
	// Config is the geometry the snapshot was taken under; Restore
	// refuses a machine configured differently.
	Config Config `json:"config"`

	Cycle uint64 `json:"cycle"`
	Seq   uint64 `json:"seq"`

	Threads [NumContexts]ThreadSnapshot `json:"threads"`

	Cells    map[isa.Cell]int64  `json:"cells,omitempty"`
	CellWait map[isa.Cell]uint64 `json:"cell_wait,omitempty"`

	Sched        []SnapRef                                      `json:"sched,omitempty"`
	UnitNextFree [isa.NumUnits]uint64                           `json:"unit_next_free"`
	LastRetire   uint64                                         `json:"last_retire"`
	Counters     [perfmon.NumEvents][perfmon.NumContexts]uint64 `json:"counters"`
	Hier         mem.HierarchyState                             `json:"hier"`
}

// Snapshot captures the machine's full mutable state at the current
// cycle boundary. Call it only between Steps (Run/RunPausable pause
// points qualify); the machine is left untouched and can keep running.
func (m *Machine) Snapshot() *Snapshot {
	s := &Snapshot{
		Config:       m.cfg,
		Cycle:        m.cycle,
		Seq:          m.seq,
		UnitNextFree: m.unitNextFree,
		LastRetire:   m.lastRetireCycle,
		Counters:     m.ctr.Snapshot().Raw(),
		Hier:         m.hier.State(),
	}
	if len(m.cells) > 0 {
		s.Cells = make(map[isa.Cell]int64, len(m.cells))
		for k, v := range m.cells {
			s.Cells[k] = v
		}
	}
	if len(m.cellWait) > 0 {
		s.CellWait = make(map[isa.Cell]uint64, len(m.cellWait))
		for k, v := range m.cellWait {
			s.CellWait[k] = v
		}
	}
	if n := m.schedLen(); n > 0 {
		s.Sched = make([]SnapRef, 0, n)
		m.schedEach(func(e schedEntry) {
			s.Sched = append(s.Sched, snapRef(e.ref))
		})
	}
	for i := range m.threads {
		t := &m.threads[i]
		ts := &s.Threads[i]
		ts.Started = t.started
		if t.stream != nil {
			ts.StreamGenerated = t.stream.Generated
			ts.StreamDone = t.stream.Done()
		}
		ts.Pending = t.pending
		ts.PendingValid = t.pendingValid
		ts.ROB = make([]SnapUop, len(t.rob.buf))
		for j := range t.rob.buf {
			ts.ROB[j] = snapUop(&t.rob.buf[j])
		}
		ts.ROBHead = t.rob.head
		ts.ROBCount = t.rob.count
		ts.LDQ = t.ldq
		ts.STQ = t.stq
		if len(t.stqFree) > 0 {
			ts.StqFree = append([]uint64(nil), t.stqFree...)
		}
		ts.SchedCount = t.schedCount
		for r := range t.regPrev {
			ts.RegPrev[r] = snapRef(t.regPrev[r])
		}
		for j, lr := range t.inflightLoads {
			ts.InflightLoads[j] = SnapLoadRec{Ref: snapRef(lr.ref), Line: lr.line}
		}
		ts.LoadRecPos = t.loadRecPos
		ts.AllocStallUntil = t.allocStallUntil
		ts.Spinning = t.spinning
		ts.Halting = t.halting
		ts.Halted = t.halted
		ts.WakeAt = t.wakeAt
		ts.Done = t.done
	}
	return s
}

// Restore overwrites the machine's mutable state with a snapshot taken
// from an identically prepared machine: same Config, same programs
// loaded on the same contexts, not yet stepped past the snapshot
// point. Each started context's fresh instruction stream is
// fast-forwarded by replaying the instructions the snapshotted front
// end had already consumed — programs are pure generators, so the
// replay yields the identical sequence. Installed observers are kept.
// On error the machine must be discarded: state may be partially
// overwritten.
func (m *Machine) Restore(s *Snapshot) error {
	if m.cfg != s.Config {
		return fmt.Errorf("smt: restore config mismatch: machine %+v, snapshot %+v", m.cfg, s.Config)
	}
	for i := range m.threads {
		t := &m.threads[i]
		ts := &s.Threads[i]
		if t.started != ts.Started {
			return fmt.Errorf("smt: restore context %d: machine started=%v, snapshot started=%v", i, t.started, ts.Started)
		}
		if len(ts.ROB) != len(t.rob.buf) {
			return fmt.Errorf("smt: restore context %d: snapshot ROB has %d slots, machine has %d", i, len(ts.ROB), len(t.rob.buf))
		}
		if !ts.Started {
			continue
		}
		if t.stream.Generated != 0 {
			return fmt.Errorf("smt: restore context %d: stream already consumed %d instructions (machine not fresh)", i, t.stream.Generated)
		}
		if n := t.stream.Skip(ts.StreamGenerated); n != ts.StreamGenerated {
			return fmt.Errorf("smt: restore context %d: program ended after %d instructions, snapshot consumed %d (program mismatch)", i, n, ts.StreamGenerated)
		}
		if ts.StreamDone {
			t.stream.Close()
		}
	}
	for i := range m.threads {
		t := &m.threads[i]
		ts := &s.Threads[i]
		t.pending = ts.Pending
		t.pendingValid = ts.PendingValid
		for j := range t.rob.buf {
			t.rob.buf[j] = ts.ROB[j].uop()
		}
		t.rob.head = ts.ROBHead
		t.rob.count = ts.ROBCount
		t.ldq = ts.LDQ
		t.stq = ts.STQ
		t.stqFree = append(t.stqFree[:0], ts.StqFree...)
		t.schedCount = ts.SchedCount
		for r := range t.regPrev {
			t.regPrev[r] = ts.RegPrev[r].ref()
		}
		for j, lr := range ts.InflightLoads {
			t.inflightLoads[j] = loadRec{ref: lr.Ref.ref(), line: lr.Line}
		}
		t.loadRecPos = ts.LoadRecPos
		t.allocStallUntil = ts.AllocStallUntil
		t.spinning = ts.Spinning
		t.halting = ts.Halting
		t.halted = ts.Halted
		t.wakeAt = ts.WakeAt
		t.done = ts.Done
	}
	m.cycle = s.Cycle
	m.seq = s.Seq
	m.cells = make(map[isa.Cell]int64, len(s.Cells))
	for k, v := range s.Cells {
		m.cells[k] = v
	}
	m.cellWait = make(map[isa.Cell]uint64, len(s.CellWait))
	for k, v := range s.CellWait {
		m.cellWait[k] = v
	}
	m.schedReset()
	for _, r := range s.Sched {
		ref := r.ref()
		var op isa.Op
		if u := m.resolve(ref); u != nil {
			op = u.in.Op
		}
		m.schedInsert(ref, op, 0)
	}
	m.unitNextFree = s.UnitNextFree
	m.lastRetireCycle = s.LastRetire
	m.ctr.Restore(perfmon.FromRaw(s.Counters))
	if err := m.hier.SetState(s.Hier); err != nil {
		return err
	}
	return nil
}

// RunPausable is Run with cooperative pause points: every pauseEvery
// cycles (0: never) the loop stops at a cycle boundary — where Snapshot
// is legal — and calls pause. A true return abandons the run with
// Paused set; the machine stays valid and can be snapshotted, resumed
// or stepped further. pause may itself call Snapshot, which is the
// checkpoint path.
func (m *Machine) RunPausable(maxCycles, pauseEvery uint64, pause func() bool) (RunResult, error) {
	start := m.cycle
	m.lastRetireCycle = m.cycle
	nextPause := uint64(0)
	if pauseEvery != 0 && pause != nil {
		nextPause = m.cycle + pauseEvery
	}
	for !m.Done() {
		if maxCycles != 0 && m.cycle-start >= maxCycles {
			return RunResult{Cycles: m.cycle - start}, nil
		}
		if nextPause != 0 && m.cycle >= nextPause {
			nextPause = m.cycle + pauseEvery
			if pause() {
				return RunResult{Cycles: m.cycle - start, Paused: true}, nil
			}
		}
		if m.cycle-m.lastRetireCycle > deadlockWindow {
			return RunResult{Cycles: m.cycle - start}, fmt.Errorf("%w at cycle %d", ErrDeadlock, m.cycle)
		}
		if m.ff && m.armed&armCycle == 0 && !debugNoWake && m.cycle >= m.ffNextTry {
			// Event-driven skip over quiet cycles (fastforward.go),
			// clamped so every loop condition above re-fires on the
			// exact cycle it would have under per-cycle stepping.
			bound := m.lastRetireCycle + deadlockWindow + 1
			if maxCycles != 0 && start+maxCycles < bound {
				bound = start + maxCycles
			}
			if nextPause != 0 && nextPause < bound {
				bound = nextPause
			}
			if m.ffSkip(bound) {
				continue
			}
			// A busy machine stays busy: throttle the next attempt so a
			// saturated pipeline doesn't pay the quiescence probe every
			// cycle. Worst case a quiet span starts up to 15 cycles late
			// and is stepped exactly by the slow path — never skipped.
			m.ffNextTry = m.cycle + 16
		}
		m.Step()
	}
	return RunResult{Cycles: m.cycle - start, Completed: true}, nil
}
