package smt

import (
	"smtexplore/internal/isa"
)

// uop is one in-flight micro-operation. µops live in a per-context reorder
// ring; they are referenced across structures by uopRef with generation
// checks, so retirement can recycle slots without dangling dependences.
type uop struct {
	gen uint32 // slot generation; bumped on reuse
	in  isa.Instr
	seq uint64 // global allocation order, drives oldest-first issue

	issued    bool
	cancelled bool // flushed spin µop: dependents treat as complete
	doneAt    uint64
	allocAt   uint64
	issueAt   uint64

	port isa.Port
	unit isa.Unit

	// Dataflow edges captured at allocation: latest older writers of the
	// two sources (RAW) and of the destination (WAW). The machine has no
	// rename stage — the paper's ILP knob is architectural-register
	// pressure, which this models directly.
	dep1, dep2, depW uopRef

	// retryAt delays re-issue after an MSHR-full rejection.
	retryAt uint64

	// readyAt memoises the earliest cycle at which all captured
	// dependences can be complete, discovered lazily as producers issue;
	// it lets the scheduler scan skip repeated dependence walks.
	readyAt uint64

	// spin marks µops injected by spin-wait expansion; they are counted
	// separately and flushed when the wait completes.
	spin bool
}

// uopRef is a generation-checked reference to a ROB slot. The zero value
// is "no dependence".
type uopRef struct {
	gen uint32 // 0 = nil reference
	idx int16
	tid int8
}

// rob is a fixed-capacity in-order ring of µops for one context.
type rob struct {
	buf   []uop
	head  int
	count int
}

func newROB(capacity int) *rob {
	return &rob{buf: make([]uop, capacity)}
}

// push allocates the next slot and returns it with its reference. The
// caller must have checked occupancy.
func (r *rob) push() (*uop, uopRef, bool) {
	if r.count == len(r.buf) {
		return nil, uopRef{}, false
	}
	idx := (r.head + r.count) % len(r.buf)
	r.count++
	u := &r.buf[idx]
	gen := u.gen + 1
	if gen == 0 { // generation 0 is the nil reference; skip it on wrap
		gen = 1
	}
	*u = uop{gen: gen}
	return u, uopRef{gen: gen, idx: int16(idx)}, true
}

// peek returns the oldest µop, if any.
func (r *rob) peek() *uop {
	if r.count == 0 {
		return nil
	}
	return &r.buf[r.head]
}

// pop retires the oldest µop.
func (r *rob) pop() {
	if r.count == 0 {
		panic("smt: pop from empty ROB")
	}
	r.head = (r.head + 1) % len(r.buf)
	r.count--
}

// at resolves a slot index to its µop.
func (r *rob) at(idx int16) *uop { return &r.buf[idx] }

// each visits the in-flight µops oldest-first.
func (r *rob) each(fn func(*uop)) {
	for i := 0; i < r.count; i++ {
		fn(&r.buf[(r.head+i)%len(r.buf)])
	}
}
