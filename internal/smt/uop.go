package smt

import (
	"smtexplore/internal/isa"
)

// uop is one in-flight micro-operation. µops live in a per-context reorder
// ring; they are referenced across structures by uopRef with generation
// checks, so retirement can recycle slots without dangling dependences.
// Field order is deliberate: the scalars the issue scan and retire loop
// touch on every examination (generation check, issued/cancelled state,
// timing memos, the opcode inside in) pack into the leading cache line;
// the colder dataflow edges, attribution timestamps and wakeup consumer
// list follow.
type uop struct {
	gen uint32 // slot generation; bumped on reuse
	// schedSlot is the physical scheduler-ring slot of this µop's entry,
	// maintained by schedInsert and schedCompact so prods can find it.
	schedSlot uint32

	doneAt uint64
	// readyAt memoises the earliest cycle at which all captured
	// dependences can be complete, discovered lazily as producers issue;
	// it lets the scheduler scan skip repeated dependence walks.
	readyAt uint64
	// retryAt delays re-issue after an MSHR-full rejection.
	retryAt uint64

	issued    bool
	cancelled bool // flushed spin µop: dependents treat as complete
	// spin marks µops injected by spin-wait expansion; they are counted
	// separately and flushed when the wait completes.
	spin  bool
	nCons uint8
	// regBits records which of this µop's own dependences are registered
	// in their producer's cons list (1=dep1, 2=dep2, 4=depW).
	regBits uint8
	port    isa.Port
	unit    isa.Unit

	in  isa.Instr
	seq uint64 // global allocation order, drives oldest-first issue

	allocAt uint64
	issueAt uint64

	// Dataflow edges captured at allocation: latest older writers of the
	// two sources (RAW) and of the destination (WAW). The machine has no
	// rename stage — the paper's ILP knob is architectural-register
	// pressure, which this models directly.
	dep1, dep2, depW uopRef

	// Wakeup bookkeeping (never serialized — Restore re-registers from
	// scratch because every restored scheduler entry re-examines).
	//
	// cons holds scheduler-sleeping consumers of this µop, registered
	// while it is unissued; dispatch prods each one with the completion
	// time so dependence chains need no polling. A full list simply
	// leaves the extra consumers polling — a correctness-neutral
	// slowdown.
	cons [4]uopRef
}

// uopRef is a generation-checked reference to a ROB slot. The zero value
// is "no dependence".
type uopRef struct {
	gen uint32 // 0 = nil reference
	idx int16
	tid int8
}

// rob is a fixed-capacity in-order ring of µops for one context. The
// backing array is rounded up to a power of two so ring indexing is a
// mask, not a divide; occupancy limits are enforced by the allocator
// against the configured capacity, never against len(buf).
type rob struct {
	buf   []uop
	mask  int // len(buf) - 1
	head  int
	count int
}

func newROB(capacity int) *rob {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &rob{buf: make([]uop, n), mask: n - 1}
}

// push allocates the next slot and returns it with its reference. The
// caller must have checked occupancy against the configured limit.
func (r *rob) push() (*uop, uopRef, bool) {
	if r.count == len(r.buf) {
		return nil, uopRef{}, false
	}
	idx := (r.head + r.count) & r.mask
	r.count++
	u := &r.buf[idx]
	gen := u.gen + 1
	if gen == 0 { // generation 0 is the nil reference; skip it on wrap
		gen = 1
	}
	// Targeted reset instead of *u = uop{}: the cons array is only read
	// up to nCons, so clearing nCons alone retires its stale entries,
	// and the caller overwrites in/seq/spin/allocAt/issueAt immediately.
	u.gen = gen
	u.issued = false
	u.cancelled = false
	u.doneAt = 0
	u.port = 0
	u.unit = 0
	u.dep1 = uopRef{}
	u.dep2 = uopRef{}
	u.depW = uopRef{}
	u.retryAt = 0
	u.readyAt = 0
	u.nCons = 0
	u.regBits = 0
	u.schedSlot = 0
	return u, uopRef{gen: gen, idx: int16(idx)}, true
}

// peek returns the oldest µop, if any.
func (r *rob) peek() *uop {
	if r.count == 0 {
		return nil
	}
	return &r.buf[r.head]
}

// pop retires the oldest µop.
func (r *rob) pop() {
	if r.count == 0 {
		panic("smt: pop from empty ROB")
	}
	r.head = (r.head + 1) & r.mask
	r.count--
}

// at resolves a slot index to its µop.
func (r *rob) at(idx int16) *uop { return &r.buf[idx] }

// each visits the in-flight µops oldest-first.
func (r *rob) each(fn func(*uop)) {
	for i := 0; i < r.count; i++ {
		fn(&r.buf[(r.head+i)&r.mask])
	}
}
