// Package smt implements the cycle-level simulator of a two-context
// simultaneous-multithreaded (hyper-threaded) out-of-order processor, the
// hardware substrate of the reproduced paper.
//
// The model follows the NetBurst-style organisation the paper describes:
// a front end that alternates between logical processors cycle-by-cycle,
// an in-order allocator gated by statically partitioned buffers (reorder
// buffer, load queue, store queue, scheduler window) that are halved when
// both contexts are active and recombined when one halts, a dynamically
// shared issue stage feeding the ports and execution subunits of
// internal/isa, a shared data-cache hierarchy (internal/mem), and in-order
// retirement. The paper's performance-monitoring events are counted in a
// perfmon.Counters bank, qualified by logical CPU.
//
// Workloads are trace.Programs: lazily generated µop streams with real
// register dependences and byte addresses. Synchronisation between the two
// contexts uses cells — simulated shared words written by FlagStore µops at
// retirement and observed by the declarative SpinWait/HaltWait operations,
// which the front end expands into spin-loop µop traffic (with or without
// the pause hint) or into halt/IPI sleep-wake transitions.
package smt

import (
	"fmt"

	"smtexplore/internal/mem"
)

// Config parameterises the simulated processor.
type Config struct {
	// Mem configures the shared data-memory hierarchy.
	Mem mem.HierarchyConfig

	// ROB, LoadQ, StoreQ and SchedWindow are the total entry counts of
	// the statically partitioned buffers. When both hardware contexts
	// are active each context may occupy at most half; when one context
	// is halted (or finished) the survivor uses the full structure.
	ROB         int
	LoadQ       int
	StoreQ      int
	SchedWindow int

	// AllocWidth is the per-cycle allocation (and trace-cache fetch)
	// bandwidth in µops; the front end serves one context per cycle, so
	// in dual-thread mode each context averages AllocWidth/2.
	AllocWidth int
	// IssueWidth bounds µops dispatched to all ports per cycle.
	IssueWidth int
	// RetireWidth bounds µops retired per cycle (alternating context
	// priority, as in the front end).
	RetireWidth int

	// SpinExitFlushPenalty is the pipeline-flush cost, in cycles, paid
	// when a spin-wait loop observes its exit condition: the memory-order
	// violation replay the paper describes.
	SpinExitFlushPenalty int

	// HaltWakeLatency is the cost of waking a halted logical processor
	// (IPI delivery plus pipeline re-partition), charged to the waking
	// context.
	HaltWakeLatency int

	// PartitionFreeze is the allocation stall imposed on the *sibling*
	// context when the partitioned resources are re-split on wake-up.
	PartitionFreeze int

	// RetryDelay is the scheduler replay delay for a load rejected by a
	// full MSHR file.
	RetryDelay int

	// MachineClearPenalty is the replay cost added to a logical
	// processor's in-flight load when the sibling retires a store to the
	// same cache line — the memory-order machine clear that punishes
	// fine-grained line sharing between hyper-threads. Zero disables the
	// mechanism.
	MachineClearPenalty int

	// NoStaticPartition disables the halving of ROB/LoadQ/StoreQ/
	// SchedWindow in dual-thread mode, making every buffer fully shared.
	// This is an ablation knob (§5.3 of the paper attributes much of the
	// TLP slowdown to static partitioning).
	NoStaticPartition bool
}

// DefaultConfig returns the NetBurst-like configuration used throughout
// the reproduction.
func DefaultConfig() Config {
	return Config{
		Mem:                  mem.DefaultHierarchy(),
		ROB:                  126,
		LoadQ:                48,
		StoreQ:               24,
		SchedWindow:          64,
		AllocWidth:           3,
		IssueWidth:           6,
		RetireWidth:          3,
		SpinExitFlushPenalty: 30,
		HaltWakeLatency:      1500,
		PartitionFreeze:      20,
		RetryDelay:           5,
		MachineClearPenalty:  100,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Mem.Validate(); err != nil {
		return fmt.Errorf("smt: %w", err)
	}
	for _, p := range []struct {
		name string
		v    int
		even bool
	}{
		{"ROB", c.ROB, true},
		{"LoadQ", c.LoadQ, true},
		{"StoreQ", c.StoreQ, true},
		{"SchedWindow", c.SchedWindow, true},
		{"AllocWidth", c.AllocWidth, false},
		{"IssueWidth", c.IssueWidth, false},
		{"RetireWidth", c.RetireWidth, false},
		{"RetryDelay", c.RetryDelay, false},
	} {
		if p.v <= 0 {
			return fmt.Errorf("smt: %s = %d, must be positive", p.name, p.v)
		}
		if p.even && p.v%2 != 0 {
			return fmt.Errorf("smt: %s = %d, must be even (statically partitionable)", p.name, p.v)
		}
	}
	if c.SpinExitFlushPenalty < 0 || c.HaltWakeLatency < 0 || c.PartitionFreeze < 0 || c.MachineClearPenalty < 0 {
		return fmt.Errorf("smt: penalties must be non-negative")
	}
	if c.ROB > 1<<14 {
		return fmt.Errorf("smt: ROB = %d unreasonably large (ring indices are 16-bit)", c.ROB)
	}
	return nil
}
