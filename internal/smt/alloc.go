package smt

import (
	"fmt"

	"smtexplore/internal/isa"
	"smtexplore/internal/perfmon"
)

// allocate is the merged fetch/decode/allocate front end. Each cycle it
// serves one context (alternating, falling back to the sibling when the
// preferred context cannot allocate), feeding up to AllocWidth µops into
// the reorder buffer and scheduler window, gated by the statically
// partitioned buffer limits. The declarative synchronisation operations
// are interpreted here: SpinWait expands into spin-loop µop traffic until
// its condition holds (then pays the memory-order-violation flush),
// HaltWait drains and halts the context, Pause de-pipelines allocation.
func (m *Machine) allocate() {
	now := m.cycle
	pref := int(m.cycle % NumContexts)
	t := m.allocPick(pref)
	if t == nil {
		return
	}

	budget := m.cfg.AllocWidth
	for budget > 0 {
		if t.allocStallUntil > now {
			break
		}
		in, ok := m.peekInstr(t)
		if !ok {
			if t.runnable() && !t.drained() {
				// Pipeline still draining; nothing to fetch.
				m.ctr.Inc(perfmon.FetchStarvedCycles, t.id)
			}
			break
		}

		switch in.Op {
		case isa.SpinWait:
			if m.cellHolds(*in) {
				m.finishSpin(t, now)
				continue
			}
			t.spinning = true
			n, ok := m.injectSpinIteration(t, *in, now, budget)
			budget -= n
			if !ok {
				return
			}
			continue

		case isa.HaltWait:
			if m.cellHolds(*in) {
				// Condition already true: no halt happens, no penalty.
				t.pendingValid = false
				continue
			}
			t.halting = true
			return

		case isa.Pause:
			u, ok := m.allocSimple(t, *in, now, false)
			if !ok {
				return
			}
			u.issued = true
			u.doneAt = now + uint64(isa.SpecOf(isa.Pause).Latency)
			t.allocStallUntil = u.doneAt
			t.pendingValid = false
			budget--

		case isa.Nop:
			u, ok := m.allocSimple(t, *in, now, false)
			if !ok {
				return
			}
			u.issued = true
			u.doneAt = now + 1
			t.pendingValid = false
			budget--

		default:
			if !m.allocExec(t, *in, now, false) {
				return
			}
			t.pendingValid = false
			budget--
		}
	}
}

// allocPick chooses the context served by the front end this cycle: the
// preferred one if it can make progress, otherwise its sibling. A
// spinning context still "makes progress" — its spin loop consumes front-
// end bandwidth, which is exactly the interference the paper measures.
func (m *Machine) allocPick(pref int) *thread {
	for k := 0; k < NumContexts; k++ {
		t := &m.threads[(pref+k)%NumContexts]
		if !t.runnable() || t.halting {
			continue
		}
		if t.allocStallUntil > m.cycle {
			continue
		}
		if !t.pendingValid && t.stream.Done() {
			continue
		}
		return t
	}
	return nil
}

// peekInstr exposes the next unallocated instruction of t, fetching from
// the stream into the pending slot as needed. The returned pointer is
// into t.pending and is valid until the instruction is consumed.
func (m *Machine) peekInstr(t *thread) (*isa.Instr, bool) {
	if !t.pendingValid {
		in, ok := t.stream.Next()
		if !ok {
			return nil, false
		}
		t.pending = in
		t.pendingValid = true
	}
	return &t.pending, true
}

// allocSimple claims a ROB slot for a non-scheduled µop (nop/pause and
// spin-injected branches go through here too, via allocExec for the
// latter). It returns false without consuming the instruction when the
// ROB partition is full.
func (m *Machine) allocSimple(t *thread, in isa.Instr, now uint64, spin bool) (*uop, bool) {
	if t.rob.count >= m.limROB {
		m.ctr.Inc(perfmon.ROBStallCycles, t.id)
		return nil, false
	}
	u, ref, ok := t.rob.push()
	if !ok {
		// Occupancy is bounded by limit() ≤ capacity, so a failed push is
		// a simulator invariant violation, not a workload condition.
		panic(fmt.Sprintf("smt: ROB ring overflow on context %d", t.id))
	}
	ref.tid = int8(t.id)
	m.seq++
	u.in = in
	u.seq = m.seq
	u.spin = spin
	u.allocAt = now
	u.issueAt = now
	_ = ref
	return u, true
}

// allocExec allocates an executable µop: ROB slot, scheduler-window slot,
// and a load/store-queue entry for memory operations, recording dataflow
// dependences against the architectural register file. It returns false
// (and books the blocking stall event) when any resource is exhausted.
func (m *Machine) allocExec(t *thread, in isa.Instr, now uint64, spin bool) bool {
	if t.rob.count >= m.limROB {
		m.ctr.Inc(perfmon.ROBStallCycles, t.id)
		return false
	}
	if t.schedCount >= m.limSched {
		m.ctr.Inc(perfmon.SchedStallCycles, t.id)
		return false
	}
	if in.Op == isa.Load && t.ldq >= m.limLDQ {
		m.ctr.Inc(perfmon.LoadBufStallCycles, t.id)
		return false
	}
	if in.Op.IsStore() && t.stq >= m.limSTQ {
		// The paper's "resource stall cycles": the allocator waits for a
		// store-buffer entry.
		m.ctr.Inc(perfmon.ResourceStallCycles, t.id)
		return false
	}

	u, ref, ok := t.rob.push()
	if !ok {
		panic(fmt.Sprintf("smt: ROB ring overflow on context %d", t.id))
	}
	ref.tid = int8(t.id)
	m.seq++
	u.in = in
	u.seq = m.seq
	u.spin = spin
	u.allocAt = now

	// Dataflow edges: RAW against the latest older writer of each source,
	// WAW against the previous writer of the destination (no rename).
	// Producers that have already issued collapse into a readyAt bound at
	// birth, so the scheduler never has to walk them.
	if in.Src1 != isa.RegNone {
		u.dep1 = m.captureDep(t.regPrev[in.Src1], u, ref, 1)
	}
	if in.Src2 != isa.RegNone {
		u.dep2 = m.captureDep(t.regPrev[in.Src2], u, ref, 2)
	}
	if in.Dst != isa.RegNone {
		u.depW = m.captureDep(t.regPrev[in.Dst], u, ref, 4)
		t.regPrev[in.Dst] = ref
	}

	if in.Op == isa.Load {
		t.ldq++
	}
	if in.Op.IsStore() {
		t.stq++
	}
	t.schedCount++
	wake := u.readyAt
	if u.regBits != 0 &&
		(u.dep1.gen == 0 || u.regBits&1 != 0) &&
		(u.dep2.gen == 0 || u.regBits&2 != 0) &&
		(u.depW.gen == 0 || u.regBits&4 != 0) {
		// Every outstanding producer is registered to prod this µop on
		// dispatch: it can sleep from birth with no wake bound at all.
		wake = schedAsleep
	}
	m.schedInsert(ref, in.Op, wake)
	return true
}

// captureDep folds an already-resolved producer into the consumer's
// readyAt memo, returning the empty reference; unresolved producers keep
// the reference for the scheduler to track, registering the consumer for
// a dispatch prod when the producer's list has room.
func (m *Machine) captureDep(r uopRef, consumer *uop, consRef uopRef, bit uint8) uopRef {
	p := m.resolve(r)
	if p == nil || p.cancelled {
		return uopRef{}
	}
	if p.issued {
		if p.doneAt > consumer.readyAt {
			consumer.readyAt = p.doneAt
		}
		return uopRef{}
	}
	// Allocation runs after the issue stage, so an unissued producer
	// cannot dispatch before next cycle; seed the consumer's readyAt with
	// the completion bound so its scheduler entry sleeps from birth.
	if b := unissuedBound(p, m.cycle); b > consumer.readyAt {
		consumer.readyAt = b
	}
	if int(p.nCons) < len(p.cons) {
		p.cons[p.nCons] = consRef
		p.nCons++
		consumer.regBits |= bit
	}
	return r
}

// injectSpinIteration emits one spin-loop body iteration for an
// unsatisfied SpinWait: a load of the synchronisation cell plus the
// loop-closing branch, and — in the pause-augmented form the paper
// recommends — a pause that throttles further allocation. It returns the
// number of µops allocated and whether the front end may continue this
// cycle.
func (m *Machine) injectSpinIteration(t *thread, in isa.Instr, now uint64, budget int) (int, bool) {
	if budget < 2 {
		return 0, false
	}
	ld := isa.Instr{Op: isa.Load, Dst: spinReg, Addr: isa.CellAddr(in.Cell)}
	if !m.allocExec(t, ld, now, true) {
		return 0, false
	}
	n := 1
	br := isa.Instr{Op: isa.Branch}
	if m.allocExec(t, br, now, true) {
		n++
	}
	if in.UsePause {
		if budget-n < 1 {
			return n, false
		}
		u, ok := m.allocSimple(t, isa.Instr{Op: isa.Pause}, now, true)
		if !ok {
			return n, false
		}
		u.issued = true
		u.doneAt = now + uint64(isa.SpecOf(isa.Pause).Latency)
		t.allocStallUntil = u.doneAt
		n++
		return n, false // pause gates the rest of the cycle
	}
	return n, true
}

// finishSpin completes a satisfied SpinWait: the in-flight spin-loop µops
// beyond the observing load are flushed (the memory-order violation the
// paper describes) and the context pays the flush penalty before
// continuing with program µops.
func (m *Machine) finishSpin(t *thread, now uint64) {
	t.pendingValid = false
	if !t.spinning {
		// Condition was already true on first encounter: the loop never
		// spun, no flush occurs.
		return
	}
	t.spinning = false

	m.flushSpinTail(t)
	m.ctr.Inc(perfmon.PipelineFlushes, t.id)
	m.ctr.Add(perfmon.FlushPenaltyCycles, t.id, uint64(m.cfg.SpinExitFlushPenalty))
	if until := now + uint64(m.cfg.SpinExitFlushPenalty); until > t.allocStallUntil {
		t.allocStallUntil = until
	}
	t.regPrev[spinReg] = uopRef{}
}

// flushSpinTail removes the unretired spin-injected µops, which form a
// contiguous suffix of the context's ROB (nothing else allocates while the
// context spins). Flushed slots are invalidated so scheduler references
// go stale, and their queue entries are released.
func (m *Machine) flushSpinTail(t *thread) int {
	flushed := 0
	for t.rob.count > 0 {
		idx := (t.rob.head + t.rob.count - 1) & t.rob.mask
		u := &t.rob.buf[idx]
		if !u.spin {
			break
		}
		if u.in.Op == isa.Load {
			t.ldq--
		}
		// The scheduler-window slot of an unissued spin µop is released
		// by the issue-stage compaction when its reference goes stale.
		u.cancelled = true
		u.gen++ // invalidate outstanding references
		t.rob.count--
		flushed++
	}
	if flushed > 0 {
		// Invalidated references may be sleeping under a wake bound; zero
		// it so the issue scan reaps them on schedule.
		m.schedWakeStale()
	}
	return flushed
}
