package smt

import (
	"smtexplore/internal/isa"
	"smtexplore/internal/mem"
	"smtexplore/internal/perfmon"
)

// retire commits completed µops in order, up to RetireWidth per cycle,
// alternating which context is served first. Stores perform their cache
// access here (post-retirement drain) and hold their store-buffer entry
// until the drain completes; FlagStores additionally publish their value
// to the synchronisation cell.
func (m *Machine) retire() {
	now := m.cycle
	budget := m.cfg.RetireWidth
	first := int(m.cycle % NumContexts)
	for k := 0; k < NumContexts && budget > 0; k++ {
		t := &m.threads[(first+k)%NumContexts]
		var uops, spin, instr, pause uint64
		for budget > 0 {
			u := t.rob.peek()
			if u == nil || !u.issued || u.doneAt > now {
				break
			}
			if u.in.Op.IsStore() {
				// Drain the store to the cache hierarchy now. A full
				// MSHR file blocks retirement of this context.
				res := m.hier.Access(now, t.id, u.in.Addr, true, u.in.Tag)
				if res.Retry {
					m.ctr.Inc(perfmon.MSHRRetryCycles, t.id)
					break
				}
				t.stqFree = append(t.stqFree, now+uint64(res.Latency))
				m.bookAccess(t.id, res, true)
				if u.in.Op == isa.FlagStore {
					m.cells[u.in.Cell] = u.in.Val
				}
				if m.cfg.MachineClearPenalty > 0 {
					m.machineClearCheck(t.id, u.in.Addr&^63, now)
				}
			}
			if u.in.Op == isa.Load {
				t.ldq--
			}
			uops++
			if u.spin {
				spin++
			} else {
				instr++
				// Only program µops count as forward progress: a spin
				// loop on a never-satisfied cell retires µops forever
				// without progressing, and the deadlock watchdog must
				// still fire for it.
				m.lastRetireCycle = now
			}
			if u.in.Op == isa.Pause {
				pause++
			}
			if m.armed&armRetire != 0 {
				// An armed observer may read the counters mid-cycle (e.g.
				// snapshotting at a tagged retirement), so the batched
				// deltas must be visible before it runs — flush them and
				// reset the accumulators.
				m.ctr.Add(perfmon.UopsRetired, t.id, uops)
				m.ctr.Add(perfmon.InstrRetired, t.id, instr)
				m.ctr.Add(perfmon.SpinUopsRetired, t.id, spin)
				m.ctr.Add(perfmon.PauseUopsRetired, t.id, pause)
				uops, spin, instr, pause = 0, 0, 0, 0
				m.onRetire(RetireInfo{
					Tid: t.id, Instr: u.in, Unit: u.unit, Spin: u.spin, Cycle: now,
					AllocCycle: u.allocAt, IssueCycle: u.issueAt, CompleteCycle: u.doneAt,
				})
			}
			t.rob.pop()
			budget--
		}
		if uops != 0 {
			m.ctr.Add(perfmon.UopsRetired, t.id, uops)
			if instr != 0 {
				m.ctr.Add(perfmon.InstrRetired, t.id, instr)
			}
			if spin != 0 {
				m.ctr.Add(perfmon.SpinUopsRetired, t.id, spin)
			}
			if pause != 0 {
				m.ctr.Add(perfmon.PauseUopsRetired, t.id, pause)
			}
		}
	}
}

// bookAccess mirrors a cache access's miss events into the monitoring
// bank, so the perfmon counters alone tell the paper's story (the
// hierarchy keeps its own richer attribution).
func (m *Machine) bookAccess(tid int, res mem.AccessResult, write bool) {
	if res.L1Miss {
		m.ctr.Inc(perfmon.L1Misses, tid)
	}
	if res.L2Miss {
		m.ctr.Inc(perfmon.L2Misses, tid)
		if !write {
			m.ctr.Inc(perfmon.L2ReadMisses, tid)
		}
	}
}

// machineClearCheck models the hyper-threading memory-order machine clear:
// when context tid retires a store into line while the sibling has an
// in-flight load of the same line, that load replays, paying the
// configured penalty. This is what makes fine-grained sharing of cache
// lines between the logical processors expensive.
func (m *Machine) machineClearCheck(tid int, line uint64, now uint64) {
	sib := &m.threads[1-tid]
	for i := range sib.inflightLoads {
		rec := &sib.inflightLoads[i]
		if rec.line != line || rec.ref.gen == 0 {
			continue
		}
		u := m.resolve(rec.ref)
		if u == nil || u.cancelled || !u.issued || u.doneAt <= now {
			continue
		}
		u.doneAt += uint64(m.cfg.MachineClearPenalty)
		// The clear flushes the sibling's in-flight speculative work:
		// its front end re-fills for the penalty duration.
		if until := now + uint64(m.cfg.MachineClearPenalty); until > sib.allocStallUntil {
			sib.allocStallUntil = until
		}
		m.ctr.Inc(perfmon.MachineClears, sib.id)
		m.ctr.Add(perfmon.MachineClearCycles, sib.id, uint64(m.cfg.MachineClearPenalty))
	}
}
