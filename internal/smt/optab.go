package smt

import "smtexplore/internal/isa"

// Flattened per-opcode execution tables. isa.SpecOf returns the full Spec
// struct by value (ports slice, port→unit table, latencies) — fine for
// construction-time code, but the issue stage consults latency,
// recurrence and port candidates on every dispatch and every dependence
// examination, so the hot loops read these precomputed arrays instead.
var (
	opLatency    [isa.NumOps]uint64
	opRecurrence [isa.NumOps]uint64
	opPorts      [isa.NumOps][]portCand
)

// portCand is one (port, unit, cost) issue choice for an opcode, in
// spec order. cost is in half-slots: 1 for double-speed ALU µops, 2 (the
// whole port) otherwise.
type portCand struct {
	port isa.Port
	unit isa.Unit
	cost int
}

func init() {
	for op := 0; op < isa.NumOps; op++ {
		spec := isa.SpecOf(isa.Op(op))
		opLatency[op] = uint64(spec.Latency)
		opRecurrence[op] = uint64(spec.Recurrence)
		for _, p := range spec.Ports {
			unit := spec.UnitFor[p]
			cost := 1
			if isa.PortWidth(p, unit) < 2 {
				cost = 2
			}
			opPorts[op] = append(opPorts[op], portCand{port: p, unit: unit, cost: cost})
		}
	}
}
