package smt

import (
	"runtime"
	"testing"
	"time"

	"smtexplore/internal/isa"
	"smtexplore/internal/trace"
)

// waitGoroutines polls until the live goroutine count drops back to at
// most want, tolerating scheduler lag, and returns the settled count.
func waitGoroutines(want int) int {
	var n int
	for i := 0; i < 200; i++ {
		n = runtime.NumGoroutine()
		if n <= want {
			return n
		}
		time.Sleep(time.Millisecond)
	}
	return n
}

// TestCloseReleasesAbandonedStreams pins the abandonment path of the
// bounded measurement window: a Forever program stopped by a cycle
// budget leaves its iter.Pull generator goroutine parked, and
// Machine.Close must release it.
func TestCloseReleasesAbandonedStreams(t *testing.T) {
	forever := func() trace.Program {
		return trace.Forever(trace.Generate(func(e *trace.Emitter) {
			for i := 0; i < 64 && !e.Stopped(); i++ {
				e.ALU(isa.FAdd, isa.F(i%6), isa.F(8), isa.F(9))
			}
		}))
	}
	before := runtime.NumGoroutine()
	const rounds = 20
	for i := 0; i < rounds; i++ {
		m := New(DefaultConfig())
		m.LoadProgram(0, forever())
		m.LoadProgram(1, forever())
		res, err := m.Run(500)
		if err != nil {
			t.Fatal(err)
		}
		if res.Completed {
			t.Fatal("Forever program reported completion")
		}
		m.Close()
		m.Close() // idempotent
	}
	if after := waitGoroutines(before); after > before {
		t.Errorf("leaked %d goroutines over %d windowed runs (before=%d after=%d)",
			after-before, rounds, before, after)
	}
}

// TestCloseAfterCompletionIsHarmless checks Close on a machine whose
// programs retired fully (streams already closed by housekeeping).
func TestCloseAfterCompletionIsHarmless(t *testing.T) {
	m := New(DefaultConfig())
	m.LoadProgram(0, trace.Generate(func(e *trace.Emitter) {
		e.ALU(isa.IAdd, isa.R(0), isa.R(1), isa.R(2))
	}))
	res, err := m.Run(0)
	if err != nil || !res.Completed {
		t.Fatalf("run: err=%v completed=%v", err, res.Completed)
	}
	m.Close()
}
