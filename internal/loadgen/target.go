package loadgen

import (
	"net/http"
	"strings"
	"sync"
)

// targetSet is the runner's endpoint picker over the comma-separated
// Target list: one address for a single daemon, two for an HA
// coordinator pair. Transport errors rotate to the next address; a 503
// carrying X-Cluster-Leader (a standby's redirect) jumps straight to
// the leader. The picker is shared by every generator goroutine, so
// one job discovering the failover steers the whole run.
type targetSet struct {
	mu   sync.Mutex
	list []string // host:port entries
	cur  int
}

func newTargetSet(spec string) *targetSet {
	ts := &targetSet{}
	for _, a := range strings.Split(spec, ",") {
		if a = strings.TrimSpace(a); a != "" {
			ts.list = append(ts.list, a)
		}
	}
	if len(ts.list) == 0 {
		ts.list = []string{""}
	}
	return ts
}

// pick is the address the next request should use.
func (ts *targetSet) pick() string {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.list[ts.cur]
}

// observe steers the pick from one request's outcome; callers must not
// have consumed resp.Body yet (only status and headers are read).
func (ts *targetSet) observe(resp *http.Response, err error) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	switch {
	case err != nil:
		ts.cur = (ts.cur + 1) % len(ts.list)
	case resp.StatusCode == http.StatusServiceUnavailable:
		if leader := resp.Header.Get("X-Cluster-Leader"); leader != "" && leader != "unknown" {
			ts.jumpLocked(leader)
		} else {
			ts.cur = (ts.cur + 1) % len(ts.list)
		}
	}
}

func (ts *targetSet) jumpLocked(addr string) {
	for i, a := range ts.list {
		if a == addr {
			ts.cur = i
			return
		}
	}
	ts.list = append(ts.list, addr)
	ts.cur = len(ts.list) - 1
}
