package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// submitRequest mirrors the daemon's POST /v1/jobs body. Declared
// locally so the harness exercises the wire contract, not shared Go
// structs — a field the daemon renames breaks this harness the same
// way it breaks real clients.
type submitRequest struct {
	Cells    []cellSpec `json:"cells"`
	Priority int        `json:"priority,omitempty"`
	Deadline string     `json:"deadline,omitempty"`
}

type cellSpec struct {
	Type    string       `json:"type"`
	Streams []streamSpec `json:"streams"`
	Window  uint64       `json:"window,omitempty"`
}

type streamSpec struct {
	Kind string `json:"kind"`
}

// jobOutcome is one submitted job's fate.
type jobOutcome struct {
	tenant  string
	state   string // "done", "failed", "cancelled", "shed", "error", "lost"
	cause   string // shed: X-Quota-Cause or "backpressure"; error: message
	latency time.Duration
	cells   int
}

// Runner drives one scenario against one target — or, for an HA
// coordinator pair, a comma-separated pair of targets with automatic
// failover.
type Runner struct {
	Target string // host:port of smtd or coordinator; "a,b" for an HA pair
	// Log receives progress lines (nil: quiet).
	Log io.Writer
	// Client overrides the HTTP client (tests); nil uses a 10s-timeout
	// default.
	Client *http.Client
	// PollEvery paces job-completion polling (0 → 50ms).
	PollEvery time.Duration
	// Kill overrides the kill phase's action (tests); nil sends SIGKILL
	// to the pidfile's process.
	Kill func(pidfile string) error
	// SubmitRetry bounds how long a submission keeps retrying across
	// transport errors and leaderless 503s before counting as an error
	// (0 → 5s). This is what turns a coordinator failover into added
	// latency instead of failed jobs.
	SubmitRetry time.Duration

	tsOnce sync.Once
	ts     *targetSet
}

func (r *Runner) client() *http.Client {
	if r.Client != nil {
		return r.Client
	}
	return &http.Client{Timeout: 10 * time.Second}
}

func (r *Runner) targets() *targetSet {
	r.tsOnce.Do(func() { r.ts = newTargetSet(r.Target) })
	return r.ts
}

func (r *Runner) submitRetry() time.Duration {
	if r.SubmitRetry > 0 {
		return r.SubmitRetry
	}
	return 5 * time.Second
}

func (r *Runner) pollEvery() time.Duration {
	if r.PollEvery > 0 {
		return r.PollEvery
	}
	return 50 * time.Millisecond
}

func (r *Runner) logf(format string, v ...any) {
	if r.Log != nil {
		fmt.Fprintf(r.Log, "loadgen: "+format+"\n", v...)
	}
}

// tenantSeed derives one tenant's arrival stream: scenario seed mixed
// with the tenant's name, so streams are independent and stable.
func tenantSeed(seed uint64, name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return seed + h.Sum64()
}

// arrivals precomputes one tenant's Poisson arrival offsets over the
// run. Precomputing (rather than drawing as the run progresses) keeps
// the schedule deterministic even when submission goroutines lag.
func arrivals(t *TenantLoad, seed uint64, duration time.Duration) []time.Duration {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	var out []time.Duration
	at := time.Duration(0)
	for {
		// Exponential inter-arrival with mean 1/rate.
		at += time.Duration(rng.ExpFloat64() / t.RateHz * float64(time.Second))
		if at >= duration {
			return out
		}
		out = append(out, at)
	}
}

// Run executes the scenario and gathers per-tenant statistics. The
// context cancels the whole run (in-flight watchers report "lost").
func (r *Runner) Run(ctx context.Context, sc Scenario) (*Report, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	outcomes := make(chan jobOutcome, 1024)
	var wg sync.WaitGroup

	// Chaos phases on their own timers.
	for i := range sc.Phases {
		p := sc.Phases[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Duration(p.At)):
			}
			switch p.Kind {
			case PhaseKill:
				if err := r.kill(p.Pidfile); err != nil {
					r.logf("phase %s %s: %v", p.Kind, p.Pidfile, err)
				} else {
					r.logf("phase: killed %s at +%v", p.Pidfile, time.Since(start).Round(time.Millisecond))
				}
			case PhaseFaults:
				if err := r.armFaults(ctx, p.Plan); err != nil {
					r.logf("phase %s %s: %v", p.Kind, p.Plan, err)
				} else {
					r.logf("phase: armed fault plan %s at +%v", p.Plan, time.Since(start).Round(time.Millisecond))
				}
			}
		}()
	}

	// One generator per tenant, open-loop: each arrival submits at its
	// scheduled offset regardless of how previous jobs are faring.
	for i := range sc.Tenants {
		t := &sc.Tenants[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.generate(ctx, t, sc, start, outcomes, &wg)
		}()
	}

	// Close the outcome stream once every generator and watcher is done.
	collected := make(chan *Report, 1)
	go func() {
		rep := newReport(sc, start)
		for o := range outcomes {
			rep.add(o)
		}
		rep.finish(time.Since(start))
		collected <- rep
	}()
	wg.Wait()
	close(outcomes)
	rep := <-collected
	r.collectTelemetry(ctx, rep)
	return rep, nil
}

// armFaults POSTs the plan file to the target's fault API. The daemon
// refuses with 403 unless it was started with -allow-fault-api, which
// surfaces here as a phase error rather than silently healthy load.
func (r *Runner) armFaults(ctx context.Context, planFile string) error {
	data, err := os.ReadFile(planFile)
	if err != nil {
		return err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+r.targets().pick()+"/v1/faults", bytes.NewReader(data))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := r.client().Do(hreq)
	r.targets().observe(resp, err)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("loadgen: arm faults: %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return nil
}

// collectTelemetry asks the target how the run looked from the inside:
// /v1/stats for daemon degradation counters (plain smtd; coordinators
// 404 it) and /v1/cluster for HA failover figures (coordinators; plain
// daemons 404 it). Either being absent just leaves the report's
// corresponding section empty.
func (r *Runner) collectTelemetry(ctx context.Context, rep *Report) {
	// service.Metrics marshals without json tags, so the field names
	// here match the Go names on the wire.
	var m struct {
		BreakerState   string
		StoreDegraded  bool
		BreakerTrips   uint64
		StoreIOErrors  uint64
		FaultsInjected uint64
	}
	if r.getJSON(ctx, "/v1/stats", &m) == nil {
		rep.Daemon = &DaemonStats{
			BreakerState:   m.BreakerState,
			StoreDegraded:  m.StoreDegraded,
			BreakerTrips:   m.BreakerTrips,
			StoreIOErrors:  m.StoreIOErrors,
			FaultsInjected: m.FaultsInjected,
		}
	}
	var top struct {
		Role                   string  `json:"role"`
		Promotions             uint64  `json:"promotions"`
		JobsAdopted            uint64  `json:"jobs_adopted"`
		FailoverLatencySeconds float64 `json:"failover_latency_seconds"`
	}
	if r.getJSON(ctx, "/v1/cluster", &top) == nil && top.Role != "" {
		rep.Promotions = top.Promotions
		rep.JobsAdopted = top.JobsAdopted
		rep.FailoverLatencySeconds = top.FailoverLatencySeconds
	}
}

func (r *Runner) getJSON(ctx context.Context, path string, v any) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+r.targets().pick()+path, nil)
	if err != nil {
		return err
	}
	resp, err := r.client().Do(hreq)
	r.targets().observe(resp, err)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("loadgen: %s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// generate replays one tenant's precomputed arrival schedule.
func (r *Runner) generate(ctx context.Context, t *TenantLoad, sc Scenario, start time.Time, outcomes chan<- jobOutcome, wg *sync.WaitGroup) {
	sched := arrivals(t, tenantSeed(sc.Seed, t.Name), time.Duration(sc.Duration))
	r.logf("tenant %s: %d arrivals over %v (%.1f/s)", t.Name, len(sched), time.Duration(sc.Duration), t.RateHz)
	var cellSeq uint64
	for _, at := range sched {
		wait := at - time.Since(start)
		if wait > 0 {
			select {
			case <-ctx.Done():
				return
			case <-time.After(wait):
			}
		} else if ctx.Err() != nil {
			return
		}
		seq := cellSeq
		cellSeq += uint64(t.cells())
		wg.Add(1)
		go func() {
			defer wg.Done()
			outcomes <- r.submitAndWatch(ctx, t, seq, sc)
		}()
	}
}

// submitAndWatch submits one job and follows it to a terminal state.
func (r *Runner) submitAndWatch(ctx context.Context, t *TenantLoad, seq uint64, sc Scenario) jobOutcome {
	out := jobOutcome{tenant: t.Name, cells: t.cells()}
	req := submitRequest{Priority: t.Priority}
	if d := time.Duration(t.Deadline); d > 0 {
		req.Deadline = d.String()
	}
	step := t.windowStep()
	for k := 0; k < t.cells(); k++ {
		req.Cells = append(req.Cells, cellSpec{
			Type:    "stream",
			Streams: []streamSpec{{Kind: t.kind()}},
			Window:  t.windowBase() + (seq+uint64(k))*step,
		})
	}
	body, _ := json.Marshal(req)

	submitted := time.Now()
	// Submission survives a coordinator failover: transport errors and
	// election-window 503s retry against the picker's next choice until
	// the retry budget runs out. The per-job Idempotency-Key makes the
	// retries safe — if a dying coordinator did accept the first attempt
	// and journal it, the new leader adopts the job and hands back the
	// same ID instead of running it twice.
	retryUntil := time.Now().Add(r.submitRetry())
	var resp *http.Response
	var respBody []byte
	for {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+r.targets().pick()+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			out.state, out.cause = "error", err.Error()
			return out
		}
		hreq.Header.Set("Content-Type", "application/json")
		hreq.Header.Set("X-Tenant", t.Name)
		hreq.Header.Set("Idempotency-Key", fmt.Sprintf("loadgen-%s-%d", t.Name, seq))
		resp, err = r.client().Do(hreq)
		r.targets().observe(resp, err)
		if err == nil {
			respBody, _ = io.ReadAll(io.LimitReader(resp.Body, 1<<16))
			resp.Body.Close()
			if resp.StatusCode != http.StatusServiceUnavailable {
				break
			}
		}
		if ctx.Err() != nil || time.Now().After(retryUntil) {
			out.state = "error"
			if err != nil {
				out.cause = err.Error()
			} else {
				out.cause = fmt.Sprintf("%d: %s", resp.StatusCode, strings.TrimSpace(string(respBody)))
			}
			return out
		}
		select {
		case <-ctx.Done():
			out.state, out.cause = "error", ctx.Err().Error()
			return out
		case <-time.After(100 * time.Millisecond):
		}
	}
	switch {
	case resp.StatusCode == http.StatusAccepted:
	case resp.StatusCode == http.StatusTooManyRequests:
		out.state = "shed"
		if out.cause = resp.Header.Get("X-Quota-Cause"); out.cause == "" {
			out.cause = "backpressure"
		}
		return out
	default:
		out.state = "error"
		out.cause = fmt.Sprintf("%d: %s", resp.StatusCode, strings.TrimSpace(string(respBody)))
		return out
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.Unmarshal(respBody, &st); err != nil || st.ID == "" {
		out.state, out.cause = "error", "unparseable submit response"
		return out
	}

	// Poll to terminal. The settle budget bounds how long a job may
	// outlive the arrival window before it counts as lost.
	deadline := time.Now().Add(time.Duration(sc.Duration) + sc.settle())
	for {
		if time.Now().After(deadline) {
			out.state = "lost"
			return out
		}
		select {
		case <-ctx.Done():
			out.state = "lost"
			return out
		case <-time.After(r.pollEvery()):
		}
		sreq, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+r.targets().pick()+"/v1/jobs/"+st.ID, nil)
		if err != nil {
			out.state, out.cause = "error", err.Error()
			return out
		}
		sresp, err := r.client().Do(sreq)
		r.targets().observe(sresp, err)
		if err != nil {
			continue // the daemon may be mid-restart or mid-failover; keep polling to the budget
		}
		var jst struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		decErr := json.NewDecoder(sresp.Body).Decode(&jst)
		sresp.Body.Close()
		if decErr != nil || sresp.StatusCode != http.StatusOK {
			continue
		}
		switch jst.State {
		case "done", "failed", "cancelled":
			out.state = jst.State
			out.cause = jst.Error
			out.latency = time.Since(submitted)
			return out
		}
	}
}

// kill SIGKILLs the process named by pidfile — the harness's worker-
// death chaos action.
func (r *Runner) kill(pidfile string) error {
	if r.Kill != nil {
		return r.Kill(pidfile)
	}
	data, err := os.ReadFile(pidfile)
	if err != nil {
		return err
	}
	pid, err := strconv.Atoi(strings.TrimSpace(string(data)))
	if err != nil || pid <= 1 {
		return fmt.Errorf("loadgen: pidfile %s: bad pid %q", pidfile, strings.TrimSpace(string(data)))
	}
	return syscall.Kill(pid, syscall.SIGKILL)
}
