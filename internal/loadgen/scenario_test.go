package loadgen

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"smtexplore/internal/tenant"
)

func TestParseScenarioDefaults(t *testing.T) {
	sc, err := ParseScenario([]byte(`{
		"seed": 7,
		"duration": "5s",
		"tenants": [{"name": "light", "rate_hz": 2}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Seed != 7 || time.Duration(sc.Duration) != 5*time.Second {
		t.Fatalf("seed/duration = %d/%v", sc.Seed, time.Duration(sc.Duration))
	}
	if got := sc.settle(); got != 30*time.Second {
		t.Fatalf("default settle = %v, want 30s", got)
	}
	tl := &sc.Tenants[0]
	if tl.cells() != 1 {
		t.Fatalf("default cells = %d, want 1", tl.cells())
	}
	if tl.kind() != "fadd" {
		t.Fatalf("default kind = %q, want fadd", tl.kind())
	}
	if tl.windowBase() != 10000 {
		t.Fatalf("default window base = %d, want 10000", tl.windowBase())
	}
	if tl.windowStep() != 1 {
		t.Fatalf("unset window step = %d, want 1", tl.windowStep())
	}
}

func TestParseScenarioExplicitZeroStepIsCacheHot(t *testing.T) {
	sc, err := ParseScenario([]byte(`{
		"duration": "1s",
		"tenants": [{"name": "hot", "rate_hz": 1, "window_step": 0}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.Tenants[0].windowStep(); got != 0 {
		t.Fatalf("explicit zero step = %d, want 0 (cache-hot)", got)
	}
}

func TestParseScenarioRejectsUnknownFields(t *testing.T) {
	// A typoed rate field would silently generate zero load; strict
	// decoding has to catch it.
	_, err := ParseScenario([]byte(`{
		"duration": "1s",
		"tenants": [{"name": "t", "rate_hs": 2}]
	}`))
	if err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Fatalf("typoed field err = %v, want unknown-field", err)
	}
}

func TestValidateRejections(t *testing.T) {
	base := func() Scenario {
		return Scenario{
			Duration: dur(time.Second),
			Tenants:  []TenantLoad{{Name: "a", RateHz: 1}},
		}
	}
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"zero duration", func(s *Scenario) { s.Duration = 0 }, "duration"},
		{"over max duration", func(s *Scenario) { s.Duration = dur(2 * time.Hour) }, "duration"},
		{"no tenants", func(s *Scenario) { s.Tenants = nil }, "no tenants"},
		{"too many tenants", func(s *Scenario) {
			for i := 0; i <= MaxTenants; i++ {
				s.Tenants = append(s.Tenants, TenantLoad{Name: "t" + strings.Repeat("x", i+1), RateHz: 1})
			}
		}, "exceeds"},
		{"bad name", func(s *Scenario) { s.Tenants[0].Name = "no spaces" }, "invalid name"},
		{"duplicate name", func(s *Scenario) {
			s.Tenants = append(s.Tenants, TenantLoad{Name: "a", RateHz: 1})
		}, "duplicate"},
		{"zero rate", func(s *Scenario) { s.Tenants[0].RateHz = 0 }, "rate_hz"},
		{"huge rate", func(s *Scenario) { s.Tenants[0].RateHz = MaxRateHz + 1 }, "rate_hz"},
		{"negative cells", func(s *Scenario) { s.Tenants[0].CellsPerJob = -1 }, "cells_per_job"},
		{"huge cells", func(s *Scenario) { s.Tenants[0].CellsPerJob = MaxCellsPerJob + 1 }, "cells_per_job"},
		{"negative deadline", func(s *Scenario) { s.Tenants[0].Deadline = dur(-time.Second) }, "deadline"},
		{"phase past end", func(s *Scenario) {
			s.Phases = []Phase{{At: dur(2 * time.Second), Kind: PhaseKill, Pidfile: "p"}}
		}, "outside the run"},
		{"kill without pidfile", func(s *Scenario) {
			s.Phases = []Phase{{At: 0, Kind: PhaseKill}}
		}, "pidfile"},
		{"unknown phase kind", func(s *Scenario) {
			s.Phases = []Phase{{At: 0, Kind: "reboot", Pidfile: "p"}}
		}, "unknown kind"},
		{"missing fault plan", func(s *Scenario) { s.FaultPlan = "/nonexistent/plan.json" }, "fault plan"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := base()
			tc.mut(&sc)
			err := sc.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestValidateAcceptsFaultPlan(t *testing.T) {
	dir := t.TempDir()
	plan := filepath.Join(dir, "plan.json")
	if err := os.WriteFile(plan, []byte(`{
		"seed": 1,
		"rules": [{"point": "store.write", "action": "error", "prob": 0.5}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	sc := Scenario{
		Duration:  dur(time.Second),
		Tenants:   []TenantLoad{{Name: "a", RateHz: 1}},
		FaultPlan: plan,
	}
	if err := sc.Validate(); err != nil {
		t.Fatalf("valid fault plan rejected: %v", err)
	}
}

func dur(d time.Duration) tenant.Duration {
	return tenant.Duration(d)
}
