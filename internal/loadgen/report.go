package loadgen

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// TenantReport is one tenant's measured outcome.
type TenantReport struct {
	Name      string  `json:"name"`
	RateHz    float64 `json:"rate_hz"`
	Submitted int     `json:"submitted"`
	Done      int     `json:"done"`
	Failed    int     `json:"failed"`
	Cancelled int     `json:"cancelled"`
	Shed      int     `json:"shed"`
	Errors    int     `json:"errors"`
	Lost      int     `json:"lost"`
	// ShedCauses splits sheds by the server-named cause (quota causes
	// or "backpressure" for a cause-less 429).
	ShedCauses map[string]int `json:"shed_causes,omitempty"`
	// CellsDone counts finished cells (goodput in paper terms: cells
	// simulated to completion per second is the fleet's useful work).
	CellsDone int `json:"cells_done"`
	// GoodputJobsPerSec is done jobs over the measured wall clock.
	GoodputJobsPerSec float64 `json:"goodput_jobs_per_sec"`
	// Latency percentiles over done jobs, milliseconds.
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// Report is a whole run's result.
type Report struct {
	Schema  string         `json:"schema"` // "smtexplore-loadgen/v1"
	Started time.Time      `json:"started"`
	Wall    jsonDuration   `json:"wall"`
	Seed    uint64         `json:"seed"`
	Tenants []TenantReport `json:"tenants"`
	// FairnessRatio is max/min per-tenant goodput among tenants that
	// completed at least one job (1.0 = perfectly even; 0 when fewer
	// than two tenants finished anything).
	FairnessRatio float64 `json:"fairness_ratio"`
	// Daemon is the target's post-run self-reported degradation state
	// (nil when the target does not answer /v1/stats — coordinators).
	Daemon *DaemonStats `json:"daemon,omitempty"`
	// HA failover figures from the target's post-run /v1/cluster view
	// (zero against a plain daemon or a pair that never failed over).
	Promotions             uint64  `json:"promotions,omitempty"`
	JobsAdopted            uint64  `json:"jobs_adopted,omitempty"`
	FailoverLatencySeconds float64 `json:"failover_latency_seconds,omitempty"`

	// internal accumulation
	latencies map[string][]time.Duration `json:"-"`
	byName    map[string]*TenantReport   `json:"-"`
}

// DaemonStats is the slice of the daemon's /v1/stats the harness
// cares about: did the chaos actually degrade anything, and did the
// fault plan fire.
type DaemonStats struct {
	BreakerState   string `json:"breaker_state,omitempty"`
	StoreDegraded  bool   `json:"store_degraded,omitempty"`
	BreakerTrips   uint64 `json:"breaker_trips,omitempty"`
	StoreIOErrors  uint64 `json:"store_io_errors,omitempty"`
	FaultsInjected uint64 `json:"faults_injected,omitempty"`
}

// jsonDuration keeps the JSON shape human ("30s") without importing
// the tenant package here just for its Duration alias.
type jsonDuration time.Duration

func (d jsonDuration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

func (d *jsonDuration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return err
	}
	*d = jsonDuration(v)
	return nil
}

func newReport(sc Scenario, started time.Time) *Report {
	rep := &Report{
		Schema:    "smtexplore-loadgen/v1",
		Started:   started,
		Seed:      sc.Seed,
		latencies: make(map[string][]time.Duration),
		byName:    make(map[string]*TenantReport),
	}
	for _, t := range sc.Tenants {
		tr := &TenantReport{Name: t.Name, RateHz: t.RateHz, ShedCauses: make(map[string]int)}
		rep.byName[t.Name] = tr
	}
	return rep
}

func (rep *Report) add(o jobOutcome) {
	tr := rep.byName[o.tenant]
	if tr == nil {
		return
	}
	tr.Submitted++
	switch o.state {
	case "done":
		tr.Done++
		tr.CellsDone += o.cells
		rep.latencies[o.tenant] = append(rep.latencies[o.tenant], o.latency)
	case "failed":
		tr.Failed++
	case "cancelled":
		tr.Cancelled++
	case "shed":
		tr.Shed++
		tr.ShedCauses[o.cause]++
	case "lost":
		tr.Lost++
	default:
		tr.Errors++
	}
}

// percentile is the nearest-rank percentile over a sorted slice.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

func ms(d time.Duration) float64 {
	return math.Round(float64(d)/float64(time.Millisecond)*1000) / 1000
}

func (rep *Report) finish(wall time.Duration) {
	rep.Wall = jsonDuration(wall)
	names := make([]string, 0, len(rep.byName))
	for n := range rep.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	minG, maxG := math.Inf(1), 0.0
	for _, n := range names {
		tr := rep.byName[n]
		lat := rep.latencies[n]
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		tr.P50Ms = ms(percentile(lat, 50))
		tr.P95Ms = ms(percentile(lat, 95))
		tr.P99Ms = ms(percentile(lat, 99))
		if wall > 0 {
			tr.GoodputJobsPerSec = math.Round(float64(tr.Done)/wall.Seconds()*1000) / 1000
		}
		if len(tr.ShedCauses) == 0 {
			tr.ShedCauses = nil
		}
		if tr.Done > 0 {
			if tr.GoodputJobsPerSec < minG {
				minG = tr.GoodputJobsPerSec
			}
			if tr.GoodputJobsPerSec > maxG {
				maxG = tr.GoodputJobsPerSec
			}
		}
		rep.Tenants = append(rep.Tenants, *tr)
	}
	if minG > 0 && !math.IsInf(minG, 1) && maxG > minG {
		rep.FairnessRatio = math.Round(maxG/minG*1000) / 1000
	} else if maxG > 0 {
		rep.FairnessRatio = 1
	}
}

// Tenant finds a tenant's row (nil if absent).
func (rep *Report) Tenant(name string) *TenantReport {
	for i := range rep.Tenants {
		if rep.Tenants[i].Name == name {
			return &rep.Tenants[i]
		}
	}
	return nil
}

// Summary renders the human-readable run table.
func (rep *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loadgen: %v wall, seed %d, fairness ratio %.2f\n", time.Duration(rep.Wall).Round(time.Millisecond), rep.Seed, rep.FairnessRatio)
	fmt.Fprintf(&b, "%-12s %9s %6s %6s %6s %6s %6s %9s %9s %9s %10s\n",
		"tenant", "submitted", "done", "shed", "fail", "lost", "err", "p50ms", "p95ms", "p99ms", "goodput/s")
	for _, tr := range rep.Tenants {
		fmt.Fprintf(&b, "%-12s %9d %6d %6d %6d %6d %6d %9.1f %9.1f %9.1f %10.2f\n",
			tr.Name, tr.Submitted, tr.Done, tr.Shed, tr.Failed, tr.Lost, tr.Errors,
			tr.P50Ms, tr.P95Ms, tr.P99Ms, tr.GoodputJobsPerSec)
		if len(tr.ShedCauses) > 0 {
			causes := make([]string, 0, len(tr.ShedCauses))
			for c, n := range tr.ShedCauses {
				causes = append(causes, fmt.Sprintf("%s=%d", c, n))
			}
			sort.Strings(causes)
			fmt.Fprintf(&b, "%-12s   shed causes: %s\n", "", strings.Join(causes, " "))
		}
	}
	if rep.Daemon != nil {
		state := rep.Daemon.BreakerState
		if state == "" {
			state = "none" // daemon runs without a store breaker
		}
		fmt.Fprintf(&b, "daemon: breaker %s · trips %d · io errors %d · faults injected %d\n",
			state, rep.Daemon.BreakerTrips, rep.Daemon.StoreIOErrors, rep.Daemon.FaultsInjected)
	}
	if rep.Promotions > 0 || rep.FailoverLatencySeconds > 0 {
		fmt.Fprintf(&b, "ha: promotions %d · jobs adopted %d · failover %.3fs\n",
			rep.Promotions, rep.JobsAdopted, rep.FailoverLatencySeconds)
	}
	return b.String()
}

// BenchJSON renders the report in the repo's smtexplore-bench/v1 shape
// (one benchmark entry per tenant), so BENCH_NNNN.json files from load
// runs sit beside the microbenchmark baselines.
func (rep *Report) BenchJSON(commit string) ([]byte, error) {
	type benchEntry struct {
		Name       string             `json:"name"`
		Runs       int                `json:"runs"`
		Iterations int                `json:"iterations"`
		TimeOpNs   float64            `json:"time_op_ns"`
		BytesOp    int                `json:"bytes_op"`
		AllocsOp   int                `json:"allocs_op"`
		Metrics    map[string]float64 `json:"metrics"`
	}
	doc := struct {
		Schema     string       `json:"schema"`
		Commit     string       `json:"commit"`
		Date       time.Time    `json:"date"`
		Go         string       `json:"go"`
		Benchmarks []benchEntry `json:"benchmarks"`
	}{
		Schema: "smtexplore-bench/v1",
		Commit: commit,
		Date:   rep.Started.UTC().Truncate(time.Second),
		Go:     runtime.Version(),
	}
	for _, tr := range rep.Tenants {
		sheds := 0.0
		for _, n := range tr.ShedCauses {
			sheds += float64(n)
		}
		doc.Benchmarks = append(doc.Benchmarks, benchEntry{
			Name:       "LoadGen/tenant=" + tr.Name,
			Runs:       1,
			Iterations: tr.Submitted,
			TimeOpNs:   tr.P50Ms * 1e6,
			Metrics: map[string]float64{
				"rate_hz":        tr.RateHz,
				"done":           float64(tr.Done),
				"failed":         float64(tr.Failed),
				"shed":           float64(tr.Shed),
				"lost":           float64(tr.Lost),
				"p50_ms":         tr.P50Ms,
				"p95_ms":         tr.P95Ms,
				"p99_ms":         tr.P99Ms,
				"goodput_jobs_s": tr.GoodputJobsPerSec,
				"cells_done":     float64(tr.CellsDone),
				"fairness_ratio": rep.FairnessRatio,
			},
		})
	}
	// A run that survived a coordinator failover records the measured
	// failover latency as its own benchmark entry, so BENCH files pin
	// the control plane's recovery time alongside the load numbers.
	if rep.FailoverLatencySeconds > 0 {
		doc.Benchmarks = append(doc.Benchmarks, benchEntry{
			Name:       "HAFailover",
			Runs:       1,
			Iterations: 1,
			TimeOpNs:   rep.FailoverLatencySeconds * 1e9,
			Metrics: map[string]float64{
				"failover_latency_s": rep.FailoverLatencySeconds,
				"promotions":         float64(rep.Promotions),
				"jobs_adopted":       float64(rep.JobsAdopted),
			},
		})
	}
	return json.MarshalIndent(doc, "", "  ")
}

// Assertion is one SLO check against a report, optionally relative to a
// baseline report (solo runs). Parse with ParseAssertion.
type Assertion struct {
	Kind   string // "done-min", "goodput-frac", "p99-factor", "shed-cause-min", "no-failed"
	Tenant string
	Cause  string  // shed-cause-min
	Value  float64 // threshold
}

// ParseAssertion parses the CLI form:
//
//	done-min:TENANT:N          — at least N jobs done
//	goodput-frac:TENANT:F      — goodput >= F × the baseline's goodput
//	p99-factor:TENANT:F        — p99 <= F × the baseline's p99
//	shed-cause-min:TENANT:CAUSE:N — at least N sheds with CAUSE
//	no-failed:TENANT           — zero failed jobs
func ParseAssertion(s string) (Assertion, error) {
	parts := strings.Split(s, ":")
	bad := func() (Assertion, error) {
		return Assertion{}, fmt.Errorf("loadgen: bad assertion %q", s)
	}
	switch parts[0] {
	case "done-min", "goodput-frac", "p99-factor":
		if len(parts) != 3 {
			return bad()
		}
		v, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || v < 0 {
			return bad()
		}
		return Assertion{Kind: parts[0], Tenant: parts[1], Value: v}, nil
	case "shed-cause-min":
		if len(parts) != 4 {
			return bad()
		}
		v, err := strconv.ParseFloat(parts[3], 64)
		if err != nil || v < 0 {
			return bad()
		}
		return Assertion{Kind: parts[0], Tenant: parts[1], Cause: parts[2], Value: v}, nil
	case "no-failed":
		if len(parts) != 2 {
			return bad()
		}
		return Assertion{Kind: parts[0], Tenant: parts[1]}, nil
	}
	return bad()
}

// Check evaluates assertions; baseline may be nil unless a relative
// assertion needs it. Returns one error per violated assertion.
func (rep *Report) Check(asserts []Assertion, baseline *Report) []error {
	var errs []error
	fail := func(format string, v ...any) {
		errs = append(errs, fmt.Errorf(format, v...))
	}
	for _, a := range asserts {
		tr := rep.Tenant(a.Tenant)
		if tr == nil {
			fail("assertion %s: tenant %q not in report", a.Kind, a.Tenant)
			continue
		}
		switch a.Kind {
		case "done-min":
			if float64(tr.Done) < a.Value {
				fail("tenant %s: %d jobs done, want >= %g", a.Tenant, tr.Done, a.Value)
			}
		case "no-failed":
			if tr.Failed > 0 {
				fail("tenant %s: %d jobs failed, want 0", a.Tenant, tr.Failed)
			}
		case "shed-cause-min":
			if got := float64(tr.ShedCauses[a.Cause]); got < a.Value {
				fail("tenant %s: %g sheds with cause %q, want >= %g (causes: %v)", a.Tenant, got, a.Cause, a.Value, tr.ShedCauses)
			}
		case "goodput-frac", "p99-factor":
			if baseline == nil {
				fail("assertion %s needs -baseline", a.Kind)
				continue
			}
			base := baseline.Tenant(a.Tenant)
			if base == nil {
				fail("assertion %s: tenant %q not in baseline", a.Kind, a.Tenant)
				continue
			}
			if a.Kind == "goodput-frac" {
				want := a.Value * base.GoodputJobsPerSec
				if tr.GoodputJobsPerSec < want {
					fail("tenant %s: goodput %.3f/s under contention, want >= %.3f/s (%g x solo %.3f/s)",
						a.Tenant, tr.GoodputJobsPerSec, want, a.Value, base.GoodputJobsPerSec)
				}
			} else {
				want := a.Value * base.P99Ms
				if base.P99Ms > 0 && tr.P99Ms > want {
					fail("tenant %s: p99 %.1fms under contention, want <= %.1fms (%g x solo %.1fms)",
						a.Tenant, tr.P99Ms, want, a.Value, base.P99Ms)
				}
			}
		}
	}
	return errs
}

// LoadReport reads a report JSON written by the loadgen CLI.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("loadgen: report %s: %w", path, err)
	}
	return &rep, nil
}
