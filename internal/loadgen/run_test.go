package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestArrivalsDeterministicAndIndependent(t *testing.T) {
	tl := &TenantLoad{Name: "a", RateHz: 50}
	s1 := arrivals(tl, tenantSeed(7, "a"), 10*time.Second)
	s2 := arrivals(tl, tenantSeed(7, "a"), 10*time.Second)
	if len(s1) == 0 {
		t.Fatal("no arrivals generated")
	}
	if len(s1) != len(s2) {
		t.Fatalf("same seed, different counts: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("same seed diverges at %d: %v vs %v", i, s1[i], s2[i])
		}
	}
	// A different tenant name derives a different stream from the same
	// scenario seed.
	s3 := arrivals(tl, tenantSeed(7, "b"), 10*time.Second)
	same := len(s3) == len(s1)
	if same {
		for i := range s1 {
			if s1[i] != s3[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different tenant names produced identical schedules")
	}
	// ~50/s over 10s should land near 500 arrivals; 10x slack catches a
	// units bug (ms vs s) without flaking.
	if len(s1) < 50 || len(s1) > 5000 {
		t.Fatalf("50Hz x 10s produced %d arrivals", len(s1))
	}
	for i := 1; i < len(s1); i++ {
		if s1[i] < s1[i-1] {
			t.Fatalf("arrivals not monotone at %d", i)
		}
	}
}

func TestPercentileNearestRank(t *testing.T) {
	if got := percentile(nil, 99); got != 0 {
		t.Fatalf("empty percentile = %v, want 0", got)
	}
	one := []time.Duration{42}
	for _, p := range []float64{1, 50, 99} {
		if got := percentile(one, p); got != 42 {
			t.Fatalf("p%.0f of one sample = %v, want 42", p, got)
		}
	}
	sorted := make([]time.Duration, 100)
	for i := range sorted {
		sorted[i] = time.Duration(i + 1)
	}
	for _, tc := range []struct {
		p    float64
		want time.Duration
	}{{50, 50}, {95, 95}, {99, 99}, {100, 100}} {
		if got := percentile(sorted, tc.p); got != tc.want {
			t.Fatalf("p%g = %v, want %v", tc.p, got, tc.want)
		}
	}
}

// stubDaemon is an httptest job API: instant completions for most
// tenants, 429 with a quota cause for shedTenant.
type stubDaemon struct {
	mu         sync.Mutex
	seq        int
	states     map[string]string
	shedTenant string
	submits    map[string]int // per-tenant accepted submissions
}

func newStubDaemon(shedTenant string) *stubDaemon {
	return &stubDaemon{
		states:     make(map[string]string),
		shedTenant: shedTenant,
		submits:    make(map[string]int),
	}
}

func (d *stubDaemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		tn := r.Header.Get("X-Tenant")
		d.mu.Lock()
		defer d.mu.Unlock()
		if tn == d.shedTenant {
			w.Header().Set("X-Quota-Cause", "queued-jobs")
			w.Header().Set("Retry-After", "1")
			http.Error(w, "tenant over quota", http.StatusTooManyRequests)
			return
		}
		var req submitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.Cells) == 0 {
			http.Error(w, "bad request", http.StatusBadRequest)
			return
		}
		d.seq++
		id := fmt.Sprintf("j%04d", d.seq)
		d.states[id] = "done"
		d.submits[tn]++
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"id": id, "state": "queued"})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		d.mu.Lock()
		st, ok := d.states[r.PathValue("id")]
		d.mu.Unlock()
		if !ok {
			http.NotFound(w, r)
			return
		}
		json.NewEncoder(w).Encode(map[string]string{"id": r.PathValue("id"), "state": st})
	})
	return mux
}

func TestRunnerAgainstStubDaemon(t *testing.T) {
	d := newStubDaemon("heavy")
	srv := httptest.NewServer(d.handler())
	defer srv.Close()

	var killed []string
	var killMu sync.Mutex
	sc := Scenario{
		Seed:     42,
		Duration: dur(600 * time.Millisecond),
		Settle:   dur(2 * time.Second),
		Tenants: []TenantLoad{
			{Name: "light", RateHz: 40, CellsPerJob: 2},
			{Name: "heavy", RateHz: 40},
		},
		Phases: []Phase{{At: dur(100 * time.Millisecond), Kind: PhaseKill, Pidfile: "fake.pid"}},
	}
	r := &Runner{
		Target:    strings.TrimPrefix(srv.URL, "http://"),
		PollEvery: 5 * time.Millisecond,
		Kill: func(pidfile string) error {
			killMu.Lock()
			killed = append(killed, pidfile)
			killMu.Unlock()
			return nil
		},
	}
	rep, err := r.Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}

	light := rep.Tenant("light")
	if light == nil || light.Submitted == 0 {
		t.Fatalf("light tenant missing or idle: %+v", light)
	}
	if light.Done != light.Submitted {
		t.Fatalf("light: %d done of %d submitted (shed=%d err=%d lost=%d)",
			light.Done, light.Submitted, light.Shed, light.Errors, light.Lost)
	}
	if light.CellsDone != 2*light.Done {
		t.Fatalf("light cells done = %d, want %d (2 per job)", light.CellsDone, 2*light.Done)
	}
	if light.GoodputJobsPerSec <= 0 || light.P50Ms <= 0 {
		t.Fatalf("light goodput/p50 not measured: %+v", light)
	}

	heavy := rep.Tenant("heavy")
	if heavy == nil || heavy.Submitted == 0 {
		t.Fatalf("heavy tenant missing or idle: %+v", heavy)
	}
	if heavy.Shed != heavy.Submitted {
		t.Fatalf("heavy: %d shed of %d submitted", heavy.Shed, heavy.Submitted)
	}
	if heavy.ShedCauses["queued-jobs"] != heavy.Shed {
		t.Fatalf("heavy shed causes = %v, want all queued-jobs", heavy.ShedCauses)
	}

	// The daemon saw the light tenant's X-Tenant header on every accept.
	d.mu.Lock()
	accepted := d.submits["light"]
	d.mu.Unlock()
	if accepted != light.Submitted {
		t.Fatalf("daemon accepted %d light jobs, report says %d", accepted, light.Submitted)
	}

	killMu.Lock()
	defer killMu.Unlock()
	if len(killed) != 1 || killed[0] != "fake.pid" {
		t.Fatalf("kill phase ran %v, want [fake.pid]", killed)
	}
}

func TestRunnerContextCancelCountsLost(t *testing.T) {
	// A daemon that accepts but never finishes: cancelling the run must
	// return promptly with the in-flight jobs counted as lost.
	var mu sync.Mutex
	seq := 0
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seq++
		id := fmt.Sprintf("j%04d", seq)
		mu.Unlock()
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"id": id, "state": "queued"})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]string{"state": "running"})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	sc := Scenario{
		Seed:     1,
		Duration: dur(10 * time.Second),
		Settle:   dur(time.Second),
		Tenants:  []TenantLoad{{Name: "stuck", RateHz: 50}},
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(300 * time.Millisecond)
		cancel()
	}()
	r := &Runner{Target: strings.TrimPrefix(srv.URL, "http://"), PollEvery: 10 * time.Millisecond}
	done := make(chan *Report, 1)
	go func() {
		rep, err := r.Run(ctx, sc)
		if err != nil {
			t.Error(err)
		}
		done <- rep
	}()
	select {
	case rep := <-done:
		tr := rep.Tenant("stuck")
		if tr == nil || tr.Submitted == 0 {
			t.Fatalf("no submissions before cancel: %+v", tr)
		}
		// A submission caught mid-POST by the cancel reports "error";
		// everything else in flight must land as "lost", never "done".
		if tr.Done != 0 || tr.Lost == 0 || tr.Lost+tr.Errors != tr.Submitted {
			t.Fatalf("cancelled run: %d done, %d lost, %d errors of %d submitted",
				tr.Done, tr.Lost, tr.Errors, tr.Submitted)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
}

func TestKillRejectsBadPidfiles(t *testing.T) {
	r := &Runner{}
	if err := r.kill("/nonexistent/worker.pid"); err == nil {
		t.Fatal("missing pidfile: want error")
	}
	dir := t.TempDir()
	for name, content := range map[string]string{
		"junk.pid": "not-a-pid\n",
		"init.pid": "1\n", // never signal init
		"zero.pid": "0\n", // kill(0, ...) would signal our process group
	} {
		path := dir + "/" + name
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := r.kill(path); err == nil {
			t.Fatalf("%s (%q): want error", name, content)
		}
	}
}

func TestCheckAssertions(t *testing.T) {
	rep := &Report{Tenants: []TenantReport{
		{Name: "light", Done: 40, Failed: 0, GoodputJobsPerSec: 4.0, P99Ms: 100},
		{Name: "heavy", Done: 10, Failed: 2, Shed: 30, ShedCauses: map[string]int{"queued-jobs": 25, "cycle-budget": 5}},
	}}
	solo := &Report{Tenants: []TenantReport{
		{Name: "light", Done: 50, GoodputJobsPerSec: 5.0, P99Ms: 60},
	}}

	pass := []string{
		"done-min:light:40",
		"no-failed:light",
		"shed-cause-min:heavy:queued-jobs:25",
		"goodput-frac:light:0.8", // 4.0 >= 0.8*5.0
		"p99-factor:light:2",     // 100 <= 2*60
	}
	var asserts []Assertion
	for _, s := range pass {
		a, err := ParseAssertion(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		asserts = append(asserts, a)
	}
	if errs := rep.Check(asserts, solo); len(errs) != 0 {
		t.Fatalf("passing assertions failed: %v", errs)
	}

	failCases := []string{
		"done-min:light:41",
		"no-failed:heavy",
		"shed-cause-min:heavy:cycle-budget:6",
		"goodput-frac:light:0.9", // 4.0 < 0.9*5.0
		"p99-factor:light:1.5",   // 100 > 1.5*60
		"done-min:ghost:1",       // unknown tenant
	}
	for _, s := range failCases {
		a, err := ParseAssertion(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if errs := rep.Check([]Assertion{a}, solo); len(errs) != 1 {
			t.Fatalf("%s: got %v, want exactly one failure", s, errs)
		}
	}

	// Relative assertions without a baseline are a configuration error,
	// not a silent pass.
	a, _ := ParseAssertion("goodput-frac:light:0.8")
	if errs := rep.Check([]Assertion{a}, nil); len(errs) != 1 || !strings.Contains(errs[0].Error(), "baseline") {
		t.Fatalf("baseline-less relative assertion: %v", errs)
	}
}

func TestParseAssertionRejectsMalformed(t *testing.T) {
	for _, s := range []string{
		"", "done-min", "done-min:t", "done-min:t:x", "done-min:t:-1",
		"goodput-frac:t:nope", "shed-cause-min:t:c", "no-failed", "latency-max:t:5",
	} {
		if _, err := ParseAssertion(s); err == nil {
			t.Fatalf("%q: want parse error", s)
		}
	}
}

func TestReportRoundTrip(t *testing.T) {
	rep := newReport(Scenario{
		Seed:    9,
		Tenants: []TenantLoad{{Name: "a", RateHz: 2}, {Name: "b", RateHz: 4}},
	}, time.Now())
	rep.add(jobOutcome{tenant: "a", state: "done", latency: 20 * time.Millisecond, cells: 1})
	rep.add(jobOutcome{tenant: "a", state: "shed", cause: "queued-jobs"})
	rep.add(jobOutcome{tenant: "b", state: "done", latency: 40 * time.Millisecond, cells: 3})
	rep.add(jobOutcome{tenant: "b", state: "failed"})
	rep.finish(2 * time.Second)

	if rep.FairnessRatio != 1 {
		t.Fatalf("equal-done fairness = %v, want 1", rep.FairnessRatio)
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if got := back.Tenant("b"); got == nil || got.CellsDone != 3 || got.Failed != 1 {
		t.Fatalf("round-tripped b = %+v", got)
	}
	if time.Duration(back.Wall) != 2*time.Second {
		t.Fatalf("round-tripped wall = %v", time.Duration(back.Wall))
	}
	// The bench shape carries the same numbers under the repo schema.
	bb, err := rep.BenchJSON("deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	var bench struct {
		Schema     string `json:"schema"`
		Benchmarks []struct {
			Name    string             `json:"name"`
			Metrics map[string]float64 `json:"metrics"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(bb, &bench); err != nil {
		t.Fatal(err)
	}
	if bench.Schema != "smtexplore-bench/v1" || len(bench.Benchmarks) != 2 {
		t.Fatalf("bench doc = %s", bb)
	}
	if bench.Benchmarks[0].Name != "LoadGen/tenant=a" || bench.Benchmarks[0].Metrics["done"] != 1 {
		t.Fatalf("bench entry 0 = %+v", bench.Benchmarks[0])
	}
}
