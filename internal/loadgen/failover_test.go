package loadgen

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestTargetSetRotatesAndFollowsLeader(t *testing.T) {
	ts := newTargetSet("a:1, b:2")
	if got := ts.pick(); got != "a:1" {
		t.Fatalf("initial pick %q", got)
	}
	ts.observe(nil, context.DeadlineExceeded)
	if got := ts.pick(); got != "b:2" {
		t.Fatalf("after transport error pick %q", got)
	}
	resp := &http.Response{
		StatusCode: http.StatusServiceUnavailable,
		Header:     http.Header{"X-Cluster-Leader": []string{"c:3"}},
	}
	ts.observe(resp, nil)
	if got := ts.pick(); got != "c:3" {
		t.Fatalf("leader redirect pick %q, want c:3 (learned)", got)
	}
	ts.observe(&http.Response{StatusCode: http.StatusAccepted, Header: http.Header{}}, nil)
	if got := ts.pick(); got != "c:3" {
		t.Fatalf("success must not move the pick, got %q", got)
	}
}

// A run pointed at a dead address plus a standby must deliver every
// job through the leader the standby advertises: the chaos path where
// loadgen rides out a coordinator failover with zero failed jobs.
func TestRunnerFailsOverMidRun(t *testing.T) {
	d := newStubDaemon("")
	leaderSrv := httptest.NewServer(d.handler())
	defer leaderSrv.Close()
	leaderAddr := strings.TrimPrefix(leaderSrv.URL, "http://")

	standby := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Cluster-Leader", leaderAddr)
		http.Error(w, `{"error":"not the leader"}`, http.StatusServiceUnavailable)
	}))
	defer standby.Close()

	dead := httptest.NewServer(http.NotFoundHandler())
	deadAddr := strings.TrimPrefix(dead.URL, "http://")
	dead.Close()

	sc := Scenario{
		Seed:     7,
		Duration: dur(300 * time.Millisecond),
		Settle:   dur(2 * time.Second),
		Tenants:  []TenantLoad{{Name: "light", RateHz: 30}},
	}
	r := &Runner{
		Target:    deadAddr + "," + strings.TrimPrefix(standby.URL, "http://"),
		PollEvery: 5 * time.Millisecond,
	}
	rep, err := r.Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	light := rep.Tenant("light")
	if light == nil || light.Submitted == 0 {
		t.Fatalf("light tenant missing or idle: %+v", light)
	}
	if light.Done != light.Submitted || light.Errors > 0 || light.Failed > 0 {
		t.Fatalf("failover leaked failures: %+v", light)
	}
}

// The faults phase arms the plan through POST /v1/faults at its
// scheduled offset; a 403 (daemon without -allow-fault-api) surfaces
// as a logged phase error, never a crashed run.
func TestFaultsPhaseArmsPlan(t *testing.T) {
	plan := filepath.Join(t.TempDir(), "plan.json")
	planJSON := `{"seed":1,"rules":[{"point":"store.write","action":"error","error":"injected","prob":1}]}`
	if err := os.WriteFile(plan, []byte(planJSON), 0o644); err != nil {
		t.Fatal(err)
	}

	var armed atomic.Int64
	d := newStubDaemon("")
	mux := http.NewServeMux()
	mux.Handle("/", d.handler())
	mux.HandleFunc("POST /v1/faults", func(w http.ResponseWriter, r *http.Request) {
		var got map[string]any
		if err := json.NewDecoder(r.Body).Decode(&got); err != nil || got["rules"] == nil {
			http.Error(w, "bad plan body", http.StatusBadRequest)
			return
		}
		armed.Add(1)
		json.NewEncoder(w).Encode(map[string]any{"armed": true, "rules": 1})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	sc := Scenario{
		Seed:     3,
		Duration: dur(200 * time.Millisecond),
		Settle:   dur(2 * time.Second),
		Tenants:  []TenantLoad{{Name: "light", RateHz: 20}},
		Phases:   []Phase{{At: dur(50 * time.Millisecond), Kind: PhaseFaults, Plan: plan}},
	}
	r := &Runner{Target: strings.TrimPrefix(srv.URL, "http://"), PollEvery: 5 * time.Millisecond}
	if _, err := r.Run(context.Background(), sc); err != nil {
		t.Fatal(err)
	}
	if armed.Load() != 1 {
		t.Fatalf("fault plan armed %d times, want 1", armed.Load())
	}
}

// A faults phase against a daemon that refuses the API (no
// -allow-fault-api) must not take the run down.
func TestFaultsPhaseRefusalIsNonFatal(t *testing.T) {
	plan := filepath.Join(t.TempDir(), "plan.json")
	planJSON := `{"seed":1,"rules":[{"point":"store.write","action":"error","error":"injected","prob":1}]}`
	if err := os.WriteFile(plan, []byte(planJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	d := newStubDaemon("")
	mux := http.NewServeMux()
	mux.Handle("/", d.handler())
	mux.HandleFunc("POST /v1/faults", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"fault API disabled"}`, http.StatusForbidden)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	sc := Scenario{
		Seed:     3,
		Duration: dur(150 * time.Millisecond),
		Settle:   dur(2 * time.Second),
		Tenants:  []TenantLoad{{Name: "light", RateHz: 20}},
		Phases:   []Phase{{At: dur(30 * time.Millisecond), Kind: PhaseFaults, Plan: plan}},
	}
	r := &Runner{Target: strings.TrimPrefix(srv.URL, "http://"), PollEvery: 5 * time.Millisecond}
	rep, err := r.Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if light := rep.Tenant("light"); light == nil || light.Done != light.Submitted {
		t.Fatalf("refused fault phase damaged the run: %+v", light)
	}
}
