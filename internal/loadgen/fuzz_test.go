package loadgen

import (
	"encoding/json"
	"testing"
	"time"
)

// FuzzParseScenario hunts for scenario inputs that crash the parser or
// slip past its limits: a successful parse must re-validate, survive a
// canonical marshal/re-parse round trip, keep every accessor inside the
// package bounds, and yield monotone arrival schedules. The limits are
// what keep a hostile or mistyped scenario from melting the host, so
// "parsed but out of bounds" is a finding, not a nit.
func FuzzParseScenario(f *testing.F) {
	f.Add([]byte(`{"seed":7,"duration":"5s","tenants":[{"name":"light","rate_hz":2}]}`))
	f.Add([]byte(`{"duration":"30s","settle":"10s","tenants":[
		{"name":"light","rate_hz":4,"cells_per_job":2,"priority":5,"deadline":"10s"},
		{"name":"heavy","rate_hz":40,"kind":"fmul","window_base":20000,"window_step":0}],
		"phases":[{"at":"15s","kind":"kill","pidfile":"w0.pid"}]}`))
	f.Add([]byte(`{"duration":"1h","tenants":[{"name":"max","rate_hz":1000,"cells_per_job":64}]}`))
	f.Add([]byte(`{"duration":"-1s","tenants":[{"name":"a","rate_hz":1}]}`))
	f.Add([]byte(`{"duration":"1s","tenants":[{"name":"no spaces","rate_hz":1}]}`))
	f.Add([]byte(`{"duration":"1s","tenants":[{"name":"a","rate_hs":1}]}`))
	f.Add([]byte(`{"duration":"1s","tenants":[{"name":"a","rate_hz":1}],"phases":[{"at":"0s","kind":"reboot"}]}`))
	f.Add([]byte(`{"duration":"1s"`))
	f.Add([]byte(`null`))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Validate probes fault_plan paths on disk; a fuzzer-invented
		// path could name a device file, so that field stays out of the
		// fuzzed surface.
		var probe struct {
			FaultPlan string `json:"fault_plan"`
		}
		if json.Unmarshal(data, &probe) == nil && probe.FaultPlan != "" {
			t.Skip("fault plans hit the filesystem")
		}
		sc, err := ParseScenario(data)
		if err != nil {
			return
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("parsed scenario fails Validate: %v\ninput: %q", err, data)
		}
		if d := time.Duration(sc.Duration); d <= 0 || d > MaxDuration {
			t.Fatalf("validated duration %v outside (0, %v]", d, MaxDuration)
		}
		if len(sc.Tenants) == 0 || len(sc.Tenants) > MaxTenants {
			t.Fatalf("validated tenant count %d outside [1, %d]", len(sc.Tenants), MaxTenants)
		}
		for i := range sc.Tenants {
			tl := &sc.Tenants[i]
			if c := tl.cells(); c < 1 || c > MaxCellsPerJob {
				t.Fatalf("tenant %q cells() = %d outside [1, %d]", tl.Name, c, MaxCellsPerJob)
			}
			if tl.RateHz <= 0 || tl.RateHz > MaxRateHz {
				t.Fatalf("tenant %q rate %v outside (0, %d]", tl.Name, tl.RateHz, MaxRateHz)
			}
			if tl.kind() == "" || tl.windowBase() == 0 {
				t.Fatalf("tenant %q empty kind or zero window base after defaults", tl.Name)
			}
			// A short schedule is enough to catch a non-monotone or
			// panicking generator without building 1h x 1kHz slices.
			sched := arrivals(tl, tenantSeed(sc.Seed, tl.Name), 50*time.Millisecond)
			for j := 1; j < len(sched); j++ {
				if sched[j] < sched[j-1] {
					t.Fatalf("tenant %q arrivals not monotone", tl.Name)
				}
			}
		}
		canon, err := json.Marshal(sc)
		if err != nil {
			t.Fatalf("marshal of parsed scenario: %v", err)
		}
		if _, err := ParseScenario(canon); err != nil {
			t.Fatalf("canonical form does not re-parse: %v\ncanon: %s", err, canon)
		}
	})
}
