// Package loadgen is the open-loop load/chaos harness: it drives
// synthetic tenants against an smtd (or a cluster coordinator) with
// Poisson arrivals, optionally killing workers mid-run, and reports
// per-tenant latency/goodput/shed statistics. Open-loop means arrivals
// are scheduled by the clock, not by completions — a daemon that slows
// down faces a growing backlog exactly like production traffic, which
// is the property that makes the SLO numbers honest (a closed loop
// self-throttles and flatters the system under test).
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"smtexplore/internal/faultinject"
	"smtexplore/internal/tenant"
)

// Limits keeping a fuzzed or mistyped scenario from melting the host.
const (
	MaxTenants     = 64
	MaxRateHz      = 1000
	MaxCellsPerJob = 64
	MaxPhases      = 32
	MaxDuration    = time.Hour
)

// TenantLoad is one synthetic tenant's traffic shape.
type TenantLoad struct {
	// Name is the tenant identity submitted as X-Tenant.
	Name string `json:"name"`
	// RateHz is the Poisson arrival rate in jobs per second.
	RateHz float64 `json:"rate_hz"`
	// CellsPerJob sizes each batch (0 → 1).
	CellsPerJob int `json:"cells_per_job,omitempty"`
	// Priority rides each submission (higher runs first).
	Priority int `json:"priority,omitempty"`
	// Deadline, when set, bounds each job end-to-end.
	Deadline tenant.Duration `json:"deadline,omitempty"`
	// Kind is the stream kind per cell (empty → "fadd").
	Kind string `json:"kind,omitempty"`
	// WindowBase/WindowStep generate each cell's measurement window:
	// base + i*step for a per-tenant counter i, so every cell is a
	// distinct simulation (no cross-job cache serves) unless step is 0,
	// which deliberately makes all cells identical (cache-hot load).
	// Base 0 → 10000, step unset → 1.
	WindowBase uint64  `json:"window_base,omitempty"`
	WindowStep *uint64 `json:"window_step,omitempty"`
}

func (t *TenantLoad) cells() int {
	if t.CellsPerJob <= 0 {
		return 1
	}
	return t.CellsPerJob
}

func (t *TenantLoad) kind() string {
	if t.Kind == "" {
		return "fadd"
	}
	return t.Kind
}

func (t *TenantLoad) windowBase() uint64 {
	if t.WindowBase == 0 {
		return 10000
	}
	return t.WindowBase
}

func (t *TenantLoad) windowStep() uint64 {
	if t.WindowStep == nil {
		return 1
	}
	return *t.WindowStep
}

// Phase kinds.
const (
	// PhaseKill SIGKILLs the process whose PID is in Pidfile — the
	// chaos half of the harness: a worker (or coordinator) dying
	// mid-run with jobs in flight.
	PhaseKill = "kill"
	// PhaseFaults arms the fault-injection plan in Plan inside the
	// target daemon via POST /v1/faults — which the daemon refuses
	// unless it runs with -allow-fault-api.
	PhaseFaults = "faults"
)

// Phase is one scheduled chaos action.
type Phase struct {
	// At is the offset from run start.
	At tenant.Duration `json:"at"`
	// Kind selects the action ("kill" or "faults").
	Kind string `json:"kind"`
	// Pidfile locates the victim for "kill".
	Pidfile string `json:"pidfile,omitempty"`
	// Plan names the faultinject plan file for "faults". It is
	// validated before the run starts; arming happens at the phase
	// offset, so a run can start healthy and degrade on schedule.
	Plan string `json:"plan,omitempty"`
}

// Scenario is a complete load/chaos run specification.
type Scenario struct {
	// Seed makes every arrival sequence reproducible. Each tenant
	// derives its own stream from Seed + FNV(name), so adding a tenant
	// does not perturb the others' arrivals.
	Seed uint64 `json:"seed"`
	// Duration is how long arrivals are generated.
	Duration tenant.Duration `json:"duration"`
	// Settle is the post-arrival grace for in-flight jobs to finish
	// (unset → 30s; jobs still running after it count as failed).
	Settle tenant.Duration `json:"settle,omitempty"`
	// Tenants are the synthetic workloads, driven concurrently.
	Tenants []TenantLoad `json:"tenants"`
	// Phases are chaos actions on the run's timeline.
	Phases []Phase `json:"phases,omitempty"`
	// FaultPlan, when set, names a faultinject plan file that must
	// validate before the run starts. Arming happens in the target
	// daemon (smtd -fault-plan); validating here catches a broken plan
	// before a long run, not after.
	FaultPlan string `json:"fault_plan,omitempty"`
}

func (s *Scenario) settle() time.Duration {
	if d := time.Duration(s.Settle); d > 0 {
		return d
	}
	return 30 * time.Second
}

// ParseScenario decodes and validates a scenario. Unknown fields are
// rejected — a typoed "rate_hz" silently generating zero load is the
// worst possible failure mode for a harness whose job is proving SLOs.
func ParseScenario(data []byte) (Scenario, error) {
	var sc Scenario
	if err := strictUnmarshal(data, &sc); err != nil {
		return Scenario{}, fmt.Errorf("loadgen: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return Scenario{}, err
	}
	return sc, nil
}

func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// Validate checks a scenario against the package limits.
func (s *Scenario) Validate() error {
	if d := time.Duration(s.Duration); d <= 0 || d > MaxDuration {
		return fmt.Errorf("loadgen: duration %v outside (0, %v]", d, MaxDuration)
	}
	if len(s.Tenants) == 0 {
		return fmt.Errorf("loadgen: no tenants")
	}
	if len(s.Tenants) > MaxTenants {
		return fmt.Errorf("loadgen: %d tenants exceeds the %d limit", len(s.Tenants), MaxTenants)
	}
	seen := make(map[string]bool)
	for i, t := range s.Tenants {
		if !tenant.ValidName(t.Name) {
			return fmt.Errorf("loadgen: tenant %d: invalid name %q", i, t.Name)
		}
		if seen[t.Name] {
			return fmt.Errorf("loadgen: duplicate tenant %q", t.Name)
		}
		seen[t.Name] = true
		if t.RateHz <= 0 || t.RateHz > MaxRateHz {
			return fmt.Errorf("loadgen: tenant %q: rate_hz %v outside (0, %d]", t.Name, t.RateHz, MaxRateHz)
		}
		if t.CellsPerJob < 0 || t.CellsPerJob > MaxCellsPerJob {
			return fmt.Errorf("loadgen: tenant %q: cells_per_job %d outside [0, %d]", t.Name, t.CellsPerJob, MaxCellsPerJob)
		}
		if d := time.Duration(t.Deadline); d < 0 {
			return fmt.Errorf("loadgen: tenant %q: negative deadline", t.Name)
		}
	}
	if len(s.Phases) > MaxPhases {
		return fmt.Errorf("loadgen: %d phases exceeds the %d limit", len(s.Phases), MaxPhases)
	}
	for i, p := range s.Phases {
		at := time.Duration(p.At)
		if at < 0 || at > time.Duration(s.Duration) {
			return fmt.Errorf("loadgen: phase %d: at %v outside the run's [0, %v]", i, at, time.Duration(s.Duration))
		}
		switch p.Kind {
		case PhaseKill:
			if p.Pidfile == "" {
				return fmt.Errorf("loadgen: phase %d: kill needs a pidfile", i)
			}
		case PhaseFaults:
			if p.Plan == "" {
				return fmt.Errorf("loadgen: phase %d: faults needs a plan file", i)
			}
			if err := validatePlanFile(p.Plan); err != nil {
				return fmt.Errorf("loadgen: phase %d: %w", i, err)
			}
		default:
			return fmt.Errorf("loadgen: phase %d: unknown kind %q", i, p.Kind)
		}
	}
	if s.FaultPlan != "" {
		if err := validatePlanFile(s.FaultPlan); err != nil {
			return fmt.Errorf("loadgen: fault plan: %w", err)
		}
	}
	return nil
}

// validatePlanFile loads and compiles a faultinject plan without
// arming it, so a broken plan fails the run before any load is sent.
func validatePlanFile(path string) error {
	plan, err := faultinject.LoadPlan(path)
	if err != nil {
		return err
	}
	_, err = faultinject.New(plan)
	return err
}
