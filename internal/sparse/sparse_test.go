package sparse

import (
	"testing"
	"testing/quick"
)

func TestRandomCSRValid(t *testing.T) {
	c := MustRandomCSR(500, 12, 42)
	if err := c.Validate(); err != nil {
		t.Fatalf("generated CSR invalid: %v", err)
	}
	if c.NNZ() != 500*12 {
		t.Fatalf("nnz = %d, want %d", c.NNZ(), 500*12)
	}
	for i := 0; i < c.N; i++ {
		if len(c.Row(i)) != 12 {
			t.Fatalf("row %d has %d nonzeros, want 12", i, len(c.Row(i)))
		}
	}
}

func TestRandomCSRDeterministic(t *testing.T) {
	a := MustRandomCSR(200, 8, 7)
	b := MustRandomCSR(200, 8, 7)
	if a.NNZ() != b.NNZ() {
		t.Fatal("same seed, different nnz")
	}
	for k := range a.Col {
		if a.Col[k] != b.Col[k] {
			t.Fatalf("same seed, different pattern at %d", k)
		}
	}
	c := MustRandomCSR(200, 8, 8)
	same := true
	for k := range a.Col {
		if a.Col[k] != c.Col[k] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical patterns")
	}
}

func TestRandomCSRErrors(t *testing.T) {
	if _, err := NewRandomCSR(0, 4, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewRandomCSR(10, 0, 1); err == nil {
		t.Error("nnzPerRow=0 accepted")
	}
	if _, err := NewRandomCSR(10, 11, 1); err == nil {
		t.Error("nnzPerRow>n accepted")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	c := MustRandomCSR(50, 5, 3)
	c.Col[0] = 99 // out of range
	if err := c.Validate(); err == nil {
		t.Error("out-of-range column accepted")
	}
	c = MustRandomCSR(50, 5, 3)
	c.RowPtr[10] = c.RowPtr[11] + 1
	if err := c.Validate(); err == nil {
		t.Error("non-monotone rowptr accepted")
	}
}

func TestCSRProperty(t *testing.T) {
	f := func(nSeed, nnzSeed uint8, seed int64) bool {
		n := 10 + int(nSeed)%100
		nnz := 1 + int(nnzSeed)%10
		if nnz > n {
			nnz = n
		}
		c := MustRandomCSR(n, nnz, seed)
		return c.Validate() == nil && c.NNZ() == n*nnz
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestGeometryAddresses(t *testing.T) {
	g := Geometry{Val: 0x1000, Col: 0x2000, RowPtr: 0x3000, X: 0x4000, Y: 0x5000}
	if g.ValAddr(2) != 0x1010 {
		t.Errorf("ValAddr(2) = %#x", g.ValAddr(2))
	}
	if g.ColAddr(2) != 0x2008 {
		t.Errorf("ColAddr(2) = %#x", g.ColAddr(2))
	}
	if g.RowPtrAddr(1) != 0x3004 {
		t.Errorf("RowPtrAddr(1) = %#x", g.RowPtrAddr(1))
	}
	if g.XAddr(3) != 0x4018 || g.YAddr(3) != 0x5018 {
		t.Error("vector addresses wrong")
	}
}
