// Package sparse provides the compressed-sparse-row substrate of the CG
// benchmark: a CSR matrix with a deterministic random sparsity pattern
// (NAS CG builds its matrix from random sequences; the paper highlights
// CG's "random memory access patterns"), plus the address geometry the
// kernel generators need to emit the gather traffic of a sparse
// matrix-vector product.
package sparse

import (
	"fmt"
	"math/rand"
	"sort"
)

// CSR is a compressed-sparse-row pattern: only the structure is stored —
// the simulator is address-faithful, not value-faithful.
type CSR struct {
	N      int
	RowPtr []int32 // length N+1
	Col    []int32 // length NNZ, column indices ascending within a row
}

// NewRandomCSR builds an n×n pattern with about nnzPerRow nonzeros per row
// placed uniformly at random (always including the diagonal, as CG's
// matrix is positive definite), deterministically from seed.
func NewRandomCSR(n, nnzPerRow int, seed int64) (*CSR, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sparse: n = %d not positive", n)
	}
	if nnzPerRow <= 0 || nnzPerRow > n {
		return nil, fmt.Errorf("sparse: nnzPerRow = %d outside [1, %d]", nnzPerRow, n)
	}
	rng := rand.New(rand.NewSource(seed))
	c := &CSR{N: n, RowPtr: make([]int32, n+1)}
	cols := make(map[int32]struct{}, nnzPerRow)
	for i := 0; i < n; i++ {
		clear(cols)
		cols[int32(i)] = struct{}{} // diagonal
		for len(cols) < nnzPerRow {
			cols[int32(rng.Intn(n))] = struct{}{}
		}
		row := make([]int32, 0, len(cols))
		for cidx := range cols {
			row = append(row, cidx)
		}
		sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
		c.Col = append(c.Col, row...)
		c.RowPtr[i+1] = int32(len(c.Col))
	}
	return c, nil
}

// MustRandomCSR is NewRandomCSR panicking on error.
func MustRandomCSR(n, nnzPerRow int, seed int64) *CSR {
	c, err := NewRandomCSR(n, nnzPerRow, seed)
	if err != nil {
		panic(err)
	}
	return c
}

// NNZ is the number of stored nonzeros.
func (c *CSR) NNZ() int { return len(c.Col) }

// Row returns the column indices of row i.
func (c *CSR) Row(i int) []int32 {
	return c.Col[c.RowPtr[i]:c.RowPtr[i+1]]
}

// Validate checks structural invariants: monotone row pointers, in-range
// ascending columns, diagonal present.
func (c *CSR) Validate() error {
	if len(c.RowPtr) != c.N+1 {
		return fmt.Errorf("sparse: rowptr length %d, want %d", len(c.RowPtr), c.N+1)
	}
	if c.RowPtr[0] != 0 || int(c.RowPtr[c.N]) != len(c.Col) {
		return fmt.Errorf("sparse: rowptr endpoints %d..%d, want 0..%d", c.RowPtr[0], c.RowPtr[c.N], len(c.Col))
	}
	for i := 0; i < c.N; i++ {
		if c.RowPtr[i] > c.RowPtr[i+1] {
			return fmt.Errorf("sparse: rowptr not monotone at row %d", i)
		}
		row := c.Row(i)
		hasDiag := false
		for k, col := range row {
			if col < 0 || int(col) >= c.N {
				return fmt.Errorf("sparse: row %d col %d out of range", i, col)
			}
			if k > 0 && row[k-1] >= col {
				return fmt.Errorf("sparse: row %d columns not strictly ascending", i)
			}
			if int(col) == i {
				hasDiag = true
			}
		}
		if !hasDiag {
			return fmt.Errorf("sparse: row %d missing diagonal", i)
		}
	}
	return nil
}

// Geometry carries the byte addresses of the CSR arrays and the dense
// vectors of a CG iteration, as placed by the workload's arena.
type Geometry struct {
	Val    uint64 // float64[NNZ]
	Col    uint64 // int32[NNZ]
	RowPtr uint64 // int32[N+1]
	X      uint64 // float64[N], gather source
	Y      uint64 // float64[N], result
}

// ValAddr, ColAddr, RowPtrAddr, XAddr and YAddr map indices to simulated
// byte addresses.
func (g Geometry) ValAddr(k int) uint64    { return g.Val + uint64(k)*8 }
func (g Geometry) ColAddr(k int) uint64    { return g.Col + uint64(k)*4 }
func (g Geometry) RowPtrAddr(i int) uint64 { return g.RowPtr + uint64(i)*4 }
func (g Geometry) XAddr(i int) uint64      { return g.X + uint64(i)*8 }
func (g Geometry) YAddr(i int) uint64      { return g.Y + uint64(i)*8 }
