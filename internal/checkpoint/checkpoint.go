// Package checkpoint is the versioned, checksummed codec for paused
// simulation cells. A checkpoint binds a full smt.Machine snapshot to
// the identity of the experiment cell that owns it (the runner cache
// key plus the human-readable kernel/mode/label), so a daemon restarted
// after a crash — or a job preempted by a higher-priority burst — can
// resume the cell from its last pause point instead of cycle zero.
//
// The wire format is deliberately boring:
//
//	"smtckpt1" (8-byte magic+version)
//	sha256(payload) (32 bytes)
//	len(payload) as big-endian uint64 (8 bytes)
//	payload: JSON-encoded CellCheckpoint
//
// JSON keeps Decode total (arbitrary bytes can never panic it, which
// the fuzz target enforces) and deterministic (struct fields encode in
// declaration order, map keys sorted), so Encode∘Decode is the identity
// on bytes — the property the resume-parity guarantee leans on.
package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sync"

	"smtexplore/internal/smt"
)

// magic identifies the format and its version; bump the trailing digit
// on any incompatible change so stale checkpoints read as corrupt, not
// as garbage state.
const magic = "smtckpt1"

// headerLen is magic + sha256 + payload length.
const headerLen = len(magic) + sha256.Size + 8

// maxPayload bounds the declared payload length Decode will trust, so a
// corrupt header cannot provoke a huge allocation. Real checkpoints are
// a few hundred KB (dominated by the cache ways of the 512 KB L2).
const maxPayload = 1 << 30

// CellCheckpoint is one paused experiment cell.
type CellCheckpoint struct {
	// Key is the runner cache key of the owning cell; resume refuses a
	// checkpoint whose key does not match the cell being computed.
	Key string `json:"key"`
	// Kernel, Mode, Size and Label describe the cell for operators and
	// logs; they are informational, Key is authoritative.
	Kernel string `json:"kernel,omitempty"`
	Mode   string `json:"mode,omitempty"`
	Size   int    `json:"size,omitempty"`
	Label  string `json:"label,omitempty"`
	// Cycle is the machine cycle at capture — the cycles a resumed run
	// does not re-simulate (the resume_cycles_saved metric).
	Cycle uint64 `json:"cycle"`
	// Machine is the full simulator state.
	Machine *smt.Snapshot `json:"machine"`
}

// Encode renders c into the checksummed wire format.
func Encode(c *CellCheckpoint) ([]byte, error) {
	if c == nil || c.Machine == nil {
		return nil, fmt.Errorf("checkpoint: encode without a machine snapshot")
	}
	payload, err := json.Marshal(c)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: encode: %w", err)
	}
	sum := sha256.Sum256(payload)
	out := make([]byte, 0, headerLen+len(payload))
	out = append(out, magic...)
	out = append(out, sum[:]...)
	out = binary.BigEndian.AppendUint64(out, uint64(len(payload)))
	out = append(out, payload...)
	return out, nil
}

// Decode parses a checkpoint produced by Encode. It is total: arbitrary
// input yields an error, never a panic, and anything that fails the
// checksum or schema is rejected wholesale — a torn or bit-rotted
// checkpoint must read as absent, not as plausible simulator state.
func Decode(data []byte) (*CellCheckpoint, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("checkpoint: %d bytes is shorter than the %d-byte header", len(data), headerLen)
	}
	if !bytes.Equal(data[:len(magic)], []byte(magic)) {
		return nil, fmt.Errorf("checkpoint: bad magic %q", data[:len(magic)])
	}
	sum := data[len(magic) : len(magic)+sha256.Size]
	n := binary.BigEndian.Uint64(data[len(magic)+sha256.Size : headerLen])
	if n > maxPayload {
		return nil, fmt.Errorf("checkpoint: declared payload of %d bytes exceeds the %d limit", n, maxPayload)
	}
	payload := data[headerLen:]
	if uint64(len(payload)) != n {
		return nil, fmt.Errorf("checkpoint: have %d payload bytes, header claims %d", len(payload), n)
	}
	got := sha256.Sum256(payload)
	if !bytes.Equal(got[:], sum) {
		return nil, fmt.Errorf("checkpoint: payload checksum mismatch")
	}
	c := new(CellCheckpoint)
	if err := json.Unmarshal(payload, c); err != nil {
		return nil, fmt.Errorf("checkpoint: decode: %w", err)
	}
	if c.Machine == nil {
		return nil, fmt.Errorf("checkpoint: no machine snapshot in payload")
	}
	return c, nil
}

// Sink is where checkpoints live between the pause and the resume. The
// disk-backed result store (optionally behind its circuit breaker)
// satisfies it, giving checkpoints the same tmp+fsync+rename atomicity
// and checksum-verified reads as cached results.
type Sink interface {
	Load(key string) ([]byte, bool)
	Store(key string, data []byte)
	Delete(key string)
}

// SinkKey namespaces a cell's cache key for checkpoint storage, so a
// checkpoint and the cell's eventual result never collide in the shared
// store. The key survives across jobs: any later job computing the same
// cell resumes from the same checkpoint.
func SinkKey(cellKey string) string { return "checkpoint\n" + cellKey }

// MemSink is an in-process Sink for daemons running without a disk
// store (and for tests). Checkpoints in it do not survive the process,
// but watchdog retries and preemption resumes within one still work.
type MemSink struct {
	mu sync.Mutex
	m  map[string][]byte
}

// NewMemSink returns an empty in-memory sink.
func NewMemSink() *MemSink { return &MemSink{m: make(map[string][]byte)} }

// Load returns the stored bytes for key.
func (s *MemSink) Load(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.m[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), data...), true
}

// Store saves bytes under key.
func (s *MemSink) Store(key string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = append([]byte(nil), data...)
}

// Delete drops the entry for key.
func (s *MemSink) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, key)
}
