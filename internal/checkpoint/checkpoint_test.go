package checkpoint

import (
	"reflect"
	"testing"

	"smtexplore/internal/isa"
	"smtexplore/internal/smt"
	"smtexplore/internal/store"
	"smtexplore/internal/trace"
)

// The disk store and its circuit breaker must remain usable as
// checkpoint sinks.
var (
	_ Sink = (*store.Store)(nil)
	_ Sink = (*store.Breaker)(nil)
	_ Sink = (*MemSink)(nil)
)

// testCheckpoint captures a small machine mid-run.
func testCheckpoint(t *testing.T) *CellCheckpoint {
	t.Helper()
	m := smt.New(smt.DefaultConfig())
	defer m.Close()
	m.LoadProgram(0, trace.Generate(func(e *trace.Emitter) {
		for i := 0; i < 4000; i++ {
			e.Load(isa.R(1), uint64(i)*64)
			e.ALU(isa.IAdd, isa.R(2), isa.R(1), isa.R(2))
		}
	}))
	res, err := m.RunPausable(0, 500, func() bool { return true })
	if err != nil || !res.Paused {
		t.Fatalf("pause: res=%+v err=%v", res, err)
	}
	return &CellCheckpoint{
		Key:     "test-cell-key",
		Kernel:  "mm",
		Mode:    "tlp-fine",
		Size:    64,
		Label:   "kernel:mm/tlp-fine/N=64",
		Cycle:   m.Cycle(),
		Machine: m.Snapshot(),
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c := testCheckpoint(t)
	data, err := Encode(c)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(c, got) {
		t.Fatal("decoded checkpoint differs from the original")
	}
	again, err := Encode(got)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if string(again) != string(data) {
		t.Fatal("re-encoding a decoded checkpoint changed the bytes (encoding not deterministic)")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	c := testCheckpoint(t)
	data, err := Encode(c)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	cases := map[string][]byte{
		"empty":         nil,
		"short":         data[:headerLen-1],
		"truncated":     data[:len(data)-1],
		"extra tail":    append(append([]byte(nil), data...), 'x'),
		"bad magic":     append([]byte("XXXXXXXX"), data[8:]...),
		"flipped byte":  flip(data, headerLen+10),
		"flipped sum":   flip(data, len(magic)+3),
		"huge length":   flip(data, len(magic)+32), // high byte of the length field
		"header only":   data[:headerLen],
		"not json body": append(append([]byte(nil), data[:headerLen]...), []byte("not json")...),
	}
	for name, bad := range cases {
		if _, err := Decode(bad); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
}

func flip(data []byte, i int) []byte {
	out := append([]byte(nil), data...)
	out[i] ^= 0xff
	return out
}

func TestEncodeRequiresMachine(t *testing.T) {
	if _, err := Encode(nil); err == nil {
		t.Error("encode accepted nil checkpoint")
	}
	if _, err := Encode(&CellCheckpoint{Key: "k"}); err == nil {
		t.Error("encode accepted checkpoint without machine snapshot")
	}
}

func TestSinks(t *testing.T) {
	c := testCheckpoint(t)
	data, err := Encode(c)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	for name, sink := range map[string]Sink{"mem": NewMemSink(), "store": st} {
		key := SinkKey("cell-key")
		if _, ok := sink.Load(key); ok {
			t.Errorf("%s: hit before store", name)
		}
		sink.Store(key, data)
		got, ok := sink.Load(key)
		if !ok {
			t.Fatalf("%s: miss after store", name)
		}
		if c2, err := Decode(got); err != nil || !reflect.DeepEqual(c, c2) {
			t.Errorf("%s: loaded checkpoint does not round-trip: %v", name, err)
		}
		sink.Delete(key)
		if _, ok := sink.Load(key); ok {
			t.Errorf("%s: hit after delete", name)
		}
	}
}

func TestSinkKeyNamespaces(t *testing.T) {
	if SinkKey("abc") == "abc" {
		t.Fatal("SinkKey must not collide with the raw cell key")
	}
}
