package checkpoint

import (
	"reflect"
	"testing"

	"smtexplore/internal/isa"
	"smtexplore/internal/mem"
	"smtexplore/internal/smt"
	"smtexplore/internal/trace"
)

// fuzzSeed is a small valid encoding added to the corpus at runtime (a
// full machine snapshot is too large to commit as a seed file; the
// committed testdata seeds cover the header and corruption space).
func fuzzSeed(f *testing.F) []byte {
	f.Helper()
	cfg := smt.DefaultConfig()
	// Tiny caches and buffers: the seed stays a few KB, so the mutation
	// loop sustains a useful exec rate during the CI fuzz smoke.
	cfg.Mem.L1 = mem.CacheConfig{Size: 1 << 10, LineSize: 64, Assoc: 2, Latency: 2}
	cfg.Mem.L2 = mem.CacheConfig{Size: 8 << 10, LineSize: 64, Assoc: 4, Latency: 6}
	cfg.Mem.MSHRs = 4
	cfg.ROB = 32
	m := smt.New(cfg)
	defer m.Close()
	m.LoadProgram(0, trace.Generate(func(e *trace.Emitter) {
		for i := 0; i < 200; i++ {
			e.Load(isa.R(1), uint64(i)*64)
		}
	}))
	res, err := m.RunPausable(0, 50, func() bool { return true })
	if err != nil || !res.Paused {
		f.Fatalf("pause: res=%+v err=%v", res, err)
	}
	data, err := Encode(&CellCheckpoint{Key: "seed", Cycle: m.Cycle(), Machine: m.Snapshot()})
	if err != nil {
		f.Fatalf("encode seed: %v", err)
	}
	return data
}

// FuzzDecode asserts the codec's two safety properties: Decode never
// panics on arbitrary bytes, and any input it accepts canonicalizes —
// re-encoding the decoded checkpoint and decoding again is the
// identity.
func FuzzDecode(f *testing.F) {
	valid := fuzzSeed(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Decode(data)
		if err != nil {
			return
		}
		out, err := Encode(c)
		if err != nil {
			t.Fatalf("decoded checkpoint failed to re-encode: %v", err)
		}
		c2, err := Decode(out)
		if err != nil {
			t.Fatalf("re-encoded checkpoint failed to decode: %v", err)
		}
		if !reflect.DeepEqual(c, c2) {
			t.Fatal("encode/decode round trip is not the identity")
		}
	})
}
