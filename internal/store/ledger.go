package store

import "sync"

// Usage is one tenant's cumulative store-namespace footprint.
type Usage struct {
	// BytesWritten counts payload bytes this tenant's cells caused to
	// be written into the store (write-through on simulate).
	BytesWritten uint64
	// BytesServed counts payload bytes read out of the store for this
	// tenant (read-through hits that skipped simulation).
	BytesServed uint64
	// Writes and Serves count the operations behind those bytes.
	Writes uint64
	Serves uint64
}

// Ledger attributes store traffic to tenants. The store itself is
// content-addressed and shared — a warm key serves every tenant, which
// is the whole point — so attribution is by who asked, not by who owns
// the entry: the tenant whose cell wrote a result is charged the
// write, and every tenant whose cell was served from the store is
// charged the read. A nil *Ledger is valid and records nothing.
type Ledger struct {
	mu    sync.Mutex
	usage map[string]Usage
}

// NewLedger builds an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{usage: make(map[string]Usage)}
}

// ChargeWrite records a store write of n payload bytes for tenant.
func (l *Ledger) ChargeWrite(tenant string, n int) {
	if l == nil || n < 0 {
		return
	}
	l.mu.Lock()
	u := l.usage[tenant]
	u.BytesWritten += uint64(n)
	u.Writes++
	l.usage[tenant] = u
	l.mu.Unlock()
}

// ChargeServe records a store read of n payload bytes for tenant.
func (l *Ledger) ChargeServe(tenant string, n int) {
	if l == nil || n < 0 {
		return
	}
	l.mu.Lock()
	u := l.usage[tenant]
	u.BytesServed += uint64(n)
	u.Serves++
	l.usage[tenant] = u
	l.mu.Unlock()
}

// Usage returns one tenant's cumulative footprint.
func (l *Ledger) Usage(tenant string) Usage {
	if l == nil {
		return Usage{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.usage[tenant]
}

// Snapshot copies every tenant's usage row.
func (l *Ledger) Snapshot() map[string]Usage {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]Usage, len(l.usage))
	for k, v := range l.usage {
		out[k] = v
	}
	return out
}
