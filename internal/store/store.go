// Package store is a disk-backed, content-addressed result store: the
// persistent tier under runner.Cache. Every entry is one deterministic
// simulation result, serialised by the cache layer and written as one
// file whose name is derived from the content key — so results survive
// restarts and are shared between the CLI tools and the smtd daemon
// pointing at the same directory.
//
// Guarantees:
//
//   - Atomicity: entries appear via write-to-temp + rename, so a crash
//     mid-write never leaves a half-entry under an entry name.
//   - Corruption tolerance: every load re-checks the embedded payload
//     checksum, length fields and key; a truncated, torn or tampered
//     file is deleted and reported as a miss, and the next write simply
//     recreates it.
//   - Shared-tier addressing: the on-disk name of an entry is a pure
//     function of its content key, and an index miss re-checks the
//     directory before reporting it — so several processes (a cluster
//     of smtd workers, the CLI tools) can point at one directory and
//     each serves entries any of the others wrote, whenever written.
//   - Bounded size: when MaxBytes is set, inserting beyond the budget
//     evicts least-recently-used entries (recency survives restarts via
//     file mtimes). Loads hold the store lock for the duration of the
//     read, so eviction can never truncate an entry out from under an
//     in-flight load.
//
// The store deliberately has no in-memory value cache and no
// single-flight logic: runner.Cache provides both, and layering keeps
// each tier independently testable.
package store

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"smtexplore/internal/faultinject"
)

// entryExt is the store-file suffix; everything else in the directory is
// ignored (temp files, artifact subdirectories, stray editor droppings).
const entryExt = ".cell"

// header is the first token of every entry file; bumping the version
// invalidates old layouts (they fail the parse and are evicted as
// corrupt).
const header = "smtstore1"

// Store is a size-bounded, LRU-evicting directory of result files. All
// methods are safe for concurrent use.
type Store struct {
	dir      string
	maxBytes int64

	mu      sync.Mutex
	entries map[string]*entry // filename -> entry
	lru     *list.List        // front = most recently used; values are *entry
	bytes   int64
	stats   Stats
}

type entry struct {
	name string // filename within dir
	size int64
	elem *list.Element
}

// Stats reports store effectiveness since Open.
type Stats struct {
	// Hits counts loads served from disk.
	Hits uint64
	// Misses counts loads that found no usable entry.
	Misses uint64
	// Evictions counts entries removed to stay under MaxBytes.
	Evictions uint64
	// Corrupt counts entries dropped because their checksum, lengths or
	// key failed verification (a corrupt load also counts as a miss).
	Corrupt uint64
	// IOErrors counts reads and writes that failed at the filesystem
	// (not corruption, not a missing entry): the signal a circuit
	// breaker keys off. A failed read also counts as a miss.
	IOErrors uint64
	// Writes counts successful Put/Store calls.
	Writes uint64
	// Adopted counts hits served by indexing an entry file another
	// process wrote into the shared directory after this store opened
	// (each adoption also counts in Hits).
	Adopted uint64
	// Entries and Bytes describe the current resident set.
	Entries int
	Bytes   int64
}

// Open opens (creating if needed) the store rooted at dir. maxBytes
// bounds the resident set; <= 0 means unbounded. Existing entries are
// indexed by file mtime so LRU order survives restarts; unparseable
// files are removed immediately.
func Open(dir string, maxBytes int64) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:      dir,
		maxBytes: maxBytes,
		entries:  make(map[string]*entry),
		lru:      list.New(),
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	type aged struct {
		name  string
		size  int64
		mtime time.Time
	}
	var found []aged
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), entryExt) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		found = append(found, aged{de.Name(), info.Size(), info.ModTime()})
	}
	// Oldest first, so pushing to the LRU front leaves the most recent
	// there. Ties break on name for determinism.
	sort.Slice(found, func(i, j int) bool {
		if !found[i].mtime.Equal(found[j].mtime) {
			return found[i].mtime.Before(found[j].mtime)
		}
		return found[i].name < found[j].name
	})
	for _, f := range found {
		e := &entry{name: f.name, size: f.size}
		e.elem = s.lru.PushFront(e)
		s.entries[f.name] = e
		s.bytes += f.size
	}
	s.evictOverBudgetLocked()
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// fileName derives the entry filename for a key. Keys are arbitrary
// strings (in practice runner.Key hex digests), so they are re-hashed
// rather than trusted as path components.
func fileName(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:]) + entryExt
}

// encode renders an entry file: a checksummed header line, the key on
// its own line, then the raw payload.
//
//	smtstore1 <sha256(payload)> <len(key)> <len(payload)>\n
//	<key>\n
//	<payload>
func encode(key string, payload []byte) []byte {
	sum := sha256.Sum256(payload)
	head := fmt.Sprintf("%s %s %d %d\n%s\n", header, hex.EncodeToString(sum[:]), len(key), len(payload), key)
	out := make([]byte, 0, len(head)+len(payload))
	out = append(out, head...)
	out = append(out, payload...)
	return out
}

// decode verifies an entry file against the expected key and returns the
// payload, or an error describing the corruption.
func decode(data []byte, key string) ([]byte, error) {
	nl := -1
	for i, b := range data {
		if b == '\n' {
			nl = i
			break
		}
	}
	if nl < 0 {
		return nil, fmt.Errorf("no header line")
	}
	var gotSum string
	var keyLen, payLen int
	var name string
	if _, err := fmt.Sscanf(string(data[:nl]), "%s %s %d %d", &name, &gotSum, &keyLen, &payLen); err != nil {
		return nil, fmt.Errorf("bad header: %v", err)
	}
	if name != header {
		return nil, fmt.Errorf("bad magic %q", name)
	}
	rest := data[nl+1:]
	if len(rest) != keyLen+1+payLen {
		return nil, fmt.Errorf("length mismatch: have %d bytes, header claims %d", len(rest), keyLen+1+payLen)
	}
	gotKey := string(rest[:keyLen])
	if rest[keyLen] != '\n' {
		return nil, fmt.Errorf("malformed key terminator")
	}
	if gotKey != key {
		return nil, fmt.Errorf("key mismatch")
	}
	payload := rest[keyLen+1:]
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != gotSum {
		return nil, fmt.Errorf("payload checksum mismatch")
	}
	return payload, nil
}

// Load implements runner.Tier: it returns the stored payload for key,
// or ok=false on a miss. I/O failures are folded into misses — callers
// that need to distinguish them (the circuit breaker) use Get.
func (s *Store) Load(key string) ([]byte, bool) {
	data, ok, _ := s.Get(key)
	return data, ok
}

// Get is the error-aware load: (payload, true, nil) on a hit,
// (nil, false, nil) on a miss — including corrupt entries, which are
// deleted and recomputable — and (nil, false, err) when the filesystem
// itself failed, leaving the entry in place for a retry. The read
// happens under the store lock, so a concurrent eviction cannot
// interleave with it.
//
// A key absent from the in-memory index is still checked against the
// directory before being called a miss: the index is a snapshot from
// Open, and in a shared-tier deployment (several smtd workers pointing
// at one directory) another process may have written the entry since.
// A decodable on-disk file is adopted into the index and served as a
// hit — this is what lets any cluster worker serve any warm key, and
// what lets a surviving worker restore a checkpoint its dead peer
// parked after this process started.
func (s *Store) Get(key string) ([]byte, bool, error) {
	name := fileName(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[name]
	if !ok {
		return s.adoptLocked(name, key)
	}
	data, err := os.ReadFile(filepath.Join(s.dir, name))
	if err == nil {
		err = faultinject.Hit(faultinject.PointStoreRead)
	}
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			// The index said present but the file is gone. In a shared
			// directory that is routine — a peer evicted or deleted the
			// entry — so it is a plain miss; Corrupt stays reserved for
			// entries that fail verification.
			s.dropLocked(e, false)
			s.stats.Misses++
			return nil, false, nil
		}
		// A real I/O failure: the entry may be fine once the disk
		// recovers, so keep it indexed and surface the error.
		s.stats.IOErrors++
		s.stats.Misses++
		return nil, false, fmt.Errorf("store: read %s: %w", name, err)
	}
	payload, err := decode(data, key)
	if err != nil {
		s.dropLocked(e, true)
		s.stats.Misses++
		return nil, false, nil
	}
	s.lru.MoveToFront(e.elem)
	// Refresh the mtime so LRU order survives a restart. Best-effort.
	now := time.Now()
	_ = os.Chtimes(filepath.Join(s.dir, name), now, now)
	s.stats.Hits++
	return payload, true, nil
}

// adoptLocked resolves an index miss against the directory itself: a
// valid entry file written by another process sharing the directory is
// indexed, counted as a hit (and Adopted), and returned. Anything else
// is the plain miss it always was. Caller holds s.mu.
func (s *Store) adoptLocked(name, key string) ([]byte, bool, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, name))
	if err == nil {
		err = faultinject.Hit(faultinject.PointStoreRead)
	}
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			s.stats.Misses++
			return nil, false, nil
		}
		// The file exists but the filesystem failed: surface it like any
		// other read error so the breaker can count it.
		s.stats.IOErrors++
		s.stats.Misses++
		return nil, false, fmt.Errorf("store: read %s: %w", name, err)
	}
	payload, err := decode(data, key)
	if err != nil {
		// A foreign or torn file under an entry name: not ours to trust.
		// Leave it alone (its writer may still be mid-flight elsewhere)
		// and report the miss.
		s.stats.Misses++
		return nil, false, nil
	}
	e := &entry{name: name, size: int64(len(data))}
	e.elem = s.lru.PushFront(e)
	s.entries[name] = e
	s.bytes += e.size
	now := time.Now()
	_ = os.Chtimes(filepath.Join(s.dir, name), now, now)
	s.stats.Hits++
	s.stats.Adopted++
	s.evictOverBudgetLocked()
	return payload, true, nil
}

// Store implements runner.Tier: it persists payload under key via an
// atomic rename, then evicts LRU entries until the store fits MaxBytes
// again. Failures are silent — the store is a best-effort tier and the
// caller already holds the computed value.
func (s *Store) Store(key string, payload []byte) {
	_ = s.Put(key, payload)
}

// Put is the error-aware write behind Store: it reports filesystem
// failures so the circuit breaker can count them.
func (s *Store) Put(key string, payload []byte) error {
	name := fileName(key)
	data := encode(key, payload)

	ioErr := func(op string, err error) error {
		s.mu.Lock()
		s.stats.IOErrors++
		s.mu.Unlock()
		return fmt.Errorf("store: %s %s: %w", op, name, err)
	}
	if err := faultinject.Hit(faultinject.PointStoreWrite); err != nil {
		return ioErr("write", err)
	}
	f, err := os.CreateTemp(s.dir, "tmp-*")
	if err != nil {
		return ioErr("create", err)
	}
	tmp := f.Name()
	_, werr := f.Write(data)
	serr := f.Sync()
	cerr := f.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmp)
		return ioErr("write", errors.Join(werr, serr, cerr))
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.Rename(tmp, filepath.Join(s.dir, name)); err != nil {
		os.Remove(tmp)
		s.stats.IOErrors++
		return fmt.Errorf("store: rename %s: %w", name, err)
	}
	if old, ok := s.entries[name]; ok {
		// Overwrite (e.g. rewrite after corruption): replace in place.
		s.bytes -= old.size
		s.lru.Remove(old.elem)
	}
	e := &entry{name: name, size: int64(len(data))}
	e.elem = s.lru.PushFront(e)
	s.entries[name] = e
	s.bytes += e.size
	s.stats.Writes++
	s.evictOverBudgetLocked()
	return nil
}

// evictOverBudgetLocked removes least-recently-used entries until the
// resident set fits the byte budget. The most recent entry is always
// kept, so a single oversized result still persists.
func (s *Store) evictOverBudgetLocked() {
	if s.maxBytes <= 0 {
		return
	}
	for s.bytes > s.maxBytes && s.lru.Len() > 1 {
		back := s.lru.Back()
		if back == nil {
			return
		}
		e := back.Value.(*entry)
		s.dropLocked(e, false)
		s.stats.Evictions++
	}
}

// dropLocked removes an entry from the index and the directory.
func (s *Store) dropLocked(e *entry, corrupt bool) {
	delete(s.entries, e.name)
	s.lru.Remove(e.elem)
	s.bytes -= e.size
	os.Remove(filepath.Join(s.dir, e.name))
	if corrupt {
		s.stats.Corrupt++
	}
}

// Delete removes the entry for key, if present. Checkpoint sinks use
// it: once a resumed cell completes, its checkpoint is garbage. In a
// shared directory the entry may exist on disk without being indexed
// here (a peer wrote it); the file is removed either way so a stale
// checkpoint cannot outlive its cell.
func (s *Store) Delete(key string) {
	name := fileName(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[name]; ok {
		s.dropLocked(e, false)
		return
	}
	os.Remove(filepath.Join(s.dir, name))
}

// Stats snapshots the counters and resident-set size.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.entries)
	st.Bytes = s.bytes
	return st
}
