package store

import "testing"

func TestLedgerNilIsInert(t *testing.T) {
	var lg *Ledger
	lg.ChargeWrite("a", 10) // must not panic
	lg.ChargeServe("a", 10)
	if u := lg.Usage("a"); u != (Usage{}) {
		t.Fatalf("nil ledger usage = %+v, want zero", u)
	}
	if snap := lg.Snapshot(); len(snap) != 0 {
		t.Fatalf("nil ledger snapshot = %v, want empty", snap)
	}
}

func TestLedgerAccumulatesPerTenant(t *testing.T) {
	lg := NewLedger()
	lg.ChargeWrite("a", 100)
	lg.ChargeWrite("a", 50)
	lg.ChargeServe("a", 25)
	lg.ChargeServe("b", 7)
	a := lg.Usage("a")
	if a.BytesWritten != 150 || a.Writes != 2 || a.BytesServed != 25 || a.Serves != 1 {
		t.Fatalf("a = %+v", a)
	}
	b := lg.Usage("b")
	if b.BytesServed != 7 || b.BytesWritten != 0 {
		t.Fatalf("b = %+v", b)
	}
	snap := lg.Snapshot()
	if len(snap) != 2 || snap["a"] != a || snap["b"] != b {
		t.Fatalf("snapshot = %v", snap)
	}
	// Snapshot is a copy, not a window into the ledger.
	snap["a"] = Usage{}
	if lg.Usage("a") != a {
		t.Fatal("mutating snapshot leaked into ledger")
	}
}
