package store

import (
	"sync"
	"time"
)

// Breaker states.
const (
	BreakerClosed   = "closed"
	BreakerOpen     = "open"
	BreakerHalfOpen = "half-open"
)

// probeKey names the sentinel entry Probe writes; it is content-keyed
// like everything else, so it costs one tiny store file.
const probeKey = "smtd.breaker.probe"

// Breaker wraps a Store as a runner.Tier with a circuit breaker:
// Threshold consecutive I/O failures open the circuit, after which
// every operation short-circuits (Load is a miss, Store is dropped) so
// a sick disk degrades the daemon to memory-only caching instead of
// stalling or erroring every cell. After Cooldown, the next operation
// runs as a half-open probe: success closes the circuit, failure
// re-opens it for another cooldown. Misses and corruption are not
// failures — only filesystem errors count.
type Breaker struct {
	under     *Store
	threshold int
	cooldown  time.Duration
	now       func() time.Time // test hook

	mu       sync.Mutex
	state    string
	fails    int // consecutive I/O failures while closed
	openedAt time.Time
	stats    BreakerStats
}

// BreakerStats reports breaker activity since construction.
type BreakerStats struct {
	// State is the current circuit state.
	State string
	// Trips counts transitions to open.
	Trips uint64
	// ShortCircuits counts operations refused while open (or while a
	// half-open probe was already in flight).
	ShortCircuits uint64
	// Probes counts half-open probe operations allowed through.
	Probes uint64
}

// NewBreaker wraps under. threshold <= 0 defaults to 5 consecutive
// failures; cooldown <= 0 defaults to 5s.
func NewBreaker(under *Store, threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &Breaker{
		under:     under,
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
		state:     BreakerClosed,
	}
}

// Under returns the wrapped store (for stats reporting).
func (b *Breaker) Under() *Store { return b.under }

// allow decides whether an operation may touch the disk; when the
// cooldown has elapsed it admits exactly one caller as the half-open
// probe and short-circuits the rest until that probe reports back.
func (b *Breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = BreakerHalfOpen
			b.stats.Probes++
			return true
		}
	}
	// Open within cooldown, or half-open with the probe in flight.
	b.stats.ShortCircuits++
	return false
}

// record feeds an operation's outcome back: failures trip or re-open
// the circuit, successes close a half-open one and reset the count.
func (b *Breaker) record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		b.state = BreakerClosed
		b.fails = 0
		return
	}
	b.fails++
	if b.state == BreakerHalfOpen || b.fails >= b.threshold {
		if b.state != BreakerOpen {
			b.stats.Trips++
		}
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.fails = 0
	}
}

// Load implements runner.Tier: a short-circuited or failing read is a
// miss (the cache computes instead), never an error.
func (b *Breaker) Load(key string) ([]byte, bool) {
	if !b.allow() {
		return nil, false
	}
	data, ok, err := b.under.Get(key)
	b.record(err)
	if err != nil || !ok {
		return nil, false
	}
	return data, true
}

// Store implements runner.Tier: short-circuited writes are dropped —
// the caller holds the computed value, so nothing is lost but reuse.
func (b *Breaker) Store(key string, data []byte) {
	if !b.allow() {
		return
	}
	b.record(b.under.Put(key, data))
}

// Delete removes key from the underlying store. Short-circuited
// deletes are dropped — a stale entry costs disk space, not
// correctness, and the next overwrite or eviction reclaims it.
func (b *Breaker) Delete(key string) {
	if !b.allow() {
		return
	}
	b.under.Delete(key)
}

// Probe nudges a degraded circuit toward recovery with a sentinel
// write through the normal gate: inside the cooldown it short-circuits
// and costs nothing; past it, it becomes the half-open probe whose
// success closes the circuit. Health checks call this so recovery does
// not have to wait for organic traffic.
func (b *Breaker) Probe() {
	b.Store(probeKey, []byte("probe"))
}

// Degraded reports whether the circuit is anything but closed — the
// daemon is serving from memory only.
func (b *Breaker) Degraded() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state != BreakerClosed
}

// State returns the current circuit state.
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Stats snapshots the breaker counters.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.stats
	st.State = b.state
	return st
}
