package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"smtexplore/internal/runner"
)

func mustOpen(t *testing.T, dir string, maxBytes int64) *Store {
	t.Helper()
	s, err := Open(dir, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	if _, ok := s.Load("k"); ok {
		t.Fatal("empty store reported a hit")
	}
	payload := []byte(`{"cpi":[1.25,2.5]}`)
	s.Store("k", payload)
	got, ok := s.Load("k")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Load = %q, %v, want %q, true", got, ok, payload)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.Entries != 1 {
		t.Errorf("stats %+v, want 1 hit, 1 miss, 1 write, 1 entry", st)
	}
}

func TestPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s1 := mustOpen(t, dir, 0)
	s1.Store("k", []byte("payload"))

	s2 := mustOpen(t, dir, 0)
	got, ok := s2.Load("k")
	if !ok || string(got) != "payload" {
		t.Fatalf("after reopen: Load = %q, %v", got, ok)
	}
	if st := s2.Stats(); st.Entries != 1 {
		t.Errorf("reopen indexed %d entries, want 1", st.Entries)
	}
}

// corrupt truncated or tampered files must read as misses, and the next
// write must recreate a loadable entry.
func TestCorruptEntryIsMissAndRewritten(t *testing.T) {
	cases := []struct {
		name   string
		mangle func(path string, t *testing.T)
	}{
		{"truncated", func(path string, t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"flipped-payload-byte", func(path string, t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-1] ^= 0xff
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"bad-magic", func(path string, t *testing.T) {
			if err := os.WriteFile(path, []byte("not-a-store-file\n"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"empty", func(path string, t *testing.T) {
			if err := os.WriteFile(path, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s := mustOpen(t, dir, 0)
			s.Store("k", []byte("payload"))
			tc.mangle(filepath.Join(dir, fileName("k")), t)

			if _, ok := s.Load("k"); ok {
				t.Fatal("corrupt entry reported as a hit")
			}
			if st := s.Stats(); st.Corrupt != 1 || st.Entries != 0 {
				t.Fatalf("stats %+v, want 1 corrupt, 0 entries", st)
			}
			if _, err := os.Stat(filepath.Join(dir, fileName("k"))); !os.IsNotExist(err) {
				t.Errorf("corrupt file not removed: %v", err)
			}

			// The rewrite path: the next Store recreates the entry.
			s.Store("k", []byte("payload"))
			got, ok := s.Load("k")
			if !ok || string(got) != "payload" {
				t.Fatalf("after rewrite: Load = %q, %v", got, ok)
			}
		})
	}
}

// A file stored under one key must not satisfy another key even if an
// attacker (or a bug) renames it into place.
func TestKeyMismatchIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	s.Store("a", []byte("payload"))
	if err := os.Rename(filepath.Join(dir, fileName("a")), filepath.Join(dir, fileName("b"))); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, 0) // reindex picks the renamed file up
	if _, ok := s2.Load("b"); ok {
		t.Fatal("entry with mismatched embedded key reported as a hit")
	}
	if st := s2.Stats(); st.Corrupt != 1 {
		t.Errorf("stats %+v, want 1 corrupt", st)
	}
}

func TestEvictionLRUOrder(t *testing.T) {
	dir := t.TempDir()
	// Budget for roughly two entries: each entry is header (~89 bytes +
	// key) + payload; use a generous fixed budget and equal payloads.
	payload := bytes.Repeat([]byte("x"), 100)
	s := mustOpen(t, dir, 0)
	s.Store("a", payload)
	entrySize := s.Stats().Bytes
	s = mustOpen(t, dir, 2*entrySize+entrySize/2) // fits 2, not 3

	s.Store("b", payload)
	if _, ok := s.Load("a"); !ok { // a most recently used now
		t.Fatal("entry a missing before overflow")
	}
	s.Store("c", payload) // evicts b (LRU), keeps a and c
	if st := s.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats %+v, want 1 eviction, 2 entries", st)
	}
	if _, ok := s.Load("a"); !ok {
		t.Error("recently used entry a was evicted")
	}
	if _, ok := s.Load("b"); ok {
		t.Error("least recently used entry b survived")
	}
	if _, ok := s.Load("c"); !ok {
		t.Error("just-written entry c was evicted")
	}
}

func TestOversizedEntryStillPersists(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 10) // smaller than any entry
	s.Store("k", bytes.Repeat([]byte("x"), 100))
	if _, ok := s.Load("k"); !ok {
		t.Fatal("single oversized entry was evicted; the most recent write must survive")
	}
}

func TestLRUOrderSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("x"), 100)
	s := mustOpen(t, dir, 0)
	s.Store("a", payload)
	entrySize := s.Stats().Bytes
	time.Sleep(10 * time.Millisecond) // distinct mtimes
	s.Store("b", payload)
	time.Sleep(10 * time.Millisecond)
	if _, ok := s.Load("a"); !ok { // refreshes a's mtime
		t.Fatal("entry a missing")
	}

	// Reopen with room for both, then overflow: b (older mtime) goes.
	s2 := mustOpen(t, dir, 2*entrySize+entrySize/2)
	s2.Store("c", payload)
	if _, ok := s2.Load("a"); !ok {
		t.Error("entry a (recent mtime) evicted after reopen")
	}
	if _, ok := s2.Load("b"); ok {
		t.Error("entry b (oldest mtime) survived after reopen")
	}
}

func TestOpenIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "artifacts"), 0o755); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir, 0)
	if st := s.Stats(); st.Entries != 0 {
		t.Errorf("foreign files indexed as entries: %+v", st)
	}
}

// Parallel read-through misses on the same key must collapse to one
// compute and one store write: the single-flight lives in runner.Cache,
// the store is the tier beneath it.
func TestParallelReadThroughSingleFlight(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	cache := runner.NewCache().WithTier(s)
	var computes atomic.Int64
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := runner.Cached(cache, "shared-key", func() (string, error) {
				computes.Add(1)
				time.Sleep(5 * time.Millisecond) // widen the race window
				return "value", nil
			})
			if err != nil {
				errs <- err
				return
			}
			if v != "value" {
				errs <- fmt.Errorf("got %q", v)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := computes.Load(); n != 1 {
		t.Errorf("%d computes, want 1 (single-flight)", n)
	}
	if st := s.Stats(); st.Writes != 1 {
		t.Errorf("%d store writes, want 1", st.Writes)
	}
}

// Eviction must never break an in-flight read: loads hold the store lock
// for the whole file read, so hammering writes (forcing evictions) while
// hammering loads must never yield a torn payload — only clean hits or
// clean misses.
func TestEvictionNeverBreaksInFlightRead(t *testing.T) {
	payload := bytes.Repeat([]byte("p"), 256)
	s := mustOpen(t, t.TempDir(), 1200) // a handful of entries
	const keys = 8
	for i := 0; i < keys; i++ {
		s.Store(fmt.Sprintf("k%d", i), payload)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Writers churn the store, forcing continuous eviction.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s.Store(fmt.Sprintf("k%d", (i+w)%keys), payload)
			}
		}(w)
	}
	// Readers must only ever see the full payload or a miss.
	var torn atomic.Int64
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if data, ok := s.Load(fmt.Sprintf("k%d", (i+r)%keys)); ok && !bytes.Equal(data, payload) {
					torn.Add(1)
				}
			}
		}(r)
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	if n := torn.Load(); n != 0 {
		t.Fatalf("%d torn reads", n)
	}
	if st := s.Stats(); st.Corrupt != 0 {
		t.Errorf("eviction churn produced %d corrupt loads", st.Corrupt)
	}
}

func TestEncodeDecode(t *testing.T) {
	key := "some-key"
	payload := []byte("payload\nwith\nnewlines\x00and binary")
	got, err := decode(encode(key, payload), key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round-trip = %q, want %q", got, payload)
	}
	if _, err := decode(encode(key, payload), "other-key"); err == nil {
		t.Fatal("decode with wrong key succeeded")
	}
}

// Two Store instances sharing one directory model a cluster of smtd
// workers over a shared read-through tier: an entry written through one
// instance after the other opened must still be servable by the other
// (adopted from disk on the index miss), because that is what lets any
// worker serve any warm key — and a survivor restore a dead peer's
// checkpoint.
func TestSharedDirAdoptsPeerWrites(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, dir, 0)
	b := mustOpen(t, dir, 0) // opens before a writes anything

	a.Store("k", []byte("peer payload"))
	got, ok := b.Load("k")
	if !ok || string(got) != "peer payload" {
		t.Fatalf("peer instance Load = %q, %v, want adopted hit", got, ok)
	}
	st := b.Stats()
	if st.Adopted != 1 || st.Hits != 1 || st.Entries != 1 {
		t.Errorf("stats %+v, want 1 adopted, 1 hit, 1 entry", st)
	}
	// Second load is a plain indexed hit, not another adoption.
	if _, ok := b.Load("k"); !ok {
		t.Fatal("re-load after adoption missed")
	}
	if st := b.Stats(); st.Adopted != 1 || st.Hits != 2 {
		t.Errorf("after re-load: stats %+v, want adopted still 1, hits 2", st)
	}
}

// A missing key must stay a plain miss (no phantom adoption), and a
// foreign file squatting on an entry name must not be adopted, deleted
// or trusted.
func TestAdoptionRejectsForeignFiles(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	if _, ok := s.Load("absent"); ok {
		t.Fatal("absent key reported a hit")
	}
	name := fileName("squat")
	if err := os.WriteFile(filepath.Join(dir, name), []byte("not a store entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load("squat"); ok {
		t.Fatal("foreign file was adopted as a hit")
	}
	if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
		t.Fatalf("foreign file was removed by a failed adoption: %v", err)
	}
	if st := s.Stats(); st.Adopted != 0 {
		t.Errorf("Adopted = %d, want 0", st.Adopted)
	}
}

// Delete must remove a shared-directory entry even when this instance
// never indexed it, so a resumed cell's checkpoint cannot linger after
// a peer parked it.
func TestDeleteUnindexedPeerEntry(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, dir, 0)
	b := mustOpen(t, dir, 0)
	a.Store("k", []byte("payload"))

	b.Delete("k") // b never loaded it, so it is not in b's index
	if _, ok := a.Load("k"); ok {
		t.Fatal("entry survived a peer Delete")
	}
}

// TestAdoptionRacesEviction hammers the shared-directory protocol from
// both sides at once: a writer store churns keys through a tiny budget
// (constant eviction) while reader stores adopt whatever entry files
// they find. Writes are atomic renames and evictions atomic unlinks,
// so every Get must resolve to either the exact payload or a clean
// miss — never a torn read, a corruption count, or an I/O error.
func TestAdoptionRacesEviction(t *testing.T) {
	dir := t.TempDir()
	const keys = 20
	key := func(i int) string { return fmt.Sprintf("race-%d", i) }
	payload := func(i int) []byte { return bytes.Repeat([]byte(key(i)+"|"), 64) }

	writer := mustOpen(t, dir, 4<<10) // a handful of 1KB-ish entries
	readers := []*Store{mustOpen(t, dir, 4<<10), mustOpen(t, dir, 0)}

	var wg sync.WaitGroup
	var writerDone atomic.Bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer writerDone.Store(true)
		for n := 0; n < 300; n++ {
			if err := writer.Put(key(n%keys), payload(n%keys)); err != nil {
				t.Errorf("Put: %v", err)
				return
			}
		}
	}()
	for r := range readers {
		wg.Add(1)
		go func(s *Store, seed int) {
			defer wg.Done()
			check := func(i int) bool {
				got, ok, err := s.Get(key(i))
				if err != nil {
					t.Errorf("Get(%s): %v", key(i), err)
					return false
				}
				if ok && !bytes.Equal(got, payload(i)) {
					t.Errorf("Get(%s) returned a torn payload (%d bytes)", key(i), len(got))
					return false
				}
				return true
			}
			// Race the writer for as long as it runs, then sweep every
			// key once more: the final sweep is guaranteed to adopt
			// whatever the writer left resident.
			for n := 0; !writerDone.Load(); n++ {
				if !check((n*7 + seed) % keys) {
					return
				}
			}
			for i := 0; i < keys; i++ {
				if !check(i) {
					return
				}
			}
		}(readers[r], r)
	}
	wg.Wait()

	if st := writer.Stats(); st.Evictions == 0 {
		t.Errorf("writer never evicted — the race was not exercised: %+v", st)
	}
	adopted := uint64(0)
	for _, s := range readers {
		st := s.Stats()
		adopted += st.Adopted
		if st.Corrupt != 0 || st.IOErrors != 0 {
			t.Errorf("reader saw corruption under the race: %+v", st)
		}
	}
	if adopted == 0 {
		t.Errorf("readers never adopted a peer write — the race was not exercised")
	}
}
