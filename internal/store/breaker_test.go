package store

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"smtexplore/internal/faultinject"
)

// armRules arms a fault plan for the test and disarms on cleanup.
func armRules(t *testing.T, rules ...faultinject.Rule) *faultinject.Injector {
	t.Helper()
	in, err := faultinject.New(faultinject.Plan{Rules: rules})
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(in)
	t.Cleanup(faultinject.Disarm)
	return in
}

func openStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// Injected read errors surface through Get as errors (entry retained),
// count as IOErrors, and stay invisible to the Tier-shaped Load.
func TestGetReportsInjectedIOError(t *testing.T) {
	s := openStore(t)
	s.Store("k", []byte("v"))

	armRules(t, faultinject.Rule{Point: faultinject.PointStoreRead, Action: faultinject.ActionError, Count: 1})
	if _, ok, err := s.Get("k"); err == nil || ok {
		t.Fatalf("Get under injected read fault = (ok=%v, err=%v), want error", ok, err)
	}
	if st := s.Stats(); st.IOErrors != 1 || st.Entries != 1 {
		t.Errorf("after injected read error: %+v, want 1 IOError and the entry retained", st)
	}
	// Fault exhausted: the entry is still there and readable.
	if data, ok, err := s.Get("k"); err != nil || !ok || string(data) != "v" {
		t.Fatalf("Get after fault window = (%q, %v, %v), want the value back", data, ok, err)
	}
}

func TestPutReportsInjectedIOError(t *testing.T) {
	s := openStore(t)
	armRules(t, faultinject.Rule{Point: faultinject.PointStoreWrite, Action: faultinject.ActionError, Count: 1})
	if err := s.Put("k", []byte("v")); err == nil {
		t.Fatal("Put under injected write fault succeeded")
	}
	if st := s.Stats(); st.IOErrors != 1 || st.Writes != 0 {
		t.Errorf("after injected write error: %+v, want 1 IOError, 0 writes", st)
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatalf("Put after fault window: %v", err)
	}
}

// newTestBreaker wires a breaker with a controllable clock.
func newTestBreaker(s *Store, threshold int, cooldown time.Duration) (*Breaker, *time.Time) {
	b := NewBreaker(s, threshold, cooldown)
	now := time.Now()
	b.now = func() time.Time { return now }
	return b, &now
}

func TestBreakerTripsShortCircuitsAndRecovers(t *testing.T) {
	s := openStore(t)
	s.Store("k", []byte("v"))
	b, now := newTestBreaker(s, 3, time.Minute)

	// Healthy pass-through.
	if data, ok := b.Load("k"); !ok || string(data) != "v" {
		t.Fatalf("healthy Load = (%q, %v)", data, ok)
	}
	if b.State() != BreakerClosed || b.Degraded() {
		t.Fatalf("state %s after healthy load", b.State())
	}

	// Three consecutive injected read failures trip the circuit.
	armRules(t, faultinject.Rule{Point: faultinject.PointStoreRead, Action: faultinject.ActionError, Count: 3})
	for i := range 3 {
		if _, ok := b.Load("k"); ok {
			t.Fatalf("Load %d under fault returned ok", i)
		}
	}
	if b.State() != BreakerOpen || !b.Degraded() {
		t.Fatalf("state %s after %d failures, want open", b.State(), 3)
	}
	if st := b.Stats(); st.Trips != 1 {
		t.Errorf("Trips = %d, want 1", st.Trips)
	}

	// Open within the cooldown: everything short-circuits without
	// touching the store (the fault window is exhausted, so a real read
	// would succeed — proving these are short-circuits).
	before := s.Stats()
	if _, ok := b.Load("k"); ok {
		t.Error("open breaker served a load")
	}
	b.Store("k2", []byte("dropped"))
	if after := s.Stats(); after.Hits != before.Hits || after.Writes != before.Writes {
		t.Errorf("open breaker touched the store: %+v -> %+v", before, after)
	}
	if st := b.Stats(); st.ShortCircuits < 2 {
		t.Errorf("ShortCircuits = %d, want >= 2", st.ShortCircuits)
	}

	// Past the cooldown the next op is the half-open probe; it succeeds
	// and closes the circuit.
	*now = now.Add(2 * time.Minute)
	if data, ok := b.Load("k"); !ok || string(data) != "v" {
		t.Fatalf("half-open probe load = (%q, %v), want the value", data, ok)
	}
	if b.State() != BreakerClosed || b.Degraded() {
		t.Fatalf("state %s after successful probe, want closed", b.State())
	}
	if st := b.Stats(); st.Probes != 1 {
		t.Errorf("Probes = %d, want 1", st.Probes)
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	s := openStore(t)
	s.Store("k", []byte("v"))
	b, now := newTestBreaker(s, 1, time.Minute)

	armRules(t, faultinject.Rule{Point: faultinject.PointStoreRead, Action: faultinject.ActionError, Count: 2})
	b.Load("k") // trips (threshold 1)
	if b.State() != BreakerOpen {
		t.Fatalf("state %s, want open", b.State())
	}
	*now = now.Add(2 * time.Minute)
	b.Load("k") // half-open probe, second injected failure -> re-open
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe %s, want open", b.State())
	}
	if st := b.Stats(); st.Trips != 2 {
		t.Errorf("Trips = %d, want 2 (initial + failed probe)", st.Trips)
	}
	// Next cooldown's probe succeeds (fault window exhausted).
	*now = now.Add(2 * time.Minute)
	if _, ok := b.Load("k"); !ok {
		t.Fatal("recovered probe load missed")
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state %s after recovery, want closed", b.State())
	}
}

// Probe() drives recovery without organic traffic: the healthz path.
func TestBreakerProbeRecovers(t *testing.T) {
	s := openStore(t)
	b, now := newTestBreaker(s, 1, time.Minute)

	armRules(t, faultinject.Rule{Point: faultinject.PointStoreWrite, Action: faultinject.ActionError, Count: 1})
	b.Store("k", []byte("v")) // trips
	if !b.Degraded() {
		t.Fatal("breaker not degraded after write failure")
	}
	b.Probe() // inside cooldown: short-circuits, stays degraded
	if !b.Degraded() {
		t.Fatal("in-cooldown probe recovered the breaker")
	}
	*now = now.Add(2 * time.Minute)
	b.Probe() // half-open probe write succeeds
	if b.Degraded() {
		t.Fatal("post-cooldown probe did not recover the breaker")
	}
}

// Misses and corruption are not failures: they never trip the circuit.
func TestBreakerIgnoresMissesAndCorruption(t *testing.T) {
	s := openStore(t)
	b, _ := newTestBreaker(s, 1, time.Minute)
	if _, ok := b.Load("absent"); ok {
		t.Fatal("miss returned ok")
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state %s after miss, want closed", b.State())
	}
	// Corrupt an entry on disk; the load is a miss, not a trip.
	s.Store("k", []byte("v"))
	if err := os.WriteFile(filepath.Join(s.dir, fileName("k")), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Load("k"); ok {
		t.Fatal("corrupt entry returned ok")
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state %s after corrupt load, want closed", b.State())
	}
}

// Concurrent traffic across a trip and recovery must be race-free.
func TestBreakerConcurrent(t *testing.T) {
	s := openStore(t)
	s.Store("k", []byte("v"))
	b := NewBreaker(s, 3, time.Millisecond)

	armRules(t, faultinject.Rule{Point: faultinject.PointStoreRead, Action: faultinject.ActionError, Count: 10})
	var wg sync.WaitGroup
	for range 8 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range 50 {
				b.Load("k")
				b.Store("k", []byte("v"))
			}
		}()
	}
	wg.Wait()
	// The fault window is finite and the cooldown tiny, so the breaker
	// must end up (or settle) closed under fresh traffic.
	deadline := time.After(5 * time.Second)
	for b.Degraded() {
		b.Probe()
		select {
		case <-deadline:
			t.Fatalf("breaker stuck %s after fault window", b.State())
		case <-time.After(5 * time.Millisecond):
		}
	}
}
