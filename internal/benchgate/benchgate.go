// Package benchgate parses `go test -bench` output and compares runs
// against a committed baseline: the in-repo benchmark-regression gate.
// It needs nothing beyond the standard library, so CI and local `make
// bench-gate` run the identical comparator.
package benchgate

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// SchemaV1 identifies the committed BENCH_*.json layout.
const SchemaV1 = "smtexplore-bench/v1"

// ErrRegression is returned by the gate when any benchmark regressed.
var ErrRegression = errors.New("benchgate: regression detected")

// Record is the committed benchmark snapshot for one commit.
type Record struct {
	Schema     string  `json:"schema"`
	Commit     string  `json:"commit"`
	Date       string  `json:"date"`
	GoVersion  string  `json:"go"`
	Note       string  `json:"note,omitempty"`
	Benchmarks []Bench `json:"benchmarks"`
}

// Bench is one benchmark's reduced result over repeated runs: the
// minimum time/op (scheduling noise is strictly additive, so the min
// approximates the uncontended runtime — a real code regression raises
// every run including the fastest), the median of allocation stats and
// of every custom metric the benchmark reported (shape metrics like
// CPI values and cells/s).
type Bench struct {
	Name       string             `json:"name"`
	Runs       int                `json:"runs"`
	Iterations int                `json:"iterations"`
	TimeOpNs   float64            `json:"time_op_ns"`
	BytesOp    float64            `json:"bytes_op"`
	AllocsOp   float64            `json:"allocs_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Run is one raw benchmark output line.
type Run struct {
	Name       string
	Iterations int
	// Measurements maps unit → value for every "value unit" pair on the
	// line: ns/op, B/op, allocs/op and custom metrics alike.
	Measurements map[string]float64
}

// benchLine matches "BenchmarkName[-P] <tab> N <tab> measurements...".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// Parse reads `go test -bench` text output and returns every benchmark
// result line, in order. Non-benchmark lines (goos/pkg headers, PASS,
// shuffle seeds) are ignored.
func Parse(r io.Reader) ([]Run, error) {
	var out []Run
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		run := Run{Name: m[1], Iterations: iters, Measurements: map[string]float64{}}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchgate: bad measurement %q on %s", fields[i], run.Name)
			}
			run.Measurements[fields[i+1]] = v
		}
		out = append(out, run)
	}
	return out, sc.Err()
}

// Reduce groups runs by benchmark name and collapses repeated runs:
// min for ns/op (robust against steal-time bursts on a shared box —
// noise only ever adds time), median for everything else. Benchmarks
// appear in first-seen order.
func Reduce(runs []Run) []Bench {
	byName := map[string][]Run{}
	var order []string
	for _, r := range runs {
		if _, seen := byName[r.Name]; !seen {
			order = append(order, r.Name)
		}
		byName[r.Name] = append(byName[r.Name], r)
	}
	var out []Bench
	for _, name := range order {
		group := byName[name]
		units := map[string][]float64{}
		iters := 0
		for _, r := range group {
			iters += r.Iterations
			for u, v := range r.Measurements {
				units[u] = append(units[u], v)
			}
		}
		b := Bench{Name: name, Runs: len(group), Iterations: iters, Metrics: map[string]float64{}}
		for u, vs := range units {
			med := median(vs)
			switch u {
			case "ns/op":
				b.TimeOpNs = minOf(vs)
			case "B/op":
				b.BytesOp = med
			case "allocs/op":
				b.AllocsOp = med
			default:
				b.Metrics[u] = med
			}
		}
		if len(b.Metrics) == 0 {
			b.Metrics = nil
		}
		out = append(out, b)
	}
	return out
}

func minOf(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	m := vs[0]
	for _, v := range vs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

func median(vs []float64) float64 {
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Row is one benchmark's comparison outcome.
type Row struct {
	Name      string
	Base      Bench
	Fresh     Bench
	TimeDelta float64 // fractional change in time/op; + is slower
	TimeFail  bool
	AllocFail bool
	Missing   bool // in baseline but absent from the fresh run
}

// Report is the gate's verdict over every baseline benchmark.
type Report struct {
	Rows      []Row
	Threshold float64
}

// Compare evaluates fresh against base: time/op may not regress by more
// than threshold, and allocs/op may not increase at all. Benchmarks only
// present on one side never fail the gate (the baseline is extended by
// re-recording), but baseline entries missing from the fresh run are
// flagged in the report so a silently skipped benchmark is visible.
func Compare(base, fresh []Bench, threshold float64) Report {
	freshBy := map[string]Bench{}
	for _, b := range fresh {
		freshBy[b.Name] = b
	}
	rep := Report{Threshold: threshold}
	for _, b := range base {
		f, ok := freshBy[b.Name]
		if !ok {
			rep.Rows = append(rep.Rows, Row{Name: b.Name, Base: b, Missing: true})
			continue
		}
		row := Row{Name: b.Name, Base: b, Fresh: f}
		if b.TimeOpNs > 0 {
			row.TimeDelta = f.TimeOpNs/b.TimeOpNs - 1
			row.TimeFail = row.TimeDelta > threshold
		}
		row.AllocFail = f.AllocsOp > b.AllocsOp
		rep.Rows = append(rep.Rows, row)
	}
	return rep
}

// Failed reports whether any row trips the gate.
func (r Report) Failed() bool {
	for _, row := range r.Rows {
		if row.TimeFail || row.AllocFail {
			return true
		}
	}
	return false
}

// Format renders the verdict table.
func (r Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-40s %14s %14s %8s %10s  %s\n",
		"benchmark", "base ns/op", "fresh ns/op", "Δtime", "allocs/op", "verdict")
	for _, row := range r.Rows {
		if row.Missing {
			fmt.Fprintf(&b, "%-40s %14.0f %14s %8s %10s  %s\n",
				row.Name, row.Base.TimeOpNs, "-", "-", "-", "MISSING (not run)")
			continue
		}
		verdict := "ok"
		if row.TimeFail && row.AllocFail {
			verdict = fmt.Sprintf("FAIL (time > +%.0f%%, allocs up)", r.Threshold*100)
		} else if row.TimeFail {
			verdict = fmt.Sprintf("FAIL (time > +%.0f%%)", r.Threshold*100)
		} else if row.AllocFail {
			verdict = "FAIL (allocs up)"
		}
		fmt.Fprintf(&b, "%-40s %14.0f %14.0f %+7.1f%% %10.0f  %s\n",
			row.Name, row.Base.TimeOpNs, row.Fresh.TimeOpNs,
			row.TimeDelta*100, row.Fresh.AllocsOp, verdict)
	}
	return b.String()
}
