package benchgate

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: smtexplore
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
-test.shuffle 1754500000000000000
BenchmarkFig1StreamCPI 	       3	 533506210 ns/op	        56.23 cells/s	         1.000 fadd-1thr-maxILP-CPI	         0.6667 iadd-2thr-maxILP-CPI
BenchmarkFig1StreamCPI 	       3	 508005206 ns/op	        59.05 cells/s	         1.000 fadd-1thr-maxILP-CPI	         0.6667 iadd-2thr-maxILP-CPI
BenchmarkFig1StreamCPI 	       3	 576824453 ns/op	        52.01 cells/s	         1.000 fadd-1thr-maxILP-CPI	         0.6667 iadd-2thr-maxILP-CPI
BenchmarkStepCompute/ctx=2-8         	  300000	       331.7 ns/op	         2.500 uops/cycle	       0 B/op	       0 allocs/op
PASS
ok  	smtexplore	9.502s
`

func TestParseAndReduce(t *testing.T) {
	runs, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 4 {
		t.Fatalf("parsed %d runs, want 4", len(runs))
	}
	benches := Reduce(runs)
	if len(benches) != 2 {
		t.Fatalf("reduced to %d benchmarks, want 2", len(benches))
	}

	fig1 := benches[0]
	if fig1.Name != "BenchmarkFig1StreamCPI" || fig1.Runs != 3 {
		t.Fatalf("unexpected first benchmark: %+v", fig1)
	}
	if fig1.TimeOpNs != 508005206 { // min of the three runs
		t.Errorf("min time/op = %v, want 508005206", fig1.TimeOpNs)
	}
	if got := fig1.Metrics["cells/s"]; got != 56.23 {
		t.Errorf("cells/s = %v, want 56.23", got)
	}
	if got := fig1.Metrics["iadd-2thr-maxILP-CPI"]; got != 0.6667 {
		t.Errorf("shape metric = %v, want 0.6667", got)
	}

	step := benches[1]
	if step.Name != "BenchmarkStepCompute/ctx=2" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", step.Name)
	}
	if step.AllocsOp != 0 || step.BytesOp != 0 {
		t.Errorf("alloc stats not extracted: %+v", step)
	}
}

func bench(name string, ns, allocs float64) Bench {
	return Bench{Name: name, Runs: 1, TimeOpNs: ns, AllocsOp: allocs}
}

// TestGateRedOnTenPercentSlowdown is the gate's self-test: an injected
// slowdown just over the threshold must fail, one just under must pass.
func TestGateRedOnTenPercentSlowdown(t *testing.T) {
	base := []Bench{bench("BenchmarkFig1StreamCPI", 1_000_000, 0)}

	slow := []Bench{bench("BenchmarkFig1StreamCPI", 1_101_000, 0)} // +10.1%
	if rep := Compare(base, slow, 0.10); !rep.Failed() {
		t.Fatalf("gate stayed green on +10.1%% slowdown:\n%s", rep.Format())
	}

	ok := []Bench{bench("BenchmarkFig1StreamCPI", 1_099_000, 0)} // +9.9%
	if rep := Compare(base, ok, 0.10); rep.Failed() {
		t.Fatalf("gate went red on +9.9%% (under threshold):\n%s", rep.Format())
	}

	faster := []Bench{bench("BenchmarkFig1StreamCPI", 500_000, 0)}
	if rep := Compare(base, faster, 0.10); rep.Failed() {
		t.Fatalf("gate went red on an improvement:\n%s", rep.Format())
	}
}

// TestGateRedOnAnyAllocRegression: allocs/op is a hard zero-tolerance
// property — a single new allocation per op fails regardless of time.
func TestGateRedOnAnyAllocRegression(t *testing.T) {
	base := []Bench{bench("BenchmarkStepCompute/ctx=2", 330, 0)}
	fresh := []Bench{bench("BenchmarkStepCompute/ctx=2", 320, 1)}
	rep := Compare(base, fresh, 0.10)
	if !rep.Failed() {
		t.Fatalf("gate stayed green on allocs/op 0 → 1:\n%s", rep.Format())
	}
	if !rep.Rows[0].AllocFail || rep.Rows[0].TimeFail {
		t.Fatalf("wrong failure attribution: %+v", rep.Rows[0])
	}
}

// TestGateFlagsMissingBenchmarks: a baseline entry the fresh run never
// executed is reported (but does not fail the gate by itself).
func TestGateFlagsMissingBenchmarks(t *testing.T) {
	base := []Bench{bench("BenchmarkGone", 100, 0), bench("BenchmarkKept", 100, 0)}
	fresh := []Bench{bench("BenchmarkKept", 101, 0)}
	rep := Compare(base, fresh, 0.10)
	if rep.Failed() {
		t.Fatalf("missing benchmark failed the gate:\n%s", rep.Format())
	}
	if !rep.Rows[0].Missing {
		t.Fatalf("missing benchmark not flagged: %+v", rep.Rows[0])
	}
	if !strings.Contains(rep.Format(), "MISSING") {
		t.Fatalf("report does not surface the missing row:\n%s", rep.Format())
	}
}

// TestGateIgnoresNewBenchmarks: fresh-only benchmarks don't gate — the
// baseline is extended by re-recording, not implicitly.
func TestGateIgnoresNewBenchmarks(t *testing.T) {
	base := []Bench{bench("BenchmarkOld", 100, 0)}
	fresh := []Bench{bench("BenchmarkOld", 100, 0), bench("BenchmarkNew", 1, 5)}
	if rep := Compare(base, fresh, 0.10); rep.Failed() {
		t.Fatalf("new benchmark failed the gate:\n%s", rep.Format())
	}
}

func TestMedianEvenCount(t *testing.T) {
	if m := median([]float64{4, 1}); m != 2.5 {
		t.Fatalf("median = %v, want 2.5", m)
	}
}

// TestReduceTimeUsesMin: a steal-time burst that slows two of three
// passes must not move the reduced time/op — only the fastest pass
// (the closest approximation of uncontended runtime) counts.
func TestReduceTimeUsesMin(t *testing.T) {
	runs := []Run{
		{Name: "BenchmarkX", Iterations: 1, Measurements: map[string]float64{"ns/op": 330}},
		{Name: "BenchmarkX", Iterations: 1, Measurements: map[string]float64{"ns/op": 176}},
		{Name: "BenchmarkX", Iterations: 1, Measurements: map[string]float64{"ns/op": 610}},
	}
	b := Reduce(runs)
	if len(b) != 1 || b[0].TimeOpNs != 176 {
		t.Fatalf("reduced time/op = %+v, want min 176", b)
	}
}
