// Package streams constructs the synthetic homogeneous instruction streams
// of Section 4 of the paper: basic arithmetic operations (add, sub, mul,
// div) and memory operations (load, store) on integer and floating-point
// scalars, each at a chosen degree of instruction-level parallelism.
//
// ILP is tuned exactly as the paper describes: the stream keeps its source
// and target register sets disjoint and cycles the destination over |T|
// registers, so a given target register is reused every |T| instructions —
// creating the WAW/RAW pressure that throttles a no-rename pipeline. The
// paper's three degrees are |T| = 1 (minimum), 3 (medium) and 6 (maximum).
//
// Memory streams walk a private per-thread vector sequentially with a
// 16-bit element stride, which on 64-byte lines yields the ≈3% cache miss
// rate quoted in the paper's Figure 2 discussion.
package streams

import (
	"fmt"
	"sync"

	"smtexplore/internal/isa"
	"smtexplore/internal/trace"
)

// Kind identifies one of the paper's instruction streams.
type Kind uint8

// Stream kinds. FAddMul is the paper's mixed stream: fadd and fmul
// inlined in circular alternation within one thread.
const (
	IAddS Kind = iota
	ISubS
	IMulS
	IDivS
	ILoadS
	IStoreS
	FAddS
	FSubS
	FMulS
	FDivS
	FLoadS
	FStoreS
	FAddMulS

	numKinds
)

// NumKinds is the number of stream kinds.
const NumKinds = int(numKinds)

var kindNames = [NumKinds]string{
	"iadd", "isub", "imul", "idiv", "iload", "istore",
	"fadd", "fsub", "fmul", "fdiv", "fload", "fstore", "fadd-mul",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Valid reports whether k is a defined stream kind.
func (k Kind) Valid() bool { return k < numKinds }

// IsMem reports whether the stream is a load/store stream.
func (k Kind) IsMem() bool {
	switch k {
	case ILoadS, IStoreS, FLoadS, FStoreS:
		return true
	}
	return false
}

// IsFP reports whether the stream operates on floating-point scalars.
func (k Kind) IsFP() bool { return k >= FAddS }

// All returns every stream kind.
func All() []Kind {
	out := make([]Kind, NumKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// IntKinds returns the integer streams of Figure 2(b).
func IntKinds() []Kind { return []Kind{IAddS, ISubS, IMulS, IDivS, ILoadS, IStoreS} }

// FPKinds returns the floating-point streams of Figure 2(a).
func FPKinds() []Kind { return []Kind{FAddS, FSubS, FMulS, FDivS, FLoadS, FStoreS} }

// IntArith and FPArith return the pure arithmetic streams mixed in
// Figure 2(c).
func IntArith() []Kind { return []Kind{IAddS, ISubS, IMulS, IDivS} }
func FPArith() []Kind  { return []Kind{FAddS, FSubS, FMulS, FDivS} }

// ILP is the paper's instruction-level-parallelism degree: the number of
// distinct target registers |T| the stream cycles through.
type ILP int

// The paper's three ILP degrees.
const (
	MinILP ILP = 1
	MedILP ILP = 3
	MaxILP ILP = 6
)

// Levels returns the paper's ILP degrees in ascending order.
func Levels() []ILP { return []ILP{MinILP, MedILP, MaxILP} }

func (p ILP) String() string {
	switch p {
	case MinILP:
		return "minILP"
	case MedILP:
		return "medILP"
	case MaxILP:
		return "maxILP"
	}
	return fmt.Sprintf("ilp(%d)", int(p))
}

// Spec describes one stream instance.
type Spec struct {
	Kind Kind
	ILP  ILP
	// Base is the start of the stream's private vector (memory streams
	// only); co-executed streams must use disjoint bases, as the paper's
	// threads traverse private vectors.
	Base uint64
}

// VectorBytes is the size of a memory stream's private vector: larger than
// the 8 KB L1 so line-sequential walks miss there, comfortably inside the
// shared 512 KB L2 (even when two streams co-run), so misses refill from
// L2 as in the paper's ≈3%-miss characterisation.
const VectorBytes = 64 << 10

// elemStride is the memory-stream element size in bytes. On 64-byte lines
// a sequential 2-byte walk misses once per 32 accesses ≈ 3%, the rate the
// paper quotes.
const elemStride = 2

// unrollBody is the number of inlined instructions per generated block —
// the streams in the paper are constructed by repeatedly inlining the
// instruction, with no loop overhead.
const unrollBody = 64

// Build constructs the endless instruction stream described by s. Bound
// execution with a Machine cycle budget, mirroring the paper's fixed
// 10-second measurement runs.
func Build(s Spec) trace.Program {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	switch {
	case s.Kind == FAddMulS:
		return buildMixed(s, isa.FAdd, isa.FMul)
	case s.Kind.IsMem():
		return buildMem(s)
	default:
		return buildArith(s, arithOp(s.Kind))
	}
}

// Body returns one full period of the endless stream described by s: the
// instruction sequence after which the stream repeats exactly (the
// unrolled block for arithmetic streams, one whole private-vector walk
// for memory streams). Collecting the period once lets the simulator
// serve the stream from a slice instead of re-running the generator —
// see Open.
func Body(s Spec) []isa.Instr {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	period := uint64(unrollBody)
	if s.Kind.IsMem() {
		// The address pattern wraps after one vector walk.
		period = VectorBytes / elemStride
	}
	return trace.Collect(trace.Limit(Build(s), period))
}

// bodyCache memoises Body per spec: the bodies are immutable (Stream
// serves them by value), so co-executed and repeated cells share one
// allocation — memory-stream periods are tens of thousands of
// instructions.
var bodyCache sync.Map // Spec → []isa.Instr

// Open builds the endless instruction stream described by s as a
// slice-backed loop stream, the fast equivalent of
// trace.NewStream(Build(s)). Bodies are cached per spec and shared.
func Open(s Spec) *trace.Stream {
	if b, ok := bodyCache.Load(s); ok {
		return trace.NewLoop(b.([]isa.Instr))
	}
	b := Body(s)
	bodyCache.Store(s, b)
	return trace.NewLoop(b)
}

// Validate reports specification errors.
func (s Spec) Validate() error {
	if !s.Kind.Valid() {
		return fmt.Errorf("streams: invalid kind %d", uint8(s.Kind))
	}
	switch s.ILP {
	case MinILP, MedILP, MaxILP:
	default:
		return fmt.Errorf("streams: ILP must be one of 1, 3, 6; got %d", int(s.ILP))
	}
	return nil
}

func arithOp(k Kind) isa.Op {
	switch k {
	case IAddS:
		return isa.IAdd
	case ISubS:
		return isa.ISub
	case IMulS:
		return isa.IMul
	case IDivS:
		return isa.IDiv
	case FAddS:
		return isa.FAdd
	case FSubS:
		return isa.FSub
	case FMulS:
		return isa.FMul
	case FDivS:
		return isa.FDiv
	}
	panic(fmt.Sprintf("streams: %v is not an arithmetic stream", k))
}

// targets returns the |T| destination registers and two disjoint source
// registers for a register bank.
func regsFor(fp bool, ilp ILP) (tgt []isa.Reg, s1, s2 isa.Reg) {
	reg := isa.R
	if fp {
		reg = isa.F
	}
	tgt = make([]isa.Reg, ilp)
	for i := range tgt {
		tgt[i] = reg(i)
	}
	// Sources sit above the largest target set, keeping S and T disjoint
	// at every ILP level, exactly as in the paper's construction.
	return tgt, reg(8), reg(9)
}

func buildArith(s Spec, op isa.Op) trace.Program {
	tgt, s1, s2 := regsFor(s.Kind.IsFP(), s.ILP)
	return trace.Generate(func(e *trace.Emitter) {
		for !e.Stopped() {
			for i := 0; i < unrollBody; i++ {
				e.ALU(op, tgt[i%len(tgt)], s1, s2)
			}
		}
	})
}

func buildMixed(s Spec, opA, opB isa.Op) trace.Program {
	tgt, s1, s2 := regsFor(true, s.ILP)
	return trace.Generate(func(e *trace.Emitter) {
		for !e.Stopped() {
			for i := 0; i < unrollBody; i++ {
				op := opA
				if i%2 == 1 {
					op = opB
				}
				e.ALU(op, tgt[i%len(tgt)], s1, s2)
			}
		}
	})
}

func buildMem(s Spec) trace.Program {
	fp := s.Kind.IsFP()
	tgt, src, _ := regsFor(fp, s.ILP)
	isLoad := s.Kind == ILoadS || s.Kind == FLoadS
	return trace.Generate(func(e *trace.Emitter) {
		var off uint64
		for !e.Stopped() {
			for i := 0; i < unrollBody; i++ {
				addr := s.Base + off
				if isLoad {
					e.Load(tgt[i%len(tgt)], addr)
				} else {
					e.Store(src, addr)
				}
				off += elemStride
				if off >= VectorBytes {
					off = 0
				}
			}
		}
	})
}

// DisjointBase returns a private vector base for co-executed stream slot
// i, spaced so two streams' vectors never share cache lines.
func DisjointBase(i int) uint64 {
	return 0x1000_0000 + uint64(i)*(VectorBytes+4096)
}
