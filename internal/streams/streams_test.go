package streams

import (
	"testing"

	"smtexplore/internal/isa"
	"smtexplore/internal/trace"
)

func TestKindNamesAndPredicates(t *testing.T) {
	for _, k := range All() {
		if k.String() == "" {
			t.Fatalf("kind %d unnamed", k)
		}
	}
	if !ILoadS.IsMem() || !FStoreS.IsMem() || IAddS.IsMem() || FAddMulS.IsMem() {
		t.Error("IsMem misclassifies")
	}
	if !FAddS.IsFP() || !FAddMulS.IsFP() || IAddS.IsFP() || IStoreS.IsFP() {
		t.Error("IsFP misclassifies")
	}
	if len(IntKinds()) != 6 || len(FPKinds()) != 6 {
		t.Error("figure-2 kind sets wrong size")
	}
}

func TestSpecValidate(t *testing.T) {
	if err := (Spec{Kind: FAddS, ILP: MedILP}).Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	if err := (Spec{Kind: Kind(99), ILP: MedILP}).Validate(); err == nil {
		t.Error("invalid kind accepted")
	}
	if err := (Spec{Kind: FAddS, ILP: 4}).Validate(); err == nil {
		t.Error("ILP 4 accepted")
	}
}

func TestBuildPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Build(invalid) did not panic")
		}
	}()
	Build(Spec{Kind: FAddS, ILP: 2})
}

// firstN pulls n instructions from an endless stream.
func firstN(p trace.Program, n int) []isa.Instr {
	return trace.Collect(trace.Limit(p, uint64(n)))
}

func TestArithStreamOpsAndILP(t *testing.T) {
	for _, k := range []Kind{IAddS, ISubS, IMulS, IDivS, FAddS, FSubS, FMulS, FDivS} {
		for _, ilp := range Levels() {
			ins := firstN(Build(Spec{Kind: k, ILP: ilp}), 24)
			want := arithOp(k)
			tgts := map[isa.Reg]bool{}
			srcs := map[isa.Reg]bool{}
			for _, in := range ins {
				if in.Op != want {
					t.Fatalf("%v: op = %v, want %v", k, in.Op, want)
				}
				tgts[in.Dst] = true
				srcs[in.Src1] = true
				srcs[in.Src2] = true
			}
			if len(tgts) != int(ilp) {
				t.Errorf("%v/%v: %d distinct targets, want %d", k, ilp, len(tgts), ilp)
			}
			for r := range tgts {
				if srcs[r] {
					t.Errorf("%v/%v: register %v in both S and T", k, ilp, r)
				}
			}
			// Reuse period: instruction i and i+|T| share the target.
			for i := 0; i+int(ilp) < len(ins); i++ {
				if ins[i].Dst != ins[i+int(ilp)].Dst {
					t.Errorf("%v/%v: target not reused with period %d", k, ilp, ilp)
					break
				}
			}
		}
	}
}

func TestMixedStreamAlternates(t *testing.T) {
	ins := firstN(Build(Spec{Kind: FAddMulS, ILP: MaxILP}), 16)
	for i, in := range ins {
		want := isa.FAdd
		if i%2 == 1 {
			want = isa.FMul
		}
		if in.Op != want {
			t.Fatalf("instruction %d op = %v, want %v (circular fadd/fmul mix)", i, in.Op, want)
		}
	}
}

func TestMemStreamWalksSequentially(t *testing.T) {
	base := DisjointBase(0)
	ins := firstN(Build(Spec{Kind: FLoadS, ILP: MaxILP, Base: base}), 100)
	for i, in := range ins {
		if in.Op != isa.Load {
			t.Fatalf("op = %v, want load", in.Op)
		}
		if in.Dst.Bank() != isa.BankFP {
			t.Fatalf("fload target bank = %v", in.Dst.Bank())
		}
		wantAddr := base + uint64(i)*elemStride
		if in.Addr != wantAddr {
			t.Fatalf("addr[%d] = %#x, want %#x", i, in.Addr, wantAddr)
		}
	}
}

func TestMemStreamMissRateApprox3Percent(t *testing.T) {
	// One access per elemStride bytes, 64-byte lines → one new line per
	// 64/elemStride accesses.
	perLine := 64 / elemStride
	rate := 1.0 / float64(perLine)
	if rate < 0.025 || rate > 0.04 {
		t.Errorf("designed miss rate %.3f not ≈3%%", rate)
	}
}

func TestIntStoreUsesIntSource(t *testing.T) {
	ins := firstN(Build(Spec{Kind: IStoreS, ILP: MinILP, Base: DisjointBase(1)}), 4)
	for _, in := range ins {
		if in.Op != isa.Store || in.Src1.Bank() != isa.BankInt {
			t.Fatalf("istore instruction %v malformed", in)
		}
	}
}

func TestMemStreamWraps(t *testing.T) {
	base := DisjointBase(2)
	n := VectorBytes/elemStride + 5
	ins := firstN(Build(Spec{Kind: ILoadS, ILP: MinILP, Base: base}), n)
	last := ins[len(ins)-1]
	if last.Addr >= base+VectorBytes {
		t.Fatalf("walk did not wrap: %#x beyond vector end", last.Addr)
	}
	if ins[VectorBytes/elemStride].Addr != base {
		t.Fatalf("wrap address = %#x, want %#x", ins[VectorBytes/elemStride].Addr, base)
	}
}

func TestDisjointBases(t *testing.T) {
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			a, b := DisjointBase(i), DisjointBase(j)
			lo, hi := a, b
			if lo > hi {
				lo, hi = hi, lo
			}
			if hi < lo+VectorBytes {
				t.Fatalf("bases %d and %d overlap", i, j)
			}
		}
	}
}

func TestAllStreamsValidateAgainstISA(t *testing.T) {
	for _, k := range All() {
		for _, ilp := range Levels() {
			ins := firstN(Build(Spec{Kind: k, ILP: ilp, Base: DisjointBase(0)}), 32)
			if len(ins) != 32 {
				t.Fatalf("%v/%v truncated", k, ilp)
			}
			for _, in := range ins {
				if err := in.Validate(); err != nil {
					t.Fatalf("%v/%v: %v", k, ilp, err)
				}
			}
		}
	}
}
