package uasm

import (
	"strings"
	"testing"

	"smtexplore/internal/isa"
	"smtexplore/internal/trace"
)

func TestDisassembleRoundTrip(t *testing.T) {
	src := `
	fadd f0, f1, f2
	iadd r3, r4, r5
	load f6, [0x1000] @3
	store f6, [0x2000]
	flag c2 = 9
	spin c2 == 9
	rawspin c3 != 0
	halt c4 >= 1
	branch
	nop
	pause
	`
	p := MustParse(src)
	text, err := Disassemble(p)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, text)
	}
	a, b := trace.Collect(MustParse(src)), trace.Collect(p2)
	if len(a) != len(b) {
		t.Fatalf("instruction counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("instr %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestDisassembleLoopsFlat(t *testing.T) {
	text, err := Disassemble(MustParse("loop 3\nnop\nend"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(text, "nop") != 3 {
		t.Fatalf("loop not expanded:\n%s", text)
	}
}

func TestDisassembleGeneratedProgram(t *testing.T) {
	// A Go-generated program materialises to valid assembler.
	p := trace.Generate(func(e *trace.Emitter) {
		for i := 0; i < 4; i++ {
			e.TaggedLoad(isa.F(i), uint64(i)*64, isa.Tag(i+1))
			e.ALU(isa.FMul, isa.F(8+i), isa.F(i), isa.F(16))
		}
	})
	text, err := Disassemble(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(text); err != nil {
		t.Fatalf("generated text not parseable: %v\n%s", err, text)
	}
	if !strings.Contains(text, "@1") {
		t.Error("tags lost in disassembly")
	}
}
