// Package uasm is a tiny assembler for the simulator's µop vocabulary:
// it parses human-writable text programs into trace.Programs, so custom
// workloads can be driven through cmd/smtsim without writing Go.
//
// Syntax (one instruction per line; '#' or ';' start a comment):
//
//	fadd   f0, f1, f2          # arithmetic: op dst, src1, src2
//	iadd   r4, r5, r6          # r* integer registers, f* floating point
//	load   f3, [0x1000]        # memory: byte addresses in [] (hex or dec)
//	load   f3, [0x1000] @7     # optional static tag for profiling
//	store  f3, [0x2000]
//	prefetch [0x3000]          # non-binding software prefetch
//	branch                     # loop-closing branch
//	nop
//	pause                      # spin-wait hint
//	flag   c1 = 42             # publish 42 to synchronisation cell 1
//	spin   c1 == 42            # pause-augmented spin-wait (==, !=, >=)
//	rawspin c1 != 0            # aggressive spin-wait
//	halt   c1 >= 5             # halt until the condition holds
//	loop 100                   # repeat the enclosed block 100 times
//	  fmul f0, f1, f2
//	end
//
// Loops nest. Cell flag stores take their backing address automatically
// (isa.CellAddr).
package uasm

import (
	"fmt"
	"strconv"
	"strings"

	"smtexplore/internal/isa"
	"smtexplore/internal/trace"
)

// stmt is one parsed statement: either an instruction or a loop block.
type stmt struct {
	in    isa.Instr
	block []stmt
	count int
	isIns bool
}

// Parse assembles src into a replayable Program.
func Parse(src string) (trace.Program, error) {
	stmts, err := parseBlock(newLexer(src), false)
	if err != nil {
		return nil, err
	}
	return programOf(stmts), nil
}

// MustParse is Parse panicking on error, for embedded programs.
func MustParse(src string) trace.Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// Count returns the number of instructions src expands to (loops
// multiplied out).
func Count(src string) (uint64, error) {
	stmts, err := parseBlock(newLexer(src), false)
	if err != nil {
		return 0, err
	}
	return countOf(stmts), nil
}

func countOf(stmts []stmt) uint64 {
	var n uint64
	for _, s := range stmts {
		if s.isIns {
			n++
		} else {
			n += uint64(s.count) * countOf(s.block)
		}
	}
	return n
}

func programOf(stmts []stmt) trace.Program {
	return trace.Generate(func(e *trace.Emitter) {
		emitBlock(e, stmts)
	})
}

func emitBlock(e *trace.Emitter, stmts []stmt) {
	for _, s := range stmts {
		if e.Stopped() {
			return
		}
		if s.isIns {
			e.Emit(s.in)
			continue
		}
		for i := 0; i < s.count && !e.Stopped(); i++ {
			emitBlock(e, s.block)
		}
	}
}

// lexer walks lines with position tracking.
type lexer struct {
	lines []string
	pos   int
}

func newLexer(src string) *lexer {
	return &lexer{lines: strings.Split(src, "\n")}
}

// next returns the next non-empty, comment-stripped line.
func (lx *lexer) next() (line string, num int, ok bool) {
	for lx.pos < len(lx.lines) {
		raw := lx.lines[lx.pos]
		lx.pos++
		if i := strings.IndexAny(raw, "#;"); i >= 0 {
			raw = raw[:i]
		}
		raw = strings.TrimSpace(raw)
		if raw != "" {
			return raw, lx.pos, true
		}
	}
	return "", lx.pos, false
}

func parseBlock(lx *lexer, inLoop bool) ([]stmt, error) {
	var out []stmt
	for {
		line, num, ok := lx.next()
		if !ok {
			if inLoop {
				return nil, fmt.Errorf("uasm: line %d: unterminated loop (missing end)", num)
			}
			return out, nil
		}
		fields := strings.Fields(line)
		op := strings.ToLower(fields[0])
		rest := strings.TrimSpace(strings.TrimPrefix(line, fields[0]))

		switch op {
		case "end":
			if !inLoop {
				return nil, fmt.Errorf("uasm: line %d: end outside loop", num)
			}
			return out, nil
		case "loop":
			n, err := strconv.Atoi(rest)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("uasm: line %d: bad loop count %q", num, rest)
			}
			body, err := parseBlock(lx, true)
			if err != nil {
				return nil, err
			}
			out = append(out, stmt{block: body, count: n})
		default:
			in, err := parseInstr(op, rest, num)
			if err != nil {
				return nil, err
			}
			out = append(out, stmt{in: in, isIns: true})
		}
	}
}

var arithOps = map[string]isa.Op{
	"iadd": isa.IAdd, "isub": isa.ISub, "ilogic": isa.ILogic,
	"imul": isa.IMul, "idiv": isa.IDiv,
	"fadd": isa.FAdd, "fsub": isa.FSub, "fmul": isa.FMul,
	"fdiv": isa.FDiv, "fmove": isa.FMove,
}

func parseInstr(op, rest string, num int) (isa.Instr, error) {
	fail := func(format string, args ...any) (isa.Instr, error) {
		return isa.Instr{}, fmt.Errorf("uasm: line %d: "+format, append([]any{num}, args...)...)
	}

	if aop, ok := arithOps[op]; ok {
		regs, err := splitOperands(rest, 3)
		if err != nil {
			return fail("%s: %v", op, err)
		}
		var r [3]isa.Reg
		for i, s := range regs {
			if r[i], err = parseReg(s); err != nil {
				return fail("%s: %v", op, err)
			}
		}
		in := isa.ALU(aop, r[0], r[1], r[2])
		if err := in.Validate(); err != nil {
			return fail("%v", err)
		}
		return in, nil
	}

	switch op {
	case "nop":
		return isa.Instr{Op: isa.Nop}, nil
	case "branch":
		return isa.Instr{Op: isa.Branch}, nil
	case "pause":
		return isa.Instr{Op: isa.Pause}, nil

	case "prefetch":
		body, tag, err := splitTag(rest)
		if err != nil {
			return fail("prefetch: %v", err)
		}
		addr, err := parseAddr(body)
		if err != nil {
			return fail("prefetch: %v", err)
		}
		return isa.Pf(addr, tag), nil

	case "load", "store":
		body, tag, err := splitTag(rest)
		if err != nil {
			return fail("%s: %v", op, err)
		}
		parts, err := splitOperands(body, 2)
		if err != nil {
			return fail("%s: %v", op, err)
		}
		reg, err := parseReg(parts[0])
		if err != nil {
			return fail("%s: %v", op, err)
		}
		addr, err := parseAddr(parts[1])
		if err != nil {
			return fail("%s: %v", op, err)
		}
		var in isa.Instr
		if op == "load" {
			in = isa.TaggedLd(reg, addr, tag)
		} else {
			in = isa.St(reg, addr)
			in.Tag = tag
		}
		if err := in.Validate(); err != nil {
			return fail("%v", err)
		}
		return in, nil

	case "flag":
		// flag cN = value
		lhs, rhs, ok := strings.Cut(rest, "=")
		if !ok {
			return fail("flag: want cN = value")
		}
		cell, err := parseCell(strings.TrimSpace(lhs))
		if err != nil {
			return fail("flag: %v", err)
		}
		val, err := strconv.ParseInt(strings.TrimSpace(rhs), 0, 64)
		if err != nil {
			return fail("flag: bad value %q", strings.TrimSpace(rhs))
		}
		return isa.Flag(cell, val, isa.CellAddr(cell)), nil

	case "spin", "rawspin", "halt":
		cell, cmp, val, err := parseCond(rest)
		if err != nil {
			return fail("%s: %v", op, err)
		}
		switch op {
		case "spin":
			return isa.Spin(cell, cmp, val), nil
		case "rawspin":
			return isa.RawSpin(cell, cmp, val), nil
		default:
			return isa.Halt(cell, cmp, val), nil
		}
	}
	return fail("unknown instruction %q", op)
}

// splitOperands splits a comma list, requiring exactly n parts.
func splitOperands(s string, n int) ([]string, error) {
	parts := strings.Split(s, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("want %d operands, got %d", n, len(parts))
	}
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
		if parts[i] == "" {
			return nil, fmt.Errorf("empty operand %d", i+1)
		}
	}
	return parts, nil
}

// splitTag strips a trailing "@N" profiling tag.
func splitTag(s string) (body string, tag isa.Tag, err error) {
	if i := strings.LastIndex(s, "@"); i >= 0 {
		n, perr := strconv.ParseUint(strings.TrimSpace(s[i+1:]), 0, 32)
		if perr != nil {
			return "", 0, fmt.Errorf("bad tag %q", s[i+1:])
		}
		return strings.TrimSpace(s[:i]), isa.Tag(n), nil
	}
	return strings.TrimSpace(s), isa.NoTag, nil
}

func parseReg(s string) (isa.Reg, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if len(s) < 2 {
		return isa.RegNone, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil {
		return isa.RegNone, fmt.Errorf("bad register %q", s)
	}
	switch s[0] {
	case 'r':
		if n < 0 || n >= isa.NumIntRegs {
			return isa.RegNone, fmt.Errorf("integer register %q out of range", s)
		}
		return isa.R(n), nil
	case 'f':
		if n < 0 || n >= isa.NumFPRegs {
			return isa.RegNone, fmt.Errorf("fp register %q out of range", s)
		}
		return isa.F(n), nil
	}
	return isa.RegNone, fmt.Errorf("bad register %q", s)
}

func parseAddr(s string) (uint64, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, fmt.Errorf("address %q must be bracketed", s)
	}
	v, err := strconv.ParseUint(strings.TrimSpace(s[1:len(s)-1]), 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad address %q", s)
	}
	return v, nil
}

func parseCell(s string) (isa.Cell, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if !strings.HasPrefix(s, "c") {
		return isa.NoCell, fmt.Errorf("bad cell %q", s)
	}
	n, err := strconv.ParseUint(s[1:], 0, 32)
	if err != nil || n == 0 {
		return isa.NoCell, fmt.Errorf("bad cell %q (cells are c1, c2, ...)", s)
	}
	return isa.Cell(n), nil
}

func parseCond(s string) (isa.Cell, isa.CmpKind, int64, error) {
	for _, c := range []struct {
		tok string
		cmp isa.CmpKind
	}{{"==", isa.CmpEQ}, {"!=", isa.CmpNE}, {">=", isa.CmpGE}} {
		if lhs, rhs, ok := strings.Cut(s, c.tok); ok {
			cell, err := parseCell(lhs)
			if err != nil {
				return 0, 0, 0, err
			}
			val, err := strconv.ParseInt(strings.TrimSpace(rhs), 0, 64)
			if err != nil {
				return 0, 0, 0, fmt.Errorf("bad comparison value %q", strings.TrimSpace(rhs))
			}
			return cell, c.cmp, val, nil
		}
	}
	return 0, 0, 0, fmt.Errorf("want cN ==|!=|>= value, got %q", s)
}
