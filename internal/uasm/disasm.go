package uasm

import (
	"fmt"
	"strings"

	"smtexplore/internal/isa"
	"smtexplore/internal/trace"
)

// Disassemble renders a finite Program back into assembler text that
// Parse accepts (the round-trip property the tests pin down). Loops are
// not reconstructed — the expansion is emitted flat — so disassembling is
// intended for inspection and for materialising generated workloads, not
// for compression.
func Disassemble(p trace.Program) (string, error) {
	var b strings.Builder
	var derr error
	p(func(in isa.Instr) bool {
		line, err := disasmInstr(in)
		if err != nil {
			derr = err
			return false
		}
		b.WriteString(line)
		b.WriteByte('\n')
		return true
	})
	return b.String(), derr
}

var arithNames = func() map[isa.Op]string {
	m := make(map[isa.Op]string, len(arithOps))
	for name, op := range arithOps {
		m[op] = name
	}
	return m
}()

func disasmInstr(in isa.Instr) (string, error) {
	if name, ok := arithNames[in.Op]; ok {
		return fmt.Sprintf("%s %s, %s, %s", name, regName(in.Dst), regName(in.Src1), regName(in.Src2)), nil
	}
	switch in.Op {
	case isa.Nop:
		return "nop", nil
	case isa.Branch:
		return "branch", nil
	case isa.Pause:
		return "pause", nil
	case isa.Load:
		s := fmt.Sprintf("load %s, [%#x]", regName(in.Dst), in.Addr)
		if in.Tag != isa.NoTag {
			s += fmt.Sprintf(" @%d", in.Tag)
		}
		return s, nil
	case isa.Store:
		s := fmt.Sprintf("store %s, [%#x]", regName(in.Src1), in.Addr)
		if in.Tag != isa.NoTag {
			s += fmt.Sprintf(" @%d", in.Tag)
		}
		return s, nil
	case isa.Prefetch:
		s := fmt.Sprintf("prefetch [%#x]", in.Addr)
		if in.Tag != isa.NoTag {
			s += fmt.Sprintf(" @%d", in.Tag)
		}
		return s, nil
	case isa.FlagStore:
		return fmt.Sprintf("flag c%d = %d", in.Cell, in.Val), nil
	case isa.SpinWait:
		op := "spin"
		if !in.UsePause {
			op = "rawspin"
		}
		return fmt.Sprintf("%s c%d %s %d", op, in.Cell, in.Cmp, in.Val), nil
	case isa.HaltWait:
		return fmt.Sprintf("halt c%d %s %d", in.Cell, in.Cmp, in.Val), nil
	}
	return "", fmt.Errorf("uasm: cannot disassemble op %v", in.Op)
}

// regName renders a register in assembler form. RegNone renders as the
// placeholder f0 to keep stores of untracked sources parseable; callers
// never emit it for operands that matter.
func regName(r isa.Reg) string {
	switch r.Bank() {
	case isa.BankInt:
		return fmt.Sprintf("r%d", int(r)-1)
	case isa.BankFP:
		return fmt.Sprintf("f%d", int(r)-1-isa.NumIntRegs)
	}
	return "f0"
}
