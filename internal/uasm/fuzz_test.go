package uasm

import (
	"testing"

	"smtexplore/internal/isa"
	"smtexplore/internal/trace"
)

// fuzzSeeds are well-formed programs exercising every statement kind, so
// the fuzzer starts from syntax-shaped inputs rather than noise.
var fuzzSeeds = []string{
	"fadd f0, f1, f2\n",
	"iadd r4, r5, r6\nilogic r0, r1, r2\n",
	"load f3, [0x1000]\nload f3, [0x1000] @7\nstore f3, [0x2000]\n",
	"prefetch [0x3000]\nbranch\nnop\npause\n",
	"flag c1 = 42\nspin c1 == 42\nrawspin c2 != 0\nhalt c1 >= 5\n",
	"loop 3\n  fmul f0, f1, f2\n  loop 2\n    idiv r1, r2, r3\n  end\nend\n",
	"# comment\nfadd f0, f1, f2 ; trailing comment\n",
	"loop 100000000\n  nop\nend\n", // loop counts far beyond what tests pull
}

// materialize pulls at most n instructions out of p.
func materialize(p trace.Program, n uint64) []isa.Instr {
	return trace.Collect(trace.Limit(p, n))
}

// FuzzParse asserts the assembler's safety contract on arbitrary input:
// never panic, and on acceptance emit only structurally valid
// instructions (bounded prefix — loops may be astronomically long).
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		for i, in := range materialize(p, 512) {
			if verr := in.Validate(); verr != nil {
				t.Fatalf("accepted program emits invalid instruction %d (%v): %v\nsource:\n%s",
					i, in, verr, src)
			}
		}
	})
}

// FuzzDisasmRoundTrip asserts Parse∘Disassemble is the identity on parsed
// programs: whatever the assembler accepted, the disassembler must render
// back into text the assembler accepts again, yielding the same µops.
func FuzzDisasmRoundTrip(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		first := materialize(p, 256)
		text, err := Disassemble(sliceProgram(first))
		if err != nil {
			t.Fatalf("parsed program does not disassemble: %v\nsource:\n%s", err, src)
		}
		p2, err := Parse(text)
		if err != nil {
			t.Fatalf("disassembly does not reparse: %v\ndisassembly:\n%s", err, text)
		}
		second := materialize(p2, 256)
		if len(first) != len(second) {
			t.Fatalf("round trip changed length: %d -> %d\ndisassembly:\n%s", len(first), len(second), text)
		}
		for i := range first {
			if first[i] != second[i] {
				t.Fatalf("round trip changed instruction %d: %v -> %v", i, first[i], second[i])
			}
		}
	})
}

// FuzzCount asserts the static counter agrees with dynamic emission for
// programs it accepts (bounded: only checked when the count is small
// enough to enumerate).
func FuzzCount(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		n, err := Count(src)
		if err != nil || n > 4096 {
			return
		}
		p, err := Parse(src)
		if err != nil {
			t.Fatalf("Count accepted but Parse rejected: %v\nsource:\n%s", err, src)
		}
		if got := uint64(len(materialize(p, n+1))); got != n {
			t.Fatalf("Count says %d, program emits %d\nsource:\n%s", n, got, src)
		}
	})
}

// sliceProgram replays a materialized instruction slice as a Program.
func sliceProgram(ins []isa.Instr) trace.Program {
	return func(yield func(isa.Instr) bool) {
		for _, in := range ins {
			if !yield(in) {
				return
			}
		}
	}
}
