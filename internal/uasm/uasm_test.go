package uasm

import (
	"strings"
	"testing"

	"smtexplore/internal/isa"
	"smtexplore/internal/smt"
	"smtexplore/internal/trace"
)

func TestParseArithmetic(t *testing.T) {
	p := MustParse(`
		fadd f0, f1, f2
		iadd r3, r4, r5
		fmove f6, f0, f1
	`)
	ins := trace.Collect(p)
	if len(ins) != 3 {
		t.Fatalf("got %d instructions", len(ins))
	}
	if ins[0].Op != isa.FAdd || ins[0].Dst != isa.F(0) || ins[0].Src1 != isa.F(1) {
		t.Errorf("fadd parsed wrong: %v", ins[0])
	}
	if ins[1].Op != isa.IAdd || ins[1].Dst != isa.R(3) {
		t.Errorf("iadd parsed wrong: %v", ins[1])
	}
}

func TestParseMemoryAndTags(t *testing.T) {
	p := MustParse(`
		load  f1, [0x1000]
		load  f2, [4096] @9
		store f1, [0x2000]
	`)
	ins := trace.Collect(p)
	if ins[0].Op != isa.Load || ins[0].Addr != 0x1000 || ins[0].Tag != isa.NoTag {
		t.Errorf("plain load wrong: %v", ins[0])
	}
	if ins[1].Addr != 4096 || ins[1].Tag != 9 {
		t.Errorf("tagged load wrong: %v", ins[1])
	}
	if ins[2].Op != isa.Store || ins[2].Src1 != isa.F(1) {
		t.Errorf("store wrong: %v", ins[2])
	}
}

func TestParseSyncOps(t *testing.T) {
	p := MustParse(`
		flag c1 = 42
		spin c1 == 42
		rawspin c2 != 0
		halt c3 >= 5
		pause
	`)
	ins := trace.Collect(p)
	if ins[0].Op != isa.FlagStore || ins[0].Cell != 1 || ins[0].Val != 42 {
		t.Errorf("flag wrong: %v", ins[0])
	}
	if ins[0].Addr != isa.CellAddr(1) {
		t.Errorf("flag backing address wrong: %#x", ins[0].Addr)
	}
	if ins[1].Op != isa.SpinWait || !ins[1].UsePause || ins[1].Cmp != isa.CmpEQ {
		t.Errorf("spin wrong: %v", ins[1])
	}
	if ins[2].Op != isa.SpinWait || ins[2].UsePause || ins[2].Cmp != isa.CmpNE {
		t.Errorf("rawspin wrong: %v", ins[2])
	}
	if ins[3].Op != isa.HaltWait || ins[3].Cmp != isa.CmpGE || ins[3].Val != 5 {
		t.Errorf("halt wrong: %v", ins[3])
	}
}

func TestLoopsAndNesting(t *testing.T) {
	src := `
	loop 3
	  fadd f0, f1, f2
	  loop 2
	    iadd r0, r1, r2
	  end
	end
	nop
	`
	n, err := Count(src)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3*(1+2)+1 {
		t.Fatalf("count = %d, want 10", n)
	}
	ins := trace.Collect(MustParse(src))
	if len(ins) != 10 {
		t.Fatalf("emitted %d, want 10", len(ins))
	}
	if ins[0].Op != isa.FAdd || ins[1].Op != isa.IAdd || ins[2].Op != isa.IAdd || ins[3].Op != isa.FAdd {
		t.Errorf("loop expansion order wrong: %v %v %v %v", ins[0].Op, ins[1].Op, ins[2].Op, ins[3].Op)
	}
	if ins[9].Op != isa.Nop {
		t.Errorf("trailing nop missing: %v", ins[9])
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	p := MustParse(`
		# a comment
		fadd f0, f1, f2   ; trailing comment

		nop # another
	`)
	if n := trace.Count(p); n != 2 {
		t.Fatalf("count = %d, want 2", n)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"bogus f0, f1, f2":   "unknown instruction",
		"fadd f0, f1":        "want 3 operands",
		"fadd r0, f1, f2":    "not an fp register",
		"load f1, 0x1000":    "must be bracketed",
		"load f99, [0x10]":   "out of range",
		"spin c0 == 1":       "bad cell",
		"spin c1 < 1":        "want cN",
		"loop x\nnop\nend":   "bad loop count",
		"loop 2\nnop":        "unterminated loop",
		"end":                "end outside loop",
		"flag c1 : 3":        "want cN = value",
		"load f1, [0x10] @x": "bad tag",
	}
	for src, wantErr := range cases {
		_, err := Parse(src)
		if err == nil {
			t.Errorf("Parse(%q) accepted", src)
			continue
		}
		if !strings.Contains(err.Error(), wantErr) {
			t.Errorf("Parse(%q) error %q, want containing %q", src, err, wantErr)
		}
		if !strings.Contains(err.Error(), "line ") {
			t.Errorf("Parse(%q) error lacks line number: %q", src, err)
		}
	}
}

func TestAssembledProgramRuns(t *testing.T) {
	producer := MustParse(`
	loop 500
	  fadd f0, f1, f2
	end
	flag c1 = 1
	`)
	consumer := MustParse(`
	spin c1 == 1
	loop 10
	  iadd r0, r1, r2
	end
	`)
	m := smt.New(smt.DefaultConfig())
	m.LoadProgram(0, producer)
	m.LoadProgram(1, consumer)
	res, err := m.Run(5_000_000)
	if err != nil || !res.Completed {
		t.Fatalf("assembled workload failed: err=%v completed=%v", err, res.Completed)
	}
	if m.CellValue(1) != 1 {
		t.Error("flag not published")
	}
}

func TestProgramIsReplayable(t *testing.T) {
	p := MustParse("loop 5\nnop\nend")
	if a, b := trace.Count(p), trace.Count(p); a != b || a != 5 {
		t.Fatalf("replay mismatch: %d vs %d", a, b)
	}
}

func TestParsePrefetch(t *testing.T) {
	ins := trace.Collect(MustParse("prefetch [0x3000]\nprefetch [0x3040] @4"))
	if ins[0].Op != isa.Prefetch || ins[0].Addr != 0x3000 {
		t.Errorf("prefetch wrong: %v", ins[0])
	}
	if ins[1].Tag != 4 {
		t.Errorf("tagged prefetch wrong: %v", ins[1])
	}
	text, err := Disassemble(MustParse("prefetch [0x3000] @4"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(text); err != nil {
		t.Fatalf("prefetch round-trip failed: %v\n%s", err, text)
	}
}
