// Package mem models the data-memory hierarchy of the simulated processor:
// set-associative L1D and L2 caches (shared between the two hardware
// contexts, as on a hyper-threaded Xeon), a DRAM backend, a bounded pool of
// miss-status holding registers (MSHRs), and an optional next-line hardware
// prefetcher.
//
// The model is timing-oriented: caches track line presence and recency, not
// data values. Accesses return a latency and the miss events they raised,
// attributed to the accessing hardware context and to the static
// instruction tag — the substrate for the paper's L2-miss counters and its
// Valgrind-style delinquent-load profiling.
package mem

import "fmt"

// CacheConfig describes one cache level.
type CacheConfig struct {
	// Size is the total capacity in bytes.
	Size int
	// LineSize is the block size in bytes (power of two).
	LineSize int
	// Assoc is the set associativity.
	Assoc int
	// Latency is the hit latency in cycles.
	Latency int
}

// Validate reports configuration errors.
func (c CacheConfig) Validate() error {
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("mem: line size %d is not a positive power of two", c.LineSize)
	}
	if c.Assoc <= 0 {
		return fmt.Errorf("mem: associativity %d is not positive", c.Assoc)
	}
	if c.Size <= 0 || c.Size%(c.LineSize*c.Assoc) != 0 {
		return fmt.Errorf("mem: size %d is not a positive multiple of line*assoc (%d)", c.Size, c.LineSize*c.Assoc)
	}
	sets := c.Size / (c.LineSize * c.Assoc)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("mem: set count %d is not a power of two", sets)
	}
	if c.Latency <= 0 {
		return fmt.Errorf("mem: latency %d is not positive", c.Latency)
	}
	return nil
}

// Sets returns the number of sets implied by the configuration.
func (c CacheConfig) Sets() int { return c.Size / (c.LineSize * c.Assoc) }

type way struct {
	tag     uint64
	valid   bool
	dirty   bool
	lastUse uint64 // LRU stamp
}

// Cache is a single set-associative cache level with true-LRU replacement
// and write-allocate/write-back semantics.
type Cache struct {
	cfg        CacheConfig
	ways       []way // sets*assoc, row-major by set
	setShift   uint  // log2(LineSize)
	setMask    uint64
	stamp      uint64
	accesses   uint64
	misses     uint64
	evictions  uint64
	dirtyEvict uint64
}

// NewCache builds a cache level; it panics on invalid configuration (a
// construction-time programming error, not a runtime condition).
func NewCache(cfg CacheConfig) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Sets()
	c := &Cache{
		cfg:     cfg,
		ways:    make([]way, sets*cfg.Assoc),
		setMask: uint64(sets - 1),
	}
	for ls := cfg.LineSize; ls > 1; ls >>= 1 {
		c.setShift++
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// LineAddr maps a byte address to its line-aligned address.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr &^ (uint64(c.cfg.LineSize) - 1)
}

func (c *Cache) setOf(addr uint64) int {
	return int((addr >> c.setShift) & c.setMask)
}

// Lookup probes the cache for addr; on a hit it refreshes recency and, if
// write, marks the line dirty. It never allocates.
func (c *Cache) Lookup(addr uint64, write bool) bool {
	c.stamp++
	c.accesses++
	set := c.setOf(addr)
	tag := addr >> c.setShift
	base := set * c.cfg.Assoc
	for i := 0; i < c.cfg.Assoc; i++ {
		w := &c.ways[base+i]
		if w.valid && w.tag == tag {
			w.lastUse = c.stamp
			if write {
				w.dirty = true
			}
			return true
		}
	}
	c.misses++
	return false
}

// Contains probes without disturbing recency or statistics.
func (c *Cache) Contains(addr uint64) bool {
	set := c.setOf(addr)
	tag := addr >> c.setShift
	base := set * c.cfg.Assoc
	for i := 0; i < c.cfg.Assoc; i++ {
		w := &c.ways[base+i]
		if w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

// Insert allocates the line holding addr, evicting the LRU way if the set
// is full. It returns the evicted line address and whether anything valid
// was evicted (and was dirty).
func (c *Cache) Insert(addr uint64, write bool) (victim uint64, evicted, dirty bool) {
	c.stamp++
	set := c.setOf(addr)
	tag := addr >> c.setShift
	base := set * c.cfg.Assoc
	lru := base
	for i := 0; i < c.cfg.Assoc; i++ {
		w := &c.ways[base+i]
		if w.valid && w.tag == tag { // already present (racing fills)
			w.lastUse = c.stamp
			if write {
				w.dirty = true
			}
			return 0, false, false
		}
		if !w.valid {
			w.valid, w.tag, w.dirty, w.lastUse = true, tag, write, c.stamp
			return 0, false, false
		}
		if c.ways[lru].lastUse > w.lastUse {
			lru = base + i
		}
	}
	w := &c.ways[lru]
	// The stored tag is addr>>setShift (it retains the set index bits), so
	// the full line address reconstructs by shifting back.
	victim = w.tag << c.setShift
	evicted, dirty = true, w.dirty
	c.evictions++
	if dirty {
		c.dirtyEvict++
	}
	w.tag, w.dirty, w.lastUse = tag, write, c.stamp
	return victim, evicted, dirty
}

// Invalidate drops the line holding addr if present.
func (c *Cache) Invalidate(addr uint64) bool {
	set := c.setOf(addr)
	tag := addr >> c.setShift
	base := set * c.cfg.Assoc
	for i := 0; i < c.cfg.Assoc; i++ {
		w := &c.ways[base+i]
		if w.valid && w.tag == tag {
			w.valid = false
			return true
		}
	}
	return false
}

// Flush invalidates every line.
func (c *Cache) Flush() {
	for i := range c.ways {
		c.ways[i] = way{}
	}
}

// Stats reports accesses, misses and evictions since construction.
func (c *Cache) Stats() (accesses, misses, evictions, dirtyEvictions uint64) {
	return c.accesses, c.misses, c.evictions, c.dirtyEvict
}

// Occupancy returns the number of valid lines, for tests and debugging.
func (c *Cache) Occupancy() int {
	n := 0
	for i := range c.ways {
		if c.ways[i].valid {
			n++
		}
	}
	return n
}
