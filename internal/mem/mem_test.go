package mem

import (
	"testing"
	"testing/quick"

	"smtexplore/internal/isa"
)

func smallCache() *Cache {
	// 4 sets * 2 ways * 64B lines = 512B.
	return NewCache(CacheConfig{Size: 512, LineSize: 64, Assoc: 2, Latency: 2})
}

func TestCacheConfigValidate(t *testing.T) {
	good := CacheConfig{Size: 8 << 10, LineSize: 64, Assoc: 4, Latency: 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []CacheConfig{
		{Size: 8 << 10, LineSize: 48, Assoc: 4, Latency: 2},    // non-pow2 line
		{Size: 8 << 10, LineSize: 64, Assoc: 0, Latency: 2},    // zero assoc
		{Size: 1000, LineSize: 64, Assoc: 4, Latency: 2},       // not multiple
		{Size: 64 * 4 * 3, LineSize: 64, Assoc: 4, Latency: 2}, // 3 sets
		{Size: 8 << 10, LineSize: 64, Assoc: 4, Latency: 0},    // zero latency
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestCacheHitAfterInsert(t *testing.T) {
	c := smallCache()
	if c.Lookup(0x1000, false) {
		t.Fatal("cold cache hit")
	}
	c.Insert(0x1000, false)
	if !c.Lookup(0x1000, false) {
		t.Fatal("miss after insert")
	}
	// Same line, different offset.
	if !c.Lookup(0x103f, false) {
		t.Fatal("miss within line")
	}
	// Next line misses.
	if c.Lookup(0x1040, false) {
		t.Fatal("hit on neighbouring line")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := smallCache() // 4 sets, 2 ways
	// Three lines in set 0: 0x000, 0x100, 0x200 (set = bits 6..7).
	c.Insert(0x000, false)
	c.Insert(0x100, false)
	c.Lookup(0x000, false) // refresh 0x000 → LRU is 0x100
	victim, evicted, _ := c.Insert(0x200, false)
	if !evicted {
		t.Fatal("expected eviction in full set")
	}
	if victim != 0x100 {
		t.Fatalf("evicted %#x, want 0x100 (LRU)", victim)
	}
	if !c.Contains(0x000) || !c.Contains(0x200) || c.Contains(0x100) {
		t.Fatal("post-eviction contents wrong")
	}
}

func TestCacheDirtyEviction(t *testing.T) {
	c := smallCache()
	c.Insert(0x000, true) // dirty
	c.Insert(0x100, false)
	_, evicted, dirty := c.Insert(0x200, false) // evicts 0x000
	if !evicted || !dirty {
		t.Fatalf("evicted=%v dirty=%v, want true/true", evicted, dirty)
	}
	_, _, _, de := c.Stats()
	if de != 1 {
		t.Fatalf("dirty evictions = %d, want 1", de)
	}
}

func TestCacheWriteMarksDirty(t *testing.T) {
	c := smallCache()
	c.Insert(0x000, false)
	c.Lookup(0x000, true) // write hit dirties the line
	c.Insert(0x100, false)
	_, _, dirty := c.Insert(0x200, false)
	if !dirty {
		t.Fatal("write hit did not mark line dirty")
	}
}

func TestCacheInvalidateAndFlush(t *testing.T) {
	c := smallCache()
	c.Insert(0x000, false)
	c.Insert(0x040, false)
	if !c.Invalidate(0x000) {
		t.Fatal("invalidate missed present line")
	}
	if c.Contains(0x000) {
		t.Fatal("line present after invalidate")
	}
	if c.Invalidate(0x000) {
		t.Fatal("invalidate hit absent line")
	}
	c.Flush()
	if c.Occupancy() != 0 {
		t.Fatal("flush left valid lines")
	}
}

func TestCacheOccupancyNeverExceedsCapacity_Property(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := smallCache()
		for _, a := range addrs {
			addr := uint64(a)
			if !c.Lookup(addr, false) {
				c.Insert(addr, false)
			}
		}
		return c.Occupancy() <= 8 // 4 sets * 2 ways
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCacheInclusionAfterAccess_Property(t *testing.T) {
	// Property: immediately after Insert(a), Contains(a).
	f := func(addrs []uint32) bool {
		c := smallCache()
		for _, a := range addrs {
			addr := uint64(a)
			c.Insert(addr, false)
			if !c.Contains(addr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func tinyHierarchy() *Hierarchy {
	cfg := HierarchyConfig{
		L1:         CacheConfig{Size: 512, LineSize: 64, Assoc: 2, Latency: 2},
		L2:         CacheConfig{Size: 4 << 10, LineSize: 64, Assoc: 4, Latency: 18},
		MemLatency: 250,
		MSHRs:      2,
		Prefetch:   false,
	}
	return NewHierarchy(cfg)
}

func TestHierarchyLatencies(t *testing.T) {
	h := tinyHierarchy()
	cold := h.Access(0, 0, 0x10000, false, isa.NoTag)
	if !cold.L1Miss || !cold.L2Miss || cold.Retry {
		t.Fatalf("cold access events = %+v", cold)
	}
	wantCold := 2 + 18 + 250
	if cold.Latency != wantCold {
		t.Fatalf("cold latency = %d, want %d", cold.Latency, wantCold)
	}
	warm := h.Access(600, 0, 0x10000, false, isa.NoTag)
	if warm.L1Miss || warm.Latency != 2 {
		t.Fatalf("warm access = %+v, want L1 hit lat 2", warm)
	}
	// Evict from L1 (same L1 set: L1 has 4 sets → stride 256) but stay in
	// L2; accesses are spaced past the fill latency so MSHRs drain.
	h.Access(1200, 0, 0x10100, false, isa.NoTag)
	h.Access(1800, 0, 0x10200, false, isa.NoTag)
	l2hit := h.Access(2400, 0, 0x10000, false, isa.NoTag)
	if !l2hit.L1Miss || l2hit.L2Miss {
		t.Fatalf("expected L1-miss/L2-hit, got %+v", l2hit)
	}
	if l2hit.Latency != 2+18 {
		t.Fatalf("L2 hit latency = %d, want 20", l2hit.Latency)
	}
}

func TestHierarchyMSHRExhaustion(t *testing.T) {
	h := tinyHierarchy() // 2 MSHRs
	r1 := h.Access(0, 0, 0x00000, false, isa.NoTag)
	r2 := h.Access(0, 0, 0x10000, false, isa.NoTag)
	if r1.Retry || r2.Retry {
		t.Fatal("first two fills should get MSHRs")
	}
	r3 := h.Access(0, 0, 0x20000, false, isa.NoTag)
	if !r3.Retry {
		t.Fatal("third concurrent fill should be rejected (MSHRs full)")
	}
	if h.Thread(0).MSHRRetries != 1 {
		t.Fatalf("retries = %d, want 1", h.Thread(0).MSHRRetries)
	}
	// After the fills complete, a new miss gets an MSHR again.
	later := uint64(0 + 2 + 18 + 251)
	r4 := h.Access(later, 0, 0x20000, false, isa.NoTag)
	if r4.Retry {
		t.Fatal("fill after drain should succeed")
	}
	if h.InflightFills(later) != 1 {
		t.Fatalf("inflight = %d, want 1", h.InflightFills(later))
	}
}

func TestHierarchyMissMerging(t *testing.T) {
	h := tinyHierarchy()
	h.Access(0, 0, 0x40000, false, isa.NoTag)
	// A second miss to the same line while the fill is in flight merges
	// and pays only the remaining latency. With the immediate-fill model
	// the line is already present, so it hits — both behaviours are
	// acceptable; what must hold is that it does not consume a new MSHR.
	h.Access(10, 1, 0x40000, false, isa.NoTag)
	if got := h.InflightFills(10); got != 1 {
		t.Fatalf("inflight fills = %d, want 1 (merged)", got)
	}
}

func TestHierarchyPerThreadAttribution(t *testing.T) {
	h := tinyHierarchy()
	h.Access(0, 0, 0x0000, false, isa.NoTag)
	h.Access(600, 1, 0x8000, false, isa.NoTag)
	h.Access(1200, 1, 0x9000, true, isa.NoTag)
	t0, t1 := h.Thread(0), h.Thread(1)
	if t0.L2Misses != 1 || t0.L2ReadMisses != 1 {
		t.Fatalf("thread0 stats %+v", t0)
	}
	if t1.L2Misses != 2 || t1.L2ReadMisses != 1 {
		t.Fatalf("thread1 stats %+v (write miss must not count as read miss)", t1)
	}
}

func TestHierarchyTagAttribution(t *testing.T) {
	h := tinyHierarchy()
	const hot isa.Tag = 7
	for i := 0; i < 4; i++ {
		h.Access(uint64(i*600), 0, uint64(i)*0x10000, false, hot)
	}
	h.Access(5000, 0, 0x900000, false, isa.Tag(9))
	tags := h.TagMisses()
	if tags[hot] != 4 {
		t.Fatalf("tag 7 misses = %d, want 4", tags[hot])
	}
	if tags[9] != 1 {
		t.Fatalf("tag 9 misses = %d, want 1", tags[9])
	}
}

func TestHierarchyPrefetcher(t *testing.T) {
	cfg := tinyHierarchy().Config()
	cfg.Prefetch = true
	cfg.PrefetchDepth = 2
	cfg.MSHRs = 8
	h := NewHierarchy(cfg)
	// Two consecutive lines establish a stream; the second access triggers
	// prefetch of the next two lines.
	h.Access(0, 0, 0x0000, false, isa.NoTag)
	h.Access(600, 0, 0x0040, false, isa.NoTag)
	issued, useful := h.PrefetchStats()
	if issued != 2 || useful != 0 {
		t.Fatalf("prefetch stats issued=%d useful=%d, want 2/0", issued, useful)
	}
	if !h.L2().Contains(0x80) || !h.L2().Contains(0xc0) {
		t.Fatal("stream-prefetched lines not in L2")
	}
	r := h.Access(1200, 0, 0x0080, false, isa.NoTag) // demand hits the prefetch
	if r.L2Miss {
		t.Fatal("demand on prefetched line missed L2")
	}
	if _, useful = h.PrefetchStats(); useful != 1 {
		t.Fatalf("useful prefetches = %d, want 1", useful)
	}
	// Non-sequential access does not trigger the streamer.
	before, _ := h.PrefetchStats()
	h.Access(1800, 0, 0x90000, false, isa.NoTag)
	after, _ := h.PrefetchStats()
	if after != before {
		t.Error("random access triggered stream prefetch")
	}
	// A prefetch with all MSHRs busy is dropped, not queued.
	h2 := NewHierarchy(HierarchyConfig{
		L1: cfg.L1, L2: cfg.L2, MemLatency: 250, MSHRs: 2,
		Prefetch: true, PrefetchDepth: 2,
	})
	h2.Access(0, 0, 0x0000, false, isa.NoTag)
	// Second sequential demand miss takes the last MSHR; its stream
	// prefetches find none free and are dropped.
	h2.Access(1, 0, 0x0040, false, isa.NoTag)
	if h2.PrefetchSkipped() == 0 {
		t.Error("saturated MSHRs did not drop stream fills")
	}
}

func TestHierarchyInvalidThreadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid context id did not panic")
		}
	}()
	tinyHierarchy().Access(0, 2, 0, false, isa.NoTag)
}

func TestHierarchyConfigValidate(t *testing.T) {
	bad := DefaultHierarchy()
	bad.L1.LineSize = 32
	if err := bad.Validate(); err == nil {
		t.Error("mixed line sizes accepted")
	}
	bad = DefaultHierarchy()
	bad.MemLatency = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero memory latency accepted")
	}
	bad = DefaultHierarchy()
	bad.MSHRs = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero MSHRs accepted")
	}
	if err := DefaultHierarchy().Validate(); err != nil {
		t.Errorf("default hierarchy invalid: %v", err)
	}
}

func TestSequentialWalkMissRate_Property(t *testing.T) {
	// Property: a sequential walk over a region much larger than L2
	// misses L2 once per line (without prefetch), i.e. the demand L2 miss
	// count equals the number of distinct lines touched.
	f := func(seed uint8) bool {
		h := tinyHierarchy()
		lines := 64 + int(seed)%64
		now := uint64(0)
		for i := 0; i < lines; i++ {
			r := h.Access(now, 0, uint64(i)*64+0x100000, false, isa.NoTag)
			now += uint64(r.Latency) + 1 // drain MSHRs between accesses
		}
		return h.Thread(0).L2Misses == uint64(lines)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestL2PortQueueing(t *testing.T) {
	cfg := tinyHierarchy().Config()
	cfg.L2Occupancy = 4
	cfg.MSHRs = 16
	h := NewHierarchy(cfg)
	// Warm two lines into L2 (L1 is 512B/2-way: use same L1 set so both
	// L1-miss later).
	h.Access(0, 0, 0x0000, false, isa.NoTag)
	h.Access(600, 0, 0x10000, false, isa.NoTag)
	h.Access(1200, 0, 0x20000, false, isa.NoTag) // evicts 0x0000 from L1
	// Back-to-back same-cycle L2 hits: the second queues behind the first.
	a := h.Access(2000, 0, 0x0000, false, isa.NoTag)
	b := h.Access(2000, 1, 0x10000, false, isa.NoTag)
	if a.L2Miss || b.L2Miss {
		t.Fatalf("expected L2 hits, got %+v %+v", a, b)
	}
	if b.Latency <= a.Latency {
		t.Errorf("second same-cycle access (%d) not delayed behind first (%d)", b.Latency, a.Latency)
	}
	if h.L2QueueCycles() == 0 {
		t.Error("no queue cycles recorded")
	}
}

func TestL2PortDisabled(t *testing.T) {
	cfg := tinyHierarchy().Config()
	cfg.L2Occupancy = 0
	h := NewHierarchy(cfg)
	h.Access(0, 0, 0x0000, false, isa.NoTag)
	h.Access(0, 1, 0x40000, false, isa.NoTag)
	if h.L2QueueCycles() != 0 {
		t.Error("queueing with occupancy disabled")
	}
}

func TestPendingFillChargesEarlyDemand(t *testing.T) {
	cfg := tinyHierarchy().Config()
	cfg.Prefetch = true
	cfg.PrefetchDepth = 2
	cfg.MSHRs = 16
	h := NewHierarchy(cfg)
	// Establish a stream: lines 0x0 and 0x40 prefetch 0x80, 0xc0.
	h.Access(0, 0, 0x0000, false, isa.NoTag)
	h.Access(600, 0, 0x0040, false, isa.NoTag)
	// Demand line 0x80 immediately: the fill is in flight → partial
	// latency, counted as a demand miss.
	early := h.Access(610, 0, 0x0080, false, isa.NoTag)
	if !early.L2Miss {
		t.Error("early demand on pending fill not counted as a miss")
	}
	if early.Latency <= cfg.L1.Latency+cfg.L2.Latency {
		t.Errorf("early demand paid only %d cycles; fill was still on the bus", early.Latency)
	}
	full := cfg.L1.Latency + cfg.L2.Latency + cfg.MemLatency
	if early.Latency >= full {
		t.Errorf("early demand paid %d ≥ full miss %d: no benefit from the prefetch head start", early.Latency, full)
	}
	if h.PrefetchLate() != 1 {
		t.Errorf("late prefetches = %d, want 1", h.PrefetchLate())
	}
	// Demand long after the fill completed: clean hit, counted useful.
	late := h.Access(5000, 0, 0x00c0, false, isa.NoTag)
	if late.L2Miss {
		t.Error("completed prefetch still charged as a miss")
	}
	if _, useful := h.PrefetchStats(); useful != 1 {
		t.Errorf("useful prefetches = %d, want 1", useful)
	}
}

func TestMultiStreamTracking(t *testing.T) {
	cfg := tinyHierarchy().Config()
	cfg.Prefetch = true
	cfg.PrefetchDepth = 1
	cfg.MSHRs = 16
	h := NewHierarchy(cfg)
	// Interleave three distinct sequential streams far apart; all three
	// must be followed (the single-tracker design would thrash).
	bases := []uint64{0x100000, 0x200000, 0x300000}
	now := uint64(0)
	for step := 0; step < 4; step++ {
		for _, b := range bases {
			h.Access(now, 0, b+uint64(step)*64, false, isa.NoTag)
			now += 600
		}
	}
	issued, _ := h.PrefetchStats()
	if issued < 6 {
		t.Errorf("interleaved streams issued only %d prefetches; trackers thrashed", issued)
	}
}
