package mem

import (
	"fmt"

	"smtexplore/internal/isa"
)

// HierarchyConfig describes the full data-memory system.
type HierarchyConfig struct {
	L1 CacheConfig
	L2 CacheConfig
	// MemLatency is the DRAM access latency in cycles beyond L2.
	MemLatency int
	// MSHRs bounds the number of outstanding line fills from memory; an
	// access that misses L2 when all MSHRs are busy must be replayed.
	MSHRs int
	// L2Occupancy is the number of cycles the unified L2 port is busy per
	// access (lookup or fill). Both logical processors share it, so
	// L1-thrashing dual-thread workloads queue here — a first-order
	// contention effect of hyper-threading. Zero means unlimited
	// bandwidth.
	L2Occupancy int
	// Prefetch enables the hardware stream prefetcher: sequential line
	// walks detected at the L2 trigger fills of the next PrefetchDepth
	// lines. Prefetch fills compete with demand misses for MSHRs and the
	// L2 port, so two contexts streaming concurrently saturate the
	// memory interface the way they did on the modelled front-side bus.
	Prefetch bool
	// PrefetchDepth is how many lines ahead the streamer runs (default 2
	// when zero).
	PrefetchDepth int
}

// DefaultHierarchy returns the NetBurst-like geometry used throughout the
// reproduction: 8 KB/4-way L1D (lat 2), 512 KB/8-way L2 (lat 18), 250-cycle
// DRAM, 8 MSHRs, hardware prefetch on.
func DefaultHierarchy() HierarchyConfig {
	return HierarchyConfig{
		L1:            CacheConfig{Size: 8 << 10, LineSize: 64, Assoc: 4, Latency: 2},
		L2:            CacheConfig{Size: 512 << 10, LineSize: 64, Assoc: 8, Latency: 18},
		MemLatency:    250,
		MSHRs:         16,
		L2Occupancy:   2,
		Prefetch:      true,
		PrefetchDepth: 8,
	}
}

// Validate reports configuration errors.
func (hc HierarchyConfig) Validate() error {
	if err := hc.L1.Validate(); err != nil {
		return fmt.Errorf("L1: %w", err)
	}
	if err := hc.L2.Validate(); err != nil {
		return fmt.Errorf("L2: %w", err)
	}
	if hc.L1.LineSize != hc.L2.LineSize {
		return fmt.Errorf("mem: L1 line %d != L2 line %d (mixed line sizes unsupported)", hc.L1.LineSize, hc.L2.LineSize)
	}
	if hc.MemLatency <= 0 {
		return fmt.Errorf("mem: memory latency %d not positive", hc.MemLatency)
	}
	if hc.MSHRs <= 0 {
		return fmt.Errorf("mem: MSHR count %d not positive", hc.MSHRs)
	}
	return nil
}

// AccessResult reports the outcome of one demand access.
type AccessResult struct {
	// Latency is the total access latency in cycles (hit pipeline plus
	// any miss handling). Zero when Retry is set.
	Latency int
	// L1Miss and L2Miss flag the miss events raised.
	L1Miss bool
	L2Miss bool
	// Retry means no MSHR was available for a memory fill; the access
	// did not happen and must be replayed by the scheduler.
	Retry bool
}

// mshr tracks an in-flight line fill from memory.
type mshr struct {
	line  uint64
	ready uint64 // cycle at which the fill completes
	inUse bool
}

// ThreadStats aggregates per-hardware-context memory events.
type ThreadStats struct {
	Accesses     uint64
	L1Misses     uint64
	L2Misses     uint64 // demand read+write L2 misses, as seen by the bus unit
	L2ReadMisses uint64
	MSHRRetries  uint64
}

// Hierarchy is the shared L1D+L2+DRAM system. Both hardware contexts of
// the SMT core access the same instance, so they cooperate and conflict in
// cache exactly as the paper's threads do.
type Hierarchy struct {
	cfg HierarchyConfig
	l1  *Cache
	l2  *Cache

	mshrs []mshr

	threads [2]ThreadStats
	// tagL2Miss attributes demand L2 misses to static instruction sites
	// (the Valgrind-analogue used to find delinquent loads).
	tagL2Miss map[isa.Tag]uint64

	prefIssued  uint64
	prefUseful  uint64
	prefLate    uint64 // demanded before the fill arrived
	prefSkipped uint64 // stream fills dropped because no MSHR was free
	// pendingFill records prefetched lines whose fill is still in flight:
	// a demand access arriving early pays the remaining latency and is
	// counted as an exposed (demand) miss, like a squashed/merged bus
	// request on the real machine.
	pendingFill map[uint64]uint64
	// streams holds each context's active sequential-stream trackers
	// (the modelled front-side-bus prefetcher follows several independent
	// streams per logical processor, as scientific kernels interleave
	// multiple array walks).
	streams [2][streamTrackers]streamState
	// streamClock drives round-robin replacement of stream trackers.
	streamClock [2]int
	// l2NextFree is the cycle at which the shared L2 port frees up.
	l2NextFree uint64
	// l2QueueCycles accumulates the queuing delay demand accesses paid
	// for the L2 port.
	l2QueueCycles uint64
}

// streamTrackers is the number of concurrent streams followed per context.
const streamTrackers = 8

// streamState is one sequential-stream tracker: the line expected next.
type streamState struct {
	expect uint64
	live   bool
}

// NewHierarchy builds the memory system; it panics on invalid
// configuration.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Hierarchy{
		cfg:         cfg,
		l1:          NewCache(cfg.L1),
		l2:          NewCache(cfg.L2),
		mshrs:       make([]mshr, cfg.MSHRs),
		tagL2Miss:   make(map[isa.Tag]uint64),
		pendingFill: make(map[uint64]uint64),
	}
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// L1 and L2 expose the cache levels (read-only use intended).
func (h *Hierarchy) L1() *Cache { return h.l1 }
func (h *Hierarchy) L2() *Cache { return h.l2 }

// Access performs a demand access by hardware context tid at cycle now.
// write selects store semantics (write-allocate, mark dirty). tag
// attributes any L2 miss to a static instruction site.
func (h *Hierarchy) Access(now uint64, tid int, addr uint64, write bool, tag isa.Tag) AccessResult {
	if tid < 0 || tid > 1 {
		panic(fmt.Sprintf("mem: invalid hardware context %d", tid))
	}
	ts := &h.threads[tid]
	ts.Accesses++

	line := h.l1.LineAddr(addr)

	if h.l1.Lookup(addr, write) {
		return AccessResult{Latency: h.cfg.L1.Latency}
	}
	ts.L1Misses++

	// The unified L2 port is shared by both logical processors (and the
	// stream prefetcher): queue for it.
	l2Wait := h.claimL2Port(now)
	h.l2QueueCycles += uint64(l2Wait)

	if h.l2.Lookup(addr, write) {
		extra := 0
		if ready, pending := h.pendingFill[line]; pending {
			delete(h.pendingFill, line)
			if ready > now {
				// The stream fill is still on the bus: the demand merges
				// with it, pays the remaining latency, and shows up as a
				// demand miss on the monitoring counters.
				extra = int(ready - now)
				h.prefLate++
				ts.L2Misses++
				if !write {
					ts.L2ReadMisses++
				}
				if tag != isa.NoTag {
					h.tagL2Miss[tag]++
				}
			} else {
				h.prefUseful++
			}
		}
		h.l1.Insert(addr, write)
		h.streamCheck(now, tid, line)
		return AccessResult{
			Latency: h.cfg.L1.Latency + l2Wait + h.cfg.L2.Latency + extra,
			L1Miss:  true,
			L2Miss:  extra > 0,
		}
	}

	// L2 miss: a memory fill is required. Merge with an in-flight fill
	// of the same line if one exists; otherwise claim a free MSHR.
	remaining, merged := h.mergeInflight(now, line)
	if !merged {
		m := h.freeMSHR(now)
		if m == nil {
			ts.MSHRRetries++
			return AccessResult{Retry: true}
		}
		remaining = h.cfg.MemLatency
		*m = mshr{line: line, ready: now + uint64(remaining), inUse: true}
	}

	ts.L2Misses++
	if !write {
		ts.L2ReadMisses++
	}
	if tag != isa.NoTag {
		h.tagL2Miss[tag]++
	}

	// Immediate-fill model: the line is installed now and the requester
	// charged the full latency. Subsequent accesses therefore hit, which
	// is why merge bookkeeping above is what enforces MSHR pressure.
	h.l2.Insert(addr, write)
	h.l1.Insert(addr, write)
	delete(h.pendingFill, line)
	h.streamCheck(now, tid, line)

	return AccessResult{
		Latency: h.cfg.L1.Latency + l2Wait + h.cfg.L2.Latency + remaining,
		L1Miss:  true,
		L2Miss:  true,
	}
}

// claimL2Port reserves the shared L2 port and returns the queuing delay.
func (h *Hierarchy) claimL2Port(now uint64) int {
	if h.cfg.L2Occupancy <= 0 {
		return 0
	}
	start := now
	if h.l2NextFree > start {
		start = h.l2NextFree
	}
	h.l2NextFree = start + uint64(h.cfg.L2Occupancy)
	return int(start - now)
}

// L2QueueCycles reports the accumulated L2-port queuing delay.
func (h *Hierarchy) L2QueueCycles() uint64 { return h.l2QueueCycles }

// mergeInflight finds an in-flight fill of line and returns its remaining
// latency.
func (h *Hierarchy) mergeInflight(now uint64, line uint64) (remaining int, ok bool) {
	for i := range h.mshrs {
		m := &h.mshrs[i]
		if m.inUse && m.ready > now && m.line == line {
			return int(m.ready - now), true
		}
	}
	return 0, false
}

// busyMSHRs counts fills still in flight at now.
func (h *Hierarchy) busyMSHRs(now uint64) int {
	n := 0
	for i := range h.mshrs {
		if h.mshrs[i].inUse && h.mshrs[i].ready > now {
			n++
		}
	}
	return n
}

func (h *Hierarchy) freeMSHR(now uint64) *mshr {
	for i := range h.mshrs {
		m := &h.mshrs[i]
		if !m.inUse || m.ready <= now {
			return m
		}
	}
	return nil
}

// InflightFills reports the number of busy MSHRs at cycle now (tests and
// debugging).
func (h *Hierarchy) InflightFills(now uint64) int {
	n := 0
	for i := range h.mshrs {
		if h.mshrs[i].inUse && h.mshrs[i].ready > now {
			n++
		}
	}
	return n
}

// streamCheck advances the per-context sequential-stream detectors and
// issues stream prefetches when the context continues one of its tracked
// line walks. A non-matching access trains a fresh tracker (round-robin
// replacement), so up to streamTrackers interleaved array walks are
// followed concurrently per logical processor.
func (h *Hierarchy) streamCheck(now uint64, tid int, line uint64) {
	if !h.cfg.Prefetch {
		return
	}
	ls := uint64(h.cfg.L1.LineSize)
	trackers := &h.streams[tid]
	for i := range trackers {
		st := &trackers[i]
		if !st.live || st.expect != line {
			continue
		}
		// Stream continues: prefetch ahead and advance.
		depth := h.cfg.PrefetchDepth
		if depth <= 0 {
			depth = 2
		}
		for k := 1; k <= depth; k++ {
			h.prefetchLine(now, line+uint64(k)*ls)
		}
		st.expect = line + ls
		return
	}
	// No tracker matched: train a new stream on this line.
	slot := h.streamClock[tid] % streamTrackers
	h.streamClock[tid]++
	trackers[slot] = streamState{expect: line + ls, live: true}
}

// prefetchLine installs line into L2 only (hardware prefetchers on the
// modelled core do not pollute L1). A prefetch consumes an MSHR for the
// full memory latency — stream fills and demand misses share the memory
// interface — but the line is optimistically available immediately; when
// no MSHR is free the fill is dropped.
func (h *Hierarchy) prefetchLine(now uint64, line uint64) {
	if h.l2.Contains(line) {
		return
	}
	// Stream fills are low priority: they throttle when the MSHR file is
	// half full, leaving headroom for demand misses (real prefetchers
	// yield to demand traffic rather than starve it).
	if h.busyMSHRs(now) >= len(h.mshrs)*3/4 {
		h.prefSkipped++
		return
	}
	m := h.freeMSHR(now)
	if m == nil {
		h.prefSkipped++
		return
	}
	*m = mshr{line: line, ready: now + uint64(h.cfg.MemLatency), inUse: true}
	h.claimL2Port(now) // the fill occupies the shared L2 port too
	h.prefIssued++
	h.l2.Insert(line, false)
	h.pendingFill[line] = now + uint64(h.cfg.MemLatency)
}

// SoftwarePrefetch models a prefetch performed by a helper thread's load:
// it behaves as a demand read access for timing and occupancy but is
// attributed to the prefetching context.
func (h *Hierarchy) SoftwarePrefetch(now uint64, tid int, addr uint64, tag isa.Tag) AccessResult {
	return h.Access(now, tid, addr, false, tag)
}

// Thread returns the per-context statistics.
func (h *Hierarchy) Thread(tid int) ThreadStats { return h.threads[tid] }

// TagMisses returns the demand L2 misses attributed to each static site,
// the input to delinquent-load selection.
func (h *Hierarchy) TagMisses() map[isa.Tag]uint64 {
	out := make(map[isa.Tag]uint64, len(h.tagL2Miss))
	for k, v := range h.tagL2Miss {
		out[k] = v
	}
	return out
}

// PrefetchStats reports hardware-prefetch activity: fills issued, fills
// that fully hid the miss, and fills demanded before they arrived.
func (h *Hierarchy) PrefetchStats() (issued, useful uint64) {
	return h.prefIssued, h.prefUseful
}

// PrefetchLate reports demand accesses that merged with an in-flight
// stream fill (partial hiding only).
func (h *Hierarchy) PrefetchLate() uint64 { return h.prefLate }

// PrefetchSkipped reports stream fills dropped for lack of MSHRs — the
// signature of a saturated memory interface.
func (h *Hierarchy) PrefetchSkipped() uint64 { return h.prefSkipped }
