package mem

import (
	"fmt"

	"smtexplore/internal/isa"
)

// This file exposes the mutable simulation state of the memory system as
// plain exported records so a paused machine can be checkpointed and
// later resumed bit-for-bit. Configuration is deliberately not part of
// the state: a restore target is always built from the same
// HierarchyConfig, and SetState verifies the geometry matches instead of
// trying to reconcile two configs.

// WayState is the serializable image of one cache way.
type WayState struct {
	Tag     uint64 `json:"tag"`
	Valid   bool   `json:"valid,omitempty"`
	Dirty   bool   `json:"dirty,omitempty"`
	LastUse uint64 `json:"last_use,omitempty"`
}

// CacheState is the full mutable state of one cache level: every way
// (including invalid ones, whose LRU stamps still order replacement) and
// the statistics counters.
type CacheState struct {
	Ways       []WayState `json:"ways"`
	Stamp      uint64     `json:"stamp"`
	Accesses   uint64     `json:"accesses"`
	Misses     uint64     `json:"misses"`
	Evictions  uint64     `json:"evictions"`
	DirtyEvict uint64     `json:"dirty_evict"`
}

// State captures the cache's mutable state.
func (c *Cache) State() CacheState {
	s := CacheState{
		Ways:       make([]WayState, len(c.ways)),
		Stamp:      c.stamp,
		Accesses:   c.accesses,
		Misses:     c.misses,
		Evictions:  c.evictions,
		DirtyEvict: c.dirtyEvict,
	}
	for i, w := range c.ways {
		s.Ways[i] = WayState{Tag: w.tag, Valid: w.valid, Dirty: w.dirty, LastUse: w.lastUse}
	}
	return s
}

// SetState overwrites the cache's mutable state with a capture taken
// from an identically configured cache.
func (c *Cache) SetState(s CacheState) error {
	if len(s.Ways) != len(c.ways) {
		return fmt.Errorf("mem: cache state has %d ways, cache has %d", len(s.Ways), len(c.ways))
	}
	for i, w := range s.Ways {
		c.ways[i] = way{tag: w.Tag, valid: w.Valid, dirty: w.Dirty, lastUse: w.LastUse}
	}
	c.stamp = s.Stamp
	c.accesses = s.Accesses
	c.misses = s.Misses
	c.evictions = s.Evictions
	c.dirtyEvict = s.DirtyEvict
	return nil
}

// MSHRState is the serializable image of one miss-status holding
// register.
type MSHRState struct {
	Line  uint64 `json:"line"`
	Ready uint64 `json:"ready"`
	InUse bool   `json:"in_use,omitempty"`
}

// StreamStateSnap is one sequential-stream tracker of the prefetcher.
type StreamStateSnap struct {
	Expect uint64 `json:"expect"`
	Live   bool   `json:"live,omitempty"`
}

// HierarchyState is the full mutable state of the memory system.
type HierarchyState struct {
	L1            CacheState                         `json:"l1"`
	L2            CacheState                         `json:"l2"`
	MSHRs         []MSHRState                        `json:"mshrs"`
	Threads       [2]ThreadStats                     `json:"threads"`
	TagL2Miss     map[isa.Tag]uint64                 `json:"tag_l2_miss,omitempty"`
	PrefIssued    uint64                             `json:"pref_issued"`
	PrefUseful    uint64                             `json:"pref_useful"`
	PrefLate      uint64                             `json:"pref_late"`
	PrefSkipped   uint64                             `json:"pref_skipped"`
	PendingFill   map[uint64]uint64                  `json:"pending_fill,omitempty"`
	Streams       [2][streamTrackers]StreamStateSnap `json:"streams"`
	StreamClock   [2]int                             `json:"stream_clock"`
	L2NextFree    uint64                             `json:"l2_next_free"`
	L2QueueCycles uint64                             `json:"l2_queue_cycles"`
}

// State captures the hierarchy's mutable state.
func (h *Hierarchy) State() HierarchyState {
	s := HierarchyState{
		L1:            h.l1.State(),
		L2:            h.l2.State(),
		MSHRs:         make([]MSHRState, len(h.mshrs)),
		Threads:       h.threads,
		PrefIssued:    h.prefIssued,
		PrefUseful:    h.prefUseful,
		PrefLate:      h.prefLate,
		PrefSkipped:   h.prefSkipped,
		StreamClock:   h.streamClock,
		L2NextFree:    h.l2NextFree,
		L2QueueCycles: h.l2QueueCycles,
	}
	for i, m := range h.mshrs {
		s.MSHRs[i] = MSHRState{Line: m.line, Ready: m.ready, InUse: m.inUse}
	}
	if len(h.tagL2Miss) > 0 {
		s.TagL2Miss = make(map[isa.Tag]uint64, len(h.tagL2Miss))
		for k, v := range h.tagL2Miss {
			s.TagL2Miss[k] = v
		}
	}
	if len(h.pendingFill) > 0 {
		s.PendingFill = make(map[uint64]uint64, len(h.pendingFill))
		for k, v := range h.pendingFill {
			s.PendingFill[k] = v
		}
	}
	for tid := range h.streams {
		for i, st := range h.streams[tid] {
			s.Streams[tid][i] = StreamStateSnap{Expect: st.expect, Live: st.live}
		}
	}
	return s
}

// SetState overwrites the hierarchy's mutable state with a capture taken
// from an identically configured hierarchy.
func (h *Hierarchy) SetState(s HierarchyState) error {
	if len(s.MSHRs) != len(h.mshrs) {
		return fmt.Errorf("mem: hierarchy state has %d MSHRs, hierarchy has %d", len(s.MSHRs), len(h.mshrs))
	}
	if err := h.l1.SetState(s.L1); err != nil {
		return fmt.Errorf("L1: %w", err)
	}
	if err := h.l2.SetState(s.L2); err != nil {
		return fmt.Errorf("L2: %w", err)
	}
	for i, m := range s.MSHRs {
		h.mshrs[i] = mshr{line: m.Line, ready: m.Ready, inUse: m.InUse}
	}
	h.threads = s.Threads
	h.tagL2Miss = make(map[isa.Tag]uint64, len(s.TagL2Miss))
	for k, v := range s.TagL2Miss {
		h.tagL2Miss[k] = v
	}
	h.prefIssued = s.PrefIssued
	h.prefUseful = s.PrefUseful
	h.prefLate = s.PrefLate
	h.prefSkipped = s.PrefSkipped
	h.pendingFill = make(map[uint64]uint64, len(s.PendingFill))
	for k, v := range s.PendingFill {
		h.pendingFill[k] = v
	}
	for tid := range h.streams {
		for i, st := range s.Streams[tid] {
			h.streams[tid][i] = streamState{expect: st.Expect, live: st.Live}
		}
	}
	h.streamClock = s.StreamClock
	h.l2NextFree = s.L2NextFree
	h.l2QueueCycles = s.L2QueueCycles
	return nil
}
