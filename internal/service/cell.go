// Package service exposes the reproduction's simulator as a long-running
// job service: clients submit batches of cells — the same independent,
// content-addressable units the figure harnesses fan out — and poll or
// stream progress while a bounded queue of workers executes them through
// the shared runner cache (optionally backed by a disk store, so results
// survive restarts and are shared with the CLI tools).
//
// The job/cell model maps directly onto the paper's experiment grid: a
// stream cell is one Figure 1/2 measurement (one or two co-executed
// streams over a cycle window), a kernel cell is one Figure 3/4/5 point
// (kernel × mode × size), and a harness cell regenerates a whole named
// figure or table with byte-identical output to the corresponding CLI.
package service

import (
	"fmt"
	"strings"

	"smtexplore/internal/experiments"
	"smtexplore/internal/kernels"
	"smtexplore/internal/streams"
)

// Cell types.
const (
	TypeStream  = "stream"
	TypeKernel  = "kernel"
	TypeHarness = "harness"
)

// StreamSpec names one synthetic stream of a stream cell.
type StreamSpec struct {
	// Kind is the stream name ("fadd", "iload", "fadd-mul", …).
	Kind string `json:"kind"`
	// ILP is the paper's ILP degree: "min", "med" or "max" (also
	// accepted: "1", "3", "6" and the "minILP" long forms). Empty means
	// "max".
	ILP string `json:"ilp,omitempty"`
}

// CellSpec describes one unit of simulation work. Exactly the fields of
// the chosen type are consulted.
type CellSpec struct {
	// Type selects the cell kind: "stream", "kernel" or "harness".
	Type string `json:"type"`

	// Streams (stream cells) are the co-executed streams; the number of
	// streams is validated inside the cell (a bad count fails that cell,
	// not the batch).
	Streams []StreamSpec `json:"streams,omitempty"`
	// Window (stream cells) is the measurement window in cycles;
	// 0 means the harness default (experiments.StreamWindowCycles).
	Window uint64 `json:"window,omitempty"`

	// Kernel (kernel cells) is "mm", "lu", "cg" or "bt".
	Kernel string `json:"kernel,omitempty"`
	// Mode (kernel cells) is the execution mode ("serial", "tlp-fine",
	// …). Empty means "serial".
	Mode string `json:"mode,omitempty"`
	// Size (kernel cells) is the problem size: the matrix dimension for
	// mm/lu (required), N for cg and G for bt (0 = instance default).
	Size int `json:"size,omitempty"`

	// Harness (harness cells) names a figure or study: "fig1", "fig2a",
	// "fig2b", "fig2c", "fig3", "fig4", "fig5cg", "fig5bt", "table1",
	// "sync", "span", "partition" or "selective".
	Harness string `json:"harness,omitempty"`
	// Sizes (harness cells) overrides the mm/lu sweep sizes of "fig3"
	// and "fig4".
	Sizes []int `json:"sizes,omitempty"`

	// Observe requests per-cell observability artifacts (pipeline trace,
	// occupancy CSV, metrics JSON); stream and kernel cells only, and
	// only when the service has an artifact directory. Observed cells
	// bypass the result cache — a cache hit has nothing to trace.
	Observe bool `json:"observe,omitempty"`
}

// Cell states. A cell is "pending" until a worker picks it up and
// terminal once "done", "failed" or "cancelled". "preempted" is a
// checkpointable cell that yielded at a pause point (its job goes back
// to the queue and the cell to pending); "resumed" appears only as an
// event, marking a cell that picked up from its checkpoint instead of
// cycle zero.
const (
	CellPending   = "pending"
	CellRunning   = "running"
	CellDone      = "done"
	CellFailed    = "failed"
	CellCancelled = "cancelled"
	CellPreempted = "preempted"
	CellResumed   = "resumed"
)

// CellResult is the outcome of one cell. Exactly one of CPI, Kernel or
// Text is populated on success, matching the cell type.
type CellResult struct {
	Index int    `json:"index"`
	Label string `json:"label"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`

	// CPI is the per-context CPI of a stream cell.
	CPI []float64 `json:"cpi,omitempty"`
	// Kernel is the monitored-event row of a kernel cell.
	Kernel *experiments.KernelMetrics `json:"kernel,omitempty"`
	// Text is the formatted output of a harness cell — byte-identical
	// to the corresponding CLI invocation.
	Text string `json:"text,omitempty"`

	// Artifacts lists the observability files of an observed cell,
	// served under /v1/jobs/{id}/cells/{index}/artifacts/{name}.
	Artifacts []string `json:"artifacts,omitempty"`
}

// parseKind resolves a stream-kind name.
func parseKind(name string) (streams.Kind, error) {
	for _, k := range streams.All() {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown stream kind %q", name)
}

// parseILP resolves an ILP-degree name; empty means max, as in the
// paper's headline configuration.
func parseILP(name string) (streams.ILP, error) {
	switch strings.TrimSuffix(name, "ILP") {
	case "", "max", "6":
		return streams.MaxILP, nil
	case "med", "3":
		return streams.MedILP, nil
	case "min", "1":
		return streams.MinILP, nil
	}
	return 0, fmt.Errorf("unknown ILP degree %q (want min, med or max)", name)
}

// parseMode resolves an execution-mode name; empty means serial.
func parseMode(name string) (kernels.Mode, error) {
	if name == "" {
		return kernels.Serial, nil
	}
	for _, m := range kernels.AllModes() {
		if m.String() == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown mode %q", name)
}

// streamSpecs resolves the cell's stream list into harness specs.
func (c CellSpec) streamSpecs() ([]streams.Spec, error) {
	out := make([]streams.Spec, len(c.Streams))
	for i, s := range c.Streams {
		kind, err := parseKind(s.Kind)
		if err != nil {
			return nil, err
		}
		ilp, err := parseILP(s.ILP)
		if err != nil {
			return nil, err
		}
		out[i] = streams.Spec{Kind: kind, ILP: ilp}
	}
	return out, nil
}

// window returns the effective measurement window of a stream cell.
func (c CellSpec) window() uint64 {
	if c.Window == 0 {
		return experiments.StreamWindowCycles
	}
	return c.Window
}

// Validate checks everything knowable without running: the type, the
// name-shaped fields (stream kinds, ILP degrees, kernel and mode names,
// harness names) and the observe constraints. Semantic constraints that
// the harness itself enforces — stream counts, matrix sizes — are left
// to cell execution so one bad cell fails that cell, not the batch.
func (c CellSpec) Validate(allowObserve bool) error {
	switch c.Type {
	case TypeStream:
		if len(c.Streams) == 0 {
			return fmt.Errorf("stream cell needs at least one stream")
		}
		if _, err := c.streamSpecs(); err != nil {
			return err
		}
	case TypeKernel:
		switch c.Kernel {
		case "mm", "lu", "cg", "bt":
		default:
			return fmt.Errorf("unknown kernel %q (want mm, lu, cg or bt)", c.Kernel)
		}
		if _, err := parseMode(c.Mode); err != nil {
			return err
		}
	case TypeHarness:
		if _, ok := harnesses[c.Harness]; !ok {
			return fmt.Errorf("unknown harness %q", c.Harness)
		}
		if c.Observe {
			return fmt.Errorf("observe is only supported for stream and kernel cells")
		}
	default:
		return fmt.Errorf("unknown cell type %q (want stream, kernel or harness)", c.Type)
	}
	if c.Observe && !allowObserve {
		return fmt.Errorf("observe requested but the service has no artifact directory")
	}
	return nil
}

// Label names the cell for status displays and event streams.
func (c CellSpec) Label() string {
	switch c.Type {
	case TypeStream:
		parts := make([]string, len(c.Streams))
		for i, s := range c.Streams {
			ilp, err := parseILP(s.ILP)
			if err != nil {
				parts[i] = s.Kind + "-?"
				continue
			}
			parts[i] = fmt.Sprintf("%s-%v", s.Kind, ilp)
		}
		return fmt.Sprintf("stream:%s@%d", strings.Join(parts, "+"), c.window())
	case TypeKernel:
		mode := c.Mode
		if mode == "" {
			mode = kernels.Serial.String()
		}
		if c.Size > 0 {
			return fmt.Sprintf("kernel:%s/%s/N=%d", c.Kernel, mode, c.Size)
		}
		return fmt.Sprintf("kernel:%s/%s", c.Kernel, mode)
	case TypeHarness:
		return "harness:" + c.Harness
	}
	return "cell:?"
}
