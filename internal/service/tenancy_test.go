package service

// Tests for the admission half of multi-tenancy: quota refusals with
// quota-specific causes, the EWMA-derived Retry-After hint, the
// X-Tenant HTTP path, per-tenant metrics, and — the compatibility
// contract — that a service with no tenant configuration behaves
// exactly as before.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"smtexplore/internal/store"
	"smtexplore/internal/tenant"
)

// slowUntilReleased builds a cell fn that blocks until release is
// closed, so tests can pin jobs in the live set deterministically.
func slowUntilReleased(release <-chan struct{}) func(ctx context.Context, spec CellSpec, _ string) CellResult {
	return func(ctx context.Context, spec CellSpec, _ string) CellResult {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return CellResult{Label: spec.Label(), State: CellDone, CPI: []float64{1}}
	}
}

func TestQuotaMaxQueuedJobs(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	reg := tenant.NewRegistry(map[string]tenant.Config{
		"capped": {MaxQueuedJobs: 2},
	})
	s := stubService(Config{MaxActive: 1, QueueDepth: 16, Tenants: reg}, slowUntilReleased(release))
	defer s.Close()

	// One job runs (leaves the queue), two sit queued — at quota.
	j, err := s.SubmitWith([]CellSpec{validSpec()}, SubmitOptions{Tenant: "capped"})
	if err != nil {
		t.Fatalf("first submit refused: %v", err)
	}
	waitState(t, j, JobRunning)
	for i := 0; i < 2; i++ {
		if _, err := s.SubmitWith([]CellSpec{validSpec()}, SubmitOptions{Tenant: "capped"}); err != nil {
			t.Fatalf("submit %d refused below quota: %v", i, err)
		}
	}
	waitQueued(t, s, "capped", 2)
	_, err = s.SubmitWith([]CellSpec{validSpec()}, SubmitOptions{Tenant: "capped"})
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Cause != QuotaQueuedJobs {
		t.Fatalf("submit over queued-jobs quota: err=%v, want QuotaError(%s)", err, QuotaQueuedJobs)
	}
	// Another tenant is unaffected by capped's quota.
	if _, err := s.SubmitWith([]CellSpec{validSpec()}, SubmitOptions{Tenant: "free"}); err != nil {
		t.Fatalf("unrelated tenant refused: %v", err)
	}
}

// waitQueued waits for a tenant's queued depth to settle at want.
func waitQueued(t *testing.T, s *Service, tn string, want int) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for s.queue.lenTenant(tn) != want {
		select {
		case <-deadline:
			t.Fatalf("tenant %s queue depth stuck at %d, want %d", tn, s.queue.lenTenant(tn), want)
		case <-time.After(time.Millisecond):
		}
	}
}

func TestQuotaMaxActiveCells(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	reg := tenant.NewRegistry(map[string]tenant.Config{
		"capped": {MaxActiveCells: 3},
	})
	s := stubService(Config{MaxActive: 1, QueueDepth: 16, Tenants: reg}, slowUntilReleased(release))
	defer s.Close()

	if _, err := s.SubmitWith([]CellSpec{validSpec(), validSpec()}, SubmitOptions{Tenant: "capped"}); err != nil {
		t.Fatalf("first batch refused: %v", err)
	}
	// 2 cells live; a 2-cell batch would exceed the 3-cell cap.
	_, err := s.SubmitWith([]CellSpec{validSpec(), validSpec()}, SubmitOptions{Tenant: "capped"})
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Cause != QuotaActiveCells {
		t.Fatalf("over active-cells quota: err=%v, want QuotaError(%s)", err, QuotaActiveCells)
	}
	// A 1-cell batch still fits.
	if _, err := s.SubmitWith([]CellSpec{validSpec()}, SubmitOptions{Tenant: "capped"}); err != nil {
		t.Fatalf("within-quota submit refused: %v", err)
	}
}

func TestQuotaActiveCellsReleasedOnFinish(t *testing.T) {
	reg := tenant.NewRegistry(map[string]tenant.Config{
		"capped": {MaxActiveCells: 1},
	})
	s := stubService(Config{MaxActive: 1, QueueDepth: 16, Tenants: reg}, instantDone)
	defer s.Close()
	for i := 0; i < 3; i++ {
		j, err := s.SubmitWith([]CellSpec{validSpec()}, SubmitOptions{Tenant: "capped"})
		if err != nil {
			t.Fatalf("submit %d refused (quota not released on finish?): %v", i, err)
		}
		waitDone(t, j)
	}
}

func TestQuotaCycleBudget(t *testing.T) {
	reg := tenant.NewRegistry(map[string]tenant.Config{
		"metered": {CycleBudget: 100, BudgetInterval: tenant.Duration(time.Hour)},
	})
	// Real cell accounting: stub reports done with a stream result, and
	// countCells charges the stream window (cheap: tiny window).
	s := stubService(Config{MaxActive: 1, QueueDepth: 16, Tenants: reg}, instantDone)
	defer s.Close()
	spec := CellSpec{Type: TypeStream, Streams: []StreamSpec{{Kind: "fadd"}}, Window: 200}
	j, err := s.SubmitWith([]CellSpec{spec}, SubmitOptions{Tenant: "metered"})
	if err != nil {
		t.Fatalf("first submit refused: %v", err)
	}
	waitDone(t, j)
	// 200 cycles charged against a 100-cycle budget: the window is
	// exhausted and the next submit is shed with the budget cause.
	deadline := time.After(5 * time.Second)
	for {
		_, err = s.SubmitWith([]CellSpec{spec}, SubmitOptions{Tenant: "metered"})
		var qe *QuotaError
		if errors.As(err, &qe) {
			if qe.Cause != QuotaCycleBudget {
				t.Fatalf("cause = %s, want %s", qe.Cause, QuotaCycleBudget)
			}
			break
		}
		// The charge lands in countCells just before the job turns
		// terminal; a fast resubmit can slip in ahead of it.
		select {
		case <-deadline:
			t.Fatalf("budget never enforced; last err=%v", err)
		case <-time.After(5 * time.Millisecond):
			if err == nil {
				// Drain the accidentally-admitted job before retrying.
				for _, jb := range s.Jobs() {
					waitDone(t, jb)
				}
			}
		}
	}
}

func TestRetryAfterTracksEWMA(t *testing.T) {
	s := stubService(Config{}, instantDone)
	defer s.Close()
	// Idle service: floor of 1s.
	if got := s.retryAfter(); got != "1" {
		t.Fatalf("idle retryAfter = %s, want 1", got)
	}
	// Feed measured waits: EWMA converges toward 4s → hint 2×4=8.
	for i := 0; i < 50; i++ {
		s.noteQueueWait("default", 4*time.Second)
	}
	got, err := strconv.Atoi(s.retryAfter())
	if err != nil || got < 7 || got > 8 {
		t.Fatalf("retryAfter after 4s waits = %v (err %v), want ~8", got, err)
	}
	// Pathological waits clamp at 30s.
	for i := 0; i < 50; i++ {
		s.noteQueueWait("default", 10*time.Minute)
	}
	if got := s.retryAfter(); got != "30" {
		t.Fatalf("retryAfter after 10m waits = %s, want 30 (cap)", got)
	}
}

func TestHTTPTenantHeaderAndQuotaCause(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	reg := tenant.NewRegistry(map[string]tenant.Config{
		"web": {MaxQueuedJobs: 1},
	})
	s := stubService(Config{MaxActive: 1, QueueDepth: 16, Tenants: reg}, slowUntilReleased(release))
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	submit := func(tenantHeader string) *http.Response {
		body := strings.NewReader(`{"cells":[{"type":"stream","streams":[{"kind":"fadd"}]}]}`)
		req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/jobs", body)
		req.Header.Set("Content-Type", "application/json")
		if tenantHeader != "" {
			req.Header.Set("X-Tenant", tenantHeader)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// First submit runs, second queues (at quota), third is shed.
	resp0 := submit("web")
	if resp0.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d", resp0.StatusCode)
	}
	resp0.Body.Close()
	waitQueued(t, s, "web", 0) // popped by the (blocked) worker
	resp1 := submit("web")
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: status %d", resp1.StatusCode)
	}
	resp1.Body.Close()
	waitQueued(t, s, "web", 1)
	resp := submit("web")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Quota-Cause"); got != QuotaQueuedJobs {
		t.Fatalf("X-Quota-Cause = %q, want %q", got, QuotaQueuedJobs)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	var e struct {
		Error string `json:"error"`
	}
	json.NewDecoder(resp.Body).Decode(&e)
	if !strings.Contains(e.Error, QuotaQueuedJobs) || !strings.Contains(e.Error, "web") {
		t.Fatalf("error body %q lacks cause and tenant", e.Error)
	}

	// Invalid tenant names are a 400, not an accounting surprise.
	resp = submit("no spaces")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid tenant status = %d, want 400", resp.StatusCode)
	}
}

func TestTenantMetricsExposed(t *testing.T) {
	reg := tenant.NewRegistry(map[string]tenant.Config{
		"alice": {MaxQueuedJobs: 8},
	})
	lg := store.NewLedger()
	s := stubService(Config{Tenants: reg, StoreLedger: lg}, instantDone)
	defer s.Close()
	j, err := s.SubmitWith([]CellSpec{validSpec()}, SubmitOptions{Tenant: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	lg.ChargeWrite("alice", 128)
	lg.ChargeServe("alice", 64)

	m := s.Snapshot()
	row, ok := m.Tenants["alice"]
	if !ok {
		t.Fatalf("snapshot lacks tenant row: %+v", m.Tenants)
	}
	if row.JobsAdmitted != 1 || row.CellsDone != 1 {
		t.Fatalf("alice row = %+v", row)
	}
	if row.StoreBytesWritten != 128 || row.StoreBytesServed != 64 {
		t.Fatalf("ledger bytes not surfaced: %+v", row)
	}

	var b strings.Builder
	m.WriteProm(&b)
	prom := b.String()
	for _, want := range []string{
		`smtd_tenant_jobs_admitted_total{tenant="alice"} 1`,
		`smtd_tenant_cells_total{tenant="alice",state="done"} 1`,
		`smtd_tenant_store_bytes_total{tenant="alice",dir="written"} 128`,
		`smtd_shed_total{reason="quota"} 0`,
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("prom output missing %q", want)
		}
	}
}

// TestDefaultTenantCompat locks the compatibility contract: with no
// tenant configuration, submissions without a tenant work exactly as
// before and are accounted to the default tenant.
func TestDefaultTenantCompat(t *testing.T) {
	s := stubService(Config{}, instantDone)
	defer s.Close()
	j, err := s.Submit([]CellSpec{validSpec()})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if j.Tenant != tenant.Default {
		t.Fatalf("job tenant = %q, want %q", j.Tenant, tenant.Default)
	}
	m := s.Snapshot()
	if row := m.Tenants[tenant.Default]; row.JobsAdmitted != 1 {
		t.Fatalf("default tenant row = %+v", row)
	}
}

// TestJournalCarriesTenant proves a restart keeps jobs accounted to
// their owners: a journaled live record replays under its original
// tenant, and a pre-tenancy record (no tenant field) lands on the
// default tenant instead of breaking.
func TestJournalCarriesTenant(t *testing.T) {
	jl, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []Record{
		{ID: "j0001", Specs: []CellSpec{validSpec()}, State: JobQueued, Created: time.Now(), Tenant: "owner"},
		{ID: "j0002", Specs: []CellSpec{validSpec()}, State: JobQueued, Created: time.Now()},
	} {
		if err := jl.write(rec); err != nil {
			t.Fatal(err)
		}
	}
	s := New(Config{Workers: 1, Journal: jl})
	defer s.Close()
	j1, ok := s.Job("j0001")
	if !ok {
		t.Fatal("journaled live job not re-registered")
	}
	if j1.Tenant != "owner" {
		t.Fatalf("recovered tenant = %q, want owner", j1.Tenant)
	}
	j2, _ := s.Job("j0002")
	if j2.Tenant != tenant.Default {
		t.Fatalf("pre-tenancy record tenant = %q, want %q", j2.Tenant, tenant.Default)
	}
	waitDone(t, j1)
	waitDone(t, j2)
}
