package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestHTTPSubmitStatusResult(t *testing.T) {
	s := stubService(Config{}, instantDone)
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp := postJSON(t, srv.URL+"/v1/jobs", SubmitRequest{Cells: []CellSpec{validSpec(), validSpec()}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	st := decodeBody[JobStatus](t, resp)
	if st.ID == "" || len(st.Cells) != 2 {
		t.Fatalf("submit response %+v", st)
	}

	j, ok := s.Job(st.ID)
	if !ok {
		t.Fatal("submitted job not in registry")
	}
	waitDone(t, j)

	resp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	got := decodeBody[JobStatus](t, resp)
	if got.State != JobDone || got.Counts["done"] != 2 {
		t.Fatalf("status %+v, want done with 2 done cells", got)
	}

	resp, err = http.Get(srv.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	res := decodeBody[JobResult](t, resp)
	if res.State != JobDone || len(res.Cells) != 2 || res.Cells[0].CPI == nil {
		t.Fatalf("result %+v", res)
	}

	// List includes the job; unknown IDs 404.
	resp, err = http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	list := decodeBody[map[string][]JobStatus](t, resp)
	if len(list["jobs"]) != 1 {
		t.Errorf("list has %d jobs, want 1", len(list["jobs"]))
	}
	resp, err = http.Get(srv.URL + "/v1/jobs/j9999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status %d, want 404", resp.StatusCode)
	}
}

func TestHTTPResultConflictWhileRunning(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	s := stubService(Config{}, func(ctx context.Context, spec CellSpec, _ string) CellResult {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
		return CellResult{Label: spec.Label(), State: CellDone}
	})
	defer s.Close()
	defer close(release)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	st := decodeBody[JobStatus](t, postJSON(t, srv.URL+"/v1/jobs", SubmitRequest{Cells: []CellSpec{validSpec()}}))
	<-started
	resp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("result of a running job: status %d, want 409", resp.StatusCode)
	}
}

func TestHTTPBackpressure(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	s := stubService(Config{MaxActive: 1, QueueDepth: 1}, func(ctx context.Context, spec CellSpec, _ string) CellResult {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
		return CellResult{Label: spec.Label(), State: CellDone}
	})
	defer s.Close()
	defer close(release)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	postJSON(t, srv.URL+"/v1/jobs", SubmitRequest{Cells: []CellSpec{validSpec()}}).Body.Close()
	<-started
	postJSON(t, srv.URL+"/v1/jobs", SubmitRequest{Cells: []CellSpec{validSpec()}}).Body.Close()

	resp := postJSON(t, srv.URL+"/v1/jobs", SubmitRequest{Cells: []CellSpec{validSpec()}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After header")
	}
}

func TestHTTPCancel(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	s := stubService(Config{MaxActive: 1}, func(ctx context.Context, spec CellSpec, _ string) CellResult {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
		return CellResult{Label: spec.Label(), State: CellDone}
	})
	defer s.Close()
	defer close(release)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	postJSON(t, srv.URL+"/v1/jobs", SubmitRequest{Cells: []CellSpec{validSpec()}}).Body.Close()
	<-started
	st := decodeBody[JobStatus](t, postJSON(t, srv.URL+"/v1/jobs", SubmitRequest{Cells: []CellSpec{validSpec()}}))

	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	got := decodeBody[JobStatus](t, resp)
	if got.State != JobCancelled {
		t.Fatalf("cancelled queued job state %q", got.State)
	}

	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/j9999", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("cancel unknown job status %d, want 404", resp.StatusCode)
	}
}

// readSSE consumes a Server-Sent Events body into (event, data) pairs
// until the stream ends.
func readSSE(t *testing.T, body io.Reader) [][2]string {
	t.Helper()
	var out [][2]string
	var event, data string
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if event != "" || data != "" {
				out = append(out, [2]string{event, data})
			}
			event, data = "", ""
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestHTTPEventsSSE(t *testing.T) {
	s := stubService(Config{Workers: 1}, instantDone)
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	st := decodeBody[JobStatus](t, postJSON(t, srv.URL+"/v1/jobs", SubmitRequest{Cells: []CellSpec{validSpec(), validSpec()}}))
	resp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	events := readSSE(t, resp.Body)
	if len(events) == 0 {
		t.Fatal("no SSE events")
	}
	var cells int
	for _, ev := range events[:len(events)-1] {
		if ev[0] == "cell" {
			cells++
		}
	}
	if cells != 2 {
		t.Errorf("%d cell events, want 2", cells)
	}
	last := events[len(events)-1]
	if last[0] != "end" {
		t.Fatalf("last event %q, want end", last[0])
	}
	var end struct{ Job, State, Error string }
	if err := json.Unmarshal([]byte(last[1]), &end); err != nil {
		t.Fatal(err)
	}
	if end.State != JobDone || end.Job != st.ID {
		t.Errorf("end event %+v, want done for %s", end, st.ID)
	}
}

// The SSE stream of a failing job must end with state "failed" and the
// per-cell error must have been streamed — the contract smtctl wait
// relies on to exit non-zero.
func TestHTTPEventsSSEFailure(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	bad := CellSpec{Type: TypeStream, Window: 2000,
		Streams: []StreamSpec{{Kind: "fadd"}, {Kind: "fadd"}, {Kind: "fadd"}}}
	st := decodeBody[JobStatus](t, postJSON(t, srv.URL+"/v1/jobs", SubmitRequest{Cells: []CellSpec{bad}}))
	resp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := readSSE(t, resp.Body)
	last := events[len(events)-1]
	if last[0] != "end" || !strings.Contains(last[1], `"state":"failed"`) {
		t.Fatalf("end event %v, want failed", last)
	}
	var sawError bool
	for _, ev := range events {
		if ev[0] == "cell" && strings.Contains(ev[1], "3 streams") {
			sawError = true
		}
	}
	if !sawError {
		t.Error("cell failure event with the stream-count error never streamed")
	}
}

func TestHTTPHealthzAndMetrics(t *testing.T) {
	s := stubService(Config{}, instantDone)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"smtd_jobs_total{state=\"done\"}",
		"smtd_queue_capacity",
		"smtd_cache_hits_total",
		"smtd_cells_simulated_total",
		"smtd_uptime_seconds",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Draining flips healthz to 503.
	go s.Drain(context.Background())
	deadline := time.After(5 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		select {
		case <-deadline:
			t.Fatal("healthz never turned 503 during drain")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// An observed stream cell produces artifacts that the artifact endpoint
// serves; unlisted names 404 (no path traversal via the name segment).
func TestHTTPObservedCellArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real observed simulation; skipped in -short")
	}
	dir := t.TempDir()
	s := New(Config{Workers: 1, ArtifactDir: dir})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	spec := CellSpec{Type: TypeStream, Streams: []StreamSpec{{Kind: "fadd"}}, Window: 2000, Observe: true}
	st := decodeBody[JobStatus](t, postJSON(t, srv.URL+"/v1/jobs", SubmitRequest{Cells: []CellSpec{spec}}))
	j, _ := s.Job(st.ID)
	waitDone(t, j)
	if state, msg := j.State(); state != JobDone {
		t.Fatalf("job %s: %s", state, msg)
	}

	resp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/cells/0/result")
	if err != nil {
		t.Fatal(err)
	}
	res := decodeBody[CellResult](t, resp)
	if len(res.Artifacts) != 3 {
		t.Fatalf("artifacts %v, want 3", res.Artifacts)
	}
	for _, name := range res.Artifacts {
		if _, err := os.Stat(filepath.Join(dir, st.ID, "cell-0", name)); err != nil {
			t.Errorf("artifact %s not on disk: %v", name, err)
		}
		aresp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/cells/0/artifacts/%s", srv.URL, st.ID, name))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(aresp.Body)
		aresp.Body.Close()
		if aresp.StatusCode != http.StatusOK || len(data) == 0 {
			t.Errorf("artifact %s: status %d, %d bytes", name, aresp.StatusCode, len(data))
		}
	}
	aresp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/cells/0/artifacts/no-such-file")
	if err != nil {
		t.Fatal(err)
	}
	aresp.Body.Close()
	if aresp.StatusCode != http.StatusNotFound {
		t.Errorf("unlisted artifact: status %d, want 404", aresp.StatusCode)
	}
}

func TestHTTPCellResultTextFormat(t *testing.T) {
	s := stubService(Config{}, func(_ context.Context, spec CellSpec, _ string) CellResult {
		if spec.Type == TypeHarness {
			return CellResult{Label: spec.Label(), State: CellDone, Text: "the figure\n"}
		}
		return CellResult{Label: spec.Label(), State: CellFailed, Error: "boom"}
	})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	st := decodeBody[JobStatus](t, postJSON(t, srv.URL+"/v1/jobs", SubmitRequest{
		Cells: []CellSpec{{Type: TypeHarness, Harness: "fig1"}, validSpec()},
	}))
	j, _ := s.Job(st.ID)
	waitDone(t, j)

	resp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/cells/0/result?format=text")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "the figure\n" {
		t.Fatalf("text result: %d %q", resp.StatusCode, body)
	}

	// A failed cell's text view is a 409 carrying the error, not a 200
	// with empty output.
	resp, err = http.Get(srv.URL + "/v1/jobs/" + st.ID + "/cells/1/result?format=text")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || !strings.Contains(string(body), "boom") {
		t.Fatalf("failed cell text: %d %q, want 409 with the error", resp.StatusCode, body)
	}
}
