package service

// Per-tenant admission control and accounting. The scheduler half of
// multi-tenancy lives in queue.go (deficit-weighted round-robin across
// tenants); this file is the admission half: quota checks at submit
// time with quota-specific causes, and the per-tenant counters behind
// the /metrics tenant labels.

import (
	"context"
	"fmt"
	"time"

	"smtexplore/internal/tenant"
)

// Quota causes, reported in QuotaError and the per-tenant shed metric
// labels. They name the exhausted resource so a client (and the load
// harness's assertions) can tell a queue-depth rejection from a
// cycle-budget one.
const (
	QuotaQueuedJobs  = "queued-jobs"
	QuotaActiveCells = "active-cells"
	QuotaCycleBudget = "cycle-budget"
)

// QuotaError reports a submission refused by a per-tenant quota. The
// HTTP layer maps it to 429 with the cause in the error body and an
// X-Quota-Cause header, distinct from global backpressure
// (ErrQueueFull) and AIMD shedding (ErrShedLoad): a tenant over its
// own quota should slow itself down, not conclude the service is
// overloaded.
type QuotaError struct {
	Tenant string
	Cause  string
	Detail string
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("service: tenant %q over quota (%s): %s", e.Tenant, e.Cause, e.Detail)
}

// tenantStats is one tenant's counters, guarded by Service.mu.
type tenantStats struct {
	jobsAdmitted           uint64
	cellsDone, cellsFailed uint64
	cellsSimulated         uint64
	queueWaitSeconds       float64
	queueWaitPops          uint64
	cyclesCharged          uint64
	shedQueuedJobs         uint64
	shedActiveCells        uint64
	shedCycleBudget        uint64
}

// tstatsLocked finds or creates the stats row for a tenant. Callers
// hold s.mu.
func (s *Service) tstatsLocked(name string) *tenantStats {
	ts := s.tenants[name]
	if ts == nil {
		ts = &tenantStats{}
		s.tenants[name] = ts
	}
	return ts
}

// normTenant maps the empty identity onto the default tenant.
func normTenant(name string) string {
	if name == "" {
		return tenant.Default
	}
	return name
}

// admitTenantLocked runs the per-tenant quota gate for a submission of
// `cells` cells. Order is cheapest-first; the first exhausted quota
// wins and is the one the client sees. Callers hold s.mu.
func (s *Service) admitTenantLocked(tn string, cells int) error {
	q := s.cfg.Tenants.Config(tn)
	if q.MaxQueuedJobs > 0 {
		if depth := s.queue.lenTenant(tn); depth >= q.MaxQueuedJobs {
			s.tstatsLocked(tn).shedQueuedJobs++
			return &QuotaError{Tenant: tn, Cause: QuotaQueuedJobs,
				Detail: fmt.Sprintf("%d jobs queued, quota %d", depth, q.MaxQueuedJobs)}
		}
	}
	if q.MaxActiveCells > 0 {
		if live := s.tenantCells[tn]; live+cells > q.MaxActiveCells {
			s.tstatsLocked(tn).shedActiveCells++
			return &QuotaError{Tenant: tn, Cause: QuotaActiveCells,
				Detail: fmt.Sprintf("%d cells live + %d submitted exceeds quota %d", live, cells, q.MaxActiveCells)}
		}
	}
	if rem, bounded := s.cfg.Tenants.BudgetRemaining(tn, time.Now()); bounded && rem == 0 {
		s.tstatsLocked(tn).shedCycleBudget++
		return &QuotaError{Tenant: tn, Cause: QuotaCycleBudget,
			Detail: fmt.Sprintf("cycle budget %d exhausted for this window", q.CycleBudget)}
	}
	return nil
}

// tenantCtxKey carries the owning tenant through the job context into
// the cell executor, which is where the per-tenant meter binds — the
// executor's signature stays tenant-free for the tests that stub it.
type tenantCtxKey struct{}

func withTenantCtx(ctx context.Context, tn string) context.Context {
	return context.WithValue(ctx, tenantCtxKey{}, tn)
}

func tenantFromCtx(ctx context.Context) string {
	tn, _ := ctx.Value(tenantCtxKey{}).(string)
	return normTenant(tn)
}

// tenantMeter implements runner.Meter for one tenant: tier traffic
// goes to the store ledger, simulate counts to the tenant's stats row.
// Under single-flight the computing caller gets the attribution; a
// joined or memory-served lookup charges nothing — the bytes moved at
// most once, and they were charged then.
type tenantMeter struct {
	s      *Service
	tenant string
}

func (m *tenantMeter) CacheServed() {}
func (m *tenantMeter) TierServed(n int) {
	m.s.cfg.StoreLedger.ChargeServe(m.tenant, n)
}
func (m *tenantMeter) TierWritten(n int) {
	m.s.cfg.StoreLedger.ChargeWrite(m.tenant, n)
}
func (m *tenantMeter) Simulated() {
	m.s.mu.Lock()
	m.s.tstatsLocked(m.tenant).cellsSimulated++
	m.s.mu.Unlock()
}

// cellCycles estimates the simulated-cycle cost of one completed cell
// for cycle-budget accounting: kernels report their exact cycle count,
// stream cells cost their measurement window, and harness cells are
// not charged (they are composites the budget cannot attribute —
// deliberately coarse, like the budget itself). The charge is the
// cell's compute footprint whether or not a cache tier served it: the
// budget is an admission-rate control, not a CPU meter.
func cellCycles(spec CellSpec, res CellResult) uint64 {
	if res.Kernel != nil {
		return res.Kernel.Cycles
	}
	if spec.Type == TypeStream {
		return spec.window()
	}
	return 0
}
