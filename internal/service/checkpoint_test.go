package service

// Tests for the checkpoint/preemption/overload layer: the priority
// queue and AIMD limiter in isolation, then the service-level flows —
// deadline admission and expiry, priority preemption with resume
// parity, watchdog final checkpoints, and drain-then-restart resume.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"smtexplore/internal/checkpoint"
	"smtexplore/internal/experiments"
)

// mmSpec is a kernel cell big enough (~100k cycles) that a running
// instance reliably straddles preemption requests, watchdog budgets and
// short deadlines, yet completes in well under a second.
func mmSpec() CellSpec {
	return CellSpec{Type: TypeKernel, Kernel: "mm", Mode: "tlp-fine", Size: 32}
}

// mmControl computes the uninterrupted reference result for mmSpec.
func mmControl(t *testing.T) experiments.KernelMetrics {
	t.Helper()
	m, err := experiments.NamedKernelCell(experiments.Options{}, "mm", 32, kernelMode("tlp-fine"))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestJobQueuePriorityOrder(t *testing.T) {
	q := newJobQueue(8)
	mk := func(id string, prio int) *Job {
		j := newJob(id, []CellSpec{validSpec()})
		j.Priority = prio
		return j
	}
	a, b, c, d := mk("a", 0), mk("b", 5), mk("c", 0), mk("d", 5)
	for _, j := range []*Job{a, b, c, d} {
		if !q.push(j) {
			t.Fatalf("push %s refused", j.ID)
		}
	}
	// Higher priority first; FIFO within a priority class.
	for _, want := range []string{"b", "d", "a", "c"} {
		j, _, ok := q.pop()
		if !ok || j.ID != want {
			t.Fatalf("pop = %v, want %s", j, want)
		}
	}
}

func TestJobQueueCapacityAndClose(t *testing.T) {
	q := newJobQueue(1)
	a := newJob("a", []CellSpec{validSpec()})
	b := newJob("b", []CellSpec{validSpec()})
	if !q.push(a) {
		t.Fatal("push into empty queue refused")
	}
	if q.push(b) {
		t.Fatal("push beyond capacity accepted")
	}
	if !q.forcePush(b) {
		t.Fatal("forcePush beyond capacity refused")
	}
	q.close()
	if q.push(a) || q.forcePush(a) {
		t.Fatal("push into closed queue accepted")
	}
	// Entries already queued still drain after close.
	for range 2 {
		if _, _, ok := q.pop(); !ok {
			t.Fatal("queued entry lost on close")
		}
	}
	if _, _, ok := q.pop(); ok {
		t.Fatal("pop on drained closed queue reported an entry")
	}
}

func TestAIMDControlLoop(t *testing.T) {
	a := newAIMD(10*time.Millisecond, 4)
	if !a.admit(3) {
		t.Fatal("admit below limit refused")
	}
	if a.admit(4) || a.admit(5) {
		t.Fatal("admit at/above limit accepted")
	}
	a.observe(20 * time.Millisecond) // 4 -> 2
	a.observe(20 * time.Millisecond) // 2 -> 1
	a.observe(20 * time.Millisecond) // floor at 1
	if limit, sheds := a.snapshot(); limit != 1 || sheds != 2 {
		t.Fatalf("after decrease: limit %v sheds %d, want 1 and 2", limit, sheds)
	}
	for range 10 {
		a.observe(time.Millisecond) // additive increase, capped at max
	}
	if limit, _ := a.snapshot(); limit != 4 {
		t.Fatalf("after recovery: limit %v, want cap 4", limit)
	}
}

func TestSubmitExpiredDeadlineShed(t *testing.T) {
	s := stubService(Config{}, instantDone)
	defer s.Close()
	_, err := s.SubmitWith([]CellSpec{validSpec()}, SubmitOptions{Deadline: time.Now().Add(-time.Second)})
	if !errors.Is(err, ErrDeadlineExpired) {
		t.Fatalf("SubmitWith(past deadline) = %v, want ErrDeadlineExpired", err)
	}
	if m := s.Snapshot(); m.ShedDeadline != 1 {
		t.Fatalf("ShedDeadline = %d, want 1", m.ShedDeadline)
	}
}

// A job whose deadline expires while it waits in the queue must fail
// promptly with an explicit cause — never hang, never run late.
func TestDeadlineExpiresWhileQueued(t *testing.T) {
	block := make(chan struct{})
	s := stubService(Config{MaxActive: 1, QueueDepth: 4}, func(_ context.Context, spec CellSpec, _ string) CellResult {
		<-block
		return CellResult{Label: spec.Label(), State: CellDone}
	})
	defer s.Close()
	a, err := s.Submit([]CellSpec{validSpec()})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, a, JobRunning)
	deadline := time.Now().Add(30 * time.Millisecond)
	b, err := s.SubmitWith([]CellSpec{validSpec()}, SubmitOptions{Deadline: deadline})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Until(deadline) + 20*time.Millisecond)
	close(block)
	waitDone(t, b)
	const want = "deadline expired before the job started"
	if state, msg := b.State(); state != JobFailed || msg != want {
		t.Fatalf("queued-past-deadline job = %s %q, want failed %q", state, msg, want)
	}
	if res := b.Results()[0]; res.State != CellFailed || res.Error != want {
		t.Fatalf("cell = %s %q, want failed with explicit cause", res.State, res.Error)
	}
	waitDone(t, a)
}

// A deadline that expires mid-run reaches the cell through its stop
// predicate: the cell parks a checkpoint, yields, and is failed with an
// explicit deadline cause rather than left running (or hanging).
func TestDeadlineExpiresMidRun(t *testing.T) {
	s := New(Config{
		Workers: 1, MaxActive: 1,
		CheckpointEvery: 2000, CheckpointSink: checkpoint.NewMemSink(),
	})
	defer s.Close()
	j, err := s.SubmitWith([]CellSpec{mmSpec()}, SubmitOptions{Deadline: time.Now().Add(30 * time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	state, msg := j.State()
	if state != JobFailed || !strings.Contains(msg, "deadline") {
		t.Fatalf("mid-run deadline job = %s %q, want failed with a deadline cause", state, msg)
	}
	if res := j.Results()[0]; res.State != CellFailed || !strings.Contains(res.Error, "deadline") {
		t.Fatalf("cell = %s %q, want failed with a deadline cause", res.State, res.Error)
	}
}

// The AIMD limiter sheds a submission once measured queue wait exceeds
// the (deliberately unreachable) target and the outstanding count hits
// the halved limit.
func TestAIMDShedsUnderLoad(t *testing.T) {
	block := make(chan struct{})
	s := stubService(Config{MaxActive: 1, QueueDepth: 2, QueueWaitTarget: time.Nanosecond},
		func(_ context.Context, spec CellSpec, _ string) CellResult {
			<-block
			return CellResult{Label: spec.Label(), State: CellDone}
		})
	defer s.Close()
	a, err := s.Submit([]CellSpec{validSpec()})
	if err != nil {
		t.Fatal(err)
	}
	// Once a is running, its pop fed the limiter one over-target wait:
	// the limit is down from 3 (MaxActive+QueueDepth) to 1.5.
	waitState(t, a, JobRunning)
	b, err := s.Submit([]CellSpec{validSpec()}) // outstanding 1 < 1.5
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit([]CellSpec{validSpec()}); !errors.Is(err, ErrShedLoad) {
		t.Fatalf("third submit = %v, want ErrShedLoad", err) // outstanding 2 >= 1.5
	}
	m := s.Snapshot()
	if !m.HasAIMD || m.ShedAIMD != 1 {
		t.Fatalf("HasAIMD %v ShedAIMD %d, want true and 1", m.HasAIMD, m.ShedAIMD)
	}
	if m.QueueWaitPops == 0 {
		t.Fatal("QueueWaitPops = 0, want the pop wait to be recorded")
	}
	close(block)
	waitDone(t, a)
	waitDone(t, b)
}

// The tentpole flow: a high-priority submission preempts the running
// low-priority job, which checkpoints, re-queues behind it, resumes
// from the checkpoint and still produces exactly the uninterrupted
// result.
func TestPriorityPreemptionResumesWithParity(t *testing.T) {
	s := New(Config{
		Workers: 1, MaxActive: 1, QueueDepth: 4,
		CheckpointEvery: 2000, CheckpointSink: checkpoint.NewMemSink(),
	})
	defer s.Close()
	low, err := s.SubmitWith([]CellSpec{mmSpec()}, SubmitOptions{Priority: 0})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, low, JobRunning)
	high, err := s.SubmitWith([]CellSpec{{Type: TypeStream, Streams: []StreamSpec{{Kind: "fadd"}}, Window: 2000}},
		SubmitOptions{Priority: 5})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, high)
	if state, msg := high.State(); state != JobDone {
		t.Fatalf("high-priority job = %s %q, want done", state, msg)
	}
	waitDone(t, low)
	if state, msg := low.State(); state != JobDone {
		t.Fatalf("preempted job = %s %q, want done after resume", state, msg)
	}

	m := s.Snapshot()
	if m.Preemptions < 1 {
		t.Fatalf("Preemptions = %d, want >= 1", m.Preemptions)
	}
	if m.CheckpointsRestored < 1 || m.ResumeCyclesSaved == 0 {
		t.Fatalf("restored %d, cycles saved %d: resume did not use the checkpoint", m.CheckpointsRestored, m.ResumeCyclesSaved)
	}
	evs, _, _ := low.EventsSince(0)
	var sawPreempted, sawResumed bool
	for _, ev := range evs {
		sawPreempted = sawPreempted || ev.State == CellPreempted
		sawResumed = sawResumed || ev.State == CellResumed
	}
	if !sawPreempted || !sawResumed {
		t.Fatalf("events preempted=%v resumed=%v, want both on the victim's stream", sawPreempted, sawResumed)
	}

	got := low.Results()[0]
	if got.Kernel == nil {
		t.Fatalf("preempted-then-resumed cell has no kernel result: %+v", got)
	}
	if want := mmControl(t); !reflect.DeepEqual(*got.Kernel, want) {
		t.Fatalf("resume parity violated:\n got %+v\nwant %+v", *got.Kernel, want)
	}
}

// The watchdog on a checkpointable cell secures a final checkpoint
// before failing it, so a retry would resume instead of restarting.
func TestWatchdogTakesFinalCheckpoint(t *testing.T) {
	s := New(Config{
		Workers: 1, MaxActive: 1,
		CellTimeout: 25 * time.Millisecond, StopGrace: 10 * time.Second,
		CheckpointEvery: 2000, CheckpointSink: checkpoint.NewMemSink(),
	})
	defer s.Close()
	j, err := s.Submit([]CellSpec{mmSpec()})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if state, _ := j.State(); state != JobFailed {
		t.Fatalf("watchdogged job = %s, want failed", state)
	}
	res := j.Results()[0]
	if res.State != CellFailed || !strings.Contains(res.Error, "checkpointed; a re-run resumes") {
		t.Fatalf("cell = %s %q, want watchdog failure advertising the checkpoint", res.State, res.Error)
	}
	m := s.Snapshot()
	if m.CellsTimedOut < 1 || m.CheckpointsOnTimeout < 1 {
		t.Fatalf("timed out %d, checkpoints on timeout %d, want both >= 1", m.CellsTimedOut, m.CheckpointsOnTimeout)
	}
	if m.CheckpointsWritten < 1 {
		t.Fatal("no checkpoint written before the watchdog abandoned the cell")
	}
}

// Drain with checkpointing parks running work instead of waiting for
// it: the job checkpoints, stays queued and non-terminal in the
// journal, and a new service on the same journal and sink resumes it
// to the exact uninterrupted result.
func TestDrainThenRestartResumes(t *testing.T) {
	dir := t.TempDir()
	sink := checkpoint.NewMemSink()
	jl1, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{
		Workers: 1, MaxActive: 1, Journal: jl1,
		CheckpointEvery: 2000, CheckpointSink: sink,
	})
	j, err := s1.Submit([]CellSpec{mmSpec()})
	if err != nil {
		t.Fatal(err)
	}
	// Let the cell reach its first pause point before draining, so the
	// sink holds real progress to resume from.
	deadline := time.Now().Add(5 * time.Second)
	for s1.Snapshot().CheckpointsWritten == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint written within 5s")
		}
		time.Sleep(time.Millisecond)
	}
	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Drain(dctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if state, _ := j.State(); state != JobQueued {
		t.Fatalf("drained job = %s, want queued (parked for the next process)", state)
	}
	s1.Close()

	jl2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{
		Workers: 1, MaxActive: 1, Journal: jl2,
		CheckpointEvery: 2000, CheckpointSink: sink,
	})
	defer s2.Close()
	j2, ok := s2.Job(j.ID)
	if !ok {
		t.Fatalf("job %s not recovered by the restarted service", j.ID)
	}
	waitDone(t, j2)
	if state, msg := j2.State(); state != JobDone {
		t.Fatalf("recovered job = %s %q, want done", state, msg)
	}
	m := s2.Snapshot()
	if m.JobsRecovered < 1 {
		t.Fatalf("JobsRecovered = %d, want >= 1", m.JobsRecovered)
	}
	if m.CheckpointsRestored < 1 || m.ResumeCyclesSaved == 0 {
		t.Fatalf("restored %d, cycles saved %d: restart re-ran from cycle zero", m.CheckpointsRestored, m.ResumeCyclesSaved)
	}
	got := j2.Results()[0]
	if got.Kernel == nil {
		t.Fatalf("recovered cell has no kernel result: %+v", got)
	}
	if want := mmControl(t); !reflect.DeepEqual(*got.Kernel, want) {
		t.Fatalf("drain/restart resume parity violated:\n got %+v\nwant %+v", *got.Kernel, want)
	}
}

// The HTTP admission surface for the new fields: priority and relative
// deadline land on the job, a malformed deadline is a 400, and an
// already-expired one is shed with 429.
func TestHTTPSubmitDeadlineAndPriority(t *testing.T) {
	s := stubService(Config{}, instantDone)
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp := postJSON(t, srv.URL+"/v1/jobs", SubmitRequest{
		Cells: []CellSpec{validSpec()}, Priority: 7, Deadline: "1h",
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	st := decodeBody[JobStatus](t, resp)
	j, ok := s.Job(st.ID)
	if !ok {
		t.Fatal("submitted job not in registry")
	}
	if j.Priority != 7 || j.Deadline.IsZero() {
		t.Fatalf("job priority %d deadline %v, want 7 and nonzero", j.Priority, j.Deadline)
	}

	resp = postJSON(t, srv.URL+"/v1/jobs", SubmitRequest{Cells: []CellSpec{validSpec()}, Deadline: "soonish"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad deadline status %d, want 400", resp.StatusCode)
	}

	resp = postJSON(t, srv.URL+"/v1/jobs", SubmitRequest{Cells: []CellSpec{validSpec()}, Deadline: "-1s"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("expired deadline status %d, want 429", resp.StatusCode)
	}
}
