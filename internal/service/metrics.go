package service

import (
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"time"

	"smtexplore/internal/faultinject"
	"smtexplore/internal/store"
)

// Metrics is a point-in-time snapshot of the service, cache and store
// counters (the structured form behind /metrics).
type Metrics struct {
	JobsDone, JobsFailed, JobsCancelled    uint64
	CellsDone, CellsFailed, CellsCancelled uint64
	JobsActive                             int
	QueueDepth                             int
	QueueCapacity                          int

	CacheHits, CacheMisses, CacheEvictions uint64
	CacheEntries                           int

	HasStore                               bool
	StoreHits, StoreMisses, StoreEvictions uint64
	StoreCorrupt, StoreWrites              uint64
	StoreIOErrors                          uint64
	StoreEntries                           int
	StoreBytes                             int64
	// CellsSimulated is the number of cells that actually ran the
	// simulator: in-memory cache misses the disk store could not serve.
	// A fully warm store keeps this at zero across a whole batch.
	CellsSimulated uint64

	// Robustness counters.
	SubmitRejectedFull     uint64
	SubmitRejectedDraining uint64
	IdemHits               uint64
	CellsTimedOut          uint64
	JobsRecovered          uint64
	JobsAbandoned          uint64

	// Checkpoint and overload-control counters.
	HasCheckpoint        bool
	CheckpointsWritten   uint64
	CheckpointsRestored  uint64
	CheckpointBytes      uint64
	ResumeCyclesSaved    uint64
	CheckpointsOnTimeout uint64
	Preemptions          uint64
	QueueWaitSeconds     float64
	QueueWaitPops        uint64
	QueueWaitEWMASeconds float64
	ShedDeadline         uint64
	ShedAIMD             uint64
	ShedQuota            uint64
	HasAIMD              bool
	AIMDLimit            float64

	// Tenants carries per-tenant accounting rows, keyed by tenant
	// name; present only once a tenant has submitted (or been shed).
	// The cluster coordinator sums these across workers for the fleet
	// view.
	Tenants map[string]TenantMetrics `json:",omitempty"`

	HasBreaker           bool
	BreakerState         string
	StoreDegraded        bool
	BreakerTrips         uint64
	BreakerShortCircuits uint64
	BreakerProbes        uint64

	HasJournal    bool
	JournalWrites uint64
	JournalErrors uint64

	// FaultsInjected counts fires of the armed fault plan (0 when none).
	FaultsInjected uint64

	Goroutines    int
	UptimeSeconds float64
}

// TenantMetrics is one tenant's slice of the service counters — the
// structured form behind the /metrics tenant labels and the per-tenant
// store-namespace accounting.
type TenantMetrics struct {
	JobsAdmitted     uint64
	CellsDone        uint64
	CellsFailed      uint64
	CellsSimulated   uint64
	QueueWaitSeconds float64
	QueueWaitPops    uint64
	CyclesCharged    uint64
	ShedQueuedJobs   uint64
	ShedActiveCells  uint64
	ShedCycleBudget  uint64
	// QueuedJobs and ActiveCells are point-in-time gauges of the
	// tenant's live footprint (the quantities its quotas bound).
	QueuedJobs  int
	ActiveCells int
	// StoreBytesWritten and StoreBytesServed come from the store
	// ledger: bytes this tenant's cells wrote into and read out of the
	// content-addressed store namespace.
	StoreBytesWritten uint64
	StoreBytesServed  uint64
}

// Snapshot collects the current metrics.
func (s *Service) Snapshot() Metrics {
	s.mu.Lock()
	m := Metrics{
		JobsDone:       s.jobsDone,
		JobsFailed:     s.jobsFailed,
		JobsCancelled:  s.jobsCancelled,
		CellsDone:      s.cellsDone,
		CellsFailed:    s.cellsFailed,
		CellsCancelled: s.cellsCancelled,
		JobsActive:     s.active,
		QueueCapacity:  s.cfg.QueueDepth,
		UptimeSeconds:  time.Since(s.started).Seconds(),

		SubmitRejectedFull:     s.rejectedFull,
		SubmitRejectedDraining: s.rejectedDraining,
		IdemHits:               s.idemHits,
		CellsTimedOut:          s.cellsTimedOut,
		JobsRecovered:          s.jobsRecovered,
		JobsAbandoned:          s.jobsAbandoned,

		CheckpointsOnTimeout: s.checkpointsOnTimeout,
		Preemptions:          s.preemptions,
		QueueWaitSeconds:     s.queueWaitSeconds,
		QueueWaitPops:        s.queueWaitPops,
		QueueWaitEWMASeconds: s.queueWaitEWMA,
		ShedDeadline:         s.shedDeadline,
		ShedQuota:            s.shedQuota,
	}
	if len(s.tenants) > 0 || len(s.tenantCells) > 0 {
		m.Tenants = make(map[string]TenantMetrics, len(s.tenants))
		for name, ts := range s.tenants {
			m.Tenants[name] = TenantMetrics{
				JobsAdmitted:     ts.jobsAdmitted,
				CellsDone:        ts.cellsDone,
				CellsFailed:      ts.cellsFailed,
				CellsSimulated:   ts.cellsSimulated,
				QueueWaitSeconds: ts.queueWaitSeconds,
				QueueWaitPops:    ts.queueWaitPops,
				CyclesCharged:    ts.cyclesCharged,
				ShedQueuedJobs:   ts.shedQueuedJobs,
				ShedActiveCells:  ts.shedActiveCells,
				ShedCycleBudget:  ts.shedCycleBudget,
			}
		}
		for name, cells := range s.tenantCells {
			row := m.Tenants[name]
			row.ActiveCells = cells
			m.Tenants[name] = row
		}
	}
	s.mu.Unlock()
	for name, row := range m.Tenants {
		row.QueuedJobs = s.queue.lenTenant(name)
		if lg := s.cfg.StoreLedger; lg != nil {
			u := lg.Usage(name)
			row.StoreBytesWritten, row.StoreBytesServed = u.BytesWritten, u.BytesServed
		}
		m.Tenants[name] = row
	}
	m.QueueDepth = s.queue.len()
	if s.ckStats != nil {
		m.HasCheckpoint = true
		m.CheckpointsWritten, m.CheckpointsRestored, m.CheckpointBytes, m.ResumeCyclesSaved = s.ckStats.Snapshot()
	}
	if s.limiter != nil {
		m.HasAIMD = true
		m.AIMDLimit, m.ShedAIMD = s.limiter.snapshot()
	}
	m.Goroutines = runtime.NumGoroutine()
	m.FaultsInjected = faultinject.Fires()

	cs := s.cfg.Cache.Stats()
	m.CacheHits, m.CacheMisses, m.CacheEvictions, m.CacheEntries = cs.Hits, cs.Misses, cs.Evictions, cs.Entries
	m.CellsSimulated = cs.Misses
	if s.cfg.Store != nil {
		m.HasStore = true
		ss := s.cfg.Store.Stats()
		m.StoreHits, m.StoreMisses, m.StoreEvictions = ss.Hits, ss.Misses, ss.Evictions
		m.StoreCorrupt, m.StoreWrites = ss.Corrupt, ss.Writes
		m.StoreIOErrors = ss.IOErrors
		m.StoreEntries, m.StoreBytes = ss.Entries, ss.Bytes
		// Every in-memory miss consulted the store; the store's hits are
		// the ones that skipped simulation.
		if ss.Hits <= m.CellsSimulated {
			m.CellsSimulated -= ss.Hits
		} else {
			m.CellsSimulated = 0
		}
	}
	if b := s.cfg.Breaker; b != nil {
		m.HasBreaker = true
		bs := b.Stats()
		m.BreakerState = bs.State
		m.StoreDegraded = bs.State != store.BreakerClosed
		m.BreakerTrips, m.BreakerShortCircuits, m.BreakerProbes = bs.Trips, bs.ShortCircuits, bs.Probes
	}
	if jl := s.cfg.Journal; jl != nil {
		m.HasJournal = true
		js := jl.Stats()
		m.JournalWrites, m.JournalErrors = js.Writes, js.Errors
	}
	return m
}

// WriteProm renders the snapshot in Prometheus text exposition format.
func (m Metrics) WriteProm(w *strings.Builder) {
	counter := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %v\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}

	fmt.Fprintf(w, "# HELP smtd_jobs_total Jobs finished, by terminal state.\n# TYPE smtd_jobs_total counter\n")
	fmt.Fprintf(w, "smtd_jobs_total{state=\"done\"} %d\n", m.JobsDone)
	fmt.Fprintf(w, "smtd_jobs_total{state=\"failed\"} %d\n", m.JobsFailed)
	fmt.Fprintf(w, "smtd_jobs_total{state=\"cancelled\"} %d\n", m.JobsCancelled)
	fmt.Fprintf(w, "# HELP smtd_cells_total Cells finished, by terminal state.\n# TYPE smtd_cells_total counter\n")
	fmt.Fprintf(w, "smtd_cells_total{state=\"done\"} %d\n", m.CellsDone)
	fmt.Fprintf(w, "smtd_cells_total{state=\"failed\"} %d\n", m.CellsFailed)
	fmt.Fprintf(w, "smtd_cells_total{state=\"cancelled\"} %d\n", m.CellsCancelled)

	gauge("smtd_jobs_active", "Jobs currently executing.", m.JobsActive)
	gauge("smtd_queue_depth", "Jobs waiting in the bounded queue.", m.QueueDepth)
	gauge("smtd_queue_capacity", "Capacity of the bounded queue.", m.QueueCapacity)

	counter("smtd_cache_hits_total", "In-memory result cache hits.", m.CacheHits)
	counter("smtd_cache_misses_total", "In-memory result cache misses.", m.CacheMisses)
	counter("smtd_cache_evictions_total", "In-memory cache LRU evictions.", m.CacheEvictions)
	gauge("smtd_cache_entries", "Resident in-memory cache entries.", m.CacheEntries)

	counter("smtd_cells_simulated_total", "Cells that actually ran the simulator (missed every cache tier).", m.CellsSimulated)

	if m.HasStore {
		counter("smtd_store_hits_total", "Disk store hits.", m.StoreHits)
		counter("smtd_store_misses_total", "Disk store misses.", m.StoreMisses)
		counter("smtd_store_evictions_total", "Disk store LRU evictions.", m.StoreEvictions)
		counter("smtd_store_corrupt_total", "Disk store entries dropped as corrupt.", m.StoreCorrupt)
		counter("smtd_store_writes_total", "Disk store entries written.", m.StoreWrites)
		counter("smtd_store_io_errors_total", "Disk store filesystem errors (reads and writes).", m.StoreIOErrors)
		gauge("smtd_store_entries", "Resident disk store entries.", m.StoreEntries)
		gauge("smtd_store_bytes", "Resident disk store bytes.", m.StoreBytes)
	}

	fmt.Fprintf(w, "# HELP smtd_submit_rejected_total Submissions refused, by reason.\n# TYPE smtd_submit_rejected_total counter\n")
	fmt.Fprintf(w, "smtd_submit_rejected_total{reason=\"queue_full\"} %d\n", m.SubmitRejectedFull)
	fmt.Fprintf(w, "smtd_submit_rejected_total{reason=\"draining\"} %d\n", m.SubmitRejectedDraining)
	counter("smtd_idempotent_hits_total", "Submissions deduplicated onto a live job via Idempotency-Key.", m.IdemHits)
	counter("smtd_cells_timed_out_total", "Cells failed by the watchdog timeout.", m.CellsTimedOut)
	counter("smtd_jobs_recovered_total", "Journaled jobs re-enqueued after a restart.", m.JobsRecovered)
	counter("smtd_jobs_abandoned_total", "Journaled jobs marked failed-with-cause after a restart.", m.JobsAbandoned)

	fmt.Fprintf(w, "# HELP smtd_shed_total Submissions or jobs shed by overload control, by reason.\n# TYPE smtd_shed_total counter\n")
	fmt.Fprintf(w, "smtd_shed_total{reason=\"deadline\"} %d\n", m.ShedDeadline)
	fmt.Fprintf(w, "smtd_shed_total{reason=\"aimd\"} %d\n", m.ShedAIMD)
	fmt.Fprintf(w, "smtd_shed_total{reason=\"quota\"} %d\n", m.ShedQuota)
	counter("smtd_queue_wait_seconds_total", "Cumulative time jobs spent queued before a worker picked them up.", m.QueueWaitSeconds)
	gauge("smtd_queue_wait_ewma_seconds", "Exponentially-weighted recent queue wait (the cluster steal signal).", m.QueueWaitEWMASeconds)
	counter("smtd_queue_pops_total", "Jobs handed to workers (denominator for mean queue wait).", m.QueueWaitPops)
	if m.HasAIMD {
		gauge("smtd_aimd_limit", "Current AIMD limit on outstanding (queued+active) jobs.", m.AIMDLimit)
	}

	if m.HasCheckpoint {
		counter("smtd_checkpoints_written_total", "Cell checkpoints written to the sink.", m.CheckpointsWritten)
		counter("smtd_checkpoints_restored_total", "Cells resumed from a checkpoint instead of cycle zero.", m.CheckpointsRestored)
		counter("smtd_checkpoint_bytes_total", "Encoded checkpoint bytes written.", m.CheckpointBytes)
		counter("smtd_resume_cycles_saved_total", "Simulated cycles restores skipped re-running.", m.ResumeCyclesSaved)
		counter("smtd_checkpoints_on_timeout_total", "Watchdog timeouts that secured a final checkpoint before abandoning the cell.", m.CheckpointsOnTimeout)
		counter("smtd_preemptions_total", "Jobs checkpointed and re-queued to make room for higher-priority work.", m.Preemptions)
	}

	if m.HasBreaker {
		degraded := 0
		if m.StoreDegraded {
			degraded = 1
		}
		gauge("smtd_store_degraded", "1 while the store circuit breaker is not closed (memory-only caching).", degraded)
		fmt.Fprintf(w, "# HELP smtd_store_breaker_state Circuit state (1 on exactly one of the three).\n# TYPE smtd_store_breaker_state gauge\n")
		for _, st := range []string{store.BreakerClosed, store.BreakerOpen, store.BreakerHalfOpen} {
			v := 0
			if m.BreakerState == st {
				v = 1
			}
			fmt.Fprintf(w, "smtd_store_breaker_state{state=%q} %d\n", st, v)
		}
		counter("smtd_store_breaker_trips_total", "Circuit transitions to open.", m.BreakerTrips)
		counter("smtd_store_breaker_short_circuits_total", "Store operations refused while the circuit was open.", m.BreakerShortCircuits)
		counter("smtd_store_breaker_probes_total", "Half-open probe operations admitted.", m.BreakerProbes)
	}

	if m.HasJournal {
		counter("smtd_journal_writes_total", "Journal records persisted.", m.JournalWrites)
		counter("smtd_journal_errors_total", "Journal writes that failed.", m.JournalErrors)
	}

	if len(m.Tenants) > 0 {
		names := make([]string, 0, len(m.Tenants))
		for name := range m.Tenants {
			names = append(names, name)
		}
		sort.Strings(names)
		row := func(name, help string, render func(t string, v TenantMetrics)) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
			for _, t := range names {
				render(t, m.Tenants[t])
			}
		}
		rowGauge := func(name, help string, render func(t string, v TenantMetrics)) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
			for _, t := range names {
				render(t, m.Tenants[t])
			}
		}
		row("smtd_tenant_jobs_admitted_total", "Jobs admitted, by tenant.", func(t string, v TenantMetrics) {
			fmt.Fprintf(w, "smtd_tenant_jobs_admitted_total{tenant=%q} %d\n", t, v.JobsAdmitted)
		})
		row("smtd_tenant_cells_total", "Cells finished, by tenant and terminal state.", func(t string, v TenantMetrics) {
			fmt.Fprintf(w, "smtd_tenant_cells_total{tenant=%q,state=\"done\"} %d\n", t, v.CellsDone)
			fmt.Fprintf(w, "smtd_tenant_cells_total{tenant=%q,state=\"failed\"} %d\n", t, v.CellsFailed)
		})
		row("smtd_tenant_cells_simulated_total", "Cells that ran the simulator (missed every cache tier), by tenant.", func(t string, v TenantMetrics) {
			fmt.Fprintf(w, "smtd_tenant_cells_simulated_total{tenant=%q} %d\n", t, v.CellsSimulated)
		})
		row("smtd_tenant_queue_wait_seconds_total", "Cumulative queue wait, by tenant.", func(t string, v TenantMetrics) {
			fmt.Fprintf(w, "smtd_tenant_queue_wait_seconds_total{tenant=%q} %v\n", t, v.QueueWaitSeconds)
		})
		row("smtd_tenant_queue_pops_total", "Jobs handed to workers, by tenant.", func(t string, v TenantMetrics) {
			fmt.Fprintf(w, "smtd_tenant_queue_pops_total{tenant=%q} %d\n", t, v.QueueWaitPops)
		})
		row("smtd_tenant_cycles_charged_total", "Simulated cycles charged against the tenant's budget window.", func(t string, v TenantMetrics) {
			fmt.Fprintf(w, "smtd_tenant_cycles_charged_total{tenant=%q} %d\n", t, v.CyclesCharged)
		})
		row("smtd_tenant_shed_total", "Submissions refused by per-tenant quotas, by tenant and cause.", func(t string, v TenantMetrics) {
			fmt.Fprintf(w, "smtd_tenant_shed_total{tenant=%q,cause=%q} %d\n", t, QuotaQueuedJobs, v.ShedQueuedJobs)
			fmt.Fprintf(w, "smtd_tenant_shed_total{tenant=%q,cause=%q} %d\n", t, QuotaActiveCells, v.ShedActiveCells)
			fmt.Fprintf(w, "smtd_tenant_shed_total{tenant=%q,cause=%q} %d\n", t, QuotaCycleBudget, v.ShedCycleBudget)
		})
		row("smtd_tenant_store_bytes_total", "Store-namespace bytes attributed to the tenant, by direction.", func(t string, v TenantMetrics) {
			fmt.Fprintf(w, "smtd_tenant_store_bytes_total{tenant=%q,dir=\"written\"} %d\n", t, v.StoreBytesWritten)
			fmt.Fprintf(w, "smtd_tenant_store_bytes_total{tenant=%q,dir=\"served\"} %d\n", t, v.StoreBytesServed)
		})
		rowGauge("smtd_tenant_queue_depth", "Jobs currently queued, by tenant.", func(t string, v TenantMetrics) {
			fmt.Fprintf(w, "smtd_tenant_queue_depth{tenant=%q} %d\n", t, v.QueuedJobs)
		})
		rowGauge("smtd_tenant_active_cells", "Live (queued+running) cells, by tenant.", func(t string, v TenantMetrics) {
			fmt.Fprintf(w, "smtd_tenant_active_cells{tenant=%q} %d\n", t, v.ActiveCells)
		})
	}

	counter("smtd_faults_injected_total", "Fault-plan rule fires (0 unless a plan is armed).", m.FaultsInjected)
	gauge("smtd_goroutines", "Goroutines in the daemon process.", m.Goroutines)
	gauge("smtd_uptime_seconds", "Seconds since the service started.", m.UptimeSeconds)
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	s.Snapshot().WriteProm(&b)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, b.String())
}
