package service

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"smtexplore/internal/runner"
	"smtexplore/internal/store"
)

// Submission errors, mapped to HTTP statuses by the handler layer.
var (
	// ErrQueueFull reports backpressure: the bounded job queue is at
	// capacity (HTTP 429 + Retry-After).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining reports a service that has stopped intake for
	// shutdown (HTTP 503).
	ErrDraining = errors.New("service: draining, not accepting jobs")
)

// Config sizes the service.
type Config struct {
	// Workers bounds concurrent simulation cells within one job
	// (≤0 → GOMAXPROCS), exactly like the CLIs' -workers flag.
	Workers int
	// MaxActive is the number of jobs executing concurrently
	// (≤0 → 1).
	MaxActive int
	// QueueDepth bounds jobs accepted beyond the active ones; a full
	// queue rejects submissions with ErrQueueFull (≤0 → 16).
	QueueDepth int
	// Cache is the shared result cache (nil → a fresh unbounded one).
	// Give it a WithLimit bound for long-lived daemons and a WithTier
	// store for persistence.
	Cache *runner.Cache
	// Store, when set, is reported in /metrics (hit/miss/evict/bytes).
	// It should be the same store attached to Cache as its tier.
	Store *store.Store
	// ArtifactDir, when set, enables observe cells: per-cell obs
	// artifacts land under ArtifactDir/<job>/cell-<i>/.
	ArtifactDir string
}

// Service owns the job registry, the bounded queue and the worker pool.
// Create with New, serve its Handler, stop with Drain (graceful) or
// Close (abandon).
type Service struct {
	cfg     Config
	baseCtx context.Context
	abort   context.CancelFunc
	queue   chan *Job
	workers sync.WaitGroup
	started time.Time

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	seq      int
	draining bool
	active   int

	// Terminal-outcome counters for /metrics.
	jobsDone, jobsFailed, jobsCancelled    uint64
	cellsDone, cellsFailed, cellsCancelled uint64

	// runCell is the cell executor; tests substitute it to make queue
	// and drain behaviour deterministic.
	runCell func(ctx context.Context, spec CellSpec, artifactDir string) CellResult
}

// New starts a service with cfg.MaxActive workers. The caller owns the
// lifecycle: Drain or Close it when done.
func New(cfg Config) *Service {
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.Cache == nil {
		cfg.Cache = runner.NewCache()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:     cfg,
		baseCtx: ctx,
		abort:   cancel,
		queue:   make(chan *Job, cfg.QueueDepth),
		started: time.Now(),
		jobs:    make(map[string]*Job),
	}
	s.runCell = s.execCell
	for range cfg.MaxActive {
		s.workers.Add(1)
		go func() {
			defer s.workers.Done()
			for j := range s.queue {
				s.runJob(j)
			}
		}()
	}
	return s
}

// Submit validates and enqueues a batch. It never blocks: a full queue
// returns ErrQueueFull immediately (the HTTP layer translates that into
// 429 + Retry-After so clients can apply backpressure).
func (s *Service) Submit(specs []CellSpec) (*Job, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("service: empty batch")
	}
	for i, sp := range specs {
		if err := sp.Validate(s.cfg.ArtifactDir != ""); err != nil {
			return nil, fmt.Errorf("service: cell %d: %w", i, err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	s.seq++
	j := newJob(fmt.Sprintf("j%04d", s.seq), specs)
	select {
	case s.queue <- j:
	default:
		s.seq--
		return nil, ErrQueueFull
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	return j, nil
}

// Job looks up a job by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns all jobs in submission order.
func (s *Service) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Cancel aborts a job: a queued job is marked cancelled before it ever
// starts (the worker skips it); a running job has its context cancelled,
// which stops feeding new cells through the runner's existing ctx path —
// cells already simulating complete, later ones report cancelled.
// Returns false for unknown IDs; cancelling a terminal job is a no-op.
func (s *Service) Cancel(id string) bool {
	j, ok := s.Job(id)
	if !ok {
		return false
	}
	j.mu.Lock()
	cancel := j.cancel
	queued := j.state == JobQueued
	j.mu.Unlock()
	if queued {
		j.cancelPendingCells("cancelled before start")
		if j.setState(JobCancelled, "cancelled before start") {
			s.count(JobCancelled)
		}
		return true
	}
	if cancel != nil {
		cancel()
	}
	return true
}

// runJob executes one job's cells over the runner pool, streaming
// per-cell completion events as they land.
func (s *Service) runJob(j *Job) {
	j.mu.Lock()
	if j.state != JobQueued {
		j.mu.Unlock()
		return // cancelled while queued
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	j.cancel = cancel
	j.mu.Unlock()
	defer cancel()

	s.mu.Lock()
	s.active++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.active--
		s.mu.Unlock()
	}()

	j.setState(JobRunning, "")

	idxs := make([]int, len(j.Specs))
	for i := range idxs {
		idxs[i] = i
	}
	// The job context is handled inside the cell function (so cancelled
	// cells are recorded per cell instead of discarding the whole
	// batch); Map itself runs to completion over every index.
	results, err := runner.Map(context.Background(), s.cfg.Workers, idxs, func(_ context.Context, i int) (CellResult, error) {
		spec := j.Specs[i]
		if ctx.Err() != nil {
			res := CellResult{Label: spec.Label(), State: CellCancelled, Error: ctx.Err().Error()}
			j.setCell(i, res)
			return res, nil
		}
		j.markCellRunning(i)
		res := s.runCell(ctx, spec, filepath.Join(s.cfg.ArtifactDir, j.ID, fmt.Sprintf("cell-%d", i)))
		j.setCell(i, res)
		return res, nil
	})
	if err != nil {
		// Unreachable in practice (the cell fn never errors and execCell
		// recovers panics), but a runner failure must still terminate
		// the job.
		if j.setState(JobFailed, err.Error()) {
			s.count(JobFailed)
		}
		return
	}

	state, msg := JobDone, ""
	var failed, cancelled int
	for _, r := range results {
		switch r.State {
		case CellFailed:
			failed++
			if msg == "" {
				msg = fmt.Sprintf("cell %d (%s): %s", r.Index, r.Label, r.Error)
			}
		case CellCancelled:
			cancelled++
		}
	}
	s.countCells(results)
	switch {
	case failed > 0:
		state = JobFailed
	case cancelled > 0:
		state, msg = JobCancelled, fmt.Sprintf("%d of %d cells cancelled", cancelled, len(results))
	}
	if j.setState(state, msg) {
		s.count(state)
	}
}

func (s *Service) count(state string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch state {
	case JobDone:
		s.jobsDone++
	case JobFailed:
		s.jobsFailed++
	case JobCancelled:
		s.jobsCancelled++
	}
}

func (s *Service) countCells(results []CellResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range results {
		switch r.State {
		case CellDone:
			s.cellsDone++
		case CellFailed:
			s.cellsFailed++
		case CellCancelled:
			s.cellsCancelled++
		}
	}
}

// stopIntake flips the service into draining mode and closes the queue
// exactly once, so workers exit after finishing what was accepted.
func (s *Service) stopIntake() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
}

// Draining reports whether intake has stopped.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain stops intake and waits for every accepted job to finish. If ctx
// expires first, outstanding job contexts are cancelled (running cells
// complete, pending ones are skipped as cancelled) and Drain keeps
// waiting for the workers to wind down before returning ctx's error.
func (s *Service) Drain(ctx context.Context) error {
	s.stopIntake()
	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.abort()
		<-done
		return ctx.Err()
	}
}

// Close aborts everything immediately: intake stops, job contexts are
// cancelled, and workers are waited out (cells already inside the
// simulator finish — it has no preemption points).
func (s *Service) Close() {
	s.stopIntake()
	s.abort()
	s.workers.Wait()
}
