package service

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"smtexplore/internal/faultinject"
	"smtexplore/internal/runner"
	"smtexplore/internal/store"
)

// Submission errors, mapped to HTTP statuses by the handler layer.
var (
	// ErrQueueFull reports backpressure: the bounded job queue is at
	// capacity (HTTP 429 + Retry-After).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining reports a service that has stopped intake for
	// shutdown (HTTP 503).
	ErrDraining = errors.New("service: draining, not accepting jobs")
	// ErrJournal reports a submission refused because its journal
	// record could not be persisted: accepting a job the daemon could
	// lose on crash would break the durability contract (HTTP 503 so
	// the client retries).
	ErrJournal = errors.New("service: journal write failed")
)

// Config sizes the service.
type Config struct {
	// Workers bounds concurrent simulation cells within one job
	// (≤0 → GOMAXPROCS), exactly like the CLIs' -workers flag.
	Workers int
	// MaxActive is the number of jobs executing concurrently
	// (≤0 → 1).
	MaxActive int
	// QueueDepth bounds jobs accepted beyond the active ones; a full
	// queue rejects submissions with ErrQueueFull (≤0 → 16).
	QueueDepth int
	// Cache is the shared result cache (nil → a fresh unbounded one).
	// Give it a WithLimit bound for long-lived daemons and a WithTier
	// store for persistence.
	Cache *runner.Cache
	// Store, when set, is reported in /metrics (hit/miss/evict/bytes).
	// It should be the same store attached to Cache as its tier.
	Store *store.Store
	// ArtifactDir, when set, enables observe cells: per-cell obs
	// artifacts land under ArtifactDir/<job>/cell-<i>/.
	ArtifactDir string
	// Breaker, when set, is the circuit breaker wrapped around Store
	// (and attached to Cache as its tier). /healthz reports "degraded"
	// while it is open and probes it toward recovery; /metrics exposes
	// its state and counters.
	Breaker *store.Breaker
	// Journal, when set, makes accepted jobs crash-safe: every submit
	// is journaled before it is acknowledged, terminal states are
	// recorded, and New re-runs (or marks failed-with-cause) any job
	// the previous process lost mid-flight.
	Journal *Journal
	// CellTimeout, when > 0, arms a per-cell watchdog: a cell that has
	// not returned within this budget is failed (and its goroutine
	// abandoned to finish in the background) so one wedged cell cannot
	// stall its job, let alone the daemon.
	CellTimeout time.Duration
}

// Service owns the job registry, the bounded queue and the worker pool.
// Create with New, serve its Handler, stop with Drain (graceful) or
// Close (abandon).
type Service struct {
	cfg     Config
	baseCtx context.Context
	abort   context.CancelFunc
	queue   chan *Job
	workers sync.WaitGroup
	started time.Time

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	idem     map[string]string // Idempotency-Key -> job ID
	seq      int
	draining bool
	active   int

	// Terminal-outcome counters for /metrics.
	jobsDone, jobsFailed, jobsCancelled    uint64
	cellsDone, cellsFailed, cellsCancelled uint64
	// Robustness counters for /metrics.
	rejectedFull, rejectedDraining uint64
	idemHits                       uint64
	cellsTimedOut                  uint64
	jobsRecovered, jobsAbandoned   uint64

	// runCell is the cell executor; tests substitute it to make queue
	// and drain behaviour deterministic.
	runCell func(ctx context.Context, spec CellSpec, artifactDir string) CellResult
}

// New starts a service with cfg.MaxActive workers. The caller owns the
// lifecycle: Drain or Close it when done.
func New(cfg Config) *Service {
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.Cache == nil {
		cfg.Cache = runner.NewCache()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:     cfg,
		baseCtx: ctx,
		abort:   cancel,
		queue:   make(chan *Job, cfg.QueueDepth),
		started: time.Now(),
		jobs:    make(map[string]*Job),
		idem:    make(map[string]string),
	}
	s.runCell = s.execCell
	for range cfg.MaxActive {
		s.workers.Add(1)
		go func() {
			defer s.workers.Done()
			for j := range s.queue {
				s.runJob(j)
			}
		}()
	}
	if cfg.Journal != nil {
		s.recoverJournal()
	}
	return s
}

// recoverJournal replays the journal after a restart: jobs the previous
// process accepted but never finished are re-enqueued under their
// original IDs (their cells are deterministic, and usually one disk
// read away), or — when re-admission is impossible — registered as
// failed with an explicit cause, so no accepted job ever silently
// vanishes. Terminal records are left on disk untouched.
func (s *Service) recoverJournal() {
	recs, err := s.cfg.Journal.Load()
	if err != nil {
		return
	}
	for _, rec := range recs {
		if n := idNum(rec.ID); n > s.seq {
			s.seq = n
		}
	}
	for _, rec := range recs {
		if rec.Terminal() {
			continue
		}
		cause := ""
		for i, sp := range rec.Specs {
			if err := sp.Validate(s.cfg.ArtifactDir != ""); err != nil {
				cause = fmt.Sprintf("not recovered after restart: cell %d: %v", i, err)
				break
			}
		}
		if len(rec.Specs) == 0 {
			cause = "not recovered after restart: empty record"
		}
		j := newJob(rec.ID, rec.Specs)
		enqueued := false
		s.mu.Lock()
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
		if rec.IdemKey != "" {
			s.idem[rec.IdemKey] = j.ID
		}
		if cause == "" {
			select {
			case s.queue <- j:
				enqueued = true
				s.jobsRecovered++
			default:
				cause = "not recovered after restart: queue full"
			}
		}
		if !enqueued {
			s.jobsAbandoned++
		}
		s.mu.Unlock()
		if !enqueued {
			j.failPendingCells(cause)
			s.finish(j, JobFailed, cause)
		}
	}
}

// Submit validates and enqueues a batch. It never blocks: a full queue
// returns ErrQueueFull immediately (the HTTP layer translates that into
// 429 + Retry-After so clients can apply backpressure).
func (s *Service) Submit(specs []CellSpec) (*Job, error) {
	return s.SubmitIdem(specs, "")
}

// SubmitIdem is Submit with an optional idempotency key (the HTTP layer
// passes the Idempotency-Key header; smtctl derives it from the request
// content). While a job submitted under the same key is still live, a
// duplicate submission returns that job instead of enqueuing a second
// copy — so a client retrying a submit whose response it never saw
// cannot duplicate work. Once the matching job is terminal, the key is
// fair game again (a deliberate resubmission is then served from the
// result caches anyway).
func (s *Service) SubmitIdem(specs []CellSpec, idemKey string) (*Job, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("service: empty batch")
	}
	for i, sp := range specs {
		if err := sp.Validate(s.cfg.ArtifactDir != ""); err != nil {
			return nil, fmt.Errorf("service: cell %d: %w", i, err)
		}
	}
	if err := faultinject.Hit(faultinject.PointQueueAdmit); err != nil {
		s.mu.Lock()
		s.rejectedFull++
		s.mu.Unlock()
		return nil, fmt.Errorf("%w (%v)", ErrQueueFull, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.rejectedDraining++
		return nil, ErrDraining
	}
	if idemKey != "" {
		if id, ok := s.idem[idemKey]; ok {
			if j := s.jobs[id]; j != nil {
				if state, _ := j.State(); state == JobQueued || state == JobRunning {
					s.idemHits++
					return j, nil
				}
			}
		}
	}
	s.seq++
	j := newJob(fmt.Sprintf("j%04d", s.seq), specs)
	if jl := s.cfg.Journal; jl != nil {
		// Journal before enqueue: a job must be durable before anyone
		// is told it was accepted. The fsync happens under s.mu, which
		// serialises submissions — milliseconds, and correct.
		if err := jl.write(Record{ID: j.ID, IdemKey: idemKey, Specs: specs, State: JobQueued, Created: time.Now()}); err != nil {
			s.seq--
			return nil, fmt.Errorf("%w: %v", ErrJournal, err)
		}
	}
	select {
	case s.queue <- j:
	default:
		s.seq--
		s.rejectedFull++
		if jl := s.cfg.Journal; jl != nil {
			jl.remove(j.ID)
		}
		return nil, ErrQueueFull
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	if idemKey != "" {
		s.idem[idemKey] = j.ID
	}
	return j, nil
}

// Job looks up a job by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns all jobs in submission order.
func (s *Service) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Cancel aborts a job: a queued job is marked cancelled before it ever
// starts (the worker skips it); a running job has its context cancelled,
// which stops feeding new cells through the runner's existing ctx path —
// cells already simulating complete, later ones report cancelled.
// Returns false for unknown IDs; cancelling a terminal job is a no-op.
func (s *Service) Cancel(id string) bool {
	j, ok := s.Job(id)
	if !ok {
		return false
	}
	j.mu.Lock()
	cancel := j.cancel
	queued := j.state == JobQueued
	j.mu.Unlock()
	if queued {
		j.cancelPendingCells("cancelled before start")
		s.finish(j, JobCancelled, "cancelled before start")
		return true
	}
	if cancel != nil {
		cancel()
	}
	return true
}

// runJob executes one job's cells over the runner pool, streaming
// per-cell completion events as they land.
func (s *Service) runJob(j *Job) {
	j.mu.Lock()
	if j.state != JobQueued {
		j.mu.Unlock()
		return // cancelled while queued
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	j.cancel = cancel
	j.mu.Unlock()
	defer cancel()

	s.mu.Lock()
	s.active++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.active--
		s.mu.Unlock()
	}()

	j.setState(JobRunning, "")

	idxs := make([]int, len(j.Specs))
	for i := range idxs {
		idxs[i] = i
	}
	// The job context is handled inside the cell function (so cancelled
	// cells are recorded per cell instead of discarding the whole
	// batch); Map itself runs to completion over every index.
	results, err := runner.Map(context.Background(), s.cfg.Workers, idxs, func(_ context.Context, i int) (CellResult, error) {
		spec := j.Specs[i]
		if ctx.Err() != nil {
			res := CellResult{Label: spec.Label(), State: CellCancelled, Error: ctx.Err().Error()}
			j.setCell(i, res)
			return res, nil
		}
		j.markCellRunning(i)
		res := s.runCell(ctx, spec, filepath.Join(s.cfg.ArtifactDir, j.ID, fmt.Sprintf("cell-%d", i)))
		j.setCell(i, res)
		return res, nil
	})
	if err != nil {
		// Unreachable in practice (the cell fn never errors and execCell
		// recovers panics), but a runner failure must still terminate
		// the job.
		s.finish(j, JobFailed, err.Error())
		return
	}

	state, msg := JobDone, ""
	var failed, cancelled int
	for _, r := range results {
		switch r.State {
		case CellFailed:
			failed++
			if msg == "" {
				msg = fmt.Sprintf("cell %d (%s): %s", r.Index, r.Label, r.Error)
			}
		case CellCancelled:
			cancelled++
		}
	}
	s.countCells(results)
	switch {
	case failed > 0:
		state = JobFailed
	case cancelled > 0:
		state, msg = JobCancelled, fmt.Sprintf("%d of %d cells cancelled", cancelled, len(results))
	}
	s.finish(j, state, msg)
}

// finish drives j to a terminal state exactly once: counts the outcome
// and journals it so a restart will not re-run finished work. A no-op
// if the job is already terminal.
func (s *Service) finish(j *Job, state, msg string) {
	if !j.setState(state, msg) {
		return
	}
	s.count(state)
	if jl := s.cfg.Journal; jl != nil {
		// Best-effort: a failed terminal write means the next restart
		// re-runs a finished (deterministic, cached) job — wasteful but
		// correct. The journal's error counter records it.
		jl.write(Record{ID: j.ID, Specs: j.Specs, State: state, Error: msg, Created: time.Now()})
	}
}

func (s *Service) count(state string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch state {
	case JobDone:
		s.jobsDone++
	case JobFailed:
		s.jobsFailed++
	case JobCancelled:
		s.jobsCancelled++
	}
}

func (s *Service) countCells(results []CellResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range results {
		switch r.State {
		case CellDone:
			s.cellsDone++
		case CellFailed:
			s.cellsFailed++
		case CellCancelled:
			s.cellsCancelled++
		}
	}
}

// stopIntake flips the service into draining mode and closes the queue
// exactly once, so workers exit after finishing what was accepted.
func (s *Service) stopIntake() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
}

// Draining reports whether intake has stopped.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain stops intake and waits for every accepted job to finish. If ctx
// expires first, outstanding job contexts are cancelled (running cells
// complete, pending ones are skipped as cancelled) and Drain keeps
// waiting for the workers to wind down before returning ctx's error.
func (s *Service) Drain(ctx context.Context) error {
	s.stopIntake()
	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.abort()
		<-done
		return ctx.Err()
	}
}

// Close aborts everything immediately: intake stops, job contexts are
// cancelled, and workers are waited out (cells already inside the
// simulator finish — it has no preemption points).
func (s *Service) Close() {
	s.stopIntake()
	s.abort()
	s.workers.Wait()
}
