package service

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"smtexplore/internal/checkpoint"
	"smtexplore/internal/experiments"
	"smtexplore/internal/faultinject"
	"smtexplore/internal/runner"
	"smtexplore/internal/store"
	"smtexplore/internal/tenant"
)

// Submission errors, mapped to HTTP statuses by the handler layer.
var (
	// ErrQueueFull reports backpressure: the bounded job queue is at
	// capacity (HTTP 429 + Retry-After).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining reports a service that has stopped intake for
	// shutdown (HTTP 503).
	ErrDraining = errors.New("service: draining, not accepting jobs")
	// ErrJournal reports a submission refused because its journal
	// record could not be persisted: accepting a job the daemon could
	// lose on crash would break the durability contract (HTTP 503 so
	// the client retries).
	ErrJournal = errors.New("service: journal write failed")
	// ErrShedLoad reports the AIMD limiter shedding a submission
	// because measured queue wait is above target (HTTP 429 +
	// Retry-After).
	ErrShedLoad = errors.New("service: shedding load, queue wait above target")
	// ErrDeadlineExpired reports a submission whose deadline had
	// already passed at admission (HTTP 429: running it would only
	// waste the workers the deadline was meant to protect).
	ErrDeadlineExpired = errors.New("service: deadline already expired")
)

// Config sizes the service.
type Config struct {
	// Workers bounds concurrent simulation cells within one job
	// (≤0 → GOMAXPROCS), exactly like the CLIs' -workers flag.
	Workers int
	// MaxActive is the number of jobs executing concurrently
	// (≤0 → 1).
	MaxActive int
	// QueueDepth bounds jobs accepted beyond the active ones; a full
	// queue rejects submissions with ErrQueueFull (≤0 → 16).
	QueueDepth int
	// Cache is the shared result cache (nil → a fresh unbounded one).
	// Give it a WithLimit bound for long-lived daemons and a WithTier
	// store for persistence.
	Cache *runner.Cache
	// Store, when set, is reported in /metrics (hit/miss/evict/bytes).
	// It should be the same store attached to Cache as its tier.
	Store *store.Store
	// ArtifactDir, when set, enables observe cells: per-cell obs
	// artifacts land under ArtifactDir/<job>/cell-<i>/.
	ArtifactDir string
	// Breaker, when set, is the circuit breaker wrapped around Store
	// (and attached to Cache as its tier). /healthz reports "degraded"
	// while it is open and probes it toward recovery; /metrics exposes
	// its state and counters.
	Breaker *store.Breaker
	// Journal, when set, makes accepted jobs crash-safe: every submit
	// is journaled before it is acknowledged, terminal states are
	// recorded, and New re-runs (or marks failed-with-cause) any job
	// the previous process lost mid-flight.
	Journal *Journal
	// CellTimeout, when > 0, arms a per-cell watchdog: a cell that has
	// not returned within this budget is failed (and its goroutine
	// abandoned to finish in the background) so one wedged cell cannot
	// stall its job, let alone the daemon. With checkpointing enabled
	// the watchdog first requests a cooperative stop and grants
	// StopGrace for a final checkpoint, so a retried cell resumes
	// instead of restarting.
	CellTimeout time.Duration
	// StopGrace bounds how long the watchdog waits for a stopping cell
	// to park its final checkpoint before abandoning it (≤0 → 2s).
	StopGrace time.Duration
	// CheckpointEvery, when > 0, makes kernel cells pausable: every
	// CheckpointEvery simulated cycles the cell snapshots its machine
	// into CheckpointSink and polls for a cooperative stop. This is
	// what turns preemption, drain and watchdog timeouts from "lose
	// the work" into "resume from the last pause point".
	CheckpointEvery uint64
	// CheckpointSink stores cell checkpoints; nil with CheckpointEvery
	// set falls back to an in-memory sink (resumes survive preemption
	// but not the process). Point it at the disk store (or its
	// breaker) to survive crashes.
	CheckpointSink checkpoint.Sink
	// QueueWaitTarget, when > 0, arms the AIMD admission limiter:
	// queue waits above the target halve the allowed outstanding jobs,
	// waits within it add one back, and submissions beyond the limit
	// are shed with ErrShedLoad.
	QueueWaitTarget time.Duration
	// Tenants, when set, arms per-tenant quotas (refusals carry a
	// QuotaError with the exhausted quota's cause) and fair-share
	// weights for the queue's deficit round-robin. Nil means no
	// quotas and weight 1 for everyone — single-tenant behavior.
	Tenants *tenant.Registry
	// StoreLedger, when set, attributes store traffic (bytes written
	// and served) to tenants via the per-cell meter; /metrics exposes
	// the rows. Nil records nothing.
	StoreLedger *store.Ledger
	// AgeAfter bounds starvation: a queued job that has waited longer
	// is served next regardless of priority. 0 means the 30s default;
	// negative disables aging entirely.
	AgeAfter time.Duration
	// AllowFaultAPI opens POST/DELETE /v1/faults, letting chaos
	// harnesses arm faultinject plans over HTTP mid-run. Off by default:
	// production daemons must not expose remote fault injection.
	AllowFaultAPI bool
}

// Service owns the job registry, the bounded queue and the worker pool.
// Create with New, serve its Handler, stop with Drain (graceful) or
// Close (abandon).
type Service struct {
	cfg     Config
	baseCtx context.Context
	abort   context.CancelFunc
	queue   *jobQueue
	limiter *aimd // nil unless QueueWaitTarget > 0
	ckpt    *experiments.Checkpointing
	ckStats *experiments.CheckpointStats
	workers sync.WaitGroup
	started time.Time

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	idem     map[string]string // Idempotency-Key -> job ID
	seq      int
	draining bool
	active   int
	// Per-tenant accounting: live (queued + running) cells behind the
	// MaxActiveCells quota, and the counter rows behind /metrics
	// tenant labels.
	tenantCells map[string]int
	tenants     map[string]*tenantStats

	// Terminal-outcome counters for /metrics.
	jobsDone, jobsFailed, jobsCancelled    uint64
	cellsDone, cellsFailed, cellsCancelled uint64
	// Robustness counters for /metrics.
	rejectedFull, rejectedDraining uint64
	idemHits                       uint64
	cellsTimedOut                  uint64
	jobsRecovered, jobsAbandoned   uint64
	// Checkpoint/overload counters for /metrics.
	preemptions          uint64
	checkpointsOnTimeout uint64
	shedDeadline         uint64
	shedQuota            uint64
	queueWaitSeconds     float64
	queueWaitPops        uint64
	queueWaitEWMA        float64 // seconds; the cluster's steal signal

	// runCell is the cell executor; tests substitute it to make queue
	// and drain behaviour deterministic. ctl (nil when checkpointing
	// is off) carries the cell's preemption wiring.
	runCell func(ctx context.Context, spec CellSpec, artifactDir string, ctl *cellCtl) CellResult
}

// New starts a service with cfg.MaxActive workers. The caller owns the
// lifecycle: Drain or Close it when done.
func New(cfg Config) *Service {
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.Cache == nil {
		cfg.Cache = runner.NewCache()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:         cfg,
		baseCtx:     ctx,
		abort:       cancel,
		queue:       newJobQueue(cfg.QueueDepth),
		started:     time.Now(),
		jobs:        make(map[string]*Job),
		idem:        make(map[string]string),
		tenantCells: make(map[string]int),
		tenants:     make(map[string]*tenantStats),
	}
	s.queue.weightOf = cfg.Tenants.Weight // nil-receiver-safe: weight 1
	switch {
	case cfg.AgeAfter > 0:
		s.queue.ageAfter = cfg.AgeAfter
	case cfg.AgeAfter == 0:
		s.queue.ageAfter = 30 * time.Second
	}
	if cfg.QueueWaitTarget > 0 {
		s.limiter = newAIMD(cfg.QueueWaitTarget, cfg.MaxActive+cfg.QueueDepth)
	}
	if cfg.CheckpointEvery > 0 {
		sink := cfg.CheckpointSink
		if sink == nil {
			sink = checkpoint.NewMemSink()
		}
		s.ckStats = &experiments.CheckpointStats{}
		s.ckpt = &experiments.Checkpointing{Every: cfg.CheckpointEvery, Sink: sink, Stats: s.ckStats}
	}
	s.runCell = s.execCell
	for range cfg.MaxActive {
		s.workers.Add(1)
		go func() {
			defer s.workers.Done()
			for {
				j, wait, ok := s.queue.pop()
				if !ok {
					return
				}
				s.noteQueueWait(j.Tenant, wait)
				s.runJob(j)
			}
		}()
	}
	if cfg.Journal != nil {
		s.recoverJournal()
	}
	return s
}

// noteQueueWait records one measured queue wait — globally and
// against the popped job's tenant — and feeds the AIMD control loop
// and the exponentially-weighted recent-wait average that /v1/stats
// exports for the cluster coordinator's steal decisions.
func (s *Service) noteQueueWait(tenantName string, wait time.Duration) {
	s.mu.Lock()
	s.queueWaitSeconds += wait.Seconds()
	s.queueWaitPops++
	const alpha = 0.3 // recent pops dominate, but one outlier cannot
	s.queueWaitEWMA = alpha*wait.Seconds() + (1-alpha)*s.queueWaitEWMA
	ts := s.tstatsLocked(normTenant(tenantName))
	ts.queueWaitSeconds += wait.Seconds()
	ts.queueWaitPops++
	s.mu.Unlock()
	if s.limiter != nil {
		s.limiter.observe(wait)
	}
}

// recoverJournal replays the journal after a restart: jobs the previous
// process accepted but never finished are re-enqueued under their
// original IDs (their cells are deterministic, and usually one disk
// read away), or — when re-admission is impossible — registered as
// failed with an explicit cause, so no accepted job ever silently
// vanishes. Terminal records are left on disk untouched.
func (s *Service) recoverJournal() {
	recs, err := s.cfg.Journal.Load()
	if err != nil {
		return
	}
	for _, rec := range recs {
		if n := idNum(rec.ID); n > s.seq {
			s.seq = n
		}
	}
	for _, rec := range recs {
		if rec.Terminal() {
			continue
		}
		cause := ""
		for i, sp := range rec.Specs {
			if err := sp.Validate(s.cfg.ArtifactDir != ""); err != nil {
				cause = fmt.Sprintf("not recovered after restart: cell %d: %v", i, err)
				break
			}
		}
		if len(rec.Specs) == 0 {
			cause = "not recovered after restart: empty record"
		}
		if cause == "" && !rec.Deadline.IsZero() && !rec.Deadline.After(time.Now()) {
			cause = "deadline expired before the job could be recovered"
		}
		j := newJob(rec.ID, rec.Specs)
		j.Priority = rec.Priority
		j.Deadline = rec.Deadline
		j.Tenant = normTenant(rec.Tenant)
		enqueued := false
		s.mu.Lock()
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
		if rec.IdemKey != "" {
			s.idem[rec.IdemKey] = j.ID
		}
		if cause == "" {
			if s.queue.push(j) {
				enqueued = true
				s.jobsRecovered++
				s.tenantCells[j.Tenant] += len(j.Specs)
				j.charged = true
			} else {
				cause = "not recovered after restart: queue full"
			}
		}
		if !enqueued {
			s.jobsAbandoned++
		}
		s.mu.Unlock()
		if !enqueued {
			j.failPendingCells(cause)
			s.finish(j, JobFailed, cause)
		}
	}
}

// SubmitOptions carries the optional admission parameters of a batch.
type SubmitOptions struct {
	// IdemKey deduplicates retried submissions onto the live job.
	IdemKey string
	// Priority orders the queue (higher first, default 0) and lets the
	// job preempt running lower-priority checkpointable work.
	Priority int
	// Deadline, when nonzero, bounds the job (see Job.Deadline).
	Deadline time.Time
	// Tenant is the identity to account the job to; empty means the
	// default tenant. Must satisfy tenant.ValidName when set.
	Tenant string
}

// Submit validates and enqueues a batch. It never blocks: a full queue
// returns ErrQueueFull immediately (the HTTP layer translates that into
// 429 + Retry-After so clients can apply backpressure).
func (s *Service) Submit(specs []CellSpec) (*Job, error) {
	return s.SubmitWith(specs, SubmitOptions{})
}

// SubmitIdem is Submit with an optional idempotency key (the HTTP layer
// passes the Idempotency-Key header; smtctl derives it from the request
// content). While a job submitted under the same key is still live, a
// duplicate submission returns that job instead of enqueuing a second
// copy — so a client retrying a submit whose response it never saw
// cannot duplicate work. Once the matching job is terminal, the key is
// fair game again (a deliberate resubmission is then served from the
// result caches anyway).
func (s *Service) SubmitIdem(specs []CellSpec, idemKey string) (*Job, error) {
	return s.SubmitWith(specs, SubmitOptions{IdemKey: idemKey})
}

// SubmitWith is the full admission path: validation, overload control
// (deadline already expired, AIMD limit, queue capacity), idempotency,
// journaling, priority enqueue and — when the new job outranks running
// work while every worker is busy — preemption of the lowest-priority
// running checkpointable job.
func (s *Service) SubmitWith(specs []CellSpec, opts SubmitOptions) (*Job, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("service: empty batch")
	}
	for i, sp := range specs {
		if err := sp.Validate(s.cfg.ArtifactDir != ""); err != nil {
			return nil, fmt.Errorf("service: cell %d: %w", i, err)
		}
	}
	tn := normTenant(opts.Tenant)
	if !tenant.ValidName(tn) {
		return nil, fmt.Errorf("service: invalid tenant name %q", tn)
	}
	if err := faultinject.Hit(faultinject.PointQueueAdmit); err != nil {
		s.mu.Lock()
		s.rejectedFull++
		s.mu.Unlock()
		return nil, fmt.Errorf("%w (%v)", ErrQueueFull, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.rejectedDraining++
		return nil, ErrDraining
	}
	if !opts.Deadline.IsZero() && !opts.Deadline.After(time.Now()) {
		s.shedDeadline++
		return nil, ErrDeadlineExpired
	}
	// Tenant quotas gate before the global AIMD limiter: a tenant over
	// its own allocation gets its quota-specific cause, and only load
	// that is within quota can trip the shared backstop.
	if err := s.admitTenantLocked(tn, len(specs)); err != nil {
		s.shedQuota++
		return nil, err
	}
	if s.limiter != nil && !s.limiter.admit(s.queue.len()+s.active) {
		return nil, ErrShedLoad
	}
	if opts.IdemKey != "" {
		if id, ok := s.idem[opts.IdemKey]; ok {
			if j := s.jobs[id]; j != nil {
				if state, _ := j.State(); state == JobQueued || state == JobRunning {
					s.idemHits++
					return j, nil
				}
			}
		}
	}
	s.seq++
	j := newJob(fmt.Sprintf("j%04d", s.seq), specs)
	j.Priority = opts.Priority
	j.Deadline = opts.Deadline
	j.Tenant = tn
	if jl := s.cfg.Journal; jl != nil {
		// Journal before enqueue: a job must be durable before anyone
		// is told it was accepted. The fsync happens under s.mu, which
		// serialises submissions — milliseconds, and correct.
		if err := jl.write(Record{ID: j.ID, IdemKey: opts.IdemKey, Specs: specs, Priority: opts.Priority, Deadline: opts.Deadline, Tenant: tn, State: JobQueued, Created: time.Now()}); err != nil {
			s.seq--
			return nil, fmt.Errorf("%w: %v", ErrJournal, err)
		}
	}
	if !s.queue.push(j) {
		s.seq--
		s.rejectedFull++
		if jl := s.cfg.Journal; jl != nil {
			jl.remove(j.ID)
		}
		return nil, ErrQueueFull
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	if opts.IdemKey != "" {
		s.idem[opts.IdemKey] = j.ID
	}
	s.tenantCells[tn] += len(specs)
	j.charged = true
	s.tstatsLocked(tn).jobsAdmitted++
	s.maybePreemptLocked(j)
	return j, nil
}

// maybePreemptLocked asks the lowest-priority running job to yield when
// the newly queued job outranks it and no worker is free. The victim
// checkpoints at its next pause point and re-queues — work is deferred,
// never lost. Preemption needs checkpointing: without pause points a
// stop request would change nothing. Caller holds s.mu.
func (s *Service) maybePreemptLocked(newJob *Job) {
	if s.ckpt == nil || s.active < s.cfg.MaxActive {
		return
	}
	var victim *Job
	for _, id := range s.order {
		j := s.jobs[id]
		if j == nil || j == newJob {
			continue
		}
		if state, _ := j.State(); state != JobRunning {
			continue
		}
		if j.Priority >= newJob.Priority {
			continue
		}
		if victim == nil || j.Priority < victim.Priority {
			victim = j
		}
	}
	if victim != nil {
		victim.requestStop(fmt.Sprintf("preempted by %s (priority %d > %d)", newJob.ID, newJob.Priority, victim.Priority))
	}
}

// Job looks up a job by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns all jobs in submission order.
func (s *Service) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Cancel aborts a job: a queued job is marked cancelled before it ever
// starts (the worker skips it); a running job has its context cancelled,
// which stops feeding new cells through the runner's existing ctx path —
// cells already simulating complete, later ones report cancelled.
// Returns false for unknown IDs; cancelling a terminal job is a no-op.
func (s *Service) Cancel(id string) bool {
	j, ok := s.Job(id)
	if !ok {
		return false
	}
	j.mu.Lock()
	cancel := j.cancel
	queued := j.state == JobQueued
	j.mu.Unlock()
	if queued {
		j.cancelPendingCells("cancelled before start")
		s.finish(j, JobCancelled, "cancelled before start")
		return true
	}
	if cancel != nil {
		cancel()
	}
	return true
}

// runJob executes one job's cells over the runner pool, streaming
// per-cell completion events as they land. A job whose deadline has
// already passed fails with an explicit cause before simulating
// anything; a job asked to stop mid-run (preemption, drain) checkpoints
// its cells at their pause points and goes back to the queue.
func (s *Service) runJob(j *Job) {
	j.mu.Lock()
	if j.state != JobQueued {
		j.mu.Unlock()
		return // cancelled while queued
	}
	j.mu.Unlock()
	if !j.Deadline.IsZero() && !j.Deadline.After(time.Now()) {
		msg := "deadline expired before the job started"
		j.failPendingCells(msg)
		s.mu.Lock()
		s.shedDeadline++
		s.mu.Unlock()
		s.finish(j, JobFailed, msg)
		return
	}
	j.clearStop()
	base := withTenantCtx(s.baseCtx, j.Tenant)
	var ctx context.Context
	var cancel context.CancelFunc
	if j.Deadline.IsZero() {
		ctx, cancel = context.WithCancel(base)
	} else {
		ctx, cancel = context.WithDeadline(base, j.Deadline)
	}
	j.mu.Lock()
	if j.state != JobQueued {
		j.mu.Unlock()
		cancel()
		return
	}
	j.cancel = cancel
	j.mu.Unlock()
	defer cancel()

	s.mu.Lock()
	s.active++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.active--
		s.mu.Unlock()
	}()

	j.setState(JobRunning, "")

	idxs := make([]int, len(j.Specs))
	for i := range idxs {
		idxs[i] = i
	}
	// The job context is handled inside the cell function (so cancelled
	// cells are recorded per cell instead of discarding the whole
	// batch); Map itself runs to completion over every index.
	results, err := runner.Map(context.Background(), s.cfg.Workers, idxs, func(_ context.Context, i int) (CellResult, error) {
		spec := j.Specs[i]
		// A requeued job re-runs only what the preemption interrupted:
		// cells that finished before it keep their results.
		if prev := j.cellSnapshot(i); prev.State == CellDone || prev.State == CellFailed {
			return prev, nil
		}
		if err := ctx.Err(); err != nil {
			res := CellResult{Label: spec.Label(), State: CellCancelled, Error: err.Error()}
			if errors.Is(err, context.DeadlineExceeded) {
				res.State = CellFailed
				res.Error = "deadline expired before cell started"
			}
			j.setCell(i, res)
			return res, nil
		}
		j.markCellRunning(i)
		res := s.runCell(ctx, spec, filepath.Join(s.cfg.ArtifactDir, j.ID, fmt.Sprintf("cell-%d", i)), s.cellControl(ctx, j, i))
		if res.State == CellPreempted {
			if _, stopped := j.stopRequested(); !stopped {
				// Not a preemption: the cell's stop predicate fired off the
				// job context (deadline or cancel). The checkpoint is parked
				// either way; the outcome must be terminal and explicit.
				switch {
				case errors.Is(ctx.Err(), context.DeadlineExceeded):
					res.State = CellFailed
					res.Error = "deadline exceeded: " + res.Error
				case errors.Is(ctx.Err(), context.Canceled):
					res.State = CellCancelled
				default:
					res.State = CellFailed
				}
			}
		}
		j.setCell(i, res)
		return res, nil
	})
	if err != nil {
		// Unreachable in practice (the cell fn never errors and execCell
		// recovers panics), but a runner failure must still terminate
		// the job.
		s.finish(j, JobFailed, err.Error())
		return
	}

	var preempted int
	for _, r := range results {
		if r.State == CellPreempted {
			preempted++
		}
	}
	if reason, stopped := j.stopRequested(); stopped && preempted > 0 {
		// Cooperative stop honoured: the interrupted cells are in the
		// checkpoint sink. Re-queue the job (jumping the capacity bound —
		// it was admitted once already); if the queue is closed (drain),
		// the job simply stays queued in the registry with its journal
		// record non-terminal, so a restart resumes it.
		j.prepareRequeue(reason)
		if s.queue.forcePush(j) {
			s.mu.Lock()
			s.preemptions++
			s.mu.Unlock()
		}
		return
	}

	state, msg := JobDone, ""
	var failed, cancelled int
	for _, r := range results {
		switch r.State {
		case CellFailed:
			failed++
			if msg == "" {
				msg = fmt.Sprintf("cell %d (%s): %s", r.Index, r.Label, r.Error)
			}
		case CellCancelled:
			cancelled++
		}
	}
	s.countCells(j, results)
	switch {
	case failed > 0:
		state = JobFailed
	case cancelled > 0:
		state, msg = JobCancelled, fmt.Sprintf("%d of %d cells cancelled", cancelled, len(results))
	}
	s.finish(j, state, msg)
}

// cellControl builds one cell's preemption wiring: a stop predicate
// combining the watchdog's per-cell request, the job context (deadline,
// cancel) and the job-level stop, and the resume notification that
// surfaces as a "resumed" cell event. Nil when checkpointing is
// disabled.
func (s *Service) cellControl(ctx context.Context, j *Job, i int) *cellCtl {
	if s.ckpt == nil {
		return nil
	}
	var cellStop atomic.Pointer[string]
	shouldStop := func() (string, bool) {
		if r := cellStop.Load(); r != nil {
			return *r, true
		}
		if err := ctx.Err(); err != nil {
			return err.Error(), true
		}
		return j.stopRequested()
	}
	onRestore := func(saved uint64) {
		j.noteCellEvent(i, CellResumed, fmt.Sprintf("resumed from checkpoint, %d cycles saved", saved))
	}
	return &cellCtl{
		ck:   s.ckpt.ForCell(shouldStop, onRestore),
		stop: func(reason string) { r := reason; cellStop.Store(&r) },
	}
}

// finish drives j to a terminal state exactly once: counts the outcome
// and journals it so a restart will not re-run finished work. A no-op
// if the job is already terminal.
func (s *Service) finish(j *Job, state, msg string) {
	if !j.setState(state, msg) {
		return
	}
	s.count(j, state)
	if jl := s.cfg.Journal; jl != nil {
		// Best-effort: a failed terminal write means the next restart
		// re-runs a finished (deterministic, cached) job — wasteful but
		// correct. The journal's error counter records it.
		jl.write(Record{ID: j.ID, Specs: j.Specs, State: state, Error: msg, Created: time.Now()})
	}
}

func (s *Service) count(j *Job, state string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch state {
	case JobDone:
		s.jobsDone++
	case JobFailed:
		s.jobsFailed++
	case JobCancelled:
		s.jobsCancelled++
	}
	// The job left the live set: release its cells from the tenant's
	// MaxActiveCells allocation (once, and only if it was charged —
	// recovered-but-abandoned jobs never were).
	if j.charged {
		j.charged = false
		tn := normTenant(j.Tenant)
		if n := s.tenantCells[tn] - len(j.Specs); n > 0 {
			s.tenantCells[tn] = n
		} else {
			delete(s.tenantCells, tn)
		}
	}
}

func (s *Service) countCells(j *Job, results []CellResult) {
	var cycles uint64
	s.mu.Lock()
	ts := s.tstatsLocked(normTenant(j.Tenant))
	for _, r := range results {
		switch r.State {
		case CellDone:
			s.cellsDone++
			ts.cellsDone++
			cycles += cellCycles(j.Specs[r.Index], r)
		case CellFailed:
			s.cellsFailed++
			ts.cellsFailed++
		case CellCancelled:
			s.cellsCancelled++
		}
	}
	ts.cyclesCharged += cycles
	s.mu.Unlock()
	s.cfg.Tenants.ChargeCycles(normTenant(j.Tenant), cycles, time.Now())
}

// stopIntake flips the service into draining mode and closes the queue
// exactly once, so workers exit after finishing what was accepted.
func (s *Service) stopIntake() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.draining {
		s.draining = true
		s.queue.close()
	}
}

// requestStopAll asks every running job to yield at its next checkpoint
// (drain): interrupted cells park their state in the sink, the jobs
// stay non-terminal in the journal, and the next process resumes them.
func (s *Service) requestStopAll(reason string) {
	for _, j := range s.Jobs() {
		if state, _ := j.State(); state == JobRunning {
			j.requestStop(reason)
		}
	}
}

// Draining reports whether intake has stopped.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain stops intake and waits for every accepted job to finish. With
// checkpointing enabled, running jobs are asked to stop at their next
// pause point: their cells checkpoint, the jobs stay queued/non-terminal
// in the journal, and the next daemon process resumes them — graceful
// shutdown defers work instead of blocking on it. If ctx expires first,
// outstanding job contexts are cancelled (running cells complete,
// pending ones are skipped as cancelled) and Drain keeps waiting for
// the workers to wind down before returning ctx's error.
func (s *Service) Drain(ctx context.Context) error {
	s.stopIntake()
	if s.ckpt != nil {
		s.requestStopAll("daemon draining")
	}
	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.abort()
		<-done
		return ctx.Err()
	}
}

// Close aborts everything immediately: intake stops, job contexts are
// cancelled, and workers are waited out (cells already inside the
// simulator finish — it has no preemption points).
func (s *Service) Close() {
	s.stopIntake()
	s.abort()
	s.workers.Wait()
}
