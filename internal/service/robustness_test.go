package service

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"smtexplore/internal/faultinject"
	"smtexplore/internal/runner"
	"smtexplore/internal/store"
)

// armPlan arms a fault plan for the test and disarms on cleanup. Tests
// using it must not run in parallel (the injector is process-wide).
func armPlan(t *testing.T, rules ...faultinject.Rule) {
	t.Helper()
	in, err := faultinject.New(faultinject.Plan{Rules: rules})
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(in)
	t.Cleanup(faultinject.Disarm)
}

func openJournal(t *testing.T) *Journal {
	t.Helper()
	jl, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return jl
}

// A journal left behind by a dead daemon is replayed on startup: live
// records re-run under their original IDs, terminal records stay put,
// and the ID sequence continues past everything journaled.
func TestJournalRecoveryReRunsLostJobs(t *testing.T) {
	jl := openJournal(t)
	// What a crash leaves behind: one job that finished, one that did not.
	for _, rec := range []Record{
		{ID: "j0001", Specs: []CellSpec{validSpec()}, State: JobDone, Created: time.Now()},
		{ID: "j0002", Specs: []CellSpec{validSpec()}, State: JobQueued, Created: time.Now()},
	} {
		if err := jl.write(rec); err != nil {
			t.Fatal(err)
		}
	}

	s := New(Config{Workers: 1, Journal: jl})
	defer s.Close()
	j, ok := s.Job("j0002")
	if !ok {
		t.Fatal("journaled live job not re-registered after restart")
	}
	waitDone(t, j)
	if state, msg := j.State(); state != JobDone {
		t.Fatalf("recovered job: %s / %s", state, msg)
	}
	if _, ok := s.Job("j0001"); ok {
		t.Error("terminal record was re-registered")
	}
	if m := s.Snapshot(); m.JobsRecovered != 1 || m.JobsAbandoned != 0 {
		t.Errorf("recovered/abandoned = %d/%d, want 1/0", m.JobsRecovered, m.JobsAbandoned)
	}

	// New submissions continue past the journaled IDs.
	nj, err := s.Submit([]CellSpec{validSpec()})
	if err != nil {
		t.Fatal(err)
	}
	if nj.ID != "j0003" {
		t.Errorf("post-recovery ID %s, want j0003", nj.ID)
	}

	// The recovered job's terminal state was journaled, so a second
	// restart does not run it again.
	recs, err := jl.Load()
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if rec.ID == "j0002" && !rec.Terminal() {
			t.Errorf("recovered job still journaled as %q", rec.State)
		}
	}
}

// A journaled job that cannot be re-admitted (its specs no longer
// validate) is registered failed-with-cause instead of vanishing.
func TestJournalRecoveryAbandonsInvalidRecords(t *testing.T) {
	jl := openJournal(t)
	bad := CellSpec{Type: TypeStream, Streams: []StreamSpec{{Kind: "fadd"}}, Observe: true}
	if err := jl.write(Record{ID: "j0001", Specs: []CellSpec{bad}, State: JobQueued, Created: time.Now()}); err != nil {
		t.Fatal(err)
	}

	s := New(Config{Journal: jl}) // no ArtifactDir, so Observe fails validation
	defer s.Close()
	j, ok := s.Job("j0001")
	if !ok {
		t.Fatal("abandoned job not registered")
	}
	waitDone(t, j)
	state, msg := j.State()
	if state != JobFailed || !strings.Contains(msg, "not recovered after restart") {
		t.Fatalf("abandoned job: %s / %q, want failed with cause", state, msg)
	}
	for _, c := range j.Results() {
		if c.State != CellFailed {
			t.Errorf("cell %d state %q, want failed", c.Index, c.State)
		}
	}
	if m := s.Snapshot(); m.JobsAbandoned != 1 {
		t.Errorf("JobsAbandoned = %d, want 1", m.JobsAbandoned)
	}
}

// A refused journal write refuses the submission (ErrJournal -> 503):
// the daemon never acknowledges a job it could lose.
func TestSubmitRefusedWhenJournalFails(t *testing.T) {
	jl := openJournal(t)
	s := New(Config{Journal: jl})
	defer s.Close()

	armPlan(t, faultinject.Rule{Point: faultinject.PointJournalWrite, Action: faultinject.ActionError, Count: 1})
	if _, err := s.Submit([]CellSpec{validSpec()}); !errors.Is(err, ErrJournal) {
		t.Fatalf("submit under journal fault = %v, want ErrJournal", err)
	}
	if got := len(s.Jobs()); got != 0 {
		t.Fatalf("%d jobs registered after refused submit, want 0", got)
	}
	// Fault exhausted: the next submit is accepted and journaled.
	j, err := s.Submit([]CellSpec{validSpec()})
	if err != nil {
		t.Fatal(err)
	}
	if j.ID != "j0001" {
		t.Errorf("ID after rollback %s, want j0001 (sequence not burned)", j.ID)
	}
	if st := jl.Stats(); st.Errors != 1 || st.Writes == 0 {
		t.Errorf("journal stats %+v, want 1 error and some writes", st)
	}
}

// An injected admission fault maps to queue-full backpressure, which is
// how chaos runs exercise the client's 429 retry path on demand.
func TestQueueAdmitFaultIsBackpressure(t *testing.T) {
	s := stubService(Config{}, instantDone)
	defer s.Close()
	armPlan(t, faultinject.Rule{Point: faultinject.PointQueueAdmit, Action: faultinject.ActionError, Count: 1})
	if _, err := s.Submit([]CellSpec{validSpec()}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit under admit fault = %v, want ErrQueueFull", err)
	}
	if _, err := s.Submit([]CellSpec{validSpec()}); err != nil {
		t.Fatalf("submit after fault window: %v", err)
	}
	if m := s.Snapshot(); m.SubmitRejectedFull != 1 {
		t.Errorf("SubmitRejectedFull = %d, want 1", m.SubmitRejectedFull)
	}
}

// The watchdog fails a cell that blows its budget (here: an injected
// stall) without taking the job's siblings or the daemon with it.
func TestWatchdogFailsStuckCell(t *testing.T) {
	// The healthy sibling must finish well inside the budget even under
	// -race, so it simulates a tiny window while the budget stays
	// generous and the stall far exceeds it.
	armPlan(t, faultinject.Rule{Point: faultinject.PointExecCell, Action: faultinject.ActionLatency, LatencyMS: 20000, Count: 1})
	s := New(Config{Workers: 2, CellTimeout: 2 * time.Second})
	defer s.Close()

	j, err := s.Submit([]CellSpec{
		{Type: TypeStream, Window: 2000, Streams: []StreamSpec{{Kind: "fadd"}}},
		{Type: TypeStream, Window: 2000, Streams: []StreamSpec{{Kind: "fmul"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	state, msg := j.State()
	if state != JobFailed || !strings.Contains(msg, "watchdog") {
		t.Fatalf("job %s / %q, want failed by watchdog", state, msg)
	}
	var timedOut, done int
	for _, c := range j.Results() {
		switch {
		case c.State == CellFailed && strings.Contains(c.Error, "watchdog"):
			timedOut++
		case c.State == CellDone:
			done++
		}
	}
	if timedOut != 1 || done != 1 {
		t.Errorf("timedOut/done = %d/%d, want 1/1 (stall isolated to one cell)", timedOut, done)
	}
	if m := s.Snapshot(); m.CellsTimedOut != 1 {
		t.Errorf("CellsTimedOut = %d, want 1", m.CellsTimedOut)
	}
}

// An injected cell panic is recovered by the same isolation as a real
// one: the cell fails, the daemon keeps serving.
func TestInjectedPanicIsolated(t *testing.T) {
	armPlan(t, faultinject.Rule{Point: faultinject.PointExecCell, Action: faultinject.ActionPanic, Count: 1})
	s := New(Config{Workers: 1})
	defer s.Close()

	j, err := s.Submit([]CellSpec{validSpec()})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	state, msg := j.State()
	if state != JobFailed || !strings.Contains(msg, "panicked") {
		t.Fatalf("job %s / %q, want failed with panic message", state, msg)
	}
	j2, err := s.Submit([]CellSpec{validSpec()})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j2)
	if state, _ := j2.State(); state != JobDone {
		t.Fatalf("job after panic: %s, want done", state)
	}
}

// A duplicate submission under the same idempotency key returns the
// live job instead of enqueuing a second copy; a terminal job releases
// the key.
func TestIdempotentSubmit(t *testing.T) {
	release := make(chan struct{})
	s := stubService(Config{}, func(ctx context.Context, spec CellSpec, _ string) CellResult {
		<-release
		return CellResult{Label: spec.Label(), State: CellDone}
	})
	defer s.Close()

	j1, err := s.SubmitIdem([]CellSpec{validSpec()}, "key-1")
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.SubmitIdem([]CellSpec{validSpec()}, "key-1")
	if err != nil {
		t.Fatal(err)
	}
	if j1.ID != j2.ID {
		t.Fatalf("duplicate submit created %s, want dedup onto %s", j2.ID, j1.ID)
	}
	if other, err := s.SubmitIdem([]CellSpec{validSpec()}, "key-2"); err != nil || other.ID == j1.ID {
		t.Fatalf("different key: %v / %v, want a distinct job", other, err)
	}
	close(release)
	waitDone(t, j1)
	j3, err := s.SubmitIdem([]CellSpec{validSpec()}, "key-1")
	if err != nil {
		t.Fatal(err)
	}
	if j3.ID == j1.ID {
		t.Error("terminal job still holds its idempotency key")
	}
	if m := s.Snapshot(); m.IdemHits != 1 {
		t.Errorf("IdemHits = %d, want 1", m.IdemHits)
	}
}

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	id    int // -1 when the frame carried no id
	event string
	data  string
}

// readSSEFrames reads frames from an open stream until it ends or n
// frames arrived (n <= 0: until EOF).
func readSSEFrames(t *testing.T, r *bufio.Reader, n int) []sseEvent {
	t.Helper()
	var out []sseEvent
	cur := sseEvent{id: -1}
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			if err == io.EOF {
				return out
			}
			t.Fatal(err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "id: "):
			cur.id, _ = strconv.Atoi(strings.TrimPrefix(line, "id: "))
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.event != "" || cur.data != "" {
				out = append(out, cur)
			}
			cur = sseEvent{id: -1}
			if n > 0 && len(out) == n {
				return out
			}
		}
	}
}

// A client that loses its SSE stream mid-job and reconnects with
// Last-Event-ID sees every event exactly once: replay after the marker,
// then live follow, no duplicates, no gaps.
func TestHTTPEventsSSEReconnect(t *testing.T) {
	gate := make(chan struct{})
	s := stubService(Config{Workers: 1, MaxActive: 1}, func(ctx context.Context, spec CellSpec, _ string) CellResult {
		<-gate
		return CellResult{Label: spec.Label(), State: CellDone}
	})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	st := decodeBody[JobStatus](t, postJSON(t, srv.URL+"/v1/jobs", SubmitRequest{
		Cells: []CellSpec{validSpec(), validSpec(), validSpec()},
	}))
	j, _ := s.Job(st.ID)

	// First connection: let one cell finish, read its frames, then drop
	// the stream mid-job.
	resp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	gate <- struct{}{} // release cell 0
	// job-running + cell-0 events are now guaranteed to exist.
	first := readSSEFrames(t, bufio.NewReader(resp.Body), 2)
	resp.Body.Close() // dropped mid-stream
	lastID := -1
	for _, ev := range first {
		if ev.id > lastID {
			lastID = ev.id
		}
	}
	if lastID < 0 {
		t.Fatalf("no event ids in first connection: %+v", first)
	}

	// Finish the job while disconnected.
	gate <- struct{}{}
	gate <- struct{}{}
	waitDone(t, j)

	// Reconnect where we left off.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/jobs/"+st.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", strconv.Itoa(lastID))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	second := readSSEFrames(t, bufio.NewReader(resp2.Body), 0)

	// Stitch the two connections together: ids must be exactly
	// 0..max with no duplicates, ending in an id-less end event.
	seen := map[int]int{}
	maxID := -1
	for _, ev := range append(append([]sseEvent{}, first...), second...) {
		if ev.event == "end" {
			if ev.id != -1 {
				t.Errorf("end event carries id %d, want none", ev.id)
			}
			continue
		}
		seen[ev.id]++
		if ev.id > maxID {
			maxID = ev.id
		}
	}
	for id := 0; id <= maxID; id++ {
		if seen[id] != 1 {
			t.Errorf("event id %d seen %d times across reconnect, want exactly once", id, seen[id])
		}
	}
	if last := second[len(second)-1]; last.event != "end" || !strings.Contains(last.data, `"state":"done"`) {
		t.Errorf("reconnected stream ended with %+v, want end/done", last)
	}

	// A resume from the final event id replays nothing — just the end
	// frame (?since= is the header-less spelling of the same thing).
	resp3, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/events?since=" + strconv.Itoa(maxID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	tail := readSSEFrames(t, bufio.NewReader(resp3.Body), 0)
	if len(tail) != 1 || tail[0].event != "end" {
		t.Errorf("resume past the last event returned %+v, want only the end frame", tail)
	}
}

// While the store breaker is open, /healthz reports degraded (but 200 —
// the daemon still serves from memory) and each poll probes the disk,
// so health checking alone drives recovery.
func TestHTTPHealthzDegradedAndRecovery(t *testing.T) {
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	b := store.NewBreaker(st, 1, time.Millisecond)
	cache := runner.NewCache().WithTier(b)
	s := stubService(Config{Cache: cache, Store: st, Breaker: b}, instantDone)
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	armPlan(t, faultinject.Rule{Point: faultinject.PointStoreWrite, Action: faultinject.ActionError, Count: 1})
	b.Store("k", []byte("v")) // trips (threshold 1)
	if !b.Degraded() {
		t.Fatal("breaker not degraded after injected write failure")
	}

	get := func() (int, string) {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, strings.TrimSpace(string(body))
	}
	if code, body := get(); code != http.StatusOK || body != "degraded" {
		t.Fatalf("healthz while degraded: %d %q, want 200 degraded", code, body)
	}

	// The fault window is exhausted and the cooldown tiny: polling
	// healthz must flip it back to ok via the embedded probe.
	deadline := time.After(5 * time.Second)
	for {
		if _, body := get(); body == "ok" {
			break
		}
		select {
		case <-deadline:
			t.Fatal("healthz never recovered to ok")
		case <-time.After(5 * time.Millisecond):
		}
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"smtd_store_degraded 0",
		"smtd_store_breaker_trips_total 1",
		"smtd_store_io_errors_total",
		"smtd_store_corrupt_total",
		"smtd_store_evictions_total",
		"smtd_goroutines",
		"smtd_faults_injected_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
