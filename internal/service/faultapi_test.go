package service

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"smtexplore/internal/faultinject"
)

func faultReq(t *testing.T, method, url, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestFaultAPIRefusedWithoutFlag(t *testing.T) {
	s := stubService(Config{}, instantDone)
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp := faultReq(t, http.MethodPost, srv.URL+"/v1/faults",
		`{"seed":1,"rules":[{"point":"store.write","action":"error","prob":1}]}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("fault arm without -allow-fault-api: %d, want 403", resp.StatusCode)
	}
	if faultinject.Armed() != nil {
		t.Fatal("refused plan was armed anyway")
	}
	resp = faultReq(t, http.MethodDelete, srv.URL+"/v1/faults", "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("fault disarm without -allow-fault-api: %d, want 403", resp.StatusCode)
	}
}

func TestFaultAPIArmDisarm(t *testing.T) {
	defer faultinject.Disarm()
	s := stubService(Config{AllowFaultAPI: true}, instantDone)
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp := faultReq(t, http.MethodPost, srv.URL+"/v1/faults",
		`{"seed":7,"rules":[{"point":"store.write","action":"error","error":"injected","prob":1}]}`)
	body := decodeBody[map[string]any](t, resp)
	if resp.StatusCode != http.StatusOK || body["armed"] != true {
		t.Fatalf("arm: %d %v", resp.StatusCode, body)
	}
	if faultinject.Armed() == nil {
		t.Fatal("plan not armed")
	}
	if err := faultinject.Hit(faultinject.PointStoreWrite); err == nil {
		t.Fatal("armed store.write rule did not fire")
	}

	// Bad plans are rejected with 400 and leave the armed plan alone.
	resp = faultReq(t, http.MethodPost, srv.URL+"/v1/faults",
		`{"rules":[{"point":"store.write","action":"frobnicate"}]}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad plan: %d, want 400", resp.StatusCode)
	}
	if faultinject.Armed() == nil {
		t.Fatal("rejected plan disarmed the active one")
	}

	resp = faultReq(t, http.MethodDelete, srv.URL+"/v1/faults", "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("disarm: %d", resp.StatusCode)
	}
	if faultinject.Armed() != nil {
		t.Fatal("plan still armed after disarm")
	}
}
