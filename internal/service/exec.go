package service

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"smtexplore/internal/experiments"
	"smtexplore/internal/faultinject"
	"smtexplore/internal/kernels"
	"smtexplore/internal/obs"
	"smtexplore/internal/streams"
)

// harnessFunc regenerates one named figure or study, returning the exact
// bytes the corresponding CLI prints (including its trailing blank line,
// where the CLI emits one).
type harnessFunc func(ctx context.Context, opt experiments.Options, sizes []int) (string, error)

// harnesses maps harness-cell names onto the figure/table/study entry
// points. The formatted output is the service's result: byte-identical
// to `streams -fig X`, `kernels -bench Y`, `kernels -table 1` and
// `ablate -study Z`, which is what makes the daemon path verifiable
// against the serial CLI path.
var harnesses = map[string]harnessFunc{
	"fig1": func(ctx context.Context, opt experiments.Options, _ []int) (string, error) {
		rows, err := experiments.Fig1(ctx, opt, experiments.StreamMachineConfig(), experiments.Fig1Kinds())
		if err != nil {
			return "", err
		}
		return experiments.FormatFig1(rows) + "\n", nil
	},
	"fig2a": func(ctx context.Context, opt experiments.Options, _ []int) (string, error) {
		cells, err := experiments.Fig2a(ctx, opt, experiments.StreamMachineConfig())
		if err != nil {
			return "", err
		}
		return experiments.FormatFig2("Figure 2(a) — floating-point streams", cells) + "\n", nil
	},
	"fig2b": func(ctx context.Context, opt experiments.Options, _ []int) (string, error) {
		cells, err := experiments.Fig2b(ctx, opt, experiments.StreamMachineConfig())
		if err != nil {
			return "", err
		}
		return experiments.FormatFig2("Figure 2(b) — integer streams", cells) + "\n", nil
	},
	"fig2c": func(ctx context.Context, opt experiments.Options, _ []int) (string, error) {
		cells, err := experiments.Fig2c(ctx, opt, experiments.StreamMachineConfig())
		if err != nil {
			return "", err
		}
		return experiments.FormatFig2("Figure 2(c) — mixed fp×int arithmetic", cells) + "\n", nil
	},
	"fig3": func(ctx context.Context, opt experiments.Options, sizes []int) (string, error) {
		if sizes == nil {
			sizes = experiments.MMSizes()
		}
		ms, err := experiments.Fig3MM(ctx, opt, sizes)
		if err != nil {
			return "", err
		}
		return experiments.FormatKernelFigure("Figure 3 — Matrix Multiplication", ms) + "\n", nil
	},
	"fig4": func(ctx context.Context, opt experiments.Options, sizes []int) (string, error) {
		if sizes == nil {
			sizes = experiments.LUSizes()
		}
		ms, err := experiments.Fig4LU(ctx, opt, sizes)
		if err != nil {
			return "", err
		}
		return experiments.FormatKernelFigure("Figure 4 — LU decomposition", ms) + "\n", nil
	},
	"fig5cg": func(ctx context.Context, opt experiments.Options, _ []int) (string, error) {
		ms, err := experiments.Fig5CG(ctx, opt)
		if err != nil {
			return "", err
		}
		return experiments.FormatKernelFigure("Figure 5 — NAS CG", ms) + "\n", nil
	},
	"fig5bt": func(ctx context.Context, opt experiments.Options, _ []int) (string, error) {
		ms, err := experiments.Fig5BT(ctx, opt)
		if err != nil {
			return "", err
		}
		return experiments.FormatKernelFigure("Figure 5 — NAS BT", ms) + "\n", nil
	},
	"table1": func(ctx context.Context, opt experiments.Options, _ []int) (string, error) {
		cols, err := experiments.Table1(ctx, opt)
		if err != nil {
			return "", err
		}
		return experiments.FormatTable1(cols), nil
	},
	"sync": func(ctx context.Context, opt experiments.Options, _ []int) (string, error) {
		rows, err := experiments.AblateSync(ctx, opt)
		if err != nil {
			return "", err
		}
		return experiments.FormatAblation("Ablation §3.1 — wait primitive of the MM prefetcher", rows) + "\n", nil
	},
	"span": func(ctx context.Context, opt experiments.Options, _ []int) (string, error) {
		rows, err := experiments.AblateSpan(ctx, opt)
		if err != nil {
			return "", err
		}
		return experiments.FormatAblation("Ablation §3.2 — precomputation span of the MM prefetcher", rows) + "\n", nil
	},
	"partition": func(ctx context.Context, opt experiments.Options, _ []int) (string, error) {
		rows, err := experiments.AblatePartition(ctx, opt)
		if err != nil {
			return "", err
		}
		return experiments.FormatAblation("Ablation §5.3 — static partitioning vs fully shared buffers", rows) + "\n", nil
	},
	"selective": func(ctx context.Context, opt experiments.Options, _ []int) (string, error) {
		r, err := experiments.SelectiveHaltLU(ctx, opt, 64)
		if err != nil {
			return "", err
		}
		return experiments.FormatSelectiveHalt(r) + "\n", nil
	},
}

// HarnessNames lists the valid harness-cell names (for usage messages).
func HarnessNames() []string {
	names := make([]string, 0, len(harnesses))
	for n := range harnesses {
		names = append(names, n)
	}
	return names
}

// artifactSuffixes are the files obs.Instruments.Export writes per cell.
var artifactSuffixes = []string{".trace.json", ".occupancy.csv", ".metrics.json"}

// cellCtl is one cell's preemption wiring: the per-cell checkpointing
// config (stop predicate + resume notification already bound) and the
// lever the watchdog pulls to stop this cell alone. Nil when the
// service runs without checkpointing.
type cellCtl struct {
	ck   *experiments.Checkpointing
	stop func(reason string)
}

// stopGrace is how long the watchdog waits for a stopping cell to park
// its final checkpoint.
func (s *Service) stopGrace() time.Duration {
	if s.cfg.StopGrace > 0 {
		return s.cfg.StopGrace
	}
	return 2 * time.Second
}

// execCell runs one cell to completion and returns its result; it never
// propagates errors or panics — both become the cell's failure state, so
// one bad cell cannot take down its batch (let alone the daemon).
// Cancellation of ctx is reported as a distinct cancelled state.
//
// With CellTimeout configured it also arms a watchdog: the computation
// runs in a child goroutine and a cell that blows its budget is failed.
// When the cell is checkpointable, the watchdog first requests a
// cooperative stop and grants StopGrace for a final checkpoint — the
// cell still fails, but a retry resumes from the pause point instead of
// repeating the whole run. Otherwise (or when the grace expires) the
// goroutine is abandoned to finish (or leak — the simulator then has no
// preemption points, which is exactly why the watchdog exists) in the
// background. The channel is buffered so a late finisher parks its
// result and exits instead of blocking forever.
func (s *Service) execCell(ctx context.Context, spec CellSpec, artifactDir string, ctl *cellCtl) CellResult {
	if s.cfg.CellTimeout <= 0 {
		return s.computeCell(ctx, spec, artifactDir, ctl)
	}
	ch := make(chan CellResult, 1)
	go func() { ch <- s.computeCell(ctx, spec, artifactDir, ctl) }()
	timer := time.NewTimer(s.cfg.CellTimeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		return res
	case <-timer.C:
	}
	s.mu.Lock()
	s.cellsTimedOut++
	s.mu.Unlock()
	if ctl != nil {
		ctl.stop("watchdog timeout")
		grace := time.NewTimer(s.stopGrace())
		defer grace.Stop()
		select {
		case res := <-ch:
			if res.State == CellPreempted {
				s.mu.Lock()
				s.checkpointsOnTimeout++
				s.mu.Unlock()
				return CellResult{
					Label: spec.Label(),
					State: CellFailed,
					Error: fmt.Sprintf("cell exceeded the %s watchdog budget (checkpointed; a re-run resumes from the pause point)", s.cfg.CellTimeout),
				}
			}
			// Finished (or failed on its own) just past the budget: the
			// result is in hand and correct, so return it rather than
			// discarding paid-for work.
			return res
		case <-grace.C:
		}
	}
	return CellResult{
		Label: spec.Label(),
		State: CellFailed,
		Error: fmt.Sprintf("cell exceeded the %s watchdog budget", s.cfg.CellTimeout),
	}
}

// computeCell is the watchdog-free executor: the recover is installed
// before anything else (including the fault point, so an injected panic
// exercises the same isolation as a real one).
func (s *Service) computeCell(ctx context.Context, spec CellSpec, artifactDir string, ctl *cellCtl) (res CellResult) {
	res = CellResult{Label: spec.Label()}
	defer func() {
		if p := recover(); p != nil {
			res.State = CellFailed
			res.Error = fmt.Sprintf("cell panicked: %v\n%s", p, debug.Stack())
		}
	}()
	if err := faultinject.Hit(faultinject.PointExecCell); err != nil {
		res.State = CellFailed
		res.Error = err.Error()
		return res
	}

	opt := experiments.Options{Workers: s.cfg.Workers, Cache: s.cfg.Cache}
	opt.Meter = &tenantMeter{s: s, tenant: tenantFromCtx(ctx)}
	if ctl != nil {
		opt.Checkpoint = ctl.ck
	}
	if spec.Observe {
		opt.Observe = &experiments.Observe{Dir: artifactDir}
	}
	return EvalCell(ctx, spec, opt)
}

// EvalCell executes one cell spec against the given harness options and
// maps the outcome onto the cell-state machine. This is the service's
// cell semantics without the daemon around it: computeCell delegates
// here, and the study engine's local backend calls it directly so both
// paths produce identical results for identical specs. Errors and
// panics become the cell's failure state; ctx cancellation is reported
// as the distinct cancelled state.
func EvalCell(ctx context.Context, spec CellSpec, opt experiments.Options) (res CellResult) {
	res = CellResult{Label: spec.Label()}
	defer func() {
		if p := recover(); p != nil {
			res.State = CellFailed
			res.Error = fmt.Sprintf("cell panicked: %v\n%s", p, debug.Stack())
		}
	}()

	var innerLabel string
	var err error
	switch spec.Type {
	case TypeStream:
		var specs []streams.Spec
		if specs, err = spec.streamSpecs(); err == nil {
			innerLabel = experiments.StreamCellLabel(specs, spec.window())
			res.CPI, err = opt.StreamCell(experiments.StreamMachineConfig(), specs, spec.window())
		}
	case TypeKernel:
		var mode = kernelMode(spec.Mode)
		var km experiments.KernelMetrics
		km, err = experiments.NamedKernelCell(opt, spec.Kernel, spec.Size, mode)
		if err == nil {
			innerLabel = km.Label
			res.Kernel = &km
		}
	case TypeHarness:
		h, ok := harnesses[spec.Harness]
		if !ok {
			err = fmt.Errorf("unknown harness %q", spec.Harness)
			break
		}
		res.Text, err = h(ctx, opt, spec.Sizes)
	default:
		err = fmt.Errorf("unknown cell type %q", spec.Type)
	}

	switch {
	case err == nil:
		res.State = CellDone
		if spec.Observe {
			slug := obs.Slug(innerLabel)
			for _, suf := range artifactSuffixes {
				res.Artifacts = append(res.Artifacts, slug+suf)
			}
		}
	case errors.Is(err, experiments.ErrCellPreempted):
		// The cell yielded at a pause point with its state in the sink;
		// the job layer decides whether it re-queues or fails.
		res.State = CellPreempted
		res.Error = err.Error()
	case errors.Is(err, context.DeadlineExceeded):
		// An expired deadline is a distinct, explicit failure cause —
		// never a silent hang, and not a user cancellation either.
		res.State = CellFailed
		res.Error = "deadline exceeded: " + err.Error()
	case errors.Is(err, context.Canceled):
		res.State = CellCancelled
		res.Error = err.Error()
	default:
		res.State = CellFailed
		res.Error = err.Error()
	}
	return res
}

// kernelMode resolves a pre-validated mode name (Validate already ran).
func kernelMode(name string) kernels.Mode {
	m, err := parseMode(name)
	if err != nil {
		panic(err) // unreachable after Validate
	}
	return m
}
