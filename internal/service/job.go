package service

import (
	"context"
	"sync"
	"time"
)

// Job states. "queued" and "running" are live; "done", "failed" and
// "cancelled" are terminal.
const (
	JobQueued    = "queued"
	JobRunning   = "running"
	JobDone      = "done"
	JobFailed    = "failed"
	JobCancelled = "cancelled"
)

// Event is one progress notification of a job, delivered in order over
// the SSE stream (and kept for replay, so late subscribers see the full
// history). Type "job" carries a job state transition; type "cell"
// carries one cell's terminal state.
type Event struct {
	Seq   int    `json:"seq"`
	Type  string `json:"type"` // "job" or "cell"
	Job   string `json:"job"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
	// Cell fields (type "cell" only).
	Cell  int    `json:"cell,omitempty"`
	Label string `json:"label,omitempty"`
}

// Job is one submitted batch of cells and its execution state.
type Job struct {
	// ID is the service-assigned identifier ("j0001", …).
	ID string
	// Specs are the submitted cells, in submission order.
	Specs []CellSpec
	// Priority orders the queue: higher runs first, and a high-priority
	// submission may preempt (checkpoint and re-queue) a running
	// lower-priority job. Immutable after submission.
	Priority int
	// Deadline, when nonzero, bounds the job: it propagates into cell
	// execution as a context deadline, and a job still queued past it
	// fails with an explicit cause instead of running late. Immutable
	// after submission.
	Deadline time.Time
	// Tenant is the identity this job's resources are accounted to.
	// The service normalizes it at admission (empty → tenant.Default);
	// the fair-share queue round-robins across distinct values.
	// Immutable after submission.
	Tenant string

	mu      sync.Mutex
	state   string
	errMsg  string
	cells   []CellResult
	cancel  context.CancelFunc // set while running
	events  []Event
	notify  chan struct{} // closed and replaced on every event append
	done    chan struct{} // closed on terminal state
	created time.Time

	// Cooperative-stop request (preemption, drain): checkpointable
	// cells observe it at their next pause point and yield.
	stopSet    bool
	stopReason string

	// charged marks that the job's cells were counted against its
	// tenant's MaxActiveCells allocation, so release happens exactly
	// once and only for charged jobs. Guarded by Service.mu.
	charged bool
}

func newJob(id string, specs []CellSpec) *Job {
	j := &Job{
		ID:      id,
		Specs:   specs,
		state:   JobQueued,
		cells:   make([]CellResult, len(specs)),
		notify:  make(chan struct{}),
		done:    make(chan struct{}),
		created: time.Now(),
	}
	for i, sp := range specs {
		j.cells[i] = CellResult{Index: i, Label: sp.Label(), State: CellPending}
	}
	return j
}

// NewRemoteJob builds a Job tracker that is driven from outside the
// service — the cluster coordinator's mirror of work executing on
// remote workers. It carries the same states, events, SSE replay and
// result snapshots as a locally-executed job, which is what makes the
// coordinator API indistinguishable from a single daemon's. The caller
// drives it with MarkCellRunning/RecordCell/Conclude.
func NewRemoteJob(id string, specs []CellSpec) *Job {
	return newJob(id, specs)
}

// RecordCell stores one mirrored cell outcome and emits its event.
// Remote-job trackers only; the service's own jobs record cells
// internally.
func (j *Job) RecordCell(i int, res CellResult) {
	res.Label = j.Specs[i].Label()
	j.setCell(i, res)
}

// MarkCellRunning mirrors a remote cell entering execution.
func (j *Job) MarkCellRunning(i int) { j.markCellRunning(i) }

// NoteCellEvent emits a transient mirrored cell event (e.g. "resumed")
// without changing the cell's stored state.
func (j *Job) NoteCellEvent(i int, state, msg string) { j.noteCellEvent(i, state, msg) }

// Conclude drives a remote-job tracker to a state (terminal or
// "running"), emitting the job event; it reports false if the job was
// already terminal.
func (j *Job) Conclude(state, errMsg string) bool { return j.setState(state, errMsg) }

// emitLocked appends an event and wakes subscribers. Callers hold j.mu.
func (j *Job) emitLocked(ev Event) {
	ev.Seq = len(j.events)
	ev.Job = j.ID
	j.events = append(j.events, ev)
	close(j.notify)
	j.notify = make(chan struct{})
}

// setState transitions the job and emits a job event; entering a
// terminal state closes Done. Returns false if the job was already
// terminal (transitions out of terminal states are ignored).
func (j *Job) setState(state, errMsg string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.terminalLocked() {
		return false
	}
	j.state = state
	j.errMsg = errMsg
	j.emitLocked(Event{Type: "job", State: state, Error: errMsg})
	if j.terminalLocked() {
		close(j.done)
	}
	return true
}

func (j *Job) terminalLocked() bool {
	switch j.state {
	case JobDone, JobFailed, JobCancelled:
		return true
	}
	return false
}

// requestStop asks the job's cells to yield at their next checkpoint;
// the first reason wins. Cells without pause points (streams, harness
// cells, checkpointing disabled) ignore it and run to completion.
func (j *Job) requestStop(reason string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.stopSet {
		j.stopSet = true
		j.stopReason = reason
	}
}

// stopRequested reports a pending cooperative-stop request.
func (j *Job) stopRequested() (string, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stopReason, j.stopSet
}

// clearStop resets the stop request (on re-admission after a requeue).
func (j *Job) clearStop() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.stopSet = false
	j.stopReason = ""
}

// cellSnapshot reads one cell's current result.
func (j *Job) cellSnapshot(i int) CellResult {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cells[i]
}

// noteCellEvent emits a transient cell event ("resumed") without
// changing the cell's stored state.
func (j *Job) noteCellEvent(i int, state, msg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.emitLocked(Event{Type: "cell", Cell: i, Label: j.cells[i].Label, State: state, Error: msg})
}

// prepareRequeue readies a preempted job for another trip through the
// queue: preempted and still-running cells go back to pending (their
// progress lives in the checkpoint sink, keyed by cell content, so the
// re-run resumes rather than restarts), finished cells keep their
// results, and the job returns to the queued state.
func (j *Job) prepareRequeue(reason string) {
	j.mu.Lock()
	for i := range j.cells {
		switch j.cells[i].State {
		case CellPreempted, CellRunning:
			j.cells[i] = CellResult{Index: i, Label: j.Specs[i].Label(), State: CellPending}
		}
	}
	j.stopSet = false
	j.stopReason = ""
	j.mu.Unlock()
	j.setState(JobQueued, reason)
}

// markCellRunning flips a cell to running for status displays (no event:
// subscribers care about completions).
func (j *Job) markCellRunning(i int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.cells[i].State == CellPending {
		j.cells[i].State = CellRunning
	}
}

// cancelPendingCells marks every not-yet-started cell cancelled (no
// events: the job-level cancellation event covers them).
func (j *Job) cancelPendingCells(msg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for i := range j.cells {
		if j.cells[i].State == CellPending {
			j.cells[i].State = CellCancelled
			j.cells[i].Error = msg
		}
	}
}

// failPendingCells marks every non-terminal cell failed (used when a
// job cannot run at all, e.g. a journaled job that could not be
// re-admitted after a restart).
func (j *Job) failPendingCells(msg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for i := range j.cells {
		if j.cells[i].State == CellPending || j.cells[i].State == CellRunning {
			j.cells[i].State = CellFailed
			j.cells[i].Error = msg
		}
	}
}

// setCell records a cell's terminal result and emits a cell event.
func (j *Job) setCell(i int, res CellResult) {
	res.Index = i
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cells[i] = res
	j.emitLocked(Event{Type: "cell", Cell: i, Label: res.Label, State: res.State, Error: res.Error})
}

// State returns the job state and error message.
func (j *Job) State() (string, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.errMsg
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Results snapshots the per-cell results.
func (j *Job) Results() []CellResult {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]CellResult, len(j.cells))
	copy(out, j.cells)
	return out
}

// EventsSince returns the events at and after seq, plus the channel that
// will be closed when further events arrive and whether the job is
// terminal as of this snapshot.
func (j *Job) EventsSince(seq int) (evs []Event, notify <-chan struct{}, terminal bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if seq < len(j.events) {
		evs = append(evs, j.events[seq:]...)
	}
	return evs, j.notify, j.terminalLocked()
}
