package service

import (
	"sync"
	"time"
)

// queuedJob is one queue entry: the job plus its admission order, so
// equal priorities run first-come-first-served, and its enqueue time,
// so pops can report how long the job waited.
type queuedJob struct {
	job      *Job
	seq      uint64
	enqueued time.Time
}

// tenantFIFO is one tenant's backlog within a priority class, plus its
// deficit-round-robin state. Jobs within a tenant are strictly FIFO.
type tenantFIFO struct {
	name string
	jobs []queuedJob
	// deficit is the tenant's accumulated service credit, in cells.
	// A visit credits quantum×weight; serving a job spends its cost.
	deficit int
	// credited marks that the current ring visit already added the
	// tenant's quantum, so back-to-back pops don't double-credit.
	credited bool
}

// priClass is one strict-priority level: a round-robin ring of tenant
// FIFOs served by deficit-weighted round-robin. Strict priority across
// classes is preserved exactly as the old heap behaved — fair-share
// applies only among tenants competing at the same priority.
type priClass struct {
	priority int
	byName   map[string]*tenantFIFO
	ring     []*tenantFIFO
	next     int // ring cursor
	count    int // entries across all tenants in this class
}

// jobQueue is the bounded fair-share queue feeding the worker pool.
// Ordering is three-level: strict priority across classes (higher
// first), deficit-weighted round-robin across tenants within a class
// (weight from weightOf; a job's cost is its cell count), and FIFO
// within a tenant. With a single tenant this degrades to exactly the
// old priority-heap ordering: priority desc, then admission order.
//
// Anti-starvation: when ageAfter > 0, a pop first serves the globally
// oldest queued job if it has waited longer than ageAfter, regardless
// of priority — a continuous high-priority stream can delay but never
// indefinitely starve queued low-priority work.
type jobQueue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	classes  []*priClass // sorted by priority descending
	cap      int
	total    int
	seq      uint64
	closed   bool
	weightOf func(tenant string) int // nil → every tenant weighs 1
	ageAfter time.Duration           // 0 → aging disabled
}

func newJobQueue(capacity int) *jobQueue {
	q := &jobQueue{cap: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues j; false when the queue is closed or at capacity.
func (q *jobQueue) push(j *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.total >= q.cap {
		return false
	}
	q.pushLocked(j)
	return true
}

// forcePush enqueues j even at capacity — for re-queuing a preempted
// job, which was already admitted once and must not be lost to
// backpressure. Only a closed queue refuses.
func (q *jobQueue) forcePush(j *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.pushLocked(j)
	return true
}

func (q *jobQueue) pushLocked(j *Job) {
	q.seq++
	cls := q.classLocked(j.Priority)
	t := cls.byName[j.Tenant]
	if t == nil {
		t = &tenantFIFO{name: j.Tenant}
		cls.byName[j.Tenant] = t
		cls.ring = append(cls.ring, t)
	}
	t.jobs = append(t.jobs, queuedJob{job: j, seq: q.seq, enqueued: time.Now()})
	cls.count++
	q.total++
	q.cond.Signal()
}

// classLocked finds or inserts the class for priority, keeping the
// slice sorted descending. Callers hold q.mu.
func (q *jobQueue) classLocked(priority int) *priClass {
	i := 0
	for i < len(q.classes) && q.classes[i].priority > priority {
		i++
	}
	if i < len(q.classes) && q.classes[i].priority == priority {
		return q.classes[i]
	}
	cls := &priClass{priority: priority, byName: make(map[string]*tenantFIFO)}
	q.classes = append(q.classes, nil)
	copy(q.classes[i+1:], q.classes[i:])
	q.classes[i] = cls
	return cls
}

// pop blocks until an entry is available (returning it and its queue
// wait) or the queue is closed and empty (returning ok=false).
func (q *jobQueue) pop() (j *Job, wait time.Duration, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.total == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.total == 0 {
		return nil, 0, false
	}
	now := time.Now()
	if it, ok := q.popAgedLocked(now); ok {
		return it.job, now.Sub(it.enqueued), true
	}
	for _, cls := range q.classes {
		if cls.count == 0 {
			continue
		}
		it := q.popClassLocked(cls)
		return it.job, now.Sub(it.enqueued), true
	}
	// Unreachable while total and per-class counts agree.
	return nil, 0, false
}

// popAgedLocked serves the globally oldest entry when it has waited
// past ageAfter. Only FIFO heads need scanning: within a tenant's FIFO
// the head is the oldest. Callers hold q.mu.
func (q *jobQueue) popAgedLocked(now time.Time) (queuedJob, bool) {
	if q.ageAfter <= 0 {
		return queuedJob{}, false
	}
	var (
		oldCls *priClass
		oldT   *tenantFIFO
	)
	for _, cls := range q.classes {
		for _, t := range cls.ring {
			if len(t.jobs) == 0 {
				continue
			}
			if oldT == nil || t.jobs[0].enqueued.Before(oldT.jobs[0].enqueued) {
				oldCls, oldT = cls, t
			}
		}
	}
	if oldT == nil || now.Sub(oldT.jobs[0].enqueued) < q.ageAfter {
		return queuedJob{}, false
	}
	return q.takeLocked(oldCls, oldT), true
}

// popClassLocked runs one deficit-round-robin step over cls's tenant
// ring and serves one job. cls.count > 0. Callers hold q.mu.
func (q *jobQueue) popClassLocked(cls *priClass) queuedJob {
	for {
		t := cls.ring[cls.next]
		if len(t.jobs) == 0 {
			// Empty FIFO: drop the tenant from the ring (deficit resets —
			// an idle tenant must not bank credit while away).
			delete(cls.byName, t.name)
			cls.ring = append(cls.ring[:cls.next], cls.ring[cls.next+1:]...)
			if cls.next >= len(cls.ring) {
				cls.next = 0
			}
			continue
		}
		if !t.credited {
			t.deficit += q.weight(t.name)
			t.credited = true
		}
		cost := jobCost(t.jobs[0].job)
		if t.deficit >= cost {
			t.deficit -= cost
			return q.takeLocked(cls, t)
		}
		// Insufficient credit: banked deficit carries to the next round.
		t.credited = false
		cls.next = (cls.next + 1) % len(cls.ring)
	}
}

// takeLocked removes and returns t's FIFO head, maintaining counts and
// dropping the tenant from its ring when emptied. Callers hold q.mu.
func (q *jobQueue) takeLocked(cls *priClass, t *tenantFIFO) queuedJob {
	it := t.jobs[0]
	t.jobs[0] = queuedJob{}
	t.jobs = t.jobs[1:]
	cls.count--
	q.total--
	if len(t.jobs) == 0 {
		t.deficit = 0
		t.credited = false
		delete(cls.byName, t.name)
		for i, rt := range cls.ring {
			if rt == t {
				cls.ring = append(cls.ring[:i], cls.ring[i+1:]...)
				if cls.next > i {
					cls.next--
				}
				if cls.next >= len(cls.ring) {
					cls.next = 0
				}
				break
			}
		}
	}
	return it
}

// weight resolves a tenant's scheduling weight (>= 1).
func (q *jobQueue) weight(tenant string) int {
	if q.weightOf == nil {
		return 1
	}
	if w := q.weightOf(tenant); w > 1 {
		return w
	}
	return 1
}

// jobCost is the DRR cost of serving a job: its cell count. A tenant
// submitting many-cell batches drains its deficit proportionally
// faster than one submitting single cells.
func jobCost(j *Job) int {
	if n := len(j.Specs); n > 1 {
		return n
	}
	return 1
}

// close stops intake and wakes every blocked pop; entries already
// queued still drain.
func (q *jobQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// len reports the queued entries.
func (q *jobQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.total
}

// lenTenant reports the queued entries for one tenant across all
// priority classes — the admission check behind MaxQueuedJobs.
func (q *jobQueue) lenTenant(tenant string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, cls := range q.classes {
		if t := cls.byName[tenant]; t != nil {
			n += len(t.jobs)
		}
	}
	return n
}

// aimd is an additive-increase/multiplicative-decrease admission
// limiter on the number of outstanding (queued + active) jobs, driven
// by measured queue wait: every pop whose wait exceeded the target
// halves the limit, every pop within target raises it by one. The
// effect is the classic sawtooth — the service sheds just enough load
// to keep queue wait near the target instead of letting the queue run
// at capacity with unbounded latency.
type aimd struct {
	mu     sync.Mutex
	target time.Duration
	limit  float64
	max    float64
	sheds  uint64
}

// newAIMD builds a limiter targeting the given queue wait, starting
// wide open at max outstanding jobs.
func newAIMD(target time.Duration, max int) *aimd {
	return &aimd{target: target, limit: float64(max), max: float64(max)}
}

// observe feeds one measured queue wait into the control loop.
func (a *aimd) observe(wait time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if wait > a.target {
		a.limit = max(a.limit/2, 1)
	} else {
		a.limit = min(a.limit+1, a.max)
	}
}

// admit reports whether a submission may enter given the current
// outstanding job count, counting refusals.
func (a *aimd) admit(outstanding int) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if float64(outstanding) >= a.limit {
		a.sheds++
		return false
	}
	return true
}

// snapshot returns the current limit and the shed count.
func (a *aimd) snapshot() (limit float64, sheds uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.limit, a.sheds
}
