package service

import (
	"container/heap"
	"sync"
	"time"
)

// queuedJob is one queue entry: the job plus its admission order, so
// equal priorities run first-come-first-served, and its enqueue time,
// so pops can report how long the job waited.
type queuedJob struct {
	job      *Job
	seq      uint64
	enqueued time.Time
}

// jobHeap orders entries by priority (higher first), then admission
// order within a priority class.
type jobHeap []queuedJob

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].job.Priority != h[j].job.Priority {
		return h[i].job.Priority > h[j].job.Priority
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(queuedJob)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = queuedJob{}
	*h = old[:n-1]
	return it
}

// jobQueue is the bounded priority queue feeding the worker pool. It
// replaces the plain channel the service started with: a high-priority
// burst runs ahead of queued low-priority work instead of behind it.
type jobQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	heap   jobHeap
	cap    int
	seq    uint64
	closed bool
}

func newJobQueue(capacity int) *jobQueue {
	q := &jobQueue{cap: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues j; false when the queue is closed or at capacity.
func (q *jobQueue) push(j *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || len(q.heap) >= q.cap {
		return false
	}
	q.pushLocked(j)
	return true
}

// forcePush enqueues j even at capacity — for re-queuing a preempted
// job, which was already admitted once and must not be lost to
// backpressure. Only a closed queue refuses.
func (q *jobQueue) forcePush(j *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.pushLocked(j)
	return true
}

func (q *jobQueue) pushLocked(j *Job) {
	q.seq++
	heap.Push(&q.heap, queuedJob{job: j, seq: q.seq, enqueued: time.Now()})
	q.cond.Signal()
}

// pop blocks until an entry is available (returning it and its queue
// wait) or the queue is closed and empty (returning ok=false).
func (q *jobQueue) pop() (j *Job, wait time.Duration, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.heap) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.heap) == 0 {
		return nil, 0, false
	}
	it := heap.Pop(&q.heap).(queuedJob)
	return it.job, time.Since(it.enqueued), true
}

// close stops intake and wakes every blocked pop; entries already
// queued still drain.
func (q *jobQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// len reports the queued entries.
func (q *jobQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.heap)
}

// aimd is an additive-increase/multiplicative-decrease admission
// limiter on the number of outstanding (queued + active) jobs, driven
// by measured queue wait: every pop whose wait exceeded the target
// halves the limit, every pop within target raises it by one. The
// effect is the classic sawtooth — the service sheds just enough load
// to keep queue wait near the target instead of letting the queue run
// at capacity with unbounded latency.
type aimd struct {
	mu     sync.Mutex
	target time.Duration
	limit  float64
	max    float64
	sheds  uint64
}

// newAIMD builds a limiter targeting the given queue wait, starting
// wide open at max outstanding jobs.
func newAIMD(target time.Duration, max int) *aimd {
	return &aimd{target: target, limit: float64(max), max: float64(max)}
}

// observe feeds one measured queue wait into the control loop.
func (a *aimd) observe(wait time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if wait > a.target {
		a.limit = max(a.limit/2, 1)
	} else {
		a.limit = min(a.limit+1, a.max)
	}
}

// admit reports whether a submission may enter given the current
// outstanding job count, counting refusals.
func (a *aimd) admit(outstanding int) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if float64(outstanding) >= a.limit {
		a.sheds++
		return false
	}
	return true
}

// snapshot returns the current limit and the shed count.
func (a *aimd) snapshot() (limit float64, sheds uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.limit, a.sheds
}
