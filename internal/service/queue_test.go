package service

// Property tests for the fair-share queue: strict priority across
// classes, FIFO within a (priority, tenant) pair, deficit-weighted
// round-robin fairness across tenants, and the anti-starvation aging
// path that bounds how long any queued job can wait behind a
// continuous stream of higher-priority arrivals.

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"time"
)

func queueJob(id, tenant string, prio, cells int) *Job {
	specs := make([]CellSpec, cells)
	for i := range specs {
		specs[i] = validSpec()
	}
	j := newJob(id, specs)
	j.Priority = prio
	j.Tenant = tenant
	return j
}

// TestQueueFIFOWithinClassProperty drains randomized workloads and
// checks the two ordering invariants that must survive the fair-share
// rewrite: priorities are served strictly high-to-low, and within one
// (priority, tenant) pair submission order is preserved.
func TestQueueFIFOWithinClassProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 1))
	tenants := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.IntN(60)
		q := newJobQueue(n)
		order := make(map[*Job]int, n)
		for i := 0; i < n; i++ {
			j := queueJob(fmt.Sprintf("j%d", i), tenants[rng.IntN(len(tenants))],
				rng.IntN(3), 1+rng.IntN(4))
			if !q.push(j) {
				t.Fatalf("trial %d: push %d refused below capacity", trial, i)
			}
			order[j] = i
		}
		lastPrio := int(^uint(0) >> 1)
		lastSeq := map[string]int{} // (prio|tenant) → last submission index
		for i := 0; i < n; i++ {
			j, _, ok := q.pop()
			if !ok {
				t.Fatalf("trial %d: queue dried up at %d/%d", trial, i, n)
			}
			if j.Priority > lastPrio {
				t.Fatalf("trial %d: priority inversion: %d after %d", trial, j.Priority, lastPrio)
			}
			lastPrio = j.Priority
			key := fmt.Sprintf("%d|%s", j.Priority, j.Tenant)
			if prev, seen := lastSeq[key]; seen && order[j] < prev {
				t.Fatalf("trial %d: FIFO violated for %s: job %d after %d", trial, key, order[j], prev)
			}
			lastSeq[key] = order[j]
		}
		// A fully drained queue blocks; closing it releases pops empty.
		q.close()
		if _, _, ok := q.pop(); ok {
			t.Fatalf("trial %d: drained queue still popped", trial)
		}
	}
}

// TestQueueDRRFairShare queues a heavy and a light tenant at equal
// priority and weight: the light tenant's whole backlog must be served
// interleaved with the heavy one's, not behind it — the property the
// old global-FIFO-per-class heap could not provide.
func TestQueueDRRFairShare(t *testing.T) {
	q := newJobQueue(200)
	for i := 0; i < 100; i++ {
		q.push(queueJob(fmt.Sprintf("heavy%d", i), "heavy", 0, 1))
	}
	for i := 0; i < 10; i++ {
		q.push(queueJob(fmt.Sprintf("light%d", i), "light", 0, 1))
	}
	lightDone := 0
	for i := 0; i < 25; i++ {
		j, _, ok := q.pop()
		if !ok {
			t.Fatal("queue dried up early")
		}
		if j.Tenant == "light" {
			lightDone++
		}
	}
	// Equal weights, equal cost: light's 10 jobs finish within the
	// first ~20 pops (strict alternation), 25 leaves slack.
	if lightDone != 10 {
		t.Fatalf("light tenant served %d/10 jobs in the first 25 pops", lightDone)
	}
}

// TestQueueDRRWeights gives one tenant 3× the weight and checks the
// service ratio over a long drain tracks the weights.
func TestQueueDRRWeights(t *testing.T) {
	q := newJobQueue(300)
	q.weightOf = func(tenant string) int {
		if tenant == "gold" {
			return 3
		}
		return 1
	}
	for i := 0; i < 120; i++ {
		q.push(queueJob(fmt.Sprintf("g%d", i), "gold", 0, 1))
		q.push(queueJob(fmt.Sprintf("s%d", i), "silver", 0, 1))
	}
	gold := 0
	for i := 0; i < 80; i++ {
		j, _, ok := q.pop()
		if !ok {
			t.Fatal("queue dried up early")
		}
		if j.Tenant == "gold" {
			gold++
		}
	}
	// Exact DRR with quantum 1/cost 1 serves 3 gold per silver: 60/20.
	if gold < 55 || gold > 65 {
		t.Fatalf("gold served %d/80 pops; want ~60 at weight 3:1", gold)
	}
}

// TestQueueCellCostDrainsDeficit submits many-cell batches for one
// tenant and single cells for another: per-cell (not per-job) service
// must even out, so the single-cell tenant gets more job slots.
func TestQueueCellCostDrainsDeficit(t *testing.T) {
	q := newJobQueue(100)
	for i := 0; i < 20; i++ {
		q.push(queueJob(fmt.Sprintf("batch%d", i), "batcher", 0, 4))
		q.push(queueJob(fmt.Sprintf("one%d", i), "oner", 0, 1))
	}
	// Serve 20 jobs; count cells served per tenant.
	cells := map[string]int{}
	for i := 0; i < 20; i++ {
		j, _, ok := q.pop()
		if !ok {
			t.Fatal("queue dried up early")
		}
		cells[j.Tenant] += len(j.Specs)
	}
	// Cost-weighted DRR should serve roughly equal cells, so the
	// batcher gets ~1 job per 4 of oner's. Allow generous slack.
	if cells["batcher"] > 2*cells["oner"] || cells["oner"] > 2*cells["batcher"] {
		t.Fatalf("cell service skewed: %v", cells)
	}
}

// TestQueueAgingBeatsStarvation is the satellite property: a queued
// low-priority job behind a continuous high-priority stream is served
// once its wait crosses ageAfter, no matter how fast high-priority
// work keeps arriving.
func TestQueueAgingBeatsStarvation(t *testing.T) {
	q := newJobQueue(1000)
	q.ageAfter = 30 * time.Millisecond
	low := queueJob("victim", "lowbie", 0, 1)
	q.push(low)
	// Keep the high-priority stream continuously ahead of the pops.
	for i := 0; i < 8; i++ {
		q.push(queueJob(fmt.Sprintf("h%d", i), "flood", 9, 1))
	}
	served := false
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; time.Now().Before(deadline); i++ {
		q.push(queueJob(fmt.Sprintf("hh%d", i), "flood", 9, 1))
		j, _, ok := q.pop()
		if !ok {
			t.Fatal("queue closed unexpectedly")
		}
		if j == low {
			served = true
			break
		}
	}
	if !served {
		t.Fatal("low-priority job starved for 5s despite 30ms ageAfter")
	}
	// Sanity: without aging the same flood starves the victim for the
	// whole (short) observation window.
	q2 := newJobQueue(1000)
	victim := queueJob("victim", "lowbie", 0, 1)
	q2.push(victim)
	for i := 0; i < 200; i++ {
		q2.push(queueJob(fmt.Sprintf("h%d", i), "flood", 9, 1))
		if j, _, _ := q2.pop(); j == victim {
			t.Fatal("strict priority served the low job while high work was queued")
		}
	}
}

// TestQueueSingleTenantMatchesLegacyOrder replays the exact scenario
// the pre-tenant heap test asserted — one (default) tenant, mixed
// priorities — and demands identical ordering, which is what keeps
// every existing client's behavior unchanged.
func TestQueueSingleTenantMatchesLegacyOrder(t *testing.T) {
	q := newJobQueue(8)
	mk := func(id string, prio int) *Job {
		j := newJob(id, []CellSpec{validSpec()})
		j.Priority = prio
		return j
	}
	for _, j := range []*Job{mk("a", 0), mk("b", 5), mk("c", 0), mk("d", 5)} {
		if !q.push(j) {
			t.Fatalf("push %s refused", j.ID)
		}
	}
	for _, want := range []string{"b", "d", "a", "c"} {
		j, _, ok := q.pop()
		if !ok || j.ID != want {
			t.Fatalf("pop = %v, want %s", j, want)
		}
	}
}

// TestQueueLenTenant checks the per-tenant depth view used by the
// MaxQueuedJobs admission quota.
func TestQueueLenTenant(t *testing.T) {
	q := newJobQueue(10)
	q.push(queueJob("a1", "a", 0, 1))
	q.push(queueJob("a2", "a", 5, 1)) // different class, same tenant
	q.push(queueJob("b1", "b", 0, 1))
	if got := q.lenTenant("a"); got != 2 {
		t.Fatalf("lenTenant(a) = %d, want 2", got)
	}
	if got := q.lenTenant("b"); got != 1 {
		t.Fatalf("lenTenant(b) = %d, want 1", got)
	}
	if got := q.lenTenant("nobody"); got != 0 {
		t.Fatalf("lenTenant(nobody) = %d, want 0", got)
	}
	q.pop()
	if got := q.lenTenant("a"); got != 1 {
		t.Fatalf("after pop lenTenant(a) = %d, want 1", got)
	}
}
