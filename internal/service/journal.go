package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"smtexplore/internal/faultinject"
)

// recordExt is the journal-file suffix; one file per job.
const recordExt = ".job"

// Record is one journaled job: enough to re-run it after a crash. The
// journal stores specs, not results — results are recomputable (and
// usually disk-cached), acceptance is not.
type Record struct {
	ID      string     `json:"id"`
	IdemKey string     `json:"idem_key,omitempty"`
	Specs   []CellSpec `json:"specs"`
	// Priority and Deadline survive the restart with the job: a
	// recovered job keeps its place in the priority order, and one
	// whose deadline passed while the daemon was down fails with that
	// cause instead of running late.
	Priority int       `json:"priority,omitempty"`
	Deadline time.Time `json:"deadline,omitzero"`
	// Tenant keeps the job accounted to its owner across a restart
	// (empty in records written before tenancy existed → default).
	Tenant  string    `json:"tenant,omitempty"`
	State   string    `json:"state"`
	Error   string    `json:"error,omitempty"`
	Created time.Time `json:"created"`
}

// Terminal reports whether the record's state is terminal.
func (r Record) Terminal() bool {
	switch r.State {
	case JobDone, JobFailed, JobCancelled:
		return true
	}
	return false
}

// Journal is a crash-safe directory of job records: every accepted job
// is persisted before the submitter hears "accepted", and its terminal
// state is recorded when it finishes — so a daemon restart can tell
// finished work from work that was lost mid-flight and re-run it.
// Writes use the store's atomic idiom (temp file + fsync + rename), so
// a crash mid-write never corrupts a record: the old version survives.
type Journal struct {
	dir string

	mu     sync.Mutex
	writes uint64
	errs   uint64
}

// JournalStats reports journal write activity.
type JournalStats struct {
	// Writes counts successful record writes (accept + terminal).
	Writes uint64
	// Errors counts failed writes. A failed accept write rejects the
	// submission; a failed terminal write is logged in the counters
	// only (the job already ran).
	Errors uint64
}

// OpenJournal opens (creating if needed) the journal rooted at dir.
func OpenJournal(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &Journal{dir: dir}, nil
}

// Dir returns the journal's root directory.
func (jl *Journal) Dir() string { return jl.dir }

// write persists rec atomically under <id>.job.
func (jl *Journal) write(rec Record) error {
	fail := func(err error) error {
		jl.mu.Lock()
		jl.errs++
		jl.mu.Unlock()
		return fmt.Errorf("journal: %s: %w", rec.ID, err)
	}
	if err := faultinject.Hit(faultinject.PointJournalWrite); err != nil {
		return fail(err)
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fail(err)
	}
	f, err := os.CreateTemp(jl.dir, "tmp-*")
	if err != nil {
		return fail(err)
	}
	tmp := f.Name()
	_, werr := f.Write(append(data, '\n'))
	serr := f.Sync()
	cerr := f.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmp)
		return fail(fmt.Errorf("write: %v/%v/%v", werr, serr, cerr))
	}
	if err := os.Rename(tmp, filepath.Join(jl.dir, rec.ID+recordExt)); err != nil {
		os.Remove(tmp)
		return fail(err)
	}
	jl.mu.Lock()
	jl.writes++
	jl.mu.Unlock()
	return nil
}

// remove deletes a record (used to roll back an accept whose enqueue
// failed). Best-effort.
func (jl *Journal) remove(id string) {
	os.Remove(filepath.Join(jl.dir, id+recordExt))
}

// Load reads every parseable record, sorted by job ID. Unparseable
// records are removed (half-written files cannot exist thanks to the
// atomic rename, so anything unparseable is foreign or damaged beyond
// the journal's own doing).
func (jl *Journal) Load() ([]Record, error) {
	des, err := os.ReadDir(jl.dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var out []Record
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), recordExt) {
			continue
		}
		path := filepath.Join(jl.dir, de.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		var rec Record
		if err := json.Unmarshal(data, &rec); err != nil || rec.ID == "" {
			os.Remove(path)
			continue
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// Stats snapshots the write counters.
func (jl *Journal) Stats() JournalStats {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return JournalStats{Writes: jl.writes, Errors: jl.errs}
}

// idNum extracts the numeric part of a job ID ("j0012" -> 12), or 0.
func idNum(id string) int {
	n, _ := strconv.Atoi(strings.TrimPrefix(id, "j"))
	return n
}
