package service

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"smtexplore/internal/experiments"
	"smtexplore/internal/runner"
	"smtexplore/internal/store"
)

// validSpec is a cheap, validation-passing cell for tests that stub out
// execution entirely.
func validSpec() CellSpec {
	return CellSpec{Type: TypeStream, Streams: []StreamSpec{{Kind: "fadd"}}}
}

// stubService builds a service whose cells run fn instead of the
// simulator. fn is installed before any Submit, so workers observe it.
func stubService(cfg Config, fn func(ctx context.Context, spec CellSpec, artifactDir string) CellResult) *Service {
	s := New(cfg)
	s.runCell = func(ctx context.Context, spec CellSpec, artifactDir string, _ *cellCtl) CellResult {
		return fn(ctx, spec, artifactDir)
	}
	return s
}

func instantDone(_ context.Context, spec CellSpec, _ string) CellResult {
	return CellResult{Label: spec.Label(), State: CellDone, CPI: []float64{1}}
}

func waitState(t *testing.T, j *Job, want string) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		state, _ := j.State()
		if state == want {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("job %s stuck in %q, want %q", j.ID, state, want)
		case <-time.After(time.Millisecond):
		}
	}
}

// waitDone bounds a test's wait for a terminal job. The cap is generous
// because the slowest cells (a full LU-64 ablation) run 40s+ under the
// race detector on a slow machine; a genuine hang still fails.
func waitDone(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(3 * time.Minute):
		state, _ := j.State()
		t.Fatalf("job %s never became terminal (state %q)", j.ID, state)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := stubService(Config{}, instantDone)
	defer s.Close()
	cases := []struct {
		name  string
		specs []CellSpec
		want  string
	}{
		{"empty batch", nil, "empty batch"},
		{"unknown type", []CellSpec{{Type: "bogus"}}, "unknown cell type"},
		{"unknown kind", []CellSpec{{Type: TypeStream, Streams: []StreamSpec{{Kind: "nope"}}}}, "unknown stream kind"},
		{"unknown ilp", []CellSpec{{Type: TypeStream, Streams: []StreamSpec{{Kind: "fadd", ILP: "huge"}}}}, "unknown ILP"},
		{"no streams", []CellSpec{{Type: TypeStream}}, "at least one stream"},
		{"unknown kernel", []CellSpec{{Type: TypeKernel, Kernel: "fft"}}, "unknown kernel"},
		{"unknown mode", []CellSpec{{Type: TypeKernel, Kernel: "mm", Mode: "warp"}}, "unknown mode"},
		{"unknown harness", []CellSpec{{Type: TypeHarness, Harness: "fig9"}}, "unknown harness"},
		{"observe without dir", []CellSpec{{Type: TypeStream, Streams: []StreamSpec{{Kind: "fadd"}}, Observe: true}}, "no artifact directory"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := s.Submit(tc.specs)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Submit = %v, want error containing %q", err, tc.want)
			}
		})
	}
	// A 3-stream cell is deliberately accepted at submit time: the stream
	// count is validated inside the cell so it fails that cell, not the
	// batch (TestRuntimeCellFailure covers the execution side).
	three := CellSpec{Type: TypeStream, Streams: []StreamSpec{{Kind: "fadd"}, {Kind: "fadd"}, {Kind: "fadd"}}}
	if _, err := s.Submit([]CellSpec{three}); err != nil {
		t.Fatalf("3-stream cell rejected at submit: %v", err)
	}
}

// The real thing: a stream cell through the service must equal the same
// measurement made directly, value for value.
func TestStreamCellMatchesDirect(t *testing.T) {
	const window = 2000
	s := New(Config{Workers: 2})
	defer s.Close()
	spec := CellSpec{
		Type:    TypeStream,
		Streams: []StreamSpec{{Kind: "fadd", ILP: "max"}, {Kind: "iload", ILP: "med"}},
		Window:  window,
	}
	j, err := s.Submit([]CellSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if state, msg := j.State(); state != JobDone {
		t.Fatalf("job %s: %s", state, msg)
	}
	got := j.Results()[0]

	specs, err := spec.streamSpecs()
	if err != nil {
		t.Fatal(err)
	}
	want, err := experiments.Options{}.StreamCell(experiments.StreamMachineConfig(), specs, window)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.CPI, want) {
		t.Errorf("service CPI %v != direct CPI %v", got.CPI, want)
	}
}

// One bad cell (a stream count the harness rejects) fails that cell and
// the job, but the good cell still completes with its result.
func TestRuntimeCellFailure(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	bad := CellSpec{Type: TypeStream, Window: 2000,
		Streams: []StreamSpec{{Kind: "fadd"}, {Kind: "fadd"}, {Kind: "fadd"}}}
	good := CellSpec{Type: TypeStream, Window: 2000, Streams: []StreamSpec{{Kind: "fadd"}}}
	j, err := s.Submit([]CellSpec{bad, good})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	state, msg := j.State()
	if state != JobFailed {
		t.Fatalf("job state %q, want failed", state)
	}
	if !strings.Contains(msg, "cell 0") || !strings.Contains(msg, "3 streams") {
		t.Errorf("job error %q does not identify the failing cell", msg)
	}
	res := j.Results()
	if res[0].State != CellFailed || !strings.Contains(res[0].Error, "3 streams") {
		t.Errorf("bad cell = %+v, want failed with stream-count error", res[0])
	}
	if res[1].State != CellDone || len(res[1].CPI) != 1 {
		t.Errorf("good cell = %+v, want done with one CPI", res[1])
	}
}

// A second submission against the same disk store, from a cold process
// (fresh cache), must be served entirely from the store: identical
// results and zero simulated cells.
func TestWarmStoreSecondSubmission(t *testing.T) {
	dir := t.TempDir()
	spec := CellSpec{
		Type:    TypeStream,
		Streams: []StreamSpec{{Kind: "fadd", ILP: "max"}, {Kind: "iload", ILP: "med"}},
		Window:  2000,
	}

	runOnce := func() (Metrics, []CellResult) {
		st, err := store.Open(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		cache := runner.NewCache().WithTier(st)
		s := New(Config{Workers: 2, Cache: cache, Store: st})
		defer s.Close()
		j, err := s.Submit([]CellSpec{spec})
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
		if state, msg := j.State(); state != JobDone {
			t.Fatalf("job %s: %s", state, msg)
		}
		return s.Snapshot(), j.Results()
	}

	cold, coldRes := runOnce()
	if cold.CellsSimulated != 1 {
		t.Fatalf("cold run simulated %d cells, want 1", cold.CellsSimulated)
	}
	warm, warmRes := runOnce()
	if warm.CellsSimulated != 0 {
		t.Errorf("warm run simulated %d cells, want 0 (store hits %d)", warm.CellsSimulated, warm.StoreHits)
	}
	if warm.StoreHits != 1 {
		t.Errorf("warm run: %d store hits, want 1", warm.StoreHits)
	}
	if !reflect.DeepEqual(coldRes[0].CPI, warmRes[0].CPI) {
		t.Errorf("warm CPI %v != cold CPI %v", warmRes[0].CPI, coldRes[0].CPI)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	s := stubService(Config{MaxActive: 1, QueueDepth: 4},
		func(ctx context.Context, spec CellSpec, _ string) CellResult {
			select {
			case started <- struct{}{}:
			default:
			}
			<-release
			return CellResult{Label: spec.Label(), State: CellDone}
		})
	defer s.Close()
	defer close(release)

	if _, err := s.Submit([]CellSpec{validSpec()}); err != nil {
		t.Fatal(err)
	}
	<-started // the first job occupies the single worker
	b, err := s.Submit([]CellSpec{validSpec(), validSpec()})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Cancel(b.ID) {
		t.Fatal("Cancel returned false for a known job")
	}
	waitDone(t, b)
	if state, msg := b.State(); state != JobCancelled || msg != "cancelled before start" {
		t.Fatalf("queued job after cancel: %q / %q", state, msg)
	}
	for _, c := range b.Results() {
		if c.State != CellCancelled {
			t.Errorf("cell %d state %q, want cancelled", c.Index, c.State)
		}
	}
	if s.Cancel("j9999") {
		t.Error("Cancel of unknown job returned true")
	}
}

func TestCancelRunningJob(t *testing.T) {
	started := make(chan struct{}, 1)
	s := stubService(Config{MaxActive: 1},
		func(ctx context.Context, spec CellSpec, _ string) CellResult {
			select {
			case started <- struct{}{}:
			default:
			}
			<-ctx.Done()
			return CellResult{Label: spec.Label(), State: CellCancelled, Error: ctx.Err().Error()}
		})
	defer s.Close()

	j, err := s.Submit([]CellSpec{validSpec()})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if !s.Cancel(j.ID) {
		t.Fatal("Cancel returned false")
	}
	waitDone(t, j)
	if state, _ := j.State(); state != JobCancelled {
		t.Fatalf("running job after cancel: state %q, want cancelled", state)
	}
}

func TestQueueBackpressure(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	s := stubService(Config{MaxActive: 1, QueueDepth: 1},
		func(ctx context.Context, spec CellSpec, _ string) CellResult {
			select {
			case started <- struct{}{}:
			default:
			}
			<-release
			return CellResult{Label: spec.Label(), State: CellDone}
		})
	defer s.Close()
	defer close(release)

	if _, err := s.Submit([]CellSpec{validSpec()}); err != nil {
		t.Fatal(err)
	}
	<-started // worker busy; the queue (depth 1) is empty again
	if _, err := s.Submit([]CellSpec{validSpec()}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit([]CellSpec{validSpec()}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit = %v, want ErrQueueFull", err)
	}
}

func TestDrainGraceful(t *testing.T) {
	s := stubService(Config{MaxActive: 2}, instantDone)
	var jobs []*Job
	for range 3 {
		j, err := s.Submit([]CellSpec{validSpec()})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !s.Draining() {
		t.Error("Draining() false after Drain")
	}
	for _, j := range jobs {
		if state, msg := j.State(); state != JobDone {
			t.Errorf("job %s after drain: %s / %s", j.ID, state, msg)
		}
	}
	if _, err := s.Submit([]CellSpec{validSpec()}); !errors.Is(err, ErrDraining) {
		t.Errorf("submit after drain = %v, want ErrDraining", err)
	}
}

func TestDrainTimeoutAborts(t *testing.T) {
	started := make(chan struct{}, 1)
	s := stubService(Config{MaxActive: 1},
		func(ctx context.Context, spec CellSpec, _ string) CellResult {
			select {
			case started <- struct{}{}:
			default:
			}
			<-ctx.Done() // a cell that only stops when aborted
			return CellResult{Label: spec.Label(), State: CellCancelled, Error: ctx.Err().Error()}
		})
	j, err := s.Submit([]CellSpec{validSpec()})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain = %v, want DeadlineExceeded", err)
	}
	// Drain's abort path cancelled the job context; the job must have
	// wound down as cancelled by the time Drain returned.
	if state, _ := j.State(); state != JobCancelled {
		t.Errorf("job after aborted drain: state %q, want cancelled", state)
	}
}

func TestEventStreamOrder(t *testing.T) {
	s := stubService(Config{Workers: 1}, instantDone)
	defer s.Close()
	j, err := s.Submit([]CellSpec{validSpec(), validSpec()})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	evs, _, terminal := j.EventsSince(0)
	if !terminal {
		t.Fatal("job not terminal after Done")
	}
	var cells, jobEvents int
	for i, ev := range evs {
		if ev.Seq != i {
			t.Errorf("event %d has seq %d", i, ev.Seq)
		}
		switch ev.Type {
		case "cell":
			cells++
		case "job":
			jobEvents++
		}
	}
	if cells != 2 {
		t.Errorf("%d cell events, want 2", cells)
	}
	if last := evs[len(evs)-1]; last.Type != "job" || last.State != JobDone {
		t.Errorf("last event %+v, want job/done", last)
	}
	if jobEvents < 2 { // running + done at minimum
		t.Errorf("%d job events, want >= 2", jobEvents)
	}
}

// The harness cell's text must be byte-identical to what the ablate CLI
// prints for the same study, since that is the service's contract.
func TestHarnessCellMatchesCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real LU ablation; skipped in -short")
	}
	s := New(Config{})
	defer s.Close()
	j, err := s.Submit([]CellSpec{{Type: TypeHarness, Harness: "selective"}})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if state, msg := j.State(); state != JobDone {
		t.Fatalf("job %s: %s", state, msg)
	}
	got := j.Results()[0].Text

	r, err := experiments.SelectiveHaltLU(context.Background(), experiments.Options{}, 64)
	if err != nil {
		t.Fatal(err)
	}
	want := experiments.FormatSelectiveHalt(r) + "\n"
	if got != want {
		t.Errorf("harness text differs from CLI output:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestStreamCellSharesHarnessKeys(t *testing.T) {
	// A service stream cell and the equivalent direct measurement must
	// produce the same cache key: prime a cache directly, then watch the
	// service hit it without computing.
	const window = 2000
	spec := CellSpec{Type: TypeStream, Streams: []StreamSpec{{Kind: "fadd"}}, Window: window}
	specs, err := spec.streamSpecs()
	if err != nil {
		t.Fatal(err)
	}
	cache := runner.NewCache()
	if _, err := (experiments.Options{Cache: cache}).StreamCell(experiments.StreamMachineConfig(), specs, window); err != nil {
		t.Fatal(err)
	}
	misses := cache.Stats().Misses

	s := New(Config{Cache: cache})
	defer s.Close()
	j, err := s.Submit([]CellSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if state, _ := j.State(); state != JobDone {
		t.Fatalf("job state %v", state)
	}
	if got := cache.Stats().Misses; got != misses {
		t.Errorf("service cell missed the primed cache (misses %d -> %d): key mismatch with the harness", misses, got)
	}
}
